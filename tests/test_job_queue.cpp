// Job queue policies: FCFS (the paper's server) and SJF (its proposed
// improvement, section 5.2).
#include <gtest/gtest.h>

#include <future>
#include <thread>

#include "obs/metrics.h"
#include "server/job_queue.h"

namespace ninf::server {
namespace {

Job makeJob(std::uint64_t id, double flops) {
  Job j;
  j.id = id;
  j.estimated_flops = flops;
  j.run = [] {};
  return j;
}

TEST(JobQueue, FcfsPreservesArrivalOrder) {
  JobQueue q(QueuePolicy::Fcfs);
  q.push(makeJob(1, 100));
  q.push(makeJob(2, 1));
  q.push(makeJob(3, 50));
  EXPECT_EQ(q.pop()->id, 1u);
  EXPECT_EQ(q.pop()->id, 2u);
  EXPECT_EQ(q.pop()->id, 3u);
}

TEST(JobQueue, DepthGaugesArePerQueue) {
  // Two live queues in one process (the inproc test topology, or any
  // multi-server simulation) must not stomp each other's depth gauge.
  JobQueue first(QueuePolicy::Fcfs, "gauge-a");
  JobQueue second(QueuePolicy::Fcfs, "gauge-b");
  first.push(makeJob(1, 0));
  first.push(makeJob(2, 0));
  second.push(makeJob(3, 0));
  EXPECT_EQ(obs::gauge("server.queue.depth.gauge-a").value(), 2.0);
  EXPECT_EQ(obs::gauge("server.queue.depth.gauge-b").value(), 1.0);
  first.pop();
  EXPECT_EQ(obs::gauge("server.queue.depth.gauge-a").value(), 1.0);
  EXPECT_EQ(obs::gauge("server.queue.depth.gauge-b").value(), 1.0);
}

TEST(JobQueue, UnnamedQueuesGetDistinctLabels) {
  JobQueue a;
  JobQueue b;
  EXPECT_FALSE(a.name().empty());
  EXPECT_NE(a.name(), b.name());
}

TEST(JobQueue, SjfPicksShortestEstimate) {
  JobQueue q(QueuePolicy::Sjf);
  q.push(makeJob(1, 100));
  q.push(makeJob(2, 1));
  q.push(makeJob(3, 50));
  EXPECT_EQ(q.pop()->id, 2u);
  EXPECT_EQ(q.pop()->id, 3u);
  EXPECT_EQ(q.pop()->id, 1u);
}

TEST(JobQueue, SjfTreatsUnknownAsLongest) {
  JobQueue q(QueuePolicy::Sjf);
  q.push(makeJob(1, 0));  // no CalcOrder hint
  q.push(makeJob(2, 1e12));
  q.push(makeJob(3, 0));
  EXPECT_EQ(q.pop()->id, 2u);
  // Among unknowns, FCFS order.
  EXPECT_EQ(q.pop()->id, 1u);
  EXPECT_EQ(q.pop()->id, 3u);
}

TEST(JobQueue, DepthTracksContents) {
  JobQueue q;
  EXPECT_EQ(q.depth(), 0u);
  q.push(makeJob(1, 0));
  q.push(makeJob(2, 0));
  EXPECT_EQ(q.depth(), 2u);
  q.pop();
  EXPECT_EQ(q.depth(), 1u);
}

TEST(JobQueue, PopBlocksUntilPush) {
  JobQueue q;
  auto fut = std::async(std::launch::async, [&] { return q.pop(); });
  EXPECT_EQ(fut.wait_for(std::chrono::milliseconds(30)),
            std::future_status::timeout);
  q.push(makeJob(42, 0));
  EXPECT_EQ(fut.get()->id, 42u);
}

TEST(JobQueue, CloseDrainsThenReturnsNullopt) {
  JobQueue q;
  q.push(makeJob(1, 0));
  q.close();
  EXPECT_TRUE(q.pop().has_value());
  EXPECT_FALSE(q.pop().has_value());
}

TEST(JobQueue, CloseWakesBlockedPop) {
  JobQueue q;
  auto fut = std::async(std::launch::async, [&] { return q.pop(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  EXPECT_FALSE(fut.get().has_value());
}

TEST(JobQueue, PushAfterCloseThrows) {
  JobQueue q;
  q.close();
  EXPECT_THROW(q.push(makeJob(1, 0)), std::logic_error);
}

TEST(JobQueue, PolicyNames) {
  EXPECT_STREQ(queuePolicyName(QueuePolicy::Fcfs), "FCFS");
  EXPECT_STREQ(queuePolicyName(QueuePolicy::Sjf), "SJF");
}

}  // namespace
}  // namespace ninf::server
