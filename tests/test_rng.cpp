// SplitMix64 determinism and distribution sanity.
#include <gtest/gtest.h>

#include "common/rng.h"

namespace ninf {
namespace {

TEST(SplitMix64, DeterministicForSeed) {
  SplitMix64 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(SplitMix64, KnownReferenceValue) {
  // First output of SplitMix64 with seed 0 (published reference).
  SplitMix64 rng(0);
  EXPECT_EQ(rng.next(), 0xE220A8397B1DCDAFull);
}

TEST(SplitMix64, DoublesInUnitInterval) {
  SplitMix64 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.nextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(SplitMix64, DoubleMeanNearHalf) {
  SplitMix64 rng(99);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.nextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(SplitMix64, BernoulliRespectsp) {
  SplitMix64 rng(2024);
  int heads = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) heads += rng.nextBool(0.5);
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.5, 0.01);
  heads = 0;
  for (int i = 0; i < n; ++i) heads += rng.nextBool(0.1);
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.1, 0.01);
}

TEST(SplitMix64, NextBelowStaysInRange) {
  SplitMix64 rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.nextBelow(17), 17u);
  }
}

TEST(SplitMix64, SplitStreamsAreIndependent) {
  SplitMix64 parent(42);
  SplitMix64 child1 = parent.split();
  SplitMix64 child2 = parent.split();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (child1.next() == child2.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

}  // namespace
}  // namespace ninf
