// C binding: the full dmmul/linpack flow through the extern "C" surface.
#include <gtest/gtest.h>

#include "capi/ninf.h"
#include "numlib/matrix.h"
#include "numlib/mmul.h"
#include "server/server.h"
#include "transport/tcp_transport.h"

namespace {

using namespace ninf;

class CapiFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    server::registerStandardExecutables(registry_);
    server_.emplace(registry_, server::ServerOptions{.workers = 2});
    auto listener = std::make_shared<transport::TcpListener>(0);
    port_ = listener->port();
    server().start(listener);
    client_ = ninf_connect("127.0.0.1", port_);
    ASSERT_NE(client_, nullptr);
  }

  void TearDown() override {
    ninf_disconnect(client_);
    server().stop();
  }

  server::Registry registry_;
  // Engaged in SetUp() for the whole test lifetime; the accessor
  // keeps the one unchecked dereference in a single audited place.
  // NOLINTNEXTLINE(bugprone-unchecked-optional-access)
  server::NinfServer& server() { return *server_; }
  std::optional<server::NinfServer> server_;
  std::uint16_t port_ = 0;
  ninf_client_t* client_ = nullptr;
};

TEST_F(CapiFixture, DmmulThroughCApi) {
  const std::int64_t n = 6;
  const numlib::Matrix a = numlib::randomMatrix(n, 1);
  const numlib::Matrix b = numlib::randomMatrix(n, 2);
  std::vector<double> c(n * n);

  ninf_call_t* call = ninf_call_begin(client_, "dmmul");
  ASSERT_NE(call, nullptr);
  ninf_arg_long(call, n);
  ninf_arg_array_in(call, a.data(), n * n);
  ninf_arg_array_in(call, b.data(), n * n);
  ninf_arg_array_out(call, c.data(), n * n);
  ASSERT_EQ(ninf_call_end(call), NINF_OK) << ninf_last_error(client_);

  const numlib::Matrix expected = numlib::dmmul(a, b);
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c[i], expected.flat()[i], 1e-12);
  }
}

TEST_F(CapiFixture, UnknownEntryReportsNotFound) {
  ninf_call_t* call = ninf_call_begin(client_, "no_such_routine");
  ninf_arg_long(call, 1);
  EXPECT_EQ(ninf_call_end(call), NINF_ERR_NOT_FOUND);
  EXPECT_NE(std::string(ninf_last_error(client_)).find("no_such_routine"),
            std::string::npos);
}

TEST_F(CapiFixture, RemoteFailureReported) {
  const std::int64_t n = 3;
  std::vector<double> a(9, 0.0);  // singular
  std::vector<double> b(3, 1.0), x(3);
  ninf_call_t* call = ninf_call_begin(client_, "linpack");
  ninf_arg_long(call, n);
  ninf_arg_long(call, 0);
  ninf_arg_array_in(call, a.data(), 9);
  ninf_arg_array_in(call, b.data(), 3);
  ninf_arg_array_out(call, x.data(), 3);
  EXPECT_EQ(ninf_call_end(call), NINF_ERR_REMOTE);
}

TEST_F(CapiFixture, ArityMismatchIsProtocolError) {
  ninf_call_t* call = ninf_call_begin(client_, "dmmul");
  ninf_arg_long(call, 2);
  EXPECT_EQ(ninf_call_end(call), NINF_ERR_PROTOCOL);
}

TEST_F(CapiFixture, NumExecutables) {
  EXPECT_EQ(ninf_num_executables(client_), 4);
}

TEST_F(CapiFixture, AbortDoesNotExecute) {
  ninf_call_t* call = ninf_call_begin(client_, "dmmul");
  ninf_arg_long(call, 4);
  ninf_call_abort(call);  // must not leak or crash
  const auto completed_before = server().metrics().completed();
  EXPECT_EQ(server().metrics().completed(), completed_before);
}

TEST(Capi, NullSafety) {
  EXPECT_EQ(ninf_connect(nullptr, 1), nullptr);
  ninf_disconnect(nullptr);
  EXPECT_EQ(ninf_call_begin(nullptr, "x"), nullptr);
  EXPECT_EQ(ninf_call_end(nullptr), NINF_ERR_USAGE);
  ninf_call_abort(nullptr);
  EXPECT_STREQ(ninf_last_error(nullptr), "null client");
  EXPECT_LT(ninf_num_executables(nullptr), 0);
}

TEST(Capi, ConnectFailureReturnsNull) {
  EXPECT_EQ(ninf_connect("127.0.0.1", 1), nullptr);
}

}  // namespace
