#include <gtest/gtest.h>

#include <cmath>

#include "numlib/matrix.h"

namespace ninf::numlib {
namespace {

TEST(Matrix, ColumnMajorLayout) {
  Matrix a(3, 2);
  a(0, 0) = 1;
  a(1, 0) = 2;
  a(2, 0) = 3;
  a(0, 1) = 4;
  const auto flat = a.flat();
  EXPECT_EQ(flat[0], 1);
  EXPECT_EQ(flat[1], 2);
  EXPECT_EQ(flat[2], 3);
  EXPECT_EQ(flat[3], 4);
}

TEST(Matrix, ColumnSpansAreContiguous) {
  Matrix a(4, 4);
  a(2, 3) = 7.0;
  EXPECT_EQ(a.col(3)[2], 7.0);
  a.col(1)[0] = -1.0;
  EXPECT_EQ(a(0, 1), -1.0);
}

TEST(Matrix, RandomMatrixDeterministicAndBounded) {
  const Matrix a = randomMatrix(32, 99);
  const Matrix b = randomMatrix(32, 99);
  EXPECT_EQ(a, b);
  for (double v : a.flat()) {
    EXPECT_GE(v, -0.5);
    EXPECT_LT(v, 0.5);
  }
  EXPECT_NE(a, randomMatrix(32, 100));
}

TEST(Matrix, MatVecIdentity) {
  Matrix eye(3, 3);
  for (std::size_t i = 0; i < 3; ++i) eye(i, i) = 1.0;
  const std::vector<double> x = {1.0, -2.0, 3.0};
  EXPECT_EQ(matVec(eye, x), x);
}

TEST(Matrix, MatVecKnownValues) {
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 3;
  a(1, 1) = 4;
  const std::vector<double> x = {5.0, 6.0};
  const auto y = matVec(a, x);
  EXPECT_DOUBLE_EQ(y[0], 17.0);
  EXPECT_DOUBLE_EQ(y[1], 39.0);
}

TEST(Matrix, InfNormMaxRowSum) {
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = -2;
  a(1, 0) = 3;
  a(1, 1) = 4;
  EXPECT_DOUBLE_EQ(infNorm(a), 7.0);
  const std::vector<double> v = {-9.0, 2.0};
  EXPECT_DOUBLE_EQ(infNorm(std::span<const double>(v)), 9.0);
}

TEST(Matrix, OnesRhsIsRowSums) {
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 3;
  a(1, 1) = 4;
  const auto b = onesRhs(a);
  EXPECT_DOUBLE_EQ(b[0], 3.0);
  EXPECT_DOUBLE_EQ(b[1], 7.0);
}

TEST(Matrix, LinpackFlopsFormula) {
  // 2/3 n^3 + 2 n^2 (paper, section 3.1).
  EXPECT_DOUBLE_EQ(linpackFlops(3), 2.0 / 3.0 * 27 + 2 * 9);
  EXPECT_NEAR(linpackFlops(1000), 6.686666e8, 1e3);
}

TEST(Matrix, ResidualOfExactSolutionIsTiny) {
  const Matrix a = randomMatrix(16, 5);
  std::vector<double> x(16, 1.0);
  const auto b = matVec(a, x);
  EXPECT_LT(linpackResidual(a, x, b), 1e-6);
}

}  // namespace
}  // namespace ninf::numlib
