// Failover suite for the sharded metaserver control plane.
//
// A live cluster per test: N shards, each a primary MetaserverNode and a
// backup joined by log-shipping replication, plus real computing servers
// and a ShardedMetaserver client routing over the consistent-hash ring.
//
// The invariants, asserted under seeded kill schedules:
//  * every dispatch completes correctly or throws a typed ninf::Error
//    within its deadline — killing a shard primary mid-storm never hangs
//    or corrupts a call;
//  * the backup promotes within its heartbeat miss budget and the shard
//    epoch advances, so clients flush stale pooled connections;
//  * a deposed primary fences itself on the first StaleEpoch ack and
//    refuses registrations from then on;
//  * registration is idempotent on (endpoint, reg_epoch) — retries and
//    replayed log entries never double-register a server.
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "client/client.h"
#include "common/error.h"
#include "common/rng.h"
#include "metaserver/node.h"
#include "metaserver/sharded.h"
#include "numlib/ep.h"
#include "obs/metrics.h"
#include "server/server.h"
#include "transport/tcp_transport.h"

namespace ninf {
namespace {

using client::CallOptions;
using client::NinfClient;
using metaserver::MetaserverNode;
using metaserver::NodeOptions;
using metaserver::ShardedMetaserver;
using metaserver::ShardedOptions;
using protocol::ArgValue;

constexpr double kHeartbeat = 0.02;
constexpr std::size_t kMissBudget = 3;
/// Promotion must land within the miss budget; the assertion allows a
/// generous CI-noise multiple of it.
constexpr double kPromotionBound = 1.0;
constexpr double kDeadlineSeconds = 5.0;
constexpr double kHangBound = 30.0;

std::string endpointOf(std::uint16_t port) {
  return "127.0.0.1:" + std::to_string(port);
}

std::unique_ptr<NinfClient> dialEndpoint(const std::string& endpoint) {
  const auto colon = endpoint.rfind(':');
  NINF_REQUIRE(colon != std::string::npos, "endpoint must be host:port");
  return NinfClient::connectTcp(
      endpoint.substr(0, colon),
      static_cast<std::uint16_t>(std::stoi(endpoint.substr(colon + 1))),
      2.0);
}

double secondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Spin until `pred` holds; false when `bound` seconds elapse first.
template <typename Pred>
bool eventually(double bound, Pred&& pred) {
  const auto start = std::chrono::steady_clock::now();
  while (!pred()) {
    if (secondsSince(start) > bound) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

/// One shard's pair of nodes plus their listeners.
struct ShardNodes {
  std::unique_ptr<MetaserverNode> primary;
  std::unique_ptr<MetaserverNode> backup;
  std::string primary_endpoint;
  std::string backup_endpoint;
};

/// A live N-shard metaserver cluster with real computing servers.
class ShardCluster {
 public:
  explicit ShardCluster(std::size_t shard_count,
                        std::size_t server_count = 2) {
    // Listeners first: the ring descriptor needs every port up front.
    std::vector<std::shared_ptr<transport::TcpListener>> plisten, blisten;
    protocol::RingDescriptor ring;
    for (std::size_t i = 0; i < shard_count; ++i) {
      plisten.push_back(std::make_shared<transport::TcpListener>(0));
      blisten.push_back(std::make_shared<transport::TcpListener>(0));
      protocol::ShardInfo info;
      info.id = static_cast<std::uint32_t>(i);
      info.epoch = 1;
      info.primary_endpoint = endpointOf(plisten.back()->port());
      info.backup_endpoint = endpointOf(blisten.back()->port());
      ring.shards.push_back(info);
    }
    const metaserver::FactoryResolver resolver =
        [](const std::string& endpoint) {
          return client::ConnectionFactory(
              [endpoint] { return dialEndpoint(endpoint); });
        };
    for (std::size_t i = 0; i < shard_count; ++i) {
      ShardNodes shard;
      shard.primary_endpoint = ring.shards[i].primary_endpoint;
      shard.backup_endpoint = ring.shards[i].backup_endpoint;

      NodeOptions popts;
      popts.shard_id = static_cast<std::uint32_t>(i);
      popts.primary = true;
      popts.status_freshness = 0.05;
      popts.cooldown_seconds = 0.1;
      popts.heartbeat_interval_s = kHeartbeat;
      popts.heartbeat_miss_budget = kMissBudget;
      popts.resolver = resolver;
      const std::string backup_ep = shard.backup_endpoint;
      popts.backup_factory = [backup_ep] { return dialEndpoint(backup_ep); };
      popts.self_endpoint = shard.primary_endpoint;
      popts.ring = ring;
      shard.primary = std::make_unique<MetaserverNode>(std::move(popts));
      shard.primary->serve(plisten[i]);

      NodeOptions bopts;
      bopts.shard_id = static_cast<std::uint32_t>(i);
      bopts.primary = false;
      bopts.status_freshness = 0.05;
      bopts.cooldown_seconds = 0.1;
      bopts.heartbeat_interval_s = kHeartbeat;
      bopts.heartbeat_miss_budget = kMissBudget;
      bopts.resolver = resolver;
      bopts.self_endpoint = shard.backup_endpoint;
      bopts.ring = ring;
      shard.backup = std::make_unique<MetaserverNode>(std::move(bopts));
      shard.backup->serve(blisten[i]);

      shards_.push_back(std::move(shard));
    }

    for (std::size_t i = 0; i < server_count; ++i) {
      auto registry = std::make_unique<server::Registry>();
      server::registerStandardExecutables(*registry);
      auto srv = std::make_unique<server::NinfServer>(
          *registry, server::ServerOptions{.workers = 2});
      auto listener = std::make_shared<transport::TcpListener>(0);
      server_endpoints_.push_back(endpointOf(listener->port()));
      srv->start(listener);
      registries_.push_back(std::move(registry));
      servers_.push_back(std::move(srv));
    }
  }

  ~ShardCluster() {
    for (auto& s : shards_) {
      s.primary->stop();
      s.backup->stop();
    }
    for (auto& s : servers_) s->stop();
  }

  ShardedMetaserver makeClient() {
    ShardedOptions opts;
    for (const auto& s : shards_) {
      opts.seeds.push_back(s.primary_endpoint);
      opts.seeds.push_back(s.backup_endpoint);
    }
    opts.node_dialer = dialEndpoint;
    opts.server_dialer = dialEndpoint;
    opts.retry_backoff = 0.005;
    return ShardedMetaserver(std::move(opts));
  }

  /// Register every computing server for `entry` (routes to its owning
  /// shard) and wait for the backup to catch up over replication.
  void registerServersFor(ShardedMetaserver& client, const std::string& entry) {
    for (std::size_t i = 0; i < servers_.size(); ++i) {
      protocol::WireServerDesc desc;
      desc.name = "server-" + std::to_string(i);
      desc.endpoint = server_endpoints_[i];
      desc.entries = {entry};
      const auto results = client.registerServer(desc, 1, kDeadlineSeconds);
      ASSERT_EQ(results.size(), 1u);
      ASSERT_EQ(results[0].status, protocol::RegisterResult::Status::Applied);
    }
    const std::uint32_t owner = client.ownerOf(entry);
    ASSERT_TRUE(eventually(kDeadlineSeconds, [&] {
      return shards_[owner].backup->directory().serverCount() ==
             servers_.size();
    })) << "replication never caught the backup up";
  }

  std::vector<ShardNodes> shards_;
  std::vector<std::unique_ptr<server::Registry>> registries_;
  std::vector<std::unique_ptr<server::NinfServer>> servers_;
  std::vector<std::string> server_endpoints_;
};

std::vector<ArgValue> epArgs(std::vector<double>& sums,
                             std::vector<double>& q,
                             std::int64_t samples) {
  return {ArgValue::inInt(0), ArgValue::inInt(samples),
          ArgValue::outArray(sums), ArgValue::outArray(q)};
}

TEST(ShardedMetaserverTest, RingBootstrapRoutesAndDispatches) {
  ShardCluster cluster(2);
  auto client = cluster.makeClient();
  client.refreshRing();
  EXPECT_EQ(client.ringEpoch(), 2u);  // sum of two shard epochs at 1
  EXPECT_EQ(client.ringDescriptor().shards.size(), 2u);

  cluster.registerServersFor(client, "ep");
  const auto choice = client.route(
      "ep", {}, std::chrono::steady_clock::now() + std::chrono::seconds(5));
  EXPECT_FALSE(choice.server_name.empty());
  EXPECT_FALSE(choice.endpoint.empty());

  constexpr std::int64_t kSamples = 256;
  const auto expected = numlib::runEp(0, kSamples);
  std::vector<double> sums(2, -1.0), q(10);
  auto args = epArgs(sums, q, kSamples);
  CallOptions opts;
  opts.deadline_seconds = kDeadlineSeconds;
  client.dispatch("ep", args, opts);
  EXPECT_NEAR(sums[0], expected.sx, 1e-9);
  EXPECT_NEAR(sums[1], expected.sy, 1e-9);
}

TEST(ShardedMetaserverTest, UnknownEntryYieldsTypedNotFound) {
  ShardCluster cluster(2, /*server_count=*/0);
  auto client = cluster.makeClient();
  // The owning shard is reachable but has no candidates: typed error,
  // not a hang or a transport error.
  EXPECT_THROW(
      client.route("nonexistent", {},
                   std::chrono::steady_clock::now() + std::chrono::seconds(5)),
      NotFoundError);
}

TEST(ShardedMetaserverTest, RegistrationIsIdempotentOnEndpointEpoch) {
  ShardCluster cluster(2, /*server_count=*/1);
  auto client = cluster.makeClient();

  protocol::WireServerDesc desc;
  desc.name = "server-0";
  desc.endpoint = cluster.server_endpoints_[0];
  desc.entries = {"ep"};
  const std::uint32_t owner = client.ownerOf("ep");
  auto& dir = cluster.shards_[owner].primary->directory();

  auto first = client.registerServer(desc, 7, kDeadlineSeconds);
  ASSERT_EQ(first[0].status, protocol::RegisterResult::Status::Applied);
  EXPECT_EQ(dir.serverCount(), 1u);

  // A retried register with the identical key is acknowledged but never
  // applied twice.
  auto retry = client.registerServer(desc, 7, kDeadlineSeconds);
  EXPECT_EQ(retry[0].status, protocol::RegisterResult::Status::Duplicate);
  EXPECT_EQ(dir.serverCount(), 1u);

  // A later epoch re-registers (update in place), still one entry.
  auto update = client.registerServer(desc, 8, kDeadlineSeconds);
  EXPECT_EQ(update[0].status, protocol::RegisterResult::Status::Applied);
  EXPECT_EQ(dir.serverCount(), 1u);

  // Deregister applies once; the straggler retry is a quiet duplicate.
  auto gone = client.deregisterServer(desc.endpoint, desc.name, desc.entries,
                                      9, kDeadlineSeconds);
  EXPECT_EQ(gone[0].status, protocol::RegisterResult::Status::Applied);
  EXPECT_EQ(dir.serverCount(), 0u);
  auto again = client.deregisterServer(desc.endpoint, desc.name, desc.entries,
                                       9, kDeadlineSeconds);
  EXPECT_EQ(again[0].status, protocol::RegisterResult::Status::Duplicate);
  EXPECT_EQ(dir.serverCount(), 0u);
}

TEST(ShardedMetaserverTest, MisroutedQueryDrawsWrongShard) {
  ShardCluster cluster(2, /*server_count=*/0);
  auto client = cluster.makeClient();

  // Find two entries with different owners (the hash spreads names, so
  // a handful of tries suffices).
  std::string here = "ep";
  const std::uint32_t owner = client.ownerOf(here);
  std::optional<std::string> elsewhere;
  for (int i = 0; i < 64 && !elsewhere; ++i) {
    const std::string name = "probe-" + std::to_string(i);
    if (client.ownerOf(name) != owner) elsewhere = name;
  }
  ASSERT_TRUE(elsewhere.has_value());

  auto node = dialEndpoint(cluster.shards_[owner].primary_endpoint);
  try {
    node->scheduleQuery(*elsewhere, {}, 2.0);
    FAIL() << "expected WrongShardError";
  } catch (const WrongShardError& e) {
    EXPECT_NE(e.ownerShard(), owner);
    EXPECT_FALSE(e.notPrimary());
    EXPECT_EQ(e.ringEpoch(), 2u);
  }

  // Right shard, wrong role: the backup bounces with NotPrimary.
  auto backup = dialEndpoint(cluster.shards_[owner].backup_endpoint);
  try {
    backup->scheduleQuery(here, {}, 2.0);
    FAIL() << "expected WrongShardError";
  } catch (const WrongShardError& e) {
    EXPECT_EQ(e.ownerShard(), owner);
    EXPECT_TRUE(e.notPrimary());
  }
}

TEST(ShardedMetaserverTest, PartitionPromotesBackupAndFencesOldPrimary) {
  ShardCluster cluster(1, /*server_count=*/1);
  auto client = cluster.makeClient();
  cluster.registerServersFor(client, "ep");

  auto& shard = cluster.shards_[0];
  ASSERT_NE(shard.primary->replication(), nullptr);
  ASSERT_TRUE(shard.primary->isPrimary());
  ASSERT_FALSE(shard.backup->isPrimary());

  // Cut the (simulated) wire: heartbeats stop, the backup's miss budget
  // runs down, it promotes and bumps the shard epoch.
  const auto cut = std::chrono::steady_clock::now();
  shard.primary->replication()->setPaused(true);
  ASSERT_TRUE(eventually(kPromotionBound,
                         [&] { return shard.backup->isPrimary(); }))
      << "backup never promoted";
  EXPECT_LT(secondsSince(cut), kPromotionBound);
  EXPECT_EQ(shard.backup->shardEpoch(), 2u);

  // Heal the partition: the old primary's next ship draws StaleEpoch
  // and it fences itself.
  const std::uint64_t fenced_before =
      obs::counter("metaserver.replication.fenced_writes").value();
  shard.primary->replication()->setPaused(false);
  ASSERT_TRUE(eventually(kPromotionBound,
                         [&] { return shard.primary->isFenced(); }))
      << "deposed primary never fenced";

  // Writes at the deposed primary are refused with the typed error.
  protocol::WireServerDesc desc;
  desc.name = "late";
  desc.endpoint = cluster.server_endpoints_[0];
  desc.entries = {"ep"};
  auto direct = dialEndpoint(shard.primary_endpoint);
  EXPECT_THROW(direct->registerServer(desc, 99, 2.0), FencedError);
  EXPECT_GT(obs::counter("metaserver.replication.fenced_writes").value(),
            fenced_before);

  // The routed path refreshes onto the promoted backup and succeeds —
  // and the merged ring epoch advanced past the seed view.
  auto results = client.registerServer(desc, 99, kDeadlineSeconds);
  EXPECT_EQ(results[0].status, protocol::RegisterResult::Status::Applied);
  EXPECT_GE(client.ringEpoch(), 2u);
}

TEST(ShardedMetaserverTest, PromotionFlushesStalePooledConnections) {
  ShardCluster cluster(1, /*server_count=*/1);
  auto client = cluster.makeClient();
  cluster.registerServersFor(client, "ep");

  const std::uint64_t flushes_before =
      obs::counter("pool.generation_flushes").value();

  // Kill the primary outright.  Routing under the stale epoch-1 ring
  // finds the primary dead, bounces off the not-yet-promoted backup
  // with NotPrimary (pooling that connection under generation 1), and
  // keeps refreshing until the backup promotes and serves.
  auto& shard = cluster.shards_[0];
  shard.primary->stop();
  const auto choice = client.route(
      "ep", {}, std::chrono::steady_clock::now() + std::chrono::seconds(5));
  EXPECT_FALSE(choice.server_name.empty());
  EXPECT_TRUE(shard.backup->isPrimary());
  EXPECT_GE(client.ringEpoch(), 2u);

  // The post-promotion acquire of the same backup endpoint carries the
  // new ring epoch as its generation, retiring the epoch-1 connection.
  (void)client.route(
      "ep", {}, std::chrono::steady_clock::now() + std::chrono::seconds(5));
  EXPECT_GT(obs::counter("pool.generation_flushes").value(), flushes_before);
}

/// Seeded kill schedules: a dispatch storm is in flight when the owning
/// shard's primary dies.  Every call must complete correctly or fail
/// with a typed error within its deadline, and dispatch must succeed
/// again once the backup promotes.
class FailoverChaos : public ::testing::TestWithParam<int> {};

TEST_P(FailoverChaos, KillPrimaryMidDispatchStorm) {
  const std::uint64_t seed = 5000 + static_cast<std::uint64_t>(GetParam());
  SplitMix64 rng(seed);

  ShardCluster cluster(2, /*server_count=*/2);
  auto client = cluster.makeClient();
  cluster.registerServersFor(client, "ep");
  const std::uint32_t owner = client.ownerOf("ep");

  constexpr std::int64_t kSamples = 256;
  const auto expected = numlib::runEp(0, kSamples);
  const std::size_t threads = 2 + rng.nextBelow(2);   // 2..3 clients
  const std::size_t calls_per_thread = 4;
  const double kill_after = 0.002 + 0.03 * rng.nextDouble();

  const std::uint64_t promotions_before =
      obs::counter("metaserver.replication.promotions").value();

  std::vector<std::future<void>> storms;
  for (std::size_t t = 0; t < threads; ++t) {
    storms.push_back(std::async(std::launch::async, [&, t] {
      for (std::size_t c = 0; c < calls_per_thread; ++c) {
        std::vector<double> sums(2, -1.0), q(10);
        auto args = epArgs(sums, q, kSamples);
        CallOptions opts;
        opts.deadline_seconds = kDeadlineSeconds;
        opts.retries = 4;
        opts.backoff_seconds = 0.002;
        const auto start = std::chrono::steady_clock::now();
        try {
          client.dispatch("ep", args, opts);
          ASSERT_NEAR(sums[0], expected.sx, 1e-9)
              << "seed " << seed << " thread " << t << " call " << c;
          ASSERT_NEAR(sums[1], expected.sy, 1e-9)
              << "seed " << seed << " thread " << t << " call " << c;
        } catch (const Error&) {
          // Typed failure is within contract; anything else escapes and
          // fails the test.
        }
        ASSERT_LT(secondsSince(start), kHangBound)
            << "seed " << seed << " thread " << t << " call " << c;
      }
    }));
  }

  // Kill the owning shard's primary mid-storm.
  std::this_thread::sleep_for(
      std::chrono::duration<double>(kill_after));
  const auto killed = std::chrono::steady_clock::now();
  cluster.shards_[owner].primary->stop();

  ASSERT_TRUE(eventually(kPromotionBound, [&] {
    return cluster.shards_[owner].backup->isPrimary();
  })) << "seed " << seed << ": backup never promoted";
  EXPECT_LT(secondsSince(killed), kPromotionBound) << "seed " << seed;

  for (auto& f : storms) f.get();

  EXPECT_GT(obs::counter("metaserver.replication.promotions").value(),
            promotions_before);

  // Post-promotion the cluster serves again, from the replicated table.
  std::vector<double> sums(2, -1.0), q(10);
  auto args = epArgs(sums, q, kSamples);
  CallOptions opts;
  opts.deadline_seconds = kDeadlineSeconds;
  opts.retries = 4;
  client.dispatch("ep", args, opts);
  EXPECT_NEAR(sums[0], expected.sx, 1e-9) << "seed " << seed;
  EXPECT_NEAR(sums[1], expected.sy, 1e-9) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FailoverChaos, ::testing::Range(0, 10));

}  // namespace
}  // namespace ninf
