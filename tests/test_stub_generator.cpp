// Stub generator: the emitted C++ must reference the right accessors,
// call the Calls-clause target in IDL argument order, and embed a
// byte-exact compiled interface.
#include <gtest/gtest.h>

#include "idl/parser.h"
#include "idl/stub_generator.h"

namespace ninf::idl {
namespace {

const InterfaceInfo& dmmul() {
  static const InterfaceInfo info = parseSingle(R"(
    Define dmmul(mode_in long n,
                 mode_in double A[n][n],
                 mode_in double B[n][n],
                 mode_out double C[n][n])
    "dmmul is double precision matrix multiply",
    Calls "C" mmul(n, A, B, C);)");
  return info;
}

TEST(StubGenerator, ParamTypes) {
  const auto& info = dmmul();
  EXPECT_EQ(stubParamType(info.params[0]), "std::int64_t");
  EXPECT_EQ(stubParamType(info.params[1]), "std::span<const double>");
  EXPECT_EQ(stubParamType(info.params[3]), "std::span<double>");
}

TEST(StubGenerator, StubBindsAccessorsAndCallsTarget) {
  const std::string src = generateServerStub(dmmul(), "mmul.h");
  EXPECT_NE(src.find("void ninf_stub_dmmul"), std::string::npos);
  EXPECT_NE(src.find("ctx.intArg(\"n\")"), std::string::npos);
  EXPECT_NE(src.find("ctx.arrayIn(\"A\")"), std::string::npos);
  EXPECT_NE(src.find("ctx.arrayIn(\"B\")"), std::string::npos);
  EXPECT_NE(src.find("ctx.arrayOut(\"C\")"), std::string::npos);
  // Calls-clause order, arrays decayed to pointers.
  EXPECT_NE(src.find("mmul(arg_n, arg_A.data(), arg_B.data(), arg_C.data())"),
            std::string::npos);
  EXPECT_NE(src.find("#include \"mmul.h\""), std::string::npos);
}

TEST(StubGenerator, OutputScalarsPublishedBack) {
  const auto info = parseSingle(R"(
    Define stat(mode_in long n, mode_in double v[n],
                mode_out double mean, mode_out long count)
    Calls "C" stat(n, v, mean, count);)");
  const std::string src = generateServerStub(info, "");
  // Out scalars pass by address and are published after the call.
  EXPECT_NE(src.find("&arg_mean"), std::string::npos);
  EXPECT_NE(src.find("&arg_count"), std::string::npos);
  EXPECT_NE(src.find("ctx.setDouble(\"mean\", arg_mean)"), std::string::npos);
  EXPECT_NE(src.find("ctx.setInt(\"count\", arg_count)"), std::string::npos);
}

TEST(StubGenerator, EmbeddedInterfaceBlobRoundTrips) {
  const std::string src = generateServerStub(dmmul(), "");
  // Extract the byte literal and rebuild the interface from it.
  const auto begin = src.find("ninf_iface_dmmul[] = {");
  ASSERT_NE(begin, std::string::npos);
  const auto end = src.find("};", begin);
  std::vector<std::uint8_t> bytes;
  std::size_t pos = src.find('{', begin) + 1;
  while (pos < end) {
    const char c = src[pos];
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t used = 0;
      bytes.push_back(static_cast<std::uint8_t>(
          std::stoul(src.substr(pos), &used)));
      pos += used;
    } else {
      ++pos;
    }
  }
  EXPECT_EQ(InterfaceInfo::fromBytes(bytes), dmmul());
}

TEST(StubGenerator, RegistrationUnitCoversAllInterfaces) {
  const auto other = parseSingle(R"(
    Define ep(mode_in long first, mode_in long count,
              mode_out double sums[2])
    Calls "C" ep_kernel(first, count, sums);)");
  const std::string src = generateRegistrationUnit({dmmul(), other}, "lib.h");
  EXPECT_NE(src.find("registerGeneratedExecutables"), std::string::npos);
  EXPECT_NE(src.find("ninf_stub_dmmul"), std::string::npos);
  EXPECT_NE(src.find("ninf_stub_ep"), std::string::npos);
  EXPECT_NE(src.find("registry.add"), std::string::npos);
}

TEST(StubGenerator, DeterministicOutput) {
  EXPECT_EQ(generateServerStub(dmmul(), "h.h"),
            generateServerStub(dmmul(), "h.h"));
}

}  // namespace
}  // namespace ninf::idl
