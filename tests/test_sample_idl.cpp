// The sample IDL module shipped in examples/idl/ must stay valid: it is
// the file README and docs/IDL.md point users at.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "idl/parser.h"
#include "idl/stub_generator.h"

namespace ninf::idl {
namespace {

std::string readSample() {
  std::ifstream in(SAMPLE_IDL_PATH);
  EXPECT_TRUE(in.good()) << "missing " << SAMPLE_IDL_PATH;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(SampleIdl, ParsesWithTwoInterfaces) {
  const auto module = parseModule(readSample());
  ASSERT_EQ(module.size(), 2u);
  EXPECT_EQ(module[0].name, "dmmul");
  EXPECT_EQ(module[1].name, "linsolve");
  for (const auto& info : module) EXPECT_TRUE(info.validate());
}

TEST(SampleIdl, CalcOrderHintsEvaluate) {
  const auto module = parseModule(readSample());
  const std::int64_t scalars_mm[] = {100, 0, 0, 0};
  EXPECT_EQ(module[0].flopsEstimate(scalars_mm), 2'000'000);
  const std::int64_t scalars_ls[] = {100, 0, 0};
  EXPECT_EQ(module[1].flopsEstimate(scalars_ls), 2'000'000 / 3 + 20'000);
}

TEST(SampleIdl, InoutParameterShipsBothWays) {
  const auto module = parseModule(readSample());
  const auto& bx = module[1].params[2];
  EXPECT_EQ(bx.name, "bx");
  EXPECT_TRUE(bx.shippedIn());
  EXPECT_TRUE(bx.shippedOut());
}

TEST(SampleIdl, StubGenerationSucceeds) {
  const auto module = parseModule(readSample());
  const std::string unit = generateRegistrationUnit(module, "mylib.h");
  EXPECT_NE(unit.find("ninf_stub_dmmul"), std::string::npos);
  EXPECT_NE(unit.find("ninf_stub_linsolve"), std::string::npos);
}

TEST(SampleIdl, CanonicalFormRoundTrips) {
  const auto module = parseModule(readSample());
  for (const auto& info : module) {
    EXPECT_EQ(parseSingle(formatInterface(info)), info);
  }
}

}  // namespace
}  // namespace ninf::idl
