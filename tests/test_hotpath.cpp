// Hot-path regression tests (PR 8): steady-state allocation-freedom of
// the v2 frame path, FrameAssembler compaction linearity, slow-reader
// byte-exactness through the reactor's batched write queue, and
// end-to-end idempotent-cache correctness under fault injection.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <thread>
#include <vector>

#include "client/client.h"
#include "common/buffer_pool.h"
#include "common/error.h"
#include "numlib/matrix.h"
#include "numlib/mmul.h"
#include "obs/metrics.h"
#include "protocol/message.h"
#include "server/server.h"
#include "transport/fault_injection.h"
#include "transport/tcp_transport.h"
#include "transport/transport.h"
#include "xdr/xdr.h"

// ---- counting allocator ---------------------------------------------------
//
// Replacing the global operator new/delete in this binary lets the tests
// below prove a code path performs no heap traffic at all — the pool and
// the assembler are DESIGNED to be allocation-free in steady state, and
// "low" would silently regress back to per-call malloc.

namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};
}  // namespace

// The compiler cannot see that the replaced operator new IS malloc-based
// and warns about free() in the matching deletes; the pairing is correct.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t n) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t n) { return ::operator new(n); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#pragma GCC diagnostic pop

namespace ninf {
namespace {

using client::CallOptions;
using client::NinfClient;
using protocol::ArgValue;
using server::NinfServer;
using server::Registry;
using transport::FaultPlan;
using transport::FaultSpec;

std::uint64_t heapAllocs() {
  return g_heap_allocs.load(std::memory_order_relaxed);
}

// ---- satellite: FrameAssembler compaction stays amortized-linear ----------

TEST(HotPath, FrameAssemblerCompactionIsAmortizedLinear) {
  // Dribble thousands of small v2 frames through the assembler in
  // 7-byte reads.  Offset-tracked consumption moves each retained byte
  // at most once per buffer halving, so total memmove traffic is
  // bounded by a small multiple of the bytes fed; the historical
  // erase-per-frame scheme would move O(frames * frame_size) bytes.
  protocol::FrameAssembler assembler("test");
  assembler.setMode(protocol::WireMode::V2);

  xdr::Encoder body;
  for (int i = 0; i < 10; ++i) body.putU32(static_cast<std::uint32_t>(i));
  std::vector<std::uint8_t> wire;
  constexpr int kFrames = 4000;
  for (int i = 0; i < kFrames; ++i) {
    const auto frame = protocol::flattenFrame(
        protocol::WireMode::V2, protocol::MessageType::Ping,
        static_cast<std::uint64_t>(i), {}, body);
    wire.insert(wire.end(), frame.begin(), frame.end());
  }

  std::size_t frames_out = 0;
  for (std::size_t off = 0; off < wire.size(); off += 7) {
    const std::size_t n = std::min<std::size_t>(7, wire.size() - off);
    assembler.feed({wire.data() + off, n});
    while (auto f = assembler.next()) {
      EXPECT_EQ(f->header.call_id, frames_out);
      ++frames_out;
    }
  }
  EXPECT_EQ(frames_out, static_cast<std::size_t>(kFrames));
  // Linear bound with generous slack (measured ~0x of bytes fed, since
  // the buffer is drained completely between most reads).
  EXPECT_LE(assembler.movedBytes(), 2 * wire.size());
}

// ---- tentpole: steady-state frame path is allocation-free -----------------

TEST(HotPath, SteadyStateFramePathIsAllocationFree) {
  // flattenFramePooled -> FrameAssembler::feed -> next() is the per-call
  // wire path of the v2 server (epilogue flatten, reactor reassembly).
  // After warm-up every buffer comes from the slab pool and the
  // assembler's scratch vector has reached its high-water capacity, so
  // the loop must perform ZERO heap allocations.
  xdr::Encoder body;
  std::vector<double> payload(256, 1.5);  // 2 KiB scalar payload
  body.putU32(static_cast<std::uint32_t>(payload.size()));
  for (const double v : payload) body.putDouble(v);

  protocol::FrameAssembler assembler("test");
  assembler.setMode(protocol::WireMode::V2);
  const protocol::WireTraceContext ctx{};

  auto pump = [&](std::uint64_t id) {
    common::PooledBuffer wire =
        protocol::flattenFramePooled(protocol::WireMode::V2,
                                     protocol::MessageType::CallReply, id,
                                     ctx, body);
    assembler.feed(wire.span());
    auto frame = assembler.next();
    return frame.has_value() && frame->header.call_id == id;
  };

  for (std::uint64_t i = 0; i < 64; ++i) ASSERT_TRUE(pump(i));  // warm up

  const double misses0 = obs::counter("pool.buffers.misses").value();
  const std::uint64_t allocs0 = heapAllocs();
  int bad = 0;
  for (std::uint64_t i = 0; i < 2000; ++i) {
    if (!pump(i)) ++bad;
  }
  EXPECT_EQ(bad, 0);
  EXPECT_EQ(heapAllocs() - allocs0, 0u)
      << "the steady-state frame path must not touch the heap";
  EXPECT_DOUBLE_EQ(obs::counter("pool.buffers.misses").value() - misses0,
                   0.0);
}

// ---- live-server fixtures -------------------------------------------------

/// Reactor-served TCP server with the standard executables plus two
/// purpose-built entries: `idem` (Idempotent, counts executions) and
/// `impure` (NOT idempotent, output depends on execution count).
class HotPathRpc : public ::testing::Test {
 protected:
  void SetUp() override {
    server::registerStandardExecutables(registry_, 2);
    registry_.add(
        R"IDL(Define idem(mode_in long n,
                          mode_in double A[n],
                          mode_out double B[n])
              Idempotent,
              Calls "C" idem(n, A, B);)IDL",
        [this](server::CallContext& ctx) {
          idem_runs_.fetch_add(1);
          const auto n = static_cast<std::size_t>(ctx.intArg("n"));
          const auto in = ctx.arrayIn("A");
          auto out = ctx.arrayOut("B");
          for (std::size_t i = 0; i < n; ++i) out[i] = 2.0 * in[i] + 1.0;
        });
    registry_.add(
        R"IDL(Define impure(mode_in long n,
                            mode_out double B[n])
              Calls "C" impure(n, B);)IDL",
        [this](server::CallContext& ctx) {
          const auto gen = static_cast<double>(impure_runs_.fetch_add(1));
          auto out = ctx.arrayOut("B");
          for (auto& v : out) v = gen;
        });
    server_.emplace(registry_, server::ServerOptions{.workers = 4});
    listener_ = std::make_shared<transport::TcpListener>(0);
    server().start(listener_);
  }

  void TearDown() override { server().stop(); }

  std::unique_ptr<transport::Stream> connect() {
    return transport::tcpConnect("127.0.0.1", listener_->port());
  }

  Registry registry_;
  // Engaged in SetUp() for the whole test lifetime; the accessor
  // keeps the one unchecked dereference in a single audited place.
  // NOLINTNEXTLINE(bugprone-unchecked-optional-access)
  NinfServer& server() { return *server_; }
  std::optional<NinfServer> server_;
  std::shared_ptr<transport::TcpListener> listener_;
  std::atomic<int> idem_runs_{0};
  std::atomic<int> impure_runs_{0};
};

// ---- satellite: cache correctness end-to-end ------------------------------

TEST_F(HotPathRpc, ConcurrentIdenticalIdempotentCallsComputeOnce) {
  // A thundering herd of byte-identical idempotent calls over one
  // multiplexed connection: single-flight coalescing must run the
  // handler exactly once and hand every caller the same reply bytes.
  NinfClient client(connect());
  constexpr std::size_t kN = 64;
  constexpr int kThreads = 16;
  std::vector<double> in(kN);
  for (std::size_t i = 0; i < kN; ++i) in[i] = 0.25 * static_cast<double>(i);

  std::vector<std::vector<double>> outs(kThreads,
                                        std::vector<double>(kN, -1.0));
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::vector<ArgValue> args = {
          ArgValue::inInt(static_cast<std::int64_t>(kN)),
          ArgValue::inArray(in), ArgValue::outArray(outs[t])};
      try {
        client.call("idem", args);
      } catch (const Error&) {
        failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  client.close();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(idem_runs_.load(), 1) << "cache must coalesce identical calls";
  for (const auto& out : outs) {
    for (std::size_t i = 0; i < kN; ++i) {
      EXPECT_DOUBLE_EQ(out[i], 2.0 * in[i] + 1.0);
    }
  }
}

TEST_F(HotPathRpc, NonIdempotentCallsAreNeverCached) {
  NinfClient client(connect());
  constexpr std::size_t kN = 8;
  std::vector<double> first(kN, -1.0);
  std::vector<double> second(kN, -1.0);
  {
    std::vector<ArgValue> args = {
        ArgValue::inInt(static_cast<std::int64_t>(kN)),
        ArgValue::outArray(first)};
    client.call("impure", args);
  }
  {
    std::vector<ArgValue> args = {
        ArgValue::inInt(static_cast<std::int64_t>(kN)),
        ArgValue::outArray(second)};
    client.call("impure", args);
  }
  client.close();
  // Byte-identical requests, but the entry lacks the Idempotent clause:
  // both must execute, and the generation-stamped outputs must differ.
  EXPECT_EQ(impure_runs_.load(), 2);
  EXPECT_DOUBLE_EQ(first[0], 0.0);
  EXPECT_DOUBLE_EQ(second[0], 1.0);
}

TEST_F(HotPathRpc, CacheServesByteIdenticalRepliesUnderChaos) {
  // Seeded fault injection (resets, delays) on the client side while
  // byte-identical idempotent calls retry: however the wire misbehaves,
  // the handler runs exactly once server-side and every successful
  // caller sees the owner's reply, byte for byte.
  FaultSpec spec;
  spec.reset = 0.12;
  spec.delay = 0.2;
  spec.delay_min_ms = 0.05;
  spec.delay_max_ms = 0.5;
  auto plan = std::make_shared<FaultPlan>(1234, spec);

  NinfClient client(transport::wrapFaulty(connect(), plan));
  client.setReconnect([this, plan] {
    transport::checkConnectFault(*plan, "hotpath chaos server");
    return transport::wrapFaulty(connect(), plan);
  });

  constexpr std::size_t kN = 32;
  std::vector<double> in(kN);
  for (std::size_t i = 0; i < kN; ++i) in[i] = 1.0 / (1.0 + static_cast<double>(i));

  CallOptions opts;
  opts.deadline_seconds = 5.0;
  opts.retries = 8;
  opts.backoff_seconds = 0.002;

  int succeeded = 0;
  for (int round = 0; round < 12; ++round) {
    std::vector<double> out(kN, -1.0);
    std::vector<ArgValue> args = {
        ArgValue::inInt(static_cast<std::int64_t>(kN)),
        ArgValue::inArray(in), ArgValue::outArray(out)};
    try {
      client.call("idem", args);
    } catch (const Error&) {
      continue;  // a round may die to chaos; correctness holds for the rest
    }
    ++succeeded;
    for (std::size_t i = 0; i < kN; ++i) {
      ASSERT_DOUBLE_EQ(out[i], 2.0 * in[i] + 1.0) << "round " << round;
    }
  }
  client.close();

  EXPECT_GT(succeeded, 0);
  // Every request was byte-identical, so no matter how many times chaos
  // forced a resend, the kernel ran exactly once.
  EXPECT_EQ(idem_runs_.load(), 1);
}

// ---- satellite: slow reader never sees duplicated/interleaved bytes -------

/// Decorator that drains the wire in tiny sips with pauses, so the
/// server's reply stream backs up and its reactor write queue goes
/// through many partial sendvNowait rounds.
class ThrottledStream : public transport::Stream {
 public:
  explicit ThrottledStream(std::unique_ptr<transport::Stream> inner)
      : inner_(std::move(inner)) {}

  void sendAll(std::span<const std::uint8_t> data) override {
    inner_->sendAll(data);
  }
  void sendv(
      std::span<const std::span<const std::uint8_t>> buffers) override {
    inner_->sendv(buffers);
  }
  void recvAll(std::span<std::uint8_t> buffer) override {
    std::size_t off = 0;
    while (off < buffer.size()) {
      const std::size_t n = std::min<std::size_t>(kSip, buffer.size() - off);
      inner_->recvAll(buffer.subspan(off, n));
      off += n;
      maybePause();
    }
  }
  std::size_t recvSome(std::span<std::uint8_t> buffer) override {
    const std::size_t n = inner_->recvSome(
        buffer.subspan(0, std::min<std::size_t>(kSip, buffer.size())));
    maybePause();
    return n;
  }
  void setDeadline(std::chrono::steady_clock::time_point d) override {
    inner_->setDeadline(d);
  }
  void shutdownSend() override { inner_->shutdownSend(); }
  void close() override { inner_->close(); }
  std::string peerName() const override { return inner_->peerName(); }

 private:
  static constexpr std::size_t kSip = 512;

  void maybePause() {
    if (++sips_ % 16 == 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }

  std::unique_ptr<transport::Stream> inner_;
  std::uint64_t sips_ = 0;
};

TEST_F(HotPathRpc, SlowReaderGetsExactBytesThroughBatchedWriteQueue) {
  // 8 threads x 8 DISTINCT dmmul calls multiplexed over one channel
  // whose reader drains slowly: the server queues multiple replies per
  // connection and flushes them through coalesced, partially-accepted
  // writev rounds.  Any duplicated, dropped, or interleaved byte
  // desynchronizes v2 framing or corrupts a result — every call must
  // come back correct.
  NinfClient client(std::make_unique<ThrottledStream>(connect()));

  const double batched0 =
      obs::counter("server.reactor.batch.frames").value();

  constexpr std::size_t n = 48;  // 18 KiB replies
  constexpr int kThreads = 8;
  constexpr int kCallsPerThread = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int k = 0; k < kCallsPerThread; ++k) {
        const int salt = t * kCallsPerThread + k;
        const numlib::Matrix a = numlib::randomMatrix(n, 100 + 2 * salt);
        const numlib::Matrix b = numlib::randomMatrix(n, 101 + 2 * salt);
        std::vector<double> c(n * n, 0.0);
        std::vector<ArgValue> args = {
            ArgValue::inInt(static_cast<std::int64_t>(n)),
            ArgValue::inArray(a.flat()), ArgValue::inArray(b.flat()),
            ArgValue::outArray(c)};
        try {
          client.call("dmmul", args);
        } catch (const Error&) {
          failures.fetch_add(1);
          continue;
        }
        const numlib::Matrix expected = numlib::dmmul(a, b);
        for (std::size_t i = 0; i < c.size(); ++i) {
          if (std::abs(c[i] - expected.flat()[i]) > 1e-9) {
            failures.fetch_add(1);
            break;
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  client.close();

  EXPECT_EQ(failures.load(), 0);
  // The reply stream actually exercised the coalescing write queue.
  EXPECT_GT(obs::counter("server.reactor.batch.frames").value(), batched0);
}

}  // namespace
}  // namespace ninf
