// Variable-width PE scheduling (section 5.3): FCFS head-of-line blocking
// vs FPFS backfilling vs FPMPFS packing.
#include <gtest/gtest.h>

#include "machine/pe_scheduler.h"
#include "simcore/simulation.h"

namespace ninf::machine {
namespace {

using simcore::Process;
using simcore::Simulation;

Process submit(Simulation& sim, PeScheduler& sched, double at,
               std::int64_t width, double seconds, double& done_at) {
  co_await sim.delay(at);
  co_await sched.run(width, seconds);
  done_at = sim.now();
}

TEST(PeScheduler, SingleJobRunsImmediately) {
  Simulation sim;
  PeScheduler sched(sim, 4, AdmissionPolicy::Fcfs);
  double done = -1;
  submit(sim, sched, 0.0, 2, 3.0, done);
  sim.run();
  EXPECT_DOUBLE_EQ(done, 3.0);
  EXPECT_EQ(sched.completed(), 1u);
}

TEST(PeScheduler, ParallelJobsSharePes) {
  Simulation sim;
  PeScheduler sched(sim, 4, AdmissionPolicy::Fcfs);
  double d1 = -1, d2 = -1;
  submit(sim, sched, 0.0, 2, 3.0, d1);
  submit(sim, sched, 0.0, 2, 3.0, d2);
  sim.run();
  EXPECT_DOUBLE_EQ(d1, 3.0);  // both fit simultaneously
  EXPECT_DOUBLE_EQ(d2, 3.0);
}

TEST(PeScheduler, FcfsHeadOfLineBlocks) {
  // 4 PEs: a 3-wide job runs; a 4-wide head blocks a 1-wide job behind
  // it even though a PE is free.
  Simulation sim;
  PeScheduler sched(sim, 4, AdmissionPolicy::Fcfs);
  double wide = -1, running = -1, narrow = -1;
  submit(sim, sched, 0.0, 3, 10.0, running);
  submit(sim, sched, 1.0, 4, 5.0, wide);
  submit(sim, sched, 2.0, 1, 1.0, narrow);
  sim.run();
  EXPECT_DOUBLE_EQ(running, 10.0);
  EXPECT_DOUBLE_EQ(wide, 15.0);    // starts when the 3-wide frees at 10
  EXPECT_DOUBLE_EQ(narrow, 16.0);  // strictly after the wide job
}

TEST(PeScheduler, FpfsBackfillsAroundBlockedHead) {
  Simulation sim;
  PeScheduler sched(sim, 4, AdmissionPolicy::Fpfs);
  double wide = -1, running = -1, narrow = -1;
  submit(sim, sched, 0.0, 3, 10.0, running);
  submit(sim, sched, 1.0, 4, 5.0, wide);
  submit(sim, sched, 2.0, 1, 1.0, narrow);
  sim.run();
  // The 1-wide job slips into the idle PE immediately.
  EXPECT_DOUBLE_EQ(narrow, 3.0);
  EXPECT_DOUBLE_EQ(wide, 15.0);
}

TEST(PeScheduler, FpmpfsPicksWidestFitting) {
  // 8 PEs free; queue: [2-wide, 6-wide, 3-wide] arrive while machine
  // fully busy until t=1.  FPMPFS admits 6+2 first, leaving 3 behind;
  // FPFS would admit 2, then 6, then the 3 waits anyway — but FPMPFS's
  // pick order must be width-descending.
  Simulation sim;
  PeScheduler sched(sim, 8, AdmissionPolicy::Fpmpfs);
  double blocker = -1, two = -1, six = -1, three = -1;
  submit(sim, sched, 0.0, 8, 1.0, blocker);
  submit(sim, sched, 0.1, 2, 4.0, two);
  submit(sim, sched, 0.2, 6, 4.0, six);
  submit(sim, sched, 0.3, 3, 1.0, three);
  sim.run();
  EXPECT_DOUBLE_EQ(six, 5.0);    // admitted at t=1 (widest first)
  EXPECT_DOUBLE_EQ(two, 5.0);    // fits alongside
  EXPECT_DOUBLE_EQ(three, 6.0);  // waits for the 6-wide to finish
}

TEST(PeScheduler, FpfsImprovesUtilizationOverFcfs) {
  auto makespan = [](AdmissionPolicy policy) {
    Simulation sim;
    PeScheduler sched(sim, 8, policy);
    std::vector<double> done(24, -1);
    // Alternating wide/narrow arrivals: FCFS strands PEs behind wides.
    for (int i = 0; i < 24; ++i) {
      const std::int64_t width = (i % 3 == 0) ? 7 : 2;
      submit(sim, sched, 0.05 * i, width, 2.0, done[i]);
    }
    sim.run();
    double last = 0;
    for (double d : done) last = std::max(last, d);
    return last;
  };
  const double fcfs = makespan(AdmissionPolicy::Fcfs);
  const double fpfs = makespan(AdmissionPolicy::Fpfs);
  const double fpmpfs = makespan(AdmissionPolicy::Fpmpfs);
  EXPECT_LT(fpfs, fcfs);
  EXPECT_LE(fpmpfs, fcfs);
}

TEST(PeScheduler, UtilizationAccounting) {
  Simulation sim;
  PeScheduler sched(sim, 4, AdmissionPolicy::Fcfs);
  double done = -1;
  submit(sim, sched, 0.0, 4, 2.0, done);  // whole machine for 2 s
  sim.run();
  EXPECT_NEAR(sched.utilizationPercent(), 100.0, 1.0);
}

TEST(PeScheduler, WidthValidation) {
  Simulation sim;
  PeScheduler sched(sim, 4, AdmissionPolicy::Fcfs);
  bool threw = false;
  [](Simulation&, PeScheduler& s, bool& flag) -> Process {
    try {
      co_await s.run(5, 1.0);  // wider than the machine
    } catch (const std::logic_error&) {
      flag = true;
    }
  }(sim, sched, threw);
  sim.run();
  EXPECT_TRUE(threw);
}

TEST(PeScheduler, PolicyNames) {
  EXPECT_STREQ(admissionPolicyName(AdmissionPolicy::Fcfs), "FCFS");
  EXPECT_STREQ(admissionPolicyName(AdmissionPolicy::Fpfs), "FPFS");
  EXPECT_STREQ(admissionPolicyName(AdmissionPolicy::Fpmpfs), "FPMPFS");
}

}  // namespace
}  // namespace ninf::machine
