// Chaos suite: hundreds of seeded fault schedules over live RPC.
//
// The robustness invariant, asserted for every schedule: every call
// either returns a correct result or throws a typed ninf::Error within
// its deadline — never hangs, never corrupts.  A schedule is a
// (seed, FaultSpec) pair, so any failure replays bit-identically from
// the seed printed in the test name.
//
// Two scenarios: a client talking to one server through a faulty
// transport (resets, truncations, stalls, stutter, refused reconnects),
// and a metaserver failing over from a faulty server to a healthy one.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "client/client.h"
#include "common/error.h"
#include "common/rng.h"
#include "metaserver/metaserver.h"
#include "numlib/ep.h"
#include "numlib/matrix.h"
#include "numlib/mmul.h"
#include "server/server.h"
#include "transport/fault_injection.h"
#include "transport/inproc_transport.h"
#include "transport/tcp_transport.h"

namespace ninf {
namespace {

using client::CallOptions;
using client::NinfClient;
using protocol::ArgValue;
using transport::FaultPlan;
using transport::FaultSpec;

constexpr double kDeadlineSeconds = 5.0;
// Generous hang bound: the deadline plus every backoff a retrying call
// could take.  A hang shows up as a test timeout long before this.
constexpr double kHangBound = 30.0;

double secondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Derive a fault mix from the seed so the sweep covers mild schedules
/// (everything succeeds after a hiccup) through hostile ones (most
/// attempts die).  Kept low enough that retries usually win.
FaultSpec specForSeed(std::uint64_t seed) {
  SplitMix64 rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  FaultSpec spec;
  spec.reset = 0.06 * rng.nextDouble();
  spec.truncate = 0.06 * rng.nextDouble();
  spec.connect_refusal = 0.10 * rng.nextDouble();
  spec.delay = 0.25 * rng.nextDouble();
  spec.delay_min_ms = 0.05;
  spec.delay_max_ms = 0.8;
  spec.stutter = 0.4 * rng.nextDouble();
  spec.stutter_bytes = 1 + static_cast<std::size_t>(rng.nextBelow(7));
  // Every fourth schedule opens with a scripted burst, exercising the
  // deterministic fault path alongside the probabilistic one.
  if (seed % 4 == 0) spec.reset_first_sends = 1;
  if (seed % 8 == 3) spec.refuse_first_connects = 1;
  return spec;
}

/// 120 seeded schedules: one client, one real TCP server, faults
/// injected on the client's transport (initial stream and reconnects).
class ChaosClientServer : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    server::registerStandardExecutables(registry_);
    server_.emplace(registry_, server::ServerOptions{.workers = 2});
    listener_ = std::make_shared<transport::TcpListener>(0);
    port_ = listener_->port();
    server().start(listener_);
  }

  void TearDown() override { server().stop(); }

  server::Registry registry_;
  // Engaged in SetUp() for the whole test lifetime; the accessor
  // keeps the one unchecked dereference in a single audited place.
  // NOLINTNEXTLINE(bugprone-unchecked-optional-access)
  server::NinfServer& server() { return *server_; }
  std::optional<server::NinfServer> server_;
  std::shared_ptr<transport::TcpListener> listener_;
  std::uint16_t port_ = 0;
};

TEST_P(ChaosClientServer, CallReturnsCorrectResultOrTypedErrorInTime) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  auto plan = std::make_shared<FaultPlan>(seed, specForSeed(seed));

  NinfClient client(
      transport::wrapFaulty(transport::tcpConnect("127.0.0.1", port_), plan));
  client.setReconnect([this, plan] {
    transport::checkConnectFault(*plan, "chaos server");
    return transport::wrapFaulty(transport::tcpConnect("127.0.0.1", port_),
                                 plan);
  });

  const std::size_t n = 6;
  const numlib::Matrix a = numlib::randomMatrix(n, seed + 10);
  const numlib::Matrix b = numlib::randomMatrix(n, seed + 11);
  const numlib::Matrix expected = numlib::dmmul(a, b);

  CallOptions opts;
  opts.deadline_seconds = kDeadlineSeconds;
  opts.retries = 6;
  opts.backoff_seconds = 0.002;

  for (int round = 0; round < 3; ++round) {
    std::vector<double> c(n * n, -1.0);
    std::vector<ArgValue> args = {
        ArgValue::inInt(static_cast<std::int64_t>(n)),
        ArgValue::inArray(a.flat()), ArgValue::inArray(b.flat()),
        ArgValue::outArray(c)};
    const auto start = std::chrono::steady_clock::now();
    try {
      client.call("dmmul", args, opts);
      // Success must mean a correct result: injected truncation, resets,
      // and stutter may kill a call but never corrupt one.
      for (std::size_t i = 0; i < c.size(); ++i) {
        ASSERT_NEAR(c[i], expected.flat()[i], 1e-12)
            << "seed " << seed << " round " << round << " index " << i;
      }
    } catch (const Error&) {
      // Typed failure is within contract; hangs and foreign exceptions
      // are not (anything else escapes and fails the test).
    }
    EXPECT_LT(secondsSince(start), kHangBound)
        << "seed " << seed << " round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosClientServer, ::testing::Range(0, 120));

/// 100 seeded schedules: metaserver with a faulty server-0 and a clean
/// server-1 — failover, cooldown, and per-attempt deadlines together.
class ChaosMetaserver : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    for (int i = 0; i < 2; ++i) {
      auto registry = std::make_unique<server::Registry>();
      server::registerStandardExecutables(*registry);
      auto srv = std::make_unique<server::NinfServer>(
          *registry, server::ServerOptions{.workers = 2});
      auto listener = std::make_shared<transport::TcpListener>(0);
      ports_.push_back(listener->port());
      srv->start(listener);
      registries_.push_back(std::move(registry));
      servers_.push_back(std::move(srv));
    }
  }

  void TearDown() override {
    for (auto& s : servers_) s->stop();
  }

  std::vector<std::unique_ptr<server::Registry>> registries_;
  std::vector<std::unique_ptr<server::NinfServer>> servers_;
  std::vector<std::uint16_t> ports_;
};

TEST_P(ChaosMetaserver, DispatchReturnsCorrectResultOrTypedErrorInTime) {
  const std::uint64_t seed = 1000 + static_cast<std::uint64_t>(GetParam());
  auto plan = std::make_shared<FaultPlan>(seed, specForSeed(seed));

  metaserver::Metaserver meta(metaserver::SchedulingPolicy::RoundRobin);
  meta.setFailoverBackoff(0.001);
  meta.setServerCooldown(0.05);
  const auto faulty_port = ports_[0];
  meta.addServer({.name = "faulty",
                  .factory = [faulty_port, plan] {
                    transport::checkConnectFault(*plan, "faulty server");
                    return std::make_unique<NinfClient>(transport::wrapFaulty(
                        transport::tcpConnect("127.0.0.1", faulty_port),
                        plan));
                  }});
  const auto clean_port = ports_[1];
  meta.addServer({.name = "clean", .factory = [clean_port] {
                    return NinfClient::connectTcp("127.0.0.1", clean_port);
                  }});

  CallOptions opts;
  opts.deadline_seconds = kDeadlineSeconds;
  opts.retries = 4;

  constexpr std::int64_t kSamples = 256;
  const auto expected = numlib::runEp(0, kSamples);
  for (int round = 0; round < 2; ++round) {
    std::vector<double> sums(2, -1.0), q(10);
    std::vector<ArgValue> args = {ArgValue::inInt(0),
                                  ArgValue::inInt(kSamples),
                                  ArgValue::outArray(sums),
                                  ArgValue::outArray(q)};
    const auto start = std::chrono::steady_clock::now();
    try {
      meta.dispatch("ep", args, opts);
      ASSERT_NEAR(sums[0], expected.sx, 1e-9)
          << "seed " << seed << " round " << round;
      ASSERT_NEAR(sums[1], expected.sy, 1e-9)
          << "seed " << seed << " round " << round;
    } catch (const Error&) {
      // Typed failure within contract.
    }
    EXPECT_LT(secondsSince(start), kHangBound)
        << "seed " << seed << " round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosMetaserver, ::testing::Range(0, 100));

// --- Deterministic fault-injection mechanics -----------------------------

TEST(FaultInjection, NullPlanIsNotWrapped) {
  auto [a, b] = transport::inprocPair();
  transport::Stream* raw = a.get();
  auto wrapped = transport::wrapFaulty(std::move(a), nullptr);
  EXPECT_EQ(wrapped.get(), raw);  // zero overhead when injection is off
}

TEST(FaultInjection, NoFaultPlanPassesBytesThroughIdentically) {
  auto plan = std::make_shared<FaultPlan>();
  EXPECT_FALSE(plan->enabled());
  auto [a, b] = transport::inprocPair();
  auto wrapped = transport::wrapFaulty(std::move(a), plan);
  std::vector<std::uint8_t> payload(4096);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 31 + 7);
  }
  wrapped->sendAll(payload);
  const std::span<const std::uint8_t> half[] = {
      std::span(payload).first(1000), std::span(payload).subspan(1000)};
  wrapped->sendv(half);
  std::vector<std::uint8_t> got(2 * payload.size());
  b->recvAll(got);
  EXPECT_TRUE(std::equal(payload.begin(), payload.end(), got.begin()));
  EXPECT_TRUE(std::equal(payload.begin(), payload.end(),
                         got.begin() + static_cast<std::ptrdiff_t>(
                                           payload.size())));
  EXPECT_EQ(plan->injectedCount(), 0u);
}

TEST(FaultInjection, ScriptedResetFiresExactlyOnce) {
  FaultSpec spec;
  spec.reset_first_sends = 1;
  auto plan = std::make_shared<FaultPlan>(7, spec);
  auto [a, b] = transport::inprocPair();
  auto wrapped = transport::wrapFaulty(std::move(a), plan);
  const std::uint8_t byte = 1;
  EXPECT_THROW(wrapped->sendAll({&byte, 1}), TransportError);
  EXPECT_EQ(plan->injectedCount(), 1u);
}

TEST(FaultInjection, TruncatedSendDeliversOnlyAPrefix) {
  FaultSpec spec;
  spec.truncate = 1.0;
  auto plan = std::make_shared<FaultPlan>(42, spec);
  auto [a, b] = transport::inprocPair();
  auto wrapped = transport::wrapFaulty(std::move(a), plan);
  std::vector<std::uint8_t> payload(64, 0xAB);
  EXPECT_THROW(wrapped->sendAll(payload), TransportError);
  EXPECT_GE(plan->injectedCount(), 1u);
  // Whatever arrived is a strict prefix; the connection then died.
  std::vector<std::uint8_t> got(payload.size());
  std::size_t received = 0;
  try {
    for (;;) {
      received += b->recvSome(std::span(got).subspan(received));
    }
  } catch (const TransportError&) {
  }
  EXPECT_LT(received, payload.size());
  for (std::size_t i = 0; i < received; ++i) EXPECT_EQ(got[i], 0xAB);
}

TEST(FaultInjection, StutteredRecvPreservesByteOrder) {
  FaultSpec spec;
  spec.stutter = 1.0;
  spec.stutter_bytes = 2;
  auto plan = std::make_shared<FaultPlan>(5, spec);
  auto [a, b] = transport::inprocPair();
  auto wrapped = transport::wrapFaulty(std::move(b), plan);
  std::vector<std::uint8_t> payload(128);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i);
  }
  a->sendAll(payload);
  std::vector<std::uint8_t> got(payload.size());
  wrapped->recvAll(got);
  EXPECT_EQ(got, payload);
}

TEST(FaultInjection, ListenerRefusalDropsFirstConnection) {
  FaultSpec spec;
  spec.refuse_first_connects = 1;
  auto plan = std::make_shared<FaultPlan>(11, spec);
  auto inner = std::make_unique<transport::TcpListener>(0);
  const auto port = inner->port();
  auto listener = transport::wrapFaulty(
      std::unique_ptr<transport::Listener>(std::move(inner)), plan);

  auto accepted = std::async(std::launch::async, [&] {
    return listener->accept();  // swallows the refused first connection
  });
  auto victim = transport::tcpConnect("127.0.0.1", port);
  // Let the listener refuse the first connection before the second
  // arrives, so accept order is unambiguous.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  auto survivor = transport::tcpConnect("127.0.0.1", port);
  auto stream = accepted.get();
  ASSERT_NE(stream, nullptr);
  EXPECT_EQ(plan->injectedCount(), 1u);
  // The surviving pair still carries data faithfully.
  const std::uint8_t msg = 0x5A;
  survivor->sendAll({&msg, 1});
  std::uint8_t got = 0;
  stream->recvAll({&got, 1});
  EXPECT_EQ(got, 0x5A);
}

}  // namespace
}  // namespace ninf
