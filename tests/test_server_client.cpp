// End-to-end Ninf RPC: client API against a live server over inproc and
// real TCP, including the two-stage interface query, the two-phase call
// protocol (section 5.1), and multi-client concurrency.
#include <gtest/gtest.h>

#include <thread>

#include "client/client.h"
#include "client/ninf_api.h"
#include "common/error.h"
#include "numlib/ep.h"
#include "numlib/matrix.h"
#include "numlib/mmul.h"
#include "server/server.h"
#include "transport/inproc_transport.h"
#include "transport/tcp_transport.h"

namespace ninf {
namespace {

using client::NinfClient;
using client::ninfCall;
using protocol::ArgValue;
using server::NinfServer;
using server::Registry;

/// Server + inproc-connected client fixture.
class InprocRpc : public ::testing::Test {
 protected:
  void SetUp() override {
    server::registerStandardExecutables(registry_, 2);
    server_.emplace(registry_, server::ServerOptions{.workers = 2});
    auto [client_end, server_end] = transport::inprocPair();
    client_.emplace(std::move(client_end));
    server_stream_ = std::move(server_end);
    server_thread_ = std::thread(
        [this] { server().serveStream(*server_stream_); });
  }

  void TearDown() override {
    client().close();
    server_thread_.join();
    server().stop();
  }

  // Engaged in SetUp() for the whole test lifetime; the accessors keep
  // the one unchecked dereference in a single audited place.
  // NOLINTNEXTLINE(bugprone-unchecked-optional-access)
  NinfServer& server() { return *server_; }
  // NOLINTNEXTLINE(bugprone-unchecked-optional-access)
  NinfClient& client() { return *client_; }

  Registry registry_;
  std::optional<NinfServer> server_;
  std::optional<NinfClient> client_;
  std::unique_ptr<transport::Stream> server_stream_;
  std::thread server_thread_;
};

TEST_F(InprocRpc, QueryInterfaceReturnsCompiledIdl) {
  const auto& info = client().queryInterface("dmmul");
  EXPECT_EQ(info.name, "dmmul");
  EXPECT_EQ(info.params.size(), 4u);
  // Cached: second query must not hit the wire (same object back).
  EXPECT_EQ(&client().queryInterface("dmmul"), &info);
}

TEST_F(InprocRpc, UnknownExecutableThrowsNotFound) {
  EXPECT_THROW(client().queryInterface("nonexistent"), NotFoundError);
}

TEST_F(InprocRpc, DmmulOverRpc) {
  const std::size_t n = 8;
  const numlib::Matrix a = numlib::randomMatrix(n, 1);
  const numlib::Matrix b = numlib::randomMatrix(n, 2);
  std::vector<double> c(n * n);
  std::vector<ArgValue> args = {
      ArgValue::inInt(static_cast<std::int64_t>(n)),
      ArgValue::inArray(a.flat()), ArgValue::inArray(b.flat()),
      ArgValue::outArray(c)};
  const auto result = client().call("dmmul", args);
  const numlib::Matrix expected = numlib::dmmul(a, b);
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c[i], expected.flat()[i], 1e-12);
  }
  EXPECT_GT(result.bytes_sent, static_cast<std::int64_t>(n * n * 8 * 2));
  EXPECT_GE(result.server.waitTime(), 0.0);
}

TEST_F(InprocRpc, NinfCallSugarMatchesPaperExample) {
  // double A[n][n], B[n][n], C[n][n]; Ninf_call("dmmul", n, A, B, C);
  const std::int64_t n = 4;
  std::vector<double> a = {2, 0, 0, 0, 0, 2, 0, 0, 0, 0, 2, 0, 0, 0, 0, 2};
  std::vector<double> b(16);
  for (std::size_t i = 0; i < 16; ++i) b[i] = static_cast<double>(i);
  std::vector<double> c(16);
  ninfCall(client(), "dmmul", n, a, b, c);
  for (std::size_t i = 0; i < 16; ++i) EXPECT_DOUBLE_EQ(c[i], 2.0 * b[i]);
}

TEST_F(InprocRpc, LinpackOverRpcSolves) {
  const std::size_t n = 16;
  numlib::Matrix a = numlib::randomMatrix(n, 9);
  std::vector<double> b = numlib::onesRhs(a);
  std::vector<double> x(n);
  ninfCall(client(), "linpack", static_cast<std::int64_t>(n),
           std::int64_t{1}, a.flat(), b, x);
  for (double xi : x) EXPECT_NEAR(xi, 1.0, 1e-6);
}

TEST_F(InprocRpc, ServerSideErrorSurfacesAsRemoteError) {
  const std::size_t n = 4;
  std::vector<double> a(n * n, 0.0);  // singular
  std::vector<double> b(n, 1.0);
  std::vector<double> x(n);
  EXPECT_THROW(ninfCall(client(), "linpack", static_cast<std::int64_t>(n),
                        std::int64_t{0}, a, b, x),
               RemoteError);
  // The connection must survive the failed call.
  EXPECT_NO_THROW(client().ping());
}

TEST_F(InprocRpc, WrongArityReportedBeforeWire) {
  EXPECT_THROW(ninfCall(client(), "dmmul", std::int64_t{4}), ProtocolError);
}

TEST_F(InprocRpc, ListExecutables) {
  const auto names = client().listExecutables();
  EXPECT_EQ(names.size(), 4u);
}

TEST_F(InprocRpc, ServerStatusCountsCompletions) {
  std::vector<double> sums(2), q(10);
  ninfCall(client(), "ep", std::int64_t{0}, std::int64_t{256}, sums, q);
  ninfCall(client(), "ep", std::int64_t{256}, std::int64_t{256}, sums, q);
  const auto status = client().serverStatus();
  EXPECT_EQ(status.completed, 2u);
  EXPECT_EQ(status.running, 0u);
}

TEST_F(InprocRpc, PingEchoes) { EXPECT_GE(client().ping(1024), 0.0); }

TEST_F(InprocRpc, TwoPhaseSubmitFetch) {
  std::vector<double> sums(2), q(10);
  std::vector<ArgValue> args = {ArgValue::inInt(0), ArgValue::inInt(2048),
                                ArgValue::outArray(sums),
                                ArgValue::outArray(q)};
  const auto handle = client().submit("ep", args);
  EXPECT_GT(handle.id, 0u);
  // Poll until ready.
  std::optional<client::CallResult> result;
  for (int attempt = 0; attempt < 200 && !result; ++attempt) {
    result = client().fetch(handle, args);
    if (!result) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(result.has_value());
  const auto direct = numlib::runEp(0, 2048);
  EXPECT_DOUBLE_EQ(sums[0], direct.sx);
}

TEST_F(InprocRpc, FetchUnknownJobIsRemoteError) {
  std::vector<double> sums(2), q(10);
  std::vector<ArgValue> args = {ArgValue::inInt(0), ArgValue::inInt(16),
                                ArgValue::outArray(sums),
                                ArgValue::outArray(q)};
  client().queryInterface("ep");
  EXPECT_THROW(client().fetch({999999, "ep"}, args), RemoteError);
}

TEST(TcpRpc, FullStackOverRealSockets) {
  Registry registry;
  server::registerStandardExecutables(registry);
  NinfServer server(registry, {.workers = 2});
  auto listener = std::make_shared<transport::TcpListener>(0);
  const auto port = listener->port();
  server.start(listener);

  auto client = NinfClient::connectTcp("127.0.0.1", port);
  const std::int64_t n = 6;
  std::vector<double> a(36), b(36), c(36);
  for (std::size_t i = 0; i < 36; ++i) {
    a[i] = (i % 7 == 0) ? 1.0 : 0.1;
    b[i] = static_cast<double>(i);
  }
  ninfCall(*client, "dmmul", n, a, b, c);
  std::vector<double> expected(36);
  numlib::dmmul(6, a, b, expected);
  for (std::size_t i = 0; i < 36; ++i) EXPECT_NEAR(c[i], expected[i], 1e-12);

  client->close();
  server.stop();
}

TEST(TcpRpc, MultipleConcurrentClients) {
  Registry registry;
  server::registerStandardExecutables(registry);
  NinfServer server(registry, {.workers = 4});
  auto listener = std::make_shared<transport::TcpListener>(0);
  const auto port = listener->port();
  server.start(listener);

  constexpr int kClients = 8;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      try {
        auto client = NinfClient::connectTcp("127.0.0.1", port);
        std::vector<double> sums(2), q(10);
        const std::int64_t first = t * 1000;
        ninfCall(*client, "ep", first, std::int64_t{1000}, sums, q);
        const auto direct = numlib::runEp(first, 1000);
        if (sums[0] != direct.sx) ++failures;
        client->close();
      } catch (...) {
        ++failures;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server.metrics().completed(), kClients);
  server.stop();
}

TEST(TcpRpc, SjfServerStillServesCorrectly) {
  Registry registry;
  server::registerStandardExecutables(registry);
  NinfServer server(registry,
                    {.workers = 1, .policy = server::QueuePolicy::Sjf});
  auto listener = std::make_shared<transport::TcpListener>(0);
  const auto port = listener->port();
  server.start(listener);
  auto client = NinfClient::connectTcp("127.0.0.1", port);
  std::vector<double> sums(2), q(10);
  ninfCall(*client, "ep", std::int64_t{0}, std::int64_t{512}, sums, q);
  EXPECT_DOUBLE_EQ(sums[0], numlib::runEp(0, 512).sx);
  client->close();
  server.stop();
}

}  // namespace
}  // namespace ninf
