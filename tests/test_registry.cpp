// Executable registry + CallContext typed accessors + the standard
// benchmark executables (dmmul / linpack / ep).
#include <gtest/gtest.h>

#include "common/error.h"
#include "numlib/ep.h"
#include "numlib/matrix.h"
#include "server/registry.h"
#include "xdr/xdr.h"

namespace ninf::server {
namespace {

TEST(Registry, RegisterFromIdlAndLookup) {
  Registry reg;
  reg.add(R"(Define f(mode_in long n) Calls "C" f(n);)",
          [](CallContext&) {});
  EXPECT_TRUE(reg.contains("f"));
  EXPECT_FALSE(reg.contains("g"));
  EXPECT_EQ(reg.find("f").info.name, "f");
  EXPECT_THROW(reg.find("g"), NotFoundError);
}

TEST(Registry, DuplicateNameRejected) {
  Registry reg;
  reg.add(R"(Define f(mode_in long n) Calls "C" f(n);)",
          [](CallContext&) {});
  EXPECT_THROW(reg.add(R"(Define f(mode_in long m) Calls "C" f(m);)",
                       [](CallContext&) {}),
               Error);
}

TEST(Registry, NullHandlerRejected) {
  Registry reg;
  EXPECT_THROW(
      reg.add(R"(Define f(mode_in long n) Calls "C" f(n);)", Handler{}),
      std::logic_error);
}

TEST(Registry, NonDoubleArrayRejected) {
  Registry reg;
  EXPECT_THROW(reg.add(R"(Define f(mode_in long n, mode_in long v[n])
                          Calls "C" f(n, v);)",
                       [](CallContext&) {}),
               IdlError);
}

TEST(Registry, NamesSorted) {
  Registry reg;
  reg.add(R"(Define zeta(mode_in long n) Calls "C" z(n);)",
          [](CallContext&) {});
  reg.add(R"(Define alpha(mode_in long n) Calls "C" a(n);)",
          [](CallContext&) {});
  const auto names = reg.names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "alpha");
  EXPECT_EQ(names[1], "zeta");
}

TEST(StandardExecutables, AllThreeRegistered) {
  Registry reg;
  registerStandardExecutables(reg);
  EXPECT_TRUE(reg.contains("dmmul"));
  EXPECT_TRUE(reg.contains("linpack"));
  EXPECT_TRUE(reg.contains("ep"));
  EXPECT_TRUE(reg.contains("dos"));
  EXPECT_EQ(reg.size(), 4u);
}

TEST(StandardExecutables, CalcOrderHintsPresent) {
  Registry reg;
  registerStandardExecutables(reg);
  const auto& lp = reg.find("linpack").info;
  const std::int64_t scalars[] = {100, 1, 0, 0, 0};
  // 2n^3/3 + 2n^2 with integer arithmetic.
  EXPECT_EQ(lp.flopsEstimate(scalars), 2 * 1000000ll / 3 + 2 * 10000);
}

protocol::ServerCallData decodeFor(const idl::InterfaceInfo& info,
                                   std::span<const std::uint8_t> payload) {
  xdr::Decoder dec(payload);
  dec.getString();
  return protocol::decodeCallArgs(info, dec);
}

TEST(StandardExecutables, DmmulComputesProduct) {
  Registry reg;
  registerStandardExecutables(reg);
  const auto& exec = reg.find("dmmul");

  std::vector<double> a = {1, 0, 0, 1};  // identity
  std::vector<double> b = {1, 2, 3, 4};
  std::vector<double> c(4);
  std::vector<protocol::ArgValue> args = {
      protocol::ArgValue::inInt(2), protocol::ArgValue::inArray(a),
      protocol::ArgValue::inArray(b), protocol::ArgValue::outArray(c)};
  auto payload = protocol::encodeCallRequest(exec.info, args);
  auto data = decodeFor(exec.info, payload);
  CallContext ctx(exec.info, data);
  exec.handler(ctx);
  EXPECT_EQ(data.arrays[3], b);
}

TEST(StandardExecutables, LinpackSolvesSystem) {
  Registry reg;
  registerStandardExecutables(reg, 2);
  const auto& exec = reg.find("linpack");

  const std::size_t n = 24;
  numlib::Matrix a = numlib::randomMatrix(n, 3);
  std::vector<double> b = numlib::onesRhs(a);
  std::vector<double> av(a.flat().begin(), a.flat().end());
  std::vector<double> x(n);
  for (std::int64_t opt : {0, 1, 2}) {
    std::vector<protocol::ArgValue> args = {
        protocol::ArgValue::inInt(static_cast<std::int64_t>(n)),
        protocol::ArgValue::inInt(opt), protocol::ArgValue::inArray(av),
        protocol::ArgValue::inArray(b), protocol::ArgValue::outArray(x)};
    auto payload = protocol::encodeCallRequest(exec.info, args);
    auto data = decodeFor(exec.info, payload);
    CallContext ctx(exec.info, data);
    exec.handler(ctx);
    for (double xi : data.arrays[4]) EXPECT_NEAR(xi, 1.0, 1e-6);
  }
}

TEST(StandardExecutables, EpMatchesDirectKernel) {
  Registry reg;
  registerStandardExecutables(reg);
  const auto& exec = reg.find("ep");

  std::vector<double> sums(2), q(10);
  std::vector<protocol::ArgValue> args = {
      protocol::ArgValue::inInt(0), protocol::ArgValue::inInt(4096),
      protocol::ArgValue::outArray(sums), protocol::ArgValue::outArray(q)};
  auto payload = protocol::encodeCallRequest(exec.info, args);
  auto data = decodeFor(exec.info, payload);
  CallContext ctx(exec.info, data);
  exec.handler(ctx);

  const auto direct = numlib::runEp(0, 4096);
  EXPECT_DOUBLE_EQ(data.arrays[2][0], direct.sx);
  EXPECT_DOUBLE_EQ(data.arrays[2][1], direct.sy);
  EXPECT_EQ(static_cast<std::int64_t>(data.arrays[3][0]), direct.q[0]);
}

TEST(CallContext, TypeMismatchesGuarded) {
  Registry reg;
  registerStandardExecutables(reg);
  const auto& exec = reg.find("dmmul");
  std::vector<double> a = {1, 0, 0, 1}, b = {1, 2, 3, 4}, c(4);
  std::vector<protocol::ArgValue> args = {
      protocol::ArgValue::inInt(2), protocol::ArgValue::inArray(a),
      protocol::ArgValue::inArray(b), protocol::ArgValue::outArray(c)};
  auto payload = protocol::encodeCallRequest(exec.info, args);
  auto data = decodeFor(exec.info, payload);
  CallContext ctx(exec.info, data);
  EXPECT_THROW(ctx.doubleArg("n"), std::logic_error);   // n is long
  EXPECT_THROW(ctx.arrayIn("n"), std::logic_error);     // n is scalar
  EXPECT_THROW(ctx.arrayOut("A"), std::logic_error);    // A is input
  EXPECT_THROW(ctx.arrayIn("C"), std::logic_error);     // C is output
  EXPECT_THROW(ctx.intArg("missing"), NotFoundError);
}

}  // namespace
}  // namespace ninf::server
