#include <gtest/gtest.h>

#include "numlib/matrix.h"
#include "numlib/mmul.h"

namespace ninf::numlib {
namespace {

TEST(Mmul, IdentityTimesAnything) {
  const std::size_t n = 9;
  Matrix eye(n, n);
  for (std::size_t i = 0; i < n; ++i) eye(i, i) = 1.0;
  const Matrix b = randomMatrix(n, 4);
  EXPECT_EQ(dmmul(eye, b), b);
  EXPECT_EQ(dmmul(b, eye), b);
}

TEST(Mmul, Known2x2) {
  Matrix a(2, 2), b(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 3;
  a(1, 1) = 4;
  b(0, 0) = 5;
  b(0, 1) = 6;
  b(1, 0) = 7;
  b(1, 1) = 8;
  const Matrix c = dmmul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19);
  EXPECT_DOUBLE_EQ(c(0, 1), 22);
  EXPECT_DOUBLE_EQ(c(1, 0), 43);
  EXPECT_DOUBLE_EQ(c(1, 1), 50);
}

TEST(Mmul, MatchesNaiveAcrossBlockBoundaries) {
  // 100 exceeds the 64-wide internal blocks in both dimensions.
  const std::size_t n = 100;
  const Matrix a = randomMatrix(n, 1);
  const Matrix b = randomMatrix(n, 2);
  const Matrix c = dmmul(a, b);
  for (std::size_t probe : {0u, 37u, 63u, 64u, 99u}) {
    for (std::size_t j : {0u, 64u, 99u}) {
      double acc = 0;
      for (std::size_t p = 0; p < n; ++p) acc += a(probe, p) * b(p, j);
      EXPECT_NEAR(c(probe, j), acc, 1e-10);
    }
  }
}

TEST(Mmul, AssociatesWithMatVec) {
  const std::size_t n = 24;
  const Matrix a = randomMatrix(n, 7);
  const Matrix b = randomMatrix(n, 8);
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = static_cast<double>(i) - 11.5;
  // (A*B)*x == A*(B*x)
  const auto lhs = matVec(dmmul(a, b), x);
  const auto rhs = matVec(a, matVec(b, x));
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(lhs[i], rhs[i], 1e-9);
}

TEST(Mmul, SizeMismatchThrows) {
  std::vector<double> a(4), b(4), c(9);
  EXPECT_THROW(dmmul(2, a, b, c), std::logic_error);
}

TEST(Mmul, FlatSpanInterface) {
  std::vector<double> a = {1, 0, 0, 1};  // identity, column-major
  std::vector<double> b = {1, 2, 3, 4};
  std::vector<double> c(4, -1.0);
  dmmul(2, a, b, c);
  EXPECT_EQ(c, b);
}

}  // namespace
}  // namespace ninf::numlib
