// Streaming wire pipeline acceptance: large-array calls must flow
// end-to-end without the peak contiguous wire buffer ever approaching
// the array payload size — the scatter-gather path byteswaps through a
// bounded scratch and receives array bytes straight into their final
// destination on both sides.
#include <gtest/gtest.h>

#include <thread>

#include "client/client.h"
#include "common/error.h"
#include "numlib/matrix.h"
#include "numlib/mmul.h"
#include "obs/metrics.h"
#include "server/server.h"
#include "transport/inproc_transport.h"
#include "xdr/xdr.h"

namespace ninf {
namespace {

using client::NinfClient;
using protocol::ArgValue;
using server::NinfServer;
using server::Registry;

class WirePipeline : public ::testing::Test {
 protected:
  void SetUp() override {
    server::registerStandardExecutables(registry_, 2);
    server_.emplace(registry_, server::ServerOptions{.workers = 2});
    auto [client_end, server_end] = transport::inprocPair();
    client_.emplace(std::move(client_end));
    server_stream_ = std::move(server_end);
    server_thread_ =
        std::thread([this] { server().serveStream(*server_stream_); });
  }

  void TearDown() override {
    client().close();
    server_thread_.join();
    server().stop();
  }

  Registry registry_;
  // Engaged in SetUp() for the whole test lifetime; the accessor
  // keeps the one unchecked dereference in a single audited place.
  // NOLINTNEXTLINE(bugprone-unchecked-optional-access)
  NinfServer& server() { return *server_; }
  std::optional<NinfServer> server_;
  // Engaged in SetUp() for the whole test lifetime; the accessor
  // keeps the one unchecked dereference in a single audited place.
  // NOLINTNEXTLINE(bugprone-unchecked-optional-access)
  NinfClient& client() { return *client_; }
  std::optional<NinfClient> client_;
  std::unique_ptr<transport::Stream> server_stream_;
  std::thread server_thread_;
};

/// Upper bound for the peak gauge: the 64 KiB byteswap scratch plus the
/// scalar sections, headers, and the body reader's 4 KiB buffer, with
/// generous slack.  Any full-message materialization of the arrays in
/// this test would overshoot it by an order of magnitude.
constexpr double kPeakBudget = 256.0 * 1024.0;

TEST_F(WirePipeline, LargeCallNeverMaterializesArrayPayload) {
  const std::size_t n = 384;  // three n*n arrays of 1.125 MiB each
  const numlib::Matrix a = numlib::randomMatrix(n, 11);
  const numlib::Matrix b = numlib::randomMatrix(n, 12);
  std::vector<double> c(n * n);
  std::vector<ArgValue> args = {
      ArgValue::inInt(static_cast<std::int64_t>(n)),
      ArgValue::inArray(a.flat()), ArgValue::inArray(b.flat()),
      ArgValue::outArray(c)};
  // Warm the interface cache, then measure only the data path.
  client().queryInterface("dmmul");
  obs::MetricsRegistry::instance().reset();

  const auto result = client().call("dmmul", args);

  const double array_bytes = static_cast<double>(n * n * sizeof(double));
  const double peak = obs::gauge("wire.peak_buffer_bytes").value();
  EXPECT_GT(peak, 0.0);
  EXPECT_LE(peak, kPeakBudget);
  EXPECT_LT(peak * 4.0, array_bytes)
      << "peak wire buffer is within 4x of one array: the pipeline is "
         "materializing payloads";
  EXPECT_GT(result.bytes_sent,
            static_cast<std::int64_t>(2 * n * n * sizeof(double)));

  // And the math still has to be right.
  const numlib::Matrix expected = numlib::dmmul(a, b);
  for (std::size_t i = 0; i < c.size(); i += 997) {
    EXPECT_NEAR(c[i], expected.flat()[i], 1e-9);
  }
}

TEST_F(WirePipeline, TwoPhaseLargeArraysStayStreamed) {
  const std::size_t n = 384;
  const numlib::Matrix a = numlib::randomMatrix(n, 21);
  const numlib::Matrix b = numlib::randomMatrix(n, 22);
  std::vector<double> c(n * n);
  std::vector<ArgValue> args = {
      ArgValue::inInt(static_cast<std::int64_t>(n)),
      ArgValue::inArray(a.flat()), ArgValue::inArray(b.flat()),
      ArgValue::outArray(c)};
  client().queryInterface("dmmul");
  obs::MetricsRegistry::instance().reset();

  const auto handle = client().submit("dmmul", args);
  std::optional<client::CallResult> result;
  for (int attempt = 0; attempt < 2000 && !result; ++attempt) {
    result = client().fetch(handle, args);
    if (!result) std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_TRUE(result.has_value());

  const double peak = obs::gauge("wire.peak_buffer_bytes").value();
  EXPECT_GT(peak, 0.0);
  EXPECT_LE(peak, kPeakBudget);

  const numlib::Matrix expected = numlib::dmmul(a, b);
  for (std::size_t i = 0; i < c.size(); i += 997) {
    EXPECT_NEAR(c[i], expected.flat()[i], 1e-9);
  }
}

TEST_F(WirePipeline, SmallCallsStillInlineBelowThreshold) {
  // Arrays below kArrayRefThresholdElems ship inline: the call works and
  // the peak buffer stays tiny (single contiguous frame).
  const std::size_t n = 8;
  const numlib::Matrix a = numlib::randomMatrix(n, 5);
  const numlib::Matrix b = numlib::randomMatrix(n, 6);
  std::vector<double> c(n * n);
  std::vector<ArgValue> args = {
      ArgValue::inInt(static_cast<std::int64_t>(n)),
      ArgValue::inArray(a.flat()), ArgValue::inArray(b.flat()),
      ArgValue::outArray(c)};
  client().call("dmmul", args);
  const numlib::Matrix expected = numlib::dmmul(a, b);
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c[i], expected.flat()[i], 1e-12);
  }
}

TEST(ClientConnect, FailureNamesHostAndPort) {
  try {
    NinfClient::connectTcp("127.0.0.1", 1, 2.0);
    FAIL() << "expected TransportError";
  } catch (const TransportError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("127.0.0.1:1"), std::string::npos) << what;
    EXPECT_NE(what.find("unreachable"), std::string::npos) << what;
  }
}

}  // namespace
}  // namespace ninf
