// Calibration anchors: every constant in machine/calibration must stay
// consistent with the paper numbers it was derived from (DESIGN.md §6).
// These tests pin the model so refactors cannot silently drift the
// reproduced tables.
#include <gtest/gtest.h>

#include "machine/calibration.h"
#include "simworld/scenario.h"

namespace ninf::machine::calibration {
namespace {

TEST(Calibration, J90FullMachineCurve) {
  const MachineSpec spec = j90();
  // Section 3.2: "J90's Local achieves 600 Mflops when n = 1600".
  EXPECT_NEAR(spec.full_machine.rateAt(1600) / 1e6, 600.0, 30.0);
  // Vector machine: long vectors needed (large n_half).
  EXPECT_GT(spec.full_machine.nHalf(), 500.0);
  EXPECT_EQ(spec.pes, 4u);
}

TEST(Calibration, J90OnePeCurveSolvedFromTable3) {
  const MachineSpec spec = j90();
  // Solved from Table 3 c=1 rows with B = 2.5 MB/s effective.
  EXPECT_NEAR(spec.per_pe.rateAt(600) / 1e6, 165.0, 10.0);
  EXPECT_NEAR(spec.per_pe.rateAt(1400) / 1e6, 183.0, 10.0);
}

TEST(Calibration, FtpThroughputsMatchTable2) {
  EXPECT_DOUBLE_EQ(kFtpSuperToUltra, 4.0e6);
  EXPECT_DOUBLE_EQ(kFtpSuperToAlpha, 4.0e6);
  EXPECT_DOUBLE_EQ(kFtpSuperToJ90, 2.8e6);
  EXPECT_DOUBLE_EQ(kFtpUltraToAlpha, 7.4e6);
  EXPECT_DOUBLE_EQ(kFtpUltraToJ90, 2.7e6);
  EXPECT_DOUBLE_EQ(kFtpAlphaToJ90, 2.9e6);
}

TEST(Calibration, WanPathMatchesSection41) {
  // "The FTP throughput between the client and the server was measured
  //  to be approximately 0.17 MB/s."
  EXPECT_DOUBLE_EQ(kWanOchaToEtl, 0.17e6);
}

TEST(Calibration, EtlAttachmentBelowSummedUplinks) {
  // Figure 10's degradation requires the server-side attachment to be
  // the shared bottleneck.
  const double sum = kSiteUplinkOcha + kSiteUplinkUTokyo +
                     kSiteUplinkNITech + kSiteUplinkTITech;
  EXPECT_LT(kEtlWanAttachment, sum);
  EXPECT_GT(kEtlWanAttachment, kSiteUplinkOcha);  // still >> one site
}

TEST(Calibration, EpRateMatchesTable8) {
  // One task-parallel EP call: 2^25 ops at 0.168 Mops (Table 8, c=1).
  EXPECT_NEAR(j90().ep_ops_per_sec / 1e6, 0.168, 0.01);
}

TEST(Calibration, ClientLocalOrdering) {
  // Figure 3-4 baselines: SuperSPARC < UltraSPARC < Alpha(std) <
  // Alpha(optimized) at every problem size.
  for (const double n : {200.0, 600.0, 1200.0}) {
    const double super = superSparcLocal().rateAt(n);
    const double ultra = ultraSparcLocal().rateAt(n);
    const double alpha_std = alphaLocalStandard().rateAt(n);
    const double alpha_opt = alphaLocalOptimized().rateAt(n);
    EXPECT_LT(super, ultra);
    EXPECT_LT(ultra, alpha_std);
    EXPECT_LT(alpha_std, alpha_opt);
  }
}

TEST(Calibration, SingleClientAnchorsReproduceTablesAtC1) {
  // The whole point of the calibration: single-client LAN Linpack to
  // the J90 lands on the paper's Table 3/4 c=1 means.
  using namespace ninf::simworld;
  const double tp600 =
      runSingleCall(ClientKind::Alpha, ServerKind::J90,
                    ExecMode::TaskParallel, 600)
          .mflops;
  EXPECT_NEAR(tp600, 71.16, 8.0);  // Table 3
  const double dp1400 =
      runSingleCall(ClientKind::Alpha, ServerKind::J90,
                    ExecMode::DataParallel, 1400)
          .mflops;
  EXPECT_NEAR(dp1400, 193.03, 20.0);  // Table 4
}

TEST(Calibration, MetaserverOverheadSmallButVisible) {
  // Figure 11: large classes must amortize it, the sample class must not.
  EXPECT_GT(kMetaserverOverheadPerCall, 0.01);
  EXPECT_LT(kMetaserverOverheadPerCall, 1.0);
}

}  // namespace
}  // namespace ninf::machine::calibration
