// Event-driven server core: the epoll reactor and its staged pipeline.
//
// What thread-per-connection could never show: thousands of parked
// connections with a flat thread count, slow-loris peers that dribble a
// frame one byte at a time without stalling anyone, and mid-body
// disconnects that clean up instead of leaking a blocked reader thread.
#include <gtest/gtest.h>

#include <chrono>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "client/client.h"
#include "client/ninf_api.h"
#include "common/error.h"
#include "numlib/ep.h"
#include "obs/metrics.h"
#include "protocol/message.h"
#include "server/reactor.h"
#include "server/server.h"
#include "transport/tcp_transport.h"
#include "xdr/xdr.h"

namespace ninf {
namespace {

using client::NinfClient;
using client::ninfCall;
using server::NinfServer;
using server::Registry;

/// Threads of this process, from /proc/self/status (Linux).
int processThreadCount() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("Threads:", 0) == 0) {
      return std::stoi(line.substr(8));
    }
  }
  return -1;
}

/// Spin until `pred` holds or ~2 s elapse.
template <typename Pred>
bool waitFor(Pred pred, double seconds = 2.0) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(seconds);
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return true;
}

double reactorFds() { return obs::gauge("server.reactor.fds").value(); }

/// Reactor-served TCP server fixture.
class ReactorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(server::Reactor::supported());
    server::registerStandardExecutables(registry_, 2);
    server_.emplace(registry_, options_);
    listener_ = std::make_shared<transport::TcpListener>(0);
    port_ = listener_->port();
    server().start(listener_);
    ASSERT_TRUE(waitFor([] { return reactorFds() == 0.0; }));
  }

  void TearDown() override {
    if (server_) server().stop();
  }

  Registry registry_;
  server::ServerOptions options_{.workers = 2};
  // Engaged in SetUp() for the whole test lifetime; the accessor
  // keeps the one unchecked dereference in a single audited place.
  // NOLINTNEXTLINE(bugprone-unchecked-optional-access)
  NinfServer& server() { return *server_; }
  std::optional<NinfServer> server_;
  std::shared_ptr<transport::TcpListener> listener_;
  std::uint16_t port_ = 0;
};

TEST_F(ReactorTest, ServesCallsAndControlMessages) {
  auto client = NinfClient::connectTcp("127.0.0.1", port_);
  EXPECT_GE(client->ping(512), 0.0);
  std::vector<double> sums(2), q(10);
  ninfCall(*client, "ep", std::int64_t{0}, std::int64_t{512}, sums, q);
  EXPECT_DOUBLE_EQ(sums[0], numlib::runEp(0, 512).sx);
  client->close();
}

TEST_F(ReactorTest, IdleConnectionsParkWithoutThreads) {
  constexpr int kIdle = 100;
  // Let one call settle the lazy thread creation (client side included).
  auto client = NinfClient::connectTcp("127.0.0.1", port_);
  client->ping();

  const int before = processThreadCount();
  ASSERT_GT(before, 0);
  std::vector<std::unique_ptr<transport::Stream>> idle;
  idle.reserve(kIdle);
  for (int i = 0; i < kIdle; ++i) {
    idle.push_back(transport::tcpConnect("127.0.0.1", port_));
  }
  ASSERT_TRUE(waitFor([&] { return reactorFds() >= kIdle + 1; }))
      << "fds gauge " << reactorFds();

  // Thread-per-connection would sit at before + kIdle here.  The reactor
  // parks every idle connection in one epoll set.
  const int after = processThreadCount();
  EXPECT_LE(after, before + 2) << "server spawned threads per connection";

  // The server still answers while the herd is parked.
  EXPECT_GE(client->ping(64), 0.0);

  idle.clear();
  EXPECT_TRUE(waitFor([&] { return reactorFds() <= 1.0; }))
      << "fds gauge " << reactorFds();
  client->close();
}

TEST_F(ReactorTest, SlowLorisDoesNotStallOtherClients) {
  // Dribble half a v1 Ping header, one byte at a time, and stop.
  auto loris = transport::tcpConnect("127.0.0.1", port_);
  xdr::Encoder header;
  header.putU32(protocol::kMagic);
  header.putU32(protocol::kVersion);
  header.putU32(static_cast<std::uint32_t>(protocol::MessageType::Ping));
  header.putU32(4);  // body: 4 bytes, never fully sent
  const auto bytes = header.bytes();
  for (std::size_t i = 0; i < protocol::kHeaderBytes / 2; ++i) {
    loris->sendAll(std::span<const std::uint8_t>(&bytes[i], 1));
  }

  // A well-behaved client gets full service meanwhile.
  auto client = NinfClient::connectTcp("127.0.0.1", port_);
  std::vector<double> sums(2), q(10);
  ninfCall(*client, "ep", std::int64_t{0}, std::int64_t{256}, sums, q);
  EXPECT_DOUBLE_EQ(sums[0], numlib::runEp(0, 256).sx);

  // The loris completes its frame eventually and still gets its Pong.
  for (std::size_t i = protocol::kHeaderBytes / 2; i < bytes.size(); ++i) {
    loris->sendAll(std::span<const std::uint8_t>(&bytes[i], 1));
  }
  const std::array<std::uint8_t, 4> body = {1, 2, 3, 4};
  loris->sendAll(body);
  const protocol::Message pong = protocol::recvMessage(*loris);
  EXPECT_EQ(pong.type, protocol::MessageType::Pong);
  ASSERT_EQ(pong.payload.size(), 4u);
  EXPECT_EQ(pong.payload[2], 3);
  client->close();
}

TEST_F(ReactorTest, MidBodyDisconnectCleansUp) {
  const double baseline = reactorFds();
  {
    auto doomed = transport::tcpConnect("127.0.0.1", port_);
    xdr::Encoder header;
    header.putU32(protocol::kMagic);
    header.putU32(protocol::kVersion);
    header.putU32(
        static_cast<std::uint32_t>(protocol::MessageType::CallRequest));
    header.putU32(100000);  // declares a body it will never finish
    doomed->sendAll(header.bytes());
    const std::vector<std::uint8_t> partial(512, 0xAB);
    doomed->sendAll(partial);
    ASSERT_TRUE(waitFor([&] { return reactorFds() > baseline; }));
  }  // disconnect mid-body
  EXPECT_TRUE(waitFor([&] { return reactorFds() <= baseline; }))
      << "fds gauge " << reactorFds();

  // No half-read state leaked into anyone else's service.
  auto client = NinfClient::connectTcp("127.0.0.1", port_);
  EXPECT_GE(client->ping(), 0.0);
  client->close();
}

TEST_F(ReactorTest, V1ClientInterop) {
  // Raw v1 wire, no Hello: lock-step framing against the reactor.
  auto stream = transport::tcpConnect("127.0.0.1", port_);
  const std::vector<std::uint8_t> echo = {9, 8, 7};
  protocol::sendMessage(*stream, protocol::MessageType::Ping, echo);
  protocol::Message pong = protocol::recvMessage(*stream);
  EXPECT_EQ(pong.type, protocol::MessageType::Pong);
  EXPECT_EQ(pong.payload, echo);

  protocol::sendMessage(*stream, protocol::MessageType::ListExecutables,
                        std::span<const std::uint8_t>{});
  const protocol::Message list = protocol::recvMessage(*stream);
  EXPECT_EQ(list.type, protocol::MessageType::ExecutableList);
  xdr::Decoder dec(list.payload);
  EXPECT_GT(dec.getU32(), 0u);
  stream->close();

  // Full client forced to v1: negotiation skipped, staged pipeline
  // still serves the call through the per-connection lock-step hold.
  auto v1 = std::make_unique<NinfClient>(
      transport::tcpConnect("127.0.0.1", port_), /*force_v1=*/true);
  std::vector<double> sums(2), q(10);
  ninfCall(*v1, "ep", std::int64_t{7}, std::int64_t{128}, sums, q);
  EXPECT_DOUBLE_EQ(sums[0], numlib::runEp(7, 128).sx);
  v1->close();
}

TEST(ReactorAdmission, TinyBudgetStillCompletesEveryCall) {
  Registry registry;
  server::registerStandardExecutables(registry, 2);
  NinfServer server(registry, {.workers = 2, .max_inflight_calls = 2});
  auto listener = std::make_shared<transport::TcpListener>(0);
  const auto port = listener->port();
  server.start(listener);

  // 4 clients × 8 pipelined-ish calls against a budget of 2: admission
  // pauses reads under pressure and resumes them as replies drain.
  constexpr int kClients = 4;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      try {
        auto client = NinfClient::connectTcp("127.0.0.1", port);
        for (int i = 0; i < 8; ++i) {
          std::vector<double> sums(2), q(10);
          const std::int64_t first = t * 100 + i;
          ninfCall(*client, "ep", first, std::int64_t{64}, sums, q);
          if (sums[0] != numlib::runEp(first, 64).sx) ++failures;
        }
        client->close();
      } catch (...) {
        ++failures;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server.metrics().completed(), kClients * 8u);
  server.stop();
}

TEST(ReactorBacklog, ExplicitBacklogAcceptsConnections) {
  Registry registry;
  server::registerStandardExecutables(registry);
  NinfServer server(registry, {.workers = 1});
  auto listener = std::make_shared<transport::TcpListener>(0, /*backlog=*/8);
  const auto port = listener->port();
  server.start(listener);
  auto client = NinfClient::connectTcp("127.0.0.1", port);
  EXPECT_GE(client->ping(128), 0.0);
  client->close();
  server.stop();
}

TEST(ReactorFallback, LegacyPathStillAvailable) {
  Registry registry;
  server::registerStandardExecutables(registry);
  NinfServer server(registry, {.workers = 1, .use_reactor = false});
  auto listener = std::make_shared<transport::TcpListener>(0);
  const auto port = listener->port();
  server.start(listener);
  auto client = NinfClient::connectTcp("127.0.0.1", port);
  std::vector<double> sums(2), q(10);
  ninfCall(*client, "ep", std::int64_t{0}, std::int64_t{64}, sums, q);
  EXPECT_DOUBLE_EQ(sums[0], numlib::runEp(0, 64).sx);
  client->close();
  server.stop();
}

}  // namespace
}  // namespace ninf
