// Property tests: randomized interface/argument round-trips through the
// full marshalling stack, and robustness of every decoder against
// corrupted bytes (must throw ninf errors, never crash or accept).
#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "idl/interface_info.h"
#include "protocol/call_marshal.h"
#include "protocol/message.h"
#include "transport/inproc_transport.h"
#include "xdr/xdr.h"

namespace ninf {
namespace {

using idl::ExprProgram;
using idl::InterfaceInfo;
using idl::Mode;
using idl::Param;
using idl::ScalarType;
using protocol::ArgValue;

/// Build a random but valid interface: a leading scalar size parameter
/// plus a random mix of scalars and n-sized arrays.
InterfaceInfo randomInterface(SplitMix64& rng) {
  InterfaceInfo info;
  info.name = "f" + std::to_string(rng.nextBelow(1000000));
  info.call_language = "C";
  info.call_target = "target";
  Param n;
  n.name = "n";
  n.mode = Mode::In;
  n.type = ScalarType::Long;
  info.params.push_back(n);
  const std::size_t extra = 1 + rng.nextBelow(6);
  for (std::size_t i = 0; i < extra; ++i) {
    Param p;
    p.name = "p" + std::to_string(i);
    const auto kind = rng.nextBelow(5);
    switch (kind) {
      case 0:
        p.mode = Mode::In;
        p.type = rng.nextBool(0.5) ? ScalarType::Int : ScalarType::Double;
        break;
      case 1:
        p.mode = Mode::Out;
        p.type = rng.nextBool(0.5) ? ScalarType::Long : ScalarType::Double;
        break;
      case 2:  // input array of n elements
        p.mode = Mode::In;
        p.type = ScalarType::Double;
        p.dims.push_back(ExprProgram::argument(0));
        break;
      case 3:  // output array of n+2 elements
        p.mode = Mode::Out;
        p.type = ScalarType::Double;
        p.dims.push_back(ExprProgram(
            {{idl::Op::PushArg, 0}, {idl::Op::PushConst, 2},
             {idl::Op::Add, 0}}));
        break;
      default:  // inout array of n elements
        p.mode = Mode::InOut;
        p.type = ScalarType::Double;
        p.dims.push_back(ExprProgram::argument(0));
        break;
    }
    info.params.push_back(p);
  }
  for (std::uint32_t i = 0;
       i < static_cast<std::uint32_t>(info.params.size()); ++i) {
    info.call_arg_order.push_back(i);
  }
  return info;
}

class MarshalPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MarshalPropertyTest, RandomInterfaceFullRoundTrip) {
  SplitMix64 rng(GetParam());
  for (int iteration = 0; iteration < 20; ++iteration) {
    const InterfaceInfo info = randomInterface(rng);
    ASSERT_TRUE(info.validate());
    // Interface itself must round-trip through XDR.
    ASSERT_EQ(InterfaceInfo::fromBytes(info.toBytes()), info);

    const std::int64_t n = 1 + static_cast<std::int64_t>(rng.nextBelow(9));
    // Build matching arguments and remember expected outputs.
    std::vector<ArgValue> args;
    std::vector<std::unique_ptr<std::vector<double>>> arrays;
    std::vector<std::unique_ptr<std::int64_t>> int_sinks;
    std::vector<std::unique_ptr<double>> dbl_sinks;
    const std::vector<std::int64_t> scalars = [&] {
      std::vector<std::int64_t> s(info.params.size(), 0);
      s[0] = n;
      return s;
    }();
    args.push_back(ArgValue::inInt(n));
    for (std::size_t i = 1; i < info.params.size(); ++i) {
      const Param& p = info.params[i];
      if (p.isScalar()) {
        const bool integral =
            p.type == ScalarType::Int || p.type == ScalarType::Long;
        if (p.mode == Mode::Out) {
          if (integral) {
            int_sinks.push_back(std::make_unique<std::int64_t>(0));
            args.push_back(ArgValue::outInt(int_sinks.back().get()));
          } else {
            dbl_sinks.push_back(std::make_unique<double>(0));
            args.push_back(ArgValue::outDouble(dbl_sinks.back().get()));
          }
        } else if (integral) {
          args.push_back(
              ArgValue::inInt(static_cast<std::int64_t>(rng.nextBelow(100))));
        } else {
          args.push_back(ArgValue::inDouble(rng.nextDouble() * 10 - 5));
        }
        continue;
      }
      const std::size_t count =
          static_cast<std::size_t>(p.elementCount(scalars));
      arrays.push_back(std::make_unique<std::vector<double>>(count));
      for (double& v : *arrays.back()) v = rng.nextDouble() * 2 - 1;
      switch (p.mode) {
        case Mode::In:
          args.push_back(ArgValue::inArray(*arrays.back()));
          break;
        case Mode::Out:
          args.push_back(ArgValue::outArray(*arrays.back()));
          break;
        case Mode::InOut:
          args.push_back(ArgValue::inoutArray(*arrays.back()));
          break;
      }
    }

    // Client -> server.
    const auto request = protocol::encodeCallRequest(info, args);
    xdr::Decoder dec(request);
    ASSERT_EQ(dec.getString(), info.name);
    auto data = protocol::decodeCallArgs(info, dec);

    // "Execute": negate every outbound array, set scalars to markers.
    for (std::size_t i = 0; i < info.params.size(); ++i) {
      const Param& p = info.params[i];
      if (!p.shippedOut()) continue;
      if (p.isScalar()) {
        data.scalar_ints[i] = 4242;
        data.scalar_doubles[i] = 42.25;
      } else {
        for (std::size_t j = 0; j < data.arrays[i].size(); ++j) {
          data.arrays[i][j] = -static_cast<double>(j) - 1.0;
        }
      }
    }
    const auto reply = protocol::encodeCallReply(info, data, {});
    protocol::decodeCallReply(info, reply, args);

    // Check every output landed in caller memory.
    std::size_t array_idx = 0;
    for (std::size_t i = 1; i < info.params.size(); ++i) {
      const Param& p = info.params[i];
      if (p.isScalar()) continue;
      const auto& buf = *arrays[array_idx++];
      if (!p.shippedOut()) continue;
      for (std::size_t j = 0; j < buf.size(); ++j) {
        ASSERT_DOUBLE_EQ(buf[j], -static_cast<double>(j) - 1.0);
      }
    }
    for (const auto& sink : int_sinks) ASSERT_EQ(*sink, 4242);
    for (const auto& sink : dbl_sinks) ASSERT_DOUBLE_EQ(*sink, 42.25);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MarshalPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 101, 202, 303));

class FuzzDecodeTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzDecodeTest, RandomBytesNeverCrashDecoders) {
  SplitMix64 rng(GetParam());
  for (int iteration = 0; iteration < 200; ++iteration) {
    std::vector<std::uint8_t> junk(rng.nextBelow(200));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.nextBelow(256));
    // InterfaceInfo decoder.
    try {
      idl::InterfaceInfo::fromBytes(junk);
    } catch (const Error&) {
    }
    // ExprProgram decoder.
    try {
      xdr::Decoder dec(junk);
      idl::ExprProgram::decode(dec);
    } catch (const Error&) {
    }
    // Message framing (feed junk through a pipe).
    try {
      auto [a, b] = transport::inprocPair();
      a->sendAll(junk);
      a->shutdownSend();
      protocol::recvMessage(*b);
    } catch (const Error&) {
    }
  }
  SUCCEED();
}

TEST_P(FuzzDecodeTest, CorruptedValidPayloadsThrowDontCrash) {
  SplitMix64 rng(GetParam() ^ 0x5555);
  // Start from a valid encoded interface, then flip random bytes.
  SplitMix64 gen(7);
  const InterfaceInfo info = randomInterface(gen);
  const auto good = info.toBytes();
  for (int iteration = 0; iteration < 200; ++iteration) {
    auto bytes = good;
    const std::size_t flips = 1 + rng.nextBelow(8);
    for (std::size_t f = 0; f < flips; ++f) {
      bytes[rng.nextBelow(bytes.size())] ^=
          static_cast<std::uint8_t>(1 + rng.nextBelow(255));
    }
    try {
      const auto decoded = InterfaceInfo::fromBytes(bytes);
      // If it decoded, it must at least be structurally valid.
      EXPECT_TRUE(decoded.validate());
    } catch (const Error&) {
      // Expected for most corruptions.
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDecodeTest,
                         ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace ninf
