// Argument marshalling: client-side encode, server-side decode, reply
// round-trip — the heart of Ninf_call.
#include <gtest/gtest.h>

#include "common/error.h"
#include "idl/parser.h"
#include "protocol/call_marshal.h"

namespace ninf::protocol {
namespace {

const idl::InterfaceInfo& dmmulInfo() {
  static const idl::InterfaceInfo info = idl::parseSingle(R"(
    Define dmmul(mode_in long n,
                 mode_in double A[n][n],
                 mode_in double B[n][n],
                 mode_out double C[n][n])
    Calls "C" mmul(n, A, B, C);)");
  return info;
}

std::vector<ArgValue> dmmulArgs(std::int64_t n, std::vector<double>& a,
                                std::vector<double>& b,
                                std::vector<double>& c) {
  return {ArgValue::inInt(n), ArgValue::inArray(a), ArgValue::inArray(b),
          ArgValue::outArray(c)};
}

TEST(CallMarshal, RequestDecodeRecoversArguments) {
  std::vector<double> a = {1, 2, 3, 4}, b = {5, 6, 7, 8}, c(4);
  const auto args = dmmulArgs(2, a, b, c);
  const auto payload = encodeCallRequest(dmmulInfo(), args);

  xdr::Decoder dec(payload);
  EXPECT_EQ(dec.getString(), "dmmul");
  const ServerCallData data = decodeCallArgs(dmmulInfo(), dec);
  EXPECT_EQ(data.scalar_ints[0], 2);
  EXPECT_EQ(data.arrays[1], a);
  EXPECT_EQ(data.arrays[2], b);
  EXPECT_EQ(data.arrays[3].size(), 4u);  // OUT array allocated
}

TEST(CallMarshal, FullReplyRoundTrip) {
  std::vector<double> a = {1, 0, 0, 1}, b = {9, 8, 7, 6}, c(4, -1);
  const auto args = dmmulArgs(2, a, b, c);
  const auto request = encodeCallRequest(dmmulInfo(), args);

  xdr::Decoder dec(request);
  dec.getString();
  ServerCallData data = decodeCallArgs(dmmulInfo(), dec);
  data.arrays[3] = {10, 20, 30, 40};  // "computed" result
  CallTimings timings;
  timings.enqueue = 1.0;
  timings.dequeue = 1.5;
  timings.complete = 3.0;
  const auto reply = encodeCallReply(dmmulInfo(), data, timings);

  const CallTimings got = decodeCallReply(dmmulInfo(), reply, args);
  EXPECT_EQ(c, (std::vector<double>{10, 20, 30, 40}));
  EXPECT_DOUBLE_EQ(got.waitTime(), 0.5);
  EXPECT_DOUBLE_EQ(got.complete, 3.0);
}

TEST(CallMarshal, ErrorReplyThrowsRemoteError) {
  std::vector<double> a(4), b(4), c(4);
  const auto args = dmmulArgs(2, a, b, c);
  const auto reply = encodeErrorReply("matrix is singular");
  try {
    decodeCallReply(dmmulInfo(), reply, args);
    FAIL() << "expected RemoteError";
  } catch (const RemoteError& e) {
    EXPECT_NE(std::string(e.what()).find("singular"), std::string::npos);
  }
}

TEST(CallMarshal, ArityMismatchRejected) {
  std::vector<ArgValue> args = {ArgValue::inInt(2)};
  EXPECT_THROW(encodeCallRequest(dmmulInfo(), args), ProtocolError);
}

TEST(CallMarshal, WrongArraySizeRejected) {
  std::vector<double> a(3), b(4), c(4);  // a should have 4 elements
  const auto args = dmmulArgs(2, a, b, c);
  EXPECT_THROW(encodeCallRequest(dmmulInfo(), args), ProtocolError);
}

TEST(CallMarshal, ScalarForArrayRejected) {
  std::vector<double> b(4), c(4);
  std::vector<ArgValue> args = {ArgValue::inInt(2), ArgValue::inDouble(1.0),
                                ArgValue::inArray(b), ArgValue::outArray(c)};
  EXPECT_THROW(encodeCallRequest(dmmulInfo(), args), ProtocolError);
}

TEST(CallMarshal, InArrayForOutParamRejected) {
  std::vector<double> a(4), b(4), c(4);
  std::vector<ArgValue> args = {ArgValue::inInt(2), ArgValue::inArray(a),
                                ArgValue::inArray(b), ArgValue::inArray(c)};
  EXPECT_THROW(encodeCallRequest(dmmulInfo(), args), ProtocolError);
}

TEST(CallMarshal, ServerRejectsWireSizeMismatch) {
  // Hand-craft a payload whose array disagrees with the scalar n.
  xdr::Encoder enc;
  enc.putI64(3);  // n = 3 implies 9-element arrays
  enc.putDoubleArray(std::vector<double>{1, 2, 3, 4});
  enc.putDoubleArray(std::vector<double>{1, 2, 3, 4});
  xdr::Decoder dec(enc.bytes());
  EXPECT_THROW(decodeCallArgs(dmmulInfo(), dec), ProtocolError);
}

TEST(CallMarshal, ServerRejectsTrailingBytes) {
  std::vector<double> a = {1, 2, 3, 4}, b = {5, 6, 7, 8}, c(4);
  const auto args = dmmulArgs(2, a, b, c);
  auto payload = encodeCallRequest(dmmulInfo(), args);
  payload.push_back(0);
  payload.push_back(0);
  payload.push_back(0);
  payload.push_back(0);
  xdr::Decoder dec(payload);
  dec.getString();
  EXPECT_THROW(decodeCallArgs(dmmulInfo(), dec), ProtocolError);
}

TEST(CallMarshal, ScalarOutputsFlowBack) {
  const auto info = idl::parseSingle(R"(
    Define stat(mode_in long n, mode_in double v[n],
                mode_out double mean, mode_out long count)
    Calls "C" stat(n, v, mean, count);)");
  std::vector<double> v = {2, 4, 6};
  double mean = 0;
  std::int64_t count = 0;
  std::vector<ArgValue> args = {ArgValue::inInt(3), ArgValue::inArray(v),
                                ArgValue::outDouble(&mean),
                                ArgValue::outInt(&count)};
  const auto request = encodeCallRequest(info, args);
  xdr::Decoder dec(request);
  dec.getString();
  ServerCallData data = decodeCallArgs(info, dec);
  data.scalar_doubles[2] = 4.0;
  data.scalar_ints[3] = 3;
  const auto reply = encodeCallReply(info, data, {});
  decodeCallReply(info, reply, args);
  EXPECT_DOUBLE_EQ(mean, 4.0);
  EXPECT_EQ(count, 3);
}

TEST(CallMarshal, InOutArraysShipBothWays) {
  const auto info = idl::parseSingle(R"(
    Define scale(mode_in long n, mode_inout double v[n])
    Calls "C" scale(n, v);)");
  std::vector<double> v = {1, 2};
  std::vector<ArgValue> args = {ArgValue::inInt(2), ArgValue::inoutArray(v)};
  const auto request = encodeCallRequest(info, args);
  xdr::Decoder dec(request);
  dec.getString();
  ServerCallData data = decodeCallArgs(info, dec);
  EXPECT_EQ(data.arrays[1], (std::vector<double>{1, 2}));
  data.arrays[1] = {10, 20};
  const auto reply = encodeCallReply(info, data, {});
  decodeCallReply(info, reply, args);
  EXPECT_EQ(v, (std::vector<double>{10, 20}));
}

TEST(CallMarshal, ScalarArgsExtractsIntegers) {
  std::vector<double> a(4), b(4), c(4);
  const auto args = dmmulArgs(2, a, b, c);
  const auto scalars = scalarArgs(dmmulInfo(), args);
  EXPECT_EQ(scalars, (std::vector<std::int64_t>{2, 0, 0, 0}));
}

}  // namespace
}  // namespace ninf::protocol
