// Simulated Ninf server: call-record anatomy, mode differences, SYN-retry
// spikes, pipelined marshalling, and job descriptions.
#include <gtest/gtest.h>

#include <cmath>

#include "machine/machine.h"
#include "numlib/matrix.h"
#include "simcore/simulation.h"
#include "simnet/network.h"
#include "simworld/sim_server.h"

namespace ninf::simworld {
namespace {

struct World {
  simcore::Simulation sim;
  simnet::Network net{sim};
  simnet::NodeId client, server;
  std::unique_ptr<machine::SimMachine> mach;
  std::unique_ptr<SimNinfServer> srv;

  explicit World(SimServerConfig cfg = {}, double bandwidth = 1e6,
                 machine::MachineSpec spec = defaultSpec()) {
    client = net.addNode("client");
    server = net.addNode("server");
    net.addLink(client, server, bandwidth, 0.0);
    mach = std::make_unique<machine::SimMachine>(sim, spec);
    srv = std::make_unique<SimNinfServer>(sim, net, server, *mach, cfg);
  }

  static machine::MachineSpec defaultSpec() {
    machine::MachineSpec spec;
    spec.name = "test";
    spec.pes = 4;
    spec.per_pe = machine::PerfModel(1e6, 0.0);
    spec.full_machine = machine::PerfModel(4e6, 0.0);
    return spec;
  }

  CallRecord run(SimJob job, std::uint64_t seed = 1) {
    CallRecord rec;
    SplitMix64 rng(seed);
    [](SimNinfServer& s, simnet::NodeId c, SimJob j, SplitMix64& r,
       CallRecord& out) -> simcore::Process {
      out = co_await s.call(c, j, r);
    }(*srv, client, job, rng, rec);
    sim.run();
    return rec;
  }
};

SimJob simpleJob(double work = 1e6, double rate = 1e6, double in = 1e6,
                 double out = 1e5) {
  SimJob job;
  job.work = work;
  job.rate_full = rate;
  job.in_bytes = in;
  job.out_bytes = out;
  return job;
}

TEST(SimServer, TimestampsAreOrdered) {
  SimServerConfig cfg;
  cfg.syn_retry_prob = 0.0;
  World w(cfg);
  const CallRecord rec = w.run(simpleJob());
  EXPECT_LT(rec.submit, rec.enqueue);
  EXPECT_LT(rec.enqueue, rec.dequeue);
  EXPECT_LT(rec.dequeue, rec.complete);
  EXPECT_LT(rec.complete, rec.end);
}

TEST(SimServer, ElapsedMatchesCostModel) {
  SimServerConfig cfg;
  cfg.syn_retry_prob = 0.0;
  cfg.t_comm0 = 0.01;
  cfg.t_comp0 = 0.02;
  World w(cfg, /*bandwidth=*/1e6);
  // 1e6 bytes in at 1 MB/s + compute 1e6 at 1e6 + 1e5 bytes out.
  const CallRecord rec = w.run(simpleJob());
  EXPECT_NEAR(rec.elapsed(), 0.01 + 0.02 + 1.0 + 1.0 + 0.1, 1e-6);
  EXPECT_NEAR(rec.comm_seconds, 1.1, 1e-6);
  EXPECT_NEAR(rec.throughput(), 1.1e6 / 1.1, 1.0);
  EXPECT_NEAR(rec.waitTime(), 0.02, 1e-9);
  EXPECT_NEAR(rec.responseTime(), 0.01, 1e-9);
}

TEST(SimServer, SynRetrySpikesResponseTime) {
  SimServerConfig cfg;
  cfg.syn_retry_prob = 1.0;  // always retransmit
  cfg.syn_retry_delay = 5.0;
  World w(cfg);
  const CallRecord rec = w.run(simpleJob());
  EXPECT_NEAR(rec.responseTime(), 5.0 + cfg.t_comm0, 1e-9);
}

TEST(SimServer, MarshallingPipelinedWithTransfer) {
  // XDR slower than the wire: the marshal leg dominates comm time.
  SimServerConfig cfg;
  cfg.syn_retry_prob = 0.0;
  machine::MachineSpec spec = World::defaultSpec();
  spec.xdr_bytes_per_sec = 0.5e6;  // 2 s for the 1 MB input
  World w(cfg, /*bandwidth=*/1e6, spec);
  const CallRecord rec = w.run(simpleJob());
  // in-leg = max(transfer 1.0, marshal 2.0) = 2.0.
  EXPECT_NEAR(rec.comm_seconds, 2.0 + 0.2, 1e-6);
}

TEST(SimServer, DataParallelUsesFullMachineRate) {
  SimServerConfig tp_cfg, dp_cfg;
  tp_cfg.syn_retry_prob = dp_cfg.syn_retry_prob = 0.0;
  tp_cfg.mode = ExecMode::TaskParallel;
  dp_cfg.mode = ExecMode::DataParallel;
  World tp(tp_cfg), dp(dp_cfg);
  // Same work; DP gets the 4x rate.
  const auto tp_rec = tp.run(simpleJob(4e6, 1e6));
  const auto dp_rec = dp.run(simpleJob(4e6, 4e6));
  const double tp_compute = tp_rec.complete - tp_rec.dequeue;
  const double dp_compute = dp_rec.complete - dp_rec.dequeue;
  EXPECT_NEAR(tp_compute - dp_compute, 3.0, 0.01);
}

TEST(SimServer, LinpackJobMatchesPaperTransferModel) {
  // 8n^2 + 20n total bytes (section 3.1).
  const SimJob job = linpackJob(1000, 1e8);
  EXPECT_DOUBLE_EQ(job.in_bytes + job.out_bytes, 8e6 + 20e3);
  EXPECT_DOUBLE_EQ(job.work, numlib::linpackFlops(1000));
  EXPECT_THROW(linpackJob(0, 1e8), std::logic_error);
}

TEST(SimServer, EpJobIsCommunicationFree) {
  const SimJob job = epJob(24, 0.168e6);
  EXPECT_DOUBLE_EQ(job.work, std::ldexp(1.0, 25));
  EXPECT_LT(job.in_bytes + job.out_bytes, 1e3);  // O(1) bytes
}

TEST(SimServer, RecordDerivedQuantities) {
  CallRecord rec;
  rec.submit = 1.0;
  rec.enqueue = 1.5;
  rec.dequeue = 1.6;
  rec.complete = 4.0;
  rec.end = 4.5;
  rec.work = 7e6;
  rec.bytes_total = 2e6;
  rec.comm_seconds = 1.0;
  EXPECT_DOUBLE_EQ(rec.responseTime(), 0.5);
  EXPECT_NEAR(rec.waitTime(), 0.1, 1e-12);
  EXPECT_DOUBLE_EQ(rec.elapsed(), 3.5);
  EXPECT_DOUBLE_EQ(rec.performance(), 2e6);
  EXPECT_DOUBLE_EQ(rec.throughput(), 2e6);
}

TEST(SimServer, RowStatsAggregates) {
  RowStats row;
  CallRecord rec;
  rec.submit = 0;
  rec.enqueue = 0.1;
  rec.dequeue = 0.2;
  rec.complete = 1.0;
  rec.end = 1.2;
  rec.work = 1.2e6;
  rec.bytes_total = 1e6;
  rec.comm_seconds = 0.4;
  row.add(rec);
  row.add(rec);
  EXPECT_EQ(row.times(), 2u);
  EXPECT_DOUBLE_EQ(row.perf_mflops.mean(), 1.0);
  EXPECT_DOUBLE_EQ(row.throughput_mbps.mean(), 2.5);
  EXPECT_DOUBLE_EQ(row.transmission_s.mean(), 0.2);
}

}  // namespace
}  // namespace ninf::simworld
