// Scenario-level shape tests: the qualitative findings of the paper must
// hold in the simulator (crossovers, WAN bottlenecks, EP saturation,
// multi-site aggregate bandwidth).
#include <gtest/gtest.h>

#include "simworld/metaserver_sim.h"
#include "simworld/scenario.h"

namespace ninf::simworld {
namespace {

TEST(SingleCall, NinfPerformanceRisesWithN) {
  const auto small =
      runSingleCall(ClientKind::UltraSparc, ServerKind::J90,
                    ExecMode::DataParallel, 200);
  const auto large =
      runSingleCall(ClientKind::UltraSparc, ServerKind::J90,
                    ExecMode::DataParallel, 1600);
  EXPECT_GT(large.mflops, small.mflops * 3);
}

TEST(SingleCall, CrossoverAgainstLocalInPaperRange) {
  // Figure 3: Ninf_call overtakes Local at approximately n = 200-400 for
  // the SPARC clients.
  auto crossover = [](ClientKind client) {
    for (std::size_t n = 100; n <= 1600; n += 50) {
      const auto r = runSingleCall(client, ServerKind::J90,
                                   ExecMode::DataParallel, n);
      if (r.mflops > localMflops(client, true, n)) return n;
    }
    return std::size_t{0};
  };
  const std::size_t super = crossover(ClientKind::SuperSparc);
  const std::size_t ultra = crossover(ClientKind::UltraSparc);
  EXPECT_GE(super, 100u);
  EXPECT_LE(super, 450u);
  EXPECT_GE(ultra, 100u);
  EXPECT_LE(ultra, 450u);
}

TEST(SingleCall, AlphaCrossoverLaterThanSparcs) {
  // Figure 4: the fast Alpha client only benefits at n ~ 800-1000
  // (optimized local) vs 400-600 (standard local).
  auto crossover = [](bool optimized) {
    for (std::size_t n = 100; n <= 1600; n += 50) {
      const auto r = runSingleCall(ClientKind::Alpha, ServerKind::J90,
                                   ExecMode::DataParallel, n);
      if (r.mflops > localMflops(ClientKind::Alpha, optimized, n)) return n;
    }
    return std::size_t{2000};
  };
  const std::size_t optimized = crossover(true);
  const std::size_t standard = crossover(false);
  EXPECT_GT(optimized, standard);
  EXPECT_GE(optimized, 600u);
  EXPECT_LE(optimized, 1200u);
  EXPECT_GE(standard, 300u);
  EXPECT_LE(standard, 700u);
}

TEST(SingleCall, ThroughputApproachesFtpForLargePayloads) {
  // Figure 5 / Table 2: Ninf_call throughput saturates near the raw FTP
  // rate of the link once payloads are large.
  const double ftp =
      clientServerFtp(ClientKind::Alpha, ServerKind::J90) / 1e6;
  const double tp = runThroughputProbe(ClientKind::Alpha, ServerKind::J90,
                                       32e6);
  EXPECT_GT(tp, 0.7 * ftp);
  EXPECT_LE(tp, ftp * 1.01);
  // Small payloads are overhead-dominated.
  const double tiny = runThroughputProbe(ClientKind::Alpha, ServerKind::J90,
                                         8e3);
  EXPECT_LT(tiny, 0.5 * ftp);
}

TEST(MultiClientLan, PerClientPerformanceDecaysWithC) {
  MultiClientConfig cfg;
  cfg.mode = ExecMode::TaskParallel;
  cfg.n = 600;
  cfg.duration = 240.0;
  cfg.clients = 1;
  const double p1 = runMultiClient(cfg).row.perf_mflops.mean();
  cfg.clients = 16;
  const auto r16 = runMultiClient(cfg);
  const double p16 = r16.row.perf_mflops.mean();
  EXPECT_LT(p16, p1 * 0.6);
  EXPECT_GT(r16.cpu_util_percent, 50.0);
}

TEST(MultiClientLan, FourPeWinsAtSmallC) {
  // Figure 7: the data-parallel library has a "substantial performance
  // edge for a small c".
  MultiClientConfig cfg;
  cfg.n = 1400;
  cfg.clients = 1;
  cfg.duration = 240.0;
  cfg.mode = ExecMode::TaskParallel;
  const double tp = runMultiClient(cfg).row.perf_mflops.mean();
  cfg.mode = ExecMode::DataParallel;
  const double dp = runMultiClient(cfg).row.perf_mflops.mean();
  EXPECT_GT(dp, tp * 1.3);
}

TEST(MultiClientLan, ModesConvergeAtLargeC) {
  // ... and "very little performance edge ... for a larger c".
  MultiClientConfig cfg;
  cfg.n = 1000;
  cfg.clients = 16;
  cfg.duration = 300.0;
  cfg.mode = ExecMode::TaskParallel;
  const double tp = runMultiClient(cfg).row.perf_mflops.mean();
  cfg.mode = ExecMode::DataParallel;
  const double dp = runMultiClient(cfg).row.perf_mflops.mean();
  EXPECT_NEAR(dp / tp, 1.0, 0.45);
}

TEST(MultiClientWan, BandwidthNotServerLoadIsTheBottleneck) {
  // Tables 6-7: WAN performance collapses by ~an order of magnitude while
  // server CPU stays nearly idle.
  MultiClientConfig lan, wan;
  lan.n = wan.n = 1000;
  lan.clients = wan.clients = 8;
  lan.duration = wan.duration = 300.0;
  wan.topology = Topology::SingleSiteWan;
  const auto lan_result = runMultiClient(lan);
  const auto wan_result = runMultiClient(wan);
  EXPECT_LT(wan_result.row.perf_mflops.mean(),
            lan_result.row.perf_mflops.mean() * 0.25);
  EXPECT_LT(wan_result.cpu_util_percent, 20.0);
  EXPECT_GT(lan_result.cpu_util_percent,
            wan_result.cpu_util_percent * 2);
}

TEST(MultiClientWan, SingleSiteThroughputSplitsUplink) {
  MultiClientConfig cfg;
  cfg.topology = Topology::SingleSiteWan;
  cfg.n = 600;
  cfg.clients = 8;
  cfg.duration = 400.0;
  const auto r = runMultiClient(cfg);
  // Per-call throughput must be well below the 0.17 MB/s uplink.
  EXPECT_LT(r.row.throughput_mbps.mean(), 0.17 / 3);
}

TEST(MultiSiteWan, AggregateBeatsSingleSite) {
  // Figure 10: four sites with c clients each sustain far more aggregate
  // bandwidth than 4c clients at one site.
  MultiClientConfig single, multi;
  single.topology = Topology::SingleSiteWan;
  single.clients = 4;
  single.n = multi.n = 1000;
  single.duration = multi.duration = 400.0;
  multi.topology = Topology::MultiSiteWan;
  multi.clients = 1;  // per site; 4 total
  const auto s = runMultiClient(single);
  const auto m = runMultiClient(multi);
  EXPECT_GT(m.aggregate_mbps, s.aggregate_mbps * 1.8);
  EXPECT_GT(m.cpu_util_percent, s.cpu_util_percent);
  ASSERT_EQ(m.sites.size(), 4u);
}

TEST(MultiSiteWan, OchaDegradationWithinPaperBands) {
  // Figure 10 analysis: Ocha-U multi-site throughput degrades only
  // 9-18% (c=1) vs Ocha-U alone.
  MultiClientConfig solo;
  solo.topology = Topology::SingleSiteWan;
  solo.clients = 1;
  solo.n = 1000;
  solo.duration = 500.0;
  const double solo_tp = runMultiClient(solo).row.throughput_mbps.mean();

  MultiClientConfig multi = solo;
  multi.topology = Topology::MultiSiteWan;
  const auto m = runMultiClient(multi);
  double ocha_tp = 0;
  for (const auto& site : m.sites) {
    if (site.name == "Ocha-U") ocha_tp = site.row.throughput_mbps.mean();
  }
  const double degradation = 1.0 - ocha_tp / solo_tp;
  EXPECT_GT(degradation, 0.02);
  EXPECT_LT(degradation, 0.35);
}

TEST(Ep, FlatToFourClientsThenInverseC) {
  // Table 8: task-parallel EP sustains per-call performance to c=4 on the
  // 4-PE J90, then scales as 4/c.
  MultiClientConfig cfg;
  cfg.ep = true;
  cfg.duration = 3000.0;
  cfg.interval = 3.0;
  auto meanPerf = [&](std::size_t c) {
    cfg.clients = c;
    return runMultiClient(cfg).row.perf_mflops.mean();
  };
  const double p1 = meanPerf(1);
  const double p4 = meanPerf(4);
  const double p8 = meanPerf(8);
  EXPECT_NEAR(p1, 0.168, 0.02);  // Table 8 anchor, Mops
  EXPECT_NEAR(p4 / p1, 1.0, 0.1);
  EXPECT_NEAR(p8 / p1, 0.5, 0.12);
}

TEST(Ep, LanAndWanEquivalent) {
  MultiClientConfig lan, wan;
  lan.ep = wan.ep = true;
  lan.clients = wan.clients = 4;
  lan.duration = wan.duration = 2500.0;
  wan.topology = Topology::SingleSiteWan;
  const double pl = runMultiClient(lan).row.perf_mflops.mean();
  const double pw = runMultiClient(wan).row.perf_mflops.mean();
  EXPECT_NEAR(pw / pl, 1.0, 0.05);
}

TEST(MetaserverEp, LargeClassesSpeedUpSmallClassSlowsDown) {
  // Figure 11: classes A/B nearly linear; the 2^24 sample class suffers
  // from the serialized per-call dispatch overhead.
  auto speedup = [](int log2_pairs, std::size_t p) {
    MetaserverEpConfig cfg;
    cfg.log2_pairs = log2_pairs;
    cfg.procs = 1;
    const double t1 = runMetaserverEp(cfg).elapsed;
    cfg.procs = p;
    return t1 / runMetaserverEp(cfg).elapsed;
  };
  const double class_b_32 = speedup(30, 32);
  EXPECT_GT(class_b_32, 24.0);  // almost linear
  const double sample_32 = speedup(24, 32);
  EXPECT_LT(sample_32, 8.0);  // significant slowdown vs linear
  const double sample_4 = speedup(24, 4);
  EXPECT_GT(sample_4, sample_32 / 8 * 0.5);
}

TEST(Scenario, DeterministicForSeed) {
  MultiClientConfig cfg;
  cfg.clients = 4;
  cfg.duration = 120.0;
  const auto a = runMultiClient(cfg);
  const auto b = runMultiClient(cfg);
  EXPECT_EQ(a.row.times(), b.row.times());
  EXPECT_DOUBLE_EQ(a.row.perf_mflops.mean(), b.row.perf_mflops.mean());
  cfg.seed = 2024;
  const auto c = runMultiClient(cfg);
  EXPECT_NE(a.row.times(), 0u);
  // A different seed produces a different call pattern (almost surely).
  EXPECT_NE(a.row.perf_mflops.mean(), c.row.perf_mflops.mean());
}

TEST(Scenario, AdmissionControlGuaranteesInServiceTime) {
  // Section 5.1: restricting concurrent calls bounds the in-service time
  // spread, trading it for queueing delay.
  MultiClientConfig cfg;
  cfg.mode = ExecMode::TaskParallel;
  cfg.n = 1000;
  cfg.clients = 16;
  cfg.duration = 300.0;
  const auto open = runMultiClient(cfg);
  cfg.max_concurrent_calls = 2;
  const auto gated = runMultiClient(cfg);
  // Admitted calls are nearly contention-free under the gate.
  EXPECT_LT(gated.row.service_s.max(), open.row.service_s.max() * 0.5);
  // The contention moved into the admission queue.
  EXPECT_GT(gated.row.wait_s.mean(), open.row.wait_s.mean() * 10);
}

TEST(Scenario, EqualShareAblationRuns) {
  MultiClientConfig cfg;
  cfg.clients = 4;
  cfg.duration = 120.0;
  cfg.sharing = simnet::Sharing::EqualShare;
  const auto r = runMultiClient(cfg);
  EXPECT_GT(r.row.times(), 0u);
}

}  // namespace
}  // namespace ninf::simworld
