// Adversarial wire inputs: truncated, over-padded, length-lying, and
// randomly mutated CallRequest/CallReply bodies must surface as typed
// errors (ProtocolError / RemoteError), never out-of-bounds access or
// unbounded allocation.  Run under the NINF_SANITIZE=address preset this
// doubles as a memory-safety fuzz pass over both decode front ends: the
// contiguous xdr::Decoder and the streamed protocol::BodyReader.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "common/error.h"
#include "idl/parser.h"
#include "protocol/call_marshal.h"
#include "protocol/message.h"
#include "transport/inproc_transport.h"
#include "xdr/xdr.h"

namespace ninf::protocol {
namespace {

const idl::InterfaceInfo& dmmulInfo() {
  static const idl::InterfaceInfo info = idl::parseSingle(R"(
    Define dmmul(mode_in long n,
                 mode_in double A[n][n],
                 mode_in double B[n][n],
                 mode_out double C[n][n])
    Calls "C" mmul(n, A, B, C);)");
  return info;
}

/// Deterministic 64-bit PRNG (splitmix64) so failures reproduce exactly.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }
  std::size_t below(std::size_t n) {
    return static_cast<std::size_t>(next() % n);
  }

 private:
  std::uint64_t state_;
};

std::vector<std::uint8_t> validRequest(std::size_t n,
                                       std::vector<double>& a,
                                       std::vector<double>& b,
                                       std::vector<double>& c) {
  a.assign(n * n, 1.25);
  b.assign(n * n, -2.5);
  c.assign(n * n, 0.0);
  const std::vector<ArgValue> args = {
      ArgValue::inInt(static_cast<std::int64_t>(n)), ArgValue::inArray(a),
      ArgValue::inArray(b), ArgValue::outArray(c)};
  return encodeCallRequest(dmmulInfo(), args);
}

/// Decode a CallRequest body from a contiguous buffer the way the server
/// does (entry name, then arguments); must throw a ninf::Error on any
/// malformed input and never crash.
void decodeRequest(std::span<const std::uint8_t> payload) {
  xdr::Decoder dec(payload);
  if (dec.getString() != "dmmul") throw ProtocolError("wrong entry");
  decodeCallArgs(dmmulInfo(), dec);
}

/// Same decode driven through the streamed BodyReader over an inproc
/// pipe, with the frame length set to the (possibly lying) body size.
void decodeRequestStreamed(std::span<const std::uint8_t> payload,
                           std::size_t declared_length) {
  auto [a, b] = transport::inprocPair();
  std::thread sender([&, stream = a.get()] {
    try {
      stream->sendAll(payload);
      stream->shutdownSend();
    } catch (const Error&) {
      // Receiver bailed early; fine.
    }
  });
  try {
    BodyReader body(*b, declared_length);
    xdr::Source& src = body;
    if (src.getString() != "dmmul") throw ProtocolError("wrong entry");
    decodeCallArgs(dmmulInfo(), src);
    if (!body.atEnd()) throw ProtocolError("trailing bytes");
  } catch (...) {
    b->close();
    sender.join();
    throw;
  }
  b->close();
  sender.join();
}

TEST(WireFuzz, EveryTruncationOfRequestThrowsTyped) {
  std::vector<double> a, b, c;
  const auto payload = validRequest(4, a, b, c);
  for (std::size_t len = 0; len < payload.size(); ++len) {
    EXPECT_THROW(decodeRequest(std::span(payload).first(len)), ProtocolError)
        << "prefix length " << len;
  }
}

TEST(WireFuzz, TruncatedStreamedBodyThrowsTyped) {
  std::vector<double> a, b, c;
  const auto payload = validRequest(6, a, b, c);
  // Sample prefix lengths (full scan over inproc threads would be slow).
  for (std::size_t len = 0; len < payload.size(); len += 41) {
    EXPECT_THROW(
        decodeRequestStreamed(std::span(payload).first(len), len),
        ProtocolError)
        << "declared/streamed length " << len;
  }
}

TEST(WireFuzz, OverPaddedRequestRejectedBothPaths) {
  std::vector<double> a, b, c;
  auto payload = validRequest(4, a, b, c);
  for (int i = 0; i < 8; ++i) payload.push_back(0);
  EXPECT_THROW(decodeRequest(payload), ProtocolError);
  EXPECT_THROW(decodeRequestStreamed(payload, payload.size()), ProtocolError);
}

TEST(WireFuzz, LengthLyingArrayCountRejectedBeforeAllocation) {
  // An array header claiming ~8 GB of doubles backed by 16 bytes must be
  // rejected by the remaining-bytes guard, not attempted as an allocation.
  xdr::Encoder enc;
  enc.putString("dmmul");
  enc.putI64(4);
  enc.putU32(0x3FFFFFFFu);  // count field of A, lying
  enc.putU64(0);            // a few bytes of "payload"
  enc.putU64(0);
  const auto payload = enc.take();
  EXPECT_THROW(decodeRequest(payload), ProtocolError);
  EXPECT_THROW(decodeRequestStreamed(payload, payload.size()), ProtocolError);
}

TEST(WireFuzz, LengthLyingStringRejectedBeforeAllocation) {
  xdr::Encoder enc;
  enc.putU32(0x7FFFFFF0u);  // string length far past the buffer
  enc.putU64(0);
  const auto payload = enc.take();
  xdr::Decoder dec(payload);
  EXPECT_THROW(dec.getString(), ProtocolError);
  EXPECT_THROW(decodeRequestStreamed(payload, payload.size()), ProtocolError);
}

TEST(WireFuzz, DeclaredFrameLongerThanContentUnderflows) {
  // Header length says 64 KiB more than the peer ever sends: the reader
  // must fail cleanly when the pipe drains (no hang once the sender
  // shuts down its side, no fabricated bytes).
  std::vector<double> a, b, c;
  const auto payload = validRequest(4, a, b, c);
  EXPECT_THROW(decodeRequestStreamed(payload, payload.size() + 65536), Error);
}

TEST(WireFuzz, MutatedRequestsNeverEscapeTypedErrors) {
  std::vector<double> a, b, c;
  const auto pristine = validRequest(8, a, b, c);
  Rng rng(0x5EED0001);
  int decoded_ok = 0;
  for (int iter = 0; iter < 300; ++iter) {
    auto payload = pristine;
    // 1-4 random byte mutations.
    const int edits = 1 + static_cast<int>(rng.below(4));
    for (int e = 0; e < edits; ++e) {
      payload[rng.below(payload.size())] =
          static_cast<std::uint8_t>(rng.next());
    }
    try {
      decodeRequest(payload);
      ++decoded_ok;  // mutation hit a don't-care byte (array payload)
    } catch (const Error&) {
      // Typed failure: the property holds.
    }
  }
  // Most mutations land in the 1.5 KB of array payload and still decode;
  // the point of the loop is that nothing escapes the Error hierarchy.
  EXPECT_GT(decoded_ok, 0);
}

TEST(WireFuzz, MutatedStreamedRequestsNeverEscapeTypedErrors) {
  std::vector<double> a, b, c;
  const auto pristine = validRequest(6, a, b, c);
  Rng rng(0x5EED0002);
  for (int iter = 0; iter < 60; ++iter) {
    auto payload = pristine;
    const std::size_t pos = rng.below(payload.size());
    payload[pos] = static_cast<std::uint8_t>(rng.next());
    // Also lie about the frame length within +/- 8 bytes occasionally.
    std::size_t declared = payload.size();
    if (iter % 3 == 0) {
      declared = declared - 8 + rng.below(16);
    }
    try {
      decodeRequestStreamed(std::span(payload).first(
                                std::min(declared, payload.size())),
                            declared);
    } catch (const Error&) {
    }
  }
}

TEST(WireFuzz, MutatedRepliesNeverEscapeTypedErrors) {
  // Build a valid CallReply, then mutate: the client decode must either
  // succeed, report RemoteError (status flipped), or ProtocolError.
  std::vector<double> a, b, c;
  const auto request = validRequest(8, a, b, c);
  xdr::Decoder dec(request);
  dec.getString();
  ServerCallData data = decodeCallArgs(dmmulInfo(), dec);
  for (auto& v : data.arrays[3]) v = 3.75;
  const auto pristine = encodeCallReply(dmmulInfo(), data, {});

  const std::vector<ArgValue> args = {
      ArgValue::inInt(8), ArgValue::inArray(a), ArgValue::inArray(b),
      ArgValue::outArray(c)};
  Rng rng(0x5EED0003);
  for (int iter = 0; iter < 300; ++iter) {
    auto payload = pristine;
    payload[rng.below(payload.size())] =
        static_cast<std::uint8_t>(rng.next());
    try {
      decodeCallReply(dmmulInfo(), payload, args);
    } catch (const Error&) {
      // RemoteError or ProtocolError — both are in-contract.
    }
  }
}

TEST(WireFuzz, TruncatedRepliesThrowTyped) {
  std::vector<double> a, b, c;
  const auto request = validRequest(4, a, b, c);
  xdr::Decoder dec(request);
  dec.getString();
  ServerCallData data = decodeCallArgs(dmmulInfo(), dec);
  const auto reply = encodeCallReply(dmmulInfo(), data, {});
  const std::vector<ArgValue> args = {
      ArgValue::inInt(4), ArgValue::inArray(a), ArgValue::inArray(b),
      ArgValue::outArray(c)};
  for (std::size_t len = 0; len < reply.size(); ++len) {
    EXPECT_THROW(decodeCallReply(dmmulInfo(), std::span(reply).first(len),
                                 args),
                 ProtocolError)
        << "prefix length " << len;
  }
}

}  // namespace
}  // namespace ninf::protocol
