// Tests for the annotated sync layer (common/sync.h): primitive
// semantics, and the runtime lock-order checker (lockdep) — seeded
// inversions must be reported with both acquisition sites even when no
// schedule actually deadlocks.
#include "common/sync.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace {

using ninf::CondVar;
using ninf::LockGuard;
using ninf::Mutex;
using ninf::UniqueLock;

/// Every test runs with the checker on, a capturing handler installed
/// (so violations fail the test instead of aborting the process), and a
/// clean order graph.
class LockdepTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = ninf::lockdep::enabled();
    ninf::lockdep::setEnabled(true);
    ninf::lockdep::resetGraphForTesting();
    ninf::lockdep::setViolationHandler(
        [this](const ninf::lockdep::Violation& v) {
          violations_.push_back(v);
        });
  }

  void TearDown() override {
    ninf::lockdep::setViolationHandler(nullptr);
    ninf::lockdep::resetGraphForTesting();
    ninf::lockdep::setEnabled(was_enabled_);
  }

  std::vector<ninf::lockdep::Violation> violations_;
  bool was_enabled_ = false;
};

TEST_F(LockdepTest, MutexRoundTrip) {
  Mutex m{"test.roundtrip"};
  int counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        LockGuard lock(m);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, 4000);
  EXPECT_TRUE(violations_.empty());
  EXPECT_STREQ(m.lockClassName(), "test.roundtrip");
}

TEST_F(LockdepTest, TryLockReportsOwnership) {
  Mutex m{"test.trylock"};
  ASSERT_TRUE(m.try_lock());
  const auto held = ninf::lockdep::heldLockNames();
  ASSERT_EQ(held.size(), 1u);
  EXPECT_EQ(held[0], "test.trylock");
  // Contended try_lock from another thread fails without any bookkeeping.
  std::thread other([&] {
    EXPECT_FALSE(m.try_lock());
    EXPECT_TRUE(ninf::lockdep::heldLockNames().empty());
  });
  other.join();
  m.unlock();
  EXPECT_TRUE(ninf::lockdep::heldLockNames().empty());
  EXPECT_TRUE(violations_.empty());
}

TEST_F(LockdepTest, CondVarWaitWakesOnNotify) {
  Mutex m{"test.cv"};
  CondVar cv;
  bool flag = false;
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    {
      LockGuard lock(m);
      flag = true;
    }
    cv.notify_one();
  });
  {
    UniqueLock lock(m);
    cv.wait(lock, [&] { return flag; });
    EXPECT_TRUE(flag);
  }
  producer.join();
  EXPECT_TRUE(violations_.empty());
}

TEST_F(LockdepTest, CondVarWaitForTimesOut) {
  Mutex m{"test.cv.timeout"};
  CondVar cv;
  UniqueLock lock(m);
  const bool ready = cv.wait_for(lock, std::chrono::milliseconds(5),
                                 [] { return false; });
  EXPECT_FALSE(ready);
  EXPECT_TRUE(lock.owns_lock());
  EXPECT_TRUE(violations_.empty());
}

// The core lockdep promise: an A->B / B->A inversion is reported from
// the order graph alone — single-threaded, with no deadlock schedule
// ever occurring — and the report names both acquisition sites.
TEST_F(LockdepTest, DetectsSeededInversionWithoutDeadlockSchedule) {
  Mutex a{"test.A"};
  Mutex b{"test.B"};
  {
    LockGuard la(a);
    LockGuard lb(b);  // establishes A -> B
  }
  ASSERT_TRUE(ninf::lockdep::hasEdge("test.A", "test.B"));
  ASSERT_TRUE(violations_.empty());
  {
    LockGuard lb(b);
    LockGuard la(a);  // closes the cycle: B -> A
  }
  ASSERT_EQ(violations_.size(), 1u);
  const auto& v = violations_[0];
  // The cycle names both classes...
  EXPECT_NE(v.cycle.find("test.A"), std::string::npos);
  EXPECT_NE(v.cycle.find("test.B"), std::string::npos);
  // ...the attempted site shows what this thread held at the bad acquire...
  EXPECT_NE(v.attempted.find("holding [test.B]"), std::string::npos);
  EXPECT_NE(v.attempted.find("acquired 'test.A'"), std::string::npos);
  // ...and the established side records where A -> B was first observed.
  EXPECT_NE(v.established.find("holding [test.A]"), std::string::npos);
  EXPECT_NE(v.established.find("acquired 'test.B'"), std::string::npos);
}

// Ordering is a property of lock *classes*, so the inversion is caught
// even when the two halves run on different threads at different times.
TEST_F(LockdepTest, DetectsCrossThreadInversion) {
  Mutex a{"test.xthread.A"};
  Mutex b{"test.xthread.B"};
  std::thread forward([&] {
    LockGuard la(a);
    LockGuard lb(b);
  });
  forward.join();
  std::thread reverse([&] {
    LockGuard lb(b);
    LockGuard la(a);
  });
  reverse.join();
  EXPECT_EQ(violations_.size(), 1u);
}

// A declared (documented) hierarchy is pre-seeded: violating it fails
// deterministically even though the forward order never ran.
TEST_F(LockdepTest, DeclaredHierarchyViolatesWithoutForwardObservation) {
  ninf::lockdep::declareOrder({"test.outer", "test.inner"});
  ASSERT_TRUE(ninf::lockdep::hasEdge("test.outer", "test.inner"));
  Mutex outer{"test.outer"};
  Mutex inner{"test.inner"};
  {
    LockGuard li(inner);
    LockGuard lo(outer);  // inner-before-outer: reverses the declaration
  }
  ASSERT_EQ(violations_.size(), 1u);
  EXPECT_NE(violations_[0].established.find("declared lock hierarchy"),
            std::string::npos);
}

// Transitive cycles: A->B and B->C recorded, then C->A closes the loop.
TEST_F(LockdepTest, DetectsTransitiveCycle) {
  Mutex a{"test.t.A"};
  Mutex b{"test.t.B"};
  Mutex c{"test.t.C"};
  {
    LockGuard la(a);
    LockGuard lb(b);
  }
  {
    LockGuard lb(b);
    LockGuard lc(c);
  }
  ASSERT_TRUE(violations_.empty());
  {
    LockGuard lc(c);
    LockGuard la(a);
  }
  ASSERT_EQ(violations_.size(), 1u);
  // The report walks the whole A -> B -> C chain that conflicts.
  EXPECT_NE(violations_[0].cycle.find("test.t.B"), std::string::npos);
}

// Nesting two locks of one class has no defined inter-instance order: a
// parallel thread nesting them the other way would deadlock.
TEST_F(LockdepTest, SameClassNestingIsAViolation) {
  Mutex first{"test.selfclass"};
  Mutex second{"test.selfclass"};
  {
    LockGuard l1(first);
    LockGuard l2(second);
  }
  ASSERT_EQ(violations_.size(), 1u);
  EXPECT_NE(violations_[0].established.find("self-edge"), std::string::npos);
}

// Each violation is reported once (the recorded edge short-circuits the
// repeat), so a hot path cannot flood the handler.
TEST_F(LockdepTest, ViolationReportedOnce) {
  Mutex a{"test.once.A"};
  Mutex b{"test.once.B"};
  for (int i = 0; i < 3; ++i) {
    LockGuard la(a);
    LockGuard lb(b);
  }
  for (int i = 0; i < 3; ++i) {
    LockGuard lb(b);
    LockGuard la(a);
  }
  EXPECT_EQ(violations_.size(), 1u);
  EXPECT_EQ(ninf::lockdep::violationCount(), 1u);
}

// A condvar wait genuinely releases the mutex and re-acquires on wake:
// the held stack drops the lock for the park, and the re-acquisition is
// re-checked (and re-recorded) against everything still held.
TEST_F(LockdepTest, CondVarWaitTracksReleaseAndReacquire) {
  Mutex outer{"test.cvorder.outer"};
  Mutex inner{"test.cvorder.inner"};
  CondVar cv;
  bool flag = false;

  LockGuard hold_outer(outer);
  UniqueLock lock(inner);
  ASSERT_EQ(ninf::lockdep::heldLockNames().size(), 2u);

  // Drop the recorded outer->inner edge so the wake-up re-acquisition
  // is what re-records it (resetGraphForTesting keeps class names but
  // clears edges; this thread's held stack is preserved by re-pushing).
  ninf::lockdep::resetGraphForTesting();
  ASSERT_TRUE(ninf::lockdep::heldLockNames().empty());

  std::thread producer([&] {
    // The helper can take `inner` only because the waiter released it —
    // proof the park really dropped the mutex.
    LockGuard g(inner);
    flag = true;
    cv.notify_one();
  });
  cv.wait(lock, [&] { return flag; });
  producer.join();

  // The wait pushed `inner` back... (outer was wiped from the stack by
  // the reset, so only the re-acquired mutex is tracked afterwards).
  const auto held = ninf::lockdep::heldLockNames();
  ASSERT_EQ(held.size(), 1u);
  EXPECT_EQ(held[0], "test.cvorder.inner");
  EXPECT_TRUE(violations_.empty());
}

// Disabled checker: no edges recorded, no held-stack bookkeeping — the
// per-acquisition cost is a single relaxed atomic load.
TEST_F(LockdepTest, DisabledCheckerRecordsNothing) {
  ninf::lockdep::setEnabled(false);
  Mutex a{"test.off.A"};
  Mutex b{"test.off.B"};
  {
    LockGuard la(a);
    LockGuard lb(b);
    EXPECT_TRUE(ninf::lockdep::heldLockNames().empty());
  }
  {
    LockGuard lb(b);
    LockGuard la(a);  // an inversion the disabled checker must not see
  }
  EXPECT_EQ(ninf::lockdep::edgeCount(), 0u);
  EXPECT_EQ(ninf::lockdep::violationCount(), 0u);
  EXPECT_TRUE(violations_.empty());
}

// Toggling mid-stream: locks acquired while disabled release cleanly
// after the checker turns on (release of an unregistered class is a
// no-op, not a corruption).
TEST_F(LockdepTest, EnableAfterAcquireIsSafe) {
  ninf::lockdep::setEnabled(false);
  Mutex m{"test.toggle"};
  m.lock();
  ninf::lockdep::setEnabled(true);
  m.unlock();  // class never registered: must not underflow anything
  EXPECT_TRUE(ninf::lockdep::heldLockNames().empty());
  EXPECT_EQ(ninf::lockdep::violationCount(), 0u);
}

// The repo's documented hierarchy (seeded on first checked acquisition)
// is active in this process: reversing a documented edge trips the
// checker even though the forward path never ran in this test binary.
TEST_F(LockdepTest, CanonicalHierarchyIsEnforced) {
  // Force the one-time seeding, then reset and re-declare a known pair
  // to keep this test independent of which edges other tests recorded.
  {
    Mutex warm{"test.warmup"};
    LockGuard g(warm);
  }
  ninf::lockdep::resetGraphForTesting();
  ninf::lockdep::declareOrder(
      {"channel.setup", "channel.send", "channel.pending"});
  Mutex setup{"channel.setup"};
  Mutex pending{"channel.pending"};
  {
    LockGuard lp(pending);
    LockGuard ls(setup);  // pending-before-setup reverses the hierarchy
  }
  ASSERT_EQ(violations_.size(), 1u);
  EXPECT_NE(violations_[0].cycle.find("channel.setup"), std::string::npos);
}

}  // namespace
