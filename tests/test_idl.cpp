// IDL lexer + parser + InterfaceInfo, against the paper's own dmmul IDL.
#include <gtest/gtest.h>

#include "common/error.h"
#include "idl/interface_info.h"
#include "idl/lexer.h"
#include "idl/parser.h"

namespace ninf::idl {
namespace {

constexpr const char* kDmmulIdl = R"(
Define dmmul(mode_in long n,
             mode_in double A[n][n],
             mode_in double B[n][n],
             mode_out double C[n][n])
"dmmul is double precision matrix multiply",
Required "libxxx.o"
Calls "C" mmul(n, A, B, C);
)";

// ------------------------------------------------------------- lexer

TEST(Lexer, TokenizesSymbolsAndIdents) {
  auto toks = tokenize("Define f(a, b) ;");
  ASSERT_EQ(toks.size(), 9u);  // includes End
  EXPECT_EQ(toks[0].text, "Define");
  EXPECT_TRUE(toks[1].is(TokenKind::Ident));
  EXPECT_TRUE(toks[2].is(TokenKind::LParen));
  EXPECT_TRUE(toks[4].is(TokenKind::Comma));
  EXPECT_TRUE(toks[7].is(TokenKind::Semicolon));
  EXPECT_TRUE(toks.back().is(TokenKind::End));
}

TEST(Lexer, TokenizesNumbersAndStrings) {
  auto toks = tokenize(R"(123 "hello world")");
  EXPECT_TRUE(toks[0].is(TokenKind::Number));
  EXPECT_EQ(toks[0].number, 123);
  EXPECT_TRUE(toks[1].is(TokenKind::String));
  EXPECT_EQ(toks[1].text, "hello world");
}

TEST(Lexer, SkipsComments) {
  auto toks = tokenize("a # line comment\n /* block \n comment */ b");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0].text, "a");
  EXPECT_EQ(toks[1].text, "b");
}

TEST(Lexer, TracksLineNumbers) {
  auto toks = tokenize("a\nb\n\nc");
  EXPECT_EQ(toks[0].line, 1);
  EXPECT_EQ(toks[1].line, 2);
  EXPECT_EQ(toks[2].line, 4);
}

TEST(Lexer, UnterminatedStringThrows) {
  EXPECT_THROW(tokenize("\"oops"), IdlError);
}

TEST(Lexer, UnterminatedBlockCommentThrows) {
  EXPECT_THROW(tokenize("/* forever"), IdlError);
}

TEST(Lexer, IllegalCharacterThrows) { EXPECT_THROW(tokenize("a @ b"), IdlError); }

// ------------------------------------------------------------ parser

TEST(Parser, ParsesThePaperDmmulExample) {
  const InterfaceInfo info = parseSingle(kDmmulIdl);
  EXPECT_EQ(info.name, "dmmul");
  EXPECT_EQ(info.description, "dmmul is double precision matrix multiply");
  ASSERT_EQ(info.required.size(), 1u);
  EXPECT_EQ(info.required[0], "libxxx.o");
  ASSERT_EQ(info.params.size(), 4u);

  EXPECT_EQ(info.params[0].name, "n");
  EXPECT_EQ(info.params[0].mode, Mode::In);
  EXPECT_EQ(info.params[0].type, ScalarType::Long);
  EXPECT_TRUE(info.params[0].isScalar());

  EXPECT_EQ(info.params[1].name, "A");
  EXPECT_EQ(info.params[1].type, ScalarType::Double);
  EXPECT_EQ(info.params[1].dims.size(), 2u);

  EXPECT_EQ(info.params[3].name, "C");
  EXPECT_EQ(info.params[3].mode, Mode::Out);

  EXPECT_EQ(info.call_language, "C");
  EXPECT_EQ(info.call_target, "mmul");
  EXPECT_EQ(info.call_arg_order, (std::vector<std::uint32_t>{0, 1, 2, 3}));
  EXPECT_TRUE(info.validate());
}

TEST(Parser, DimensionExpressionsEvaluate) {
  const InterfaceInfo info = parseSingle(kDmmulIdl);
  const std::int64_t scalars[] = {8, 0, 0, 0};
  EXPECT_EQ(info.params[1].elementCount(scalars), 64);
}

TEST(Parser, PaperQuirkTypeBeforeMode) {
  // The paper's literal example reads "long mode_in int n".
  const InterfaceInfo info = parseSingle(R"(
    Define f(long mode_in int n, mode_in double A[n])
    Calls "C" f(n, A);)");
  EXPECT_EQ(info.params[0].type, ScalarType::Long);
  EXPECT_EQ(info.params[0].mode, Mode::In);
}

TEST(Parser, CalcOrderClause) {
  const InterfaceInfo info = parseSingle(R"(
    Define lp(mode_in long n, mode_out double x[n])
    CalcOrder 2*n^3/3 + 2*n^2,
    Calls "C" lp(n, x);)");
  const std::int64_t scalars[] = {30, 0};
  EXPECT_EQ(info.flopsEstimate(scalars), 2 * 27000 / 3 + 2 * 900);
}

TEST(Parser, ForwardDimensionReference) {
  const InterfaceInfo info = parseSingle(R"(
    Define f(mode_out double x[n], mode_in long n)
    Calls "C" f(x, n);)");
  const std::int64_t scalars[] = {0, 5};
  EXPECT_EQ(info.params[0].elementCount(scalars), 5);
}

TEST(Parser, MultipleDefinesInModule) {
  auto module = parseModule(R"(
    Define a(mode_in long n) Calls "C" fa(n);
    Define b(mode_in long m) Calls "Fortran" fb(m);)");
  ASSERT_EQ(module.size(), 2u);
  EXPECT_EQ(module[0].name, "a");
  EXPECT_EQ(module[1].call_language, "Fortran");
}

TEST(Parser, InOutMode) {
  const InterfaceInfo info = parseSingle(R"(
    Define f(mode_in long n, mode_inout double v[n])
    Calls "C" f(n, v);)");
  EXPECT_TRUE(info.params[1].shippedIn());
  EXPECT_TRUE(info.params[1].shippedOut());
}

TEST(Parser, RejectsDuplicateParameter) {
  EXPECT_THROW(parseSingle(R"(
    Define f(mode_in long n, mode_in long n) Calls "C" f(n);)"),
               IdlError);
}

TEST(Parser, RejectsUnknownDimensionName) {
  EXPECT_THROW(parseSingle(R"(
    Define f(mode_in double A[m]) Calls "C" f(A);)"),
               IdlError);
}

TEST(Parser, RejectsArrayDimensionOnOutputScalarRef) {
  EXPECT_THROW(parseSingle(R"(
    Define f(mode_out long n, mode_in double A[n]) Calls "C" f(n, A);)"),
               IdlError);
}

TEST(Parser, RejectsNonScalarDimensionRef) {
  EXPECT_THROW(parseSingle(R"(
    Define f(mode_in double A[2], mode_in double B[A]) Calls "C" f(A, B);)"),
               IdlError);
}

TEST(Parser, RejectsUnknownCallArgument) {
  EXPECT_THROW(parseSingle(R"(
    Define f(mode_in long n) Calls "C" f(m);)"),
               IdlError);
}

TEST(Parser, RejectsMissingCallsClause) {
  EXPECT_THROW(parseSingle(R"(Define f(mode_in long n))"), IdlError);
}

TEST(Parser, RejectsMissingType) {
  EXPECT_THROW(parseSingle(R"(
    Define f(mode_in n) Calls "C" f(n);)"),
               IdlError);
}

TEST(Parser, FormatRoundTrips) {
  const InterfaceInfo info = parseSingle(kDmmulIdl);
  const InterfaceInfo reparsed = parseSingle(formatInterface(info));
  EXPECT_EQ(reparsed, info);
}

// ----------------------------------------------------- InterfaceInfo

TEST(InterfaceInfo, ByteAccounting) {
  const InterfaceInfo info = parseSingle(kDmmulIdl);
  const std::int64_t scalars[] = {10, 0, 0, 0};
  // in: long n (8) + A (4 + 800) + B (4 + 800); out: C (4 + 800).
  EXPECT_EQ(info.bytesIn(scalars), 8 + 4 + 800 + 4 + 800);
  EXPECT_EQ(info.bytesOut(scalars), 4 + 800);
  EXPECT_EQ(info.bytesTotal(scalars),
            info.bytesIn(scalars) + info.bytesOut(scalars));
}

TEST(InterfaceInfo, XdrRoundTrip) {
  const InterfaceInfo info = parseSingle(kDmmulIdl);
  const InterfaceInfo decoded = InterfaceInfo::fromBytes(info.toBytes());
  EXPECT_EQ(decoded, info);
}

TEST(InterfaceInfo, FromBytesRejectsTrailingGarbage) {
  const InterfaceInfo info = parseSingle(kDmmulIdl);
  auto bytes = info.toBytes();
  bytes.push_back(0);
  bytes.push_back(0);
  bytes.push_back(0);
  bytes.push_back(0);
  EXPECT_THROW(InterfaceInfo::fromBytes(bytes), ProtocolError);
}

TEST(InterfaceInfo, ParamIndexLookup) {
  const InterfaceInfo info = parseSingle(kDmmulIdl);
  EXPECT_EQ(info.paramIndex("C"), 3u);
  EXPECT_THROW(info.paramIndex("zz"), NotFoundError);
}

TEST(InterfaceInfo, NegativeDimensionThrowsAtEvaluation) {
  const InterfaceInfo info = parseSingle(R"(
    Define f(mode_in long n, mode_in double A[n]) Calls "C" f(n, A);)");
  const std::int64_t scalars[] = {-3, 0};
  EXPECT_THROW(info.params[1].elementCount(scalars), ProtocolError);
}

}  // namespace
}  // namespace ninf::idl
