// XDR encode/decode: round-trips, wire layout, malformed input.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/error.h"
#include "xdr/xdr.h"

namespace ninf::xdr {
namespace {

TEST(Xdr, U32WireFormatIsBigEndian) {
  Encoder enc;
  enc.putU32(0x01020304u);
  ASSERT_EQ(enc.size(), 4u);
  EXPECT_EQ(enc.bytes()[0], 0x01);
  EXPECT_EQ(enc.bytes()[1], 0x02);
  EXPECT_EQ(enc.bytes()[2], 0x03);
  EXPECT_EQ(enc.bytes()[3], 0x04);
}

TEST(Xdr, ScalarRoundTrips) {
  Encoder enc;
  enc.putU32(0xDEADBEEFu);
  enc.putI32(-42);
  enc.putU64(0x0123456789ABCDEFull);
  enc.putI64(-1234567890123456789ll);
  enc.putBool(true);
  enc.putBool(false);
  enc.putFloat(3.25f);
  enc.putDouble(-2.718281828459045);

  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.getU32(), 0xDEADBEEFu);
  EXPECT_EQ(dec.getI32(), -42);
  EXPECT_EQ(dec.getU64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(dec.getI64(), -1234567890123456789ll);
  EXPECT_TRUE(dec.getBool());
  EXPECT_FALSE(dec.getBool());
  EXPECT_EQ(dec.getFloat(), 3.25f);
  EXPECT_EQ(dec.getDouble(), -2.718281828459045);
  EXPECT_TRUE(dec.atEnd());
}

TEST(Xdr, DoubleSpecialValuesRoundTrip) {
  const double values[] = {0.0, -0.0,
                           std::numeric_limits<double>::infinity(),
                           -std::numeric_limits<double>::infinity(),
                           std::numeric_limits<double>::denorm_min(),
                           std::numeric_limits<double>::max()};
  Encoder enc;
  for (double v : values) enc.putDouble(v);
  Decoder dec(enc.bytes());
  for (double v : values) {
    const double got = dec.getDouble();
    EXPECT_EQ(std::signbit(got), std::signbit(v));
    EXPECT_EQ(got, v);
  }
}

TEST(Xdr, NanRoundTripsAsNan) {
  Encoder enc;
  enc.putDouble(std::numeric_limits<double>::quiet_NaN());
  Decoder dec(enc.bytes());
  EXPECT_TRUE(std::isnan(dec.getDouble()));
}

TEST(Xdr, StringRoundTripAndPadding) {
  Encoder enc;
  enc.putString("ninf");   // exactly 4 bytes: no padding
  enc.putString("dmmul");  // 5 bytes: 3 bytes padding
  enc.putString("");
  EXPECT_EQ(enc.size(), 4u + 4u + 4u + 8u + 4u);
  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.getString(), "ninf");
  EXPECT_EQ(dec.getString(), "dmmul");
  EXPECT_EQ(dec.getString(), "");
  EXPECT_TRUE(dec.atEnd());
}

TEST(Xdr, OpaqueRoundTrip) {
  const std::vector<std::uint8_t> blob = {0x00, 0xFF, 0x10, 0x20, 0x30};
  Encoder enc;
  enc.putOpaque(blob);
  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.getOpaque(), blob);
}

TEST(Xdr, DoubleArrayRoundTrip) {
  std::vector<double> values(257);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<double>(i) * 0.25 - 32.0;
  }
  Encoder enc;
  enc.putDoubleArray(values);
  EXPECT_EQ(enc.size(), 4u + values.size() * 8);
  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.getDoubleArray(), values);
}

TEST(Xdr, DoubleArrayIntoMatchesBulkDecode) {
  std::vector<double> values = {1.5, -2.5, 3.5, 1e300, -1e-300};
  Encoder enc;
  enc.putDoubleArray(values);
  std::vector<double> out(values.size());
  Decoder dec(enc.bytes());
  dec.getDoubleArrayInto(out);
  EXPECT_EQ(out, values);
  EXPECT_TRUE(dec.atEnd());
}

TEST(Xdr, DoubleArrayIntoRejectsCountMismatch) {
  Encoder enc;
  enc.putDoubleArray(std::vector<double>{1.0, 2.0});
  std::vector<double> out(3);
  Decoder dec(enc.bytes());
  EXPECT_THROW(dec.getDoubleArrayInto(out), ProtocolError);
}

TEST(Xdr, I64ArrayRoundTrip) {
  const std::vector<std::int64_t> values = {-1, 0, 1, 1ll << 62};
  Encoder enc;
  enc.putI64Array(values);
  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.getI64Array(), values);
}

TEST(Xdr, UnderflowThrows) {
  Encoder enc;
  enc.putU32(7);
  Decoder dec(enc.bytes());
  dec.getU32();
  EXPECT_THROW(dec.getU32(), ProtocolError);
}

TEST(Xdr, TruncatedStringThrows) {
  Encoder enc;
  enc.putU32(100);  // claims 100 bytes follow; none do
  Decoder dec(enc.bytes());
  EXPECT_THROW(dec.getString(), ProtocolError);
}

TEST(Xdr, NonZeroPaddingRejected) {
  Encoder enc;
  enc.putString("abcde");
  auto bytes = enc.bytes();
  bytes.back() = 1;  // corrupt a padding byte
  Decoder dec(bytes);
  EXPECT_THROW(dec.getString(), ProtocolError);
}

TEST(Xdr, BoolOutOfRangeRejected) {
  Encoder enc;
  enc.putU32(2);
  Decoder dec(enc.bytes());
  EXPECT_THROW(dec.getBool(), ProtocolError);
}

TEST(Xdr, RawBytesPassThrough) {
  Encoder inner;
  inner.putU32(99);
  Encoder outer;
  outer.putRaw(inner.bytes());
  Decoder dec(outer.bytes());
  EXPECT_EQ(dec.getU32(), 99u);
}

class XdrDoubleParamTest : public ::testing::TestWithParam<double> {};

TEST_P(XdrDoubleParamTest, RoundTripsExactly) {
  Encoder enc;
  enc.putDouble(GetParam());
  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.getDouble(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Values, XdrDoubleParamTest,
                         ::testing::Values(0.0, 1.0, -1.0, 0.1, 1e-17, 1e17,
                                           3.141592653589793, 2.5e-308,
                                           1.7976931348623157e308));

}  // namespace
}  // namespace ninf::xdr
