// Discrete-event kernel: event ordering, virtual time, coroutine
// processes, resources, and joinable tasks.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "simcore/simulation.h"
#include "simcore/task.h"

namespace ninf::simcore {
namespace {

TEST(Simulation, EventsFireInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule(3.0, [&] { order.push_back(3); });
  sim.schedule(1.0, [&] { order.push_back(1); });
  sim.schedule(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulation, SimultaneousEventsFifo) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule(1.0, [&, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulation, NestedSchedulingAdvancesClock) {
  Simulation sim;
  double fired_at = -1;
  sim.schedule(1.0, [&] {
    sim.schedule(2.0, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 3.0);
}

TEST(Simulation, CancelledEventsSkipped) {
  Simulation sim;
  bool fired = false;
  auto handle = sim.schedule(1.0, [&] { fired = true; });
  EXPECT_TRUE(handle.pending());
  handle.cancel();
  EXPECT_FALSE(handle.pending());
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulation, RunUntilStopsAtHorizon) {
  Simulation sim;
  int count = 0;
  sim.schedule(1.0, [&] { ++count; });
  sim.schedule(5.0, [&] { ++count; });
  sim.runUntil(2.0);
  EXPECT_EQ(count, 1);
  sim.run();
  EXPECT_EQ(count, 2);
}

TEST(Simulation, NegativeDelayRejected) {
  Simulation sim;
  EXPECT_THROW(sim.schedule(-1.0, [] {}), std::logic_error);
}

TEST(Simulation, ProcessDelaysAccumulate) {
  Simulation sim;
  double done_at = -1;
  [](Simulation& s, double& out) -> Process {
    co_await s.delay(1.5);
    co_await s.delay(2.5);
    out = s.now();
  }(sim, done_at);
  sim.run();
  EXPECT_DOUBLE_EQ(done_at, 4.0);
}

TEST(Simulation, ProcessExceptionRethrownFromRun) {
  Simulation sim;
  [](Simulation& s) -> Process {
    co_await s.delay(1.0);
    throw std::runtime_error("process failed");
  }(sim);
  EXPECT_THROW(sim.run(), std::runtime_error);
}

TEST(SimEvent, BroadcastWakesAllWaiters) {
  Simulation sim;
  SimEvent ev(sim);
  int woken = 0;
  for (int i = 0; i < 3; ++i) {
    [](Simulation&, SimEvent& e, int& count) -> Process {
      co_await e.wait();
      ++count;
    }(sim, ev, woken);
  }
  sim.schedule(2.0, [&] { ev.trigger(); });
  sim.run();
  EXPECT_EQ(woken, 3);
}

TEST(SimEvent, WaitAfterTriggerCompletesImmediately) {
  Simulation sim;
  SimEvent ev(sim);
  ev.trigger();
  bool done = false;
  [](SimEvent& e, bool& flag) -> Process {
    co_await e.wait();
    flag = true;
  }(ev, done);
  sim.run();
  EXPECT_TRUE(done);
}

TEST(SimResource, FifoAdmission) {
  Simulation sim;
  SimResource res(sim, 1);
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    [](Simulation& s, SimResource& r, std::vector<int>& log,
       int id) -> Process {
      co_await r.acquire();
      log.push_back(id);
      co_await s.delay(1.0);
      r.release();
    }(sim, res, order, i);
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
  EXPECT_EQ(res.inUse(), 0);
}

TEST(SimResource, WideRequestBlocksHead) {
  // Strict FIFO: a 2-unit request at the head must not be overtaken by a
  // later 1-unit request (no starvation of data-parallel jobs).
  Simulation sim;
  SimResource res(sim, 2);
  std::vector<std::string> order;
  [](Simulation& s, SimResource& r, std::vector<std::string>& log) -> Process {
    co_await r.acquire(1);
    co_await s.delay(5.0);
    log.push_back("first-release");
    r.release(1);
  }(sim, res, order);
  [](Simulation& s, SimResource& r, std::vector<std::string>& log) -> Process {
    co_await s.delay(1.0);
    co_await r.acquire(2);  // must wait for the 1-unit holder
    log.push_back("wide");
    r.release(2);
  }(sim, res, order);
  [](Simulation& s, SimResource& r, std::vector<std::string>& log) -> Process {
    co_await s.delay(2.0);
    co_await r.acquire(1);  // arrives later; must queue behind the wide one
    log.push_back("narrow");
    r.release(1);
  }(sim, res, order);
  sim.run();
  EXPECT_EQ(order, (std::vector<std::string>{"first-release", "wide",
                                             "narrow"}));
}

TEST(SimResource, OverCapacityAcquireRejected) {
  Simulation sim;
  SimResource res(sim, 2);
  EXPECT_THROW(res.acquire(3), std::logic_error);
}

TEST(Task, ReturnsValueToAwaiter) {
  Simulation sim;
  double result = 0;
  auto worker = [](Simulation& s) -> Task<double> {
    co_await s.delay(2.0);
    co_return 42.5;
  };
  [](Simulation& s, double& out, auto& make) -> Process {
    out = co_await make(s);
  }(sim, result, worker);
  sim.run();
  EXPECT_DOUBLE_EQ(result, 42.5);
}

TEST(Task, ExceptionPropagatesToAwaiter) {
  Simulation sim;
  bool caught = false;
  auto failing = [](Simulation& s) -> Task<> {
    co_await s.delay(1.0);
    throw std::runtime_error("task failed");
  };
  [](Simulation& s, bool& flag, auto& make) -> Process {
    try {
      co_await make(s);
    } catch (const std::runtime_error&) {
      flag = true;
    }
  }(sim, caught, failing);
  sim.run();
  EXPECT_TRUE(caught);
}

TEST(Task, ConcurrentTasksOverlapInVirtualTime) {
  Simulation sim;
  double done_at = -1;
  auto sleeper = [](Simulation& s, double d) -> Task<> {
    co_await s.delay(d);
  };
  [](Simulation& s, double& out, auto& make) -> Process {
    // Start both, then join: total should be max, not sum.
    auto t1 = make(s, 3.0);
    auto t2 = make(s, 5.0);
    co_await t1;
    co_await t2;
    out = s.now();
  }(sim, done_at, sleeper);
  sim.run();
  EXPECT_DOUBLE_EQ(done_at, 5.0);
}

TEST(Task, CompletedTaskAwaitIsImmediate) {
  Simulation sim;
  auto instant = []() -> Task<int> { co_return 7; };
  int value = 0;
  [](int& out, auto& make) -> Process {
    auto t = make();
    EXPECT_TRUE(t.done());
    out = co_await t;
  }(value, instant);
  sim.run();
  EXPECT_EQ(value, 7);
}

}  // namespace
}  // namespace ninf::simcore
