// Transports: in-process pipe semantics and real TCP loopback.
#include <gtest/gtest.h>

#include <future>
#include <thread>

#include "common/error.h"
#include "obs/metrics.h"
#include "transport/inproc_transport.h"
#include "transport/tcp_transport.h"

namespace ninf::transport {
namespace {

std::vector<std::uint8_t> bytes(std::initializer_list<int> v) {
  std::vector<std::uint8_t> out;
  for (int x : v) out.push_back(static_cast<std::uint8_t>(x));
  return out;
}

TEST(Inproc, BytesFlowBothDirections) {
  auto [a, b] = inprocPair();
  a->sendAll(bytes({1, 2, 3}));
  std::uint8_t buf[3];
  b->recvAll(buf);
  EXPECT_EQ(buf[0], 1);
  EXPECT_EQ(buf[2], 3);
  b->sendAll(bytes({9}));
  std::uint8_t one;
  a->recvAll({&one, 1});
  EXPECT_EQ(one, 9);
}

TEST(Inproc, RecvAssemblesMultipleSends) {
  auto [a, b] = inprocPair();
  a->sendAll(bytes({1, 2}));
  a->sendAll(bytes({3, 4}));
  std::uint8_t buf[4];
  b->recvAll(buf);
  EXPECT_EQ(buf[3], 4);
}

TEST(Inproc, CloseWakesBlockedReceiver) {
  auto [a, b] = inprocPair();
  auto fut = std::async(std::launch::async, [&] {
    std::uint8_t buf[1];
    EXPECT_THROW(b->recvAll(buf), TransportError);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  a->close();
  fut.get();
}

TEST(Inproc, DrainsBufferedBytesBeforeEof) {
  auto [a, b] = inprocPair();
  a->sendAll(bytes({7, 8}));
  a->shutdownSend();
  std::uint8_t buf[2];
  b->recvAll(buf);
  EXPECT_EQ(buf[0], 7);
  std::uint8_t extra;
  EXPECT_THROW(b->recvAll({&extra, 1}), TransportError);
}

TEST(Inproc, SendAfterCloseThrows) {
  auto [a, b] = inprocPair();
  a->close();
  EXPECT_THROW(a->sendAll(bytes({1})), TransportError);
}

TEST(Inproc, SendvDeliversBuffersInOrder) {
  auto [a, b] = inprocPair();
  const auto b1 = bytes({1, 2, 3});
  const auto b2 = bytes({});
  const auto b3 = bytes({4, 5});
  const std::span<const std::uint8_t> bufs[] = {b1, b2, b3};
  a->sendv(bufs);
  std::uint8_t out[5];
  b->recvAll(out);
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[2], 3);
  EXPECT_EQ(out[3], 4);
  EXPECT_EQ(out[4], 5);
}

TEST(Inproc, RecvSomeReturnsAvailablePrefix) {
  auto [a, b] = inprocPair();
  a->sendAll(bytes({1, 2, 3}));
  std::uint8_t buf[8] = {};
  const std::size_t got = b->recvSome(buf);
  ASSERT_GE(got, 1u);
  ASSERT_LE(got, 3u);
  EXPECT_EQ(buf[0], 1);
}

TEST(Inproc, RecvSomeThrowsOnceClosedAndDrained) {
  auto [a, b] = inprocPair();
  a->sendAll(bytes({9}));
  a->close();
  std::uint8_t buf[4];
  EXPECT_EQ(b->recvSome(buf), 1u);
  EXPECT_EQ(buf[0], 9);
  EXPECT_THROW(b->recvSome(buf), TransportError);
}

TEST(Tcp, LoopbackEcho) {
  TcpListener listener(0);
  ASSERT_GT(listener.port(), 0);
  auto server_side = std::async(std::launch::async, [&] {
    auto stream = listener.accept();
    ASSERT_NE(stream, nullptr);
    std::uint8_t buf[5];
    stream->recvAll(buf);
    stream->sendAll(buf);
  });
  auto client = tcpConnect("127.0.0.1", listener.port());
  client->sendAll(bytes({10, 20, 30, 40, 50}));
  std::uint8_t echo[5];
  client->recvAll(echo);
  EXPECT_EQ(echo[4], 50);
  server_side.get();
}

TEST(Tcp, LargeTransferIntegrity) {
  TcpListener listener(0);
  std::vector<std::uint8_t> big(1 << 20);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::uint8_t>(i * 2654435761u >> 24);
  }
  auto server_side = std::async(std::launch::async, [&] {
    auto stream = listener.accept();
    std::vector<std::uint8_t> got(big.size());
    stream->recvAll(got);
    EXPECT_EQ(got, big);
  });
  auto client = tcpConnect("127.0.0.1", listener.port());
  client->sendAll(big);
  server_side.get();
}

TEST(Tcp, SendvManyBuffersIntegrity) {
  // More buffers than one sendmsg iovec batch (64) to exercise batching
  // and the partial-advance bookkeeping.
  constexpr std::size_t kBufs = 100;
  std::vector<std::vector<std::uint8_t>> chunks(kBufs);
  std::vector<std::uint8_t> expected;
  for (std::size_t i = 0; i < kBufs; ++i) {
    chunks[i].resize(1 + (i * 37) % 5000);
    for (std::size_t j = 0; j < chunks[i].size(); ++j) {
      chunks[i][j] = static_cast<std::uint8_t>(i * 131 + j);
    }
    expected.insert(expected.end(), chunks[i].begin(), chunks[i].end());
  }
  std::vector<std::span<const std::uint8_t>> bufs(chunks.begin(),
                                                  chunks.end());
  bufs.insert(bufs.begin() + 5, std::span<const std::uint8_t>{});  // empty

  TcpListener listener(0);
  auto server_side = std::async(std::launch::async, [&] {
    auto stream = listener.accept();
    std::vector<std::uint8_t> got(expected.size());
    stream->recvAll(got);
    EXPECT_EQ(got, expected);
  });
  auto client = tcpConnect("127.0.0.1", listener.port());
  client->sendv(bufs);
  server_side.get();
}

TEST(Tcp, RecvSomeReturnsPartialData) {
  TcpListener listener(0);
  auto server_side = std::async(std::launch::async, [&] {
    auto stream = listener.accept();
    stream->sendAll(bytes({1, 2, 3}));
    std::uint8_t ack;
    stream->recvAll({&ack, 1});
  });
  auto client = tcpConnect("127.0.0.1", listener.port());
  std::uint8_t buf[16] = {};
  std::size_t got = 0;
  while (got < 3) got += client->recvSome(std::span(buf).subspan(got));
  EXPECT_EQ(got, 3u);
  EXPECT_EQ(buf[0], 1);
  EXPECT_EQ(buf[2], 3);
  client->sendAll(bytes({0}));
  server_side.get();
}

TEST(Tcp, TimedConnectSucceedsAgainstLiveListener) {
  TcpListener listener(0);
  auto server_side = std::async(std::launch::async, [&] {
    auto stream = listener.accept();
    std::uint8_t b;
    stream->recvAll({&b, 1});
    stream->sendAll({&b, 1});
  });
  // Exercises the non-blocking connect + poll path end to end; the
  // stream must come back in blocking mode for recvAll to work.
  auto client = tcpConnect("127.0.0.1", listener.port(), 5.0);
  client->sendAll(bytes({42}));
  std::uint8_t echo;
  client->recvAll({&echo, 1});
  EXPECT_EQ(echo, 42);
  server_side.get();
}

TEST(Tcp, ConnectErrorNamesEndpoint) {
  try {
    tcpConnect("127.0.0.1", 1);
    FAIL() << "expected TransportError";
  } catch (const TransportError& e) {
    EXPECT_NE(std::string(e.what()).find("127.0.0.1:1"), std::string::npos);
  }
}

TEST(Tcp, ConnectRefusedThrows) {
  // Port 1 on loopback is essentially never listening.
  EXPECT_THROW(tcpConnect("127.0.0.1", 1), TransportError);
}

TEST(Tcp, BadAddressThrows) {
  EXPECT_THROW(tcpConnect("not-an-ip", 80), TransportError);
}

TEST(Tcp, CloseUnblocksAccept) {
  TcpListener listener(0);
  auto fut = std::async(std::launch::async, [&] { return listener.accept(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  listener.close();
  EXPECT_EQ(fut.get(), nullptr);
}

TEST(Tcp, ByteCountersMatchTransferredBytesExactly) {
  obs::Counter& sent = obs::counter("transport.tcp.bytes_sent");
  obs::Counter& received = obs::counter("transport.tcp.bytes_received");
  const auto sent0 = sent.value();
  const auto received0 = received.value();
  TcpListener listener(0);
  auto server_side = std::async(std::launch::async, [&] {
    auto stream = listener.accept();
    std::uint8_t buf[5];
    stream->recvAll(buf);
    stream->sendAll(buf);
  });
  auto client = tcpConnect("127.0.0.1", listener.port());
  client->sendAll(bytes({1, 2, 3, 4, 5}));
  std::uint8_t echo[5];
  client->recvAll(echo);
  server_side.get();
  // Both endpoints live in this process: 5 bytes sent and received on
  // each side of the echo.
  EXPECT_EQ(sent.value() - sent0, 10u);
  EXPECT_EQ(received.value() - received0, 10u);
}

TEST(Tcp, RecvCounterOmitsBytesNeverReceived) {
  // The peer delivers 3 of the 8 bytes we ask for, then disconnects.
  // recvAll throws — and the counter must reflect the 3 bytes that
  // actually arrived, not the 8 we hoped for.
  obs::Counter& received = obs::counter("transport.tcp.bytes_received");
  TcpListener listener(0);
  auto server_side = std::async(std::launch::async, [&] {
    auto stream = listener.accept();
    stream->sendAll(bytes({7, 8, 9}));
    stream->close();
  });
  auto client = tcpConnect("127.0.0.1", listener.port());
  server_side.get();
  const auto received0 = received.value();
  std::uint8_t buf[8];
  EXPECT_THROW(client->recvAll(buf), TransportError);
  EXPECT_EQ(received.value() - received0, 3u);
}

TEST(Tcp, PeerDisconnectSurfacesOnRecv) {
  TcpListener listener(0);
  auto server_side = std::async(std::launch::async, [&] {
    auto stream = listener.accept();
    stream->close();
  });
  auto client = tcpConnect("127.0.0.1", listener.port());
  server_side.get();
  std::uint8_t buf[1];
  EXPECT_THROW(client->recvAll(buf), TransportError);
}

}  // namespace
}  // namespace ninf::transport
