// Transports: in-process pipe semantics and real TCP loopback.
#include <gtest/gtest.h>

#include <future>
#include <thread>

#include "common/error.h"
#include "transport/inproc_transport.h"
#include "transport/tcp_transport.h"

namespace ninf::transport {
namespace {

std::vector<std::uint8_t> bytes(std::initializer_list<int> v) {
  std::vector<std::uint8_t> out;
  for (int x : v) out.push_back(static_cast<std::uint8_t>(x));
  return out;
}

TEST(Inproc, BytesFlowBothDirections) {
  auto [a, b] = inprocPair();
  a->sendAll(bytes({1, 2, 3}));
  std::uint8_t buf[3];
  b->recvAll(buf);
  EXPECT_EQ(buf[0], 1);
  EXPECT_EQ(buf[2], 3);
  b->sendAll(bytes({9}));
  std::uint8_t one;
  a->recvAll({&one, 1});
  EXPECT_EQ(one, 9);
}

TEST(Inproc, RecvAssemblesMultipleSends) {
  auto [a, b] = inprocPair();
  a->sendAll(bytes({1, 2}));
  a->sendAll(bytes({3, 4}));
  std::uint8_t buf[4];
  b->recvAll(buf);
  EXPECT_EQ(buf[3], 4);
}

TEST(Inproc, CloseWakesBlockedReceiver) {
  auto [a, b] = inprocPair();
  auto fut = std::async(std::launch::async, [&] {
    std::uint8_t buf[1];
    EXPECT_THROW(b->recvAll(buf), TransportError);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  a->close();
  fut.get();
}

TEST(Inproc, DrainsBufferedBytesBeforeEof) {
  auto [a, b] = inprocPair();
  a->sendAll(bytes({7, 8}));
  a->shutdownSend();
  std::uint8_t buf[2];
  b->recvAll(buf);
  EXPECT_EQ(buf[0], 7);
  std::uint8_t extra;
  EXPECT_THROW(b->recvAll({&extra, 1}), TransportError);
}

TEST(Inproc, SendAfterCloseThrows) {
  auto [a, b] = inprocPair();
  a->close();
  EXPECT_THROW(a->sendAll(bytes({1})), TransportError);
}

TEST(Tcp, LoopbackEcho) {
  TcpListener listener(0);
  ASSERT_GT(listener.port(), 0);
  auto server_side = std::async(std::launch::async, [&] {
    auto stream = listener.accept();
    ASSERT_NE(stream, nullptr);
    std::uint8_t buf[5];
    stream->recvAll(buf);
    stream->sendAll(buf);
  });
  auto client = tcpConnect("127.0.0.1", listener.port());
  client->sendAll(bytes({10, 20, 30, 40, 50}));
  std::uint8_t echo[5];
  client->recvAll(echo);
  EXPECT_EQ(echo[4], 50);
  server_side.get();
}

TEST(Tcp, LargeTransferIntegrity) {
  TcpListener listener(0);
  std::vector<std::uint8_t> big(1 << 20);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::uint8_t>(i * 2654435761u >> 24);
  }
  auto server_side = std::async(std::launch::async, [&] {
    auto stream = listener.accept();
    std::vector<std::uint8_t> got(big.size());
    stream->recvAll(got);
    EXPECT_EQ(got, big);
  });
  auto client = tcpConnect("127.0.0.1", listener.port());
  client->sendAll(big);
  server_side.get();
}

TEST(Tcp, ConnectRefusedThrows) {
  // Port 1 on loopback is essentially never listening.
  EXPECT_THROW(tcpConnect("127.0.0.1", 1), TransportError);
}

TEST(Tcp, BadAddressThrows) {
  EXPECT_THROW(tcpConnect("not-an-ip", 80), TransportError);
}

TEST(Tcp, CloseUnblocksAccept) {
  TcpListener listener(0);
  auto fut = std::async(std::launch::async, [&] { return listener.accept(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  listener.close();
  EXPECT_EQ(fut.get(), nullptr);
}

TEST(Tcp, PeerDisconnectSurfacesOnRecv) {
  TcpListener listener(0);
  auto server_side = std::async(std::launch::async, [&] {
    auto stream = listener.accept();
    stream->close();
  });
  auto client = tcpConnect("127.0.0.1", listener.port());
  server_side.get();
  std::uint8_t buf[1];
  EXPECT_THROW(client->recvAll(buf), TransportError);
}

}  // namespace
}  // namespace ninf::transport
