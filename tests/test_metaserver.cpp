// Metaserver scheduling: policy selection, monitoring, and transaction
// fan-out across real in-process servers.
#include <gtest/gtest.h>

#include <memory>
#include <thread>

#include "client/ninf_api.h"
#include "client/transaction.h"
#include "common/error.h"
#include "metaserver/metaserver.h"
#include "numlib/ep.h"
#include "obs/metrics.h"
#include "server/server.h"
#include "transport/inproc_transport.h"
#include "transport/tcp_transport.h"

namespace ninf::metaserver {
namespace {

using client::NinfClient;
using protocol::ArgValue;

TEST(EstimateCompletion, CommPlusComp) {
  // 1 MB at 1 MB/s + 1 Mflop at 1 Mflop/s, empty queue = 2 seconds.
  EXPECT_DOUBLE_EQ(estimateCompletion(1e6, 1e6, 1e6, 1e6, 0), 2.0);
}

TEST(EstimateCompletion, QueueDelaysCompute) {
  const double idle = estimateCompletion(0, 1e6, 1e6, 1e6, 0);
  const double busy = estimateCompletion(0, 1e6, 1e6, 1e6, 3);
  EXPECT_DOUBLE_EQ(busy, 4.0 * idle);
}

TEST(EstimateCompletion, BandwidthDominatesWanShapedJobs) {
  // The paper's WAN conclusion: with slow links, pick by bandwidth.
  const double fast_net = estimateCompletion(1e7, 1e6, 1e6, 1e6, 0);
  const double slow_net = estimateCompletion(1e7, 1e6, 0.17e6, 1e9, 0);
  EXPECT_GT(slow_net, fast_net);
}

/// Spins up `count` real servers on loopback TCP and registers them.
class MetaserverFixture : public ::testing::Test {
 protected:
  void startServers(std::size_t count, SchedulingPolicy policy) {
    meta_ = std::make_unique<Metaserver>(policy);
    for (std::size_t i = 0; i < count; ++i) {
      auto registry = std::make_unique<server::Registry>();
      server::registerStandardExecutables(*registry);
      auto srv = std::make_unique<server::NinfServer>(
          *registry, server::ServerOptions{.workers = 2});
      auto listener = std::make_shared<transport::TcpListener>(0);
      const auto port = listener->port();
      srv->start(listener);
      meta_->addServer(
          {.name = "server-" + std::to_string(i),
           .factory =
               [port] { return NinfClient::connectTcp("127.0.0.1", port); },
           .bandwidth_bps = 1e6 * static_cast<double>(i + 1),
           .perf_flops = 1e8});
      registries_.push_back(std::move(registry));
      servers_.push_back(std::move(srv));
    }
  }

  void TearDown() override {
    for (auto& s : servers_) s->stop();
  }

  std::vector<std::unique_ptr<server::Registry>> registries_;
  std::vector<std::unique_ptr<server::NinfServer>> servers_;
  std::unique_ptr<Metaserver> meta_;
};

TEST_F(MetaserverFixture, RoundRobinRotates) {
  startServers(3, SchedulingPolicy::RoundRobin);
  std::vector<double> sums(2), q(10);
  std::vector<ArgValue> args = {ArgValue::inInt(0), ArgValue::inInt(16),
                                ArgValue::outArray(sums),
                                ArgValue::outArray(q)};
  EXPECT_EQ(meta_->chooseServer("ep", args), "server-0");
  EXPECT_EQ(meta_->chooseServer("ep", args), "server-1");
  EXPECT_EQ(meta_->chooseServer("ep", args), "server-2");
  EXPECT_EQ(meta_->chooseServer("ep", args), "server-0");
}

TEST_F(MetaserverFixture, DispatchExecutesSomewhere) {
  startServers(2, SchedulingPolicy::LeastLoad);
  std::vector<double> sums(2), q(10);
  std::vector<ArgValue> args = {ArgValue::inInt(0), ArgValue::inInt(512),
                                ArgValue::outArray(sums),
                                ArgValue::outArray(q)};
  meta_->dispatch("ep", args);
  EXPECT_DOUBLE_EQ(sums[0], numlib::runEp(0, 512).sx);
}

TEST_F(MetaserverFixture, PollReturnsStatus) {
  startServers(1, SchedulingPolicy::LeastLoad);
  const auto status = meta_->poll("server-0");
  EXPECT_EQ(status.running, 0u);
  EXPECT_THROW(meta_->poll("nope"), NotFoundError);
}

TEST_F(MetaserverFixture, DispatchReusesPooledConnections) {
  startServers(1, SchedulingPolicy::RoundRobin);
  std::vector<double> sums(2), q(10);
  std::vector<ArgValue> args = {ArgValue::inInt(0), ArgValue::inInt(64),
                                ArgValue::outArray(sums),
                                ArgValue::outArray(q)};
  const double hits_before = obs::counter("pool.hits").value();
  meta_->dispatch("ep", args);
  EXPECT_EQ(meta_->pool().idleCount(), 1u);  // connection kept warm
  meta_->dispatch("ep", args);
  EXPECT_GE(obs::counter("pool.hits").value() - hits_before, 1.0);
}

TEST_F(MetaserverFixture, StalledServerPollIsBoundedAndSkipped) {
  // One healthy TCP server plus one whose monitor connection is open but
  // never answers.  With the poll timeout set, the scheduling poll must
  // give up on the mute server within the budget, treat it as
  // unreachable, and route the call to the healthy server.
  startServers(1, SchedulingPolicy::LeastLoad);
  std::vector<std::unique_ptr<transport::Stream>> peers;  // open, mute
  meta_->addServer(
      {.name = "mute",
       .factory =
           [&peers] {
             auto [near_end, far_end] = transport::inprocPair();
             peers.push_back(std::move(far_end));
             return std::make_unique<NinfClient>(std::move(near_end),
                                                 /*force_v1=*/true);
           },
       .bandwidth_bps = 1e9,
       .perf_flops = 1e12});
  meta_->setPollTimeout(0.1);
  meta_->setStatusFreshness(0.0);  // force a live poll for this dispatch
  std::vector<double> sums(2), q(10);
  std::vector<ArgValue> args = {ArgValue::inInt(0), ArgValue::inInt(64),
                                ArgValue::outArray(sums),
                                ArgValue::outArray(q)};
  const auto start = std::chrono::steady_clock::now();
  meta_->dispatch("ep", args);
  EXPECT_LT(std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count(),
            2.0);  // the mute server cost at most the poll budget
  EXPECT_DOUBLE_EQ(sums[0], numlib::runEp(0, 64).sx);
}

TEST_F(MetaserverFixture, BandwidthAwarePrefersFasterLink) {
  // Equal compute and load; server-1 declares 2 MB/s vs server-0's 1 MB/s,
  // so a communication-heavy dmmul should go to server-1 (the paper's
  // section 4.2.2 recommendation).
  startServers(2, SchedulingPolicy::BandwidthAware);
  const std::int64_t n = 64;
  std::vector<double> a(n * n), b(n * n), c(n * n);
  std::vector<ArgValue> args = {ArgValue::inInt(n), ArgValue::inArray(a),
                                ArgValue::inArray(b), ArgValue::outArray(c)};
  EXPECT_EQ(meta_->chooseServer("dmmul", args), "server-1");
}

TEST_F(MetaserverFixture, TransactionFansOutAcrossServers) {
  // The paper's metaserver EP pattern (section 4.3): p independent calls
  // inside a transaction, scheduled task-parallel.
  startServers(3, SchedulingPolicy::RoundRobin);
  constexpr std::int64_t kChunk = 512;
  constexpr int kCalls = 6;
  std::vector<std::vector<double>> sums(kCalls, std::vector<double>(2));
  std::vector<std::vector<double>> qs(kCalls, std::vector<double>(10));
  client::Transaction tx;
  for (int i = 0; i < kCalls; ++i) {
    tx.add("ep", {ArgValue::inInt(i * kChunk), ArgValue::inInt(kChunk),
                  ArgValue::outArray(sums[i]), ArgValue::outArray(qs[i])});
  }
  const auto results = meta_->runTransaction(tx);
  EXPECT_EQ(results.size(), static_cast<std::size_t>(kCalls));
  // Merged partials must equal the monolithic kernel run.
  double sx = 0;
  for (const auto& s : sums) sx += s[0];
  const auto whole = numlib::runEp(0, kCalls * kChunk);
  EXPECT_NEAR(sx, whole.sx, 1e-8);
}

TEST_F(MetaserverFixture, FailoverSkipsDeadServer) {
  // Fault tolerance (section 2.4): kill one server; dispatch must retry
  // on the survivor instead of surfacing a transport error.
  startServers(2, SchedulingPolicy::RoundRobin);
  servers_[0]->stop();  // round-robin would pick server-0 first
  std::vector<double> sums(2), q(10);
  std::vector<ArgValue> args = {ArgValue::inInt(0), ArgValue::inInt(256),
                                ArgValue::outArray(sums),
                                ArgValue::outArray(q)};
  EXPECT_NO_THROW(meta_->dispatch("ep", args));
  EXPECT_DOUBLE_EQ(sums[0], numlib::runEp(0, 256).sx);
}

TEST_F(MetaserverFixture, AllServersDeadEventuallyThrows) {
  startServers(2, SchedulingPolicy::RoundRobin);
  meta_->setMaxFailovers(3);
  servers_[0]->stop();
  servers_[1]->stop();
  std::vector<double> sums(2), q(10);
  std::vector<ArgValue> args = {ArgValue::inInt(0), ArgValue::inInt(16),
                                ArgValue::outArray(sums),
                                ArgValue::outArray(q)};
  EXPECT_THROW(meta_->dispatch("ep", args), Error);
}

TEST_F(MetaserverFixture, LeastLoadSkipsUnreachableServer) {
  startServers(2, SchedulingPolicy::LeastLoad);
  servers_[1]->stop();
  std::vector<double> sums(2), q(10);
  std::vector<ArgValue> args = {ArgValue::inInt(0), ArgValue::inInt(128),
                                ArgValue::outArray(sums),
                                ArgValue::outArray(q)};
  // Status polling of the dead server must not break selection.
  EXPECT_NO_THROW(meta_->dispatch("ep", args));
  EXPECT_DOUBLE_EQ(sums[0], numlib::runEp(0, 128).sx);
}

TEST_F(MetaserverFixture, BackgroundMonitoringUpdatesStatus) {
  startServers(2, SchedulingPolicy::RoundRobin);
  // Serve a couple of calls so completions are visible.
  std::vector<double> sums(2), q(10);
  std::vector<ArgValue> args = {ArgValue::inInt(0), ArgValue::inInt(64),
                                ArgValue::outArray(sums),
                                ArgValue::outArray(q)};
  meta_->dispatch("ep", args);
  meta_->dispatch("ep", args);
  meta_->startMonitoring(std::chrono::milliseconds(10));
  // Wait for at least one polling round.
  for (int i = 0; i < 100; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    if (meta_->lastStatus("server-0").completed +
            meta_->lastStatus("server-1").completed >=
        2) {
      break;
    }
  }
  meta_->stopMonitoring();
  EXPECT_EQ(meta_->lastStatus("server-0").completed +
                meta_->lastStatus("server-1").completed,
            2u);
}

TEST_F(MetaserverFixture, MonitoringSurvivesDeadServer) {
  startServers(2, SchedulingPolicy::RoundRobin);
  servers_[1]->stop();
  meta_->startMonitoring(std::chrono::milliseconds(10));
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  meta_->stopMonitoring();  // must not hang or crash
  EXPECT_THROW(meta_->lastStatus("missing"), NotFoundError);
  SUCCEED();
}

TEST(Metaserver, StopWithoutStartIsFine) {
  Metaserver meta;
  meta.stopMonitoring();
  SUCCEED();
}

TEST(Metaserver, NoServersThrows) {
  Metaserver meta(SchedulingPolicy::RoundRobin);
  std::vector<ArgValue> args;
  EXPECT_THROW(meta.dispatch("ep", args), std::logic_error);
}

TEST(Metaserver, DuplicateServerNameRejected) {
  Metaserver meta;
  auto factory = [] {
    return std::unique_ptr<NinfClient>{};
  };
  meta.addServer({.name = "s", .factory = factory});
  EXPECT_THROW(meta.addServer({.name = "s", .factory = factory}),
               std::logic_error);
}

TEST(Metaserver, PolicyNames) {
  EXPECT_STREQ(schedulingPolicyName(SchedulingPolicy::RoundRobin),
               "round-robin");
  EXPECT_STREQ(schedulingPolicyName(SchedulingPolicy::LeastLoad),
               "least-load");
  EXPECT_STREQ(schedulingPolicyName(SchedulingPolicy::BandwidthAware),
               "bandwidth-aware");
}

}  // namespace
}  // namespace ninf::metaserver
