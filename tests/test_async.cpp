// Ninf_call_async: futures over concurrent connections.
#include <gtest/gtest.h>

#include "client/async.h"
#include "client/dispatcher.h"
#include "common/error.h"
#include "numlib/ep.h"
#include "server/server.h"
#include "transport/tcp_transport.h"

namespace ninf::client {
namespace {

using protocol::ArgValue;

class AsyncFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    server::registerStandardExecutables(registry_);
    server_.emplace(registry_, server::ServerOptions{.workers = 4});
    auto listener = std::make_shared<transport::TcpListener>(0);
    port_ = listener->port();
    server().start(listener);
    dispatcher_.emplace(
        [this] { return NinfClient::connectTcp("127.0.0.1", port_); });
  }

  void TearDown() override { server().stop(); }

  server::Registry registry_;
  // Engaged in SetUp() for the whole test lifetime; the accessor
  // keeps the one unchecked dereference in a single audited place.
  // NOLINTNEXTLINE(bugprone-unchecked-optional-access)
  server::NinfServer& server() { return *server_; }
  std::optional<server::NinfServer> server_;
  std::uint16_t port_ = 0;
  // Engaged in SetUp() for the whole test lifetime; the accessor
  // keeps the one unchecked dereference in a single audited place.
  // NOLINTNEXTLINE(bugprone-unchecked-optional-access)
  DirectDispatcher& dispatcher() { return *dispatcher_; }
  std::optional<DirectDispatcher> dispatcher_;
};

TEST_F(AsyncFixture, SingleAsyncCallDeliversResult) {
  AsyncCaller async(dispatcher());
  std::vector<double> sums(2), q(10);
  auto fut = async.callAsync(
      "ep", {ArgValue::inInt(0), ArgValue::inInt(512),
             ArgValue::outArray(sums), ArgValue::outArray(q)});
  const CallResult r = fut.get();
  EXPECT_GT(r.elapsed, 0.0);
  EXPECT_DOUBLE_EQ(sums[0], numlib::runEp(0, 512).sx);
}

TEST_F(AsyncFixture, ManyInFlightCallsAllComplete) {
  AsyncCaller async(dispatcher());
  constexpr int kCalls = 12;
  std::vector<std::vector<double>> sums(kCalls, std::vector<double>(2));
  std::vector<std::vector<double>> qs(kCalls, std::vector<double>(10));
  std::vector<std::future<CallResult>> futures;
  for (int i = 0; i < kCalls; ++i) {
    futures.push_back(async.callAsync(
        "ep", {ArgValue::inInt(i * 256), ArgValue::inInt(256),
               ArgValue::outArray(sums[i]), ArgValue::outArray(qs[i])}));
  }
  for (auto& f : futures) f.get();
  double total = 0;
  for (const auto& s : sums) total += s[0];
  EXPECT_NEAR(total, numlib::runEp(0, kCalls * 256).sx, 1e-8);
}

TEST_F(AsyncFixture, WaitAllBlocksUntilDone) {
  AsyncCaller async(dispatcher());
  std::vector<double> sums(2), q(10);
  auto fut = async.callAsync(
      "ep", {ArgValue::inInt(0), ArgValue::inInt(4096),
             ArgValue::outArray(sums), ArgValue::outArray(q)});
  async.waitAll();
  // After waitAll the future must be immediately ready.
  EXPECT_EQ(fut.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
}

TEST_F(AsyncFixture, ErrorsSurfaceThroughFuture) {
  AsyncCaller async(dispatcher());
  std::vector<double> a(4, 0.0), b(2, 1.0), x(2);  // singular system
  auto fut = async.callAsync(
      "linpack", {ArgValue::inInt(2), ArgValue::inInt(0),
                  ArgValue::inArray(a), ArgValue::inArray(b),
                  ArgValue::outArray(x)});
  EXPECT_THROW(fut.get(), RemoteError);
}

TEST_F(AsyncFixture, DestructorJoinsOutstandingCalls) {
  std::vector<double> sums(2), q(10);
  {
    AsyncCaller async(dispatcher());
    async.callAsync("ep", {ArgValue::inInt(0), ArgValue::inInt(2048),
                           ArgValue::outArray(sums), ArgValue::outArray(q)});
    // Let ~AsyncCaller wait; sums must be fully written afterwards.
  }
  EXPECT_DOUBLE_EQ(sums[0], numlib::runEp(0, 2048).sx);
}

}  // namespace
}  // namespace ninf::client
