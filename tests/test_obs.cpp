// Observability subsystem tests: span nesting and timestamp ordering,
// histogram percentile math, Chrome trace JSON round-trip, threaded
// no-loss draining, ServerMetrics reader consistency, the traced
// end-to-end call (in-proc and TCP), and the simulator span schema.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <set>
#include <thread>
#include <vector>

#include "client/client.h"
#include "client/ninf_api.h"
#include "common/log.h"
#include "numlib/matrix.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/metrics.h"
#include "server/registry.h"
#include "server/server.h"
#include "simworld/trace_export.h"
#include "transport/tcp_transport.h"

namespace ninf {
namespace {

/// Enable the tracer for one test, restoring a clean disabled state.
class TracerGuard {
 public:
  TracerGuard() {
    obs::Tracer::instance().clear();
    obs::Tracer::instance().setEnabled(true);
  }
  ~TracerGuard() {
    obs::Tracer::instance().setEnabled(false);
    obs::Tracer::instance().clear();
  }
};

const obs::SpanRecord* findSpan(const std::vector<obs::SpanRecord>& spans,
                                const std::string& name) {
  for (const auto& s : spans) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

// ------------------------------------------------------------- tracer

TEST(Trace, DisabledSpansAreInert) {
  obs::Tracer::instance().clear();
  obs::Tracer::instance().setEnabled(false);
  {
    obs::Span s("call");
    EXPECT_FALSE(s.active());
  }
  EXPECT_TRUE(obs::Tracer::instance().drain().empty());
}

TEST(Trace, NestingLinksParentAndOrdersTimestamps) {
  TracerGuard guard;
  {
    obs::Span root("call");
    ASSERT_TRUE(root.active());
    {
      obs::Span child("marshal-args");
      EXPECT_EQ(child.traceId(), root.traceId());
      { obs::Span grandchild("send"); }
    }
    obs::Span sibling("recv");
    EXPECT_EQ(sibling.traceId(), root.traceId());
  }
  const auto spans = obs::Tracer::instance().drain();
  ASSERT_EQ(spans.size(), 4u);

  const auto* root = findSpan(spans, "call");
  const auto* child = findSpan(spans, "marshal-args");
  const auto* grandchild = findSpan(spans, "send");
  const auto* sibling = findSpan(spans, "recv");
  ASSERT_TRUE(root && child && grandchild && sibling);

  EXPECT_EQ(root->parent_id, 0u);
  EXPECT_EQ(child->parent_id, root->span_id);
  EXPECT_EQ(grandchild->parent_id, child->span_id);
  EXPECT_EQ(sibling->parent_id, root->span_id);
  for (const auto* s : {child, grandchild, sibling}) {
    EXPECT_EQ(s->trace_id, root->trace_id);
  }

  // drain() sorts by start; children start after parents and end before.
  for (std::size_t i = 1; i < spans.size(); ++i) {
    EXPECT_LE(spans[i - 1].start_us, spans[i].start_us);
  }
  EXPECT_GE(child->start_us, root->start_us);
  EXPECT_LE(child->start_us + child->dur_us,
            root->start_us + root->dur_us + 1.0);
}

TEST(Trace, SeparateRootsGetSeparateTraces) {
  TracerGuard guard;
  { obs::Span a("call"); }
  { obs::Span b("call"); }
  const auto spans = obs::Tracer::instance().drain();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_NE(spans[0].trace_id, spans[1].trace_id);
}

TEST(Trace, ThreadedRecordingLosesNothing) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  TracerGuard guard;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kPerThread; ++i) {
        obs::Span s("compute");
      }
    });
  }
  for (auto& th : threads) th.join();
  // Every thread has exited; their buffers must still drain fully.
  const auto spans = obs::Tracer::instance().drain();
  EXPECT_EQ(spans.size(),
            static_cast<std::size_t>(kThreads) * kPerThread);
  std::set<std::uint64_t> ids;
  for (const auto& s : spans) ids.insert(s.span_id);
  EXPECT_EQ(ids.size(), spans.size()) << "span ids must be unique";
  EXPECT_TRUE(obs::Tracer::instance().drain().empty());
}

// ---------------------------------------------------------- histogram

TEST(Metrics, HistogramPercentilesInterpolate) {
  obs::Histogram h;
  // 1..100 ms uniformly.
  for (int i = 1; i <= 100; ++i) h.observe(i * 1e-3);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_NEAR(h.sum(), 5.050, 1e-9);
  EXPECT_NEAR(h.mean(), 0.0505, 1e-9);
  // Log-spaced buckets resolve to ~±17% of the value.
  EXPECT_NEAR(h.percentile(50), 0.050, 0.050 * 0.20);
  EXPECT_NEAR(h.percentile(95), 0.095, 0.095 * 0.20);
  EXPECT_NEAR(h.percentile(99), 0.099, 0.099 * 0.20);
  EXPECT_EQ(h.percentile(0), h.percentile(0));  // no NaN
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(50), 0.0);
}

TEST(Metrics, HistogramBucketBoundsGrowMonotonically) {
  double prev = 0.0;
  for (std::size_t i = 0; i + 1 < obs::Histogram::kBuckets; ++i) {
    const double upper = obs::Histogram::bucketUpper(i);
    EXPECT_GT(upper, prev);
    prev = upper;
  }
  // Full scale covers multi-minute WAN calls.
  EXPECT_GT(obs::Histogram::bucketUpper(obs::Histogram::kBuckets - 2), 60.0);
}

TEST(Metrics, RegistryFindOrCreateIsStable) {
  auto& reg = obs::MetricsRegistry::instance();
  obs::Counter& a = reg.counter("test.obs.stable");
  a.add(3);
  obs::Counter& b = reg.counter("test.obs.stable");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 3u);
  a.reset();
}

TEST(Metrics, RegistryJsonParsesBack) {
  auto& reg = obs::MetricsRegistry::instance();
  reg.counter("test.obs.json_counter").add(7);
  reg.histogram("test.obs.json_hist").observe(0.25);
  const auto doc = obs::json::parse(reg.toJson());
  ASSERT_EQ(doc.type, obs::json::Value::Type::Object);
  const auto* counters = doc.find("counters");
  ASSERT_NE(counters, nullptr);
  const auto* c = counters->find("test.obs.json_counter");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->numberOr(-1), 7.0);
  const auto* hists = doc.find("histograms");
  ASSERT_NE(hists, nullptr);
  const auto* h = hists->find("test.obs.json_hist");
  ASSERT_NE(h, nullptr);
  ASSERT_NE(h->find("count"), nullptr);
  EXPECT_GE(h->find("count")->numberOr(0), 1.0);
}

// ----------------------------------------------------------- exporter

TEST(Export, ChromeTraceRoundTrips) {
  std::vector<obs::SpanRecord> spans;
  obs::SpanRecord a;
  a.trace_id = 11;
  a.span_id = 21;
  a.name = "call";
  a.start_us = 1000.0;
  a.dur_us = 500.0;
  a.lane = obs::kLaneReal;
  a.tid = 3;
  a.bytes = 4096;
  a.detail = "dmmul \"quoted\" \\ path";
  spans.push_back(a);
  obs::SpanRecord b;
  b.trace_id = 11;
  b.span_id = 22;
  b.parent_id = 21;
  b.name = "compute";
  b.start_us = 1100.0;
  b.dur_us = 300.0;
  b.lane = obs::kLaneSim;
  b.tid = 4;
  spans.push_back(b);

  const std::string doc = obs::chromeTraceJson(spans);
  const auto parsed = obs::parseChromeTrace(doc);
  ASSERT_EQ(parsed.size(), 2u);
  const auto* call = findSpan(parsed, "call");
  ASSERT_NE(call, nullptr);
  EXPECT_EQ(call->trace_id, 11u);
  EXPECT_EQ(call->span_id, 21u);
  EXPECT_EQ(call->parent_id, 0u);
  EXPECT_DOUBLE_EQ(call->start_us, 1000.0);
  EXPECT_DOUBLE_EQ(call->dur_us, 500.0);
  EXPECT_EQ(call->lane, obs::kLaneReal);
  EXPECT_EQ(call->tid, 3u);
  EXPECT_EQ(call->bytes, 4096);
  EXPECT_EQ(call->detail, "dmmul \"quoted\" \\ path");
  const auto* compute = findSpan(parsed, "compute");
  ASSERT_NE(compute, nullptr);
  EXPECT_EQ(compute->parent_id, 21u);
  EXPECT_EQ(compute->lane, obs::kLaneSim);
}

TEST(Export, PhaseSummaryAggregatesAndFilters) {
  std::vector<obs::SpanRecord> spans;
  for (int i = 0; i < 4; ++i) {
    obs::SpanRecord s;
    s.name = "send";
    s.dur_us = 1000.0 * (i + 1);  // 1..4 ms
    s.lane = obs::kLaneReal;
    s.bytes = 100;
    spans.push_back(s);
  }
  obs::SpanRecord sim;
  sim.name = "send";
  sim.dur_us = 99000.0;
  sim.lane = obs::kLaneSim;
  spans.push_back(sim);

  const auto real_only = obs::phaseSummary(spans, obs::kLaneReal);
  ASSERT_EQ(real_only.size(), 1u);
  EXPECT_EQ(real_only[0].name, "send");
  EXPECT_EQ(real_only[0].count, 4u);
  EXPECT_DOUBLE_EQ(real_only[0].total_ms, 10.0);
  EXPECT_DOUBLE_EQ(real_only[0].mean_ms, 2.5);
  EXPECT_DOUBLE_EQ(real_only[0].min_ms, 1.0);
  EXPECT_DOUBLE_EQ(real_only[0].max_ms, 4.0);
  EXPECT_EQ(real_only[0].bytes, 400);

  const auto all = obs::phaseSummary(spans, 0);
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].count, 5u);
}

TEST(Export, JsonParserHandlesEscapesAndNesting) {
  const auto v = obs::json::parse(
      R"({"a": [1, 2.5, true, null], "s": "x\"y\\zA", "o": {"k": -3}})");
  ASSERT_EQ(v.type, obs::json::Value::Type::Object);
  const auto* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->array.size(), 4u);
  EXPECT_DOUBLE_EQ(a->array[1].number, 2.5);
  EXPECT_TRUE(a->array[2].boolean);
  const auto* s = v.find("s");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->string, "x\"y\\zA");
  const auto* o = v.find("o");
  ASSERT_NE(o, nullptr);
  EXPECT_DOUBLE_EQ(o->find("k")->number, -3.0);
  EXPECT_THROW(obs::json::parse("{\"unterminated\": "), Error);
}

// -------------------------------------------------------- end to end

TEST(TracedCall, TcpCallProducesFullPhaseDecomposition) {
  server::Registry registry;
  server::registerStandardExecutables(registry);
  server::NinfServer srv(registry, {.workers = 1});
  auto listener = std::make_shared<transport::TcpListener>(0);
  const std::uint16_t port = listener->port();
  srv.start(listener);

  TracerGuard guard;
  {
    auto cl = client::NinfClient::connectTcp("127.0.0.1", port);
    const std::int64_t n = 16;
    const numlib::Matrix a = numlib::randomMatrix(n, 1);
    const numlib::Matrix b = numlib::randomMatrix(n, 2);
    std::vector<double> c(n * n);
    client::ninfCall(*cl, "dmmul", n, a.flat(), b.flat(),
                     std::span<double>(c));
    cl->close();
  }
  srv.stop();

  const auto spans = obs::Tracer::instance().drain();
  // Client 7-phase decomposition, server ground truth, transport detail.
  for (const char* name :
       {obs::phase::kCall, obs::phase::kConnect, obs::phase::kMarshalArgs,
        obs::phase::kSend, obs::phase::kQueueWait, obs::phase::kCompute,
        obs::phase::kRecv, obs::phase::kUnmarshalResult,
        obs::phase::kServerQueueWait, obs::phase::kServerCompute,
        obs::phase::kServerUnmarshalArgs, obs::phase::kServerMarshalResult,
        "tcp.send", "tcp.recv"}) {
    EXPECT_NE(findSpan(spans, name), nullptr) << "missing phase " << name;
  }

  // Client-derived phases nest under the root call and tile the window
  // between request-sent and reply-received.
  const auto* root = findSpan(spans, obs::phase::kCall);
  ASSERT_NE(root, nullptr);
  for (const char* name : {obs::phase::kQueueWait, obs::phase::kCompute,
                           obs::phase::kRecv}) {
    const auto* s = findSpan(spans, name);
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->parent_id, root->span_id) << name;
    EXPECT_EQ(s->trace_id, root->trace_id) << name;
    EXPECT_GE(s->start_us, root->start_us - 1.0) << name;
    EXPECT_LE(s->start_us + s->dur_us,
              root->start_us + root->dur_us + 1.0)
        << name;
  }

  // The whole trace serializes and parses back without loss.
  const auto parsed = obs::parseChromeTrace(obs::chromeTraceJson(spans));
  EXPECT_EQ(parsed.size(), spans.size());
}

TEST(TracedCall, SimulatorExportsSameSchema) {
  simworld::CallRecord rec;
  rec.submit = 1.0;
  rec.enqueue = 1.5;
  rec.dequeue = 2.0;
  rec.complete = 5.0;
  rec.end = 5.5;
  rec.bytes_total = 1234.0;
  const auto spans = simworld::callSpans(rec, /*tid=*/7);
  ASSERT_EQ(spans.size(), 5u);

  const auto* root = findSpan(spans, obs::phase::kCall);
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->lane, obs::kLaneSim);
  EXPECT_EQ(root->tid, 7u);
  EXPECT_DOUBLE_EQ(root->start_us, 1.0e6);
  EXPECT_DOUBLE_EQ(root->dur_us, 4.5e6);
  EXPECT_EQ(root->bytes, 1234);

  const struct {
    const char* name;
    double begin, end;
  } expect[] = {
      {obs::phase::kSend, 1.0, 1.5},
      {obs::phase::kQueueWait, 1.5, 2.0},
      {obs::phase::kCompute, 2.0, 5.0},
      {obs::phase::kRecv, 5.0, 5.5},
  };
  for (const auto& e : expect) {
    const auto* s = findSpan(spans, e.name);
    ASSERT_NE(s, nullptr) << e.name;
    EXPECT_EQ(s->parent_id, root->span_id) << e.name;
    EXPECT_EQ(s->trace_id, root->trace_id) << e.name;
    EXPECT_EQ(s->lane, obs::kLaneSim) << e.name;
    EXPECT_DOUBLE_EQ(s->start_us, e.begin * 1e6) << e.name;
    EXPECT_DOUBLE_EQ(s->dur_us, (e.end - e.begin) * 1e6) << e.name;
  }

  // The same phase names land in the real client's summary vocabulary,
  // so a one-file real-vs-sim comparison lines up row for row.
  const auto stats = obs::phaseSummary(spans, obs::kLaneSim);
  ASSERT_EQ(stats.size(), 5u);
  EXPECT_EQ(stats[0].name, obs::phase::kCall);
}

// ------------------------------------------------------ ServerMetrics

TEST(ServerMetricsObs, ReadersDoNotPerturbState) {
  server::ServerMetrics m;
  m.jobQueued();
  m.jobQueued();
  m.jobStarted();
  // A storm of concurrent readers must not change what writers see.
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int i = 0; i < 4; ++i) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        const auto snap = m.snapshot();
        // Counts are exact; load/busy are time-dependent but bounded.
        EXPECT_EQ(snap.running, 1u);
        EXPECT_EQ(snap.queued, 1u);
        EXPECT_EQ(snap.completed, 0u);
        EXPECT_GE(snap.load_average, 0.0);
        EXPECT_LE(snap.load_average, 2.0 + 1e-9);
        EXPECT_GE(snap.busy_fraction, 0.0);
        EXPECT_LE(snap.busy_fraction, 1.0);
        (void)m.loadAverage();
        (void)m.busyFraction();
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  stop.store(true);
  for (auto& t : readers) t.join();

  m.jobStarted();
  m.jobFinished();
  m.jobFinished();
  const auto snap = m.snapshot();
  EXPECT_EQ(snap.running, 0u);
  EXPECT_EQ(snap.queued, 0u);
  EXPECT_EQ(snap.completed, 2u);
  EXPECT_GT(snap.uptime, 0.0);
}

TEST(ServerMetricsObs, SnapshotTripleIsConsistentUnderTransitions) {
  server::ServerMetrics m;
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load()) {
      m.jobQueued();
      m.jobStarted();
      m.jobFinished();
    }
  });
  for (int i = 0; i < 2000; ++i) {
    const auto snap = m.snapshot();
    // Transitions keep running+queued in {0, 1}: a triple like
    // running=1, queued=1 would mean a torn read.
    EXPECT_LE(snap.running + snap.queued, 1u);
  }
  stop.store(true);
  writer.join();
}

// ------------------------------------------------------------ logging

TEST(Logging, MacroIsDanglingElseSafe) {
  const LogLevel saved = logLevel();
  setLogLevel(LogLevel::Off);
  bool else_taken = false;
  if (true)
    NINF_LOG(Error) << "discarded";
  else
    else_taken = true;
  EXPECT_FALSE(else_taken);
  setLogLevel(saved);
}

TEST(Logging, ArgumentsAreLazilyEvaluated) {
  const LogLevel saved = logLevel();
  setLogLevel(LogLevel::Off);
  int evaluations = 0;
  auto expensive = [&] {
    ++evaluations;
    return "payload";
  };
  NINF_LOG(Error) << expensive();
  EXPECT_EQ(evaluations, 0);
  setLogLevel(LogLevel::Error);
  NINF_LOG(Error) << expensive();
  EXPECT_EQ(evaluations, 1);
  setLogLevel(saved);
}

TEST(Logging, EveryNEmitsFirstThenEveryNth) {
  const LogLevel saved = logLevel();
  setLogLevel(LogLevel::Error);
  int emissions = 0;
  for (int i = 0; i < 10; ++i) {
    NINF_LOG_EVERY_N(Error, 3) << "sampled " << ++emissions;
  }
  // Reaches 1, 4, 7, 10 of 10.
  EXPECT_EQ(emissions, 4);
  setLogLevel(saved);
}

}  // namespace
}  // namespace ninf
