// Slab/pool allocator for hot-path wire buffers (common/buffer_pool.h).
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "common/buffer_pool.h"
#include "common/error.h"
#include "obs/metrics.h"

namespace ninf::common {
namespace {

double hits() { return obs::counter("pool.buffers.hits").value(); }
double misses() { return obs::counter("pool.buffers.misses").value(); }
double residentBytes() {
  return obs::gauge("pool.buffers.resident_bytes").value();
}

TEST(BufferPool, AcquireGivesEmptyBufferWithRequestedCapacity) {
  PooledBuffer b = acquireBuffer(100);
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.size(), 0u);
  EXPECT_GE(b.capacity(), 100u);
  EXPECT_NE(b.data(), nullptr);
}

TEST(BufferPool, SizeClassesRoundUpInPowerOfFourSteps) {
  EXPECT_EQ(acquireBuffer(1).capacity(), BufferPool::kMinClassBytes);
  EXPECT_EQ(acquireBuffer(256).capacity(), 256u);
  EXPECT_EQ(acquireBuffer(257).capacity(), 1024u);
  EXPECT_EQ(acquireBuffer(1 << 20).capacity(), std::size_t{1} << 20);
}

TEST(BufferPool, ReleasedSlabIsReusedByTheSameThread) {
  // Drain any slab another test parked so the first acquire is a miss.
  BufferPool::instance().trimThreadCache();
  BufferPool::instance().drainGlobal();
  const double h0 = hits();
  const double m0 = misses();

  const std::uint8_t* slab = nullptr;
  {
    PooledBuffer b = acquireBuffer(4096);
    slab = b.data();
  }  // slab returns to this thread's cache
  EXPECT_DOUBLE_EQ(misses() - m0, 1.0);

  PooledBuffer again = acquireBuffer(4096);
  EXPECT_EQ(again.data(), slab);  // same slab, no heap traffic
  EXPECT_DOUBLE_EQ(hits() - h0, 1.0);
  EXPECT_DOUBLE_EQ(misses() - m0, 1.0);
}

TEST(BufferPool, OversizeRequestsFallThroughToTheHeap) {
  const double m0 = misses();
  const std::uint8_t* first = nullptr;
  {
    PooledBuffer big = acquireBuffer(BufferPool::kMaxClassBytes + 1);
    EXPECT_GE(big.capacity(), BufferPool::kMaxClassBytes + 1);
    first = big.data();
    (void)first;
  }  // freed, never pooled
  { PooledBuffer big2 = acquireBuffer(BufferPool::kMaxClassBytes + 1); }
  EXPECT_DOUBLE_EQ(misses() - m0, 2.0);  // both were heap misses
}

TEST(BufferPool, ResizeIsBoundedByCapacity) {
  PooledBuffer b = acquireBuffer(256);
  b.resize(256);
  EXPECT_EQ(b.size(), 256u);
  EXPECT_THROW(b.resize(b.capacity() + 1), Error);
  b.clear();
  EXPECT_TRUE(b.empty());
}

TEST(BufferPool, AppendFillsWithinCapacity) {
  PooledBuffer b = acquireBuffer(256);
  const std::vector<std::uint8_t> chunk(100, 0xAB);
  b.append(chunk);
  b.append(chunk);
  ASSERT_EQ(b.size(), 200u);
  EXPECT_EQ(b.span()[0], 0xAB);
  EXPECT_EQ(b.span()[199], 0xAB);
  const std::vector<std::uint8_t> too_much(100, 0xCD);
  EXPECT_THROW(b.append(too_much), Error);
}

TEST(BufferPool, MoveTransfersOwnership) {
  PooledBuffer a = acquireBuffer(512);
  a.resize(10);
  const std::uint8_t* slab = a.data();
  PooledBuffer b = std::move(a);
  EXPECT_EQ(b.data(), slab);
  EXPECT_EQ(b.size(), 10u);
  EXPECT_EQ(a.data(), nullptr);  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(a.empty());
  a = std::move(b);
  EXPECT_EQ(a.data(), slab);
}

TEST(BufferPool, TrimParksSlabsGloballyAndDrainFreesThem) {
  BufferPool::instance().trimThreadCache();
  BufferPool::instance().drainGlobal();
  EXPECT_DOUBLE_EQ(residentBytes(), 0.0);

  { PooledBuffer b = acquireBuffer(4096); }  // slab in the thread cache
  // Thread-cached slabs count as resident; trim moves them to the global
  // list where other threads can refill from.
  BufferPool::instance().trimThreadCache();
  EXPECT_GE(residentBytes(), 4096.0);

  BufferPool::instance().drainGlobal();
  EXPECT_DOUBLE_EQ(residentBytes(), 0.0);
}

TEST(BufferPool, SlabsMigrateAcrossThreadsThroughTheGlobalList) {
  BufferPool::instance().trimThreadCache();
  BufferPool::instance().drainGlobal();

  const std::uint8_t* slab = nullptr;
  std::thread producer([&] {
    PooledBuffer b = acquireBuffer(16 * 1024);
    slab = b.data();
    b = PooledBuffer{};  // release before thread exit...
    BufferPool::instance().trimThreadCache();  // ...and publish globally
  });
  producer.join();

  const double h0 = hits();
  PooledBuffer reused = acquireBuffer(16 * 1024);
  EXPECT_EQ(reused.data(), slab);
  EXPECT_DOUBLE_EQ(hits() - h0, 1.0);
}

TEST(BufferPool, ConcurrentAcquireReleaseNeverSharesALiveSlab) {
  // 8 threads hammer acquire/fill/verify/release.  A double-handed-out
  // slab would show up as a corrupted fill pattern.
  constexpr int kThreads = 8;
  constexpr int kRounds = 2000;
  std::vector<std::thread> threads;
  std::atomic<int> corrupt{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &corrupt] {
      const auto mark = static_cast<std::uint8_t>(0x11 * (t + 1));
      for (int r = 0; r < kRounds; ++r) {
        PooledBuffer b = acquireBuffer(1024);
        b.resize(64);
        for (auto& byte : b.writableSpan()) byte = mark;
        for (const auto byte : b.span()) {
          if (byte != mark) corrupt.fetch_add(1);
        }
      }
      BufferPool::instance().trimThreadCache();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(corrupt.load(), 0);
}

}  // namespace
}  // namespace ninf::common
