// Cross-cutting invariants, swept over the whole scenario grid:
// conservation laws the simulator must satisfy no matter the topology,
// execution mode, or workload.
#include <gtest/gtest.h>

#include <tuple>

#include "simcore/simulation.h"
#include "simnet/network.h"
#include "simworld/scenario.h"

namespace ninf::simworld {
namespace {

using GridParam = std::tuple<Topology, ExecMode, bool /*ep*/, std::size_t>;

class ScenarioGridTest : public ::testing::TestWithParam<GridParam> {};

TEST_P(ScenarioGridTest, MeasurementsSatisfyInvariants) {
  const auto [topology, mode, ep, clients] = GetParam();
  MultiClientConfig cfg;
  cfg.topology = topology;
  cfg.mode = mode;
  cfg.ep = ep;
  cfg.clients = clients;
  cfg.n = 600;
  cfg.ep_log2_pairs = 18;  // keep EP calls short for the sweep
  cfg.duration = ep ? 600.0 : 200.0;
  const auto r = runMultiClient(cfg);

  // Someone must have called.
  ASSERT_GT(r.row.times(), 0u);
  // Utilization is a percentage of real PEs.
  EXPECT_GE(r.cpu_util_percent, 0.0);
  EXPECT_LE(r.cpu_util_percent, 100.0 + 1e-9);
  // Load can't be negative and can't beat every client being resident
  // plus a whole data-parallel job's threads plus marshalling slack.
  EXPECT_GE(r.load_average, 0.0);
  const double site_count =
      topology == Topology::MultiSiteWan ? 4.0 : 1.0;
  EXPECT_LE(r.max_load, site_count * clients + 8.0);
  // Timing chains are ordered: response, wait, transmission >= 0.
  EXPECT_GE(r.row.response_s.min(), 0.0);
  EXPECT_GE(r.row.wait_s.min(), 0.0);
  EXPECT_GE(r.row.transmission_s.min(), 0.0);
  // Per-call throughput can never exceed the fastest LAN link.
  EXPECT_LE(r.row.throughput_mbps.max(), 10.0 + 1e-9);
  // Performance is positive and below the J90's absolute peak.
  EXPECT_GT(r.row.perf_mflops.min(), 0.0);
  EXPECT_LT(r.row.perf_mflops.max(), 1000.0);
  // The simulation ends after the configured duration (clients issue
  // until `duration`, in-flight calls drain later).
  EXPECT_GE(r.duration, cfg.duration * 0.9);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ScenarioGridTest,
    ::testing::Combine(
        ::testing::Values(Topology::Lan, Topology::SingleSiteWan,
                          Topology::MultiSiteWan),
        ::testing::Values(ExecMode::TaskParallel, ExecMode::DataParallel),
        ::testing::Values(false, true),
        ::testing::Values<std::size_t>(1, 4)));

// ------------------------------------------------- network conservation

TEST(NetworkConservation, LinkBytesMatchDeliveredBytes) {
  simcore::Simulation sim;
  simnet::Network net(sim);
  const auto a = net.addNode("a");
  const auto r = net.addNode("r");
  const auto b = net.addNode("b");
  const auto l1 = net.addLink(a, r, 2e6, 0.0);
  const auto l2 = net.addLink(r, b, 1e6, 0.0);
  double done = -1;
  [](simcore::Simulation& s, simnet::Network& n, simnet::NodeId src,
     simnet::NodeId dst, double& out) -> simcore::Process {
    co_await n.transfer(src, dst, 3e6);
    co_await n.transfer(dst, src, 1e6);
    out = s.now();
  }(sim, net, a, b, done);
  sim.run();
  // Every byte crossed both links exactly once per transfer.
  EXPECT_NEAR(net.linkBytesCarried(l1), 4e6, 1.0);
  EXPECT_NEAR(net.linkBytesCarried(l2), 4e6, 1.0);
  EXPECT_GT(done, 0.0);
}

TEST(NetworkConservation, FairShareNeverExceedsCapacity) {
  // Many concurrent flows on one link: total delivery time can never be
  // shorter than total_bytes / capacity.
  simcore::Simulation sim;
  simnet::Network net(sim);
  const auto a = net.addNode("a");
  const auto b = net.addNode("b");
  net.addLink(a, b, 1e6, 0.0);
  constexpr int kFlows = 7;
  std::vector<double> done(kFlows, -1);
  double total_bytes = 0;
  for (int i = 0; i < kFlows; ++i) {
    const double bytes = 1e5 * (i + 1);
    total_bytes += bytes;
    [](simnet::Network& n, simcore::Simulation& s, simnet::NodeId src,
       simnet::NodeId dst, double by, double& out) -> simcore::Process {
      co_await n.transfer(src, dst, by);
      out = s.now();
    }(net, sim, a, b, bytes, done[i]);
  }
  sim.run();
  double last = 0;
  for (double d : done) last = std::max(last, d);
  EXPECT_GE(last, total_bytes / 1e6 - 1e-6);  // capacity bound
  EXPECT_NEAR(last, total_bytes / 1e6, 1e-3);  // and work-conserving
}

// ------------------------------------------------- event determinism

TEST(Determinism, IdenticalRunsExecuteIdenticalEventCounts) {
  auto run = [] {
    MultiClientConfig cfg;
    cfg.clients = 4;
    cfg.duration = 150.0;
    const auto r = runMultiClient(cfg);
    return std::make_pair(r.row.times(), r.aggregate_mbps);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.first, b.first);
  EXPECT_DOUBLE_EQ(a.second, b.second);
}

}  // namespace
}  // namespace ninf::simworld
