// Scheduler ablation: the robust claims of the paper's scheduling
// argument must hold in the simulator.
#include <gtest/gtest.h>

#include "simworld/scheduler_ablation.h"

namespace ninf::simworld {
namespace {

SchedulerAblationResult run(SimPolicy policy, std::size_t n) {
  SchedulerAblationConfig cfg;
  cfg.policy = policy;
  cfg.n = n;
  cfg.clients = 8;
  cfg.duration = 400.0;
  return runSchedulerAblation(cfg);
}

TEST(SchedulerAblation, BandwidthAwareAvoidsWanForSmallJobs) {
  // Communication-heavy n=400 calls must essentially never cross the
  // 0.17 MB/s WAN path under bandwidth-aware routing.
  const auto r = run(SimPolicy::BandwidthAware, 400);
  EXPECT_GT(r.calls_per_server[0], 50u);
  EXPECT_LT(r.calls_per_server[1],
            r.calls_per_server[0] / 20 + 1);
}

TEST(SchedulerAblation, RoundRobinSplitsEvenly) {
  const auto r = run(SimPolicy::RoundRobin, 400);
  const double a = static_cast<double>(r.calls_per_server[0]);
  const double b = static_cast<double>(r.calls_per_server[1]);
  EXPECT_NEAR(a / (a + b), 0.5, 0.1);
}

TEST(SchedulerAblation, BandwidthAwareBeatsRoundRobinWhenCommBound) {
  const double rr = run(SimPolicy::RoundRobin, 400).row.perf_mflops.mean();
  const double bw =
      run(SimPolicy::BandwidthAware, 400).row.perf_mflops.mean();
  EXPECT_GT(bw, rr * 1.2);
}

TEST(SchedulerAblation, LeastLoadOffloadsToIdleRemote) {
  // The NetSolve-style policy routes by load alone, so the idle remote
  // server receives a real share of calls even when its path is awful —
  // the failure mode the paper warns about for WAN settings.
  const auto r = run(SimPolicy::LeastLoad, 400);
  EXPECT_GT(r.calls_per_server[1], 10u);
}

TEST(SchedulerAblation, DeterministicForSeed) {
  const auto a = run(SimPolicy::LeastLoad, 800);
  const auto b = run(SimPolicy::LeastLoad, 800);
  EXPECT_EQ(a.calls_per_server, b.calls_per_server);
  EXPECT_DOUBLE_EQ(a.row.perf_mflops.mean(), b.row.perf_mflops.mean());
}

TEST(SchedulerAblation, PolicyNames) {
  EXPECT_STREQ(simPolicyName(SimPolicy::RoundRobin), "round-robin");
  EXPECT_NE(std::string(simPolicyName(SimPolicy::LeastLoad)).find("least"),
            std::string::npos);
  EXPECT_NE(std::string(simPolicyName(SimPolicy::BandwidthAware))
                .find("bandwidth"),
            std::string::npos);
}

}  // namespace
}  // namespace ninf::simworld
