// Session layer: call-ID multiplexing on one shared connection, protocol
// negotiation (v1 interop), failure semantics of in-flight calls, and the
// endpoint-keyed connection pool.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "client/client.h"
#include "client/connection_pool.h"
#include "common/error.h"
#include "numlib/ep.h"
#include "obs/metrics.h"
#include "protocol/message.h"
#include "server/server.h"
#include "transport/fault_injection.h"
#include "transport/inproc_transport.h"
#include "transport/tcp_transport.h"
#include "xdr/xdr.h"

namespace ninf {
namespace {

using client::CallOptions;
using client::ConnectionPool;
using client::NinfClient;
using client::PoolOptions;
using protocol::ArgValue;

double secondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// TCP server with the standard executables plus "nap", which just holds
/// a worker for `ms` milliseconds — the clearest probe of whether calls
/// on one connection actually overlap.
class SessionFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    server::registerStandardExecutables(registry_);
    registry_.add(
        R"IDL(Define nap(mode_in long ms, mode_out double echo[1])
           "hold a worker for ms milliseconds",
           CalcOrder 1,
           Calls "C" nap(ms, echo);)IDL",
        [](server::CallContext& ctx) {
          const auto ms = ctx.intArg("ms");
          std::this_thread::sleep_for(std::chrono::milliseconds(ms));
          ctx.arrayOut("echo")[0] = static_cast<double>(ms);
        });
    server_.emplace(registry_, server::ServerOptions{.workers = 4});
    listener_ = std::make_shared<transport::TcpListener>(0);
    port_ = listener_->port();
    server().start(listener_);
  }

  void TearDown() override { server().stop(); }

  double nap(NinfClient& client, std::int64_t ms,
             const CallOptions& opts = {}) {
    std::vector<double> echo(1);
    std::vector<ArgValue> args = {ArgValue::inInt(ms),
                                  ArgValue::outArray(echo)};
    client.call("nap", args, opts);
    return echo[0];
  }

  server::Registry registry_;
  // Engaged in SetUp() for the whole test lifetime; the accessor
  // keeps the one unchecked dereference in a single audited place.
  // NOLINTNEXTLINE(bugprone-unchecked-optional-access)
  server::NinfServer& server() { return *server_; }
  std::optional<server::NinfServer> server_;
  std::shared_ptr<transport::TcpListener> listener_;
  std::uint16_t port_ = 0;
};

TEST_F(SessionFixture, NegotiatesProtocolV2) {
  auto client = NinfClient::connectTcp("127.0.0.1", port_);
  EXPECT_DOUBLE_EQ(nap(*client, 1), 1.0);
  EXPECT_EQ(client->channel().negotiatedVersion(), protocol::kVersion2);
}

TEST_F(SessionFixture, V1ClientRoundTripsAgainstV2Server) {
  // A pre-negotiation client must keep working against an upgraded
  // server: no Hello, classic lock-step framing.
  auto client = std::make_unique<NinfClient>(
      transport::tcpConnect("127.0.0.1", port_), /*force_v1=*/true);
  EXPECT_DOUBLE_EQ(nap(*client, 1), 1.0);
  EXPECT_EQ(client->channel().negotiatedVersion(), protocol::kVersion);
  EXPECT_EQ(client->listExecutables().size(), registry_.size());
}

TEST_F(SessionFixture, OneConnectionSustainsWorkersConcurrentCalls) {
  // Acceptance: with 4 workers and 4 concurrent 250 ms naps multiplexed
  // on ONE connection, wall time is about one nap — not four.  The old
  // lock-step connection would serialize them (>= 1 s).
  auto client = NinfClient::connectTcp("127.0.0.1", port_);
  constexpr int kCalls = 4;
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  std::atomic<int> ok{0};
  for (int i = 0; i < kCalls; ++i) {
    threads.emplace_back([&] {
      if (nap(*client, 250) == 250.0) ok.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok.load(), kCalls);
  EXPECT_LT(secondsSince(start), 0.75);  // serial would take >= 1.0 s
}

TEST_F(SessionFixture, RepliesReturnOutOfOrderWithTimingsIntact) {
  auto client = NinfClient::connectTcp("127.0.0.1", port_);
  std::chrono::steady_clock::time_point slow_done, fast_done;
  std::thread slow([&] {
    EXPECT_DOUBLE_EQ(nap(*client, 400), 400.0);
    slow_done = std::chrono::steady_clock::now();
  });
  // Let the slow call reach the server first.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  std::vector<double> echo(1);
  std::vector<ArgValue> args = {ArgValue::inInt(10),
                                ArgValue::outArray(echo)};
  const auto fast = client->call("nap", args);
  fast_done = std::chrono::steady_clock::now();
  slow.join();
  EXPECT_DOUBLE_EQ(echo[0], 10.0);
  // The fast reply overtook the slow one on the shared connection.
  EXPECT_LT(fast_done + std::chrono::milliseconds(100), slow_done);
  // Per-call accounting survived the demultiplexing.
  EXPECT_GT(fast.elapsed, 0.0);
  EXPECT_LT(fast.elapsed, 0.3);
  EXPECT_GE(fast.server.waitTime(), 0.0);
  EXPECT_GT(fast.bytes_sent, 0);
  EXPECT_GT(fast.bytes_received, 0);
}

TEST_F(SessionFixture, ServerStopFailsEveryInflightCallTyped) {
  auto client = NinfClient::connectTcp("127.0.0.1", port_);
  EXPECT_DOUBLE_EQ(nap(*client, 1), 1.0);  // negotiate before the cut
  constexpr int kCalls = 4;
  std::atomic<int> typed{0}, wrong{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kCalls; ++i) {
    threads.emplace_back([&] {
      try {
        nap(*client, 2000);
        wrong.fetch_add(1);  // must not outlive the server
      } catch (const TransportError&) {
        typed.fetch_add(1);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  server().stop();
  for (auto& t : threads) t.join();
  EXPECT_EQ(typed.load(), kCalls);
  EXPECT_EQ(wrong.load(), 0);
}

TEST_F(SessionFixture, TimeoutAbandonsOneCallOthersSurvive) {
  auto client = NinfClient::connectTcp("127.0.0.1", port_);
  std::thread slow([&] {
    // Long nap, generous deadline: must complete even while a sibling
    // call on the same connection times out.
    CallOptions opts;
    opts.deadline_seconds = 10.0;
    EXPECT_DOUBLE_EQ(nap(*client, 600, opts), 600.0);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  CallOptions tight;
  tight.deadline_seconds = 0.1;
  EXPECT_THROW(nap(*client, 5000, tight), TimeoutError);
  slow.join();
  // The channel is still healthy after the abandoned call.
  EXPECT_DOUBLE_EQ(nap(*client, 1), 1.0);
}

TEST_F(SessionFixture, FaultPlanResetMidMultiplexNeverMixesReplies) {
  // Chaos: a seeded fault plan resets sends while several threads share
  // one multiplexed connection.  Invariant: every call either returns
  // the result of ITS OWN arguments or throws a typed error — never a
  // reply belonging to another call, never a hang.
  transport::FaultSpec spec;
  spec.reset = 0.15;
  auto plan = std::make_shared<transport::FaultPlan>(42, spec);
  auto client = std::make_unique<NinfClient>(
      transport::wrapFaulty(transport::tcpConnect("127.0.0.1", port_), plan));
  client->setReconnect([this, plan] {
    transport::checkConnectFault(*plan, "127.0.0.1");
    return transport::wrapFaulty(transport::tcpConnect("127.0.0.1", port_),
                                 plan);
  });
  constexpr int kThreads = 4;
  constexpr int kCallsPerThread = 6;
  std::atomic<int> correct{0}, failed{0}, corrupt{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kCallsPerThread; ++i) {
        const std::int64_t first = (t * kCallsPerThread + i) * 64;
        const std::int64_t count = 64 + t;  // distinct per thread
        std::vector<double> sums(2), q(10);
        std::vector<ArgValue> args = {ArgValue::inInt(first),
                                      ArgValue::inInt(count),
                                      ArgValue::outArray(sums),
                                      ArgValue::outArray(q)};
        CallOptions opts;
        opts.deadline_seconds = 15.0;
        opts.retries = 6;
        opts.backoff_seconds = 0.001;
        try {
          client->call("ep", args, opts);
          const auto expected = numlib::runEp(first, count);
          if (sums[0] == expected.sx && sums[1] == expected.sy) {
            correct.fetch_add(1);
          } else {
            corrupt.fetch_add(1);
          }
        } catch (const Error&) {
          failed.fetch_add(1);  // typed failure is within the contract
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(corrupt.load(), 0);
  EXPECT_EQ(correct.load() + failed.load(), kThreads * kCallsPerThread);
  EXPECT_GT(correct.load(), 0);  // the plan must not kill everything
}

TEST(ChannelInterop, FallsBackToV1WhenPeerClosesOnHello) {
  // A pre-negotiation server aborts the connection on the unknown Hello
  // frame without replying anything.  The client must read that close as
  // "old peer" and fall back to protocol v1 over one fresh connection,
  // not surface a TransportError.
  auto [c1, s1] = transport::inprocPair();
  auto [c2, s2] = transport::inprocPair();
  auto client = std::make_unique<NinfClient>(std::move(c1));
  auto next =
      std::make_shared<std::unique_ptr<transport::Stream>>(std::move(c2));
  client->setReconnect([next] { return std::move(*next); });

  std::thread old_server([&s1, &s2] {
    // "Old server": consume the Hello frame, then abort the connection.
    (void)protocol::recvMessage(*s1);
    s1->close();
    // The fallback connection speaks plain lock-step v1.
    const auto ping = protocol::recvMessage(*s2);
    EXPECT_EQ(ping.type, protocol::MessageType::Ping);
    protocol::sendMessage(*s2, protocol::MessageType::Pong, ping.payload);
  });
  const double fallbacks_before =
      obs::counter("channel.hello_fallbacks").value();
  EXPECT_GE(client->ping(), 0.0);
  EXPECT_EQ(client->channel().negotiatedVersion(), protocol::kVersion);
  EXPECT_GE(obs::counter("channel.hello_fallbacks").value() - fallbacks_before,
            1.0);
  old_server.join();
}

TEST(ChannelStall, MidReplyStallBoundsDeadlinedCallAndBreaksChannel) {
  // A v2 peer that sends a reply header (so the call enters the
  // Consuming state) but stalls mid-body must not wedge the caller past
  // its deadline plus the grace window: the channel is declared broken,
  // the stream is closed, and the caller gets TimeoutError.
  auto [c_end, s_end] = transport::inprocPair();
  auto client = std::make_unique<NinfClient>(std::move(c_end));
  client->channel().setMidReplyGrace(0.1);

  std::thread stalling_server([&s_end] {
    const auto hello = protocol::recvMessage(*s_end);
    EXPECT_EQ(hello.type, protocol::MessageType::Hello);
    xdr::Encoder ack;
    ack.putU32(protocol::kVersion2);
    protocol::sendMessage(*s_end, protocol::MessageType::HelloAck,
                          ack.bytes());
    const auto request = protocol::recvHeaderV2(*s_end);
    protocol::BodyReader body(*s_end, request.length);
    body.drain();
    // Reply header promises 64 body bytes; deliver 8, then go mute.
    xdr::Encoder header;
    header.putU32(protocol::kMagic);
    header.putU32(protocol::kVersion2);
    header.putU32(static_cast<std::uint32_t>(protocol::MessageType::Pong));
    header.putU32(64);
    header.putU32(static_cast<std::uint32_t>(request.call_id >> 32));
    header.putU32(static_cast<std::uint32_t>(request.call_id));
    s_end->sendAll(header.bytes());
    const std::array<std::uint8_t, 8> stub{};
    s_end->sendAll(stub);
    // Hold the connection open until the client abandons the wire.
    try {
      std::uint8_t byte;
      s_end->recvAll(std::span(&byte, 1));
    } catch (const Error&) {
    }
  });

  const auto start = std::chrono::steady_clock::now();
  const double stalls_before =
      obs::counter("channel.mid_reply_stalls").value();
  EXPECT_THROW(client->ping(0, 0.25), TimeoutError);
  EXPECT_LT(secondsSince(start), 2.0);  // deadline + grace, not forever
  EXPECT_TRUE(client->channel().broken());
  EXPECT_GE(obs::counter("channel.mid_reply_stalls").value() - stalls_before,
            1.0);
  // The poisoned channel cannot be reused (no reconnect factory here).
  EXPECT_THROW(client->ping(), TransportError);
  stalling_server.join();
}

/// Pool behavior against one live TCP server.
class PoolFixture : public SessionFixture {
 protected:
  ConnectionPool::Factory countingFactory() {
    return [this] {
      created_.fetch_add(1);
      return NinfClient::connectTcp("127.0.0.1", port_);
    };
  }

  std::atomic<int> created_{0};
};

TEST_F(PoolFixture, ReleaseThenAcquireReusesTheConnection) {
  ConnectionPool pool;
  const double hits_before = obs::counter("pool.hits").value();
  const double misses_before = obs::counter("pool.misses").value();
  {
    auto lease = pool.acquire("srv", countingFactory());
    EXPECT_GE(lease->ping(), 0.0);  // connection is usable
    EXPECT_EQ(pool.inUseCount(), 1u);
  }
  EXPECT_EQ(pool.idleCount(), 1u);
  {
    auto lease = pool.acquire("srv", countingFactory());
    EXPECT_EQ(pool.idleCount(), 0u);
  }
  EXPECT_EQ(created_.load(), 1);  // second acquire reused, not rebuilt
  EXPECT_DOUBLE_EQ(obs::counter("pool.hits").value() - hits_before, 1.0);
  EXPECT_DOUBLE_EQ(obs::counter("pool.misses").value() - misses_before, 1.0);
}

TEST_F(PoolFixture, DistinctEndpointsDoNotShareConnections) {
  ConnectionPool pool;
  { auto lease = pool.acquire("a", countingFactory()); }
  { auto lease = pool.acquire("b", countingFactory()); }
  EXPECT_EQ(created_.load(), 2);
  EXPECT_EQ(pool.idleCount(), 2u);
}

TEST_F(PoolFixture, OverflowBeyondMaxIdleIsEvicted) {
  PoolOptions options;
  options.max_idle_per_endpoint = 1;
  ConnectionPool pool(options);
  {
    auto first = pool.acquire("srv", countingFactory());
    auto second = pool.acquire("srv", countingFactory());
    EXPECT_EQ(pool.inUseCount(), 2u);
  }
  EXPECT_EQ(pool.idleCount(), 1u);  // one kept, one closed on return
}

TEST_F(PoolFixture, TtlEvictsStaleIdleConnections) {
  PoolOptions options;
  options.idle_ttl_seconds = 0.05;
  ConnectionPool pool(options);
  { auto lease = pool.acquire("srv", countingFactory()); }
  EXPECT_EQ(pool.idleCount(), 1u);
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  { auto lease = pool.acquire("srv", countingFactory()); }
  EXPECT_EQ(created_.load(), 2);  // stale idle entry was not reused
}

TEST_F(PoolFixture, BrokenConnectionIsNeverPooled) {
  ConnectionPool pool;
  {
    auto lease = pool.acquire("srv", countingFactory());
    lease->close();  // marks the channel broken
  }
  EXPECT_EQ(pool.idleCount(), 0u);
}

TEST_F(PoolFixture, DiscardedLeaseIsNotReturned) {
  ConnectionPool pool;
  {
    auto lease = pool.acquire("srv", countingFactory());
    lease.discard();
  }
  EXPECT_EQ(pool.idleCount(), 0u);
  EXPECT_EQ(pool.inUseCount(), 0u);
}

TEST(ConnectionPoolHealth, StalledPeerHealthCheckIsBoundedAndEvicted) {
  // A pooled connection whose peer is open but unresponsive must not
  // wedge acquire(): the health-check ping is deadline-bounded, the
  // stalled entry is evicted on timeout, and a fresh connection is built
  // through the factory.
  PoolOptions options;
  options.health_check_after_seconds = 0.0;  // ping on every reuse
  options.health_check_timeout_seconds = 0.1;
  ConnectionPool pool(options);
  std::vector<std::unique_ptr<transport::Stream>> peers;  // open, mute
  int created = 0;
  ConnectionPool::Factory factory = [&] {
    auto [near_end, far_end] = transport::inprocPair();
    peers.push_back(std::move(far_end));
    ++created;
    return std::make_unique<NinfClient>(std::move(near_end),
                                        /*force_v1=*/true);
  };
  { auto lease = pool.acquire("stalled", factory); }  // fresh: no check
  EXPECT_EQ(pool.idleCount(), 1u);
  const double dead_before = obs::counter("pool.dead_evictions").value();
  const auto start = std::chrono::steady_clock::now();
  { auto lease = pool.acquire("stalled", factory); }
  EXPECT_LT(secondsSince(start), 1.0);  // bounded, not wedged
  EXPECT_EQ(created, 2);                // stalled entry evicted, rebuilt
  EXPECT_GE(obs::counter("pool.dead_evictions").value() - dead_before, 1.0);
}

/// Inproc stream that proves it is being destroyed OUTSIDE the pool
/// lock: the destructor queries the pool (self-deadlock under a
/// non-recursive mutex if the lock were held — the lock-order checker
/// flags it first) and then dawdles, so a regression also shows up as
/// acquire() latency on unrelated endpoints.
class EvictionCanaryStream : public transport::Stream {
 public:
  EvictionCanaryStream(std::unique_ptr<transport::Stream> inner,
                       ConnectionPool* pool, std::atomic<int>* probes)
      : inner_(std::move(inner)), pool_(pool), probes_(probes) {}

  ~EvictionCanaryStream() override {
    (void)pool_->idleCount();  // deadlocks if destroyed under the pool lock
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
    probes_->fetch_add(1);
  }

  void sendAll(std::span<const std::uint8_t> data) override {
    inner_->sendAll(data);
  }
  void recvAll(std::span<std::uint8_t> buffer) override {
    inner_->recvAll(buffer);
  }
  void setDeadline(std::chrono::steady_clock::time_point d) override {
    inner_->setDeadline(d);
  }
  void shutdownSend() override { inner_->shutdownSend(); }
  void close() override { inner_->close(); }
  std::string peerName() const override { return inner_->peerName(); }

 private:
  std::unique_ptr<transport::Stream> inner_;
  ConnectionPool* pool_;
  std::atomic<int>* probes_;
};

TEST(ConnectionPoolEviction, TtlEvictionDestroysConnectionsOutsideTheLock) {
  PoolOptions options;
  options.idle_ttl_seconds = 0.03;
  options.health_check_after_seconds = 1e9;  // never ping (peers are mute)
  ConnectionPool pool(options);

  Mutex peers_mutex{"test.peers"};
  std::vector<std::unique_ptr<transport::Stream>> peers;  // keep ends open
  std::atomic<int> canary_probes{0};
  ConnectionPool::Factory factory = [&] {
    auto [near_end, far_end] = transport::inprocPair();
    {
      LockGuard lock(peers_mutex);
      peers.push_back(std::move(far_end));
    }
    return std::make_unique<NinfClient>(
        std::make_unique<EvictionCanaryStream>(std::move(near_end), &pool,
                                               &canary_probes),
        /*force_v1=*/true);
  };

  {
    auto first = pool.acquire("srv", factory);
    auto second = pool.acquire("srv", factory);
  }
  EXPECT_EQ(pool.idleCount(), 2u);
  std::this_thread::sleep_for(std::chrono::milliseconds(60));  // pass the TTL

  // This acquire sheds both stale entries; their canary destructors (2 x
  // 80 ms + a pool query each) must run with the pool unlocked.
  std::thread evictor([&] { auto lease = pool.acquire("srv", factory); });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));  // mid-eviction

  // Meanwhile the pool stays responsive for everyone else.
  const auto start = std::chrono::steady_clock::now();
  { auto lease = pool.acquire("other", factory); }
  EXPECT_LT(secondsSince(start), 0.05)
      << "slow eviction destructors must not serialize unrelated acquires";

  evictor.join();
  EXPECT_GE(canary_probes.load(), 2);  // both stale canaries fully destroyed
}

TEST_F(PoolFixture, DeadPeerFailsHealthCheckAndIsReplaced) {
  PoolOptions options;
  options.health_check_after_seconds = 0.0;  // ping on every reuse
  ConnectionPool pool(options);
  { auto lease = pool.acquire("srv", countingFactory()); }
  server().stop();  // the pooled connection's peer is now gone
  const double dead_before = obs::counter("pool.dead_evictions").value();
  EXPECT_THROW(
      { auto lease = pool.acquire("srv", countingFactory()); },
      TransportError);  // idle entry evicted, factory can't connect either
  EXPECT_GE(obs::counter("pool.dead_evictions").value() - dead_before, 1.0);
}

}  // namespace
}  // namespace ninf
