// Jacobi eigensolver + DOS Monte-Carlo: correctness on known spectra and
// convergence to the Wigner semicircle.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/error.h"
#include "numlib/dos.h"
#include "numlib/eigen.h"

namespace ninf::numlib {
namespace {

TEST(Eigen, DiagonalMatrixEigenvaluesAreDiagonal) {
  Matrix a(3, 3);
  a(0, 0) = 3.0;
  a(1, 1) = -1.0;
  a(2, 2) = 2.0;
  const auto eig = symmetricEigenvalues(a);
  ASSERT_EQ(eig.size(), 3u);
  EXPECT_NEAR(eig[0], -1.0, 1e-12);
  EXPECT_NEAR(eig[1], 2.0, 1e-12);
  EXPECT_NEAR(eig[2], 3.0, 1e-12);
}

TEST(Eigen, TwoByTwoClosedForm) {
  // [[2, 1], [1, 2]] has eigenvalues 1 and 3.
  Matrix a(2, 2);
  a(0, 0) = 2;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 2;
  const auto eig = symmetricEigenvalues(a);
  EXPECT_NEAR(eig[0], 1.0, 1e-12);
  EXPECT_NEAR(eig[1], 3.0, 1e-12);
}

TEST(Eigen, TridiagonalLaplacianSpectrum) {
  // -1/2/-1 tridiagonal: eigenvalues 2 - 2cos(k pi / (n+1)).
  const std::size_t n = 12;
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    a(i, i) = 2.0;
    if (i + 1 < n) {
      a(i, i + 1) = -1.0;
      a(i + 1, i) = -1.0;
    }
  }
  const auto eig = symmetricEigenvalues(a);
  for (std::size_t k = 1; k <= n; ++k) {
    const double expected =
        2.0 - 2.0 * std::cos(static_cast<double>(k) * 3.141592653589793 /
                             static_cast<double>(n + 1));
    EXPECT_NEAR(eig[k - 1], expected, 1e-9);
  }
}

TEST(Eigen, TraceAndFrobeniusInvariants) {
  const Matrix a = gaussianOrthogonalEnsemble(24, 7);
  double trace = 0.0, frob2 = 0.0;
  for (std::size_t i = 0; i < 24; ++i) trace += a(i, i);
  for (double v : a.flat()) frob2 += v * v;
  const auto eig = symmetricEigenvalues(a);
  const double eig_sum = std::accumulate(eig.begin(), eig.end(), 0.0);
  double eig_sq = 0.0;
  for (double e : eig) eig_sq += e * e;
  EXPECT_NEAR(eig_sum, trace, 1e-8);
  EXPECT_NEAR(eig_sq, frob2, 1e-7);
}

TEST(Eigen, NonSymmetricRejected) {
  Matrix a(2, 2);
  a(0, 1) = 1.0;  // a(1,0) stays 0
  a(0, 0) = a(1, 1) = 1.0;
  EXPECT_THROW(symmetricEigenvalues(a), Error);
}

TEST(Eigen, NonSquareRejected) {
  Matrix a(2, 3);
  EXPECT_THROW(symmetricEigenvalues(a), std::logic_error);
}

TEST(Eigen, EmptyMatrixYieldsNothing) {
  Matrix a(0, 0);
  EXPECT_TRUE(symmetricEigenvalues(a).empty());
}

TEST(Eigen, GoeIsSymmetricAndDeterministic) {
  const Matrix a = gaussianOrthogonalEnsemble(16, 5);
  for (std::size_t i = 0; i < 16; ++i) {
    for (std::size_t j = 0; j < 16; ++j) {
      EXPECT_EQ(a(i, j), a(j, i));
    }
  }
  EXPECT_EQ(a, gaussianOrthogonalEnsemble(16, 5));
  EXPECT_NE(a, gaussianOrthogonalEnsemble(16, 6));
}

TEST(Dos, PartitionsMergeExactly) {
  // The EP-style property: disjoint sample ranges merged equal one run.
  const auto whole = runDos(12, 0, 12);
  DosResult merged = runDos(12, 0, 5);
  merged.merge(runDos(12, 5, 7));
  EXPECT_EQ(merged, whole);
}

TEST(Dos, EigenvalueCountMatchesSamples) {
  const auto r = runDos(10, 0, 6);
  EXPECT_EQ(r.samples, 6);
  EXPECT_EQ(r.eigenvalues, 60);
  std::int64_t in_hist = 0;
  for (auto c : r.counts) in_hist += c;
  EXPECT_LE(in_hist, r.eigenvalues);
  EXPECT_GT(in_hist, r.eigenvalues * 9 / 10);  // few outliers beyond ±2.5
}

TEST(Dos, DensityIntegratesToRoughlyOne) {
  const auto r = runDos(16, 0, 24);
  double integral = 0.0;
  for (std::size_t b = 0; b < r.counts.size(); ++b) {
    integral += r.density(b) * r.binWidth();
  }
  EXPECT_NEAR(integral, 1.0, 0.1);
}

TEST(Dos, ConvergesTowardWignerSemicircle) {
  // Moderate n and enough samples: density at the center approaches
  // 1/pi ~ 0.318 and vanishes outside [-2, 2].
  const auto r = runDos(24, 0, 60);
  double center_density = 0.0;
  double tail_density = 0.0;
  for (std::size_t b = 0; b < r.counts.size(); ++b) {
    const double e = r.binCenter(b);
    if (std::abs(e) < 0.2) center_density = std::max(center_density,
                                                     r.density(b));
    if (std::abs(e) > 2.3) tail_density = std::max(tail_density,
                                                   r.density(b));
  }
  EXPECT_NEAR(center_density, wignerSemicircle(0.0), 0.08);
  EXPECT_LT(tail_density, 0.03);
}

TEST(Dos, MergeRejectsDifferentGrids) {
  auto a = runDos(8, 0, 2, 10);
  const auto b = runDos(8, 0, 2, 20);
  EXPECT_THROW(a.merge(b), std::logic_error);
}

TEST(Dos, WignerClosedForm) {
  EXPECT_DOUBLE_EQ(wignerSemicircle(2.5), 0.0);
  EXPECT_DOUBLE_EQ(wignerSemicircle(-2.5), 0.0);
  EXPECT_NEAR(wignerSemicircle(0.0), 1.0 / 3.141592653589793, 1e-12);
  EXPECT_GT(wignerSemicircle(0.0), wignerSemicircle(1.5));
}

}  // namespace
}  // namespace ninf::numlib
