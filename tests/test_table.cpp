#include <gtest/gtest.h>

#include <sstream>

#include "common/table.h"

namespace ninf {
namespace {

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"n", "c", "Performance"});
  t.row().cell(600).cell(1).cell(71.16, 2);
  t.row().cell(1400).cell(16).cell(23.93, 2);
  const std::string out = t.str();
  EXPECT_NE(out.find("n    | c  | Performance"), std::string::npos);
  EXPECT_NE(out.find("600  | 1  | 71.16"), std::string::npos);
  EXPECT_NE(out.find("1400 | 16 | 23.93"), std::string::npos);
}

TEST(TextTable, HeaderRuleSpansColumns) {
  TextTable t({"a", "b"});
  t.row().cell("x").cell("y");
  std::istringstream in(t.str());
  std::string header, rule, row;
  std::getline(in, header);
  std::getline(in, rule);
  std::getline(in, row);
  EXPECT_EQ(rule.find_first_not_of('-'), std::string::npos);
  EXPECT_EQ(rule.size(), header.size());
}

TEST(TextTable, TooManyCellsThrows) {
  TextTable t({"only"});
  t.row().cell("ok");
  EXPECT_THROW(t.cell("overflow"), std::logic_error);
}

TEST(TextTable, CellBeforeRowThrows) {
  TextTable t({"a"});
  EXPECT_THROW(t.cell("x"), std::logic_error);
}

TEST(TextTable, ShortRowsRenderPadded) {
  TextTable t({"a", "b"});
  t.row().cell("1");
  EXPECT_EQ(t.rowCount(), 1u);
  EXPECT_NE(t.str().find("1"), std::string::npos);
}

TEST(TextTable, DoublePrecisionControl) {
  TextTable t({"v"});
  t.row().cell(3.14159, 3);
  EXPECT_NE(t.str().find("3.142"), std::string::npos);
}

TEST(TextTable, EmptyHeaderRejected) {
  EXPECT_THROW(TextTable t({}), std::logic_error);
}

TEST(TextTable, CsvRendering) {
  TextTable t({"n", "perf"});
  t.row().cell(600).cell(71.16, 2);
  EXPECT_EQ(t.csv(), "n,perf\n600,71.16\n");
}

TEST(TextTable, CsvQuotesSpecialCharacters) {
  TextTable t({"name", "note"});
  t.row().cell("a,b").cell("say \"hi\"");
  EXPECT_EQ(t.csv(), "name,note\n\"a,b\",\"say \"\"hi\"\"\"\n");
}

TEST(TextTable, CsvPadsShortRows) {
  TextTable t({"a", "b"});
  t.row().cell("x");
  EXPECT_EQ(t.csv(), "a,b\nx,\n");
}

}  // namespace
}  // namespace ninf
