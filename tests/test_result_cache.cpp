// Idempotent result cache: digesting, single-flight coalescing, LRU/TTL
// eviction (server/result_cache.h).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "server/result_cache.h"

namespace ninf::server {
namespace {

using Digest = ResultCache::Digest;
using Payload = ResultCache::Payload;
using Role = ResultCache::Role;

std::vector<std::uint8_t> bytesOf(const char* s) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(s);
  return {p, p + std::char_traits<char>::length(s)};
}

Payload payloadOf(const char* s) {
  return std::make_shared<const std::vector<std::uint8_t>>(bytesOf(s));
}

ResultCache::ReadyFn noReady() {
  return [](Payload) { FAIL() << "callback must not fire for this role"; };
}

TEST(ResultCacheDigest, DeterministicAndCollisionResistant) {
  const auto body = bytesOf("dmmul n=64 ...");
  EXPECT_EQ(ResultCache::digestOf(body), ResultCache::digestOf(body));

  // Any perturbation — flipped byte, extension, truncation — must move
  // the digest; so must permuting the same bytes.
  auto flipped = body;
  flipped[3] ^= 1;
  EXPECT_NE(ResultCache::digestOf(body), ResultCache::digestOf(flipped));
  EXPECT_NE(ResultCache::digestOf(body),
            ResultCache::digestOf(bytesOf("dmmul n=64 ....")));
  EXPECT_NE(ResultCache::digestOf(bytesOf("ab")),
            ResultCache::digestOf(bytesOf("ba")));
  EXPECT_NE(ResultCache::digestOf(bytesOf("")),
            ResultCache::digestOf(std::vector<std::uint8_t>{0}));
}

TEST(ResultCache, OwnerComputesThenHitsServeTheSamePayload) {
  ResultCache cache({/*max_bytes=*/1 << 20, /*ttl_seconds=*/0.0});
  const Digest d = ResultCache::digestOf(bytesOf("req"));

  auto first = cache.lookupOrJoin(d, noReady());
  ASSERT_EQ(first.role, Role::Owner);

  const Payload reply = payloadOf("reply-bytes");
  cache.fulfill(d, reply, /*cacheable=*/true);
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.bytes(), reply->size());

  auto hit = cache.lookupOrJoin(d, noReady());
  ASSERT_EQ(hit.role, Role::Hit);
  // The very same payload object: hits share bytes, they never copy.
  EXPECT_EQ(hit.payload.get(), reply.get());
}

TEST(ResultCache, ConcurrentIdenticalCallsCoalesceIntoOneOwner) {
  ResultCache cache({1 << 20, 0.0});
  const Digest d = ResultCache::digestOf(bytesOf("herd"));

  auto owner = cache.lookupOrJoin(d, noReady());
  ASSERT_EQ(owner.role, Role::Owner);

  const double merges0 =
      obs::counter("server.cache.inflight_merges").value();
  constexpr int kWaiters = 8;
  std::atomic<int> delivered{0};
  Payload seen[kWaiters];
  for (int i = 0; i < kWaiters; ++i) {
    auto join = cache.lookupOrJoin(d, [&, i](Payload p) {
      seen[i] = std::move(p);
      delivered.fetch_add(1);
    });
    EXPECT_EQ(join.role, Role::Waiter);
  }
  EXPECT_EQ(delivered.load(), 0);  // nothing fires before fulfill

  const Payload reply = payloadOf("one compute, many replies");
  cache.fulfill(d, reply, /*cacheable=*/true);
  EXPECT_EQ(delivered.load(), kWaiters);
  for (const auto& p : seen) {
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p.get(), reply.get());  // byte-identical shared payload
  }
  EXPECT_DOUBLE_EQ(
      obs::counter("server.cache.inflight_merges").value() - merges0,
      static_cast<double>(kWaiters));
}

TEST(ResultCache, ErrorRepliesReachWaitersButAreNeverRetained) {
  ResultCache cache({1 << 20, 0.0});
  const Digest d = ResultCache::digestOf(bytesOf("will-fail"));

  ASSERT_EQ(cache.lookupOrJoin(d, noReady()).role, Role::Owner);
  Payload waiter_got;
  ASSERT_EQ(cache.lookupOrJoin(d, [&](Payload p) { waiter_got = p; }).role,
            Role::Waiter);

  const Payload error_reply = payloadOf("status!=0");
  cache.fulfill(d, error_reply, /*cacheable=*/false);
  EXPECT_EQ(waiter_got.get(), error_reply.get());  // in-flight still served
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);

  // The next identical call recomputes rather than replaying the failure.
  EXPECT_EQ(cache.lookupOrJoin(d, noReady()).role, Role::Owner);
}

TEST(ResultCache, AbortedOwnerFailsWaitersWithNullPayload) {
  ResultCache cache({1 << 20, 0.0});
  const Digest d = ResultCache::digestOf(bytesOf("aborted"));

  ASSERT_EQ(cache.lookupOrJoin(d, noReady()).role, Role::Owner);
  bool fired = false;
  Payload waiter_got = payloadOf("sentinel");
  ASSERT_EQ(cache
                .lookupOrJoin(d,
                              [&](Payload p) {
                                fired = true;
                                waiter_got = std::move(p);
                              })
                .role,
            Role::Waiter);

  cache.fulfill(d, nullptr, /*cacheable=*/true);  // owner gave up
  EXPECT_TRUE(fired);
  EXPECT_EQ(waiter_got, nullptr);
  EXPECT_EQ(cache.lookupOrJoin(d, noReady()).role, Role::Owner);
}

TEST(ResultCache, DestructionFailsParkedWaiters) {
  bool fired = false;
  Payload got = payloadOf("sentinel");
  {
    ResultCache cache({1 << 20, 0.0});
    const Digest d = ResultCache::digestOf(bytesOf("orphan"));
    ASSERT_EQ(cache.lookupOrJoin(d, noReady()).role, Role::Owner);
    ASSERT_EQ(cache
                  .lookupOrJoin(d,
                                [&](Payload p) {
                                  fired = true;
                                  got = std::move(p);
                                })
                  .role,
              Role::Waiter);
  }  // server shutdown with the owner's job never run
  EXPECT_TRUE(fired);
  EXPECT_EQ(got, nullptr);
}

TEST(ResultCache, MaxBytesEvictsLeastRecentlyUsedFirst)
{
  // Three 8-byte payloads against a 20-byte budget: inserting C must
  // evict exactly one entry, and touching A first must make B the victim.
  ResultCache cache({20, 0.0});
  const Digest a = ResultCache::digestOf(bytesOf("a"));
  const Digest b = ResultCache::digestOf(bytesOf("b"));
  const Digest c = ResultCache::digestOf(bytesOf("c"));

  ASSERT_EQ(cache.lookupOrJoin(a, noReady()).role, Role::Owner);
  cache.fulfill(a, payloadOf("aaaaaaaa"), true);
  ASSERT_EQ(cache.lookupOrJoin(b, noReady()).role, Role::Owner);
  cache.fulfill(b, payloadOf("bbbbbbbb"), true);
  EXPECT_EQ(cache.entries(), 2u);

  ASSERT_EQ(cache.lookupOrJoin(a, noReady()).role, Role::Hit);  // A is MRU

  ASSERT_EQ(cache.lookupOrJoin(c, noReady()).role, Role::Owner);
  cache.fulfill(c, payloadOf("cccccccc"), true);
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_LE(cache.bytes(), 20u);
  EXPECT_EQ(cache.lookupOrJoin(a, noReady()).role, Role::Hit);
  EXPECT_EQ(cache.lookupOrJoin(c, noReady()).role, Role::Hit);
  // B was the LRU victim; its digest now misses.
  EXPECT_EQ(cache.lookupOrJoin(b, noReady()).role, Role::Owner);

  // The bytes gauge tracks the retained total.
  EXPECT_DOUBLE_EQ(obs::gauge("server.cache.bytes").value(),
                   static_cast<double>(cache.bytes()));
}

TEST(ResultCache, OversizePayloadIsServedButNotRetained) {
  ResultCache cache({/*max_bytes=*/4, 0.0});
  const Digest d = ResultCache::digestOf(bytesOf("big"));
  ASSERT_EQ(cache.lookupOrJoin(d, noReady()).role, Role::Owner);
  cache.fulfill(d, payloadOf("way-more-than-four-bytes"), true);
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.lookupOrJoin(d, noReady()).role, Role::Owner);
}

TEST(ResultCache, TtlExpiresEntriesOnSweepAndOnLookup) {
  ResultCache cache({1 << 20, /*ttl_seconds=*/0.05});
  const Digest d = ResultCache::digestOf(bytesOf("stale"));
  const Digest d2 = ResultCache::digestOf(bytesOf("stale2"));

  ASSERT_EQ(cache.lookupOrJoin(d, noReady()).role, Role::Owner);
  cache.fulfill(d, payloadOf("v"), true);
  ASSERT_EQ(cache.lookupOrJoin(d2, noReady()).role, Role::Owner);
  cache.fulfill(d2, payloadOf("w"), true);
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_EQ(cache.lookupOrJoin(d, noReady()).role, Role::Hit);

  std::this_thread::sleep_for(std::chrono::milliseconds(120));

  // A lookup that touches an expired entry recomputes...
  EXPECT_EQ(cache.lookupOrJoin(d, noReady()).role, Role::Owner);
  // ...and the sweeper reclaims the rest without being looked up.
  cache.sweep();
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
  EXPECT_DOUBLE_EQ(obs::gauge("server.cache.bytes").value(), 0.0);
}

TEST(ResultCache, HitAndMissCountersTrackLookups) {
  ResultCache cache({1 << 20, 0.0});
  const double hits0 = obs::counter("server.cache.hits").value();
  const double misses0 = obs::counter("server.cache.misses").value();

  const Digest d = ResultCache::digestOf(bytesOf("counted"));
  ASSERT_EQ(cache.lookupOrJoin(d, noReady()).role, Role::Owner);
  cache.fulfill(d, payloadOf("v"), true);
  ASSERT_EQ(cache.lookupOrJoin(d, noReady()).role, Role::Hit);
  ASSERT_EQ(cache.lookupOrJoin(d, noReady()).role, Role::Hit);

  EXPECT_DOUBLE_EQ(obs::counter("server.cache.hits").value() - hits0, 2.0);
  EXPECT_DOUBLE_EQ(obs::counter("server.cache.misses").value() - misses0,
                   1.0);
}

TEST(ResultCache, ParallelMixedDigestsKeepSingleFlightInvariant) {
  // 8 threads x 64 rounds over 4 digests: every digest must see exactly
  // one Owner per computed generation, and every waiter must observe the
  // owner's payload (never a torn or foreign one).
  ResultCache cache({1 << 20, 0.0});
  constexpr int kThreads = 8;
  constexpr int kDigests = 4;
  std::atomic<int> owners{0};
  std::atomic<int> mismatches{0};
  std::vector<Digest> digests;
  for (int i = 0; i < kDigests; ++i) {
    digests.push_back(
        ResultCache::digestOf(bytesOf(("key" + std::to_string(i)).c_str())));
  }
  std::vector<Payload> replies;
  for (int i = 0; i < kDigests; ++i) {
    replies.push_back(payloadOf(("reply" + std::to_string(i)).c_str()));
  }

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < 64; ++round) {
        const int i = round % kDigests;
        auto check = [&, i](const Payload& p) {
          if (!p || p->size() != replies[i]->size() ||
              !std::equal(p->begin(), p->end(), replies[i]->begin())) {
            mismatches.fetch_add(1);
          }
        };
        auto r = cache.lookupOrJoin(digests[i], check);
        if (r.role == Role::Owner) {
          owners.fetch_add(1);
          cache.fulfill(digests[i], replies[i], true);
        } else if (r.role == Role::Hit) {
          check(r.payload);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
  // Nothing expires and nothing is evicted, so each digest was computed
  // exactly once no matter how the threads interleaved.
  EXPECT_EQ(owners.load(), kDigests);
  EXPECT_EQ(cache.entries(), static_cast<std::size_t>(kDigests));
}

}  // namespace
}  // namespace ninf::server
