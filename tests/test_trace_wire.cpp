// Cross-process trace propagation over the wire: the v2 trace-context
// extension must carry (trace_id, parent_span) from client to server —
// and through the metaserver — so server-side spans join the client's
// trace tree; must vanish cleanly on v1 and on untraced negotiation;
// must never attach a span to the wrong trace under injected faults;
// and the multi-process merge must emit valid Chrome trace JSON.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "client/client.h"
#include "common/error.h"
#include "metaserver/metaserver.h"
#include "numlib/matrix.h"
#include "numlib/mmul.h"
#include "obs/export.h"
#include "obs/trace.h"
#include "protocol/message.h"
#include "server/registry.h"
#include "server/server.h"
#include "transport/fault_injection.h"
#include "transport/tcp_transport.h"

namespace ninf {
namespace {

using client::CallOptions;
using client::NinfClient;
using protocol::ArgValue;
using transport::FaultPlan;
using transport::FaultSpec;

class TracerGuard {
 public:
  TracerGuard() {
    obs::Tracer::instance().clear();
    obs::Tracer::instance().setEnabled(true);
  }
  ~TracerGuard() {
    obs::Tracer::instance().setEnabled(false);
    obs::Tracer::instance().clear();
  }
};

const obs::SpanRecord* findSpan(const std::vector<obs::SpanRecord>& spans,
                                const std::string& name) {
  for (const auto& s : spans) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::vector<const obs::SpanRecord*> findSpans(
    const std::vector<obs::SpanRecord>& spans, const std::string& name) {
  std::vector<const obs::SpanRecord*> out;
  for (const auto& s : spans) {
    if (s.name == name) out.push_back(&s);
  }
  return out;
}

/// One real TCP server shared by the propagation tests.  Client and
/// server live in this process, so one drain() sees both sides.
class TraceWire : public ::testing::Test {
 protected:
  void SetUp() override {
    server::registerStandardExecutables(registry_);
    server_.emplace(registry_, server::ServerOptions{.workers = 2});
    listener_ = std::make_shared<transport::TcpListener>(0);
    port_ = listener_->port();
    server().start(listener_);
  }

  void TearDown() override { server().stop(); }

  std::unique_ptr<transport::Stream> connect() {
    return transport::tcpConnect("127.0.0.1", port_);
  }

  /// dmmul n=6 through `client`, result checked against local compute.
  /// `salt` varies the inputs: dmmul is Idempotent, so byte-identical
  /// repeats are served from the server's result cache without a compute
  /// (or queue-wait) span — callers that need a fresh compute per call
  /// must perturb the arguments.
  void checkedCall(NinfClient& client, const CallOptions& opts = {},
                   int salt = 0) {
    const std::size_t n = 6;
    const numlib::Matrix a = numlib::randomMatrix(n, 7 + 2 * salt);
    const numlib::Matrix b = numlib::randomMatrix(n, 8 + 2 * salt);
    const numlib::Matrix expected = numlib::dmmul(a, b);
    std::vector<double> c(n * n, -1.0);
    std::vector<ArgValue> args = {
        ArgValue::inInt(static_cast<std::int64_t>(n)),
        ArgValue::inArray(a.flat()), ArgValue::inArray(b.flat()),
        ArgValue::outArray(c)};
    client.call("dmmul", args, opts);
    for (std::size_t i = 0; i < c.size(); ++i) {
      ASSERT_NEAR(c[i], expected.flat()[i], 1e-12);
    }
  }

  server::Registry registry_;
  // Engaged in SetUp() for the whole test lifetime; the accessor
  // keeps the one unchecked dereference in a single audited place.
  // NOLINTNEXTLINE(bugprone-unchecked-optional-access)
  server::NinfServer& server() { return *server_; }
  std::optional<server::NinfServer> server_;
  std::shared_ptr<transport::TcpListener> listener_;
  std::uint16_t port_ = 0;
};

TEST_F(TraceWire, PropagatesClientToServer) {
  TracerGuard guard;
  NinfClient client(connect());
  checkedCall(client);
  EXPECT_TRUE(client.channel().tracePropagationNegotiated());
  client.close();

  const auto spans = obs::Tracer::instance().drain();
  const auto* call = findSpan(spans, "call");
  const auto* queue_wait = findSpan(spans, "server.queue-wait");
  const auto* compute = findSpan(spans, "server.compute");
  ASSERT_NE(call, nullptr);
  ASSERT_NE(queue_wait, nullptr);
  ASSERT_NE(compute, nullptr);

  // The server-side spans joined the client's trace as children of the
  // call span: that is the propagated context, not ambient state — the
  // server recorded them on its own worker thread.
  EXPECT_NE(call->trace_id, 0u);
  EXPECT_EQ(queue_wait->trace_id, call->trace_id);
  EXPECT_EQ(compute->trace_id, call->trace_id);
  EXPECT_EQ(queue_wait->parent_id, call->span_id);
  EXPECT_EQ(compute->parent_id, call->span_id);

  // Both sides tag the same v2 call id (satellite: call_id correlation).
  EXPECT_NE(call->call_id, 0u);
  EXPECT_EQ(compute->call_id, call->call_id);
  EXPECT_EQ(queue_wait->call_id, call->call_id);
}

TEST_F(TraceWire, PropagatesThroughMetaserver) {
  TracerGuard guard;
  metaserver::Metaserver meta;
  meta.addServer({.name = "worker", .factory = [this] {
                    return std::make_unique<NinfClient>(connect());
                  }});

  const std::size_t n = 6;
  const numlib::Matrix a = numlib::randomMatrix(n, 9);
  const numlib::Matrix b = numlib::randomMatrix(n, 10);
  std::vector<double> c(n * n, -1.0);
  std::vector<ArgValue> args = {
      ArgValue::inInt(static_cast<std::int64_t>(n)),
      ArgValue::inArray(a.flat()), ArgValue::inArray(b.flat()),
      ArgValue::outArray(c)};
  meta.dispatch("dmmul", args);

  const auto spans = obs::Tracer::instance().drain();
  const auto* dispatch = findSpan(spans, "dispatch");
  const auto* call = findSpan(spans, "call");
  const auto* compute = findSpan(spans, "server.compute");
  ASSERT_NE(dispatch, nullptr);
  ASSERT_NE(call, nullptr);
  ASSERT_NE(compute, nullptr);

  // dispatch is the root; the session-layer call nests under it; the
  // server's compute span crosses the wire into the same trace, hanging
  // off the call span.
  EXPECT_EQ(dispatch->parent_id, 0u);
  EXPECT_NE(dispatch->trace_id, 0u);
  EXPECT_EQ(call->trace_id, dispatch->trace_id);
  EXPECT_EQ(compute->trace_id, dispatch->trace_id);
  EXPECT_EQ(compute->parent_id, call->span_id);
}

TEST_F(TraceWire, V1FallbackDropsContextCleanly) {
  TracerGuard guard;
  NinfClient client(connect(), /*force_v1=*/true);
  checkedCall(client);
  EXPECT_FALSE(client.channel().tracePropagationNegotiated());
  client.close();

  // The v1 wire has no header room for trace context; the call must
  // still work and the server's spans simply stay out of the client's
  // trace instead of attaching to a bogus one.
  const auto spans = obs::Tracer::instance().drain();
  const auto* call = findSpan(spans, "call");
  ASSERT_NE(call, nullptr);
  EXPECT_NE(call->trace_id, 0u);
  for (const auto* s : findSpans(spans, "server.compute")) {
    EXPECT_NE(s->trace_id, call->trace_id);
  }
}

TEST_F(TraceWire, UntracedNegotiationKeepsCompactFraming) {
  // Negotiate while the tracer is disabled: the client must not
  // advertise the extension, so the connection stays on 24-byte v2
  // framing even if tracing turns on later (framing is fixed per
  // connection at negotiation).
  obs::Tracer::instance().setEnabled(false);
  obs::Tracer::instance().clear();
  NinfClient client(connect());
  checkedCall(client);
  EXPECT_FALSE(client.channel().tracePropagationNegotiated());

  TracerGuard guard;  // tracing on, same connection
  checkedCall(client);
  EXPECT_FALSE(client.channel().tracePropagationNegotiated());
  client.close();

  const auto spans = obs::Tracer::instance().drain();
  const auto* call = findSpan(spans, "call");
  ASSERT_NE(call, nullptr);
  for (const auto* s : findSpans(spans, "server.compute")) {
    EXPECT_NE(s->trace_id, call->trace_id);
  }
}

TEST_F(TraceWire, ChaosNeverAttachesWrongTrace) {
  TracerGuard guard;
  FaultSpec spec;
  spec.reset = 0.15;
  spec.delay = 0.2;
  spec.delay_min_ms = 0.05;
  spec.delay_max_ms = 0.5;
  auto plan = std::make_shared<FaultPlan>(42, spec);

  NinfClient client(transport::wrapFaulty(connect(), plan));
  client.setReconnect([this, plan] {
    transport::checkConnectFault(*plan, "trace chaos server");
    return transport::wrapFaulty(connect(), plan);
  });

  CallOptions opts;
  opts.deadline_seconds = 5.0;
  opts.retries = 6;
  opts.backoff_seconds = 0.002;
  for (int round = 0; round < 20; ++round) {
    try {
      // Distinct inputs per round keep server-side computes flowing
      // (identical rounds would all be idempotent-cache hits after the
      // first); retries *within* a round stay byte-identical, so the
      // cache still sees the chaos-driven resends.
      checkedCall(client, opts, round);
    } catch (const Error&) {
      // Faults may kill a call; the invariant below still holds.
    }
  }
  client.close();

  // Attachment invariant: a server span that claims a foreign parent
  // must have that parent recorded client-side in the same trace.
  // Resets may drop the context entirely — the span then starts its own
  // trace (parent 0), which is the clean degradation (a reset during
  // Hello even falls the whole connection back to v1) — but a span must
  // never splice into someone else's trace.
  const auto spans = obs::Tracer::instance().drain();
  std::size_t attached = 0;
  for (const auto& s : spans) {
    if (s.name != "server.compute" && s.name != "server.queue-wait") {
      continue;
    }
    if (s.trace_id == 0 || s.parent_id == 0) continue;  // clean drop
    bool parent_found = false;
    for (const auto& p : spans) {
      if (p.span_id == s.parent_id) {
        EXPECT_EQ(p.trace_id, s.trace_id)
            << "span '" << s.name << "' attached across traces";
        parent_found = true;
      }
    }
    EXPECT_TRUE(parent_found)
        << "span '" << s.name << "' claims trace " << s.trace_id
        << " but its parent " << s.parent_id << " was never recorded";
    ++attached;
  }
  // The fault mix leaves most calls succeeding, so propagation must
  // actually have happened — this guards against silently losing the
  // extension under faults and passing vacuously.
  EXPECT_GT(attached, 0u);
}

TEST_F(TraceWire, MergedDumpIsValidChromeTraceJson) {
  TracerGuard guard;
  NinfClient client(connect());
  checkedCall(client);
  client.close();
  const auto spans = obs::Tracer::instance().drain();
  ASSERT_FALSE(spans.empty());

  // Split the drained spans into two pseudo-processes with epochs 1 ms
  // apart, as two TraceSession files would record them.
  std::vector<obs::ProcessTrace> inputs(2);
  inputs[0].label = "client";
  inputs[0].epoch_unix_us = 1'000'000;
  inputs[1].label = "server";
  inputs[1].epoch_unix_us = 1'001'000;
  for (const auto& s : spans) {
    const bool server_side = s.name.rfind("server.", 0) == 0;
    inputs[server_side ? 1 : 0].spans.push_back(s);
  }
  ASSERT_FALSE(inputs[0].spans.empty());
  ASSERT_FALSE(inputs[1].spans.empty());

  const std::string merged = obs::mergeChromeTraces(inputs);

  // Structurally valid Chrome trace: an object with a traceEvents array
  // whose entries all carry ph/pid/name, including one process_name
  // metadata row per input.
  const obs::json::Value root = obs::json::parse(merged);
  ASSERT_EQ(root.type, obs::json::Value::Type::Object);
  const auto* events = root.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->type, obs::json::Value::Type::Array);
  std::size_t meta_rows = 0;
  for (const auto& ev : events->array) {
    ASSERT_EQ(ev.type, obs::json::Value::Type::Object);
    for (const char* key : {"name", "ph", "pid"}) {
      EXPECT_NE(ev.find(key), nullptr) << "event missing \"" << key << "\"";
    }
    const auto* ph = ev.find("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->string == "M") ++meta_rows;
  }
  EXPECT_EQ(meta_rows, inputs.size());

  // The span payload round-trips, with the second process's timestamps
  // shifted by the 1 ms epoch gap so the lanes align on one clock.
  const auto parsed = obs::parseChromeTrace(merged);
  ASSERT_EQ(parsed.size(), spans.size());
  const auto* before = findSpan(spans, "server.compute");
  const auto* after = findSpan(parsed, "server.compute");
  ASSERT_NE(before, nullptr);
  ASSERT_NE(after, nullptr);
  EXPECT_NEAR(after->start_us, before->start_us + 1000.0, 0.5);
  EXPECT_EQ(after->trace_id, before->trace_id);
  EXPECT_EQ(after->call_id, before->call_id);
}

}  // namespace
}  // namespace ninf
