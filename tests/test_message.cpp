// Protocol framing over an in-process transport.
#include <gtest/gtest.h>

#include <thread>

#include "common/error.h"
#include "protocol/message.h"
#include "transport/inproc_transport.h"
#include "xdr/xdr.h"

namespace ninf::protocol {
namespace {

TEST(Message, RoundTripOverInproc) {
  auto [a, b] = transport::inprocPair();
  xdr::Encoder enc;
  enc.putString("dmmul");
  sendMessage(*a, MessageType::QueryInterface, enc.bytes());

  const Message msg = recvMessage(*b);
  EXPECT_EQ(msg.type, MessageType::QueryInterface);
  xdr::Decoder dec(msg.payload);
  EXPECT_EQ(dec.getString(), "dmmul");
}

TEST(Message, EmptyPayload) {
  auto [a, b] = transport::inprocPair();
  sendMessage(*a, MessageType::ListExecutables,
              std::span<const std::uint8_t>{});
  const Message msg = recvMessage(*b);
  EXPECT_EQ(msg.type, MessageType::ListExecutables);
  EXPECT_TRUE(msg.payload.empty());
}

TEST(Message, StreamedSendMatchesContiguousWireFormat) {
  // The scatter-gather pipeline must be byte-identical on the wire to the
  // legacy contiguous path.
  std::vector<double> big(5000);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<double>(i) * 0.25 - 7.0;
  }
  xdr::Encoder streamed;
  streamed.putString("payload");
  streamed.putDoubleArrayRef(big);  // borrowed
  streamed.putU32(0xCAFEF00D);

  xdr::Encoder contiguous;
  contiguous.putString("payload");
  contiguous.putDoubleArray(big);  // copied
  contiguous.putU32(0xCAFEF00D);

  auto [a, b] = transport::inprocPair();
  sendMessage(*a, MessageType::Ping, streamed);
  const Message msg = recvMessage(*b);
  EXPECT_EQ(msg.type, MessageType::Ping);
  EXPECT_EQ(msg.payload, contiguous.bytes());
}

TEST(Message, HeaderPlusBodyReaderRoundTrip) {
  auto [a, b] = transport::inprocPair();
  std::vector<double> values(3000, 1.5);
  xdr::Encoder enc;
  enc.putU32(42);
  enc.putDoubleArrayRef(values);
  sendMessage(*a, MessageType::CallRequest, enc);

  const FrameHeader header = recvHeader(*b);
  EXPECT_EQ(header.type, MessageType::CallRequest);
  EXPECT_EQ(header.length, enc.size());
  BodyReader body(*b, header.length);
  EXPECT_EQ(body.getU32(), 42u);
  std::vector<double> out(values.size());
  body.getDoubleArrayInto(out);
  EXPECT_TRUE(body.atEnd());
  EXPECT_EQ(out, values);
}

TEST(Message, BodyReaderDrainKeepsFramingAligned) {
  auto [a, b] = transport::inprocPair();
  std::vector<double> values(2000, 3.25);
  xdr::Encoder enc;
  enc.putDoubleArrayRef(values);
  sendMessage(*a, MessageType::CallRequest, enc);
  xdr::Encoder follow;
  follow.putU32(7);
  sendMessage(*a, MessageType::Ping, follow.bytes());

  FrameHeader header = recvHeader(*b);
  BodyReader body(*b, header.length);
  body.drain();  // skip the whole call body
  const Message next = recvMessage(*b);
  EXPECT_EQ(next.type, MessageType::Ping);
  xdr::Decoder dec(next.payload);
  EXPECT_EQ(dec.getU32(), 7u);
}

TEST(Message, BodyReaderUnderflowThrowsProtocolError) {
  auto [a, b] = transport::inprocPair();
  xdr::Encoder enc;
  enc.putU32(1);
  sendMessage(*a, MessageType::CallRequest, enc.bytes());
  FrameHeader header = recvHeader(*b);
  BodyReader body(*b, header.length);
  EXPECT_EQ(body.getU32(), 1u);
  EXPECT_THROW(body.getU32(), ProtocolError);  // past the declared body
}

TEST(Message, SequencedMessagesArriveInOrder) {
  auto [a, b] = transport::inprocPair();
  for (std::uint32_t i = 0; i < 10; ++i) {
    xdr::Encoder enc;
    enc.putU32(i);
    sendMessage(*a, MessageType::Ping, enc.bytes());
  }
  for (std::uint32_t i = 0; i < 10; ++i) {
    const Message msg = recvMessage(*b);
    xdr::Decoder dec(msg.payload);
    EXPECT_EQ(dec.getU32(), i);
  }
}

TEST(Message, BadMagicRejected) {
  auto [a, b] = transport::inprocPair();
  const std::uint8_t junk[16] = {1, 2, 3, 4};
  a->sendAll(junk);
  EXPECT_THROW(recvMessage(*b), ProtocolError);
}

TEST(Message, BadVersionRejected) {
  auto [a, b] = transport::inprocPair();
  xdr::Encoder header;
  header.putU32(kMagic);
  header.putU32(kVersion + 1);
  header.putU32(static_cast<std::uint32_t>(MessageType::Ping));
  header.putU32(0);
  a->sendAll(header.bytes());
  EXPECT_THROW(recvMessage(*b), ProtocolError);
}

TEST(Message, UnknownTypeRejected) {
  auto [a, b] = transport::inprocPair();
  xdr::Encoder header;
  header.putU32(kMagic);
  header.putU32(kVersion);
  header.putU32(9999);
  header.putU32(0);
  a->sendAll(header.bytes());
  EXPECT_THROW(recvMessage(*b), ProtocolError);
}

TEST(Message, OversizedLengthRejected) {
  auto [a, b] = transport::inprocPair();
  xdr::Encoder header;
  header.putU32(kMagic);
  header.putU32(kVersion);
  header.putU32(static_cast<std::uint32_t>(MessageType::Ping));
  header.putU32(kMaxPayload + 1);
  a->sendAll(header.bytes());
  EXPECT_THROW(recvMessage(*b), ProtocolError);
}

TEST(Message, PeerCloseSurfacesAsTransportError) {
  auto [a, b] = transport::inprocPair();
  a->close();
  EXPECT_THROW(recvMessage(*b), TransportError);
}

TEST(ServerStatusInfo, RoundTrip) {
  ServerStatusInfo info;
  info.running = 3;
  info.queued = 5;
  info.completed = 123456789;
  info.load_average = 2.75;
  const ServerStatusInfo decoded = ServerStatusInfo::fromBytes(info.toBytes());
  EXPECT_EQ(decoded.running, 3u);
  EXPECT_EQ(decoded.queued, 5u);
  EXPECT_EQ(decoded.completed, 123456789u);
  EXPECT_DOUBLE_EQ(decoded.load_average, 2.75);
}

}  // namespace
}  // namespace ninf::protocol
