# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/tests/test_stats[1]_include.cmake")
include("/root/repo/tests/test_table[1]_include.cmake")
include("/root/repo/tests/test_rng[1]_include.cmake")
include("/root/repo/tests/test_thread_pool[1]_include.cmake")
include("/root/repo/tests/test_xdr[1]_include.cmake")
include("/root/repo/tests/test_expr[1]_include.cmake")
include("/root/repo/tests/test_idl[1]_include.cmake")
include("/root/repo/tests/test_matrix[1]_include.cmake")
include("/root/repo/tests/test_blas[1]_include.cmake")
include("/root/repo/tests/test_lu[1]_include.cmake")
include("/root/repo/tests/test_mmul[1]_include.cmake")
include("/root/repo/tests/test_ep[1]_include.cmake")
include("/root/repo/tests/test_message[1]_include.cmake")
include("/root/repo/tests/test_call_marshal[1]_include.cmake")
include("/root/repo/tests/test_transport[1]_include.cmake")
include("/root/repo/tests/test_job_queue[1]_include.cmake")
include("/root/repo/tests/test_registry[1]_include.cmake")
include("/root/repo/tests/test_server_client[1]_include.cmake")
include("/root/repo/tests/test_transaction[1]_include.cmake")
include("/root/repo/tests/test_metaserver[1]_include.cmake")
include("/root/repo/tests/test_simcore[1]_include.cmake")
include("/root/repo/tests/test_simnet[1]_include.cmake")
include("/root/repo/tests/test_machine[1]_include.cmake")
include("/root/repo/tests/test_scenario[1]_include.cmake")
include("/root/repo/tests/test_stub_generator[1]_include.cmake")
include("/root/repo/tests/test_async[1]_include.cmake")
include("/root/repo/tests/test_sim_server[1]_include.cmake")
include("/root/repo/tests/test_property_roundtrip[1]_include.cmake")
