// ExprProgram: evaluation, validation, serialization — the "interpretable
// code" shipped to clients in the two-stage RPC.
#include <gtest/gtest.h>

#include "common/error.h"
#include "idl/expr.h"

namespace ninf::idl {
namespace {

ExprProgram prog(std::vector<Instruction> code) {
  return ExprProgram(std::move(code));
}

TEST(Expr, ConstantEvaluates) {
  EXPECT_EQ(ExprProgram::constant(42).evaluate({}), 42);
}

TEST(Expr, ArgumentLookup) {
  const std::int64_t args[] = {10, 20, 30};
  EXPECT_EQ(ExprProgram::argument(1).evaluate(args), 20);
}

TEST(Expr, NSquaredPlusTwoN) {
  // n*n + 2*n with n = args[0]
  auto p = prog({{Op::PushArg, 0},
                 {Op::PushArg, 0},
                 {Op::Mul, 0},
                 {Op::PushConst, 2},
                 {Op::PushArg, 0},
                 {Op::Mul, 0},
                 {Op::Add, 0}});
  const std::int64_t args[] = {7};
  EXPECT_EQ(p.evaluate(args), 49 + 14);
}

TEST(Expr, SubtractionOrderIsLeftMinusRight) {
  auto p = prog({{Op::PushConst, 10}, {Op::PushConst, 3}, {Op::Sub, 0}});
  EXPECT_EQ(p.evaluate({}), 7);
}

TEST(Expr, IntegerDivision) {
  auto p = prog({{Op::PushConst, 7}, {Op::PushConst, 2}, {Op::Div, 0}});
  EXPECT_EQ(p.evaluate({}), 3);
}

TEST(Expr, DivisionByZeroThrows) {
  auto p = prog({{Op::PushConst, 1}, {Op::PushConst, 0}, {Op::Div, 0}});
  EXPECT_THROW(p.evaluate({}), ProtocolError);
}

TEST(Expr, PowerEvaluates) {
  auto p = prog({{Op::PushArg, 0}, {Op::PushConst, 3}, {Op::Pow, 0}});
  const std::int64_t args[] = {5};
  EXPECT_EQ(p.evaluate(args), 125);
}

TEST(Expr, PowerZeroExponentIsOne) {
  auto p = prog({{Op::PushConst, 9}, {Op::PushConst, 0}, {Op::Pow, 0}});
  EXPECT_EQ(p.evaluate({}), 1);
}

TEST(Expr, NegativeExponentThrows) {
  auto p = prog({{Op::PushConst, 2}, {Op::PushConst, -1}, {Op::Pow, 0}});
  EXPECT_THROW(p.evaluate({}), ProtocolError);
}

TEST(Expr, ArgumentOutOfRangeThrows) {
  EXPECT_THROW(ExprProgram::argument(3).evaluate({}), ProtocolError);
}

TEST(Expr, StackUnderflowThrows) {
  auto p = prog({{Op::Add, 0}});
  EXPECT_THROW(p.evaluate({}), ProtocolError);
}

TEST(Expr, UnbalancedStackThrows) {
  auto p = prog({{Op::PushConst, 1}, {Op::PushConst, 2}});
  EXPECT_THROW(p.evaluate({}), ProtocolError);
}

TEST(Expr, ValidateAcceptsWellFormed) {
  auto p = prog({{Op::PushArg, 0}, {Op::PushArg, 1}, {Op::Mul, 0}});
  EXPECT_TRUE(p.validate(2));
  EXPECT_FALSE(p.validate(1));  // arg 1 out of range
}

TEST(Expr, ValidateRejectsUnderflowAndLeftovers) {
  EXPECT_FALSE(prog({{Op::Add, 0}}).validate(0));
  EXPECT_FALSE(prog({{Op::PushConst, 1}, {Op::PushConst, 2}}).validate(0));
  EXPECT_FALSE(ExprProgram().validate(0));  // empty yields nothing
}

TEST(Expr, XdrRoundTrip) {
  auto p = prog({{Op::PushArg, 0},
                 {Op::PushConst, 8},
                 {Op::Mul, 0},
                 {Op::PushConst, 20},
                 {Op::Add, 0}});
  xdr::Encoder enc;
  p.encode(enc);
  xdr::Decoder dec(enc.bytes());
  EXPECT_EQ(ExprProgram::decode(dec), p);
  EXPECT_TRUE(dec.atEnd());
}

TEST(Expr, DecodeRejectsBadOpcode) {
  xdr::Encoder enc;
  enc.putU32(1);
  enc.putU32(250);  // no such opcode
  enc.putI64(0);
  xdr::Decoder dec(enc.bytes());
  EXPECT_THROW(ExprProgram::decode(dec), ProtocolError);
}

TEST(Expr, ToStringRendersInfix) {
  auto p = prog({{Op::PushArg, 0}, {Op::PushArg, 0}, {Op::Mul, 0}});
  const std::string names[] = {"n"};
  EXPECT_EQ(p.toString(names), "(n*n)");
}

}  // namespace
}  // namespace ninf::idl
