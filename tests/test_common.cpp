// Error hierarchy and logger basics.
#include <gtest/gtest.h>

#include "common/error.h"
#include "common/log.h"

namespace ninf {
namespace {

TEST(Error, HierarchyAndMessages) {
  // Every domain error is a ninf::Error is a std::runtime_error, and the
  // category prefix survives (operators grep logs for these).
  const ProtocolError protocol("bad frame");
  EXPECT_NE(std::string(protocol.what()).find("protocol: bad frame"),
            std::string::npos);
  const TransportError transport("peer gone");
  EXPECT_NE(std::string(transport.what()).find("transport:"),
            std::string::npos);
  const NotFoundError missing("dmmul");
  EXPECT_NE(std::string(missing.what()).find("not found:"),
            std::string::npos);
  const RemoteError remote("singular");
  EXPECT_NE(std::string(remote.what()).find("remote:"), std::string::npos);
  const IdlError idl("syntax");
  EXPECT_NE(std::string(idl.what()).find("idl:"), std::string::npos);

  const Error* base = &protocol;
  EXPECT_NE(dynamic_cast<const std::runtime_error*>(base), nullptr);
}

TEST(Error, CatchableAsBase) {
  bool caught = false;
  try {
    throw NotFoundError("x");
  } catch (const Error&) {
    caught = true;
  }
  EXPECT_TRUE(caught);
}

TEST(Error, RequireThrowsLogicError) {
  EXPECT_THROW(NINF_REQUIRE(false, "must hold"), std::logic_error);
  EXPECT_NO_THROW(NINF_REQUIRE(true, "fine"));
  try {
    NINF_REQUIRE(1 == 2, "math broke");
    FAIL();
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("math broke"), std::string::npos);
  }
}

TEST(Log, LevelGateIsRespected) {
  const LogLevel before = logLevel();
  setLogLevel(LogLevel::Error);
  EXPECT_EQ(logLevel(), LogLevel::Error);
  // Below-threshold messages must not evaluate their stream arguments.
  bool evaluated = false;
  auto touch = [&evaluated] {
    evaluated = true;
    return "payload";
  };
  NINF_LOG(Debug) << touch();
  EXPECT_FALSE(evaluated);
  setLogLevel(before);
}

TEST(Log, AboveThresholdEvaluates) {
  const LogLevel before = logLevel();
  setLogLevel(LogLevel::Debug);
  bool evaluated = false;
  auto touch = [&evaluated] {
    evaluated = true;
    return "payload";
  };
  NINF_LOG(Error) << touch();
  EXPECT_TRUE(evaluated);
  setLogLevel(before);
}

}  // namespace
}  // namespace ninf
