// Cross-traffic generator: determinism per seed and real contention.
#include <gtest/gtest.h>

#include "simcore/simulation.h"
#include "simnet/cross_traffic.h"
#include "simnet/network.h"

namespace ninf::simnet {
namespace {

using simcore::Process;
using simcore::Simulation;

struct World {
  Simulation sim;
  Network net{sim};
  NodeId a, b, other;

  World() {
    a = net.addNode("a");
    b = net.addNode("b");
    other = net.addNode("other");
    net.addLink(a, b, 1e6, 0.0);
    net.addLink(other, a, 1e6, 0.0);
  }
};

Process timedTransfer(Simulation& sim, Network& net, NodeId src, NodeId dst,
                      double bytes, double& done) {
  co_await net.transfer(src, dst, bytes);
  done = sim.now();
}

TEST(CrossTraffic, ContendsWithForegroundFlows) {
  double quiet_done = -1, busy_done = -1;
  {
    World w;
    timedTransfer(w.sim, w.net, w.a, w.b, 5e6, quiet_done);
    w.sim.run();
  }
  {
    World w;
    CrossTrafficConfig cfg;
    cfg.src = w.other;
    cfg.dst = w.b;
    cfg.mean_interarrival = 0.5;
    cfg.mean_bytes = 1e6;
    cfg.end_time = 100.0;
    cfg.seed = 9;
    startCrossTraffic(w.sim, w.net, cfg);
    timedTransfer(w.sim, w.net, w.a, w.b, 5e6, busy_done);
    w.sim.run();
  }
  EXPECT_NEAR(quiet_done, 5.0, 1e-6);
  EXPECT_GT(busy_done, quiet_done * 1.3);  // background flows slowed us
}

TEST(CrossTraffic, DeterministicPerSeed) {
  auto run = [](std::uint64_t seed) {
    World w;
    CrossTrafficConfig cfg;
    cfg.src = w.other;
    cfg.dst = w.b;
    cfg.mean_interarrival = 1.0;
    cfg.mean_bytes = 5e5;
    cfg.end_time = 50.0;
    cfg.seed = seed;
    startCrossTraffic(w.sim, w.net, cfg);
    double done = -1;
    timedTransfer(w.sim, w.net, w.a, w.b, 5e6, done);
    w.sim.run();
    return done;
  };
  EXPECT_DOUBLE_EQ(run(3), run(3));
  EXPECT_NE(run(3), run(4));
}

TEST(CrossTraffic, StopsAtEndTime) {
  World w;
  CrossTrafficConfig cfg;
  cfg.src = w.other;
  cfg.dst = w.b;
  cfg.mean_interarrival = 0.2;
  cfg.mean_bytes = 1e4;
  cfg.end_time = 10.0;
  cfg.seed = 1;
  startCrossTraffic(w.sim, w.net, cfg);
  w.sim.run();
  // All injected flows drain shortly after the horizon.
  EXPECT_LT(w.sim.now(), 20.0);
  EXPECT_EQ(w.net.activeFlows(), 0u);
}

TEST(CrossTraffic, RejectsBadConfig) {
  World w;
  CrossTrafficConfig cfg;
  cfg.src = w.other;
  cfg.dst = w.b;
  cfg.end_time = 0.0;  // missing horizon
  EXPECT_THROW(startCrossTraffic(w.sim, w.net, cfg), std::logic_error);
}

}  // namespace
}  // namespace ninf::simnet
