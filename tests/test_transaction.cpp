// Transactions: dependency inference from argument memory and
// dependency-respecting parallel execution (sections 2.2, 2.4).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "client/dispatcher.h"
#include "client/transaction.h"
#include "common/error.h"

namespace ninf::client {
namespace {

using protocol::ArgValue;

/// Dispatcher that records execution order without any server.
class RecordingDispatcher : public CallDispatcher {
 public:
  CallResult dispatch(const std::string& name,
                      std::span<const ArgValue>) override {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      order_.push_back(name);
      ++active_;
      max_active_ = std::max(max_active_, active_);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
    }
    return {};
  }

  std::vector<std::string> order() {
    std::lock_guard<std::mutex> lock(mutex_);
    return order_;
  }
  int maxActive() {
    std::lock_guard<std::mutex> lock(mutex_);
    return max_active_;
  }

 private:
  std::mutex mutex_;
  std::vector<std::string> order_;
  int active_ = 0;
  int max_active_ = 0;
};

std::size_t indexOf(const std::vector<std::string>& v, const std::string& s) {
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (v[i] == s) return i;
  }
  return v.size();
}

TEST(Transaction, IndependentCallsHaveNoEdges) {
  std::vector<double> a(4), b(4);
  Transaction tx;
  tx.add("f", {ArgValue::inInt(2), ArgValue::outArray(a)});
  tx.add("g", {ArgValue::inInt(2), ArgValue::outArray(b)});
  EXPECT_TRUE(tx.dependencyEdges().empty());
}

TEST(Transaction, ReadAfterWriteEdge) {
  std::vector<double> a(4), b(4);
  Transaction tx;
  tx.add("producer", {ArgValue::outArray(a)});
  tx.add("consumer", {ArgValue::inArray(a), ArgValue::outArray(b)});
  const auto edges = tx.dependencyEdges();
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0], (std::pair<std::size_t, std::size_t>{0, 1}));
}

TEST(Transaction, WriteAfterReadAndWriteAfterWriteEdges) {
  std::vector<double> a(4);
  Transaction war;
  war.add("reader", {ArgValue::inArray(a)});
  war.add("writer", {ArgValue::outArray(a)});
  EXPECT_EQ(war.dependencyEdges().size(), 1u);

  Transaction waw;
  waw.add("w1", {ArgValue::outArray(a)});
  waw.add("w2", {ArgValue::outArray(a)});
  EXPECT_EQ(waw.dependencyEdges().size(), 1u);
}

TEST(Transaction, OverlappingSubspansDetected) {
  std::vector<double> buf(10);
  std::span<double> lo(buf.data(), 6);
  std::span<double> hi(buf.data() + 4, 6);  // overlaps lo in [4, 6)
  Transaction tx;
  tx.add("w_lo", {ArgValue::outArray(lo)});
  tx.add("r_hi", {ArgValue::inArray(hi)});
  EXPECT_EQ(tx.dependencyEdges().size(), 1u);
}

TEST(Transaction, DisjointSubspansIndependent) {
  std::vector<double> buf(10);
  std::span<double> lo(buf.data(), 5);
  std::span<double> hi(buf.data() + 5, 5);
  Transaction tx;
  tx.add("w_lo", {ArgValue::outArray(lo)});
  tx.add("r_hi", {ArgValue::inArray(hi)});
  EXPECT_TRUE(tx.dependencyEdges().empty());
}

TEST(Transaction, ScalarOutSinksCarryDependencies) {
  std::int64_t count = 0;
  Transaction tx;
  tx.add("w1", {ArgValue::outInt(&count)});
  tx.add("w2", {ArgValue::outInt(&count)});
  EXPECT_EQ(tx.dependencyEdges().size(), 1u);
}

TEST(Transaction, RunRespectsDependencyOrder) {
  std::vector<double> a(4), b(4), c(4);
  RecordingDispatcher dispatcher;
  Transaction tx;
  tx.add("stage1", {ArgValue::outArray(a)});
  tx.add("stage2", {ArgValue::inArray(a), ArgValue::outArray(b)});
  tx.add("stage3", {ArgValue::inArray(b), ArgValue::outArray(c)});
  const auto results = tx.run(dispatcher);
  EXPECT_EQ(results.size(), 3u);
  const auto order = dispatcher.order();
  EXPECT_LT(indexOf(order, "stage1"), indexOf(order, "stage2"));
  EXPECT_LT(indexOf(order, "stage2"), indexOf(order, "stage3"));
}

TEST(Transaction, IndependentCallsRunConcurrently) {
  // The paper's task-parallel EP pattern: p independent Ninf_calls.
  std::vector<std::vector<double>> outs(6, std::vector<double>(2));
  RecordingDispatcher dispatcher;
  Transaction tx;
  for (auto& out : outs) {
    tx.add("ep", {ArgValue::inInt(0), ArgValue::outArray(out)});
  }
  tx.run(dispatcher);
  EXPECT_GT(dispatcher.maxActive(), 1);
}

TEST(Transaction, MaxParallelBoundsConcurrency) {
  std::vector<std::vector<double>> outs(8, std::vector<double>(2));
  RecordingDispatcher dispatcher;
  Transaction tx;
  for (auto& out : outs) {
    tx.add("ep", {ArgValue::outArray(out)});
  }
  tx.run(dispatcher, 2);
  EXPECT_LE(dispatcher.maxActive(), 2);
}

TEST(Transaction, RunClearsQueuedCalls) {
  std::vector<double> a(2);
  RecordingDispatcher dispatcher;
  Transaction tx;
  tx.add("f", {ArgValue::outArray(a)});
  tx.run(dispatcher);
  EXPECT_EQ(tx.size(), 0u);
  EXPECT_TRUE(tx.run(dispatcher).empty());
}

TEST(Transaction, DispatcherExceptionPropagates) {
  class ThrowingDispatcher : public CallDispatcher {
   public:
    CallResult dispatch(const std::string&,
                        std::span<const ArgValue>) override {
      throw RemoteError("server exploded");
    }
  };
  std::vector<double> a(2);
  ThrowingDispatcher dispatcher;
  Transaction tx;
  tx.add("f", {ArgValue::outArray(a)});
  EXPECT_THROW(tx.run(dispatcher), RemoteError);
}

}  // namespace
}  // namespace ninf::client
