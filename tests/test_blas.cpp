#include <gtest/gtest.h>

#include <vector>

#include "numlib/blas.h"
#include "numlib/matrix.h"

namespace ninf::numlib {
namespace {

TEST(Blas, Daxpy) {
  const std::vector<double> x = {1, 2, 3};
  std::vector<double> y = {10, 20, 30};
  daxpy(2.0, x, y);
  EXPECT_EQ(y, (std::vector<double>{12, 24, 36}));
}

TEST(Blas, DaxpyZeroAlphaIsNoop) {
  const std::vector<double> x = {1, 2};
  std::vector<double> y = {5, 6};
  daxpy(0.0, x, y);
  EXPECT_EQ(y, (std::vector<double>{5, 6}));
}

TEST(Blas, DaxpyLengthMismatchThrows) {
  const std::vector<double> x = {1};
  std::vector<double> y = {1, 2};
  EXPECT_THROW(daxpy(1.0, x, y), std::logic_error);
}

TEST(Blas, Ddot) {
  const std::vector<double> x = {1, 2, 3};
  const std::vector<double> y = {4, 5, 6};
  EXPECT_DOUBLE_EQ(ddot(x, y), 32.0);
}

TEST(Blas, Dscal) {
  std::vector<double> x = {1, -2, 3};
  dscal(-2.0, x);
  EXPECT_EQ(x, (std::vector<double>{-2, 4, -6}));
}

TEST(Blas, IdamaxFindsLargestMagnitude) {
  const std::vector<double> x = {1.0, -7.0, 3.0, 6.9};
  EXPECT_EQ(idamax(x), 1u);
  EXPECT_EQ(idamax(std::span<const double>{}), 0u);
}

TEST(Blas, IdamaxFirstOfTies) {
  const std::vector<double> x = {-5.0, 5.0};
  EXPECT_EQ(idamax(x), 0u);
}

TEST(Blas, DgemmAccMatchesNaive) {
  const std::size_t m = 7, n = 5, k = 6;
  Matrix a(m, k), b(k, n), c(m, n), expected(m, n);
  SplitMix64 rng(3);
  for (double& v : a.flat()) v = rng.nextDouble() - 0.5;
  for (double& v : b.flat()) v = rng.nextDouble() - 0.5;
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < m; ++i) {
      double acc = 0;
      for (std::size_t p = 0; p < k; ++p) acc += a(i, p) * b(p, j);
      expected(i, j) = acc;
    }
  }
  dgemmAcc(m, n, k, a.data(), m, b.data(), k, c.data(), m);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < m; ++i) {
      EXPECT_NEAR(c(i, j), expected(i, j), 1e-12);
    }
  }
}

TEST(Blas, DgemmAccNegativeAlphaSubtracts) {
  Matrix a(2, 2), b(2, 2), c(2, 2);
  a(0, 0) = a(1, 1) = 1.0;  // identity
  b(0, 0) = 3.0;
  b(1, 1) = 4.0;
  c(0, 0) = 10.0;
  c(1, 1) = 10.0;
  dgemmAcc(2, 2, 2, a.data(), 2, b.data(), 2, c.data(), 2, -1.0);
  EXPECT_DOUBLE_EQ(c(0, 0), 7.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 6.0);
}

TEST(Blas, DtrsmLowerUnitSolves) {
  // L = [1 0; 2 1]; B = L * X with X = [3; 4] => solve recovers X.
  Matrix l(2, 2);
  l(0, 0) = 1;
  l(1, 0) = 2;
  l(1, 1) = 1;
  std::vector<double> b = {3.0, 2.0 * 3.0 + 4.0};
  dtrsmLowerUnit(2, 1, l.data(), 2, b.data(), 2);
  EXPECT_DOUBLE_EQ(b[0], 3.0);
  EXPECT_DOUBLE_EQ(b[1], 4.0);
}

}  // namespace
}  // namespace ninf::numlib
