// LU factorizations: the three library variants of the paper (reference
// dgefa/dgesl, blocked, data-parallel) must all solve to LINPACK accuracy
// and agree with each other.
#include <gtest/gtest.h>

#include <tuple>

#include "common/error.h"
#include "numlib/linpack_driver.h"
#include "numlib/lu.h"
#include "numlib/matrix.h"

namespace ninf::numlib {
namespace {

std::vector<double> solveWith(LuVariant variant, std::size_t n,
                              std::uint64_t seed, std::size_t workers = 4) {
  Matrix a = randomMatrix(n, seed);
  std::vector<double> b = onesRhs(a);
  luSolve(a, b, variant, workers);
  return b;
}

TEST(Lu, Dgefa2x2KnownSolution) {
  Matrix a(2, 2);
  a(0, 0) = 2;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 3;
  std::vector<double> b = {5.0, 10.0};  // x = (1, 3)
  luSolve(a, b, LuVariant::Reference);
  EXPECT_NEAR(b[0], 1.0, 1e-12);
  EXPECT_NEAR(b[1], 3.0, 1e-12);
}

TEST(Lu, DgefaPivotsOnZeroDiagonal) {
  Matrix a(2, 2);
  a(0, 0) = 0;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 0;
  std::vector<double> b = {2.0, 3.0};  // x = (3, 2) after the swap
  luSolve(a, b, LuVariant::Reference);
  EXPECT_NEAR(b[0], 3.0, 1e-12);
  EXPECT_NEAR(b[1], 2.0, 1e-12);
}

TEST(Lu, SingularMatrixThrows) {
  Matrix a(2, 2);  // all zeros
  EXPECT_THROW(dgefa(a), Error);
  Matrix b(3, 3);
  b(0, 0) = 1;
  b(1, 1) = 1;  // third column all zero
  EXPECT_THROW(dgefa(b), Error);
}

TEST(Lu, NonSquareRejected) {
  Matrix a(2, 3);
  EXPECT_THROW(dgefa(a), std::logic_error);
}

TEST(Lu, EmptyMatrixIsFine) {
  Matrix a(0, 0);
  EXPECT_TRUE(dgefa(a).empty());
}

TEST(Lu, OneByOne) {
  Matrix a(1, 1);
  a(0, 0) = 4.0;
  std::vector<double> b = {8.0};
  luSolve(a, b, LuVariant::Reference);
  EXPECT_DOUBLE_EQ(b[0], 2.0);
}

TEST(Lu, VariantsAgreeBitForBitOnSolution) {
  // All three variants perform the same pivoting, so the solutions should
  // agree to rounding noise.
  const auto ref = solveWith(LuVariant::Reference, 96, 7);
  const auto blk = solveWith(LuVariant::Blocked, 96, 7);
  const auto par = solveWith(LuVariant::Parallel, 96, 7);
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_NEAR(blk[i], ref[i], 1e-8);
    EXPECT_NEAR(par[i], ref[i], 1e-8);
  }
}

TEST(Lu, BlockedHandlesSizeNotMultipleOfBlock) {
  Matrix a = randomMatrix(37, 11);
  const Matrix original = a;
  std::vector<double> b = onesRhs(a);
  const std::vector<double> rhs = b;
  const auto ipvt = luBlocked(a, 8);
  dgesl(a, ipvt, b);
  EXPECT_LT(linpackResidual(original, b, rhs), kResidualThreshold);
}

TEST(Lu, BlockSizeLargerThanMatrix) {
  Matrix a = randomMatrix(5, 13);
  const Matrix original = a;
  std::vector<double> b = onesRhs(a);
  const std::vector<double> rhs = b;
  const auto ipvt = luBlocked(a, 64);
  dgesl(a, ipvt, b);
  EXPECT_LT(linpackResidual(original, b, rhs), kResidualThreshold);
}

class LuResidualTest
    : public ::testing::TestWithParam<std::tuple<LuVariant, std::size_t>> {};

TEST_P(LuResidualTest, SolvesToLinpackAccuracy) {
  const auto [variant, n] = GetParam();
  Matrix a = randomMatrix(n, 1000 + n);
  const Matrix original = a;
  std::vector<double> b = onesRhs(a);
  const std::vector<double> rhs = b;
  luSolve(a, b, variant, 4);
  const double resid = linpackResidual(original, b, rhs);
  EXPECT_LT(resid, kResidualThreshold) << "n=" << n;
  // The generated system has solution all-ones.
  for (double x : b) EXPECT_NEAR(x, 1.0, 1e-4);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LuResidualTest,
    ::testing::Combine(::testing::Values(LuVariant::Reference,
                                         LuVariant::Blocked,
                                         LuVariant::Parallel),
                       ::testing::Values<std::size_t>(1, 2, 3, 8, 17, 33, 64,
                                                      100, 200)));

TEST(Dgeco, WellConditionedMatrixHasLargeRcond) {
  // Identity: condition number 1, rcond == 1.
  Matrix eye(8, 8);
  for (std::size_t i = 0; i < 8; ++i) eye(i, i) = 1.0;
  PivotVector ipvt;
  EXPECT_NEAR(dgeco(eye, ipvt), 1.0, 1e-12);
}

TEST(Dgeco, ScalingInvariance) {
  // rcond depends on conditioning, not scale: 1000*I is as good as I.
  Matrix a(6, 6);
  for (std::size_t i = 0; i < 6; ++i) a(i, i) = 1000.0;
  PivotVector ipvt;
  EXPECT_NEAR(dgeco(a, ipvt), 1.0, 1e-12);
}

TEST(Dgeco, IllConditionedMatrixHasSmallRcond) {
  // Diagonal with a 1e-10 spread: condition number ~1e10.
  Matrix a(4, 4);
  a(0, 0) = 1.0;
  a(1, 1) = 1.0;
  a(2, 2) = 1.0;
  a(3, 3) = 1e-10;
  PivotVector ipvt;
  const double rcond = dgeco(a, ipvt);
  EXPECT_LT(rcond, 1e-8);
  EXPECT_GT(rcond, 1e-12);
}

TEST(Dgeco, OrderingDiscriminatesConditioning) {
  // A random matrix is far better conditioned than a nearly singular one.
  Matrix good = randomMatrix(24, 5);
  Matrix bad = randomMatrix(24, 5);
  // Make two rows of `bad` nearly identical.
  for (std::size_t j = 0; j < 24; ++j) {
    bad(1, j) = bad(0, j) * (1.0 + 1e-12);
  }
  PivotVector ipvt;
  const double rcond_good = dgeco(good, ipvt);
  const double rcond_bad = dgeco(bad, ipvt);
  EXPECT_GT(rcond_good, rcond_bad * 1e3);
}

TEST(Dgeco, FactorsRemainUsableWithDgesl) {
  Matrix a = randomMatrix(16, 9);
  const Matrix original = a;
  std::vector<double> b = onesRhs(a);
  PivotVector ipvt;
  const double rcond = dgeco(a, ipvt);
  EXPECT_GT(rcond, 0.0);
  dgesl(a, ipvt, b);
  for (double xi : b) EXPECT_NEAR(xi, 1.0, 1e-6);
}

TEST(Dgeco, SingularReturnsZero) {
  Matrix a(3, 3);
  a(0, 0) = 1.0;
  a(1, 1) = 1.0;  // third column/row zero -> dgefa throws... use try
  PivotVector ipvt;
  try {
    const double rcond = dgeco(a, ipvt);
    EXPECT_EQ(rcond, 0.0);
  } catch (const Error&) {
    SUCCEED();  // exact singularity may surface from dgefa instead
  }
}

TEST(LinpackDriver, ReportsPassingRun) {
  const LinpackReport report = runLinpack(64, LuVariant::Blocked);
  EXPECT_TRUE(report.passed);
  EXPECT_GT(report.mflops, 0.0);
  EXPECT_LT(report.residual, kResidualThreshold);
  EXPECT_EQ(report.n, 64u);
}

TEST(LinpackDriver, ParallelVariantUsesWorkers) {
  const LinpackReport report = runLinpack(200, LuVariant::Parallel, 4);
  EXPECT_TRUE(report.passed);
}

}  // namespace
}  // namespace ninf::numlib
