// Machine model: perf curves, processor sharing, exclusive FCFS, and the
// utilization / load accounting behind the paper's table columns.
#include <gtest/gtest.h>

#include "machine/calibration.h"
#include "machine/machine.h"
#include "simcore/simulation.h"

namespace ninf::machine {
namespace {

using simcore::Process;
using simcore::Simulation;

MachineSpec fourPe() {
  MachineSpec spec;
  spec.name = "test-4pe";
  spec.pes = 4;
  spec.per_pe = PerfModel(1e6, 0.0);  // flat 1 Mflop/s per PE
  spec.full_machine = PerfModel(4e6, 0.0);
  return spec;
}

Process sharedJob(Simulation&, SimMachine& m, double flops, double rate,
                  double& done_at, Simulation& sim) {
  co_await m.computeShared(flops, rate);
  done_at = sim.now();
}

Process exclusiveJob(Simulation& sim, SimMachine& m, double flops,
                     double rate, double& done_at) {
  co_await m.computeExclusive(flops, rate);
  done_at = sim.now();
}

Process delayedShared(Simulation& sim, SimMachine& m, double start,
                      double flops, double rate, double& done_at) {
  co_await sim.delay(start);
  co_await m.computeShared(flops, rate);
  done_at = sim.now();
}

TEST(PerfModel, HockneyCurveShape) {
  const PerfModel pm(1e9, 1000.0);
  EXPECT_DOUBLE_EQ(pm.rateAt(1000.0), 5e8);  // half peak at n_half
  EXPECT_LT(pm.rateAt(100.0), pm.rateAt(1000.0));
  EXPECT_NEAR(pm.rateAt(1e9), 1e9, 1e6);  // approaches peak
}

TEST(PerfModel, FlatCurveWhenNHalfZero) {
  const PerfModel pm(1e7, 0.0);
  EXPECT_DOUBLE_EQ(pm.rateAt(10), 1e7);
  EXPECT_DOUBLE_EQ(pm.rateAt(10000), 1e7);
}

TEST(SimMachine, SingleSharedJobRunsAtFullRate) {
  Simulation sim;
  SimMachine m(sim, fourPe());
  double done = -1;
  sharedJob(sim, m, 2e6, 1e6, done, sim);
  sim.run();
  EXPECT_NEAR(done, 2.0, 1e-9);
  EXPECT_EQ(m.jobsCompleted(), 1u);
}

TEST(SimMachine, UpToPeJobsDoNotContend) {
  Simulation sim;
  SimMachine m(sim, fourPe());
  std::vector<double> done(4, -1);
  for (int i = 0; i < 4; ++i) sharedJob(sim, m, 1e6, 1e6, done[i], sim);
  sim.run();
  for (double d : done) EXPECT_NEAR(d, 1.0, 1e-9);
}

TEST(SimMachine, OversubscriptionDegradesToProcessorSharing) {
  Simulation sim;
  SimMachine m(sim, fourPe());
  std::vector<double> done(8, -1);
  for (int i = 0; i < 8; ++i) sharedJob(sim, m, 1e6, 1e6, done[i], sim);
  sim.run();
  // 8 jobs over 4 PEs: everyone at half speed, all done at t=2.
  for (double d : done) EXPECT_NEAR(d, 2.0, 1e-6);
}

TEST(SimMachine, DepartureSpeedsUpSurvivors) {
  Simulation sim;
  SimMachine m(sim, fourPe());
  MachineSpec one = fourPe();
  one.pes = 1;
  SimMachine m1(sim, one);
  double small = -1, big = -1;
  sharedJob(sim, m1, 1e6, 1e6, small, sim);
  sharedJob(sim, m1, 2e6, 1e6, big, sim);
  sim.run();
  // 1 PE, PS: both at 0.5 until small exits at t=2; big finishes its
  // remaining 1e6 at full speed by t=3.
  EXPECT_NEAR(small, 2.0, 1e-6);
  EXPECT_NEAR(big, 3.0, 1e-6);
}

TEST(SimMachine, ExclusiveJobsRunFcfsSequentially) {
  Simulation sim;
  SimMachine m(sim, fourPe());
  std::vector<double> done(3, -1);
  for (int i = 0; i < 3; ++i) exclusiveJob(sim, m, 4e6, 4e6, done[i]);
  sim.run();
  EXPECT_NEAR(done[0], 1.0, 1e-9);
  EXPECT_NEAR(done[1], 2.0, 1e-9);
  EXPECT_NEAR(done[2], 3.0, 1e-9);
}

TEST(SimMachine, ExclusiveJobSqueezesSharedWork) {
  Simulation sim;
  SimMachine m(sim, fourPe());
  double shared_done = -1, excl_done = -1;
  // Shared job would finish at t=10 alone; an exclusive job owns the
  // machine on [0,1], during which the shared job crawls at the 1% floor.
  sharedJob(sim, m, 10e6, 1e6, shared_done, sim);
  exclusiveJob(sim, m, 4e6, 4e6, excl_done);
  sim.run();
  EXPECT_NEAR(excl_done, 1.0, 1e-6);
  EXPECT_GT(shared_done, 10.5);  // lost most of one second
  EXPECT_LT(shared_done, 11.5);
}

TEST(SimMachine, UtilizationReflectsBusyPes) {
  Simulation sim;
  MachineSpec spec = fourPe();
  SimMachine m(sim, spec);
  double done = -1;
  // One PE busy for 1 s, then idle until t=4: time-averaged busy
  // fraction = (1/4 PE) * (1 s / 4 s) = 6.25%.
  sharedJob(sim, m, 1e6, 1e6, done, sim);
  [](Simulation& s) -> Process { co_await s.delay(4.0); }(sim);
  sim.run();
  EXPECT_NEAR(m.cpuUtilizationPercent(), 6.25, 0.5);
}

TEST(SimMachine, LoadAverageCountsRunnableTasks) {
  Simulation sim;
  SimMachine m(sim, fourPe());
  std::vector<double> done(8, -1);
  for (int i = 0; i < 8; ++i) sharedJob(sim, m, 1e6, 1e6, done[i], sim);
  sim.run();
  // 8 runnable for the whole run.
  EXPECT_NEAR(m.loadAverage(), 8.0, 0.5);
  EXPECT_NEAR(m.maxLoad(), 8.0, 1e-9);
}

TEST(SimMachine, ExclusiveLoadCountsWidthPlusQueue) {
  Simulation sim;
  SimMachine m(sim, fourPe());
  std::vector<double> done(3, -1);
  for (int i = 0; i < 3; ++i) exclusiveJob(sim, m, 4e6, 4e6, done[i]);
  sim.run();
  // Running job counts 4; early on, 2 queued: max load 6.
  EXPECT_NEAR(m.maxLoad(), 6.0, 1e-9);
}

TEST(SimMachine, BusyWorkDelaysAndCountsTowardUtilization) {
  Simulation sim;
  MachineSpec spec = fourPe();
  spec.xdr_bytes_per_sec = 1e6;
  SimMachine m(sim, spec);
  EXPECT_DOUBLE_EQ(m.xdrSeconds(2e6), 2.0);
  double done = -1;
  [](Simulation& s, SimMachine& mm, double& out) -> Process {
    co_await mm.busyWork(2.0);
    out = s.now();
  }(sim, m, done);
  sim.run();
  EXPECT_NEAR(done, 2.0, 1e-9);
  EXPECT_GT(m.cpuUtilizationPercent(), 20.0);  // 1 of 4 PEs for the run
}

TEST(SimMachine, CalibratedJ90MatchesPaperAnchors) {
  // DESIGN.md section 6: the 4-PE libsci curve reaches ~600 Mflops at
  // n=1600 (paper, section 3.2) and the 1-PE curve ~165 Mflops at n=600.
  const MachineSpec j90 = calibration::j90();
  EXPECT_NEAR(j90.full_machine.rateAt(1600) / 1e6, 600.0, 30.0);
  EXPECT_NEAR(j90.per_pe.rateAt(600) / 1e6, 165.0, 10.0);
  EXPECT_EQ(j90.pes, 4u);
}

}  // namespace
}  // namespace ninf::machine
