#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>

#include "common/thread_pool.h"

namespace ninf {
namespace {

TEST(ThreadPool, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, DrainWaitsForCompletion) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 20; ++i) {
    pool.submit([&counter] { ++counter; });
  }
  pool.drain();
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPool, ExceptionsPropagateThroughFuture) {
  ThreadPool pool(1);
  auto f = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
  // Pool must survive a throwing task.
  auto ok = pool.submit([] {});
  EXPECT_NO_THROW(ok.get());
}

TEST(ThreadPool, ZeroWorkersRejected) {
  EXPECT_THROW(ThreadPool pool(0), std::logic_error);
}

TEST(ParallelFor, CoversEveryIndexOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallelFor(1000, 8, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, SingleWorkerRunsSequentially) {
  std::vector<std::size_t> order;
  parallelFor(10, 1, [&](std::size_t i) { order.push_back(i); });
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  bool ran = false;
  parallelFor(0, 4, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ParallelFor, ExceptionPropagates) {
  EXPECT_THROW(parallelFor(100, 4,
                           [](std::size_t i) {
                             if (i == 50) throw std::runtime_error("bad");
                           }),
               std::runtime_error);
}

}  // namespace
}  // namespace ninf
