// NAS EP kernel: generator exactness, skip-ahead, partitioning (the
// property the metaserver's task-parallel distribution relies on), and
// statistical sanity of the Gaussian tallies.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "numlib/ep.h"

namespace ninf::numlib {
namespace {

TEST(NpbRandom, StateStaysIn46Bits) {
  NpbRandom rng;
  for (int i = 0; i < 1000; ++i) {
    rng.next();
    EXPECT_GE(rng.state(), 0.0);
    EXPECT_LT(rng.state(), std::ldexp(1.0, 46));
    EXPECT_EQ(rng.state(), std::floor(rng.state()));  // integral
  }
}

TEST(NpbRandom, DeterministicSequence) {
  NpbRandom a, b;
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(NpbRandom, SkipMatchesStepping) {
  NpbRandom stepped, jumped;
  for (int i = 0; i < 1000; ++i) stepped.next();
  jumped.skip(1000);
  EXPECT_EQ(jumped.state(), stepped.state());
}

TEST(NpbRandom, SkipZeroIsIdentity) {
  NpbRandom a;
  a.next();
  const double before = a.state();
  a.skip(0);
  EXPECT_EQ(a.state(), before);
}

TEST(NpbRandom, SkipComposes) {
  NpbRandom a, b;
  a.skip(123);
  a.skip(456);
  b.skip(579);
  EXPECT_EQ(a.state(), b.state());
}

TEST(NpbRandom, PowerIsRepeatedMultiplication) {
  double acc = 1.0;
  for (int i = 0; i < 13; ++i) acc = NpbRandom::mulmod46(NpbRandom::kA, acc);
  EXPECT_EQ(NpbRandom::power(NpbRandom::kA, 13), acc);
}

TEST(NpbRandom, UniformsInUnitInterval) {
  NpbRandom rng;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.next();
    EXPECT_GT(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Ep, PartitioningMatchesSingleRun) {
  // The defining property for distributed EP: disjoint chunks merged in
  // any split must equal the monolithic run.
  const std::int64_t total = 4096;
  const EpResult whole = runEp(0, total);
  for (const int chunks : {2, 3, 7}) {
    EpResult merged;
    const std::int64_t per = total / chunks;
    std::int64_t first = 0;
    for (int c = 0; c < chunks; ++c) {
      const std::int64_t count = (c == chunks - 1) ? total - first : per;
      merged.merge(runEp(first, count));
      first += count;
    }
    EXPECT_EQ(merged.accepted, whole.accepted) << chunks << " chunks";
    EXPECT_EQ(merged.q, whole.q);
    EXPECT_NEAR(merged.sx, whole.sx, 1e-8);
    EXPECT_NEAR(merged.sy, whole.sy, 1e-8);
  }
}

TEST(Ep, AcceptanceRateApproachesPiOver4) {
  const EpResult r = runEpClass(16);  // 65536 pairs
  const double rate =
      static_cast<double>(r.accepted) / static_cast<double>(r.pairs);
  EXPECT_NEAR(rate, std::numbers::pi / 4.0, 0.01);
}

TEST(Ep, GaussianMomentsSane) {
  const EpResult r = runEpClass(16);
  const double n = static_cast<double>(r.accepted) * 2.0;  // deviates
  // Mean of the Gaussian deviates should be near zero.
  EXPECT_LT(std::abs(r.sx / n * 2), 0.05);
  EXPECT_LT(std::abs(r.sy / n * 2), 0.05);
}

TEST(Ep, AnnulusCountsDecay) {
  // |max(|X|,|Y|)| concentrates near small bins for unit Gaussians.
  const EpResult r = runEpClass(16);
  EXPECT_GT(r.q[0], r.q[2]);
  EXPECT_GT(r.q[1], r.q[3]);
  EXPECT_EQ(r.q[9], 0);  // 9-sigma deviates effectively never occur
  std::int64_t total = 0;
  for (auto c : r.q) total += c;
  EXPECT_EQ(total, r.accepted);
}

TEST(Ep, MergeAccumulates) {
  EpResult a = runEp(0, 100);
  const EpResult b = runEp(100, 100);
  const std::int64_t a_accepted = a.accepted;
  a.merge(b);
  EXPECT_EQ(a.pairs, 200);
  EXPECT_EQ(a.accepted, a_accepted + b.accepted);
}

TEST(Ep, DeterministicAcrossRuns) {
  EXPECT_EQ(runEp(1000, 500), runEp(1000, 500));
}

TEST(Ep, OpsCountFormula) {
  // 2^(n+1) operations for 2^n trials (paper, section 4.3).
  EXPECT_DOUBLE_EQ(epOps(24), std::ldexp(1.0, 25));
}

TEST(Ep, NegativeRangeRejected) {
  EXPECT_THROW(runEp(-1, 10), std::logic_error);
  EXPECT_THROW(runEp(0, -10), std::logic_error);
}

}  // namespace
}  // namespace ninf::numlib
