// Deadline and retry semantics: a stalled peer trips the recv deadline
// instead of hanging, a retrying call recovers from an injected
// mid-stream reset, and the metaserver's cooldown keeps a flapping
// server from being re-picked attempt after attempt.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "client/client.h"
#include "common/error.h"
#include "metaserver/metaserver.h"
#include "numlib/ep.h"
#include "numlib/matrix.h"
#include "numlib/mmul.h"
#include "obs/metrics.h"
#include "server/server.h"
#include "transport/fault_injection.h"
#include "transport/inproc_transport.h"
#include "transport/tcp_transport.h"

namespace ninf {
namespace {

using client::CallOptions;
using client::NinfClient;
using protocol::ArgValue;

double secondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

TEST(Deadline, TcpRecvDeadlineFiresOnStalledPeer) {
  transport::TcpListener listener(0);
  auto server_side = std::async(std::launch::async, [&] {
    // Accept and hold the connection open without ever sending: the
    // classic stalled peer.  Returning the stream keeps it alive until
    // the client has timed out (a destructor-close would look like a
    // reset, not a stall).
    return listener.accept();
  });
  auto client = transport::tcpConnect("127.0.0.1", listener.port());
  client->setDeadlineIn(0.1);
  const auto start = std::chrono::steady_clock::now();
  std::uint8_t buf[4];
  EXPECT_THROW(client->recvAll(buf), TimeoutError);
  EXPECT_LT(secondsSince(start), 5.0);
  auto held = server_side.get();
}

TEST(Deadline, InprocRecvDeadlineFires) {
  auto [a, b] = transport::inprocPair();
  b->setDeadlineIn(0.05);
  const auto start = std::chrono::steady_clock::now();
  std::uint8_t buf[1];
  EXPECT_THROW(b->recvAll(buf), TimeoutError);
  EXPECT_LT(secondsSince(start), 5.0);
}

TEST(Deadline, TimeoutErrorIsTransportError) {
  // Failover and retry paths catch TransportError generically; a timeout
  // must flow through them.
  try {
    throw TimeoutError("x");
  } catch (const TransportError& e) {
    EXPECT_NE(std::string(e.what()).find("timeout"), std::string::npos);
  }
}

TEST(Deadline, ClearDeadlineDisables) {
  auto [a, b] = transport::inprocPair();
  b->setDeadlineIn(0.02);
  b->clearDeadline();
  auto sender = std::async(std::launch::async, [&a = a] {
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    const std::uint8_t one = 7;
    a->sendAll({&one, 1});
  });
  // Data arrives well after the (cleared) deadline would have fired.
  std::uint8_t buf[1];
  b->recvAll(buf);
  EXPECT_EQ(buf[0], 7);
  sender.get();
}

TEST(Deadline, NonPositiveSecondsClears) {
  auto [a, b] = transport::inprocPair();
  b->setDeadlineIn(0.02);
  b->setDeadlineIn(0.0);  // <= 0 disables again
  auto sender = std::async(std::launch::async, [&a = a] {
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    const std::uint8_t one = 9;
    a->sendAll({&one, 1});
  });
  std::uint8_t buf[1];
  b->recvAll(buf);
  EXPECT_EQ(buf[0], 9);
  sender.get();
}

TEST(Deadline, DataBeforeDeadlineSucceeds) {
  transport::TcpListener listener(0);
  auto server_side = std::async(std::launch::async, [&] {
    auto stream = listener.accept();
    std::uint8_t buf[3];
    stream->recvAll(buf);
    stream->sendAll(buf);
  });
  auto client = transport::tcpConnect("127.0.0.1", listener.port());
  client->setDeadlineIn(5.0);
  const std::uint8_t msg[3] = {1, 2, 3};
  client->sendAll(msg);
  std::uint8_t echo[3];
  client->recvAll(echo);
  EXPECT_EQ(echo[2], 3);
  server_side.get();
}

/// One real TCP server plus a fault plan shared by the client's initial
/// connection and its reconnects.
class RetryFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    server::registerStandardExecutables(registry_);
    server_.emplace(registry_, server::ServerOptions{.workers = 2});
    listener_ = std::make_shared<transport::TcpListener>(0);
    port_ = listener_->port();
    server().start(listener_);
  }

  void TearDown() override { server().stop(); }

  std::unique_ptr<NinfClient> faultyClient(
      std::shared_ptr<transport::FaultPlan> plan) {
    auto client = std::make_unique<NinfClient>(
        transport::wrapFaulty(transport::tcpConnect("127.0.0.1", port_), plan));
    client->setReconnect([this, plan] {
      transport::checkConnectFault(*plan, "127.0.0.1");
      return transport::wrapFaulty(transport::tcpConnect("127.0.0.1", port_),
                                   plan);
    });
    return client;
  }

  server::Registry registry_;
  // Engaged in SetUp() for the whole test lifetime; the accessor
  // keeps the one unchecked dereference in a single audited place.
  // NOLINTNEXTLINE(bugprone-unchecked-optional-access)
  server::NinfServer& server() { return *server_; }
  std::optional<server::NinfServer> server_;
  std::shared_ptr<transport::TcpListener> listener_;
  std::uint16_t port_ = 0;
};

TEST_F(RetryFixture, RetriesRecoverFromInjectedReset) {
  transport::FaultSpec spec;
  // The first send is the Hello handshake, whose reset is absorbed by
  // the free v1-fallback reconnect; the second reset lands on the call
  // path proper and must be recovered by the retry budget.
  spec.reset_first_sends = 2;
  auto plan = std::make_shared<transport::FaultPlan>(1, spec);
  auto client = faultyClient(plan);

  const std::size_t n = 6;
  const numlib::Matrix a = numlib::randomMatrix(n, 3);
  const numlib::Matrix b = numlib::randomMatrix(n, 4);
  std::vector<double> c(n * n);
  std::vector<ArgValue> args = {ArgValue::inInt(static_cast<std::int64_t>(n)),
                                ArgValue::inArray(a.flat()),
                                ArgValue::inArray(b.flat()),
                                ArgValue::outArray(c)};
  CallOptions opts;
  opts.retries = 2;
  opts.backoff_seconds = 0.001;
  client->call("dmmul", args, opts);

  EXPECT_EQ(plan->injectedCount(), 2u);
  const numlib::Matrix expected = numlib::dmmul(a, b);
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c[i], expected.flat()[i], 1e-12);
  }
}

TEST_F(RetryFixture, NoRetryBudgetSurfacesTransportError) {
  transport::FaultSpec spec;
  // Send #1 is the Hello handshake (its reset is absorbed by the v1
  // fallback, which is free by design); send #2 hits the call path,
  // where a reset with no retry budget must surface.
  spec.reset_first_sends = 2;
  auto plan = std::make_shared<transport::FaultPlan>(2, spec);
  auto client = faultyClient(plan);

  std::vector<double> sums(2), q(10);
  std::vector<ArgValue> args = {ArgValue::inInt(0), ArgValue::inInt(16),
                                ArgValue::outArray(sums),
                                ArgValue::outArray(q)};
  EXPECT_THROW(client->call("ep", args), TransportError);
  // The same client recovers on the next call: the retry machinery
  // reconnects lazily even when the failed call had no retry budget.
  client->call("ep", args);
  EXPECT_DOUBLE_EQ(sums[0], numlib::runEp(0, 16).sx);
}

TEST_F(RetryFixture, DeadlineBoundsWholeRetryEnvelope) {
  // Every connect attempt is refused: the call must give up with a typed
  // error once the budget cannot cover another backoff, well before the
  // retry count alone would let it stop.
  transport::FaultSpec spec;
  spec.refuse_first_connects = 1000;
  spec.reset_first_sends = 1;
  auto plan = std::make_shared<transport::FaultPlan>(3, spec);
  auto client = faultyClient(plan);

  std::vector<double> sums(2), q(10);
  std::vector<ArgValue> args = {ArgValue::inInt(0), ArgValue::inInt(16),
                                ArgValue::outArray(sums),
                                ArgValue::outArray(q)};
  CallOptions opts;
  opts.deadline_seconds = 0.5;
  opts.retries = 1000;
  opts.backoff_seconds = 0.01;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW(client->call("ep", args, opts), TransportError);
  EXPECT_LT(secondsSince(start), 5.0);
}

/// Metaserver over one flaky entry and one healthy TCP server.
class CooldownFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    server::registerStandardExecutables(registry_);
    server_.emplace(registry_, server::ServerOptions{.workers = 2});
    listener_ = std::make_shared<transport::TcpListener>(0);
    port_ = listener_->port();
    server().start(listener_);
  }

  void TearDown() override { server().stop(); }

  client::ConnectionFactory goodFactory() {
    const auto port = port_;
    return [port] { return NinfClient::connectTcp("127.0.0.1", port); };
  }

  server::Registry registry_;
  // Engaged in SetUp() for the whole test lifetime; the accessor
  // keeps the one unchecked dereference in a single audited place.
  // NOLINTNEXTLINE(bugprone-unchecked-optional-access)
  server::NinfServer& server() { return *server_; }
  std::optional<server::NinfServer> server_;
  std::shared_ptr<transport::TcpListener> listener_;
  std::uint16_t port_ = 0;
};

TEST_F(CooldownFixture, CooldownSkipsFlappingServer) {
  metaserver::Metaserver meta(metaserver::SchedulingPolicy::RoundRobin);
  meta.setServerCooldown(60.0);
  meta.setFailoverBackoff(0.001);
  // server-0 flaps: every connection attempt dies.
  meta.addServer({.name = "server-0",
                  .factory =
                      []() -> std::unique_ptr<NinfClient> {
                        throw TransportError("flapping server");
                      }});
  meta.addServer({.name = "server-1", .factory = goodFactory()});

  std::vector<double> sums(2), q(10);
  std::vector<ArgValue> args = {ArgValue::inInt(0), ArgValue::inInt(64),
                                ArgValue::outArray(sums),
                                ArgValue::outArray(q)};
  // First dispatch: round-robin picks server-0, which fails and enters
  // cooldown; the failover lands on server-1.
  obs::Counter& failovers = obs::counter("metaserver.failovers");
  meta.dispatch("ep", args);
  EXPECT_DOUBLE_EQ(sums[0], numlib::runEp(0, 64).sx);
  const auto failovers_after_first = failovers.value();
  EXPECT_GE(failovers_after_first, 1u);

  // Subsequent dispatches: server-0 is cooling, so the policy goes
  // straight to server-1 — no new failovers, and the skip is counted.
  obs::Counter& skips = obs::counter("metaserver.cooldown_skips");
  const auto skips_before = skips.value();
  for (int i = 0; i < 3; ++i) {
    sums.assign(2, 0.0);
    meta.dispatch("ep", args);
    EXPECT_DOUBLE_EQ(sums[0], numlib::runEp(0, 64).sx);
  }
  EXPECT_EQ(failovers.value(), failovers_after_first);
  EXPECT_GE(skips.value(), skips_before + 3);
}

TEST_F(CooldownFixture, AllCoolingFallsBackToTryingAnyway) {
  metaserver::Metaserver meta(metaserver::SchedulingPolicy::RoundRobin);
  meta.setServerCooldown(60.0);
  meta.setFailoverBackoff(0.0);
  // The only server fails exactly once, then recovers.
  auto flaked = std::make_shared<std::atomic<bool>>(false);
  const auto port = port_;
  meta.addServer({.name = "server-0",
                  .factory = [flaked, port]() -> std::unique_ptr<NinfClient> {
                    if (!flaked->exchange(true)) {
                      throw TransportError("first connect dies");
                    }
                    return NinfClient::connectTcp("127.0.0.1", port);
                  }});

  std::vector<double> sums(2), q(10);
  std::vector<ArgValue> args = {ArgValue::inInt(0), ArgValue::inInt(32),
                                ArgValue::outArray(sums),
                                ArgValue::outArray(q)};
  // First dispatch fails over but has no alternative: typed error.
  EXPECT_THROW(meta.dispatch("ep", args), TransportError);
  // Second dispatch: the server is cooling, but it is the whole pool, so
  // the cooldown must not strand the call.
  meta.dispatch("ep", args);
  EXPECT_DOUBLE_EQ(sums[0], numlib::runEp(0, 32).sx);
}

TEST_F(CooldownFixture, ExhaustedFailoverRethrowsTransportRootCause) {
  metaserver::Metaserver meta(metaserver::SchedulingPolicy::RoundRobin);
  meta.setMaxFailovers(4);
  meta.setFailoverBackoff(0.0);
  meta.setServerCooldown(0.0);
  for (int i = 0; i < 2; ++i) {
    meta.addServer({.name = "server-" + std::to_string(i),
                    .factory = []() -> std::unique_ptr<NinfClient> {
                      throw TransportError("cable cut");
                    }});
  }
  std::vector<double> sums(2), q(10);
  std::vector<ArgValue> args = {ArgValue::inInt(0), ArgValue::inInt(16),
                                ArgValue::outArray(sums),
                                ArgValue::outArray(q)};
  try {
    meta.dispatch("ep", args);
    FAIL() << "expected TransportError";
  } catch (const NotFoundError&) {
    FAIL() << "root-cause transport error masked as NotFoundError";
  } catch (const TransportError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("server-0"), std::string::npos) << what;
    EXPECT_NE(what.find("server-1"), std::string::npos) << what;
    EXPECT_NE(what.find("cable cut"), std::string::npos) << what;
  }
}

TEST_F(CooldownFixture, DispatchDeadlineTripsOnStalledServer) {
  // A server that accepts and then never replies: the dispatch deadline
  // must surface a typed timeout instead of hanging.
  transport::TcpListener stalled(0);
  const auto stalled_port = stalled.port();
  std::vector<std::unique_ptr<transport::Stream>> held;
  std::mutex held_mutex;
  std::thread holder([&] {
    for (;;) {
      auto s = stalled.accept();
      if (!s) return;
      std::lock_guard<std::mutex> lock(held_mutex);
      held.push_back(std::move(s));
    }
  });

  metaserver::Metaserver meta(metaserver::SchedulingPolicy::RoundRobin);
  meta.setMaxFailovers(0);
  meta.setFailoverBackoff(0.0);
  meta.addServer({.name = "stalled",
                  .factory = [stalled_port] {
                    return NinfClient::connectTcp("127.0.0.1", stalled_port);
                  }});
  std::vector<double> sums(2), q(10);
  std::vector<ArgValue> args = {ArgValue::inInt(0), ArgValue::inInt(16),
                                ArgValue::outArray(sums),
                                ArgValue::outArray(q)};
  client::CallOptions opts;
  opts.deadline_seconds = 0.2;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW(meta.dispatch("ep", args, opts), TimeoutError);
  EXPECT_LT(secondsSince(start), 5.0);
  stalled.close();
  holder.join();
}

}  // namespace
}  // namespace ninf
