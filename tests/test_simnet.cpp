// Network simulator: latency, bandwidth, max-min fair sharing, per-flow
// caps — the substrate of every WAN result in the paper.
#include <gtest/gtest.h>

#include "common/error.h"
#include "simcore/simulation.h"
#include "simnet/network.h"

namespace ninf::simnet {
namespace {

using simcore::Process;
using simcore::Simulation;

Process doTransfer(Simulation& sim, Network& net, NodeId src, NodeId dst,
                   double bytes, double& done_at,
                   double cap = Network::kUncapped) {
  co_await net.transfer(src, dst, bytes, cap);
  done_at = sim.now();
}

Process delayedTransfer(Simulation& sim, Network& net, double start,
                        NodeId src, NodeId dst, double bytes,
                        double& done_at) {
  co_await sim.delay(start);
  co_await net.transfer(src, dst, bytes, Network::kUncapped);
  done_at = sim.now();
}

TEST(Network, SingleFlowTakesBytesOverBandwidthPlusLatency) {
  Simulation sim;
  Network net(sim);
  const auto a = net.addNode("a");
  const auto b = net.addNode("b");
  net.addLink(a, b, 1e6, 0.5);
  double done = -1;
  doTransfer(sim, net, a, b, 2e6, done);
  sim.run();
  EXPECT_NEAR(done, 0.5 + 2.0, 1e-9);
}

TEST(Network, TwoFlowsShareFairly) {
  Simulation sim;
  Network net(sim);
  const auto a = net.addNode("a");
  const auto b = net.addNode("b");
  net.addLink(a, b, 1e6, 0.0);
  double d1 = -1, d2 = -1;
  doTransfer(sim, net, a, b, 1e6, d1);
  doTransfer(sim, net, a, b, 1e6, d2);
  sim.run();
  // Both run at 0.5 MB/s until both finish at t=2.
  EXPECT_NEAR(d1, 2.0, 1e-9);
  EXPECT_NEAR(d2, 2.0, 1e-9);
}

TEST(Network, ShortFlowFinishesAndLongFlowSpeedsUp) {
  Simulation sim;
  Network net(sim);
  const auto a = net.addNode("a");
  const auto b = net.addNode("b");
  net.addLink(a, b, 1e6, 0.0);
  double small = -1, big = -1;
  doTransfer(sim, net, a, b, 1e6, small);
  doTransfer(sim, net, a, b, 3e6, big);
  sim.run();
  // Shared 0.5 each until small done at t=2 (1MB); big then has 2MB left
  // at full rate: done at t=4.
  EXPECT_NEAR(small, 2.0, 1e-6);
  EXPECT_NEAR(big, 4.0, 1e-6);
}

TEST(Network, LateArrivalSlowsExistingFlow) {
  Simulation sim;
  Network net(sim);
  const auto a = net.addNode("a");
  const auto b = net.addNode("b");
  net.addLink(a, b, 1e6, 0.0);
  double first = -1, second = -1;
  doTransfer(sim, net, a, b, 2e6, first);
  delayedTransfer(sim, net, 1.0, a, b, 2e6, second);
  sim.run();
  // First: 1MB in first second, shares 0.5 for 2s (2MB total at t=3).
  EXPECT_NEAR(first, 3.0, 1e-6);
  // Second: 0.5 MB/s on [1,3], then 1 MB/s for remaining 1MB: t=4.
  EXPECT_NEAR(second, 4.0, 1e-6);
}

TEST(Network, OppositeDirectionsDoNotContend) {
  Simulation sim;
  Network net(sim);
  const auto a = net.addNode("a");
  const auto b = net.addNode("b");
  net.addLink(a, b, 1e6, 0.0);
  double d1 = -1, d2 = -1;
  doTransfer(sim, net, a, b, 1e6, d1);
  doTransfer(sim, net, b, a, 1e6, d2);
  sim.run();
  EXPECT_NEAR(d1, 1.0, 1e-9);  // full duplex: both at full rate
  EXPECT_NEAR(d2, 1.0, 1e-9);
}

TEST(Network, MultiHopLimitedByNarrowestLink) {
  Simulation sim;
  Network net(sim);
  const auto a = net.addNode("a");
  const auto r = net.addNode("router");
  const auto b = net.addNode("b");
  net.addLink(a, r, 10e6, 0.1);
  net.addLink(r, b, 1e6, 0.2);
  EXPECT_DOUBLE_EQ(net.pathCapacity(a, b), 1e6);
  EXPECT_NEAR(net.pathLatency(a, b), 0.3, 1e-12);
  double done = -1;
  doTransfer(sim, net, a, b, 1e6, done);
  sim.run();
  EXPECT_NEAR(done, 0.3 + 1.0, 1e-9);
}

TEST(Network, PerFlowCapLimitsLoneFlow) {
  Simulation sim;
  Network net(sim);
  const auto a = net.addNode("a");
  const auto b = net.addNode("b");
  net.addLink(a, b, 10e6, 0.0);
  double done = -1;
  doTransfer(sim, net, a, b, 2e6, done, /*cap=*/1e6);
  sim.run();
  EXPECT_NEAR(done, 2.0, 1e-6);
}

TEST(Network, CappedFlowsLeaveBandwidthForOthers) {
  // Max-min with caps: capped flow takes 1 MB/s, uncapped gets the rest.
  Simulation sim;
  Network net(sim);
  const auto a = net.addNode("a");
  const auto b = net.addNode("b");
  net.addLink(a, b, 3e6, 0.0);
  double capped = -1, open = -1;
  doTransfer(sim, net, a, b, 1e6, capped, /*cap=*/1e6);
  doTransfer(sim, net, a, b, 2e6, open);
  sim.run();
  EXPECT_NEAR(capped, 1.0, 1e-6);  // 1 MB at its 1 MB/s ceiling
  EXPECT_NEAR(open, 1.0, 1e-6);    // 2 MB at the leftover 2 MB/s
}

TEST(Network, SharedUplinkIsTheSingleSiteWanBottleneck) {
  // The paper's single-site WAN shape: c clients behind one slow uplink
  // split it c ways; aggregate stays at the uplink capacity.
  Simulation sim;
  Network net(sim);
  const auto server = net.addNode("server");
  const auto router = net.addNode("router");
  net.addLink(router, server, 0.17e6, 0.0);
  std::vector<NodeId> clients;
  std::vector<double> done(4, -1);
  for (int i = 0; i < 4; ++i) {
    clients.push_back(net.addNode("c" + std::to_string(i)));
    net.addLink(clients.back(), router, 4e6, 0.0);
  }
  for (int i = 0; i < 4; ++i) {
    doTransfer(sim, net, clients[i], server, 0.17e6, done[i]);
  }
  sim.run();
  for (int i = 0; i < 4; ++i) EXPECT_NEAR(done[i], 4.0, 1e-6);
}

TEST(Network, MultiSiteFlowsAchieveAggregateBandwidth) {
  // The Figure 10 shape: flows from different sites with independent
  // uplinks are not limited by each other's sites.
  Simulation sim;
  Network net(sim);
  const auto server = net.addNode("server");
  double done_a = -1, done_b = -1;
  const auto site_a = net.addNode("siteA");
  const auto site_b = net.addNode("siteB");
  net.addLink(site_a, server, 0.2e6, 0.0);
  net.addLink(site_b, server, 0.2e6, 0.0);
  const auto ca = net.addNode("ca");
  const auto cb = net.addNode("cb");
  net.addLink(ca, site_a, 4e6, 0.0);
  net.addLink(cb, site_b, 4e6, 0.0);
  doTransfer(sim, net, ca, server, 0.2e6, done_a);
  doTransfer(sim, net, cb, server, 0.2e6, done_b);
  sim.run();
  EXPECT_NEAR(done_a, 1.0, 1e-6);  // full uplink each: aggregate 2x
  EXPECT_NEAR(done_b, 1.0, 1e-6);
}

TEST(Network, EqualShareAblationUnderutilizes) {
  // Equal split never redistributes: a capped flow's leftover is wasted.
  Simulation sim;
  Network net(sim, Sharing::EqualShare);
  const auto a = net.addNode("a");
  const auto b = net.addNode("b");
  net.addLink(a, b, 2e6, 0.0);
  double d1 = -1, d2 = -1;
  doTransfer(sim, net, a, b, 0.1e6, d1);  // finishes quickly
  doTransfer(sim, net, a, b, 2e6, d2);
  sim.run();
  // After the small flow drains, the big one still gets the full link:
  // behaviourally close to max-min for this simple case.
  EXPECT_GT(d2, d1);
}

TEST(Network, NoRouteThrows) {
  Simulation sim;
  Network net(sim);
  const auto a = net.addNode("a");
  const auto b = net.addNode("b");  // no link
  EXPECT_THROW(net.pathCapacity(a, b), NotFoundError);
}

TEST(Network, ZeroByteTransferCompletesInstantly) {
  Simulation sim;
  Network net(sim);
  const auto a = net.addNode("a");
  const auto b = net.addNode("b");
  net.addLink(a, b, 1e6, 1.0);
  double done = -1;
  doTransfer(sim, net, a, b, 0.0, done);
  sim.run();
  EXPECT_DOUBLE_EQ(done, 0.0);  // await_ready: no latency charged
}

TEST(Network, LinkByteAccounting) {
  Simulation sim;
  Network net(sim);
  const auto a = net.addNode("a");
  const auto b = net.addNode("b");
  const auto link = net.addLink(a, b, 1e6, 0.0);
  double done = -1;
  doTransfer(sim, net, a, b, 5e5, done);
  sim.run();
  EXPECT_NEAR(net.linkBytesCarried(link), 5e5, 1.0);
}

TEST(Network, DeterministicAcrossRuns) {
  auto run = [] {
    Simulation sim;
    Network net(sim);
    const auto a = net.addNode("a");
    const auto b = net.addNode("b");
    net.addLink(a, b, 1.3e6, 0.01);
    std::vector<double> done(5, -1);
    for (int i = 0; i < 5; ++i) {
      delayedTransfer(sim, net, 0.1 * i, a, b, 1e5 * (i + 1), done[i]);
    }
    sim.run();
    return done;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace ninf::simnet
