// RunningStats / TimeWeightedStats: the max/min/mean machinery behind
// every table row in the paper.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"

namespace ninf {
namespace {

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownSequence) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  // Sample variance of the classic sequence: 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
}

TEST(RunningStats, EmptyAccessorsThrow) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_THROW(s.mean(), std::logic_error);
  EXPECT_THROW(s.min(), std::logic_error);
  EXPECT_THROW(s.max(), std::logic_error);
}

TEST(RunningStats, MergeEqualsSequential) {
  SplitMix64 rng(42);
  RunningStats whole, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.nextDouble() * 100 - 50;
    whole.add(v);
    (i % 3 == 0 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-7);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(RunningStats, TripleFormatting) {
  RunningStats s;
  s.add(1.0);
  s.add(2.0);
  s.add(3.0);
  EXPECT_EQ(s.triple(2), "3.00/1.00/2.00");
  RunningStats empty;
  EXPECT_EQ(empty.triple(), "-/-/-");
}

TEST(TimeWeightedStats, StepFunctionAverage) {
  TimeWeightedStats tw;
  tw.update(0.0, 1.0);   // value 1 on [0, 10)
  tw.update(10.0, 3.0);  // value 3 on [10, 20)
  EXPECT_DOUBLE_EQ(tw.average(20.0), 2.0);
  EXPECT_DOUBLE_EQ(tw.maxValue(), 3.0);
}

TEST(TimeWeightedStats, ZeroDurationReturnsCurrent) {
  TimeWeightedStats tw;
  tw.update(5.0, 7.0);
  EXPECT_DOUBLE_EQ(tw.average(5.0), 7.0);
}

TEST(TimeWeightedStats, UnevenIntervals) {
  TimeWeightedStats tw;
  tw.update(0.0, 0.0);
  tw.update(1.0, 4.0);  // 0 for 1s
  tw.update(9.0, 0.0);  // 4 for 8s
  // average over [0, 10): (0*1 + 4*8 + 0*1) / 10 = 3.2
  EXPECT_DOUBLE_EQ(tw.average(10.0), 3.2);
}

class StatsPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StatsPropertyTest, MeanBoundedByMinMax) {
  SplitMix64 rng(GetParam());
  RunningStats s;
  for (int i = 0; i < 500; ++i) s.add(rng.nextDouble() * 2000 - 1000);
  EXPECT_LE(s.min(), s.mean());
  EXPECT_GE(s.max(), s.mean());
  EXPECT_GE(s.variance(), 0.0);
  EXPECT_NEAR(s.stddev() * s.stddev(), s.variance(), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StatsPropertyTest,
                         ::testing::Values(1, 2, 3, 17, 99, 12345));

}  // namespace
}  // namespace ninf
