// ninf_server — a standalone Ninf computational server.
//
// Serves the standard benchmark executables (dmmul, linpack, dos, ep) on
// a TCP port; pair with the ninf_call CLI or any NinfClient:
//
//   ninf_server [port] [--workers N] [--policy fcfs|sjf]
//
// Runs until EOF on stdin (or forever when stdin is closed/daemonized).
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "common/log.h"
#include "server/registry.h"
#include "server/server.h"
#include "transport/tcp_transport.h"

int main(int argc, char** argv) {
  using namespace ninf;
  std::uint16_t port = 0;
  server::ServerOptions options;
  options.workers = 4;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      options.workers = std::strtoul(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--policy") == 0 && i + 1 < argc) {
      const std::string p = argv[++i];
      options.policy = p == "sjf" ? server::QueuePolicy::Sjf
                                  : server::QueuePolicy::Fcfs;
    } else if (argv[i][0] != '-') {
      port = static_cast<std::uint16_t>(std::atoi(argv[i]));
    } else {
      std::fprintf(stderr,
                   "usage: ninfd [port] [--workers N] "
                   "[--policy fcfs|sjf]\n");
      return 2;
    }
  }

  setLogLevel(LogLevel::Info);
  server::Registry registry;
  server::registerStandardExecutables(registry, options.workers);
  server::NinfServer srv(registry, options);
  auto listener = std::make_shared<transport::TcpListener>(port);
  std::printf("ninfd: listening on 127.0.0.1:%u (%zu workers, %s)\n",
              listener->port(), options.workers,
              server::queuePolicyName(options.policy));
  std::printf("exports:");
  for (const auto& name : registry.names()) std::printf(" %s", name.c_str());
  std::printf("\npress ctrl-d to stop\n");
  std::fflush(stdout);
  srv.start(listener);

  // Serve until stdin closes.
  std::string line;
  while (std::getline(std::cin, line)) {
  }
  std::printf("ninfd: shutting down (%llu calls served)\n",
              static_cast<unsigned long long>(srv.metrics().completed()));
  srv.stop();
  return 0;
}
