// ninf_trace_dump: summarize Chrome trace-event files written by the
// tracer (--trace) into per-phase breakdowns, the shape of the paper's
// Table 3/6 rows.
//
//   ninf_trace_dump run.trace.json            per-lane phase tables
//   ninf_trace_dump real.json sim.json        side-by-side comparison
//   ninf_trace_dump --lane sim run.json       restrict to one lane
//   ninf_trace_dump --merge out.json a.json b.json ...
//                                             merge per-process traces
//
// A single file holding both lanes (a real run plus a simulated replay)
// is also compared lane-against-lane automatically.
//
// --merge combines trace files written by different processes (client,
// metaserver, server) into one Chrome trace with a lane (pid row) per
// process, timestamps aligned via each file's recorded wall-clock epoch.
// Spans that share a propagated trace_id then line up causally in
// chrome://tracing / Perfetto.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.h"
#include "obs/export.h"

namespace {

using namespace ninf;

std::string readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::vector<obs::SpanRecord> loadSpans(const std::string& path) {
  return obs::parseChromeTrace(readFile(path));
}

bool hasLane(const std::vector<obs::SpanRecord>& spans, std::uint32_t lane) {
  for (const auto& s : spans) {
    if (s.lane == lane) return true;
  }
  return false;
}

const char* laneName(std::uint32_t lane) {
  if (lane == obs::kLaneReal) return "real";
  if (lane == obs::kLaneSim) return "sim";
  return "?";
}

void dumpOneFile(const std::string& path,
                 const std::vector<obs::SpanRecord>& spans,
                 std::uint32_t lane_filter) {
  std::printf("%s: %zu spans\n", path.c_str(), spans.size());
  if (spans.empty()) return;

  std::vector<std::uint32_t> lanes;
  if (lane_filter != 0) {
    lanes.push_back(lane_filter);
  } else {
    if (hasLane(spans, obs::kLaneReal)) lanes.push_back(obs::kLaneReal);
    if (hasLane(spans, obs::kLaneSim)) lanes.push_back(obs::kLaneSim);
  }
  for (const std::uint32_t lane : lanes) {
    const auto stats = obs::phaseSummary(spans, lane);
    if (stats.empty()) continue;
    std::printf("\n[%s lane]\n%s", laneName(lane),
                obs::formatPhaseTable(stats).c_str());
  }
  // Both lanes present: show the diff the simulator exists for.
  if (lane_filter == 0 && lanes.size() == 2) {
    std::printf("\n%s",
                obs::formatPhaseComparison(
                    obs::phaseSummary(spans, obs::kLaneReal), "real",
                    obs::phaseSummary(spans, obs::kLaneSim), "sim")
                    .c_str());
  }
}

/// Merge per-process trace files into `out_path`.  Lane labels come from
/// each file's "ninfProcess" metadata (fallback: the file's basename);
/// timestamps are aligned using the recorded "ninfEpochUnixUs".
int mergeFiles(const std::string& out_path,
               const std::vector<std::string>& in_paths) {
  std::vector<obs::ProcessTrace> inputs;
  inputs.reserve(in_paths.size());
  for (const std::string& path : in_paths) {
    const std::string text = readFile(path);
    obs::ProcessTrace pt;
    const obs::TraceMeta meta = obs::parseChromeTraceMeta(text);
    pt.label = meta.process;
    if (pt.label.empty()) {
      const std::size_t slash = path.find_last_of('/');
      pt.label = slash == std::string::npos ? path : path.substr(slash + 1);
    }
    pt.epoch_unix_us = meta.epoch_unix_us;
    pt.spans = obs::parseChromeTrace(text);
    if (pt.epoch_unix_us == 0) {
      std::fprintf(stderr,
                   "warning: %s has no ninfEpochUnixUs metadata; its "
                   "timestamps are kept unshifted\n",
                   path.c_str());
    }
    std::printf("  %-20s %5zu spans  (%s)\n", pt.label.c_str(),
                pt.spans.size(), path.c_str());
    inputs.push_back(std::move(pt));
  }
  std::ofstream out(out_path, std::ios::binary);
  if (!out) throw Error("cannot write '" + out_path + "'");
  out << obs::mergeChromeTraces(inputs);
  if (!out) throw Error("short write to '" + out_path + "'");
  std::printf("merged %zu files -> %s\n", in_paths.size(), out_path.c_str());
  return 0;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: ninf_trace_dump [--lane real|sim] TRACE.json [OTHER.json]\n"
      "       ninf_trace_dump --merge OUT.json TRACE.json [TRACE.json...]\n"
      "  one file:  per-phase summary tables (one per lane present)\n"
      "  two files: side-by-side per-phase comparison (A vs B)\n"
      "  --merge:   combine per-process traces into one file with a\n"
      "             process lane each, epochs aligned for chrome://tracing\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "--merge") == 0) {
    if (argc < 4) return usage();
    try {
      return mergeFiles(argv[2],
                        std::vector<std::string>(argv + 3, argv + argc));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "ninf_trace_dump: %s\n", e.what());
      return 1;
    }
  }
  std::uint32_t lane_filter = 0;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--lane") == 0 && i + 1 < argc) {
      const std::string which = argv[++i];
      if (which == "real") {
        lane_filter = ninf::obs::kLaneReal;
      } else if (which == "sim") {
        lane_filter = ninf::obs::kLaneSim;
      } else {
        return usage();
      }
    } else if (argv[i][0] == '-') {
      return usage();
    } else {
      paths.push_back(argv[i]);
    }
  }
  if (paths.empty() || paths.size() > 2) return usage();

  try {
    if (paths.size() == 1) {
      dumpOneFile(paths[0], loadSpans(paths[0]), lane_filter);
    } else {
      const auto a = loadSpans(paths[0]);
      const auto b = loadSpans(paths[1]);
      dumpOneFile(paths[0], a, lane_filter);
      std::printf("\n");
      dumpOneFile(paths[1], b, lane_filter);
      std::printf("\n%s",
                  ninf::obs::formatPhaseComparison(
                      ninf::obs::phaseSummary(a, lane_filter), paths[0],
                      ninf::obs::phaseSummary(b, lane_filter), paths[1])
                      .c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ninf_trace_dump: %s\n", e.what());
    return 1;
  }
  return 0;
}
