#include "model.h"

#include <algorithm>
#include <cctype>

namespace ninf_tidy {

namespace {

const std::set<std::string>& statementKeywords() {
  static const std::set<std::string> kw = {
      "if",     "for",    "while",  "switch",  "catch",   "return",
      "sizeof", "new",    "delete", "throw",   "alignof", "co_await",
      "do",     "else",   "case",   "default", "goto",    "decltype",
      "static_assert"};
  return kw;
}

bool isOpen(const Token& t) {
  return t.kind == TokKind::Punct &&
         (t.text == "(" || t.text == "[" || t.text == "{");
}

bool isClose(const Token& t) {
  return t.kind == TokKind::Punct &&
         (t.text == ")" || t.text == "]" || t.text == "}");
}

std::string lastComponent(const std::string& qname) {
  const auto pos = qname.rfind("::");
  return pos == std::string::npos ? qname : qname.substr(pos + 2);
}

}  // namespace

std::size_t matchBracket(const std::vector<Token>& toks, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (isOpen(toks[i])) ++depth;
    else if (isClose(toks[i])) {
      if (--depth == 0) return i;
    }
  }
  return toks.empty() ? 0 : toks.size() - 1;
}

namespace {

/// Skip a balanced <...> template argument list starting at `i` (which
/// must point at "<").  Returns the index one past the closing ">".
/// Bails out (returns i+1) if the brackets never balance — a
/// comparison, not a template.
std::size_t skipAngles(const std::vector<Token>& toks, std::size_t i) {
  int depth = 0;
  std::size_t j = i;
  for (; j < toks.size() && j < i + 256; ++j) {
    const Token& t = toks[j];
    if (t.is("<")) ++depth;
    else if (t.is(">")) {
      if (--depth == 0) return j + 1;
    } else if (t.is(";") || t.is("{")) {
      break;  // ran off the declaration: not a template list
    }
  }
  return i + 1;
}

class Parser {
 public:
  explicit Parser(FileModel& fm) : fm_(fm), toks_(fm.toks) {}

  void run() {
    std::vector<std::string> scopes;
    parseDeclScope(0, toks_.size() - 1, scopes);
    markPostSoloLambdas();
  }

 private:
  FileModel& fm_;
  const std::vector<Token>& toks_;

  const Token& tok(std::size_t i) const {
    return i < toks_.size() ? toks_[i] : toks_.back();
  }

  static std::string joinScopes(const std::vector<std::string>& scopes,
                                const std::string& name) {
    std::string q;
    for (const auto& s : scopes) {
      if (s.empty()) continue;
      q += s;
      q += "::";
    }
    return q + name;
  }

  /// Parse declarations between [i, end): file, namespace, or class
  /// scope.  Never called for function bodies.
  void parseDeclScope(std::size_t i, std::size_t end,
                      std::vector<std::string>& scopes) {
    while (i < end) {
      const Token& t = tok(i);
      if (t.kind == TokKind::End) break;
      if (t.is(";") || t.is("}")) {
        ++i;
        continue;
      }
      if (t.is("namespace")) {
        i = parseNamespace(i, end, scopes);
        continue;
      }
      if (t.is("class") || t.is("struct") || t.is("union")) {
        i = parseClass(i, end, scopes);
        continue;
      }
      if (t.is("enum")) {
        i = skipToStatementEnd(i, end);
        continue;
      }
      if (t.is("template")) {
        ++i;
        if (tok(i).is("<")) i = skipAngles(toks_, i);
        continue;  // the templated decl itself parses normally
      }
      if (t.is("using") || t.is("typedef") || t.is("friend") ||
          t.is("static_assert") || t.is("extern")) {
        i = skipToStatementEnd(i, end);
        continue;
      }
      i = parseDeclaration(i, end, scopes);
    }
  }

  std::size_t parseNamespace(std::size_t i, std::size_t end,
                             std::vector<std::string>& scopes) {
    ++i;  // "namespace"
    std::string name;
    while (i < end && (tok(i).isIdent() || tok(i).is("::"))) {
      name += tok(i).text;
      ++i;
    }
    if (tok(i).is("=")) return skipToStatementEnd(i, end);  // alias
    if (!tok(i).is("{")) return skipToStatementEnd(i, end);
    const std::size_t close = matchBracket(toks_, i);
    scopes.push_back(name);
    parseDeclScope(i + 1, close, scopes);
    scopes.pop_back();
    return close + 1;
  }

  std::size_t parseClass(std::size_t i, std::size_t end,
                         std::vector<std::string>& scopes) {
    ++i;  // class/struct/union
    std::string name;
    // The class name is the last plain identifier before the base
    // clause / body; attribute macros with arguments are skipped.
    while (i < end) {
      const Token& t = tok(i);
      if (t.isIdent()) {
        name = t.text;
        ++i;
        if (tok(i).is("(")) i = matchBracket(toks_, i) + 1;  // macro args
        else if (tok(i).is("<")) i = skipAngles(toks_, i);   // specialization
        continue;
      }
      if (t.is("::")) {  // nested-name: keep only the last component
        ++i;
        continue;
      }
      break;
    }
    if (tok(i).is(";")) return i + 1;  // forward declaration
    if (tok(i).is(":")) {              // base clause: skip to the body
      while (i < end && !tok(i).is("{")) {
        if (tok(i).is("<")) i = skipAngles(toks_, i);
        else ++i;
      }
    }
    if (!tok(i).is("{")) return skipToStatementEnd(i, end);
    const std::size_t close = matchBracket(toks_, i);
    scopes.push_back(name);
    parseDeclScope(i + 1, close, scopes);
    scopes.pop_back();
    return skipToStatementEnd(close, end);  // trailing "};"
  }

  /// Parse one declaration statement that may be a function definition
  /// or prototype.  Returns the index to resume at.
  std::size_t parseDeclaration(std::size_t i, std::size_t end,
                               std::vector<std::string>& scopes) {
    const std::size_t stmt_begin = i;
    std::string name;       // last ident(::ident)* sequence seen
    int name_line = 0;
    bool reactor = false, blocking = false;

    while (i < end) {
      const Token& t = tok(i);
      if (t.kind == TokKind::End) return i;
      if (t.isIdent()) {
        if (t.text == "NINF_REACTOR_CONTEXT") reactor = true;
        if (t.text == "NINF_BLOCKING") blocking = true;
        if (t.text == "operator") {
          // operator name: fold the symbol tokens into the name.
          name = "operator";
          name_line = t.line;
          ++i;
          while (i < end && !tok(i).is("(")) name += tok(i++).text;
          if (name == "operator" && tok(i).is("(")) {
            name = "operator()";  // operator()(...) — fold the first pair
            i = matchBracket(toks_, i) + 1;
          }
          continue;
        }
        // Start (or continue) an identifier sequence.
        name = t.text;
        name_line = t.line;
        ++i;
        while (tok(i).is("::") && tok(i + 1).isIdent()) {
          name += "::" + tok(i + 1).text;
          name_line = tok(i + 1).line;
          i += 2;
        }
        if (tok(i).is("<")) i = skipAngles(toks_, i);
        continue;
      }
      if (t.is("(")) {
        // Candidate function: name(params) trailer {body} | ; | = 0;
        if (name.empty() ||
            statementKeywords().count(lastComponent(name)) > 0) {
          return skipToStatementEnd(i, end);
        }
        const std::size_t params_close = matchBracket(toks_, i);
        return parseFunctionTail(stmt_begin, name, name_line,
                                 params_close + 1, end, scopes, reactor,
                                 blocking);
      }
      if (t.is("{")) {
        // Brace-initialized variable (e.g. std::atomic<long> g{0}).
        return skipToStatementEnd(matchBracket(toks_, i), end);
      }
      if (t.is("=") || t.is(",") || t.is("[")) {
        return skipToStatementEnd(i, end);
      }
      if (t.is(";")) return i + 1;
      ++i;  // *, &, const, etc. — part of the declarator
    }
    return end;
  }

  std::size_t parseFunctionTail(std::size_t stmt_begin, std::string name,
                                int name_line, std::size_t i,
                                std::size_t end,
                                std::vector<std::string>& scopes,
                                bool reactor, bool blocking) {
    // Trailer after the parameter list: qualifiers, annotations,
    // trailing return, ctor initializer list — until the body or ';'.
    while (i < end) {
      const Token& t = tok(i);
      if (t.isIdent()) {
        if (t.text == "NINF_REACTOR_CONTEXT") reactor = true;
        if (t.text == "NINF_BLOCKING") blocking = true;
        ++i;
        if (tok(i).is("(")) i = matchBracket(toks_, i) + 1;  // macro/noexcept args
        continue;
      }
      if (t.is("->")) {  // trailing return type
        ++i;
        while (i < end && !tok(i).is("{") && !tok(i).is(";")) {
          if (tok(i).is("<")) i = skipAngles(toks_, i);
          else ++i;
        }
        continue;
      }
      if (t.is(":")) {  // ctor initializer list
        ++i;
        while (i < end) {
          while (i < end && tok(i).isIdent()) ++i;
          if (tok(i).is("<")) i = skipAngles(toks_, i);
          if (tok(i).is("(") || tok(i).is("{")) i = matchBracket(toks_, i) + 1;
          if (tok(i).is(",")) {
            ++i;
            continue;
          }
          break;
        }
        continue;
      }
      if (t.is("{") || t.is(";") || t.is("=")) break;
      ++i;
    }

    // A declaration inside a parameter list would never reach here;
    // decide what we are looking at.
    const bool is_def = tok(i).is("{");
    if (!is_def && !tok(i).is(";") && !tok(i).is("=")) {
      return skipToStatementEnd(i, end);
    }
    if (tok(i).is("=")) {
      // "= 0;", "= default;", "= delete;" are declarations; anything
      // else was a parenthesized variable initializer (not valid at
      // declarative scope, but be safe).
      const Token& v = tok(i + 1);
      if (!(v.is("0") || v.is("default") || v.is("delete"))) {
        return skipToStatementEnd(i, end);
      }
      i += 1;
    }

    FunctionModel fn;
    fn.qname = joinScopes(scopes, name);
    fn.name = lastComponent(name);
    fn.file = fm_.path;
    fn.line = name_line;
    fn.reactor_context = reactor;
    fn.blocking = blocking;
    (void)stmt_begin;
    if (is_def) {
      fn.has_body = true;
      fn.body_begin = i;
      fn.body_end = matchBracket(toks_, i);
      const std::size_t idx = fm_.functions.size();
      fm_.functions.push_back(std::move(fn));
      parseBody(idx, fm_.functions[idx].body_begin + 1,
                fm_.functions[idx].body_end);
      return fm_.functions[idx].body_end + 1;
    }
    fm_.functions.push_back(std::move(fn));
    return skipToStatementEnd(i, end);
  }

  /// Extract call sites (and nested lambdas) from a body token range.
  void parseBody(std::size_t fn_idx, std::size_t i, std::size_t end) {
    while (i < end) {
      const Token& t = tok(i);
      if (t.is("[") && isLambdaStart(i)) {
        i = parseLambda(fn_idx, i, end);
        continue;
      }
      if (t.isIdent() && tok(i + 1).is("(") &&
          statementKeywords().count(t.text) == 0) {
        CallSite cs;
        cs.callee = t.text;
        cs.line = t.line;
        cs.tok = i;
        if (i >= 2 && tok(i - 1).is("::") && tok(i - 2).isIdent()) {
          cs.qualifier = tok(i - 2).text;
        } else if (i >= 2 && (tok(i - 1).is(".") || tok(i - 1).is("->")) &&
                   tok(i - 2).isIdent()) {
          cs.receiver = tok(i - 2).text;
        }
        fm_.functions[fn_idx].calls.push_back(std::move(cs));
        ++i;
        continue;
      }
      ++i;
    }
  }

  bool isLambdaStart(std::size_t i) const {
    // '[' introduces a lambda unless the previous token makes it a
    // subscript (ident, ')', ']') or an attribute ('[[').
    if (i > 0) {
      const Token& p = tok(i - 1);
      if (p.isIdent() || p.is(")") || p.is("]") || p.is("[")) return false;
    }
    if (tok(i + 1).is("[")) return false;  // [[attribute]]
    const std::size_t close = matchBracket(toks_, i);
    const Token& after = tok(close + 1);
    return after.is("(") || after.is("{") || after.is("mutable") ||
           after.is("->") || after.is("noexcept");
  }

  /// Parse a lambda as its own FunctionModel; returns resume index.
  std::size_t parseLambda(std::size_t outer_idx, std::size_t i,
                          std::size_t end) {
    const int line = tok(i).line;
    std::size_t j = matchBracket(toks_, i) + 1;  // past capture list
    if (tok(j).is("(")) j = matchBracket(toks_, j) + 1;
    while (j < end && !tok(j).is("{")) {
      if (tok(j).is(";")) return j;  // not a lambda after all
      if (tok(j).is("<")) j = skipAngles(toks_, j);
      else ++j;
    }
    if (!tok(j).is("{")) return j;
    const std::size_t body_close = matchBracket(toks_, j);

    FunctionModel fn;
    fn.qname = fm_.functions[outer_idx].qname + "::<lambda:" +
               std::to_string(line) + ">";
    fn.name = "<lambda:" + std::to_string(line) + ">";
    fn.file = fm_.path;
    fn.line = line;
    fn.is_lambda = true;
    fn.has_body = true;
    fn.body_begin = j;
    fn.body_end = body_close;
    const std::size_t idx = fm_.functions.size();
    fm_.functions.push_back(std::move(fn));
    parseBody(idx, j + 1, body_close);
    return body_close + 1;
  }

  /// Lambdas written directly inside a postSolo(...) argument list run
  /// on the reactor thread: mark the outermost ones as reactor roots.
  /// Lambdas nested inside those (work handed onward to workers) stay
  /// unmarked.
  void markPostSoloLambdas() {
    for (std::size_t i = 0; i + 1 < toks_.size(); ++i) {
      if (!(toks_[i].isIdent() && toks_[i].text == "postSolo" &&
            toks_[i + 1].is("("))) {
        continue;
      }
      const std::size_t close = matchBracket(toks_, i + 1);
      // Candidate lambdas whose definition lies inside the call args.
      std::vector<FunctionModel*> in_range;
      for (auto& fn : fm_.functions) {
        if (fn.is_lambda && fn.body_begin > i + 1 && fn.body_end < close) {
          in_range.push_back(&fn);
        }
      }
      for (auto* fn : in_range) {
        bool nested = false;
        for (auto* other : in_range) {
          if (other != fn && fn->body_begin > other->body_begin &&
              fn->body_end < other->body_end) {
            nested = true;
            break;
          }
        }
        if (!nested) fn->reactor_context = true;
      }
    }
  }

  std::size_t skipToStatementEnd(std::size_t i, std::size_t end) {
    while (i < end) {
      const Token& t = tok(i);
      if (t.is(";")) return i + 1;
      if (isOpen(t)) {
        i = matchBracket(toks_, i) + 1;
        continue;
      }
      if (t.is("}")) return i;  // scope closer: let the caller see it
      ++i;
    }
    return end;
  }
};

void collectSuppressions(FileModel& fm) {
  const auto& toks = fm.toks;
  for (std::size_t i = 0; i + 5 < toks.size(); ++i) {
    if (!(toks[i].isIdent() && toks[i].text == "NINF_TIDY_SUPPRESS" &&
          toks[i + 1].is("("))) {
      continue;
    }
    Suppression s;
    s.file = fm.path;
    // Anchor the waiver window at the macro's closing paren: a long
    // justification may wrap over several lines, and the statement it
    // covers sits below the whole call.
    s.line = toks[i].line;
    std::size_t j = i + 1;
    for (int depth = 0; j < toks.size(); ++j) {
      if (toks[j].is("(")) ++depth;
      if (toks[j].is(")") && --depth == 0) {
        s.line = toks[j].line;
        break;
      }
    }
    if (toks[i + 2].kind == TokKind::String) s.check = toks[i + 2].text;
    if (toks[i + 3].is(",") && toks[i + 4].kind == TokKind::String) {
      s.reason = toks[i + 4].text;
    }
    fm.suppressions.push_back(std::move(s));
  }
}

/// Record `Mutex var{"class"}` / `Mutex var("class")` / `Mutex var;`
/// declarations (the class defaults to "mutex" when omitted).
void collectMutexClasses(const FileModel& fm,
                         std::map<std::string, std::set<std::string>>& out) {
  const auto& toks = fm.toks;
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (!(toks[i].isIdent() && toks[i].text == "Mutex")) continue;
    if (!toks[i + 1].isIdent()) continue;
    const std::string& var = toks[i + 1].text;
    const Token& next = toks[i + 2];
    if (next.is("{") || next.is("(")) {
      if (toks[i + 3].kind == TokKind::String) {
        out[var].insert(toks[i + 3].text);
      }
    } else if (next.is(";") || next.is("=")) {
      out[var].insert("mutex");
    }
  }
}

/// Record declared variable/field types: `Type name;`, `Type& name`,
/// `Type name{...}`, `std::future<T> name`, `std::vector<T> name`.
/// Only the type's last component is kept.
void collectVarTypes(const FileModel& fm,
                     std::map<std::string, std::set<std::string>>& out) {
  const auto& toks = fm.toks;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!toks[i].isIdent()) continue;
    std::string type = toks[i].text;
    const bool smart_ptr =
        type == "unique_ptr" || type == "shared_ptr";
    if (type.empty() || !std::isupper(static_cast<unsigned char>(type[0]))) {
      // Lowercase types we still care about: future, vector, deque...
      if (type != "future" && type != "vector" && type != "deque" &&
          type != "optional" && !smart_ptr) {
        continue;
      }
    }
    std::size_t j = i + 1;
    if (toks[j].is("<")) {
      if (smart_ptr) {
        // unique_ptr<Stream> s: calls through `s->` dispatch on the
        // pointee, so record that as the variable's type.
        std::size_t k = j + 1;
        while (k < toks.size() && toks[k].is("::")) ++k;
        std::string pointee;
        for (; k < toks.size() && (toks[k].isIdent() || toks[k].is("::"));
             ++k) {
          pointee = toks[k].isIdent() ? toks[k].text : pointee;
        }
        if (!pointee.empty()) type = pointee;
      }
      j = skipAngles(toks, j);
    }
    while (toks[j].is("&") || toks[j].is("*") || toks[j].is("const")) ++j;
    if (!toks[j].isIdent()) continue;
    const std::string& var = toks[j].text;
    const Token& after = toks[j + 1];
    // NINF_GUARDED_BY / NINF_PT_GUARDED_BY etc. sit between the
    // declarator and its terminator: `Stream* wire_ NINF_GUARDED_BY(m_);`.
    const bool annotated =
        after.isIdent() && after.text.rfind("NINF_", 0) == 0;
    if (after.is(";") || after.is("=") || after.is("{") || after.is(",") ||
        after.is(")") || annotated) {
      out[var].insert(type);
    }
  }
}

}  // namespace

FileModel parseFile(const std::string& path, const std::string& text) {
  FileModel fm;
  fm.path = path;
  fm.toks = lex(text);
  collectSuppressions(fm);
  Parser(fm).run();
  collectMutexClasses(fm, fm.mutex_classes);
  collectVarTypes(fm, fm.var_types);
  return fm;
}

namespace {

/// Path without its extension: "src/server/metrics.cpp" and
/// "src/server/metrics.h" pair up as one translation unit.
std::string pathStem(const std::string& path) {
  const auto slash = path.rfind('/');
  const auto dot = path.rfind('.');
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash)) {
    return path;
  }
  return path.substr(0, dot);
}

}  // namespace

const FunctionModel* Project::findQualified(const std::string& cls,
                                            const std::string& fn) const {
  const std::string suffix = cls + "::" + fn;
  for (auto [it, last] = by_name.equal_range(fn); it != last; ++it) {
    const FunctionModel* f = all_functions[it->second];
    if (f->qname.size() < suffix.size()) continue;
    if (f->qname.compare(f->qname.size() - suffix.size(), suffix.size(),
                         suffix) != 0) {
      continue;
    }
    // Component-aligned only: "Sink::flush" must not match
    // "StreamSink::flush".
    const std::size_t at = f->qname.size() - suffix.size();
    if (at == 0 || f->qname[at - 1] == ':') return f;
  }
  return nullptr;
}

std::string Project::typeOf(const std::string& var) const {
  auto it = var_types.find(var);
  if (it == var_types.end() || it->second.size() != 1) return "";
  return *it->second.begin();
}

std::string Project::lockClassOf(const std::string& var) const {
  auto it = mutex_classes.find(var);
  if (it == mutex_classes.end() || it->second.size() != 1) return "";
  return *it->second.begin();
}

namespace {

std::string resolveScoped(
    const std::vector<FileModel>& files, const std::string& file,
    const std::string& var,
    std::map<std::string, std::set<std::string>> FileModel::*table,
    const std::string& global_answer) {
  const std::string stem = pathStem(file);
  std::set<std::string> local;
  bool present = false;
  for (const auto& fm : files) {
    if (pathStem(fm.path) != stem) continue;
    auto it = (fm.*table).find(var);
    if (it != (fm.*table).end()) {
      present = true;
      local.insert(it->second.begin(), it->second.end());
    }
  }
  if (local.size() == 1) return *local.begin();
  if (present) return "";  // declared here with conflicting meanings
  return global_answer;
}

}  // namespace

std::string Project::typeIn(const std::string& file,
                            const std::string& var) const {
  return resolveScoped(files, file, var, &FileModel::var_types, typeOf(var));
}

std::string Project::lockClassIn(const std::string& file,
                                 const std::string& var) const {
  return resolveScoped(files, file, var, &FileModel::mutex_classes,
                       lockClassOf(var));
}

Project buildProject(std::vector<FileModel> files) {
  Project p;
  p.files = std::move(files);

  // Cross-file annotation propagation: an annotation on either the
  // declaration or the definition covers both.
  std::map<std::string, std::pair<bool, bool>> ann;  // qname -> (reactor, blocking)
  for (const auto& fm : p.files) {
    for (const auto& fn : fm.functions) {
      auto& a = ann[fn.qname];
      a.first |= fn.reactor_context;
      a.second |= fn.blocking;
    }
  }
  for (auto& fm : p.files) {
    collectMutexClasses(fm, p.mutex_classes);
    collectVarTypes(fm, p.var_types);
    for (auto& fn : fm.functions) {
      const auto& a = ann[fn.qname];
      fn.reactor_context = fn.reactor_context || a.first;
      fn.blocking = fn.blocking || a.second;
    }
  }
  for (const auto& fm : p.files) {
    for (const auto& fn : fm.functions) {
      p.all_functions.push_back(&fn);
      p.by_name.emplace(fn.name, p.all_functions.size() - 1);
      const auto pos = fn.qname.rfind("::");
      if (pos != std::string::npos && !fn.is_lambda) {
        const auto prev = fn.qname.rfind("::", pos - 1);
        const std::string cls =
            prev == std::string::npos
                ? fn.qname.substr(0, pos)
                : fn.qname.substr(prev + 2, pos - prev - 2);
        if (!cls.empty()) p.known_classes.insert(cls);
      }
    }
  }
  return p;
}

}  // namespace ninf_tidy
