#include "checks.h"

#include <algorithm>
#include <cctype>
#include <deque>
#include <map>
#include <set>
#include <sstream>
#include <tuple>

namespace ninf_tidy {

namespace {

// ------------------------------------------------------------ config

/// Blocking primitives that cannot carry a NINF_BLOCKING annotation
/// (libc / std::).  In-repo blocking APIs are annotated instead.
const std::set<std::string>& blockingPrimitives() {
  static const std::set<std::string> s = {
      "connect", "accept",      "join",   "sleep_for",
      "sleep_until", "usleep",  "nanosleep", "select", "poll",
  };
  return s;
}

/// Lock classes a reactor-context function may acquire: leaf locks
/// with bounded hold times (documented in docs/ANALYSIS.md).
/// "server.pending" qualifies only because the sweeper holds it in
/// bounded chunks — see NinfServer::sweepPending.
const std::set<std::string>& reactorSafeLockClasses() {
  static const std::set<std::string> s = {
      "server.reactor.solo", "pool.buffers",  "obs.registry",
      "obs.trace.buffer",    "obs.trace.registry",
      "server.metrics",      "jobqueue",      "registry",
      "log.sink",            "server.cache",  "server.pending",
  };
  return s;
}

/// Call names too generic to build call-graph edges from by name alone
/// (std:: containers and smart pointers); edges through them would be
/// noise.  Typed/qualified calls still resolve precisely.
const std::set<std::string>& noiseCallees() {
  static const std::set<std::string> s = {
      "push_back", "emplace_back", "pop_back",  "pop_front", "push_front",
      "size",      "empty",        "begin",     "end",       "find",
      "count",     "insert",       "erase",     "clear",     "front",
      "back",      "reset",        "release",   "swap",      "at",
      "substr",    "c_str",        "data",      "get",       "move",
      "forward",   "make_unique",  "make_shared", "to_string", "emplace",
      "resize",    "reserve",      "str",       "length",    "append",
      "compare",   "load",         "store",     "fetch_add", "exchange",
      "lock",      "unlock",       "try_lock",  "notify_one", "notify_all",
      "min",       "max",          "abs",       "what",      "value",
      "push",      "pop",          "first",     "second",    "test",
      "wait",      "wait_for",     "wait_until", "flush",    "write",
      "read",      "close",        "open",
  };
  return s;
}

// ------------------------------------------------------------ helpers

struct Ctx {
  const Project& p;
  std::map<std::string, const FileModel*> by_path;

  explicit Ctx(const Project& project) : p(project) {
    for (const auto& fm : p.files) by_path[fm.path] = &fm;
  }

  const std::vector<Token>& toksOf(const FunctionModel& fn) const {
    return by_path.at(fn.file)->toks;
  }
};

/// Type of `var` as seen from inside `fn`: a declaration in the
/// function's own signature/body wins (including `auto`, which makes
/// the type unknown rather than falling back to an unrelated file's
/// variable of the same name); otherwise the file-pair table, then the
/// global table.
std::string typeFor(const Ctx& ctx, const FunctionModel& fn,
                    const std::string& var) {
  if (var.empty() || !fn.has_body) return ctx.p.typeIn(fn.file, var);
  const auto& toks = ctx.toksOf(fn);
  // Include the parameter list: scan back from the body, but never
  // into the previous function's body in the same file.
  std::size_t begin = fn.body_begin > 96 ? fn.body_begin - 96 : 0;
  for (const auto& other : ctx.by_path.at(fn.file)->functions) {
    if (&other != &fn && other.has_body && other.body_end < fn.body_begin) {
      begin = std::max(begin, other.body_end + 1);
    }
  }
  std::set<std::string> found;
  bool declared = false;
  for (std::size_t i = begin + 1; i <= fn.body_end && i < toks.size(); ++i) {
    if (!(toks[i].isIdent() && toks[i].text == var)) continue;
    std::size_t j = i;
    while (j > begin &&
           (toks[j - 1].is("&") || toks[j - 1].is("*") ||
            toks[j - 1].is("const"))) {
      --j;
    }
    if (j == begin || !toks[j - 1].isIdent()) continue;
    const std::string& type = toks[j - 1].text;
    if (type == "auto") {
      declared = true;  // declared here, type unresolvable
    } else if (std::isupper(static_cast<unsigned char>(type[0]))) {
      declared = true;
      found.insert(type);
    }
  }
  if (found.size() == 1) return *found.begin();
  if (declared) return "";
  return ctx.p.typeIn(fn.file, var);
}

/// The mutex expression of a LockGuard/UniqueLock constructor: the
/// last identifier of the first argument, so `g(state.mutex_)`,
/// `g(self->mu_)` and `g(pool().mutex)` all resolve to the member.
struct LockArg {
  std::string var;
  bool more_args = false;  // UniqueLock(m, defer_lock)
};

LockArg lockArgOf(const std::vector<Token>& toks, std::size_t open) {
  LockArg out;
  const std::size_t close = matchBracket(toks, open);
  int depth = 0;
  for (std::size_t j = open + 1; j < close; ++j) {
    const Token& t = toks[j];
    if (t.is("(") || t.is("[") || t.is("{")) ++depth;
    else if (t.is(")") || t.is("]") || t.is("}")) --depth;
    else if (t.is(",") && depth == 0) {
      out.more_args = true;
      break;
    } else if (t.isIdent() && depth == 0) {
      out.var = t.text;
    }
  }
  return out;
}

bool underObsDir(const std::string& path) {
  return path.find("src/obs/") != std::string::npos ||
         path.find("obs/metrics") != std::string::npos ||
         path.find("obs/trace") != std::string::npos;
}

void addDiag(std::vector<Diagnostic>& out, std::string check,
             const std::string& file, int line, std::string message) {
  out.push_back(Diagnostic{std::move(check), file, line, std::move(message)});
}

/// Class that encloses `fn` (lambdas resolve to their outer method's
/// class), or "" for free functions.
std::string enclosingClass(const Project& p, const FunctionModel& fn) {
  std::string q = fn.qname;
  while (true) {  // strip <lambda:N> components
    const auto lam = q.rfind("::<lambda:");
    if (lam == std::string::npos) break;
    q = q.substr(0, lam);
  }
  const auto fn_sep = q.rfind("::");
  if (fn_sep == std::string::npos) return "";
  q = q.substr(0, fn_sep);
  const auto cls_sep = q.rfind("::");
  const std::string cls =
      cls_sep == std::string::npos ? q : q.substr(cls_sep + 2);
  return p.known_classes.count(cls) > 0 ? cls : "";
}

/// Candidate definitions/declarations a call site may resolve to.
std::vector<const FunctionModel*> resolveCall(const Ctx& ctx,
                                              const FunctionModel& caller,
                                              const CallSite& cs) {
  const Project& p = ctx.p;
  if (!cs.qualifier.empty()) {
    if (const auto* f = p.findQualified(cs.qualifier, cs.callee)) return {f};
    return {};
  }
  if (!cs.receiver.empty()) {
    const std::string type = typeFor(ctx, caller, cs.receiver);
    if (!type.empty()) {
      if (const auto* f = p.findQualified(type, cs.callee)) return {f};
      // Known type without a matching method (e.g. a smart-pointer
      // wrapper): fall through to name matching.
    }
  } else {
    // A plain `helper(...)` inside a method is most plausibly a member
    // call (or a virtual on *this): resolve against the caller's own
    // class before falling back to name-wide matching.
    const std::string cls = enclosingClass(p, caller);
    if (!cls.empty()) {
      if (const auto* f = p.findQualified(cls, cs.callee)) return {f};
    }
  }
  if (noiseCallees().count(cs.callee) > 0) return {};
  std::vector<const FunctionModel*> out;
  for (auto [it, last] = p.by_name.equal_range(cs.callee); it != last; ++it) {
    out.push_back(p.all_functions[it->second]);
  }
  if (out.size() > 8) return {};  // too ambiguous to mean anything
  return out;
}

/// One mutex acquisition site inside a function body.
struct LockSite {
  std::string mutex_var;
  std::string guard_var;  // empty for direct m.lock()
  int line = 0;
  std::size_t tok = 0;
};

std::vector<LockSite> scanLockSites(const Ctx& ctx, const FunctionModel& fn) {
  std::vector<LockSite> out;
  const auto& toks = ctx.toksOf(fn);
  for (std::size_t i = fn.body_begin; i < fn.body_end; ++i) {
    const Token& t = toks[i];
    if (t.isIdent() && (t.text == "LockGuard" || t.text == "UniqueLock") &&
        toks[i + 1].isIdent() &&
        (toks[i + 2].is("(") || toks[i + 2].is("{"))) {
      // LockGuard g(mutex_);  LockGuard g(state.mutex_);
      // UniqueLock lock(mutex_, defer_lock);
      const LockArg arg = lockArgOf(toks, i + 2);
      if (!arg.var.empty()) {
        out.push_back(LockSite{arg.var, toks[i + 1].text, t.line, i});
      }
      continue;
    }
    if (t.isIdent() && t.text == "lock" && toks[i + 1].is("(") &&
        i >= 2 && (toks[i - 1].is(".") || toks[i - 1].is("->")) &&
        toks[i - 2].isIdent() &&
        ctx.p.mutex_classes.count(toks[i - 2].text) > 0) {
      out.push_back(LockSite{toks[i - 2].text, "", t.line, i});
    }
  }
  return out;
}

// -------------------------------------------- check: reactor-blocking

void checkReactorBlocking(const Ctx& ctx, std::vector<Diagnostic>& out) {
  const Project& p = ctx.p;
  std::deque<const FunctionModel*> queue;
  std::set<const FunctionModel*> visited;
  std::map<const FunctionModel*, const FunctionModel*> parent;

  for (const auto* fn : p.all_functions) {
    if (fn->reactor_context && fn->has_body) {
      queue.push_back(fn);
      visited.insert(fn);
    }
  }

  auto pathTo = [&](const FunctionModel* fn) {
    std::vector<std::string> hops;
    for (const FunctionModel* f = fn; f != nullptr;) {
      hops.push_back(f->qname);
      auto it = parent.find(f);
      f = it == parent.end() ? nullptr : it->second;
    }
    std::reverse(hops.begin(), hops.end());
    std::string s;
    for (const auto& h : hops) {
      if (!s.empty()) s += " -> ";
      s += h;
    }
    return s;
  };

  while (!queue.empty()) {
    const FunctionModel* fn = queue.front();
    queue.pop_front();

    for (const LockSite& ls : scanLockSites(ctx, *fn)) {
      const std::string cls = p.lockClassIn(fn->file, ls.mutex_var);
      if (cls.empty()) {
        addDiag(out, "reactor-blocking", fn->file, ls.line,
                "reactor context acquires mutex '" + ls.mutex_var +
                    "' with unknown/ambiguous lock class (reached via " +
                    pathTo(fn) + ")");
      } else if (reactorSafeLockClasses().count(cls) == 0) {
        addDiag(out, "reactor-blocking", fn->file, ls.line,
                "reactor context acquires non-leaf lock class '" + cls +
                    "' via mutex '" + ls.mutex_var + "' (reached via " +
                    pathTo(fn) + ")");
      }
    }

    for (const CallSite& cs : fn->calls) {
      if (blockingPrimitives().count(cs.callee) > 0) {
        addDiag(out, "reactor-blocking", fn->file, cs.line,
                "reactor context calls blocking primitive '" + cs.callee +
                    "' (reached via " + pathTo(fn) + ")");
        continue;
      }
      if ((cs.callee == "wait" || cs.callee == "wait_for" ||
           cs.callee == "wait_until") &&
          typeFor(ctx, *fn, cs.receiver) == "CondVar") {
        addDiag(out, "reactor-blocking", fn->file, cs.line,
                "reactor context waits on CondVar '" + cs.receiver +
                    "' (reached via " + pathTo(fn) + ")");
        continue;
      }
      if ((cs.callee == "get" || cs.callee == "wait") &&
          typeFor(ctx, *fn, cs.receiver) == "future") {
        addDiag(out, "reactor-blocking", fn->file, cs.line,
                "reactor context blocks on future '" + cs.receiver +
                    "' (reached via " + pathTo(fn) + ")");
        continue;
      }
      const auto candidates = resolveCall(ctx, *fn, cs);
      bool blocking = false;
      for (const auto* cand : candidates) {
        if (cand->blocking) blocking = true;
      }
      if (blocking) {
        addDiag(out, "reactor-blocking", fn->file, cs.line,
                "reactor context calls NINF_BLOCKING API '" + cs.callee +
                    "' (reached via " + pathTo(fn) + ")");
        continue;
      }
      for (const auto* cand : candidates) {
        if (cand->has_body && visited.insert(cand).second) {
          parent[cand] = fn;
          queue.push_back(cand);
        }
      }
    }
  }
}

// --------------------------------------------- check: codec-symmetry

/// Normalized wire primitive per put/get call, or "" if not one.
std::string primOp(const std::string& callee) {
  static const std::map<std::string, std::string> prims = {
      {"putU32", "u32"},    {"getU32", "u32"},    {"checkedCount", "u32"},
      {"putU64", "u64"},    {"getU64", "u64"},
      {"putU16", "u16"},    {"getU16", "u16"},
      {"putU8", "u8"},      {"getU8", "u8"},
      {"putDouble", "f64"}, {"getDouble", "f64"},
      {"putBool", "bool"},  {"getBool", "bool"},
      {"putString", "str"}, {"getString", "str"},
      {"putRaw", "raw"},    {"getRaw", "raw"},
      {"putBytes", "raw"},  {"getBytes", "raw"},
      {"putStrings", "str-list"}, {"getStrings", "str-list"},
  };
  auto it = prims.find(callee);
  return it == prims.end() ? "" : it->second;
}

/// Ordered wire ops for one codec function.  Ops inside loops carry a
/// trailing "*"; nested codecs appear as "nested:Type" (or "nested:?"
/// when the operand's type cannot be resolved — "?" matches any type).
std::vector<std::string> codecOps(const Ctx& ctx, const FunctionModel& fn) {
  const auto& toks = ctx.toksOf(fn);
  // Loop body ranges (for/while/do) inside this function.
  std::vector<std::pair<std::size_t, std::size_t>> loops;
  for (std::size_t i = fn.body_begin; i < fn.body_end; ++i) {
    const Token& t = toks[i];
    if (t.isIdent() && (t.text == "for" || t.text == "while") &&
        toks[i + 1].is("(")) {
      const std::size_t close = matchBracket(toks, i + 1);
      if (toks[close + 1].is("{")) {
        loops.emplace_back(close + 1, matchBracket(toks, close + 1));
      } else {
        // Unbraced single-statement loop body.
        std::size_t j = close + 1;
        while (j < fn.body_end && !toks[j].is(";")) ++j;
        loops.emplace_back(close + 1, j);
      }
    } else if (t.isIdent() && t.text == "do" && toks[i + 1].is("{")) {
      loops.emplace_back(i + 1, matchBracket(toks, i + 1));
    }
  }
  auto inLoop = [&](std::size_t i) {
    for (const auto& [b, e] : loops) {
      if (i > b && i < e) return true;
    }
    return false;
  };

  std::vector<std::string> ops;
  for (const CallSite& cs : fn.calls) {
    std::string op = primOp(cs.callee);
    if (op.empty()) {
      if (cs.callee == "encode" && !cs.receiver.empty()) {
        const std::string type = typeFor(ctx, fn, cs.receiver);
        op = "nested:" + (type.empty() ? std::string("?") : type);
      } else if (cs.callee == "decode" && !cs.qualifier.empty()) {
        op = "nested:" + cs.qualifier;
      } else {
        continue;
      }
    }
    if (inLoop(cs.tok)) op += "*";
    ops.push_back(std::move(op));
  }
  return ops;
}

bool opsMatch(const std::string& a, const std::string& b) {
  if (a == b) return true;
  // Loop markers must agree; nested:? is a type wildcard.
  const bool la = !a.empty() && a.back() == '*';
  const bool lb = !b.empty() && b.back() == '*';
  if (la != lb) return false;
  const std::string ba = la ? a.substr(0, a.size() - 1) : a;
  const std::string bb = lb ? b.substr(0, b.size() - 1) : b;
  if (ba == bb) return true;
  const bool na = ba.rfind("nested:", 0) == 0;
  const bool nb = bb.rfind("nested:", 0) == 0;
  return na && nb && (ba == "nested:?" || bb == "nested:?");
}

std::string joinOps(const std::vector<std::string>& ops) {
  std::string s;
  for (const auto& op : ops) {
    if (!s.empty()) s += " ";
    s += op;
  }
  return s.empty() ? "<none>" : s;
}

void checkCodecSymmetry(const Ctx& ctx, std::vector<Diagnostic>& out) {
  struct Pair {
    const FunctionModel* enc = nullptr;
    const FunctionModel* dec = nullptr;
  };
  std::map<std::string, Pair> pairs;
  auto prefixOf = [](const FunctionModel& fn) {
    const auto pos = fn.qname.rfind("::");
    return pos == std::string::npos ? std::string() : fn.qname.substr(0, pos);
  };
  for (const auto* fn : ctx.p.all_functions) {
    if (!fn->has_body || fn->is_lambda) continue;
    const std::string prefix = prefixOf(*fn);
    if (fn->name == "encode") pairs[prefix + "|ed"].enc = fn;
    else if (fn->name == "decode") pairs[prefix + "|ed"].dec = fn;
    else if (fn->name == "toBytes") pairs[prefix + "|tb"].enc = fn;
    else if (fn->name == "fromBytes") pairs[prefix + "|tb"].dec = fn;
    else if (fn->name.rfind("encode", 0) == 0 && fn->name.size() > 6) {
      pairs[prefix + "|f:" + fn->name.substr(6)].enc = fn;
    } else if (fn->name.rfind("decode", 0) == 0 && fn->name.size() > 6) {
      pairs[prefix + "|f:" + fn->name.substr(6)].dec = fn;
    }
  }
  for (const auto& [key, pr] : pairs) {
    if (pr.enc == nullptr || pr.dec == nullptr) continue;
    const auto enc_ops = codecOps(ctx, *pr.enc);
    const auto dec_ops = codecOps(ctx, *pr.dec);
    if (enc_ops.empty() && dec_ops.empty()) continue;  // not wire codecs
    std::size_t i = 0;
    const std::size_t n = std::min(enc_ops.size(), dec_ops.size());
    while (i < n && opsMatch(enc_ops[i], dec_ops[i])) ++i;
    if (i == enc_ops.size() && i == dec_ops.size()) continue;
    std::ostringstream msg;
    msg << "codec asymmetry between " << pr.enc->qname << " and "
        << pr.dec->qname << ": ";
    if (i < n) {
      msg << "op " << (i + 1) << " encodes '" << enc_ops[i]
          << "' but decodes '" << dec_ops[i] << "'";
    } else if (enc_ops.size() > dec_ops.size()) {
      msg << "encode writes " << enc_ops.size() << " ops, decode reads only "
          << dec_ops.size() << " (missing '" << enc_ops[i] << "')";
    } else {
      msg << "decode reads " << dec_ops.size() << " ops, encode writes only "
          << enc_ops.size() << " (extra '" << dec_ops[i] << "')";
    }
    msg << " [encode: " << joinOps(enc_ops) << "] [decode: "
        << joinOps(dec_ops) << "]";
    addDiag(out, "codec-symmetry", pr.enc->file, pr.enc->line, msg.str());
  }
}

// ---------------------------------------------- check: pool-lifetime

bool pooledTypeName(const Token& t) {
  return t.isIdent() && (t.text == "PooledBuffer" || t.text == "Frame");
}

void checkPoolLifetime(const Ctx& ctx, std::vector<Diagnostic>& out) {
  for (const auto& fm : ctx.p.files) {
    const auto& toks = fm.toks;

    // R3: static storage of pooled buffers (directly or in containers).
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if (!(toks[i].isIdent() && toks[i].text == "static")) continue;
      for (std::size_t j = i + 1; j < toks.size() && j < i + 16; ++j) {
        if (toks[j].is(";") || toks[j].is("(")) break;
        if (toks[j].isIdent() && toks[j].text == "PooledBuffer") {
          addDiag(out, "pool-lifetime", fm.path, toks[i].line,
                  "PooledBuffer stored with static storage duration "
                  "outlives its pool's thread caches");
          break;
        }
      }
    }

    for (const auto& fn : fm.functions) {
      if (!fn.has_body) continue;
      std::set<std::string> pooled;

      // Pass 1: pooled locals/params, and R1 (copy instead of move).
      for (std::size_t i = fn.body_begin; i + 2 < fn.body_end; ++i) {
        if (pooledTypeName(toks[i]) && toks[i + 1].isIdent()) {
          const Token& after = toks[i + 2];
          if (after.is(";") || after.is("=") || after.is("{") ||
              after.is("(") || after.is(",") || after.is(")") ||
              after.is("&")) {
            const std::string var =
                toks[i + 1 + (after.is("&") ? 1 : 0)].isIdent()
                    ? toks[i + 1].text
                    : "";
            if (!var.empty()) pooled.insert(var);
            if (after.is("=")) {
              std::size_t j = i + 3;
              bool deref = false;
              if (toks[j].is("*")) {
                deref = true;
                ++j;
              }
              if (toks[j].isIdent() && toks[j + 1].is(";") &&
                  toks[j].text != "nullptr") {
                addDiag(out, "pool-lifetime", fm.path, toks[i].line,
                        std::string(deref ? "dereferenced " : "") +
                            "pooled buffer '" + toks[j].text +
                            "' initialized '" + toks[i + 1].text +
                            "' by copy; use std::move");
              }
            }
          }
          continue;
        }
        // `auto v = acquireBuffer(...)` / flattenFramePooled(...)
        if (toks[i].isIdent() && toks[i].text == "auto") {
          std::size_t j = i + 1;
          while (toks[j].is("*") || toks[j].is("&") || toks[j].is("const")) {
            ++j;
          }
          if (toks[j].isIdent() && toks[j + 1].is("=")) {
            for (std::size_t k = j + 2; k < fn.body_end && k < j + 12; ++k) {
              if (toks[k].is(";")) break;
              if (toks[k].isIdent() && (toks[k].text == "acquireBuffer" ||
                                        toks[k].text == "flattenFramePooled")) {
                pooled.insert(toks[j].text);
                break;
              }
            }
          }
        }
      }
      if (pooled.empty()) continue;

      // Pass 2: escapes.
      for (std::size_t i = fn.body_begin; i + 4 < fn.body_end; ++i) {
        // R4: returning a view of a local pooled buffer.
        if (toks[i].isIdent() && toks[i].text == "return" &&
            toks[i + 1].isIdent() && pooled.count(toks[i + 1].text) > 0 &&
            (toks[i + 2].is(".") || toks[i + 2].is("->")) &&
            toks[i + 3].isIdent() &&
            (toks[i + 3].text == "data" || toks[i + 3].text == "span" ||
             toks[i + 3].text == "writableSpan") &&
            toks[i + 4].is("(")) {
          addDiag(out, "pool-lifetime", fm.path, toks[i].line,
                  "returning " + toks[i + 3].text + "() view of local "
                  "pooled buffer '" + toks[i + 1].text +
                  "' dangles once the buffer is released");
          continue;
        }
        // R2: binding .data() into a freshly declared pointer.
        if (toks[i].is("=") && toks[i + 1].isIdent() &&
            pooled.count(toks[i + 1].text) > 0 &&
            (toks[i + 2].is(".") || toks[i + 2].is("->")) &&
            toks[i + 3].isIdent() && toks[i + 3].text == "data" &&
            toks[i + 4].is("(")) {
          // Declaration if "= " is preceded by `Type [*&] name` rather
          // than a member/array assignment target.
          if (i >= 2 && toks[i - 1].isIdent() &&
              (toks[i - 2].is("*") || toks[i - 2].is("&") ||
               toks[i - 2].isIdent())) {
            addDiag(out, "pool-lifetime", fm.path, toks[i].line,
                    "data() of pooled buffer '" + toks[i + 1].text +
                        "' bound to named pointer '" + toks[i - 1].text +
                        "' can outlive a move/reset of the buffer");
          }
        }
      }
    }
  }
}

// ------------------------------------------ check: metrics-under-lock

void checkMetricsUnderLock(const Ctx& ctx, std::vector<Diagnostic>& out) {
  const Project& p = ctx.p;

  // Functions whose body touches the obs registry or updates a metric;
  // calling one inside a critical section is the same hazard one hop
  // removed.
  std::set<std::string> metric_fns;
  for (const auto& fm : p.files) {
    if (underObsDir(fm.path)) continue;
    for (const auto& fn : fm.functions) {
      if (!fn.has_body || fn.is_lambda) continue;
      for (const CallSite& cs : fn.calls) {
        const bool registry =
            (cs.callee == "counter" || cs.callee == "gauge" ||
             cs.callee == "histogram") &&
            cs.qualifier == "obs";
        const std::string rtype = typeFor(ctx, fn, cs.receiver);
        const bool update =
            (cs.callee == "add" && rtype == "Counter") ||
            (cs.callee == "set" && rtype == "Gauge") ||
            (cs.callee == "observe" && rtype == "Histogram");
        if (registry || update) {
          metric_fns.insert(fn.name);
          break;
        }
      }
    }
  }

  for (const auto& fm : p.files) {
    if (underObsDir(fm.path)) continue;
    const auto& toks = fm.toks;
    for (const auto& fn : fm.functions) {
      if (!fn.has_body) continue;

      struct Active {
        std::string guard_var;  // "" for direct m.lock()
        std::string mutex_var;
        int depth = 0;
        bool held = true;
      };
      std::vector<Active> locks;
      int depth = 0;

      auto anyHeld = [&]() -> const Active* {
        for (const auto& a : locks) {
          if (a.held) return &a;
        }
        return nullptr;
      };

      for (std::size_t i = fn.body_begin; i < fn.body_end; ++i) {
        const Token& t = toks[i];
        if (t.is("{")) {
          ++depth;
          continue;
        }
        if (t.is("}")) {
          --depth;
          locks.erase(std::remove_if(locks.begin(), locks.end(),
                                     [&](const Active& a) {
                                       return a.depth > depth;
                                     }),
                      locks.end());
          continue;
        }
        if (t.isIdent() && (t.text == "LockGuard" || t.text == "UniqueLock") &&
            toks[i + 1].isIdent() &&
            (toks[i + 2].is("(") || toks[i + 2].is("{"))) {
          const LockArg arg = lockArgOf(toks, i + 2);
          if (!arg.var.empty()) {
            // UniqueLock(m, defer_lock) starts unheld.
            locks.push_back(
                Active{toks[i + 1].text, arg.var, depth, !arg.more_args});
          }
          continue;
        }
        if (!t.isIdent() || !toks[i + 1].is("(")) continue;

        // UniqueLock unlock/relock and direct mutex lock/unlock.
        if ((t.text == "lock" || t.text == "unlock") && i >= 2 &&
            (toks[i - 1].is(".") || toks[i - 1].is("->")) &&
            toks[i - 2].isIdent()) {
          const std::string& recv = toks[i - 2].text;
          bool handled = false;
          for (auto& a : locks) {
            if (a.guard_var == recv || a.mutex_var == recv) {
              a.held = (t.text == "lock");
              handled = true;
            }
          }
          if (!handled && t.text == "lock" &&
              p.mutex_classes.count(recv) > 0) {
            locks.push_back(Active{"", recv, depth, true});
          }
          continue;
        }

        const Active* held = anyHeld();
        if (held == nullptr) continue;

        std::string what;
        if ((t.text == "counter" || t.text == "gauge" ||
             t.text == "histogram") &&
            i >= 2 && toks[i - 1].is("::") && toks[i - 2].isIdent() &&
            toks[i - 2].text == "obs") {
          what = "obs::" + t.text + "() registry access";
        } else if (t.text == "add" || t.text == "set" ||
                   t.text == "observe") {
          if (i >= 2 && (toks[i - 1].is(".") || toks[i - 1].is("->")) &&
              toks[i - 2].isIdent()) {
            const std::string rtype = typeFor(ctx, fn, toks[i - 2].text);
            if ((t.text == "add" && rtype == "Counter") ||
                (t.text == "set" && rtype == "Gauge") ||
                (t.text == "observe" && rtype == "Histogram")) {
              what = "metric update '" + toks[i - 2].text + "." + t.text +
                     "()'";
            }
          }
        } else if (metric_fns.count(t.text) > 0) {
          what = "call to '" + t.text + "()' which touches metrics";
        }
        if (!what.empty()) {
          const std::string cls = p.lockClassIn(fm.path, held->mutex_var);
          addDiag(out, "metrics-under-lock", fm.path, t.line,
                  what + " inside critical section of '" +
                      (cls.empty() ? held->mutex_var : cls) +
                      "' — hoist it out of the locked region");
        }
      }
    }
  }
}

// ----------------------------------------------------- orchestration

bool suppressed(const Project& p, const Diagnostic& d) {
  for (const auto& fm : p.files) {
    if (fm.path != d.file) continue;
    for (const auto& s : fm.suppressions) {
      // The macro call itself may wrap over a couple of lines; cover
      // the statement right below it.
      if ((s.check == d.check || s.check == "*") && d.line >= s.line &&
          d.line - s.line <= 3) {
        return true;
      }
    }
  }
  return false;
}

}  // namespace

const std::vector<std::string>& allCheckNames() {
  static const std::vector<std::string> names = {
      "reactor-blocking", "codec-symmetry", "pool-lifetime",
      "metrics-under-lock"};
  return names;
}

std::vector<Diagnostic> runChecks(const Project& project,
                                  const CheckOptions& options) {
  Ctx ctx(project);
  auto enabled = [&](const char* name) {
    if (options.checks.empty()) return true;
    return std::find(options.checks.begin(), options.checks.end(), name) !=
           options.checks.end();
  };
  std::vector<Diagnostic> out;
  if (enabled("reactor-blocking")) checkReactorBlocking(ctx, out);
  if (enabled("codec-symmetry")) checkCodecSymmetry(ctx, out);
  if (enabled("pool-lifetime")) checkPoolLifetime(ctx, out);
  if (enabled("metrics-under-lock")) checkMetricsUnderLock(ctx, out);

  out.erase(std::remove_if(out.begin(), out.end(),
                           [&](const Diagnostic& d) {
                             return suppressed(project, d);
                           }),
            out.end());
  // Dedup (a call graph can reach one site along several paths) and
  // order for stable output.
  std::sort(out.begin(), out.end(), [](const Diagnostic& a,
                                       const Diagnostic& b) {
    return std::tie(a.file, a.line, a.check, a.message) <
           std::tie(b.file, b.line, b.check, b.message);
  });
  out.erase(std::unique(out.begin(), out.end(),
                        [](const Diagnostic& a, const Diagnostic& b) {
                          return a.file == b.file && a.line == b.line &&
                                 a.check == b.check;
                        }),
            out.end());
  return out;
}

std::vector<Diagnostic> validateSuppressions(const Project& project) {
  std::vector<Diagnostic> out;
  const auto& names = allCheckNames();
  for (const auto& fm : project.files) {
    for (const auto& s : fm.suppressions) {
      if (s.check != "*" &&
          std::find(names.begin(), names.end(), s.check) == names.end()) {
        addDiag(out, "suppression-audit", fm.path, s.line,
                "NINF_TIDY_SUPPRESS names unknown check '" + s.check + "'");
      }
      if (s.reason.size() < 10 ||
          s.reason.find(' ') == std::string::npos) {
        addDiag(out, "suppression-audit", fm.path, s.line,
                "NINF_TIDY_SUPPRESS needs a real justification sentence, "
                "got: '" + s.reason + "'");
      }
    }
  }
  return out;
}

}  // namespace ninf_tidy
