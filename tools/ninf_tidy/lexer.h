// Token stream for ninf-tidy's lightweight C++ frontend.
//
// ninf-tidy analyses the project's own sources, which follow the
// repo's style guide; the lexer therefore only needs to be exact about
// the constructs the checks consume (identifiers, punctuation,
// literals) and can discard comments and preprocessor directives.
// Tokens keep their 1-based source line so diagnostics are clickable.
#pragma once

#include <string>
#include <vector>

namespace ninf_tidy {

enum class TokKind {
  Ident,
  Number,
  String,   // text holds the literal's contents, quotes stripped
  CharLit,
  Punct,    // text is the punctuation spelling ("::" and "->" fused)
  End,
};

struct Token {
  TokKind kind = TokKind::End;
  std::string text;
  int line = 0;

  bool is(const char* s) const { return text == s; }
  bool isIdent() const { return kind == TokKind::Ident; }
};

/// Lex a whole translation-unit's text.  Comments and preprocessor
/// lines (including continuations) are skipped; raw strings are
/// handled.  Always ends with one TokKind::End sentinel.
std::vector<Token> lex(const std::string& source);

}  // namespace ninf_tidy
