// The four ninf-tidy checks.
//
//  reactor-blocking   functions reachable from NINF_REACTOR_CONTEXT
//                     entry points (or lambdas passed to postSolo) must
//                     not call NINF_BLOCKING APIs, blocking std
//                     primitives, CondVar waits, future gets, or
//                     acquire a non-leaf lock class.
//  codec-symmetry     every encode/decode (toBytes/fromBytes) pair in
//                     src/protocol must put and get the same ordered
//                     sequence of wire primitives.
//  pool-lifetime      PooledBuffer / Frame values are moved, never
//                     copied; .data()/.span() must not outlive the
//                     buffer; no static storage of pooled buffers.
//  metrics-under-lock no obs:: counter/gauge/histogram touch inside a
//                     mutex critical section (the obs registry has its
//                     own lock; nesting it under hot-path locks is a
//                     latency and lock-order hazard).
//
// A diagnostic can be silenced with
//   NINF_TIDY_SUPPRESS("check-name", "why this audited exception is ok");
// placed on the flagged line or up to two lines above it.  Suppressions
// require a real justification; `validateSuppressions` enforces that.
#pragma once

#include <string>
#include <vector>

#include "model.h"

namespace ninf_tidy {

struct Diagnostic {
  std::string check;
  std::string file;
  int line = 0;
  std::string message;
};

struct CheckOptions {
  /// Empty = run every check; otherwise names from allCheckNames().
  std::vector<std::string> checks;
};

const std::vector<std::string>& allCheckNames();

/// Run the selected checks; returns unsuppressed diagnostics sorted by
/// file and line.
std::vector<Diagnostic> runChecks(const Project& project,
                                  const CheckOptions& options);

/// Audit every NINF_TIDY_SUPPRESS in the project: the check name must
/// exist and the justification must be a real sentence.  Returns one
/// diagnostic per bad suppression.
std::vector<Diagnostic> validateSuppressions(const Project& project);

}  // namespace ninf_tidy
