// ninf-tidy: project-specific static checks for the ninf codebase.
//
//   ninf_tidy --root src                      # scan a source tree
//   ninf_tidy -p build-tidy/compile_commands.json --root src
//   ninf_tidy --check reactor-blocking file.cpp ...
//   ninf_tidy --check-suppressions --root src # audit suppressions only
//
// Findings are errors: any diagnostic makes the exit status 1, so the
// CI job and the ctest gate are warnings-as-errors by construction.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "checks.h"
#include "model.h"

namespace fs = std::filesystem;
using namespace ninf_tidy;

namespace {

std::string readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Minimal extraction of "file" entries from a compile_commands.json.
std::vector<std::string> filesFromCompileCommands(const std::string& path) {
  std::vector<std::string> out;
  const std::string text = readFile(path);
  const std::string key = "\"file\"";
  std::size_t pos = 0;
  while ((pos = text.find(key, pos)) != std::string::npos) {
    pos += key.size();
    pos = text.find('"', pos);
    if (pos == std::string::npos) break;
    const std::size_t end = text.find('"', pos + 1);
    if (end == std::string::npos) break;
    out.push_back(text.substr(pos + 1, end - pos - 1));
    pos = end + 1;
  }
  return out;
}

bool sourceFile(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".h" || ext == ".hpp";
}

int usage() {
  std::cerr <<
      "usage: ninf_tidy [options] [files...]\n"
      "  --root DIR            scan every .h/.cpp under DIR (repeatable)\n"
      "  -p COMPILE_COMMANDS   add the files of a compile database\n"
      "  --check NAME          run only NAME (repeatable; default: all)\n"
      "  --list-checks         print check names and exit\n"
      "  --check-suppressions  audit NINF_TIDY_SUPPRESS justifications only\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  std::vector<std::string> files;
  CheckOptions options;
  bool suppressions_only = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      roots.push_back(argv[++i]);
    } else if (arg == "-p" && i + 1 < argc) {
      std::string db = argv[++i];
      if (fs::is_directory(db)) db += "/compile_commands.json";
      if (fs::exists(db)) {
        for (auto& f : filesFromCompileCommands(db)) files.push_back(f);
      } else {
        std::cerr << "ninf-tidy: no compile database at " << db << "\n";
        return 2;
      }
    } else if (arg == "--check" && i + 1 < argc) {
      options.checks.emplace_back(argv[++i]);
    } else if (arg == "--list-checks") {
      for (const auto& name : allCheckNames()) std::cout << name << "\n";
      return 0;
    } else if (arg == "--check-suppressions") {
      suppressions_only = true;
    } else if (arg == "--help" || arg == "-h") {
      return usage();
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "ninf-tidy: unknown option " << arg << "\n";
      return usage();
    } else {
      files.push_back(arg);
    }
  }
  for (const auto& name : options.checks) {
    const auto& all = allCheckNames();
    if (std::find(all.begin(), all.end(), name) == all.end()) {
      std::cerr << "ninf-tidy: unknown check '" << name << "'\n";
      return 2;
    }
  }
  for (const auto& root : roots) {
    if (!fs::is_directory(root)) {
      std::cerr << "ninf-tidy: --root " << root << " is not a directory\n";
      return 2;
    }
    for (const auto& entry : fs::recursive_directory_iterator(root)) {
      if (entry.is_regular_file() && sourceFile(entry.path())) {
        files.push_back(entry.path().string());
      }
    }
  }
  if (files.empty()) return usage();

  // Dedup while keeping a deterministic order.
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  std::vector<FileModel> models;
  models.reserve(files.size());
  for (const auto& f : files) {
    if (!fs::exists(f)) {
      std::cerr << "ninf-tidy: missing file " << f << "\n";
      return 2;
    }
    models.push_back(parseFile(f, readFile(f)));
  }
  const Project project = buildProject(std::move(models));

  std::vector<Diagnostic> diags = validateSuppressions(project);
  if (!suppressions_only) {
    auto check_diags = runChecks(project, options);
    diags.insert(diags.end(), check_diags.begin(), check_diags.end());
  }
  for (const auto& d : diags) {
    std::cerr << d.file << ":" << d.line << ": error: [" << d.check << "] "
              << d.message << "\n";
  }
  if (!diags.empty()) {
    std::cerr << "ninf-tidy: " << diags.size() << " finding(s) in "
              << files.size() << " file(s)\n";
    return 1;
  }
  std::cout << "ninf-tidy: clean (" << files.size() << " files, "
            << project.all_functions.size() << " functions)\n";
  return 0;
}
