// Source model: the per-file and cross-file facts the checks consume.
//
// ninf-tidy parses each file once into a FileModel (functions with body
// token ranges, annotations, suppressions) and merges cross-file tables
// into a Project (mutex lock classes, declared variable types, struct
// field types, annotated blocking/reactor functions).  The parser is a
// pragmatic recognizer for this repo's dialect, not a general C++
// frontend: constructs it does not understand are skipped, never
// guessed at.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lexer.h"

namespace ninf_tidy {

/// One call expression inside a function body.
struct CallSite {
  std::string callee;     // simple name, e.g. "recvAll"
  std::string qualifier;  // "Stream" for Stream::recvAll(...), else ""
  std::string receiver;   // "stream" for stream->recvAll(...), else ""
  int line = 0;
  std::size_t tok = 0;  // index of the callee token in the file stream
};

struct FunctionModel {
  std::string qname;  // "ninf::server::Reactor::postSolo" or ".../<lambda:99>"
  std::string name;   // last component
  std::string file;
  int line = 0;       // line of the name token (diagnostics anchor)
  bool is_lambda = false;
  bool reactor_context = false;  // NINF_REACTOR_CONTEXT on decl/def,
                                 // or a lambda passed to postSolo()
  bool blocking = false;         // NINF_BLOCKING on decl/def
  bool has_body = false;
  std::size_t body_begin = 0;  // token index of the opening '{'
  std::size_t body_end = 0;    // token index of the matching '}'
  std::vector<CallSite> calls;
};

struct Suppression {
  std::string file;
  int line = 0;
  std::string check;   // check name or "*"
  std::string reason;  // must be a real justification (CI-audited)
};

struct FileModel {
  std::string path;
  std::vector<Token> toks;
  std::vector<FunctionModel> functions;
  std::vector<Suppression> suppressions;
  /// Per-file tables; preferred over the merged Project tables because
  /// common names ("mutex_", "stream_") mean different things in
  /// different translation units.
  std::map<std::string, std::set<std::string>> mutex_classes;
  std::map<std::string, std::set<std::string>> var_types;
};

struct Project {
  std::vector<FileModel> files;

  /// mutex variable name -> set of lock-class strings seen for it.
  /// (A variable declared with conflicting classes in different files
  /// stays ambiguous and is treated as non-leaf by the reactor check.)
  std::map<std::string, std::set<std::string>> mutex_classes;

  /// variable/field name -> set of declared type names (last component,
  /// e.g. "CondVar", "PooledBuffer", "Counter").  Merged across files;
  /// ambiguous names resolve to no type.
  std::map<std::string, std::set<std::string>> var_types;

  /// simple function name -> indices into all_functions.
  std::multimap<std::string, std::size_t> by_name;
  std::vector<const FunctionModel*> all_functions;

  /// Class names that carry at least one method definition we parsed.
  std::set<std::string> known_classes;

  const FunctionModel* findQualified(const std::string& cls,
                                     const std::string& fn) const;
  /// The single declared type of `var`, or "" when unknown/ambiguous.
  std::string typeOf(const std::string& var) const;
  /// The single lock class of mutex variable `var`, or "" when
  /// unknown/ambiguous.
  std::string lockClassOf(const std::string& var) const;
  /// Like typeOf/lockClassOf, but resolved against `file` and its
  /// header/impl sibling (same path stem) first.  A name declared in
  /// the file pair wins over — and shadows — the global table; only a
  /// name absent from the pair falls back to the merged view.
  std::string typeIn(const std::string& file, const std::string& var) const;
  std::string lockClassIn(const std::string& file,
                          const std::string& var) const;
};

/// Parse one file's text into a FileModel.
FileModel parseFile(const std::string& path, const std::string& text);

/// Merge per-file models into the cross-file Project tables and
/// propagate annotations between declarations and definitions that
/// share a qualified name.
Project buildProject(std::vector<FileModel> files);

/// Find the index of the matching close token for the open bracket at
/// `open` ("(", "[", "{", balanced over all three).  Returns the index
/// of the closer, or toks.size()-1 when unbalanced.
std::size_t matchBracket(const std::vector<Token>& toks, std::size_t open);

}  // namespace ninf_tidy
