#include "lexer.h"

#include <cctype>

namespace ninf_tidy {

namespace {

bool identStart(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool identCont(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

}  // namespace

std::vector<Token> lex(const std::string& src) {
  std::vector<Token> out;
  const std::size_t n = src.size();
  std::size_t i = 0;
  int line = 1;
  bool at_line_start = true;  // only whitespace seen since the newline

  auto push = [&](TokKind k, std::string text) {
    out.push_back(Token{k, std::move(text), line});
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      at_line_start = true;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\f' || c == '\v') {
      ++i;
      continue;
    }
    // Preprocessor directive: skip to end of line, honoring backslash
    // continuations.  (Macro *definitions* are invisible to the tool;
    // annotation macros are recognised by their use sites.)
    if (c == '#' && at_line_start) {
      while (i < n) {
        if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') {
          ++line;
          i += 2;
          continue;
        }
        if (src[i] == '\n') break;
        ++i;
      }
      continue;
    }
    at_line_start = false;
    // Comments.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      while (i < n && src[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      i += 2;
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      i = (i + 1 < n) ? i + 2 : n;
      continue;
    }
    // Raw string literal: R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      std::size_t j = i + 2;
      std::string delim;
      while (j < n && src[j] != '(') delim += src[j++];
      const std::string closer = ")" + delim + "\"";
      std::size_t end = src.find(closer, j);
      std::string body;
      if (end == std::string::npos) {
        end = n;
        body = src.substr(j + 1);
      } else {
        body = src.substr(j + 1, end - j - 1);
      }
      for (char b : body) {
        if (b == '\n') ++line;
      }
      push(TokKind::String, body);
      i = (end == n) ? n : end + closer.size();
      continue;
    }
    // Identifier / keyword.
    if (identStart(c)) {
      std::size_t j = i + 1;
      while (j < n && identCont(src[j])) ++j;
      push(TokKind::Ident, src.substr(i, j - i));
      i = j;
      continue;
    }
    // Number (loose: enough to skip over digit groups, 0x..., 1.5e-3).
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i + 1;
      while (j < n && (identCont(src[j]) || src[j] == '.' ||
                       ((src[j] == '+' || src[j] == '-') &&
                        (src[j - 1] == 'e' || src[j - 1] == 'E' ||
                         src[j - 1] == 'p' || src[j - 1] == 'P')))) {
        ++j;
      }
      push(TokKind::Number, src.substr(i, j - i));
      i = j;
      continue;
    }
    // String literal.
    if (c == '"') {
      std::size_t j = i + 1;
      std::string text;
      while (j < n && src[j] != '"') {
        if (src[j] == '\\' && j + 1 < n) {
          text += src[j + 1];
          j += 2;
          continue;
        }
        if (src[j] == '\n') ++line;  // ill-formed, but keep lines honest
        text += src[j++];
      }
      push(TokKind::String, text);
      i = (j < n) ? j + 1 : n;
      continue;
    }
    // Character literal.
    if (c == '\'') {
      std::size_t j = i + 1;
      while (j < n && src[j] != '\'') {
        if (src[j] == '\\') ++j;
        ++j;
      }
      push(TokKind::CharLit, src.substr(i + 1, (j > i + 1) ? j - i - 1 : 0));
      i = (j < n) ? j + 1 : n;
      continue;
    }
    // Fused punctuation the parser cares about.
    if (c == ':' && i + 1 < n && src[i + 1] == ':') {
      push(TokKind::Punct, "::");
      i += 2;
      continue;
    }
    if (c == '-' && i + 1 < n && src[i + 1] == '>') {
      push(TokKind::Punct, "->");
      i += 2;
      continue;
    }
    push(TokKind::Punct, std::string(1, c));
    ++i;
  }
  push(TokKind::End, "");
  return out;
}

}  // namespace ninf_tidy
