// Fixture: an intentionally asymmetric pair (decode tolerates a legacy
// trailing field) with an audited suppression on the encode side.
#define NINF_TIDY_SUPPRESS(check, reason)

struct Encoder {
  void putU32(unsigned v);
};
struct Source {
  unsigned getU32();
};

struct Legacy {
  unsigned id = 0;

  NINF_TIDY_SUPPRESS("codec-symmetry",
                     "decode also consumes a legacy pad word from v0 peers");
  void encode(Encoder& enc) const { enc.putU32(id); }

  static Legacy decode(Source& src) {
    Legacy out;
    out.id = src.getU32();
    (void)src.getU32();  // legacy pad word, never written by v1 encoders
    return out;
  }
};
