// Fixture: disciplined pooled-buffer usage — must be clean.
namespace std {
template <typename T>
T&& move(T& v);
}

struct PooledBuffer {
  const char* data() const;
  unsigned size() const;
};
PooledBuffer acquireBuffer(unsigned bytes);
void use(const char* p);
void sendv(const char* p, unsigned n);

void movesAndImmediateUse() {
  PooledBuffer a = acquireBuffer(64);
  PooledBuffer b = std::move(a);  // ownership transfer, not a copy
  // Immediate use inside a call argument never outlives the buffer.
  use(b.data());
  sendv(b.data(), b.size());
}

struct Holder {
  // A member buffer is fine: the pool is process-lifetime; only static
  // storage and escaped views are hazards.
  PooledBuffer bytes;
};

PooledBuffer returnsByMove() {
  PooledBuffer buf = acquireBuffer(64);
  return buf;  // NRVO/move of the buffer itself, not a view
}
