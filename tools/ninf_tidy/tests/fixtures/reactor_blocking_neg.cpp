// Fixture: disciplined reactor-context code — the reactor-blocking
// check must stay silent.
#define NINF_REACTOR_CONTEXT
#define NINF_BLOCKING

struct Mutex {
  explicit Mutex(const char*) {}
};
struct LockGuard {
  explicit LockGuard(Mutex&) {}
};

int sendvNowait(const void* iov, int n);
int recvNowait(void* buf, int n);
void blockingSend() NINF_BLOCKING;

struct Fixture {
  Mutex solo_ok_mutex_{"server.reactor.solo"};

  void helperLeafLockOnly() {
    // Leaf lock class with a bounded hold: allowed in reactor context.
    LockGuard g(solo_ok_mutex_);
  }

  NINF_REACTOR_CONTEXT void loop() {
    helperLeafLockOnly();
    char buf[16];
    recvNowait(buf, sizeof(buf));  // non-blocking I/O is fine
    sendvNowait(buf, 1);
  }

  // Not reactor context: blocking calls are fine on worker threads.
  void workerSide() { blockingSend(); }
};

void postSolo(int conn, void (*fn)());

void worker() {
  postSolo(1, [] {
    // The solo task hands the heavy part onward: the *inner* lambda
    // runs on a worker, so its blocking call must not be flagged.
    auto heavy = [] { blockingSend(); };
    (void)heavy;
  });
}
