// Fixture: reactor-context code that blocks — every pattern here must
// be flagged by the reactor-blocking check.
#define NINF_REACTOR_CONTEXT
#define NINF_BLOCKING

struct Mutex {
  explicit Mutex(const char*) {}
};
struct LockGuard {
  explicit LockGuard(Mutex&) {}
};
struct UniqueLock {
  explicit UniqueLock(Mutex&) {}
};
struct CondVar {
  void wait(UniqueLock&) {}
};

void blockingSend() NINF_BLOCKING;

struct Fixture {
  Mutex pending_fixture_mutex_{"fixture.pending"};
  Mutex solo_fixture_mutex_{"server.reactor.solo"};
  CondVar done_cv_;

  void postSolo(void (*fn)()) { (void)fn; }

  // Transitively reached from loop(): the non-leaf lock must be
  // flagged even though this helper carries no annotation itself.
  void helperTakesNonLeafLock() {
    LockGuard g(pending_fixture_mutex_);
  }

  NINF_REACTOR_CONTEXT void loop() {
    helperTakesNonLeafLock();
    blockingSend();  // annotated-blocking call
    UniqueLock lk(solo_fixture_mutex_);
    done_cv_.wait(lk);  // CondVar wait on the reactor thread
  }
};

void postSolo(int conn, void (*fn)());

void worker() {
  // The lambda runs on the reactor thread: its body is reactor context.
  postSolo(1, [] { blockingSend(); });
}
