// Fixture: symmetric codecs — scalar fields, a count-prefixed list of
// nested codecs, and a nested single codec.  Must be clean.
struct Encoder {
  void putU32(unsigned v);
  void putDouble(double v);
  void putString(const char* s);
};
struct Source {
  unsigned getU32();
  double getDouble();
  const char* getString();
};
unsigned checkedCount(Source& src, unsigned max);

template <typename T>
struct Vec {
  T* begin() const;
  T* end() const;
  unsigned size() const;
  void push_back(const T& v);
};

struct Item {
  unsigned key = 0;
  void encode(Encoder& enc) const { enc.putU32(key); }
  static Item decode(Source& src) {
    Item it;
    it.key = src.getU32();
    return it;
  }
};

struct Bag {
  Item head;
  Vec<Item> items;
  double weight = 0.0;

  void encode(Encoder& enc) const {
    head.encode(enc);
    enc.putU32(items.size());
    for (const auto& it : items) {
      it.encode(enc);
    }
    enc.putDouble(weight);
  }

  static Bag decode(Source& src) {
    Bag bag;
    bag.head = Item::decode(src);
    const unsigned n = checkedCount(src, 4096);
    for (unsigned i = 0; i < n; ++i) {
      bag.items.push_back(Item::decode(src));
    }
    bag.weight = src.getDouble();
    return bag;
  }
};
