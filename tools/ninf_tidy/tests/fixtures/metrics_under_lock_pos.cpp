// Fixture: obs metric touches inside critical sections — all flagged.
namespace obs {
struct Counter {
  void add(long n);
};
struct Gauge {
  void set(double v);
};
Counter& counter(const char* name);
Gauge& gauge(const char* name);
}  // namespace obs

struct Mutex {
  explicit Mutex(const char*) {}
};
struct LockGuard {
  explicit LockGuard(Mutex&) {}
};

void bumpDepth();

struct Queue {
  Mutex fixture_q_mutex_{"fixture.queue"};
  obs::Gauge& depth_ = obs::gauge("fixture.queue.depth");
  long jobs_ = 0;

  void push() {
    LockGuard lock(fixture_q_mutex_);
    ++jobs_;
    depth_.set(static_cast<double>(jobs_));  // typed update under lock
  }

  void touchRegistry() {
    LockGuard lock(fixture_q_mutex_);
    obs::counter("fixture.queue.pushes").add(1);  // registry under lock
  }

  void indirect() {
    LockGuard lock(fixture_q_mutex_);
    bumpDepth();  // callee touches metrics: same hazard, one hop away
  }
};

void bumpDepth() {
  static obs::Counter& bumps = obs::counter("fixture.bumps");
  bumps.add(1);
}
