// Fixture: metrics hoisted out of critical sections — must be clean.
namespace obs {
struct Counter {
  void add(long n);
};
struct Gauge {
  void set(double v);
};
Counter& counter(const char* name);
Gauge& gauge(const char* name);
}  // namespace obs

struct Mutex {
  explicit Mutex(const char*) {}
};
struct LockGuard {
  explicit LockGuard(Mutex&) {}
};
struct UniqueLock {
  explicit UniqueLock(Mutex&) {}
  void unlock();
};

struct Queue {
  Mutex fixture_q_mutex_{"fixture.queue"};
  obs::Gauge& depth_ = obs::gauge("fixture.queue.depth");
  long jobs_ = 0;

  void pushHoisted() {
    long depth = 0;
    {
      LockGuard lock(fixture_q_mutex_);
      depth = ++jobs_;
    }
    // Snapshot taken under the lock, gauge updated outside it.
    depth_.set(static_cast<double>(depth));
  }

  void pushEarlyUnlock() {
    UniqueLock lock(fixture_q_mutex_);
    const long depth = ++jobs_;
    lock.unlock();
    depth_.set(static_cast<double>(depth));
  }
};
