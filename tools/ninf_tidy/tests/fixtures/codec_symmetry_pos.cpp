// Fixture: encode writes a field the decoder never reads — the classic
// silent-frame-corruption bug the codec-symmetry check exists for.
struct Encoder {
  void putU32(unsigned v);
  void putU64(unsigned long long v);
  void putString(const char* s);
};
struct Source {
  unsigned getU32();
  const char* getString();
};

struct Lopsided {
  unsigned id = 0;
  const char* name = "";
  unsigned long long epoch = 0;

  void encode(Encoder& enc) const {
    enc.putU32(id);
    enc.putString(name);
    enc.putU64(epoch);  // added on encode, forgotten on decode
  }

  static Lopsided decode(Source& src) {
    Lopsided out;
    out.id = src.getU32();
    out.name = src.getString();
    return out;
  }
};
