// Fixture: an audited pooled-buffer view escape with a justification.
#define NINF_TIDY_SUPPRESS(check, reason)

struct PooledBuffer {
  const char* data() const;
};
PooledBuffer acquireBuffer(unsigned bytes);
void use(const char* p);

void auditedEscape() {
  auto buf = acquireBuffer(64);
  NINF_TIDY_SUPPRESS("pool-lifetime",
                     "pointer consumed before the buffer moves, see audit");
  const char* held = buf.data();
  use(held);
}
