// Fixture: a reactor-context blocking call carrying an audited
// suppression — the check must honor it.
#define NINF_REACTOR_CONTEXT
#define NINF_BLOCKING
#define NINF_TIDY_SUPPRESS(check, reason)

void blockingHandshake() NINF_BLOCKING;

struct Fixture {
  NINF_REACTOR_CONTEXT void loop() {
    NINF_TIDY_SUPPRESS("reactor-blocking",
                       "startup-only path: runs before the reactor accepts");
    blockingHandshake();
  }
};
