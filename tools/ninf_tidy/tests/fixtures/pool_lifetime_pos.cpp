// Fixture: every pooled-buffer lifetime mistake the check knows about.
struct PooledBuffer {
  const char* data() const;
  unsigned size() const;
};
PooledBuffer acquireBuffer(unsigned bytes);
void use(const char* p);

// Static storage outlives the pool's thread caches.
static PooledBuffer g_stash;

void copiesInsteadOfMoves() {
  PooledBuffer a;
  PooledBuffer b = a;  // pooled buffers are move-only by contract
  use(b.data());
}

const char* returnsDanglingView() {
  PooledBuffer buf = acquireBuffer(64);
  return buf.data();  // view outlives the buffer's release
}

void bindsEscapingPointer() {
  auto buf = acquireBuffer(64);
  const char* held = buf.data();  // named pointer survives a later move
  use(held);
}
