// Fixture: an audited metric update under a lock with a justification.
#define NINF_TIDY_SUPPRESS(check, reason)

namespace obs {
struct Gauge {
  void set(double v);
};
Gauge& gauge(const char* name);
}  // namespace obs

struct Mutex {
  explicit Mutex(const char*) {}
};
struct LockGuard {
  explicit LockGuard(Mutex&) {}
};

struct Queue {
  Mutex fixture_q_mutex_{"fixture.queue"};
  obs::Gauge& depth_ = obs::gauge("fixture.queue.depth");
  long jobs_ = 0;

  void push() {
    LockGuard lock(fixture_q_mutex_);
    ++jobs_;
    NINF_TIDY_SUPPRESS("metrics-under-lock",
                       "gauge is pre-resolved and the set is one atomic");
    depth_.set(static_cast<double>(jobs_));
  }
};
