// ninf-tidy checker tests: each check has a flagging fixture (every
// seeded violation reported), a clean fixture (zero diagnostics), and
// a suppression fixture (audited NINF_TIDY_SUPPRESS honored).  The
// fixtures are parsed through the same front end the CLI uses.
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "checks.h"
#include "model.h"

namespace {

using ninf_tidy::CheckOptions;
using ninf_tidy::Diagnostic;
using ninf_tidy::Project;

std::string fixturePath(const std::string& name) {
  return std::string(NINF_TIDY_FIXTURE_DIR) + "/" + name;
}

Project load(const std::vector<std::string>& fixtures) {
  std::vector<ninf_tidy::FileModel> models;
  for (const auto& name : fixtures) {
    std::ifstream in(fixturePath(name));
    EXPECT_TRUE(in.good()) << "missing fixture " << name;
    std::ostringstream ss;
    ss << in.rdbuf();
    models.push_back(ninf_tidy::parseFile(fixturePath(name), ss.str()));
  }
  return ninf_tidy::buildProject(std::move(models));
}

std::vector<Diagnostic> run(const std::string& fixture,
                            const std::string& check) {
  CheckOptions options;
  options.checks = {check};
  return ninf_tidy::runChecks(load({fixture}), options);
}

int countMessages(const std::vector<Diagnostic>& diags,
                  const std::string& needle) {
  int n = 0;
  for (const auto& d : diags) {
    if (d.message.find(needle) != std::string::npos) ++n;
  }
  return n;
}

// ---------------------------------------------------- reactor-blocking

TEST(ReactorBlocking, FlagsBlockingReachableFromReactorContext) {
  const auto diags = run("reactor_blocking_pos.cpp", "reactor-blocking");
  EXPECT_GE(diags.size(), 4u);
  EXPECT_EQ(countMessages(diags, "non-leaf lock class 'fixture.pending'"), 1);
  EXPECT_GE(countMessages(diags, "NINF_BLOCKING API 'blockingSend'"), 2)
      << "both the annotated entry point and the postSolo lambda reach it";
  EXPECT_EQ(countMessages(diags, "waits on CondVar 'done_cv_'"), 1);
  for (const auto& d : diags) EXPECT_EQ(d.check, "reactor-blocking");
}

TEST(ReactorBlocking, CleanOnDisciplinedReactorCode) {
  const auto diags = run("reactor_blocking_neg.cpp", "reactor-blocking");
  EXPECT_TRUE(diags.empty()) << diags.front().message;
}

TEST(ReactorBlocking, HonorsAuditedSuppression) {
  const auto diags = run("reactor_blocking_suppressed.cpp",
                         "reactor-blocking");
  EXPECT_TRUE(diags.empty()) << diags.front().message;
}

// ------------------------------------------------------ codec-symmetry

TEST(CodecSymmetry, FlagsEncodeOnlyField) {
  const auto diags = run("codec_symmetry_pos.cpp", "codec-symmetry");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].check, "codec-symmetry");
  EXPECT_NE(diags[0].message.find("Lopsided"), std::string::npos);
  EXPECT_NE(diags[0].message.find("missing 'u64'"), std::string::npos);
}

TEST(CodecSymmetry, CleanOnSymmetricCodecs) {
  const auto diags = run("codec_symmetry_neg.cpp", "codec-symmetry");
  EXPECT_TRUE(diags.empty()) << diags.front().message;
}

TEST(CodecSymmetry, HonorsAuditedSuppression) {
  const auto diags = run("codec_symmetry_suppressed.cpp", "codec-symmetry");
  EXPECT_TRUE(diags.empty()) << diags.front().message;
}

// ------------------------------------------------------- pool-lifetime

TEST(PoolLifetime, FlagsCopiesEscapesAndStaticStorage) {
  const auto diags = run("pool_lifetime_pos.cpp", "pool-lifetime");
  EXPECT_EQ(countMessages(diags, "by copy"), 1);
  EXPECT_EQ(countMessages(diags, "dangles once the buffer is released"), 1);
  EXPECT_EQ(countMessages(diags, "bound to named pointer 'held'"), 1);
  EXPECT_EQ(countMessages(diags, "static storage duration"), 1);
  EXPECT_EQ(diags.size(), 4u);
}

TEST(PoolLifetime, CleanOnMoveDiscipline) {
  const auto diags = run("pool_lifetime_neg.cpp", "pool-lifetime");
  EXPECT_TRUE(diags.empty()) << diags.front().message;
}

TEST(PoolLifetime, HonorsAuditedSuppression) {
  const auto diags = run("pool_lifetime_suppressed.cpp", "pool-lifetime");
  EXPECT_TRUE(diags.empty()) << diags.front().message;
}

// -------------------------------------------------- metrics-under-lock

TEST(MetricsUnderLock, FlagsUpdatesInsideCriticalSections) {
  const auto diags = run("metrics_under_lock_pos.cpp", "metrics-under-lock");
  EXPECT_EQ(countMessages(diags, "metric update 'depth_.set()'"), 1);
  EXPECT_EQ(countMessages(diags, "obs::counter() registry access"), 1);
  EXPECT_EQ(countMessages(diags, "call to 'bumpDepth()'"), 1);
  EXPECT_EQ(diags.size(), 3u);
}

TEST(MetricsUnderLock, CleanOnHoistedUpdates) {
  const auto diags = run("metrics_under_lock_neg.cpp", "metrics-under-lock");
  EXPECT_TRUE(diags.empty()) << diags.front().message;
}

TEST(MetricsUnderLock, HonorsAuditedSuppression) {
  const auto diags = run("metrics_under_lock_suppressed.cpp",
                         "metrics-under-lock");
  EXPECT_TRUE(diags.empty()) << diags.front().message;
}

// --------------------------------------------------- suppression audit

TEST(SuppressionAudit, RejectsEmptyOrBogusJustifications) {
  const std::string src = R"cpp(
    #define NINF_TIDY_SUPPRESS(check, reason)
    void f() {
      NINF_TIDY_SUPPRESS("reactor-blocking", "");
      NINF_TIDY_SUPPRESS("no-such-check", "a perfectly fine sentence");
      NINF_TIDY_SUPPRESS("pool-lifetime", "short");
    }
  )cpp";
  std::vector<ninf_tidy::FileModel> models;
  models.push_back(ninf_tidy::parseFile("audit.cpp", src));
  const auto diags =
      ninf_tidy::validateSuppressions(ninf_tidy::buildProject(
          std::move(models)));
  EXPECT_EQ(diags.size(), 3u);
}

TEST(SuppressionAudit, AcceptsJustifiedKnownChecks) {
  const auto project = load({"reactor_blocking_suppressed.cpp",
                             "codec_symmetry_suppressed.cpp",
                             "pool_lifetime_suppressed.cpp",
                             "metrics_under_lock_suppressed.cpp"});
  const auto diags = ninf_tidy::validateSuppressions(project);
  EXPECT_TRUE(diags.empty()) << diags.front().message;
}

// ------------------------------------------------------- parser smoke

TEST(Model, ResolvesQualifiedNamesAcrossDeclAndDef) {
  const std::string header = R"cpp(
    namespace ninf::server {
    class Reactor {
     public:
      void loop() NINF_REACTOR_CONTEXT;
    };
    }  // namespace ninf::server
  )cpp";
  const std::string impl = R"cpp(
    namespace ninf::server {
    void Reactor::loop() { helper(); }
    }  // namespace ninf::server
  )cpp";
  std::vector<ninf_tidy::FileModel> models;
  models.push_back(ninf_tidy::parseFile("reactor.h", header));
  models.push_back(ninf_tidy::parseFile("reactor.cpp", impl));
  const auto project = ninf_tidy::buildProject(std::move(models));

  const auto* def = project.findQualified("Reactor", "loop");
  ASSERT_NE(def, nullptr);
  EXPECT_TRUE(def->reactor_context)
      << "annotation on the declaration must cover the definition";
}

}  // namespace
