// ninf_call — command-line client for a Ninf computational server.
//
// The desktop-side counterpart of ninf_gen: poke a running server from a
// shell, no code required.
//
//   ninf_call <host> <port> list
//   ninf_call <host> <port> describe <name>
//   ninf_call <host> <port> status
//   ninf_call <host> <port> ping [bytes]
//   ninf_call <host> <port> linpack <n> [variant 0|1|2]
//   ninf_call <host> <port> ep <log2_pairs>
//   ninf_call <host> <port> dos <n> <samples>
//
// Add --trace out.json (any position) to capture a phase trace of the
// calls made; summarize it with ninf_trace_dump.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "client/client.h"
#include "client/ninf_api.h"
#include "common/error.h"
#include "idl/parser.h"
#include "numlib/dos.h"
#include "numlib/matrix.h"
#include "obs/trace_session.h"

namespace {

using namespace ninf;

int usage() {
  std::cerr << "usage: ninf_call <host> <port> <command> [args]\n"
            << "commands: list | describe <name> | status | ping [bytes]\n"
            << "          linpack <n> [variant] | ep <log2_pairs>\n"
            << "          dos <n> <samples>\n";
  return 2;
}

int cmdList(client::NinfClient& cl) {
  for (const auto& name : cl.listExecutables()) {
    std::printf("%s\n", name.c_str());
  }
  return 0;
}

int cmdDescribe(client::NinfClient& cl, const std::string& name) {
  const auto& info = cl.queryInterface(name);
  std::printf("%s", idl::formatInterface(info).c_str());
  return 0;
}

int cmdStatus(client::NinfClient& cl) {
  const auto s = cl.serverStatus();
  std::printf("running=%u queued=%u completed=%llu load=%.2f\n", s.running,
              s.queued, static_cast<unsigned long long>(s.completed),
              s.load_average);
  return 0;
}

int cmdPing(client::NinfClient& cl, std::size_t bytes) {
  const double rtt = cl.ping(bytes);
  std::printf("%zu byte echo: %.3f ms\n", bytes, rtt * 1e3);
  return 0;
}

int cmdLinpack(client::NinfClient& cl, std::size_t n, std::int64_t variant) {
  numlib::Matrix a = numlib::randomMatrix(n, 1);
  std::vector<double> b = numlib::onesRhs(a);
  std::vector<double> x(n);
  const auto r =
      client::ninfCall(cl, "linpack", static_cast<std::int64_t>(n), variant,
                       a.flat(), b, std::span<double>(x));
  double err = 0;
  for (double xi : x) err = std::max(err, std::abs(xi - 1.0));
  const double mflops = numlib::linpackFlops(n) / r.elapsed / 1e6;
  std::printf("n=%zu variant=%lld: %.1f ms, %.1f Mflops, |x-1|max=%.2e %s\n",
              n, static_cast<long long>(variant), r.elapsed * 1e3, mflops,
              err, err < 1e-4 ? "OK" : "FAILED");
  return err < 1e-4 ? 0 : 1;
}

int cmdEp(client::NinfClient& cl, int log2_pairs) {
  std::vector<double> sums(2), q(10);
  const auto r = client::ninfCall(cl, "ep", std::int64_t{0},
                                  std::int64_t{1} << log2_pairs, sums, q);
  std::printf("2^%d pairs in %.1f ms: Sx=%.10e Sy=%.10e\n", log2_pairs,
              r.elapsed * 1e3, sums[0], sums[1]);
  std::printf("annulus counts:");
  for (double c : q) std::printf(" %.0f", c);
  std::printf("\n");
  return 0;
}

int cmdDos(client::NinfClient& cl, std::int64_t n, std::int64_t samples) {
  constexpr std::int64_t kBins = 40;
  std::vector<double> hist(kBins);
  const auto r = client::ninfCall(cl, "dos", n, std::int64_t{0}, samples,
                                  kBins, std::span<double>(hist));
  double total = 0;
  for (double h : hist) total += h;
  std::printf("n=%lld, %lld samples, %.0f eigenvalues in %.1f ms\n",
              static_cast<long long>(n), static_cast<long long>(samples),
              total, r.elapsed * 1e3);
  // ASCII density plot against the Wigner semicircle.
  for (std::int64_t b = 0; b < kBins; ++b) {
    const double center = -2.5 + (b + 0.5) * 5.0 / kBins;
    const double density = hist[b] / (total * 5.0 / kBins);
    const int stars = static_cast<int>(density * 100);
    std::printf("%+5.2f |%-35.*s| wigner %.3f\n", center, stars,
                "***********************************",
                numlib::wignerSemicircle(center));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  obs::TraceSession trace(obs::TraceSession::flagFromArgs(argc, argv));
  if (argc < 4) return usage();
  const std::string host = argv[1];
  const auto port = static_cast<std::uint16_t>(std::atoi(argv[2]));
  const std::string command = argv[3];
  try {
    auto cl = client::NinfClient::connectTcp(host, port);
    if (command == "list") return cmdList(*cl);
    if (command == "describe" && argc > 4) return cmdDescribe(*cl, argv[4]);
    if (command == "status") return cmdStatus(*cl);
    if (command == "ping") {
      return cmdPing(*cl, argc > 4 ? std::strtoul(argv[4], nullptr, 10)
                                   : 1024);
    }
    if (command == "linpack" && argc > 4) {
      return cmdLinpack(*cl, std::strtoul(argv[4], nullptr, 10),
                        argc > 5 ? std::atoll(argv[5]) : 1);
    }
    if (command == "ep" && argc > 4) return cmdEp(*cl, std::atoi(argv[4]));
    if (command == "dos" && argc > 5) {
      return cmdDos(*cl, std::atoll(argv[4]), std::atoll(argv[5]));
    }
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "ninf_call: " << e.what() << "\n";
    return 1;
  }
}
