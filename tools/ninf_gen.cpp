// ninf_gen — the Ninf stub generator as a command-line tool (paper, 2.1).
//
// Reads a Ninf IDL module and writes a generated C++ header with server
// stubs plus a registerGeneratedExecutables(Registry&) helper.
//
// Usage:
//   ninf_gen [--header <include>] [-o <out.h>] <module.idl>
//   ninf_gen --check <module.idl>          # parse + validate only
//   ninf_gen --print <module.idl>          # re-emit canonical IDL
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.h"
#include "idl/parser.h"
#include "idl/stub_generator.h"

namespace {

std::string readFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ninf::Error("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

int usage() {
  std::cerr
      << "usage: ninf_gen [--header <include>] [-o <out.h>] <module.idl>\n"
      << "       ninf_gen --check <module.idl>\n"
      << "       ninf_gen --print <module.idl>\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string header;
  std::string output;
  std::string input;
  bool check_only = false;
  bool print_only = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--header" && i + 1 < argc) {
      header = argv[++i];
    } else if (arg == "-o" && i + 1 < argc) {
      output = argv[++i];
    } else if (arg == "--check") {
      check_only = true;
    } else if (arg == "--print") {
      print_only = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else if (input.empty()) {
      input = arg;
    } else {
      return usage();
    }
  }
  if (input.empty()) return usage();

  try {
    const auto interfaces = ninf::idl::parseModule(readFile(input));
    if (interfaces.empty()) {
      std::cerr << "ninf_gen: " << input << ": no Define blocks\n";
      return 1;
    }
    if (check_only) {
      std::cout << input << ": " << interfaces.size()
                << " interface(s) OK\n";
      for (const auto& info : interfaces) {
        std::cout << "  " << info.name << " (" << info.params.size()
                  << " parameters)\n";
      }
      return 0;
    }
    if (print_only) {
      for (const auto& info : interfaces) {
        std::cout << ninf::idl::formatInterface(info) << "\n";
      }
      return 0;
    }
    const std::string generated =
        ninf::idl::generateRegistrationUnit(interfaces, header);
    if (output.empty()) {
      std::cout << generated;
    } else {
      std::ofstream out(output);
      if (!out) throw ninf::Error("cannot write " + output);
      out << generated;
      std::cout << "ninf_gen: wrote " << output << " ("
                << interfaces.size() << " stub(s))\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "ninf_gen: " << e.what() << "\n";
    return 1;
  }
}
