// traced_call: one in-process Ninf_call with tracing on, printed as the
// per-phase breakdown of a paper Table-3 row.
//
// The client and server share this process over the inproc transport, so
// the trace holds both views of the same call: the client's 7-phase
// decomposition (connect/marshal/send/queue-wait/compute/recv/unmarshal)
// and the server's ground truth (server.queue-wait, server.compute, ...).
//
// Build & run:  cmake --build build && ./build/examples/traced_call
// The Chrome trace lands in traced_call.trace.json — open it in
// chrome://tracing or summarize it with ./build/tools/ninf_trace_dump.
#include <cstdio>
#include <thread>

#include "client/client.h"
#include "client/ninf_api.h"
#include "numlib/matrix.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_session.h"
#include "server/registry.h"
#include "server/server.h"
#include "transport/inproc_transport.h"

using namespace ninf;

int main(int argc, char** argv) {
  std::string out = obs::TraceSession::flagFromArgs(argc, argv);
  if (out.empty()) out = "traced_call.trace.json";
  obs::TraceSession trace(out);

  // In-process pair: the server serves one end on a helper thread, the
  // client speaks the full wire protocol into the other.
  server::Registry registry;
  server::registerStandardExecutables(registry);
  server::NinfServer srv(registry, {.workers = 1});
  auto [client_end, server_end] = transport::inprocPair();
  std::thread server_thread([&srv, s = std::move(server_end)]() mutable {
    srv.serveStream(*s);
  });

  {
    client::NinfClient cl(std::move(client_end));
    const std::int64_t n = 64;
    const numlib::Matrix a = numlib::randomMatrix(n, 1);
    const numlib::Matrix b = numlib::randomMatrix(n, 2);
    std::vector<double> c(n * n);
    const auto result = client::ninfCall(cl, "dmmul", n, a.flat(),
                                         b.flat(), std::span<double>(c));
    std::printf("dmmul n=%lld over inproc: %.3f ms, %lld bytes out, %lld in\n",
                static_cast<long long>(n), result.elapsed * 1e3,
                static_cast<long long>(result.bytes_sent),
                static_cast<long long>(result.bytes_received));
    cl.close();
  }
  server_thread.join();
  srv.stop();

  // Summarize before the session flushes: this is one Table-3 row seen
  // from inside the call.
  const auto spans = obs::Tracer::instance().drain();
  std::printf("\n%s", obs::formatPhaseTable(obs::phaseSummary(spans)).c_str());
  std::printf("\nhistograms:\n");
  for (const auto& h : obs::MetricsRegistry::instance().histograms()) {
    std::printf("  %-28s count=%zu mean=%.3f ms p95=%.3f ms\n",
                h.name.c_str(), static_cast<std::size_t>(h.count),
                h.mean * 1e3, h.p95 * 1e3);
  }

  // Re-record what we drained so the session still writes the file.
  for (const auto& s : spans) {
    obs::emitSpan(s);
  }
  trace.finish();
  std::printf("\ntrace written to %s (open in chrome://tracing, or run\n"
              "ninf_trace_dump on it)\n", out.c_str());
  return 0;
}
