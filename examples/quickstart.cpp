// Quickstart: the paper's running example, end to end over real TCP.
//
// 1. Start a Ninf computational server and register `dmmul` from its IDL.
// 2. Connect a client and invoke it exactly like the paper's
//      Ninf_call("dmmul", n, A, B, C);
// 3. Verify the result locally.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "client/client.h"
#include "client/ninf_api.h"
#include "numlib/matrix.h"
#include "numlib/mmul.h"
#include "server/registry.h"
#include "server/server.h"
#include "transport/tcp_transport.h"

using namespace ninf;

int main() {
  // ---- Server side: register executables and serve on loopback TCP.
  server::Registry registry;
  server::registerStandardExecutables(registry);
  server::NinfServer srv(registry, {.workers = 2});
  auto listener = std::make_shared<transport::TcpListener>(0);
  const std::uint16_t port = listener->port();
  srv.start(listener);
  std::printf("Ninf server listening on 127.0.0.1:%u, exports:", port);
  for (const auto& name : registry.names()) std::printf(" %s", name.c_str());
  std::printf("\n");

  // ---- Client side: two-stage RPC.  No stubs, no headers, no linking —
  // the interface arrives as interpretable code on first use.
  auto client = client::NinfClient::connectTcp("127.0.0.1", port);
  const auto& info = client->queryInterface("dmmul");
  std::printf("fetched interface: %s — \"%s\"\n", info.name.c_str(),
              info.description.c_str());

  const std::int64_t n = 64;
  const numlib::Matrix a = numlib::randomMatrix(n, 1);
  const numlib::Matrix b = numlib::randomMatrix(n, 2);
  std::vector<double> c(n * n);

  // double A[n][n], B[n][n], C[n][n];  Ninf_call("dmmul", n, A, B, C);
  const auto result = client::ninfCall(*client, "dmmul", n, a.flat(),
                                       b.flat(), std::span<double>(c));
  std::printf("Ninf_call(\"dmmul\") done: %.3f ms, %lld bytes out, %lld in\n",
              result.elapsed * 1e3,
              static_cast<long long>(result.bytes_sent),
              static_cast<long long>(result.bytes_received));

  // ---- Verify against the local library.
  const numlib::Matrix expected = numlib::dmmul(a, b);
  double max_err = 0;
  for (std::size_t i = 0; i < c.size(); ++i) {
    max_err = std::max(max_err, std::abs(c[i] - expected.flat()[i]));
  }
  std::printf("max |remote - local| = %.3e  %s\n", max_err,
              max_err < 1e-10 ? "(OK)" : "(MISMATCH)");

  client->close();
  srv.stop();
  return max_err < 1e-10 ? 0 : 1;
}
