// Parameter sweep: the "parameter sensitivity analysis" application class
// the paper calls out as ideal for global computing (sections 1 and 4.3).
//
// Question: how fast does the spectral density of random Hamiltonians
// approach the Wigner semicircle as the matrix dimension grows?  Each
// sweep point is a batch of DOS samples executed remotely via
// Ninf_call_async on a farm of servers; per-point batches are split
// across the farm and merged exactly.
//
// Usage: parameter_sweep [servers]   (default 3)
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "client/async.h"
#include "client/dispatcher.h"
#include "common/table.h"
#include "metaserver/metaserver.h"
#include "numlib/dos.h"
#include "server/registry.h"
#include "server/server.h"
#include "transport/tcp_transport.h"

using namespace ninf;

int main(int argc, char** argv) {
  const std::size_t num_servers =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 3;

  // ---- Server farm behind a metaserver.
  std::vector<std::unique_ptr<server::Registry>> registries;
  std::vector<std::unique_ptr<server::NinfServer>> servers;
  metaserver::Metaserver meta(metaserver::SchedulingPolicy::RoundRobin);
  for (std::size_t i = 0; i < num_servers; ++i) {
    registries.push_back(std::make_unique<server::Registry>());
    server::registerStandardExecutables(*registries.back());
    servers.push_back(std::make_unique<server::NinfServer>(
        *registries.back(), server::ServerOptions{.workers = 2}));
    auto listener = std::make_shared<transport::TcpListener>(0);
    const auto port = listener->port();
    servers.back()->start(listener);
    meta.addServer({.name = "node-" + std::to_string(i),
                    .factory = [port] {
                      return client::NinfClient::connectTcp("127.0.0.1",
                                                            port);
                    }});
  }

  // ---- The sweep: dimension n vs distance to the semicircle.
  constexpr std::int64_t kBins = 40;
  constexpr std::int64_t kSamplesPerPoint = 24;
  const std::size_t dims[] = {4, 8, 16, 32};

  client::AsyncCaller async(meta);
  // One histogram buffer per (sweep point, farm slice).
  std::vector<std::vector<std::vector<double>>> hists(
      std::size(dims),
      std::vector<std::vector<double>>(num_servers,
                                       std::vector<double>(kBins)));
  std::vector<std::future<client::CallResult>> futures;
  for (std::size_t d = 0; d < std::size(dims); ++d) {
    const std::int64_t per = kSamplesPerPoint / num_servers;
    for (std::size_t s = 0; s < num_servers; ++s) {
      const std::int64_t first = static_cast<std::int64_t>(s) * per;
      const std::int64_t count =
          (s + 1 == num_servers) ? kSamplesPerPoint - first : per;
      futures.push_back(async.callAsync(
          "dos",
          {protocol::ArgValue::inInt(static_cast<std::int64_t>(dims[d])),
           protocol::ArgValue::inInt(first), protocol::ArgValue::inInt(count),
           protocol::ArgValue::inInt(kBins),
           protocol::ArgValue::outArray(hists[d][s])}));
    }
  }
  std::printf("launched %zu async Ninf_calls across %zu servers...\n",
              futures.size(), num_servers);
  for (auto& f : futures) f.get();

  // ---- Merge slices and compare against the closed form.
  TextTable table({"n", "eigenvalues", "max |rho - semicircle|"});
  const double e_min = -2.5, e_max = 2.5;
  const double width = (e_max - e_min) / kBins;
  for (std::size_t d = 0; d < std::size(dims); ++d) {
    std::vector<double> merged(kBins, 0.0);
    double total = 0.0;
    for (const auto& slice : hists[d]) {
      for (std::int64_t b = 0; b < kBins; ++b) {
        merged[b] += slice[b];
        total += slice[b];
      }
    }
    double worst = 0.0;
    for (std::int64_t b = 0; b < kBins; ++b) {
      const double center = e_min + (b + 0.5) * width;
      const double density = merged[b] / (total * width);
      worst = std::max(worst,
                       std::abs(density - numlib::wignerSemicircle(center)));
    }
    table.row()
        .cell(dims[d])
        .cell(static_cast<long long>(total))
        .cell(worst, 4);
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "The deviation should shrink as n grows (finite-size effects die\n"
      "off) — a parameter study computed entirely through Ninf RPC.\n");

  for (auto& s : servers) s->stop();
  return 0;
}
