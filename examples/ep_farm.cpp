// EP farm: the paper's metaserver pattern (section 4.3) on real servers.
//
// Spins up several Ninf computational servers, registers them with a
// metaserver, and runs the paper's task-parallel EP transaction:
//
//     Ninf_transaction_begin();
//     for (i = 1; i <= numprocs(); i++) Ninf_call("ep", ...);
//     Ninf_transaction_end();
//
// The transaction's calls are independent, so the metaserver fans them
// out across the servers; partial results are merged and verified against
// a monolithic local EP run.
//
// Usage: ep_farm [servers] [log2_pairs]   (defaults: 4 servers, 2^18)
#include <cstdio>
#include <cstdlib>

#include "client/transaction.h"
#include "metaserver/metaserver.h"
#include "numlib/ep.h"
#include "server/registry.h"
#include "server/server.h"
#include "transport/tcp_transport.h"

using namespace ninf;

int main(int argc, char** argv) {
  const std::size_t num_servers =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 4;
  const int log2_pairs = argc > 2 ? std::atoi(argv[2]) : 18;
  const std::int64_t total_pairs = std::int64_t{1} << log2_pairs;
  const std::int64_t chunk = total_pairs / static_cast<std::int64_t>(num_servers);

  // ---- Cluster: one registry+server per "node".
  std::vector<std::unique_ptr<server::Registry>> registries;
  std::vector<std::unique_ptr<server::NinfServer>> servers;
  metaserver::Metaserver meta(metaserver::SchedulingPolicy::RoundRobin);
  for (std::size_t i = 0; i < num_servers; ++i) {
    registries.push_back(std::make_unique<server::Registry>());
    server::registerStandardExecutables(*registries.back());
    servers.push_back(std::make_unique<server::NinfServer>(
        *registries.back(), server::ServerOptions{.workers = 1}));
    auto listener = std::make_shared<transport::TcpListener>(0);
    const auto port = listener->port();
    servers.back()->start(listener);
    meta.addServer({.name = "node-" + std::to_string(i),
                    .factory =
                        [port] {
                          return client::NinfClient::connectTcp("127.0.0.1",
                                                                port);
                        },
                    .bandwidth_bps = 10e6,
                    .perf_flops = 1e8});
    std::printf("started node-%zu on port %u\n", i, port);
  }

  // ---- Transaction: disjoint slices of the global EP sequence.
  std::vector<std::vector<double>> sums(num_servers, std::vector<double>(2));
  std::vector<std::vector<double>> qs(num_servers, std::vector<double>(10));
  client::Transaction tx;
  for (std::size_t i = 0; i < num_servers; ++i) {
    tx.add("ep",
           {protocol::ArgValue::inInt(static_cast<std::int64_t>(i) * chunk),
            protocol::ArgValue::inInt(chunk),
            protocol::ArgValue::outArray(sums[i]),
            protocol::ArgValue::outArray(qs[i])});
  }
  std::printf("dispatching %zu EP calls of %lld pairs each...\n",
              num_servers, static_cast<long long>(chunk));
  meta.runTransaction(tx);

  // ---- Merge and verify.
  double sx = 0, sy = 0;
  std::int64_t counted = 0;
  for (std::size_t i = 0; i < num_servers; ++i) {
    sx += sums[i][0];
    sy += sums[i][1];
    for (double q : qs[i]) counted += static_cast<std::int64_t>(q);
  }
  const auto reference = numlib::runEp(0, chunk * num_servers);
  std::printf("distributed: Sx=%.10e Sy=%.10e accepted=%lld\n", sx, sy,
              static_cast<long long>(counted));
  std::printf("monolithic : Sx=%.10e Sy=%.10e accepted=%lld\n", reference.sx,
              reference.sy, static_cast<long long>(reference.accepted));
  const bool ok = std::abs(sx - reference.sx) < 1e-6 &&
                  std::abs(sy - reference.sy) < 1e-6 &&
                  counted == reference.accepted;
  std::printf("%s\n", ok ? "MATCH — task-parallel distribution is exact"
                         : "MISMATCH");

  for (auto& s : servers) s->stop();
  return ok ? 0 : 1;
}
