// trace_merge_demo: one traced Ninf_call crossing a real process
// boundary, merged into a single Chrome trace.
//
// The demo forks: the child is a Ninf server on loopback TCP with its
// own tracer (server.trace.json), the parent runs a metaserver-dispatched
// client with its own tracer (client.trace.json).  The trace-context
// wire extension carries (trace_id, parent_span) inside the v2 frame
// header, so the server's queue-wait and compute spans land in the
// client's trace tree even though they were recorded by another process.
// Afterwards the parent merges both files the same way
// `ninf_trace_dump --merge` does and prints the causal chain.
//
// Build & run:  cmake --build build && ./build/examples/trace_merge_demo
// Files land in --out DIR (default '.'):
//   client.trace.json   client + metaserver spans
//   server.trace.json   server-side spans
//   merged.trace.json   both, one lane per process, epochs aligned —
//                       open in chrome://tracing or ui.perfetto.dev
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "client/client.h"
#include "common/error.h"
#include "metaserver/metaserver.h"
#include "numlib/matrix.h"
#include "obs/export.h"
#include "obs/trace.h"
#include "obs/trace_session.h"
#include "protocol/call_marshal.h"
#include "server/registry.h"
#include "server/server.h"
#include "transport/tcp_transport.h"

using namespace ninf;

namespace {

std::string readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ninf::Error("cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Child: serve the listener until the parent closes its pipe end, with
/// tracing on so queue-wait/compute spans are recorded server-side.
int runServer(const std::string& trace_path,
              std::shared_ptr<transport::TcpListener> listener,
              int shutdown_fd) {
  obs::TraceSession trace(trace_path, "server");
  server::Registry registry;
  server::registerStandardExecutables(registry);
  server::NinfServer server(registry, server::ServerOptions{.workers = 2});
  server.start(std::move(listener));
  char byte;
  while (read(shutdown_fd, &byte, 1) < 0 && errno == EINTR) {
  }
  close(shutdown_fd);
  server.stop();
  return 0;
}

/// Parent: metaserver-dispatched dmmul against the child, then merge the
/// two per-process trace files.
int runClient(const std::string& out_dir, std::uint16_t port,
              pid_t server_pid, int shutdown_fd) {
  const std::string client_path = out_dir + "/client.trace.json";
  const std::string server_path = out_dir + "/server.trace.json";
  const std::string merged_path = out_dir + "/merged.trace.json";

  {
    obs::TraceSession trace(client_path, "client");
    metaserver::Metaserver meta;
    meta.addServer({.name = "worker",
                    .factory = [port] {
                      return client::NinfClient::connectTcp("127.0.0.1",
                                                            port);
                    }});

    const std::int64_t n = 64;
    const numlib::Matrix a = numlib::randomMatrix(n, 1);
    const numlib::Matrix b = numlib::randomMatrix(n, 2);
    std::vector<double> c(n * n);
    std::vector<protocol::ArgValue> args = {
        protocol::ArgValue::inInt(n), protocol::ArgValue::inArray(a.flat()),
        protocol::ArgValue::inArray(b.flat()),
        protocol::ArgValue::outArray(c)};
    const auto result = meta.dispatch("dmmul", args);
    std::printf("dmmul n=%lld via metaserver -> forked server: %.3f ms\n",
                static_cast<long long>(n), result.elapsed * 1e3);
  }  // session destructor flushes client.trace.json

  // Tell the child to drain and flush its own trace, then wait for it.
  close(shutdown_fd);
  int status = 0;
  waitpid(server_pid, &status, 0);
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    std::fprintf(stderr, "server process exited abnormally\n");
    return 1;
  }

  // Merge exactly as `ninf_trace_dump --merge merged.trace.json
  // client.trace.json server.trace.json` would.
  std::vector<obs::ProcessTrace> inputs;
  for (const std::string& path : {client_path, server_path}) {
    const std::string text = readFile(path);
    const obs::TraceMeta meta_info = obs::parseChromeTraceMeta(text);
    inputs.push_back(obs::ProcessTrace{meta_info.process,
                                       meta_info.epoch_unix_us,
                                       obs::parseChromeTrace(text)});
  }
  std::ofstream out(merged_path, std::ios::binary);
  out << obs::mergeChromeTraces(inputs);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", merged_path.c_str());
    return 1;
  }

  // Show the cross-process chain: every span of the call's trace, from
  // both processes, sharing one trace id.
  const std::vector<obs::SpanRecord> merged =
      obs::parseChromeTrace(readFile(merged_path));
  std::uint64_t root_trace = 0;
  for (const auto& s : merged) {
    if (s.name == "dispatch") root_trace = s.trace_id;
  }
  std::printf("\nspans in trace %llu (client lane + server lane):\n",
              static_cast<unsigned long long>(root_trace));
  for (const auto& s : merged) {
    if (s.trace_id != root_trace) continue;
    std::printf("  %-22s span=%llu parent=%llu dur=%.3f ms\n",
                s.name.c_str(), static_cast<unsigned long long>(s.span_id),
                static_cast<unsigned long long>(s.parent_id),
                s.dur_us / 1e3);
  }
  std::printf(
      "\nwrote %s, %s,\nand %s — open the merged file in chrome://tracing\n",
      client_path.c_str(), server_path.c_str(), merged_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_dir = ".";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_dir = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--out DIR]\n", argv[0]);
      return 2;
    }
  }

  // Listener before fork so both sides know the port; pipe so the parent
  // can tell the child when to flush its trace and exit.
  auto listener = std::make_shared<transport::TcpListener>(0);
  const std::uint16_t port = listener->port();
  int fds[2];
  if (pipe(fds) != 0) {
    std::perror("pipe");
    return 1;
  }

  const pid_t pid = fork();
  if (pid < 0) {
    std::perror("fork");
    return 1;
  }
  try {
    if (pid == 0) {
      close(fds[1]);
      return runServer(out_dir + "/server.trace.json", std::move(listener),
                       fds[0]);
    }
    close(fds[0]);
    // Keep our listener reference untouched: TcpListener::close() uses
    // shutdown(), which after fork() would tear down the child's accept
    // socket too (shared open file description).  It falls closed when
    // main returns, after the child has exited.
    return runClient(out_dir, port, pid, fds[1]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "trace_merge_demo: %s\n", e.what());
    return 1;
  }
}
