// WAN study: use the global-computing simulator (the tool the paper's
// conclusion calls for) to answer a deployment question: from a client at
// a university site, when is it worth calling the remote J90 over the WAN
// instead of computing locally — and how does that change as neighbours
// at your site hammer the same uplink?
//
// Usage: wan_study
#include <cstdio>

#include "common/table.h"
#include "simworld/scenario.h"

using namespace ninf;
using namespace ninf::simworld;

int main() {
  std::printf("WAN feasibility study (simulated, virtual time)\n\n");

  // 1. Single WAN client: crossover against local execution.
  std::printf("1) Lone WAN client at Ocha-U vs local SuperSPARC:\n");
  TextTable t1({"n", "local [Mflops]", "remote J90 [Mflops]", "winner"});
  for (std::size_t n = 200; n <= 1600; n += 200) {
    MultiClientConfig cfg;
    cfg.topology = Topology::SingleSiteWan;
    cfg.mode = ExecMode::DataParallel;
    cfg.n = n;
    cfg.clients = 1;
    cfg.duration = 2000.0;
    const auto r = runMultiClient(cfg);
    const double remote =
        r.row.times() > 0 ? r.row.perf_mflops.mean() : 0.0;
    const double local = localMflops(ClientKind::SuperSparc, true, n);
    t1.row().cell(n).cell(local, 2).cell(remote, 2).cell(
        remote > local ? "remote" : "local");
  }
  std::printf("%s\n", t1.str().c_str());

  // 2. Contention: the same question as the site gets busy.
  std::printf("2) n=1400 remote performance as site neighbours grow:\n");
  TextTable t2({"clients at site", "per-client [Mflops]",
                "per-call throughput [MB/s]", "server CPU [%]"});
  for (const std::size_t c : {1u, 2u, 4u, 8u, 16u}) {
    MultiClientConfig cfg;
    cfg.topology = Topology::SingleSiteWan;
    cfg.mode = ExecMode::DataParallel;
    cfg.n = 1400;
    cfg.clients = c;
    cfg.duration = 1500.0;
    const auto r = runMultiClient(cfg);
    t2.row()
        .cell(c)
        .cell(r.row.perf_mflops.mean(), 2)
        .cell(r.row.throughput_mbps.mean(), 3)
        .cell(r.cpu_util_percent, 1);
  }
  std::printf("%s\n", t2.str().c_str());

  // 3. The fix the paper recommends: spread clients across sites.
  std::printf("3) 4 clients: one site vs spread over four sites:\n");
  MultiClientConfig single;
  single.topology = Topology::SingleSiteWan;
  single.mode = ExecMode::DataParallel;
  single.n = 1400;
  single.clients = 4;
  single.duration = 1500.0;
  const auto s = runMultiClient(single);
  MultiClientConfig spread = single;
  spread.topology = Topology::MultiSiteWan;
  spread.clients = 1;
  const auto m = runMultiClient(spread);
  std::printf("  one site   : %5.2f Mflops/client, aggregate %5.3f MB/s\n",
              s.row.perf_mflops.mean(), s.aggregate_mbps);
  std::printf("  four sites : %5.2f Mflops/client, aggregate %5.3f MB/s\n",
              m.row.perf_mflops.mean(), m.aggregate_mbps);
  std::printf(
      "\nConclusion (matches the paper): bandwidth, not server load,\n"
      "limits WAN Ninf_calls; distribute clients (or pick servers) by\n"
      "network path, not by server load average alone.\n");
  return 0;
}
