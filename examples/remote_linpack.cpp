// Remote Linpack: the paper's communication-heavy workload on a real
// server, comparing local vs remote solve times and the three library
// variants (reference / blocked / data-parallel), plus the two-phase
// protocol of section 5.1.
//
// Usage: remote_linpack [n]   (default n = 300)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "client/client.h"
#include "client/ninf_api.h"
#include "numlib/linpack_driver.h"
#include "numlib/matrix.h"
#include "server/registry.h"
#include "server/server.h"
#include "transport/tcp_transport.h"

using namespace ninf;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 300;

  server::Registry registry;
  server::registerStandardExecutables(registry, /*workers=*/4);
  server::NinfServer srv(registry, {.workers = 2});
  auto listener = std::make_shared<transport::TcpListener>(0);
  srv.start(listener);
  auto client = client::NinfClient::connectTcp("127.0.0.1",
                                               listener->port());

  // Problem: A x = b with known all-ones solution.
  numlib::Matrix a = numlib::randomMatrix(n, 42);
  std::vector<double> b = numlib::onesRhs(a);
  std::vector<double> x(n);

  // Local baseline (the "Local" curves of Figures 3-4).
  const auto local = numlib::runLinpack(n, numlib::LuVariant::Blocked);
  std::printf("local  blocked       : %7.1f ms  %7.1f Mflops  resid %.2f\n",
              local.seconds * 1e3, local.mflops, local.residual);

  const char* names[] = {"reference dgefa", "blocked glub4-style",
                         "parallel libsci-style"};
  for (std::int64_t opt = 0; opt <= 2; ++opt) {
    std::fill(x.begin(), x.end(), 0.0);
    const auto r = client::ninfCall(*client, "linpack",
                                    static_cast<std::int64_t>(n), opt,
                                    a.flat(), b, std::span<double>(x));
    double max_err = 0;
    for (double xi : x) max_err = std::max(max_err, std::abs(xi - 1.0));
    std::printf(
        "remote %-21s: %7.1f ms  wait %5.1f ms  |x-1|max %.1e  %s\n",
        names[opt], r.elapsed * 1e3, r.waitTime() * 1e3, max_err,
        max_err < 1e-4 ? "OK" : "MISMATCH");
  }

  // Two-phase call (section 5.1): ship arguments, detach, fetch later.
  std::fill(x.begin(), x.end(), 0.0);
  std::vector<protocol::ArgValue> args = {
      protocol::ArgValue::inInt(static_cast<std::int64_t>(n)),
      protocol::ArgValue::inInt(1), protocol::ArgValue::inArray(a.flat()),
      protocol::ArgValue::inArray(b), protocol::ArgValue::outArray(x)};
  const auto handle = client->submit("linpack", args);
  std::printf("two-phase: submitted job %llu, polling...\n",
              static_cast<unsigned long long>(handle.id));
  std::optional<client::CallResult> result;
  while (!result) {
    result = client->fetch(handle, args);
    if (!result) std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  double max_err = 0;
  for (double xi : x) max_err = std::max(max_err, std::abs(xi - 1.0));
  std::printf("two-phase: complete, |x-1|max = %.1e %s\n", max_err,
              max_err < 1e-4 ? "(OK)" : "(MISMATCH)");

  client->close();
  srv.stop();
  return 0;
}
