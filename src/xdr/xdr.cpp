#include "xdr/xdr.h"

#include <algorithm>
#include <bit>
#include <cstring>

#include "common/error.h"

namespace ninf::xdr {

namespace {
constexpr std::size_t kAlign = 4;

std::size_t padding(std::size_t n) { return (kAlign - n % kAlign) % kAlign; }

/// Encode host doubles as big-endian binary64 into `out` (8 bytes each).
void encodeDoublesBE(std::span<const double> in, std::uint8_t* out) {
  for (double d : in) {
    const std::uint64_t v = std::bit_cast<std::uint64_t>(d);
    out[0] = static_cast<std::uint8_t>(v >> 56);
    out[1] = static_cast<std::uint8_t>(v >> 48);
    out[2] = static_cast<std::uint8_t>(v >> 40);
    out[3] = static_cast<std::uint8_t>(v >> 32);
    out[4] = static_cast<std::uint8_t>(v >> 24);
    out[5] = static_cast<std::uint8_t>(v >> 16);
    out[6] = static_cast<std::uint8_t>(v >> 8);
    out[7] = static_cast<std::uint8_t>(v);
    out += 8;
  }
}

/// `data` holds big-endian binary64 bytes; convert to host doubles in
/// place.  Each element's bytes are fully read before its slot is
/// overwritten, so the aliasing is safe.
void decodeDoublesBEInPlace(std::span<double> data) {
  const std::uint8_t* p = reinterpret_cast<const std::uint8_t*>(data.data());
  for (std::size_t i = 0; i < data.size(); ++i, p += 8) {
    std::uint64_t v = 0;
    for (int b = 0; b < 8; ++b) v = (v << 8) | p[b];
    data[i] = std::bit_cast<double>(v);
  }
}
}  // namespace

// ---------------------------------------------------------------- Encoder

void Encoder::pad() {
  buffer_.resize(buffer_.size() + padding(buffer_.size()), 0);
}

void Encoder::putU32(std::uint32_t v) {
  buffer_.push_back(static_cast<std::uint8_t>(v >> 24));
  buffer_.push_back(static_cast<std::uint8_t>(v >> 16));
  buffer_.push_back(static_cast<std::uint8_t>(v >> 8));
  buffer_.push_back(static_cast<std::uint8_t>(v));
}

void Encoder::putI32(std::int32_t v) {
  putU32(static_cast<std::uint32_t>(v));
}

void Encoder::putU64(std::uint64_t v) {
  putU32(static_cast<std::uint32_t>(v >> 32));
  putU32(static_cast<std::uint32_t>(v));
}

void Encoder::putI64(std::int64_t v) {
  putU64(static_cast<std::uint64_t>(v));
}

void Encoder::putBool(bool v) { putU32(v ? 1u : 0u); }

void Encoder::putFloat(float v) {
  static_assert(sizeof(float) == 4);
  putU32(std::bit_cast<std::uint32_t>(v));
}

void Encoder::putDouble(double v) {
  static_assert(sizeof(double) == 8);
  putU64(std::bit_cast<std::uint64_t>(v));
}

void Encoder::putOpaque(std::span<const std::uint8_t> bytes) {
  putU32(static_cast<std::uint32_t>(bytes.size()));
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
  pad();
}

void Encoder::putString(const std::string& s) {
  putOpaque({reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
}

void Encoder::putDoubleArray(std::span<const double> values) {
  putU32(static_cast<std::uint32_t>(values.size()));
  const std::size_t start = buffer_.size();
  buffer_.resize(start + values.size() * 8);
  encodeDoublesBE(values, buffer_.data() + start);
}

void Encoder::putDoubleArrayRef(std::span<const double> values) {
  putU32(static_cast<std::uint32_t>(values.size()));
  if (!values.empty()) {
    segments_.push_back({buffer_.size(), values});
  }
}

void Encoder::putI64Array(std::span<const std::int64_t> values) {
  putU32(static_cast<std::uint32_t>(values.size()));
  for (std::int64_t v : values) putI64(v);
}

void Encoder::putRaw(std::span<const std::uint8_t> bytes) {
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

std::size_t Encoder::borrowedBytes() const {
  std::size_t total = 0;
  for (const Segment& seg : segments_) total += seg.borrowed.size() * 8;
  return total;
}

const std::vector<std::uint8_t>& Encoder::bytes() const {
  NINF_REQUIRE(!hasBorrowed(),
               "bytes() on an encoder with borrowed segments; use emitTo()");
  return buffer_;
}

std::vector<std::uint8_t> Encoder::take() {
  if (!hasBorrowed()) return std::move(buffer_);
  std::vector<std::uint8_t> out;
  appendTo(out);
  return out;
}

void Encoder::appendTo(std::vector<std::uint8_t>& out) const {
  out.reserve(out.size() + size());
  std::size_t owned_pos = 0;
  for (const Segment& seg : segments_) {
    out.insert(out.end(), buffer_.begin() + owned_pos,
               buffer_.begin() + seg.owned_end);
    owned_pos = seg.owned_end;
    const std::size_t start = out.size();
    out.resize(start + seg.borrowed.size() * 8);
    encodeDoublesBE(seg.borrowed, out.data() + start);
  }
  out.insert(out.end(), buffer_.begin() + owned_pos, buffer_.end());
}

void Encoder::emitTo(Sink& sink) const {
  constexpr std::size_t kScratchDoubles = kScratchBytes / 8;
  std::uint8_t scratch[kScratchBytes];
  std::size_t owned_pos = 0;
  for (const Segment& seg : segments_) {
    if (seg.owned_end > owned_pos) {
      sink.write({buffer_.data() + owned_pos, seg.owned_end - owned_pos});
      owned_pos = seg.owned_end;
    }
    std::span<const double> rest = seg.borrowed;
    while (!rest.empty()) {
      const auto chunk = rest.first(std::min(rest.size(), kScratchDoubles));
      encodeDoublesBE(chunk, scratch);
      sink.write({scratch, chunk.size() * 8});
      sink.flush();  // scratch is reused for the next chunk
      rest = rest.subspan(chunk.size());
    }
  }
  if (buffer_.size() > owned_pos) {
    sink.write({buffer_.data() + owned_pos, buffer_.size() - owned_pos});
  }
  sink.flush();
}

// ----------------------------------------------------------------- Source

void Source::need(std::size_t n) const {
  if (remainingBytes() < n) {
    throw ProtocolError("XDR underflow: need " + std::to_string(n) +
                        " bytes, have " + std::to_string(remainingBytes()));
  }
}

void Source::skipPad(std::size_t payload) {
  const std::size_t pad = padding(payload);
  if (pad == 0) return;
  need(pad);
  std::uint8_t buf[kAlign];
  readBytes({buf, pad});
  for (std::size_t i = 0; i < pad; ++i) {
    if (buf[i] != 0) {
      throw ProtocolError("XDR padding bytes must be zero");
    }
  }
}

std::uint32_t Source::getU32() {
  need(4);
  std::uint8_t b[4];
  readBytes(b);
  return (static_cast<std::uint32_t>(b[0]) << 24) |
         (static_cast<std::uint32_t>(b[1]) << 16) |
         (static_cast<std::uint32_t>(b[2]) << 8) |
         static_cast<std::uint32_t>(b[3]);
}

std::int32_t Source::getI32() { return static_cast<std::int32_t>(getU32()); }

std::uint64_t Source::getU64() {
  need(8);
  std::uint8_t b[8];
  readBytes(b);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | b[i];
  return v;
}

std::int64_t Source::getI64() { return static_cast<std::int64_t>(getU64()); }

bool Source::getBool() {
  const std::uint32_t v = getU32();
  if (v > 1) throw ProtocolError("XDR bool out of range");
  return v == 1;
}

float Source::getFloat() { return std::bit_cast<float>(getU32()); }

double Source::getDouble() { return std::bit_cast<double>(getU64()); }

std::vector<std::uint8_t> Source::getOpaque() {
  const std::uint32_t len = getU32();
  need(len + padding(len));
  std::vector<std::uint8_t> out(len);
  readBytes(out);
  skipPad(len);
  return out;
}

std::string Source::getString() {
  const auto bytes = getOpaque();
  return std::string(bytes.begin(), bytes.end());
}

std::vector<double> Source::getDoubleArray() {
  const std::uint32_t count = getU32();
  need(static_cast<std::size_t>(count) * 8);
  std::vector<double> out(count);
  getDoublesBody(out);
  return out;
}

void Source::getDoubleArrayInto(std::span<double> out) {
  const std::uint32_t count = getU32();
  if (count != out.size()) {
    throw ProtocolError("double array count mismatch: wire " +
                        std::to_string(count) + " vs expected " +
                        std::to_string(out.size()));
  }
  need(static_cast<std::size_t>(count) * 8);
  getDoublesBody(out);
}

void Source::getDoublesBody(std::span<double> out) {
  readBytes({reinterpret_cast<std::uint8_t*>(out.data()), out.size() * 8});
  decodeDoublesBEInPlace(out);
}

std::vector<std::int64_t> Source::getI64Array() {
  const std::uint32_t count = getU32();
  need(static_cast<std::size_t>(count) * 8);
  std::vector<std::int64_t> out(count);
  readBytes({reinterpret_cast<std::uint8_t*>(out.data()), out.size() * 8});
  for (std::size_t i = 0; i < out.size(); ++i) {
    const std::uint8_t* p =
        reinterpret_cast<const std::uint8_t*>(out.data()) + i * 8;
    std::uint64_t v = 0;
    for (int b = 0; b < 8; ++b) v = (v << 8) | p[b];
    out[i] = static_cast<std::int64_t>(v);
  }
  return out;
}

void Source::getRaw(std::span<std::uint8_t> out) {
  need(out.size());
  readBytes(out);
}

void Source::skip(std::size_t n) {
  need(n);
  std::uint8_t buf[4096];
  while (n > 0) {
    const std::size_t chunk = std::min(n, sizeof(buf));
    readBytes({buf, chunk});
    n -= chunk;
  }
}

// ---------------------------------------------------------------- Decoder

void Decoder::readBytes(std::span<std::uint8_t> out) {
  if (out.size() > remainingBytes()) {
    throw ProtocolError("XDR underflow: need " + std::to_string(out.size()) +
                        " bytes, have " + std::to_string(remainingBytes()));
  }
  std::memcpy(out.data(), data_.data() + pos_, out.size());
  pos_ += out.size();
}

}  // namespace ninf::xdr
