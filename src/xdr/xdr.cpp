#include "xdr/xdr.h"

#include <bit>
#include <cstring>

#include "common/error.h"

namespace ninf::xdr {

namespace {
constexpr std::size_t kAlign = 4;

std::size_t padding(std::size_t n) { return (kAlign - n % kAlign) % kAlign; }
}  // namespace

// ---------------------------------------------------------------- Encoder

void Encoder::pad() {
  buffer_.resize(buffer_.size() + padding(buffer_.size()), 0);
}

void Encoder::putU32(std::uint32_t v) {
  buffer_.push_back(static_cast<std::uint8_t>(v >> 24));
  buffer_.push_back(static_cast<std::uint8_t>(v >> 16));
  buffer_.push_back(static_cast<std::uint8_t>(v >> 8));
  buffer_.push_back(static_cast<std::uint8_t>(v));
}

void Encoder::putI32(std::int32_t v) {
  putU32(static_cast<std::uint32_t>(v));
}

void Encoder::putU64(std::uint64_t v) {
  putU32(static_cast<std::uint32_t>(v >> 32));
  putU32(static_cast<std::uint32_t>(v));
}

void Encoder::putI64(std::int64_t v) {
  putU64(static_cast<std::uint64_t>(v));
}

void Encoder::putBool(bool v) { putU32(v ? 1u : 0u); }

void Encoder::putFloat(float v) {
  static_assert(sizeof(float) == 4);
  putU32(std::bit_cast<std::uint32_t>(v));
}

void Encoder::putDouble(double v) {
  static_assert(sizeof(double) == 8);
  putU64(std::bit_cast<std::uint64_t>(v));
}

void Encoder::putOpaque(std::span<const std::uint8_t> bytes) {
  putU32(static_cast<std::uint32_t>(bytes.size()));
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
  pad();
}

void Encoder::putString(const std::string& s) {
  putOpaque({reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
}

void Encoder::putDoubleArray(std::span<const double> values) {
  putU32(static_cast<std::uint32_t>(values.size()));
  const std::size_t start = buffer_.size();
  buffer_.resize(start + values.size() * 8);
  std::uint8_t* out = buffer_.data() + start;
  for (double d : values) {
    const std::uint64_t v = std::bit_cast<std::uint64_t>(d);
    out[0] = static_cast<std::uint8_t>(v >> 56);
    out[1] = static_cast<std::uint8_t>(v >> 48);
    out[2] = static_cast<std::uint8_t>(v >> 40);
    out[3] = static_cast<std::uint8_t>(v >> 32);
    out[4] = static_cast<std::uint8_t>(v >> 24);
    out[5] = static_cast<std::uint8_t>(v >> 16);
    out[6] = static_cast<std::uint8_t>(v >> 8);
    out[7] = static_cast<std::uint8_t>(v);
    out += 8;
  }
}

void Encoder::putI64Array(std::span<const std::int64_t> values) {
  putU32(static_cast<std::uint32_t>(values.size()));
  for (std::int64_t v : values) putI64(v);
}

void Encoder::putRaw(std::span<const std::uint8_t> bytes) {
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

// ---------------------------------------------------------------- Decoder

void Decoder::need(std::size_t n) const {
  if (remaining() < n) {
    throw ProtocolError("XDR underflow: need " + std::to_string(n) +
                        " bytes, have " + std::to_string(remaining()));
  }
}

void Decoder::skipPad(std::size_t payload) {
  const std::size_t pad = padding(payload);
  need(pad);
  for (std::size_t i = 0; i < pad; ++i) {
    if (data_[pos_ + i] != 0) {
      throw ProtocolError("XDR padding bytes must be zero");
    }
  }
  pos_ += pad;
}

std::uint32_t Decoder::getU32() {
  need(4);
  const std::uint32_t v = (static_cast<std::uint32_t>(data_[pos_]) << 24) |
                          (static_cast<std::uint32_t>(data_[pos_ + 1]) << 16) |
                          (static_cast<std::uint32_t>(data_[pos_ + 2]) << 8) |
                          static_cast<std::uint32_t>(data_[pos_ + 3]);
  pos_ += 4;
  return v;
}

std::int32_t Decoder::getI32() { return static_cast<std::int32_t>(getU32()); }

std::uint64_t Decoder::getU64() {
  const std::uint64_t hi = getU32();
  const std::uint64_t lo = getU32();
  return (hi << 32) | lo;
}

std::int64_t Decoder::getI64() { return static_cast<std::int64_t>(getU64()); }

bool Decoder::getBool() {
  const std::uint32_t v = getU32();
  if (v > 1) throw ProtocolError("XDR bool out of range");
  return v == 1;
}

float Decoder::getFloat() { return std::bit_cast<float>(getU32()); }

double Decoder::getDouble() { return std::bit_cast<double>(getU64()); }

std::vector<std::uint8_t> Decoder::getOpaque() {
  const std::uint32_t len = getU32();
  need(len);
  std::vector<std::uint8_t> out(data_.begin() + pos_,
                                data_.begin() + pos_ + len);
  pos_ += len;
  skipPad(len);
  return out;
}

std::string Decoder::getString() {
  const auto bytes = getOpaque();
  return std::string(bytes.begin(), bytes.end());
}

std::vector<double> Decoder::getDoubleArray() {
  const std::uint32_t count = getU32();
  need(static_cast<std::size_t>(count) * 8);
  std::vector<double> out(count);
  for (std::uint32_t i = 0; i < count; ++i) out[i] = getDouble();
  return out;
}

void Decoder::getDoubleArrayInto(std::span<double> out) {
  const std::uint32_t count = getU32();
  if (count != out.size()) {
    throw ProtocolError("double array count mismatch: wire " +
                        std::to_string(count) + " vs expected " +
                        std::to_string(out.size()));
  }
  need(static_cast<std::size_t>(count) * 8);
  const std::uint8_t* in = data_.data() + pos_;
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint64_t v = 0;
    for (int b = 0; b < 8; ++b) v = (v << 8) | in[i * 8 + b];
    out[i] = std::bit_cast<double>(v);
  }
  pos_ += static_cast<std::size_t>(count) * 8;
}

std::vector<std::int64_t> Decoder::getI64Array() {
  const std::uint32_t count = getU32();
  need(static_cast<std::size_t>(count) * 8);
  std::vector<std::int64_t> out(count);
  for (std::uint32_t i = 0; i < count; ++i) out[i] = getI64();
  return out;
}

}  // namespace ninf::xdr
