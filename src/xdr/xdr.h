// Sun XDR (RFC 4506) encoding, the wire representation used by Ninf RPC.
//
// "The underlying transfer protocol is Sun XDR on TCP/IP, allowing easy
//  porting on most major supercomputer platforms."  (paper, section 2.1)
//
// Every primitive occupies a multiple of four bytes, big-endian.  Doubles
// are IEEE-754 binary64 transmitted high word first.  Variable-length data
// carries a u32 length prefix and is padded to a 4-byte boundary.
//
// The encoder/decoder pair supports two data paths:
//
//  * Contiguous: Encoder::take()/bytes() materializes the whole payload
//    and Decoder reads from a caller-owned span.  Used for small control
//    messages (interface queries, status, acks).
//  * Streaming scatter-gather: Encoder::putDoubleArrayRef() records large
//    double arrays as *borrowed* segments (no copy); emitTo() later walks
//    the segments, byteswapping borrowed data in bounded chunks through a
//    scratch buffer into a Sink.  Symmetrically, Source is the abstract
//    reading side: typed getters are implemented once on top of a virtual
//    readBytes(), so the same decode logic runs over a contiguous span
//    (Decoder) or an incrementally received message body
//    (protocol::BodyReader), with arrays landing directly in their final
//    destination and byteswapped in place.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace ninf::xdr {

/// Destination of encoded bytes for the streaming path.
///
/// Contract: spans passed to write() must remain valid until the next
/// flush(); flush() transmits/consumes everything written so far.  This
/// lets implementations gather many small segments (frame header, scalar
/// section, byteswapped array chunk) into a single vectored send.
class Sink {
 public:
  virtual ~Sink() = default;
  virtual void write(std::span<const std::uint8_t> bytes) = 0;
  virtual void flush() {}
};

/// Sink materializing into an owned contiguous vector (tests, legacy
/// paths that still need a full payload).
class VectorSink : public Sink {
 public:
  void write(std::span<const std::uint8_t> bytes) override {
    buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
  }
  const std::vector<std::uint8_t>& bytes() const { return buffer_; }
  std::vector<std::uint8_t> take() { return std::move(buffer_); }

 private:
  std::vector<std::uint8_t> buffer_;
};

/// Append-only XDR encoder.  Small values are copied into an internal
/// byte vector; large double arrays may be *referenced* (borrowed) via
/// putDoubleArrayRef so the payload is never materialized contiguously.
class Encoder {
 public:
  /// Borrowed-segment emission byteswaps through a scratch buffer of this
  /// many bytes; this bounds the extra memory of a streamed send.
  static constexpr std::size_t kScratchBytes = 64 * 1024;

  Encoder() = default;

  void putU32(std::uint32_t v);
  void putI32(std::int32_t v);
  void putU64(std::uint64_t v);
  void putI64(std::int64_t v);
  void putBool(bool v);
  void putFloat(float v);
  void putDouble(double v);
  /// Variable-length opaque: length prefix + bytes + zero padding.
  void putOpaque(std::span<const std::uint8_t> bytes);
  /// ASCII/UTF-8 string, encoded as opaque.
  void putString(const std::string& s);
  /// Fixed-layout array of doubles with a u32 count prefix (copied).
  void putDoubleArray(std::span<const double> values);
  /// Same wire format as putDoubleArray, but the data is borrowed: the
  /// caller's memory must outlive every emitTo()/take()/appendTo() call.
  /// The byteswap is deferred to emission time.
  void putDoubleArrayRef(std::span<const double> values);
  void putI64Array(std::span<const std::int64_t> values);

  /// Raw bytes with no length prefix or padding (for nesting pre-encoded
  /// XDR fragments such as compiled IDL programs).
  void putRaw(std::span<const std::uint8_t> bytes);

  /// Total encoded size, including borrowed segments.
  std::size_t size() const { return buffer_.size() + borrowedBytes(); }
  /// Bytes held in the internal (owned) buffer only.
  std::size_t ownedSize() const { return buffer_.size(); }
  /// True if any segment references caller memory.
  bool hasBorrowed() const { return !segments_.empty(); }

  /// Contiguous view; only valid when nothing is borrowed.
  const std::vector<std::uint8_t>& bytes() const;
  /// Materialize the full payload (copies borrowed segments).
  std::vector<std::uint8_t> take();
  /// Append the full payload to `out` (copies borrowed segments).
  void appendTo(std::vector<std::uint8_t>& out) const;

  /// Stream the payload: owned ranges are written as-is, borrowed double
  /// arrays are big-endian byteswapped in chunks of at most kScratchBytes
  /// through an internal scratch buffer.  flush() is invoked after each
  /// scratch chunk and once at the end.
  void emitTo(Sink& sink) const;

 private:
  struct Segment {
    std::size_t owned_end;            // owned bytes [prev end, here) come first
    std::span<const double> borrowed; // then this array, byteswapped on emit
  };

  std::size_t borrowedBytes() const;
  void pad();

  std::vector<std::uint8_t> buffer_;
  std::vector<Segment> segments_;
};

/// Abstract XDR reading side.  Implementations provide the primitive
/// readBytes()/remainingBytes(); every typed getter is defined here once,
/// so contiguous and streamed decoding share bounds checks and byte
/// order handling.  All getters throw ninf::ProtocolError on underflow,
/// malformed padding, or count/size lies — before allocating.
class Source {
 public:
  virtual ~Source() = default;

  std::uint32_t getU32();
  std::int32_t getI32();
  std::uint64_t getU64();
  std::int64_t getI64();
  bool getBool();
  float getFloat();
  double getDouble();
  std::vector<std::uint8_t> getOpaque();
  std::string getString();
  std::vector<double> getDoubleArray();
  std::vector<std::int64_t> getI64Array();
  /// Decode a double array directly into caller memory (output matrices);
  /// the wire count must equal out.size().  The bytes land in `out` and
  /// are byteswapped in place — no intermediate buffer.
  void getDoubleArrayInto(std::span<double> out);
  /// Read exactly out.size() raw bytes with no length prefix or padding
  /// (the inverse of Encoder::putRaw; materializes whole message bodies).
  void getRaw(std::span<std::uint8_t> out);
  /// Consume and discard exactly n bytes.
  void skip(std::size_t n);

  std::size_t remaining() const { return remainingBytes(); }
  bool atEnd() const { return remainingBytes() == 0; }

 protected:
  /// Read exactly out.size() bytes; implementations throw ProtocolError
  /// (bounded body underflow) or TransportError (connection loss).
  virtual void readBytes(std::span<std::uint8_t> out) = 0;
  /// Bytes still available from this source.
  virtual std::size_t remainingBytes() const = 0;

  void need(std::size_t n) const;

 private:
  void skipPad(std::size_t payload);
  /// Read count*8 wire bytes straight into `out` and byteswap in place.
  void getDoublesBody(std::span<double> out);
};

/// XDR decoder reading from a caller-owned contiguous byte span.
class Decoder : public Source {
 public:
  explicit Decoder(std::span<const std::uint8_t> data) : data_(data) {}

 protected:
  void readBytes(std::span<std::uint8_t> out) override;
  std::size_t remainingBytes() const override { return data_.size() - pos_; }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace ninf::xdr
