// Sun XDR (RFC 4506) encoding, the wire representation used by Ninf RPC.
//
// "The underlying transfer protocol is Sun XDR on TCP/IP, allowing easy
//  porting on most major supercomputer platforms."  (paper, section 2.1)
//
// Every primitive occupies a multiple of four bytes, big-endian.  Doubles
// are IEEE-754 binary64 transmitted high word first.  Variable-length data
// carries a u32 length prefix and is padded to a 4-byte boundary.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace ninf::xdr {

/// Append-only XDR encoder writing into an internal byte vector.
class Encoder {
 public:
  Encoder() = default;

  void putU32(std::uint32_t v);
  void putI32(std::int32_t v);
  void putU64(std::uint64_t v);
  void putI64(std::int64_t v);
  void putBool(bool v);
  void putFloat(float v);
  void putDouble(double v);
  /// Variable-length opaque: length prefix + bytes + zero padding.
  void putOpaque(std::span<const std::uint8_t> bytes);
  /// ASCII/UTF-8 string, encoded as opaque.
  void putString(const std::string& s);
  /// Fixed-layout array of doubles with a u32 count prefix.
  void putDoubleArray(std::span<const double> values);
  void putI64Array(std::span<const std::int64_t> values);

  /// Raw bytes with no length prefix or padding (for nesting pre-encoded
  /// XDR fragments such as compiled IDL programs).
  void putRaw(std::span<const std::uint8_t> bytes);

  std::size_t size() const { return buffer_.size(); }
  const std::vector<std::uint8_t>& bytes() const { return buffer_; }
  std::vector<std::uint8_t> take() { return std::move(buffer_); }

 private:
  void pad();
  std::vector<std::uint8_t> buffer_;
};

/// XDR decoder reading from a caller-owned byte span.
/// Throws ninf::ProtocolError on underflow or malformed padding.
class Decoder {
 public:
  explicit Decoder(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint32_t getU32();
  std::int32_t getI32();
  std::uint64_t getU64();
  std::int64_t getI64();
  bool getBool();
  float getFloat();
  double getDouble();
  std::vector<std::uint8_t> getOpaque();
  std::string getString();
  std::vector<double> getDoubleArray();
  std::vector<std::int64_t> getI64Array();
  /// Decode a double array directly into caller memory (output matrices);
  /// the wire count must equal out.size().
  void getDoubleArrayInto(std::span<double> out);

  std::size_t remaining() const { return data_.size() - pos_; }
  bool atEnd() const { return pos_ == data_.size(); }

 private:
  void need(std::size_t n) const;
  void skipPad(std::size_t payload);

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace ninf::xdr
