// Ninf RPC message framing.
//
// Every message is a fixed 16-byte header (magic, version, type, payload
// length) followed by an XDR payload.  The call sequence implements the
// paper's two-stage RPC (section 2.3): the client first queries the
// interface, receives the compiled IDL information as interpretable code,
// then marshals arguments accordingly.
//
//   client                       server
//     | -- QueryInterface -------> |
//     | <------- InterfaceReply -- |   (compiled InterfaceInfo)
//     | -- CallRequest ----------> |   (entry name + IN arguments)
//     | <---------- CallReply ---- |   (OUT arguments + server timings)
//
// The optional two-phase mode of section 5.1 splits the call:
//
//     | -- SubmitRequest --------> |
//     | <---------- SubmitAck ---- |   (job id; connection may drop)
//     | -- FetchResult(job) -----> |   (later, new connection)
//     | <- CallReply / ResultPending |
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "transport/transport.h"

namespace ninf::protocol {

inline constexpr std::uint32_t kMagic = 0x4E494E46;  // "NINF"
inline constexpr std::uint32_t kVersion = 1;
/// Guard against hostile/corrupt length fields (256 MiB).
inline constexpr std::uint32_t kMaxPayload = 256u << 20;

enum class MessageType : std::uint32_t {
  QueryInterface = 1,   // payload: string name
  InterfaceReply = 2,   // payload: bool found, [InterfaceInfo]
  CallRequest = 3,      // payload: string name, IN args
  CallReply = 4,        // payload: status, timings, OUT args | error string
  SubmitRequest = 5,    // payload: string name, IN args (two-phase)
  SubmitAck = 6,        // payload: u64 job id
  FetchResult = 7,      // payload: u64 job id
  ResultPending = 8,    // payload: empty
  ListExecutables = 9,  // payload: empty
  ExecutableList = 10,  // payload: u32 count, names
  ServerStatus = 11,    // payload: empty
  StatusReply = 12,     // payload: running, queued, completed, load
  Ping = 13,            // payload: opaque echo data
  Pong = 14,            // payload: opaque echo data
};

struct Message {
  MessageType type;
  std::vector<std::uint8_t> payload;
};

/// Serialize and send one message.
void sendMessage(transport::Stream& stream, MessageType type,
                 std::span<const std::uint8_t> payload);

/// Receive one message; throws ProtocolError on bad magic/version/length
/// and TransportError on connection loss.
Message recvMessage(transport::Stream& stream);

/// Server-side status snapshot carried by StatusReply (metaserver food).
struct ServerStatusInfo {
  std::uint32_t running = 0;    // executables currently executing
  std::uint32_t queued = 0;     // jobs waiting in the queue
  std::uint64_t completed = 0;  // jobs finished since start
  double load_average = 0.0;    // smoothed runnable-task count

  std::vector<std::uint8_t> toBytes() const;
  static ServerStatusInfo fromBytes(std::span<const std::uint8_t> bytes);
};

}  // namespace ninf::protocol
