// Ninf RPC message framing.
//
// Every message is a fixed 16-byte header (magic, version, type, payload
// length) followed by an XDR payload.  The call sequence implements the
// paper's two-stage RPC (section 2.3): the client first queries the
// interface, receives the compiled IDL information as interpretable code,
// then marshals arguments accordingly.
//
//   client                       server
//     | -- QueryInterface -------> |
//     | <------- InterfaceReply -- |   (compiled InterfaceInfo)
//     | -- CallRequest ----------> |   (entry name + IN arguments)
//     | <---------- CallReply ---- |   (OUT arguments + server timings)
//
// The optional two-phase mode of section 5.1 splits the call:
//
//     | -- SubmitRequest --------> |
//     | <---------- SubmitAck ---- |   (job id; connection may drop)
//     | -- FetchResult(job) -----> |   (later, new connection)
//     | <- CallReply / ResultPending |
//
// Protocol v2 (session layer): a client that wants to multiplex many
// logical calls over one connection opens with a version negotiation in
// v1 framing:
//
//     | -- Hello(max_version) ---> |
//     | <-- HelloAck(agreed) ----- |
//
// After HelloAck agrees on v2, every frame in both directions carries a
// 64-bit call ID after the length word (24-byte header).  Requests may
// be pipelined and replies may return out of order; the call ID is the
// only correlation.  A v1 peer never sends Hello and keeps the classic
// lock-step framing — a v2 server serves both kinds of connection.
//
// Trace-context extension (negotiated): a v2 client may append a feature
// bitmask word to its Hello payload; a server that understands it echoes
// its accepted bitmask after the agreed version in HelloAck.  When both
// sides accept kFeatureTraceContext, every v2 frame in both directions
// grows by 16 bytes: a 64-bit trace ID and a 64-bit parent span ID after
// the call ID (40-byte header).  Peers that never send — or never echo —
// the feature word see byte-identical framing to plain v2, and v1 peers
// see no change at all.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/buffer_pool.h"
#include "transport/transport.h"
#include "xdr/xdr.h"

namespace ninf::protocol {

inline constexpr std::uint32_t kMagic = 0x4E494E46;  // "NINF"
inline constexpr std::uint32_t kVersion = 1;
/// Highest protocol version this build speaks (negotiated via Hello).
inline constexpr std::uint32_t kVersion2 = 2;
inline constexpr std::uint32_t kMaxVersion = kVersion2;
/// Frame header sizes: v1 is magic/version/type/length; v2 appends a
/// 64-bit call ID used to correlate out-of-order replies; a negotiated
/// trace-context connection further appends trace ID + parent span ID.
inline constexpr std::size_t kHeaderBytes = 16;
inline constexpr std::size_t kHeaderBytesV2 = 24;
inline constexpr std::size_t kHeaderBytesV2Traced = 40;
/// Feature bits carried in the optional Hello/HelloAck bitmask word.
inline constexpr std::uint32_t kFeatureTraceContext = 1u << 0;
/// Peer serves the sharded-metaserver control plane (RingQuery/RingInfo,
/// ScheduleQuery, registration, replication).  Unlike kFeatureTraceContext
/// it never changes framing — it only licenses the new message types — so
/// peers that do not negotiate it see byte-identical connections.
inline constexpr std::uint32_t kFeatureSharding = 1u << 1;
/// Bits this build understands; unknown bits from a peer are ignored.
/// Individual services echo only the subset they implement (a compute
/// server accepts trace context but not sharding; a metaserver node the
/// reverse).
inline constexpr std::uint32_t kKnownFeatures =
    kFeatureTraceContext | kFeatureSharding;
/// Guard against hostile/corrupt length fields (256 MiB).
inline constexpr std::uint32_t kMaxPayload = 256u << 20;

enum class MessageType : std::uint32_t {
  QueryInterface = 1,   // payload: string name
  InterfaceReply = 2,   // payload: bool found, [InterfaceInfo]
  CallRequest = 3,      // payload: string name, IN args
  CallReply = 4,        // payload: status, timings, OUT args | error string
  SubmitRequest = 5,    // payload: string name, IN args (two-phase)
  SubmitAck = 6,        // payload: u64 job id
  FetchResult = 7,      // payload: u64 job id
  ResultPending = 8,    // payload: empty
  ListExecutables = 9,  // payload: empty
  ExecutableList = 10,  // payload: u32 count, names
  ServerStatus = 11,    // payload: empty
  StatusReply = 12,     // payload: running, queued, completed, load
  Ping = 13,            // payload: opaque echo data
  Pong = 14,            // payload: opaque echo data
  Hello = 15,           // payload: u32 highest version the client speaks
  HelloAck = 16,        // payload: u32 agreed version
  // Sharded-metaserver control plane (gated by kFeatureSharding; see
  // protocol/meta_wire.h for the payload codecs).
  RingQuery = 17,        // payload: u64 ring epoch the client already has
  RingInfo = 18,         // payload: ring epoch + per-shard membership
  WrongShard = 19,       // payload: entry, owner shard, epoch, reason
  ScheduleQuery = 20,    // payload: entry name + excluded server names
  ScheduleReply = 21,    // payload: chosen server name/endpoint + epoch
  RegisterServer = 22,   // payload: server descriptor + (endpoint, epoch) key
  RegisterAck = 23,      // payload: status, log seq, shard epoch
  DeregisterServer = 24, // payload: endpoint + registration epoch
  ReplAppend = 25,       // payload: shard epoch + seq-numbered registry op
  ReplAck = 26,          // payload: status, acked seq, replica's epoch
  ReplHeartbeat = 27,    // payload: shard epoch, last seq, liveness digest
};

/// Highest wire-valid message type (header validation bound).
inline constexpr std::uint32_t kMaxMessageType =
    static_cast<std::uint32_t>(MessageType::ReplHeartbeat);

struct Message {
  MessageType type;
  std::vector<std::uint8_t> payload;
};

/// Causal trace context carried in a traced v2 frame header.  Zero
/// values mean "no active trace" — receivers must not adopt them.
struct WireTraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span = 0;
};

/// Validated frame header: the first 16 (v1), 24 (v2), or 40 (traced v2)
/// bytes of every message.
struct FrameHeader {
  MessageType type;
  std::uint32_t length = 0;   // body bytes following the header
  std::uint64_t call_id = 0;  // v2 correlation id; 0 on v1 frames
  WireTraceContext trace;     // traced-v2 context; zeros otherwise
};

/// Serialize and send one message from a contiguous payload.
void sendMessage(transport::Stream& stream, MessageType type,
                 std::span<const std::uint8_t> payload);

/// Streamed scatter-gather send: the frame header, the encoder's owned
/// bytes, and byteswapped chunks of its borrowed double arrays go to the
/// stream via sendv — the message is never materialized contiguously.
void sendMessage(transport::Stream& stream, MessageType type,
                 const xdr::Encoder& body);

/// v2 frames: as above plus the call ID in the 24-byte header.
void sendMessageV2(transport::Stream& stream, MessageType type,
                   std::uint64_t call_id,
                   std::span<const std::uint8_t> payload);
void sendMessageV2(transport::Stream& stream, MessageType type,
                   std::uint64_t call_id, const xdr::Encoder& body);

/// Traced v2 frames (connection negotiated kFeatureTraceContext): the
/// 40-byte header additionally carries the trace context.
void sendMessageV2Traced(transport::Stream& stream, MessageType type,
                         std::uint64_t call_id, const WireTraceContext& ctx,
                         std::span<const std::uint8_t> payload);
void sendMessageV2Traced(transport::Stream& stream, MessageType type,
                         std::uint64_t call_id, const WireTraceContext& ctx,
                         const xdr::Encoder& body);

/// Read and validate one frame header; throws ProtocolError on bad
/// magic/version/type/length and TransportError on connection loss.  The
/// caller must then consume exactly header.length body bytes (BodyReader)
/// before the next frame.
FrameHeader recvHeader(transport::Stream& stream);

/// Same for a negotiated-v2 connection (24-byte header with call ID).
FrameHeader recvHeaderV2(transport::Stream& stream);

/// Same for a connection that negotiated kFeatureTraceContext (40-byte
/// header with call ID + trace context).
FrameHeader recvHeaderV2Traced(transport::Stream& stream);

/// Incremental reader over one frame body.  Implements xdr::Source, so
/// decode logic pulls scalars through a small internal buffer while large
/// double arrays are received directly into their final destination —
/// the body is never materialized as one contiguous vector.  Bounded: a
/// read past the declared body length throws ProtocolError.
class BodyReader : public xdr::Source {
 public:
  BodyReader(transport::Stream& stream, std::size_t length)
      : stream_(stream), body_left_(length) {}

  /// Consume and discard whatever is left of the body (used to keep the
  /// connection framing aligned after a decode error).
  void drain();

 protected:
  void readBytes(std::span<std::uint8_t> out) override;
  std::size_t remainingBytes() const override {
    return body_left_ + (buf_len_ - buf_pos_);
  }

 private:
  /// Reads at least `buffer threshold` bytes of body directly, bypassing
  /// the internal buffer, for large destinations.
  static constexpr std::size_t kBufBytes = 4096;

  transport::Stream& stream_;
  std::size_t body_left_;  // body bytes not yet pulled from the stream
  std::array<std::uint8_t, kBufBytes> buf_;
  std::size_t buf_pos_ = 0;  // consumed prefix of buf_
  std::size_t buf_len_ = 0;  // valid bytes in buf_
};

/// Receive one whole message (header + materialized body).  Retained for
/// small control messages; the call data path uses recvHeader/BodyReader.
Message recvMessage(transport::Stream& stream);

/// Frame layout in force on a connection: v1 lock-step (16-byte
/// headers), negotiated v2 (24 bytes, call ID), or traced v2 (40 bytes,
/// call ID + trace context).
enum class WireMode { V1, V2, V2Traced };

/// Header bytes of one frame in the given mode.
constexpr std::size_t headerBytes(WireMode mode) {
  return mode == WireMode::V1      ? kHeaderBytes
         : mode == WireMode::V2    ? kHeaderBytesV2
                                   : kHeaderBytesV2Traced;
}

/// One complete frame popped off a FrameAssembler: the validated header
/// plus the materialized body.  The body lives in a pool slab so the
/// per-frame steady state costs no heap traffic; moving the Frame moves
/// ownership of the slab with it (worker threads routinely consume
/// frames popped on the reactor thread).
struct Frame {
  FrameHeader header;
  common::PooledBuffer body;
};

/// Incremental frame reassembly for event-driven servers: raw bytes read
/// off a non-blocking socket are fed in as they arrive, complete frames
/// pop out.  A frame is parsed in two steps — header first (validated
/// exactly as recvHeader* would), then the body once all of it is
/// buffered — so a slow peer dribbling one byte at a time costs buffer
/// space, never a blocked thread.  setMode() takes effect at the next
/// frame boundary (Hello negotiation upgrades a connection mid-stream).
class FrameAssembler {
 public:
  explicit FrameAssembler(std::string peer = "peer")
      : peer_(std::move(peer)) {}

  WireMode mode() const { return mode_; }
  /// Switch header layout for frames not yet parsed.  Must only be
  /// called between frames (after next() returned a complete frame or
  /// nullopt) — the current partial header, if any, is reinterpreted.
  void setMode(WireMode mode) { mode_ = mode; }

  /// Append raw wire bytes.
  void feed(std::span<const std::uint8_t> bytes);

  /// Pop the next complete frame, or nullopt when more bytes are
  /// needed.  Throws ProtocolError on a malformed header (bad magic,
  /// version, type, or length), exactly like the blocking readers.
  std::optional<Frame> next();

  /// Bytes buffered but not yet returned as frames (partial frame).
  std::size_t buffered() const { return buf_.size() - pos_; }

  /// True when a frame header was parsed but its body is incomplete.
  bool midFrame() const { return have_header_; }

  /// Total bytes physically moved by buffer compaction since
  /// construction.  Regression hook: consumption is tracked by offset
  /// and compaction is deferred until the consumed prefix dominates the
  /// buffer, so this grows at most linearly in bytes fed — a quadratic
  /// memcpy-shift regime (shift on every pop) would blow well past
  /// that bound under thousands of tiny batched frames.
  std::uint64_t movedBytes() const { return moved_bytes_; }

 private:
  void compact();

  std::string peer_;
  WireMode mode_ = WireMode::V1;
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;  // consumed prefix of buf_
  std::uint64_t moved_bytes_ = 0;
  bool have_header_ = false;
  FrameHeader header_{};  // valid while have_header_
};

/// Materialize one wire frame (header + body) into owned contiguous
/// bytes, byteswapping any borrowed double arrays through the encoder's
/// scratch path.  This is the reactor's epilogue step: the returned
/// buffer is self-contained (no keepalive needed) and ready for a
/// non-blocking write queue.  `call_id` and `ctx` are ignored by modes
/// whose header does not carry them.
std::vector<std::uint8_t> flattenFrame(WireMode mode, MessageType type,
                                       std::uint64_t call_id,
                                       const WireTraceContext& ctx,
                                       const xdr::Encoder& body);

/// flattenFrame into a pool slab instead of a fresh vector — the
/// steady-state reply path of the reactor pipeline, where the epilogue
/// flattens on a worker and the slab travels to the reactor's write
/// queue and back to the pool after the writev.
common::PooledBuffer flattenFramePooled(WireMode mode, MessageType type,
                                        std::uint64_t call_id,
                                        const WireTraceContext& ctx,
                                        const xdr::Encoder& body);

/// Materialize a frame around an already-flattened payload (result-cache
/// hits replaying a stored reply body under a new call ID / trace
/// context).  Pool-backed like flattenFramePooled.
common::PooledBuffer frameFromPayload(WireMode mode, MessageType type,
                                      std::uint64_t call_id,
                                      const WireTraceContext& ctx,
                                      std::span<const std::uint8_t> payload);

/// Record a materialized wire-buffer size in the
/// "wire.peak_buffer_bytes" gauge (monotonic max since last metrics
/// reset).  The streaming pipeline's peak stays near the scratch size
/// regardless of payload; the legacy contiguous path reports the full
/// message.
void noteWireBuffer(std::size_t bytes);

/// Server-side status snapshot carried by StatusReply (metaserver food).
struct ServerStatusInfo {
  std::uint32_t running = 0;    // executables currently executing
  std::uint32_t queued = 0;     // jobs waiting in the queue
  std::uint64_t completed = 0;  // jobs finished since start
  double load_average = 0.0;    // smoothed runnable-task count

  std::vector<std::uint8_t> toBytes() const;
  static ServerStatusInfo fromBytes(std::span<const std::uint8_t> bytes);
};

}  // namespace ninf::protocol
