// Argument marshalling for Ninf_call, shared by client and server.
//
// The client holds an ArgValue per formal parameter (scalars by value,
// arrays as spans over caller-owned memory, exactly like the paper's
//   Ninf_call("dmmul", n, A, B, C);
// where A and B ship to the server and C ships back).  Marshalling is
// driven entirely by the compiled InterfaceInfo received in the first
// phase of the two-stage RPC — the client never links stubs.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "idl/interface_info.h"
#include "xdr/xdr.h"

namespace ninf::protocol {

/// One actual argument supplied by the caller.
class ArgValue {
 public:
  enum class Kind : std::uint8_t {
    InInt,      // int/long scalar by value
    InDouble,   // float/double scalar by value
    OutInt,     // pointer to receive an integer scalar
    OutDouble,  // pointer to receive a floating scalar
    InArray,    // const span of doubles shipped to the server
    OutArray,   // mutable span filled from the reply
    InOutArray, // shipped both ways
  };

  static ArgValue inInt(std::int64_t v);
  static ArgValue inDouble(double v);
  static ArgValue outInt(std::int64_t* p);
  static ArgValue outDouble(double* p);
  static ArgValue inArray(std::span<const double> data);
  static ArgValue outArray(std::span<double> data);
  static ArgValue inoutArray(std::span<double> data);

  Kind kind() const { return kind_; }
  std::int64_t intValue() const { return int_; }
  double doubleValue() const { return double_; }
  std::span<const double> constSpan() const { return const_span_; }
  std::span<double> mutSpan() const { return mut_span_; }
  std::int64_t* intSink() const { return int_sink_; }
  double* doubleSink() const { return double_sink_; }

 private:
  Kind kind_ = Kind::InInt;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::span<const double> const_span_;
  std::span<double> mut_span_;
  std::int64_t* int_sink_ = nullptr;
  double* double_sink_ = nullptr;
};

/// Scalar integer argument values indexed by parameter position (zero for
/// non-integer parameters), as consumed by the IDL size expressions.
std::vector<std::int64_t> scalarArgs(const idl::InterfaceInfo& info,
                                     std::span<const ArgValue> args);

/// Arrays at or above this element count are *referenced* by the builder
/// encoders below (scatter-gather emission) instead of copied; smaller
/// arrays are inlined so tiny calls stay a single buffer.
inline constexpr std::size_t kArrayRefThresholdElems = 1024;  // 8 KiB

/// Client side: validate args against the interface and build the
/// CallRequest body (entry name + IN data).  Large IN arrays are borrowed
/// — the returned encoder references the caller's argument memory, which
/// must outlive its emission.  Throws ProtocolError on arity/kind/size
/// mismatches.
xdr::Encoder buildCallRequest(const idl::InterfaceInfo& info,
                              std::span<const ArgValue> args);

/// Legacy contiguous form of buildCallRequest (tests, tools).
std::vector<std::uint8_t> encodeCallRequest(const idl::InterfaceInfo& info,
                                            std::span<const ArgValue> args);

/// Server side: the decoded/working argument set of one call.
struct ServerCallData {
  /// Integer value per parameter (arrays and floats hold 0).
  std::vector<std::int64_t> scalar_ints;
  /// Floating value per parameter.
  std::vector<double> scalar_doubles;
  /// Array storage per parameter (empty for scalars); IN arrays are
  /// decoded from the wire, OUT arrays are allocated to the size implied
  /// by the IDL dimension expressions.
  std::vector<std::vector<double>> arrays;
};

/// Decode the argument section of a CallRequest (after the entry name has
/// been read from `src`), allocate OUT arrays, and validate sizes.  Works
/// over any xdr::Source: a contiguous Decoder or a streamed BodyReader —
/// in the latter case IN array payloads are received directly into the
/// ServerCallData array storage.
ServerCallData decodeCallArgs(const idl::InterfaceInfo& info,
                              xdr::Source& src);

/// Server-relative timestamps of a completed call (seconds since server
/// start); carried in the reply so the client can compute the paper's
/// T_response and T_wait without clock synchronization.
struct CallTimings {
  double enqueue = 0.0;   // T_enqueue: accepted at the server
  double dequeue = 0.0;   // T_dequeue: executable invoked
  double complete = 0.0;  // T_complete: computation finished

  /// T_wait = T_dequeue - T_enqueue (paper, section 4.1).
  double waitTime() const { return dequeue - enqueue; }
};

/// Server side: build the successful reply body (timings + OUT data).
/// Large OUT arrays are borrowed from `data` — it must outlive emission.
xdr::Encoder buildCallReply(const idl::InterfaceInfo& info,
                            const ServerCallData& data,
                            const CallTimings& timings);

/// Legacy contiguous form of buildCallReply (tests, tools).
std::vector<std::uint8_t> encodeCallReply(const idl::InterfaceInfo& info,
                                          const ServerCallData& data,
                                          const CallTimings& timings);

/// Server side: error reply payload.
std::vector<std::uint8_t> encodeErrorReply(const std::string& message);

/// Client side: decode a CallReply into the caller's OUT arguments,
/// reading from any xdr::Source — OUT array payloads land directly in
/// the caller's spans.  Throws RemoteError if the reply carries an error
/// status.
CallTimings decodeCallReply(const idl::InterfaceInfo& info, xdr::Source& src,
                            std::span<const ArgValue> args);

/// Legacy contiguous form of the above.
CallTimings decodeCallReply(const idl::InterfaceInfo& info,
                            std::span<const std::uint8_t> payload,
                            std::span<const ArgValue> args);

}  // namespace ninf::protocol
