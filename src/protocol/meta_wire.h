// Wire payloads of the sharded-metaserver control plane.
//
// The metaserver namespace is sharded by entry name over N metaserver
// instances (a consistent-hash ring, see metaserver/ring.h), and each
// shard's registry is replicated to a backup by primary/backup log
// shipping (metaserver/replication.h).  This header defines the value
// types and XDR codecs those layers exchange — it sits in `protocol`
// because both the client library (ring bootstrap, schedule queries) and
// the metaserver library (nodes, replication) speak them, and protocol
// is below both.
//
// Message flows (all v1-framed, lock-step; licensed by kFeatureSharding):
//
//   client                          metaserver node
//     | -- RingQuery(known epoch) ----> |
//     | <-- RingInfo(ring) ------------ |   (cached; refreshed on redirect)
//     | -- ScheduleQuery(entry, excl) > |
//     | <-- ScheduleReply(server) ----- |   (then call the server directly)
//     | <-- WrongShard(owner, epoch) -- |   (mis-routed: refresh + retry)
//
//   computing server                owning shard primary
//     | -- RegisterServer(desc, key) -> |
//     | <-- RegisterAck(status, seq) -- |   (idempotent on endpoint+epoch)
//
//   shard primary                   shard backup
//     | -- ReplAppend(epoch, seq, op) > |
//     | <-- ReplAck(status, seq) ------ |   (StaleEpoch fences a deposed
//     | -- ReplHeartbeat(epoch, ...) -> |    primary after a promotion)
//
// Epoch fencing: every shard carries a monotonically increasing epoch.
// A backup that promotes itself bumps the epoch; appends and heartbeats
// stamped with an older epoch are rejected with StaleEpoch, which the
// old primary treats as a fence — it must stop accepting registrations.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "xdr/xdr.h"

namespace ninf::protocol {

/// One metaserver shard's membership row in the ring.
struct ShardInfo {
  std::uint32_t id = 0;
  /// Monotonic primary-election epoch; bumped by every backup promotion.
  std::uint64_t epoch = 0;
  std::string primary_endpoint;
  std::string backup_endpoint;  // empty = unreplicated shard

  void encode(xdr::Encoder& enc) const;
  static ShardInfo decode(xdr::Source& src);
};

/// RingInfo payload: the full ring a client caches between refreshes.
struct RingDescriptor {
  /// max(shard epochs) plus the membership version: any promotion or
  /// membership change makes this grow, so "mine is older" is one compare.
  std::uint64_t ring_epoch = 0;
  std::vector<ShardInfo> shards;

  void encode(xdr::Encoder& enc) const;
  static RingDescriptor decode(xdr::Source& src);
};

/// Why a node bounced a request (WrongShard payload).
enum class RedirectReason : std::uint32_t {
  NotOwner = 0,    ///< entry hashes to a different shard
  NotPrimary = 1,  ///< right shard, but this node is a backup or fenced
};

/// WrongShard payload: enough for the client to refresh and re-route.
struct RedirectInfo {
  std::string entry;
  std::uint32_t owner_shard = 0;
  std::uint64_t ring_epoch = 0;  // sender's view; client refreshes if newer
  RedirectReason reason = RedirectReason::NotOwner;

  void encode(xdr::Encoder& enc) const;
  static RedirectInfo decode(xdr::Source& src);
};

/// ScheduleQuery payload: pick a computing server for `entry`.  `excluded`
/// carries the names of servers that already failed this logical call, so
/// the shard can shun them (and start their cooldown) like the in-process
/// metaserver's failover loop does.
struct ScheduleRequest {
  std::string entry;
  std::vector<std::string> excluded;

  void encode(xdr::Encoder& enc) const;
  static ScheduleRequest decode(xdr::Source& src);
};

/// ScheduleReply payload: the chosen server.  The client then dials
/// `endpoint` itself — the metaserver stays off the data path.
struct ScheduleChoice {
  std::string server_name;
  std::string endpoint;
  std::uint64_t shard_epoch = 0;

  void encode(xdr::Encoder& enc) const;
  static ScheduleChoice decode(xdr::Source& src);
};

/// Declarative description of one computing server, as registered with
/// (and replicated between) metaserver nodes.  Connection factories are
/// reconstructed from `endpoint` by a resolver — only data crosses the
/// wire.
struct WireServerDesc {
  std::string name;
  std::string endpoint;
  double bandwidth_bps = 1e6;
  double perf_flops = 1e8;
  /// Entry names this server exports, used to route the registration to
  /// the owning shard(s).  Empty = exports everything (any shard accepts).
  std::vector<std::string> entries;

  void encode(xdr::Encoder& enc) const;
  static WireServerDesc decode(xdr::Source& src);
};

/// A replicatable registry mutation.  Idempotency key: (desc.endpoint,
/// reg_epoch) — a client retrying a timed-out register re-sends the same
/// pair and the directory applies it at most once.  `seq` is assigned by
/// the primary's replication log (0 until then).
struct RegistryOp {
  enum class Kind : std::uint32_t { Register = 1, Deregister = 2 };
  Kind kind = Kind::Register;
  WireServerDesc desc;  // Deregister only uses desc.endpoint
  std::uint64_t reg_epoch = 0;
  std::uint64_t seq = 0;

  void encode(xdr::Encoder& enc) const;
  static RegistryOp decode(xdr::Source& src);
};

/// RegisterAck payload.
struct RegisterResult {
  enum class Status : std::uint32_t {
    Applied = 0,    ///< op applied (and queued for replication)
    Duplicate = 1,  ///< same (endpoint, reg_epoch) already applied
    Fenced = 2,     ///< node is a backup or a deposed (fenced) primary
    WrongShard = 3, ///< an entry in the descriptor belongs elsewhere
  };
  Status status = Status::Applied;
  std::uint64_t seq = 0;
  std::uint64_t shard_epoch = 0;

  void encode(xdr::Encoder& enc) const;
  static RegisterResult decode(xdr::Source& src);
};

/// ReplAppend payload: one sequence-numbered op under the primary's epoch.
struct ReplAppendMsg {
  std::uint64_t shard_epoch = 0;
  RegistryOp op;  // op.seq carries the log position

  void encode(xdr::Encoder& enc) const;
  static ReplAppendMsg decode(xdr::Source& src);
};

/// ReplAck payload: Ok applies/acks; StaleEpoch fences the sender.
struct ReplAckMsg {
  enum class Status : std::uint32_t { Ok = 0, StaleEpoch = 1 };
  Status status = Status::Ok;
  std::uint64_t seq = 0;          // highest seq the replica has applied
  std::uint64_t shard_epoch = 0;  // replica's current epoch

  void encode(xdr::Encoder& enc) const;
  static ReplAckMsg decode(xdr::Source& src);
};

/// One server's soft liveness state, piggybacked on heartbeats so a
/// freshly promoted backup starts with a warm scheduling cache instead of
/// an empty one.
struct LivenessRecord {
  std::string server_name;
  std::uint32_t reachable = 0;
  std::uint32_t running = 0;
  std::uint32_t queued = 0;
  double load_average = 0.0;

  void encode(xdr::Encoder& enc) const;
  static LivenessRecord decode(xdr::Source& src);
};

/// ReplHeartbeat payload: the failure-detector pulse plus the liveness
/// digest.  Acked with ReplAckMsg (StaleEpoch after a promotion).
struct ReplHeartbeatMsg {
  std::uint64_t shard_epoch = 0;
  std::uint64_t last_seq = 0;  // log head; lets the backup report lag
  std::vector<LivenessRecord> liveness;

  void encode(xdr::Encoder& enc) const;
  static ReplHeartbeatMsg decode(xdr::Source& src);
};

}  // namespace ninf::protocol
