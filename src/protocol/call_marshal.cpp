#include "protocol/call_marshal.h"

#include "common/error.h"
#include "obs/trace.h"

namespace ninf::protocol {

using idl::InterfaceInfo;
using idl::Mode;
using idl::Param;
using idl::ScalarType;

ArgValue ArgValue::inInt(std::int64_t v) {
  ArgValue a;
  a.kind_ = Kind::InInt;
  a.int_ = v;
  return a;
}

ArgValue ArgValue::inDouble(double v) {
  ArgValue a;
  a.kind_ = Kind::InDouble;
  a.double_ = v;
  return a;
}

ArgValue ArgValue::outInt(std::int64_t* p) {
  ArgValue a;
  a.kind_ = Kind::OutInt;
  a.int_sink_ = p;
  return a;
}

ArgValue ArgValue::outDouble(double* p) {
  ArgValue a;
  a.kind_ = Kind::OutDouble;
  a.double_sink_ = p;
  return a;
}

ArgValue ArgValue::inArray(std::span<const double> data) {
  ArgValue a;
  a.kind_ = Kind::InArray;
  a.const_span_ = data;
  return a;
}

ArgValue ArgValue::outArray(std::span<double> data) {
  ArgValue a;
  a.kind_ = Kind::OutArray;
  a.mut_span_ = data;
  return a;
}

ArgValue ArgValue::inoutArray(std::span<double> data) {
  ArgValue a;
  a.kind_ = Kind::InOutArray;
  a.mut_span_ = data;
  a.const_span_ = data;
  return a;
}

namespace {

bool isIntegerType(ScalarType t) {
  return t == ScalarType::Int || t == ScalarType::Long;
}

void checkArity(const InterfaceInfo& info, std::span<const ArgValue> args) {
  if (args.size() != info.params.size()) {
    throw ProtocolError(info.name + " expects " +
                        std::to_string(info.params.size()) +
                        " arguments, got " + std::to_string(args.size()));
  }
}

/// Validate one argument's kind against the formal parameter.
void checkKind(const InterfaceInfo& info, const Param& p, const ArgValue& a) {
  using Kind = ArgValue::Kind;
  const auto bad = [&](const char* why) {
    throw ProtocolError(info.name + " parameter '" + p.name + "': " + why);
  };
  if (p.isScalar()) {
    switch (a.kind()) {
      case Kind::InInt:
        if (!p.shippedIn() || !isIntegerType(p.type)) {
          bad("integer input does not match declaration");
        }
        break;
      case Kind::InDouble:
        if (!p.shippedIn() || isIntegerType(p.type)) {
          bad("floating input does not match declaration");
        }
        break;
      case Kind::OutInt:
        if (p.mode != Mode::Out || !isIntegerType(p.type)) {
          bad("integer output does not match declaration");
        }
        if (a.intSink() == nullptr) bad("null output pointer");
        break;
      case Kind::OutDouble:
        if (p.mode != Mode::Out || isIntegerType(p.type)) {
          bad("floating output does not match declaration");
        }
        if (a.doubleSink() == nullptr) bad("null output pointer");
        break;
      default:
        bad("array supplied for scalar parameter");
    }
    return;
  }
  // Array parameter: only double arrays are shipped by the client API
  // (matching the paper's footnote that the client API supports matrices).
  if (p.type != ScalarType::Double) {
    bad("only double arrays are supported by the client API");
  }
  switch (a.kind()) {
    case Kind::InArray:
      if (p.mode != Mode::In) bad("const array for non-input parameter");
      break;
    case Kind::OutArray:
      if (p.mode != Mode::Out) bad("out array for non-output parameter");
      break;
    case Kind::InOutArray:
      if (p.mode != Mode::InOut) bad("inout array for non-inout parameter");
      break;
    default:
      bad("scalar supplied for array parameter");
  }
}

std::size_t expectedElements(const Param& p,
                             std::span<const std::int64_t> scalars,
                             const InterfaceInfo& info) {
  const std::int64_t count = p.elementCount(scalars);
  if (count < 0) {
    throw ProtocolError(info.name + " parameter '" + p.name +
                        "': negative element count");
  }
  return static_cast<std::size_t>(count);
}

}  // namespace

std::vector<std::int64_t> scalarArgs(const InterfaceInfo& info,
                                     std::span<const ArgValue> args) {
  checkArity(info, args);
  std::vector<std::int64_t> scalars(info.params.size(), 0);
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i].kind() == ArgValue::Kind::InInt) {
      scalars[i] = args[i].intValue();
    }
  }
  return scalars;
}

namespace {

/// Copy small arrays, reference large ones (scatter-gather emission).
void putArray(xdr::Encoder& enc, std::span<const double> data) {
  if (data.size() >= kArrayRefThresholdElems) {
    enc.putDoubleArrayRef(data);
  } else {
    enc.putDoubleArray(data);
  }
}

}  // namespace

xdr::Encoder buildCallRequest(const InterfaceInfo& info,
                              std::span<const ArgValue> args) {
  obs::Span span(obs::phase::kMarshalArgs);
  checkArity(info, args);
  const std::vector<std::int64_t> scalars = scalarArgs(info, args);

  xdr::Encoder enc;
  enc.putString(info.name);
  for (std::size_t i = 0; i < info.params.size(); ++i) {
    const Param& p = info.params[i];
    const ArgValue& a = args[i];
    checkKind(info, p, a);
    if (!p.shippedIn()) continue;
    if (p.isScalar()) {
      switch (p.type) {
        case ScalarType::Int:
          enc.putI32(static_cast<std::int32_t>(a.intValue()));
          break;
        case ScalarType::Long:
          enc.putI64(a.intValue());
          break;
        case ScalarType::Float:
          enc.putFloat(static_cast<float>(a.doubleValue()));
          break;
        case ScalarType::Double:
          enc.putDouble(a.doubleValue());
          break;
      }
    } else {
      const auto data = a.constSpan();
      const std::size_t expected = expectedElements(p, scalars, info);
      if (data.size() != expected) {
        throw ProtocolError(info.name + " parameter '" + p.name + "': " +
                            std::to_string(data.size()) +
                            " elements supplied, IDL implies " +
                            std::to_string(expected));
      }
      putArray(enc, data);
    }
  }
  span.setBytes(static_cast<std::int64_t>(enc.size()));
  return enc;
}

std::vector<std::uint8_t> encodeCallRequest(const InterfaceInfo& info,
                                            std::span<const ArgValue> args) {
  return buildCallRequest(info, args).take();
}

ServerCallData decodeCallArgs(const InterfaceInfo& info, xdr::Source& dec) {
  obs::Span span(obs::phase::kServerUnmarshalArgs);
  const std::size_t n = info.params.size();
  ServerCallData data;
  data.scalar_ints.assign(n, 0);
  data.scalar_doubles.assign(n, 0.0);
  data.arrays.resize(n);

  // First pass: decode exactly what the client shipped, in order.
  for (std::size_t i = 0; i < n; ++i) {
    const Param& p = info.params[i];
    if (!p.shippedIn()) continue;
    if (p.isScalar()) {
      switch (p.type) {
        case ScalarType::Int:
          data.scalar_ints[i] = dec.getI32();
          break;
        case ScalarType::Long:
          data.scalar_ints[i] = dec.getI64();
          break;
        case ScalarType::Float:
          data.scalar_doubles[i] = dec.getFloat();
          break;
        case ScalarType::Double:
          data.scalar_doubles[i] = dec.getDouble();
          break;
      }
    } else {
      data.arrays[i] = dec.getDoubleArray();
    }
  }
  if (!dec.atEnd()) {
    throw ProtocolError("trailing bytes after call arguments for " +
                        info.name);
  }

  // Second pass: with all scalars known, validate IN array sizes and
  // allocate OUT arrays.
  for (std::size_t i = 0; i < n; ++i) {
    const Param& p = info.params[i];
    if (p.isScalar()) continue;
    const std::size_t expected = expectedElements(p, data.scalar_ints, info);
    if (p.shippedIn()) {
      if (data.arrays[i].size() != expected) {
        throw ProtocolError(info.name + " parameter '" + p.name +
                            "': wire carried " +
                            std::to_string(data.arrays[i].size()) +
                            " elements, IDL implies " +
                            std::to_string(expected));
      }
    } else {
      data.arrays[i].assign(expected, 0.0);
    }
  }
  return data;
}

xdr::Encoder buildCallReply(const InterfaceInfo& info,
                            const ServerCallData& data,
                            const CallTimings& timings) {
  obs::Span span(obs::phase::kServerMarshalResult);
  xdr::Encoder enc;
  enc.putU32(0);  // status: success
  enc.putDouble(timings.enqueue);
  enc.putDouble(timings.dequeue);
  enc.putDouble(timings.complete);
  for (std::size_t i = 0; i < info.params.size(); ++i) {
    const Param& p = info.params[i];
    if (!p.shippedOut()) continue;
    if (p.isScalar()) {
      switch (p.type) {
        case ScalarType::Int:
          enc.putI32(static_cast<std::int32_t>(data.scalar_ints[i]));
          break;
        case ScalarType::Long:
          enc.putI64(data.scalar_ints[i]);
          break;
        case ScalarType::Float:
          enc.putFloat(static_cast<float>(data.scalar_doubles[i]));
          break;
        case ScalarType::Double:
          enc.putDouble(data.scalar_doubles[i]);
          break;
      }
    } else {
      putArray(enc, data.arrays[i]);
    }
  }
  span.setBytes(static_cast<std::int64_t>(enc.size()));
  return enc;
}

std::vector<std::uint8_t> encodeCallReply(const InterfaceInfo& info,
                                          const ServerCallData& data,
                                          const CallTimings& timings) {
  return buildCallReply(info, data, timings).take();
}

std::vector<std::uint8_t> encodeErrorReply(const std::string& message) {
  xdr::Encoder enc;
  enc.putU32(1);  // status: error
  enc.putString(message);
  return enc.take();
}

CallTimings decodeCallReply(const InterfaceInfo& info, xdr::Source& dec,
                            std::span<const ArgValue> args) {
  obs::Span span(obs::phase::kUnmarshalResult,
                 static_cast<std::int64_t>(dec.remaining()));
  checkArity(info, args);
  const std::uint32_t status = dec.getU32();
  if (status != 0) {
    throw RemoteError(dec.getString());
  }
  CallTimings timings;
  timings.enqueue = dec.getDouble();
  timings.dequeue = dec.getDouble();
  timings.complete = dec.getDouble();

  for (std::size_t i = 0; i < info.params.size(); ++i) {
    const Param& p = info.params[i];
    if (!p.shippedOut()) continue;
    const ArgValue& a = args[i];
    if (p.isScalar()) {
      switch (p.type) {
        case ScalarType::Int:
          *a.intSink() = dec.getI32();
          break;
        case ScalarType::Long:
          *a.intSink() = dec.getI64();
          break;
        case ScalarType::Float:
          *a.doubleSink() = dec.getFloat();
          break;
        case ScalarType::Double:
          *a.doubleSink() = dec.getDouble();
          break;
      }
    } else {
      dec.getDoubleArrayInto(a.mutSpan());
    }
  }
  if (!dec.atEnd()) {
    throw ProtocolError("trailing bytes after call reply for " + info.name);
  }
  return timings;
}

CallTimings decodeCallReply(const InterfaceInfo& info,
                            std::span<const std::uint8_t> payload,
                            std::span<const ArgValue> args) {
  xdr::Decoder dec(payload);
  return decodeCallReply(info, dec, args);
}

}  // namespace ninf::protocol
