#include "protocol/message.h"

#include <algorithm>
#include <cstring>

#include "common/error.h"
#include "obs/metrics.h"
#include "xdr/xdr.h"

namespace ninf::protocol {

namespace {

void putWordBe(std::uint32_t word, std::uint8_t* out) {
  out[0] = static_cast<std::uint8_t>(word >> 24);
  out[1] = static_cast<std::uint8_t>(word >> 16);
  out[2] = static_cast<std::uint8_t>(word >> 8);
  out[3] = static_cast<std::uint8_t>(word);
}

/// Encode the 16-byte v1 frame header into `out`.
void encodeHeader(MessageType type, std::size_t length,
                  std::uint8_t out[kHeaderBytes]) {
  putWordBe(kMagic, out);
  putWordBe(kVersion, out + 4);
  putWordBe(static_cast<std::uint32_t>(type), out + 8);
  putWordBe(static_cast<std::uint32_t>(length), out + 12);
}

/// Encode the 24-byte v2 frame header (v1 header fields + 64-bit call ID,
/// high word first) into `out`.
void encodeHeaderV2(MessageType type, std::size_t length,
                    std::uint64_t call_id, std::uint8_t out[kHeaderBytesV2]) {
  putWordBe(kMagic, out);
  putWordBe(kVersion2, out + 4);
  putWordBe(static_cast<std::uint32_t>(type), out + 8);
  putWordBe(static_cast<std::uint32_t>(length), out + 12);
  putWordBe(static_cast<std::uint32_t>(call_id >> 32), out + 16);
  putWordBe(static_cast<std::uint32_t>(call_id), out + 20);
}

/// Encode the 40-byte traced v2 frame header (v2 header fields + trace
/// ID + parent span ID, each 64-bit high word first) into `out`.
void encodeHeaderV2Traced(MessageType type, std::size_t length,
                          std::uint64_t call_id, const WireTraceContext& ctx,
                          std::uint8_t out[kHeaderBytesV2Traced]) {
  encodeHeaderV2(type, length, call_id, out);
  putWordBe(static_cast<std::uint32_t>(ctx.trace_id >> 32), out + 24);
  putWordBe(static_cast<std::uint32_t>(ctx.trace_id), out + 28);
  putWordBe(static_cast<std::uint32_t>(ctx.parent_span >> 32), out + 32);
  putWordBe(static_cast<std::uint32_t>(ctx.parent_span), out + 36);
}

/// Sink gathering spans for one vectored send.  Spans stay valid until
/// flush() per the xdr::Sink contract, so the frame header, the encoder's
/// owned section, and the current byteswap scratch chunk leave in a
/// single sendv (writev on TCP).  The segment array is inline — a frame
/// emits a handful of spans per flush boundary — so assembling one send
/// costs no heap traffic; in the (never seen in practice) case of more
/// spans than slots, the sink flushes early, which just splits the
/// sequential byte stream across two sendv calls.
class StreamSink : public xdr::Sink {
 public:
  explicit StreamSink(transport::Stream& stream) : stream_(stream) {}

  void write(std::span<const std::uint8_t> bytes) override {
    if (bytes.empty()) return;
    if (count_ == kInlineIov) flush();
    iov_[count_++] = bytes;
  }

  void flush() override {
    if (count_ == 0) return;
    stream_.sendv({iov_.data(), count_});
    count_ = 0;
  }

 private:
  static constexpr std::size_t kInlineIov = 16;

  transport::Stream& stream_;
  std::array<std::span<const std::uint8_t>, kInlineIov> iov_;
  std::size_t count_ = 0;
};

/// Sink appending into a pool slab (flattenFramePooled).  Copies
/// immediately, so the no-dangling-until-flush contract is trivially
/// met.
class BufferSink : public xdr::Sink {
 public:
  explicit BufferSink(common::PooledBuffer& out) : out_(out) {}

  void write(std::span<const std::uint8_t> bytes) override {
    out_.append(bytes);
  }

  void flush() override {}

 private:
  common::PooledBuffer& out_;
};

}  // namespace

void noteWireBuffer(std::size_t bytes) {
  static obs::Gauge& peak = obs::gauge("wire.peak_buffer_bytes");
  const double v = static_cast<double>(bytes);
  if (v > peak.value()) peak.set(v);
}

void sendMessage(transport::Stream& stream, MessageType type,
                 std::span<const std::uint8_t> payload) {
  NINF_REQUIRE(payload.size() <= kMaxPayload, "payload too large");
  noteWireBuffer(payload.size());
  std::uint8_t header[16];
  encodeHeader(type, payload.size(), header);
  const std::span<const std::uint8_t> bufs[2] = {{header, 16}, payload};
  stream.sendv(bufs);
}

void sendMessage(transport::Stream& stream, MessageType type,
                 const xdr::Encoder& body) {
  NINF_REQUIRE(body.size() <= kMaxPayload, "payload too large");
  // Peak contiguous memory on this path: the encoder's owned (scalar)
  // section plus one byteswap scratch chunk — independent of array size.
  noteWireBuffer(body.ownedSize() +
                 (body.hasBorrowed() ? xdr::Encoder::kScratchBytes : 0));
  std::uint8_t header[16];
  encodeHeader(type, body.size(), header);
  StreamSink sink(stream);
  sink.write({header, 16});
  body.emitTo(sink);  // flushes after each scratch chunk and at the end
}

void sendMessageV2(transport::Stream& stream, MessageType type,
                   std::uint64_t call_id,
                   std::span<const std::uint8_t> payload) {
  NINF_REQUIRE(payload.size() <= kMaxPayload, "payload too large");
  noteWireBuffer(payload.size());
  std::uint8_t header[kHeaderBytesV2];
  encodeHeaderV2(type, payload.size(), call_id, header);
  const std::span<const std::uint8_t> bufs[2] = {{header, kHeaderBytesV2},
                                                 payload};
  stream.sendv(bufs);
}

void sendMessageV2(transport::Stream& stream, MessageType type,
                   std::uint64_t call_id, const xdr::Encoder& body) {
  NINF_REQUIRE(body.size() <= kMaxPayload, "payload too large");
  noteWireBuffer(body.ownedSize() +
                 (body.hasBorrowed() ? xdr::Encoder::kScratchBytes : 0));
  std::uint8_t header[kHeaderBytesV2];
  encodeHeaderV2(type, body.size(), call_id, header);
  StreamSink sink(stream);
  sink.write({header, kHeaderBytesV2});
  body.emitTo(sink);
}

void sendMessageV2Traced(transport::Stream& stream, MessageType type,
                         std::uint64_t call_id, const WireTraceContext& ctx,
                         std::span<const std::uint8_t> payload) {
  NINF_REQUIRE(payload.size() <= kMaxPayload, "payload too large");
  noteWireBuffer(payload.size());
  std::uint8_t header[kHeaderBytesV2Traced];
  encodeHeaderV2Traced(type, payload.size(), call_id, ctx, header);
  const std::span<const std::uint8_t> bufs[2] = {
      {header, kHeaderBytesV2Traced}, payload};
  stream.sendv(bufs);
}

void sendMessageV2Traced(transport::Stream& stream, MessageType type,
                         std::uint64_t call_id, const WireTraceContext& ctx,
                         const xdr::Encoder& body) {
  NINF_REQUIRE(body.size() <= kMaxPayload, "payload too large");
  noteWireBuffer(body.ownedSize() +
                 (body.hasBorrowed() ? xdr::Encoder::kScratchBytes : 0));
  std::uint8_t header[kHeaderBytesV2Traced];
  encodeHeaderV2Traced(type, body.size(), call_id, ctx, header);
  StreamSink sink(stream);
  sink.write({header, kHeaderBytesV2Traced});
  body.emitTo(sink);
}

namespace {

/// Validate the four words shared by every header layout.
FrameHeader checkHeaderWords(xdr::Source& header, std::uint32_t want_version,
                             const std::string& peer) {
  if (header.getU32() != kMagic) {
    throw ProtocolError("bad magic from " + peer);
  }
  const std::uint32_t version = header.getU32();
  if (version != want_version) {
    throw ProtocolError("unexpected protocol version " +
                        std::to_string(version) + " (want " +
                        std::to_string(want_version) + ")");
  }
  const std::uint32_t type = header.getU32();
  if (type < static_cast<std::uint32_t>(MessageType::QueryInterface) ||
      type > kMaxMessageType) {
    throw ProtocolError("unknown message type " + std::to_string(type));
  }
  const std::uint32_t length = header.getU32();
  if (length > kMaxPayload) {
    throw ProtocolError("payload length " + std::to_string(length) +
                        " exceeds limit");
  }
  return FrameHeader{static_cast<MessageType>(type), length};
}

/// Parse one full header (any mode) from exactly headerBytes(mode) bytes.
FrameHeader parseHeader(std::span<const std::uint8_t> bytes, WireMode mode,
                        const std::string& peer) {
  xdr::Decoder header(bytes);
  FrameHeader fh = checkHeaderWords(
      header, mode == WireMode::V1 ? kVersion : kVersion2, peer);
  if (mode != WireMode::V1) {
    fh.call_id = header.getU64();
  }
  if (mode == WireMode::V2Traced) {
    fh.trace.trace_id = header.getU64();
    fh.trace.parent_span = header.getU64();
  }
  return fh;
}

}  // namespace

FrameHeader recvHeader(transport::Stream& stream) {
  std::uint8_t header_bytes[kHeaderBytes];
  stream.recvAll(header_bytes);
  return parseHeader(header_bytes, WireMode::V1, stream.peerName());
}

FrameHeader recvHeaderV2(transport::Stream& stream) {
  std::uint8_t header_bytes[kHeaderBytesV2];
  stream.recvAll(header_bytes);
  return parseHeader(header_bytes, WireMode::V2, stream.peerName());
}

FrameHeader recvHeaderV2Traced(transport::Stream& stream) {
  std::uint8_t header_bytes[kHeaderBytesV2Traced];
  stream.recvAll(header_bytes);
  return parseHeader(header_bytes, WireMode::V2Traced, stream.peerName());
}

void FrameAssembler::feed(std::span<const std::uint8_t> bytes) {
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

void FrameAssembler::compact() {
  // Fully consumed: reset both cursors — no bytes move at all.  This is
  // the common case under batched small frames (one read drains into N
  // frames, all popped before the next read).
  if (pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
    return;
  }
  // Otherwise reclaim the consumed prefix only once it dominates the
  // buffer, so a long-lived connection does not grow its buffer without
  // bound while staying O(1) amortized per byte: each retained byte is
  // moved at most once per halving, bounding movedBytes() linearly in
  // bytes fed.
  if (pos_ > 4096 && pos_ * 2 >= buf_.size()) {
    moved_bytes_ += buf_.size() - pos_;
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
}

std::optional<Frame> FrameAssembler::next() {
  if (!have_header_) {
    const std::size_t need = headerBytes(mode_);
    if (buf_.size() - pos_ < need) return std::nullopt;
    header_ = parseHeader({buf_.data() + pos_, need}, mode_, peer_);
    pos_ += need;
    have_header_ = true;
  }
  if (buf_.size() - pos_ < header_.length) {
    compact();
    return std::nullopt;
  }
  Frame frame;
  frame.header = header_;
  frame.body = common::acquireBuffer(header_.length);
  frame.body.append({buf_.data() + pos_, header_.length});
  pos_ += header_.length;
  have_header_ = false;
  compact();
  return frame;
}

namespace {

/// Encode the mode's header layout into `out`; returns its length.
std::size_t encodeModeHeader(WireMode mode, MessageType type,
                             std::size_t length, std::uint64_t call_id,
                             const WireTraceContext& ctx,
                             std::uint8_t out[kHeaderBytesV2Traced]) {
  switch (mode) {
    case WireMode::V1:
      encodeHeader(type, length, out);
      break;
    case WireMode::V2:
      encodeHeaderV2(type, length, call_id, out);
      break;
    case WireMode::V2Traced:
      encodeHeaderV2Traced(type, length, call_id, ctx, out);
      break;
  }
  return headerBytes(mode);
}

}  // namespace

std::vector<std::uint8_t> flattenFrame(WireMode mode, MessageType type,
                                       std::uint64_t call_id,
                                       const WireTraceContext& ctx,
                                       const xdr::Encoder& body) {
  NINF_REQUIRE(body.size() <= kMaxPayload, "payload too large");
  std::uint8_t header[kHeaderBytesV2Traced];
  const std::size_t header_len =
      encodeModeHeader(mode, type, body.size(), call_id, ctx, header);
  std::vector<std::uint8_t> out;
  out.reserve(header_len + body.size());
  out.insert(out.end(), header, header + header_len);
  body.appendTo(out);  // copies borrowed segments, byteswapped
  return out;
}

common::PooledBuffer flattenFramePooled(WireMode mode, MessageType type,
                                        std::uint64_t call_id,
                                        const WireTraceContext& ctx,
                                        const xdr::Encoder& body) {
  NINF_REQUIRE(body.size() <= kMaxPayload, "payload too large");
  std::uint8_t header[kHeaderBytesV2Traced];
  const std::size_t header_len =
      encodeModeHeader(mode, type, body.size(), call_id, ctx, header);
  common::PooledBuffer out = common::acquireBuffer(header_len + body.size());
  out.append({header, header_len});
  BufferSink sink(out);
  body.emitTo(sink);  // copies borrowed segments, byteswapped
  return out;
}

common::PooledBuffer frameFromPayload(WireMode mode, MessageType type,
                                      std::uint64_t call_id,
                                      const WireTraceContext& ctx,
                                      std::span<const std::uint8_t> payload) {
  NINF_REQUIRE(payload.size() <= kMaxPayload, "payload too large");
  std::uint8_t header[kHeaderBytesV2Traced];
  const std::size_t header_len =
      encodeModeHeader(mode, type, payload.size(), call_id, ctx, header);
  common::PooledBuffer out = common::acquireBuffer(header_len + payload.size());
  out.append({header, header_len});
  out.append(payload);
  return out;
}

void BodyReader::readBytes(std::span<std::uint8_t> out) {
  std::size_t got = 0;
  // Serve buffered bytes first.
  const std::size_t buffered = std::min(out.size(), buf_len_ - buf_pos_);
  if (buffered > 0) {
    std::memcpy(out.data(), buf_.data() + buf_pos_, buffered);
    buf_pos_ += buffered;
    got += buffered;
  }
  while (got < out.size()) {
    const std::size_t want = out.size() - got;
    if (want > body_left_) {
      throw ProtocolError("message body underflow: need " +
                          std::to_string(want) + " bytes, body has " +
                          std::to_string(body_left_));
    }
    if (want >= kBufBytes) {
      // Large destination (array payload): receive straight into it.
      stream_.recvAll(out.subspan(got, want));
      body_left_ -= want;
      got += want;
    } else {
      // Small read (scalars, string headers): refill the buffer with
      // whatever part of the body is already in flight.
      const std::size_t target = std::min(kBufBytes, body_left_);
      buf_len_ = stream_.recvSome({buf_.data(), target});
      buf_pos_ = 0;
      body_left_ -= buf_len_;
      const std::size_t take = std::min(out.size() - got, buf_len_);
      std::memcpy(out.data() + got, buf_.data(), take);
      buf_pos_ = take;
      got += take;
    }
  }
}

void BodyReader::drain() {
  buf_pos_ = buf_len_ = 0;
  while (body_left_ > 0) {
    std::uint8_t sink[4096];
    const std::size_t chunk = std::min(body_left_, sizeof(sink));
    stream_.recvAll({sink, chunk});
    body_left_ -= chunk;
  }
}

Message recvMessage(transport::Stream& stream) {
  const FrameHeader header = recvHeader(stream);
  noteWireBuffer(header.length);
  Message msg;
  msg.type = header.type;
  msg.payload.resize(header.length);
  if (header.length > 0) stream.recvAll(msg.payload);
  return msg;
}

std::vector<std::uint8_t> ServerStatusInfo::toBytes() const {
  xdr::Encoder enc;
  enc.putU32(running);
  enc.putU32(queued);
  enc.putU64(completed);
  enc.putDouble(load_average);
  return enc.take();
}

ServerStatusInfo ServerStatusInfo::fromBytes(
    std::span<const std::uint8_t> bytes) {
  xdr::Decoder dec(bytes);
  ServerStatusInfo info;
  info.running = dec.getU32();
  info.queued = dec.getU32();
  info.completed = dec.getU64();
  info.load_average = dec.getDouble();
  return info;
}

}  // namespace ninf::protocol
