#include "protocol/message.h"

#include "common/error.h"
#include "xdr/xdr.h"

namespace ninf::protocol {

void sendMessage(transport::Stream& stream, MessageType type,
                 std::span<const std::uint8_t> payload) {
  NINF_REQUIRE(payload.size() <= kMaxPayload, "payload too large");
  xdr::Encoder header;
  header.putU32(kMagic);
  header.putU32(kVersion);
  header.putU32(static_cast<std::uint32_t>(type));
  header.putU32(static_cast<std::uint32_t>(payload.size()));
  stream.sendAll(header.bytes());
  if (!payload.empty()) stream.sendAll(payload);
}

Message recvMessage(transport::Stream& stream) {
  std::uint8_t header_bytes[16];
  stream.recvAll(header_bytes);
  xdr::Decoder header(header_bytes);
  if (header.getU32() != kMagic) {
    throw ProtocolError("bad magic from " + stream.peerName());
  }
  const std::uint32_t version = header.getU32();
  if (version != kVersion) {
    throw ProtocolError("unsupported protocol version " +
                        std::to_string(version));
  }
  const std::uint32_t type = header.getU32();
  if (type < static_cast<std::uint32_t>(MessageType::QueryInterface) ||
      type > static_cast<std::uint32_t>(MessageType::Pong)) {
    throw ProtocolError("unknown message type " + std::to_string(type));
  }
  const std::uint32_t length = header.getU32();
  if (length > kMaxPayload) {
    throw ProtocolError("payload length " + std::to_string(length) +
                        " exceeds limit");
  }
  Message msg;
  msg.type = static_cast<MessageType>(type);
  msg.payload.resize(length);
  if (length > 0) stream.recvAll(msg.payload);
  return msg;
}

std::vector<std::uint8_t> ServerStatusInfo::toBytes() const {
  xdr::Encoder enc;
  enc.putU32(running);
  enc.putU32(queued);
  enc.putU64(completed);
  enc.putDouble(load_average);
  return enc.take();
}

ServerStatusInfo ServerStatusInfo::fromBytes(
    std::span<const std::uint8_t> bytes) {
  xdr::Decoder dec(bytes);
  ServerStatusInfo info;
  info.running = dec.getU32();
  info.queued = dec.getU32();
  info.completed = dec.getU64();
  info.load_average = dec.getDouble();
  return info;
}

}  // namespace ninf::protocol
