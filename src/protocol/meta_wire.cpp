#include "protocol/meta_wire.h"

#include "common/error.h"

namespace ninf::protocol {

namespace {

/// Bound on every repeated group in a control payload.  Control messages
/// are small by design; a hostile count must not drive a giant reserve.
constexpr std::uint32_t kMaxListEntries = 1u << 16;

std::uint32_t checkedCount(xdr::Source& src, const char* what) {
  const std::uint32_t n = src.getU32();
  if (n > kMaxListEntries) {
    throw ProtocolError(std::string(what) + " count " + std::to_string(n) +
                        " exceeds limit");
  }
  return n;
}

void putStrings(xdr::Encoder& enc, const std::vector<std::string>& v) {
  enc.putU32(static_cast<std::uint32_t>(v.size()));
  for (const auto& s : v) enc.putString(s);
}

std::vector<std::string> getStrings(xdr::Source& src, const char* what) {
  const std::uint32_t n = checkedCount(src, what);
  std::vector<std::string> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) out.push_back(src.getString());
  return out;
}

}  // namespace

void ShardInfo::encode(xdr::Encoder& enc) const {
  enc.putU32(id);
  enc.putU64(epoch);
  enc.putString(primary_endpoint);
  enc.putString(backup_endpoint);
}

ShardInfo ShardInfo::decode(xdr::Source& src) {
  ShardInfo info;
  info.id = src.getU32();
  info.epoch = src.getU64();
  info.primary_endpoint = src.getString();
  info.backup_endpoint = src.getString();
  return info;
}

void RingDescriptor::encode(xdr::Encoder& enc) const {
  enc.putU64(ring_epoch);
  enc.putU32(static_cast<std::uint32_t>(shards.size()));
  for (const auto& s : shards) s.encode(enc);
}

RingDescriptor RingDescriptor::decode(xdr::Source& src) {
  RingDescriptor ring;
  ring.ring_epoch = src.getU64();
  const std::uint32_t n = checkedCount(src, "ring shard");
  ring.shards.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    ring.shards.push_back(ShardInfo::decode(src));
  }
  return ring;
}

void RedirectInfo::encode(xdr::Encoder& enc) const {
  enc.putString(entry);
  enc.putU32(owner_shard);
  enc.putU64(ring_epoch);
  enc.putU32(static_cast<std::uint32_t>(reason));
}

RedirectInfo RedirectInfo::decode(xdr::Source& src) {
  RedirectInfo info;
  info.entry = src.getString();
  info.owner_shard = src.getU32();
  info.ring_epoch = src.getU64();
  const std::uint32_t reason = src.getU32();
  if (reason > static_cast<std::uint32_t>(RedirectReason::NotPrimary)) {
    throw ProtocolError("unknown redirect reason " + std::to_string(reason));
  }
  info.reason = static_cast<RedirectReason>(reason);
  return info;
}

void ScheduleRequest::encode(xdr::Encoder& enc) const {
  enc.putString(entry);
  putStrings(enc, excluded);
}

ScheduleRequest ScheduleRequest::decode(xdr::Source& src) {
  ScheduleRequest req;
  req.entry = src.getString();
  req.excluded = getStrings(src, "excluded server");
  return req;
}

void ScheduleChoice::encode(xdr::Encoder& enc) const {
  enc.putString(server_name);
  enc.putString(endpoint);
  enc.putU64(shard_epoch);
}

ScheduleChoice ScheduleChoice::decode(xdr::Source& src) {
  ScheduleChoice choice;
  choice.server_name = src.getString();
  choice.endpoint = src.getString();
  choice.shard_epoch = src.getU64();
  return choice;
}

void WireServerDesc::encode(xdr::Encoder& enc) const {
  enc.putString(name);
  enc.putString(endpoint);
  enc.putDouble(bandwidth_bps);
  enc.putDouble(perf_flops);
  putStrings(enc, entries);
}

WireServerDesc WireServerDesc::decode(xdr::Source& src) {
  WireServerDesc desc;
  desc.name = src.getString();
  desc.endpoint = src.getString();
  desc.bandwidth_bps = src.getDouble();
  desc.perf_flops = src.getDouble();
  desc.entries = getStrings(src, "exported entry");
  return desc;
}

void RegistryOp::encode(xdr::Encoder& enc) const {
  enc.putU32(static_cast<std::uint32_t>(kind));
  desc.encode(enc);
  enc.putU64(reg_epoch);
  enc.putU64(seq);
}

RegistryOp RegistryOp::decode(xdr::Source& src) {
  RegistryOp op;
  const std::uint32_t kind = src.getU32();
  if (kind != static_cast<std::uint32_t>(Kind::Register) &&
      kind != static_cast<std::uint32_t>(Kind::Deregister)) {
    throw ProtocolError("unknown registry op kind " + std::to_string(kind));
  }
  op.kind = static_cast<Kind>(kind);
  op.desc = WireServerDesc::decode(src);
  op.reg_epoch = src.getU64();
  op.seq = src.getU64();
  return op;
}

void RegisterResult::encode(xdr::Encoder& enc) const {
  enc.putU32(static_cast<std::uint32_t>(status));
  enc.putU64(seq);
  enc.putU64(shard_epoch);
}

RegisterResult RegisterResult::decode(xdr::Source& src) {
  RegisterResult result;
  const std::uint32_t status = src.getU32();
  if (status > static_cast<std::uint32_t>(Status::WrongShard)) {
    throw ProtocolError("unknown register status " + std::to_string(status));
  }
  result.status = static_cast<Status>(status);
  result.seq = src.getU64();
  result.shard_epoch = src.getU64();
  return result;
}

void ReplAppendMsg::encode(xdr::Encoder& enc) const {
  enc.putU64(shard_epoch);
  op.encode(enc);
}

ReplAppendMsg ReplAppendMsg::decode(xdr::Source& src) {
  ReplAppendMsg msg;
  msg.shard_epoch = src.getU64();
  msg.op = RegistryOp::decode(src);
  return msg;
}

void ReplAckMsg::encode(xdr::Encoder& enc) const {
  enc.putU32(static_cast<std::uint32_t>(status));
  enc.putU64(seq);
  enc.putU64(shard_epoch);
}

ReplAckMsg ReplAckMsg::decode(xdr::Source& src) {
  ReplAckMsg msg;
  const std::uint32_t status = src.getU32();
  if (status > static_cast<std::uint32_t>(Status::StaleEpoch)) {
    throw ProtocolError("unknown repl ack status " + std::to_string(status));
  }
  msg.status = static_cast<Status>(status);
  msg.seq = src.getU64();
  msg.shard_epoch = src.getU64();
  return msg;
}

void LivenessRecord::encode(xdr::Encoder& enc) const {
  enc.putString(server_name);
  enc.putU32(reachable);
  enc.putU32(running);
  enc.putU32(queued);
  enc.putDouble(load_average);
}

LivenessRecord LivenessRecord::decode(xdr::Source& src) {
  LivenessRecord rec;
  rec.server_name = src.getString();
  rec.reachable = src.getU32();
  rec.running = src.getU32();
  rec.queued = src.getU32();
  rec.load_average = src.getDouble();
  return rec;
}

void ReplHeartbeatMsg::encode(xdr::Encoder& enc) const {
  enc.putU64(shard_epoch);
  enc.putU64(last_seq);
  enc.putU32(static_cast<std::uint32_t>(liveness.size()));
  for (const auto& rec : liveness) rec.encode(enc);
}

ReplHeartbeatMsg ReplHeartbeatMsg::decode(xdr::Source& src) {
  ReplHeartbeatMsg msg;
  msg.shard_epoch = src.getU64();
  msg.last_seq = src.getU64();
  const std::uint32_t n = checkedCount(src, "liveness record");
  msg.liveness.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    msg.liveness.push_back(LivenessRecord::decode(src));
  }
  return msg;
}

}  // namespace ninf::protocol
