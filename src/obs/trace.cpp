#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <random>

#include "common/sync.h"

namespace ninf::obs {

namespace {

/// Monotonic and wall-clock epochs captured together, so steady-clock
/// span timestamps can be pinned to a Unix instant for cross-process
/// trace alignment.
struct TracerEpochs {
  std::chrono::steady_clock::time_point steady;
  std::int64_t unix_us;
};

const TracerEpochs& tracerEpochs() {
  static const TracerEpochs epochs = [] {
    TracerEpochs e;
    e.steady = std::chrono::steady_clock::now();
    e.unix_us = std::chrono::duration_cast<std::chrono::microseconds>(
                    std::chrono::system_clock::now().time_since_epoch())
                    .count();
    return e;
  }();
  return epochs;
}

std::chrono::steady_clock::time_point tracerEpoch() {
  return tracerEpochs().steady;
}

/// Random per-process id base.  Shifted left 20 bits so each process has
/// ~1M sequential ids before overlapping the next possible base, and the
/// result stays below 2^52 — safely inside double precision, which the
/// Chrome-trace JSON round trip depends on.
std::uint64_t randomIdBase() {
  std::random_device rd;
  const std::uint64_t r =
      (static_cast<std::uint64_t>(rd()) << 16) ^ rd();
  return (r & 0xFFFFFFFFull) << 20;
}

struct ThreadTraceState {
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span = 0;
};

thread_local ThreadTraceState t_context;

}  // namespace

/// Per-thread span store.  The owning thread appends under its own
/// mutex (uncontended except while drain() steals), and the tracer keeps
/// a shared_ptr so spans survive thread exit until collected.
struct Tracer::ThreadBuffer {
  Mutex mutex{"obs.trace.buffer"};
  std::vector<SpanRecord> spans NINF_GUARDED_BY(mutex);
};

namespace {

struct BufferRegistry {
  Mutex mutex{"obs.trace.registry"};
  std::vector<std::shared_ptr<Tracer::ThreadBuffer>> buffers
      NINF_GUARDED_BY(mutex);
};

BufferRegistry& registry() {
  static BufferRegistry* r = new BufferRegistry;  // never destroyed
  return *r;
}

}  // namespace

Tracer& Tracer::instance() {
  static Tracer* t = new Tracer;  // never destroyed
  return *t;
}

Tracer::Tracer()
    : next_trace_(randomIdBase() + 1), next_span_(randomIdBase() + 1) {}

double Tracer::nowMicros() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - tracerEpoch())
      .count();
}

std::int64_t Tracer::epochUnixMicros() { return tracerEpochs().unix_us; }

std::uint32_t Tracer::threadId() {
  static std::atomic<std::uint32_t> next{1};
  thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

Tracer::ThreadBuffer& Tracer::localBuffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
    auto b = std::make_shared<ThreadBuffer>();
    auto& reg = registry();
    LockGuard lock(reg.mutex);
    reg.buffers.push_back(b);
    return b;
  }();
  return *buffer;
}

void Tracer::record(SpanRecord rec) {
  ThreadBuffer& buf = localBuffer();
  LockGuard lock(buf.mutex);
  buf.spans.push_back(std::move(rec));
}

std::vector<SpanRecord> Tracer::drain() {
  std::vector<SpanRecord> all;
  auto& reg = registry();
  LockGuard reg_lock(reg.mutex);
  for (auto& buf : reg.buffers) {
    LockGuard lock(buf->mutex);
    all.insert(all.end(), std::make_move_iterator(buf->spans.begin()),
               std::make_move_iterator(buf->spans.end()));
    buf->spans.clear();
  }
  std::sort(all.begin(), all.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return a.start_us < b.start_us;
            });
  return all;
}

void Tracer::clear() {
  auto& reg = registry();
  LockGuard reg_lock(reg.mutex);
  for (auto& buf : reg.buffers) {
    LockGuard lock(buf->mutex);
    buf->spans.clear();
  }
}

TraceContext currentContext() {
  return TraceContext{t_context.trace_id, t_context.parent_span};
}

ScopedTraceContext::ScopedTraceContext(const TraceContext& ctx) {
  if (ctx.trace_id == 0) return;
  saved_ = TraceContext{t_context.trace_id, t_context.parent_span};
  t_context.trace_id = ctx.trace_id;
  t_context.parent_span = ctx.parent_span;
  installed_ = true;
}

ScopedTraceContext::~ScopedTraceContext() {
  if (!installed_) return;
  t_context.trace_id = saved_.trace_id;
  t_context.parent_span = saved_.parent_span;
}

Span::Span(const char* name, std::int64_t bytes)
    : name_(name), bytes_(bytes) {
  Tracer& tracer = Tracer::instance();
  if (!tracer.enabled()) return;
  active_ = true;
  span_id_ = tracer.newSpanId();
  if (t_context.trace_id == 0) {
    root_ = true;
    trace_id_ = tracer.newTraceId();
    parent_id_ = 0;
  } else {
    trace_id_ = t_context.trace_id;
    parent_id_ = t_context.parent_span;
  }
  t_context.trace_id = trace_id_;
  t_context.parent_span = span_id_;
  start_us_ = Tracer::nowMicros();
}

Span::~Span() {
  if (!active_) return;
  const double end_us = Tracer::nowMicros();
  // Restore the ambient context even if the tracer was disabled
  // mid-span, so nesting cannot leak across calls.
  t_context.parent_span = parent_id_;
  if (root_) t_context.trace_id = 0;
  SpanRecord rec;
  rec.trace_id = trace_id_;
  rec.span_id = span_id_;
  rec.parent_id = parent_id_;
  rec.name = name_;
  rec.start_us = start_us_;
  rec.dur_us = end_us - start_us_;
  rec.lane = kLaneReal;
  rec.tid = Tracer::threadId();
  rec.bytes = bytes_;
  rec.call_id = call_id_;
  rec.detail = std::move(detail_);
  Tracer::instance().record(std::move(rec));
}

void emitSpan(SpanRecord rec) {
  Tracer& tracer = Tracer::instance();
  if (!tracer.enabled()) return;
  if (rec.span_id == 0) rec.span_id = tracer.newSpanId();
  if (rec.tid == 0) rec.tid = Tracer::threadId();
  tracer.record(std::move(rec));
}

}  // namespace ninf::obs
