// Span-based call tracer (paper, section 4.1).
//
// Every Ninf_call decomposes into the phase vocabulary of Tables 3-8:
// connect, marshal-args, send, queue-wait, compute, recv and
// unmarshal-result on the client side, with server.* ground-truth twins
// recorded by the computational server and transport-level detail spans
// (tcp.send, inproc.recv, ...) underneath.  The simulator emits the same
// schema on its own lane (kLaneSim) in virtual time, so a real LAN run
// and its simulated counterpart are diffable with one tool
// (tools/ninf_trace_dump).
//
// Design constraints:
//  * Near-zero overhead when disabled: constructing a Span costs one
//    relaxed atomic load and a few member writes; nothing is allocated.
//  * No lost events: each thread records into its own lock-sharded
//    buffer (one mutex per thread, uncontended in steady state);
//    drain() steals from every registered buffer, including those of
//    threads that have already exited.
//  * Nesting: a thread-local (trace id, parent span) context links child
//    spans to their parent; a Span opened with no active context starts
//    a new root trace.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace ninf::obs {

/// Chrome trace-event "pid" lanes used to separate real and simulated
/// executions in one trace file.
inline constexpr std::uint32_t kLaneReal = 1;
inline constexpr std::uint32_t kLaneSim = 2;

/// Canonical client-side phase names (the paper's timing decomposition).
namespace phase {
inline constexpr const char* kCall = "call";
inline constexpr const char* kConnect = "connect";
inline constexpr const char* kMarshalArgs = "marshal-args";
inline constexpr const char* kSend = "send";
inline constexpr const char* kQueueWait = "queue-wait";
inline constexpr const char* kCompute = "compute";
inline constexpr const char* kRecv = "recv";
inline constexpr const char* kUnmarshalResult = "unmarshal-result";
// Server-clock ground truth, named apart so per-phase summaries never
// double-count a call observed from both sides (in-proc runs).
inline constexpr const char* kServerQueueWait = "server.queue-wait";
inline constexpr const char* kServerCompute = "server.compute";
inline constexpr const char* kServerUnmarshalArgs = "server.unmarshal-args";
inline constexpr const char* kServerMarshalResult = "server.marshal-result";
}  // namespace phase

/// One completed span, ready for export.
struct SpanRecord {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;  // 0 = root
  std::string name;             // phase vocabulary above, or free-form
  double start_us = 0.0;        // microseconds since tracer epoch
  double dur_us = 0.0;
  std::uint32_t lane = kLaneReal;  // kLaneReal | kLaneSim
  std::uint32_t tid = 0;           // recording thread (or sim client id)
  std::int64_t bytes = -1;         // payload bytes, -1 when n/a
  std::uint64_t call_id = 0;       // v2 wire call id, 0 = n/a
  std::string detail;              // free-form annotation
};

class Tracer {
 public:
  /// Opaque per-thread span store (implementation detail, public only so
  /// the registry in trace.cpp can hold shared_ptrs to it).
  struct ThreadBuffer;

  /// Process-wide tracer; never destroyed (safe from thread-exit hooks).
  static Tracer& instance();

  void setEnabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Microseconds on the monotonic clock since the tracer epoch.
  static double nowMicros();

  /// Wall-clock instant of the tracer epoch (Unix microseconds),
  /// captured together with the monotonic epoch.  Exported as trace
  /// metadata so multi-process traces can be aligned on merge.
  static std::int64_t epochUnixMicros();

  std::uint64_t newTraceId() {
    return next_trace_.fetch_add(1, std::memory_order_relaxed);
  }
  std::uint64_t newSpanId() {
    return next_span_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Small dense id of the calling thread (stable for its lifetime).
  static std::uint32_t threadId();

  /// Append a finished span to the calling thread's buffer.
  void record(SpanRecord rec);

  /// Move every recorded span out of every thread buffer (including
  /// buffers of threads that already exited), sorted by start time.
  std::vector<SpanRecord> drain();

  /// Discard everything recorded so far.
  void clear();

 private:
  /// Seeds the id counters with a per-process random base so traces from
  /// different processes never collide when merged.  Bases stay below
  /// 2^52 (ids < 2^53) so they survive a double-precision JSON round
  /// trip exactly.
  Tracer();
  ThreadBuffer& localBuffer();

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> next_trace_;
  std::atomic<std::uint64_t> next_span_;
};

/// Ambient per-thread trace context: which trace/span new spans nest
/// under.  Exposed so derived spans (e.g. server-clock reconstructions)
/// can be attached manually.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span = 0;
};

TraceContext currentContext();

/// RAII adoption of a propagated trace context (e.g. one received in a
/// traced v2 frame header): installs `ctx` as the ambient context so
/// spans opened in scope become its children, and restores the previous
/// ambient context on destruction.  A zero trace_id installs nothing —
/// spans keep their local behavior.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(const TraceContext& ctx);
  ~ScopedTraceContext();
  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext saved_;
  bool installed_ = false;
};

/// RAII span: measures construction-to-destruction on the monotonic
/// clock and records itself on destruction.  Inert (and nearly free)
/// while the tracer is disabled.
class Span {
 public:
  explicit Span(const char* name, std::int64_t bytes = -1);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// False when tracing was disabled at construction.
  bool active() const { return active_; }
  std::uint64_t id() const { return span_id_; }
  std::uint64_t traceId() const { return trace_id_; }

  void setBytes(std::int64_t bytes) { bytes_ = bytes; }
  void setDetail(std::string detail) { detail_ = std::move(detail); }
  /// Correlate this span with a v2 wire call id (satellite annotation).
  void setCallId(std::uint64_t call_id) { call_id_ = call_id; }

 private:
  const char* name_;
  std::int64_t bytes_;
  bool active_ = false;
  bool root_ = false;
  double start_us_ = 0.0;
  std::uint64_t trace_id_ = 0;
  std::uint64_t span_id_ = 0;
  std::uint64_t parent_id_ = 0;
  std::uint64_t call_id_ = 0;
  std::string detail_;
};

/// Record a span with externally supplied timestamps (server-clock
/// reconstructions, simulator virtual time).  No-op while disabled.
void emitSpan(SpanRecord rec);

}  // namespace ninf::obs
