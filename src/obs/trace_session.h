// Shared "--trace out.json" plumbing for benches, tools, and examples.
//
//   int main(int argc, char** argv) {
//     obs::TraceSession trace(obs::TraceSession::flagFromArgs(argc, argv));
//     ... run the workload ...
//   }  // ~TraceSession drains the tracer and writes the Chrome JSON
//
// With an empty path the session is inert and tracing stays disabled.
// The NINF_TRACE environment variable supplies a path when no flag does.
#pragma once

#include <string>

namespace ninf::obs {

class TraceSession {
 public:
  /// Empty path = disabled.  Otherwise enables the global tracer and
  /// clears any stale spans.  `process` labels the file for multi-process
  /// merging (ninf_trace_dump --merge); when empty, $NINF_TRACE_NAME is
  /// used if set.
  explicit TraceSession(std::string path = {}, std::string process = {});
  ~TraceSession();
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  bool active() const { return !path_.empty(); }
  const std::string& path() const { return path_; }
  void setProcessLabel(std::string process) { process_ = std::move(process); }

  /// Drain + write the trace file now (idempotent); disables tracing.
  void finish();

  /// Extract `--trace <path>` or `--trace=<path>` from argv (removing it
  /// so downstream parsing never sees it); falls back to $NINF_TRACE.
  /// Returns an empty string when tracing was not requested.
  static std::string flagFromArgs(int& argc, char** argv);

 private:
  std::string path_;
  std::string process_;
};

/// Write the global metrics registry to `path` as JSON (".json" suffix)
/// or CSV (anything else).  Returns false on I/O failure.
bool dumpMetrics(const std::string& path);

}  // namespace ninf::obs
