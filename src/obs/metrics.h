// Process-wide metrics registry: named counters, gauges, and fixed-bucket
// latency histograms with p50/p95/p99 summaries.
//
// All instruments are lock-free on the hot path (plain atomics); the
// registry mutex is only taken when an instrument is first created, so
// the idiomatic usage caches the reference in a function-local static:
//
//   static obs::Counter& bytes = obs::counter("tcp.bytes_sent");
//   bytes.add(n);
//
// Exports: toJson() (machine-readable dump, one object per kind) and
// toCsv() (kind,name,field,value rows for spreadsheet ingestion).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ninf::obs {

class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket latency histogram: 64 log-spaced buckets from 1 us up
/// (growth factor 1.35 per bucket, ~120 s full scale), plus overflow in
/// the last bucket.  Percentiles interpolate linearly inside the
/// containing bucket, so resolution is ~±17% of the value — plenty for
/// the order-of-magnitude phase attribution the paper's tables need.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void observe(double seconds);

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const;
  /// p in [0, 100]; 0 with no observations.
  double percentile(double p) const;
  /// q in [0, 1]; same estimate as percentile(q * 100).
  double quantile(double q) const { return percentile(q * 100.0); }

  /// Upper bound of bucket i in seconds (exposed for tests).
  static double bucketUpper(std::size_t i);

  void reset();

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Registry summary of one histogram, used by the exporters.
struct HistogramSummary {
  std::string name;
  std::uint64_t count = 0;
  double sum = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  /// Find-or-create; the returned reference is stable forever.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  std::vector<std::pair<std::string, std::uint64_t>> counters() const;
  std::vector<std::pair<std::string, double>> gauges() const;
  std::vector<HistogramSummary> histograms() const;

  /// {"counters": {...}, "gauges": {...}, "histograms": {...}}
  std::string toJson() const;
  /// kind,name,field,value rows with a header line.
  std::string toCsv() const;

  /// Zero every instrument (names and references stay valid).
  void reset();

 private:
  MetricsRegistry() = default;
  struct Impl;
  Impl& impl() const;
};

/// Convenience accessors on the global registry.
Counter& counter(std::string_view name);
Gauge& gauge(std::string_view name);
Histogram& histogram(std::string_view name);

}  // namespace ninf::obs
