#include "obs/trace_session.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ninf::obs {

TraceSession::TraceSession(std::string path, std::string process)
    : path_(std::move(path)), process_(std::move(process)) {
  if (path_.empty()) return;
  if (process_.empty()) {
    if (const char* env = std::getenv("NINF_TRACE_NAME")) process_ = env;
  }
  Tracer::instance().clear();
  Tracer::instance().setEnabled(true);
}

TraceSession::~TraceSession() { finish(); }

void TraceSession::finish() {
  if (path_.empty()) return;
  Tracer& tracer = Tracer::instance();
  tracer.setEnabled(false);
  const auto spans = tracer.drain();
  std::ofstream out(path_);
  if (!out) {
    std::fprintf(stderr, "trace: cannot write %s\n", path_.c_str());
  } else {
    TraceMeta meta;
    meta.process = process_;
    meta.epoch_unix_us = Tracer::epochUnixMicros();
    out << chromeTraceJson(spans, meta);
    std::fprintf(stderr,
                 "trace: wrote %zu spans to %s (open in chrome://tracing "
                 "or ui.perfetto.dev, or run ninf_trace_dump)\n",
                 spans.size(), path_.c_str());
  }
  path_.clear();
}

std::string TraceSession::flagFromArgs(int& argc, char** argv) {
  std::string path;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      path = argv[++i];
      continue;
    }
    if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      path = argv[i] + 8;
      continue;
    }
    argv[out++] = argv[i];
  }
  argc = out;
  if (path.empty()) {
    if (const char* env = std::getenv("NINF_TRACE")) path = env;
  }
  return path;
}

bool dumpMetrics(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  const bool json =
      path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0;
  out << (json ? MetricsRegistry::instance().toJson()
               : MetricsRegistry::instance().toCsv());
  return static_cast<bool>(out);
}

}  // namespace ninf::obs
