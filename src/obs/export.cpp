#include "obs/export.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

#include "common/error.h"
#include "common/table.h"

namespace ninf::obs {

// ----------------------------------------------------------- JSON parser

namespace json {

const Value* Value::find(std::string_view key) const {
  if (type != Type::Object) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse() {
    Value v = parseValue();
    skipWs();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) {
    throw Error("json: " + why + " at offset " + std::to_string(pos_));
  }

  void skipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  Value parseValue() {
    skipWs();
    switch (peek()) {
      case '{': return parseObject();
      case '[': return parseArray();
      case '"': {
        Value v;
        v.type = Value::Type::String;
        v.string = parseString();
        return v;
      }
      case 't':
        if (consumeLiteral("true")) {
          Value v;
          v.type = Value::Type::Bool;
          v.boolean = true;
          return v;
        }
        fail("bad literal");
      case 'f':
        if (consumeLiteral("false")) {
          Value v;
          v.type = Value::Type::Bool;
          return v;
        }
        fail("bad literal");
      case 'n':
        if (consumeLiteral("null")) return Value{};
        fail("bad literal");
      default: return parseNumber();
    }
  }

  Value parseObject() {
    Value v;
    v.type = Value::Type::Object;
    expect('{');
    skipWs();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skipWs();
      std::string key = parseString();
      skipWs();
      expect(':');
      v.object.emplace_back(std::move(key), parseValue());
      skipWs();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Value parseArray() {
    Value v;
    v.type = Value::Type::Array;
    expect('[');
    skipWs();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(parseValue());
      skipWs();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parseString() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // Minimal UTF-8 encoding (no surrogate-pair recombination;
          // our writer never emits non-BMP text).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("bad escape character");
      }
    }
  }

  Value parseNumber() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    Value v;
    v.type = Value::Type::Number;
    try {
      v.number = std::stod(std::string(text_.substr(start, pos_ - start)));
    } catch (const std::exception&) {
      fail("bad number");
    }
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(std::string_view text) { return Parser(text).parse(); }

}  // namespace json

// -------------------------------------------------------- chrome writer

namespace {

std::string escapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// One "X" event row.  IDs are emitted with integer formatting (exact);
/// readers recover them through a double, so they must stay below 2^53 —
/// guaranteed by the tracer's id-base scheme.
void writeSpanEvent(std::ostringstream& os, const SpanRecord& s,
                    std::uint32_t pid, double ts_offset_us) {
  os << ",\n  {\"name\": \"" << escapeJson(s.name) << "\", \"ph\": \"X\""
     << ", \"ts\": " << s.start_us + ts_offset_us << ", \"dur\": " << s.dur_us
     << ", \"pid\": " << pid << ", \"tid\": " << s.tid
     << ", \"args\": {\"trace\": " << s.trace_id << ", \"span\": " << s.span_id
     << ", \"parent\": " << s.parent_id;
  if (s.call_id != 0) os << ", \"call\": " << s.call_id;
  if (s.bytes >= 0) os << ", \"bytes\": " << s.bytes;
  if (!s.detail.empty()) {
    os << ", \"detail\": \"" << escapeJson(s.detail) << "\"";
  }
  os << "}}";
}

}  // namespace

std::string chromeTraceJson(const std::vector<SpanRecord>& spans) {
  return chromeTraceJson(spans, TraceMeta{});
}

std::string chromeTraceJson(const std::vector<SpanRecord>& spans,
                            const TraceMeta& meta) {
  std::ostringstream os;
  os.precision(3);
  os << std::fixed;
  os << "{\"displayTimeUnit\": \"ms\", ";
  // Extra top-level keys are legal in the trace-event format; viewers
  // ignore them and mergeChromeTraces reads them back.
  if (!meta.process.empty()) {
    os << "\"ninfProcess\": \"" << escapeJson(meta.process) << "\", ";
  }
  if (meta.epoch_unix_us != 0) {
    os << "\"ninfEpochUnixUs\": " << meta.epoch_unix_us << ", ";
  }
  os << "\"traceEvents\": [\n";
  // Process-name metadata rows so the lanes are labelled in the viewer.
  os << "  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": " << kLaneReal
     << ", \"args\": {\"name\": \"ninf (real)\"}},\n";
  os << "  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": " << kLaneSim
     << ", \"args\": {\"name\": \"ninf (simulated)\"}}";
  for (const SpanRecord& s : spans) {
    writeSpanEvent(os, s, s.lane, 0.0);
  }
  os << "\n]}\n";
  return os.str();
}

std::vector<SpanRecord> parseChromeTrace(std::string_view text) {
  const json::Value root = json::parse(text);
  const json::Value* events = root.find("traceEvents");
  if (events == nullptr && root.type == json::Value::Type::Array) {
    events = &root;  // bare event-array form is also legal chrome trace
  }
  if (events == nullptr || events->type != json::Value::Type::Array) {
    throw Error("json: no traceEvents array");
  }
  std::vector<SpanRecord> spans;
  for (const json::Value& ev : events->array) {
    const json::Value* ph = ev.find("ph");
    if (ph == nullptr || ph->string != "X") continue;
    SpanRecord rec;
    const json::Value* name = ev.find("name");
    if (name != nullptr) rec.name = name->string;
    if (const auto* v = ev.find("ts")) rec.start_us = v->numberOr(0);
    if (const auto* v = ev.find("dur")) rec.dur_us = v->numberOr(0);
    if (const auto* v = ev.find("pid")) {
      rec.lane = static_cast<std::uint32_t>(v->numberOr(kLaneReal));
    }
    if (const auto* v = ev.find("tid")) {
      rec.tid = static_cast<std::uint32_t>(v->numberOr(0));
    }
    if (const json::Value* args = ev.find("args")) {
      if (const auto* v = args->find("trace")) {
        rec.trace_id = static_cast<std::uint64_t>(v->numberOr(0));
      }
      if (const auto* v = args->find("span")) {
        rec.span_id = static_cast<std::uint64_t>(v->numberOr(0));
      }
      if (const auto* v = args->find("parent")) {
        rec.parent_id = static_cast<std::uint64_t>(v->numberOr(0));
      }
      if (const auto* v = args->find("bytes")) {
        rec.bytes = static_cast<std::int64_t>(v->numberOr(-1));
      }
      if (const auto* v = args->find("call")) {
        rec.call_id = static_cast<std::uint64_t>(v->numberOr(0));
      }
      if (const auto* v = args->find("detail")) rec.detail = v->string;
    }
    spans.push_back(std::move(rec));
  }
  return spans;
}

TraceMeta parseChromeTraceMeta(std::string_view text) {
  const json::Value root = json::parse(text);
  TraceMeta meta;
  if (const auto* v = root.find("ninfProcess")) meta.process = v->string;
  if (const auto* v = root.find("ninfEpochUnixUs")) {
    meta.epoch_unix_us = static_cast<std::int64_t>(v->numberOr(0));
  }
  return meta;
}

std::string mergeChromeTraces(const std::vector<ProcessTrace>& traces) {
  // Earliest known epoch anchors the merged timeline at ts = 0.
  std::int64_t base = 0;
  for (const ProcessTrace& t : traces) {
    if (t.epoch_unix_us != 0 && (base == 0 || t.epoch_unix_us < base)) {
      base = t.epoch_unix_us;
    }
  }
  std::ostringstream os;
  os.precision(3);
  os << std::fixed;
  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  bool first = true;
  for (std::size_t i = 0; i < traces.size(); ++i) {
    const auto pid = static_cast<std::uint32_t>(i + 1);
    const std::string label = traces[i].label.empty()
                                  ? "proc-" + std::to_string(pid)
                                  : traces[i].label;
    if (!first) os << ",\n";
    first = false;
    os << "  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": " << pid
       << ", \"args\": {\"name\": \"" << escapeJson(label) << "\"}}";
    const double offset_us =
        traces[i].epoch_unix_us != 0
            ? static_cast<double>(traces[i].epoch_unix_us - base)
            : 0.0;
    for (const SpanRecord& s : traces[i].spans) {
      writeSpanEvent(os, s, pid, offset_us);
    }
  }
  os << "\n]}\n";
  return os.str();
}

// -------------------------------------------------------- phase summary

namespace {

/// Canonical display order: the life of a Ninf_call, then the server's
/// ground-truth phases, then transport / misc detail.
int phaseRank(const std::string& name) {
  static const std::map<std::string, int> ranks = {
      {phase::kCall, 0},
      {phase::kConnect, 1},
      {phase::kMarshalArgs, 2},
      {phase::kSend, 3},
      {phase::kQueueWait, 4},
      {phase::kCompute, 5},
      {phase::kRecv, 6},
      {phase::kUnmarshalResult, 7},
      {phase::kServerUnmarshalArgs, 8},
      {phase::kServerQueueWait, 9},
      {phase::kServerCompute, 10},
      {phase::kServerMarshalResult, 11},
  };
  const auto it = ranks.find(name);
  return it != ranks.end() ? it->second : 100;
}

double sortedPercentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p / 100.0 * static_cast<double>(sorted.size());
  std::size_t idx = rank <= 1.0
                        ? 0
                        : static_cast<std::size_t>(std::ceil(rank)) - 1;
  idx = std::min(idx, sorted.size() - 1);
  return sorted[idx];
}

}  // namespace

std::vector<PhaseStat> phaseSummary(const std::vector<SpanRecord>& spans,
                                    std::uint32_t lane) {
  std::map<std::string, std::vector<double>> durations;
  std::map<std::string, std::int64_t> bytes;
  for (const SpanRecord& s : spans) {
    if (lane != 0 && s.lane != lane) continue;
    durations[s.name].push_back(s.dur_us / 1e3);
    if (s.bytes >= 0) bytes[s.name] += s.bytes;
  }
  std::vector<PhaseStat> stats;
  stats.reserve(durations.size());
  for (auto& [name, ms] : durations) {
    std::sort(ms.begin(), ms.end());
    PhaseStat st;
    st.name = name;
    st.count = ms.size();
    for (double d : ms) st.total_ms += d;
    st.mean_ms = st.total_ms / static_cast<double>(ms.size());
    st.min_ms = ms.front();
    st.max_ms = ms.back();
    st.p50_ms = sortedPercentile(ms, 50);
    st.p95_ms = sortedPercentile(ms, 95);
    st.p99_ms = sortedPercentile(ms, 99);
    st.bytes = bytes.count(name) != 0 ? bytes[name] : 0;
    stats.push_back(std::move(st));
  }
  std::sort(stats.begin(), stats.end(),
            [](const PhaseStat& a, const PhaseStat& b) {
              const int ra = phaseRank(a.name);
              const int rb = phaseRank(b.name);
              return ra != rb ? ra < rb : a.name < b.name;
            });
  return stats;
}

std::string formatPhaseTable(const std::vector<PhaseStat>& stats) {
  TextTable table({"phase", "count", "total[ms]", "mean[ms]", "min[ms]",
                   "max[ms]", "p50[ms]", "p95[ms]", "p99[ms]", "bytes"});
  for (const PhaseStat& st : stats) {
    table.row()
        .cell(st.name)
        .cell(st.count)
        .cell(st.total_ms, 3)
        .cell(st.mean_ms, 3)
        .cell(st.min_ms, 3)
        .cell(st.max_ms, 3)
        .cell(st.p50_ms, 3)
        .cell(st.p95_ms, 3)
        .cell(st.p99_ms, 3)
        .cell(static_cast<long long>(st.bytes));
  }
  return table.str();
}

std::string formatPhaseComparison(const std::vector<PhaseStat>& a,
                                  const std::string& a_label,
                                  const std::vector<PhaseStat>& b,
                                  const std::string& b_label) {
  std::map<std::string, const PhaseStat*> bmap;
  for (const PhaseStat& st : b) bmap[st.name] = &st;
  TextTable table({"phase", a_label + " mean[ms]", b_label + " mean[ms]",
                   b_label + "/" + a_label});
  std::vector<std::string> seen;
  for (const PhaseStat& st : a) {
    auto& row = table.row().cell(st.name).cell(st.mean_ms, 3);
    const auto it = bmap.find(st.name);
    if (it != bmap.end()) {
      row.cell(it->second->mean_ms, 3);
      row.cell(st.mean_ms > 0 ? it->second->mean_ms / st.mean_ms : 0.0, 2);
      seen.push_back(st.name);
    } else {
      row.cell("-").cell("-");
    }
  }
  for (const PhaseStat& st : b) {
    if (std::find(seen.begin(), seen.end(), st.name) != seen.end()) continue;
    table.row().cell(st.name).cell("-").cell(st.mean_ms, 3).cell("-");
  }
  return table.str();
}

}  // namespace ninf::obs
