// Trace exporters and readers.
//
//  * chromeTraceJson: Chrome trace-event format ("X" complete events),
//    loadable directly in chrome://tracing or https://ui.perfetto.dev.
//  * parseChromeTrace: reads that format back into SpanRecords (used by
//    tools/ninf_trace_dump and the round-trip tests).
//  * phaseSummary/formatPhaseTable: aggregate spans by phase name into
//    the per-phase breakdown matching the paper's Table 3/6 columns.
//
// A deliberately small recursive-descent JSON parser lives in
// obs::json; it handles the full value grammar (objects, arrays,
// strings with escapes, numbers, booleans, null) and is sufficient for
// any file this subsystem writes.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.h"

namespace ninf::obs {

namespace json {

struct Value {
  enum class Type { Null, Bool, Number, String, Array, Object };
  Type type = Type::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;

  /// First member with this key, or nullptr.
  const Value* find(std::string_view key) const;
  double numberOr(double fallback) const {
    return type == Type::Number ? number : fallback;
  }
};

/// Throws ninf::Error on malformed input.
Value parse(std::string_view text);

}  // namespace json

/// Per-file trace metadata: which process recorded it and the Unix
/// instant of its tracer epoch.  Written as extra top-level keys
/// ("ninfProcess", "ninfEpochUnixUs") that Chrome/Perfetto ignore;
/// mergeChromeTraces uses the epoch to align timelines across files.
struct TraceMeta {
  std::string process;             // human label, e.g. "client", "server"
  std::int64_t epoch_unix_us = 0;  // 0 = unknown
};

/// Serialize spans as a Chrome trace-event JSON document.
std::string chromeTraceJson(const std::vector<SpanRecord>& spans);
/// Same, embedding process/epoch metadata for later merging.
std::string chromeTraceJson(const std::vector<SpanRecord>& spans,
                            const TraceMeta& meta);

/// Parse a Chrome trace-event document produced by chromeTraceJson (or
/// any compatible file of "X" events).  Non-duration events are skipped.
std::vector<SpanRecord> parseChromeTrace(std::string_view text);

/// Read back the metadata embedded by the meta-carrying writer; fields
/// keep their zero values when the document has none.
TraceMeta parseChromeTraceMeta(std::string_view text);

/// One per-process trace going into a merge.
struct ProcessTrace {
  std::string label;               // lane name in the merged view
  std::int64_t epoch_unix_us = 0;  // from TraceMeta; 0 = no offset known
  std::vector<SpanRecord> spans;
};

/// Merge per-process trace files into one Chrome trace: each input
/// becomes its own pid lane (labelled via process_name metadata), and
/// span timestamps are shifted by each file's epoch offset from the
/// earliest epoch so the timelines align on one wall clock.  Files
/// without a known epoch are left unshifted.
std::string mergeChromeTraces(const std::vector<ProcessTrace>& traces);

/// Per-phase aggregation of span durations.
struct PhaseStat {
  std::string name;
  std::size_t count = 0;
  double total_ms = 0.0;
  double mean_ms = 0.0;
  double min_ms = 0.0;
  double max_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  std::int64_t bytes = 0;  // summed over spans that carried byte counts
};

/// Aggregate by name, ordered canonically: the client phase vocabulary
/// first (call order), then server.* phases, then everything else
/// alphabetically.  `lane` filters to one lane; 0 keeps every lane.
std::vector<PhaseStat> phaseSummary(const std::vector<SpanRecord>& spans,
                                    std::uint32_t lane = 0);

/// Render as a text table (common/table.h style).
std::string formatPhaseTable(const std::vector<PhaseStat>& stats);

/// Two-column comparison (e.g. real vs simulated run): mean per phase
/// side by side with the B/A ratio.
std::string formatPhaseComparison(const std::vector<PhaseStat>& a,
                                  const std::string& a_label,
                                  const std::vector<PhaseStat>& b,
                                  const std::string& b_label);

}  // namespace ninf::obs
