#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <sstream>

#include "common/sync.h"

namespace ninf::obs {

namespace {

constexpr double kFirstUpper = 1e-6;  // bucket 0: (0, 1us]
constexpr double kGrowth = 1.35;

void atomicAddDouble(std::atomic<double>& target, double delta) {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace

double Histogram::bucketUpper(std::size_t i) {
  return kFirstUpper * std::pow(kGrowth, static_cast<double>(i));
}

void Histogram::observe(double seconds) {
  if (!(seconds >= 0.0)) seconds = 0.0;  // NaN and negatives clamp to 0
  // log-ratio index: first bucket whose upper bound >= seconds.
  std::size_t idx = 0;
  if (seconds > kFirstUpper) {
    idx = static_cast<std::size_t>(
        std::ceil(std::log(seconds / kFirstUpper) / std::log(kGrowth)));
    idx = std::min(idx, kBuckets - 1);
  }
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomicAddDouble(sum_, seconds);
}

double Histogram::mean() const {
  const std::uint64_t n = count();
  return n > 0 ? sum() / static_cast<double>(n) : 0.0;
}

double Histogram::percentile(double p) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(n);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    const std::uint64_t in_bucket =
        buckets_[i].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= rank) {
      const double lower = i == 0 ? 0.0 : bucketUpper(i - 1);
      const double upper = bucketUpper(i);
      const double frac =
          std::clamp((rank - static_cast<double>(cumulative)) /
                         static_cast<double>(in_bucket),
                     0.0, 1.0);
      return lower + (upper - lower) * frac;
    }
    cumulative += in_bucket;
  }
  return bucketUpper(kBuckets - 1);
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

// --------------------------------------------------------------- registry

struct MetricsRegistry::Impl {
  mutable Mutex mutex{"obs.registry"};
  // node-based maps: references to mapped values are stable forever.
  std::map<std::string, std::unique_ptr<Counter>> counters
      NINF_GUARDED_BY(mutex);
  std::map<std::string, std::unique_ptr<Gauge>> gauges NINF_GUARDED_BY(mutex);
  std::map<std::string, std::unique_ptr<Histogram>> histograms
      NINF_GUARDED_BY(mutex);
};

MetricsRegistry::Impl& MetricsRegistry::impl() const {
  static Impl* impl = new Impl;  // never destroyed
  return *impl;
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry* r = new MetricsRegistry;
  return *r;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  Impl& i = impl();
  LockGuard lock(i.mutex);
  auto& slot = i.counters[std::string(name)];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  Impl& i = impl();
  LockGuard lock(i.mutex);
  auto& slot = i.gauges[std::string(name)];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  Impl& i = impl();
  LockGuard lock(i.mutex);
  auto& slot = i.histograms[std::string(name)];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

std::vector<std::pair<std::string, std::uint64_t>>
MetricsRegistry::counters() const {
  Impl& i = impl();
  LockGuard lock(i.mutex);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(i.counters.size());
  for (const auto& [name, c] : i.counters) out.emplace_back(name, c->value());
  return out;
}

std::vector<std::pair<std::string, double>> MetricsRegistry::gauges() const {
  Impl& i = impl();
  LockGuard lock(i.mutex);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(i.gauges.size());
  for (const auto& [name, g] : i.gauges) out.emplace_back(name, g->value());
  return out;
}

std::vector<HistogramSummary> MetricsRegistry::histograms() const {
  Impl& i = impl();
  LockGuard lock(i.mutex);
  std::vector<HistogramSummary> out;
  out.reserve(i.histograms.size());
  for (const auto& [name, h] : i.histograms) {
    HistogramSummary s;
    s.name = name;
    s.count = h->count();
    s.sum = h->sum();
    s.mean = h->mean();
    s.p50 = h->percentile(50);
    s.p95 = h->percentile(95);
    s.p99 = h->percentile(99);
    out.push_back(std::move(s));
  }
  return out;
}

namespace {

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string MetricsRegistry::toJson() const {
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : counters()) {
    os << (first ? "" : ",") << "\n    \"" << jsonEscape(name) << "\": " << v;
    first = false;
  }
  os << "\n  },\n  \"gauges\": {";
  first = true;
  os.precision(9);
  for (const auto& [name, v] : gauges()) {
    os << (first ? "" : ",") << "\n    \"" << jsonEscape(name) << "\": " << v;
    first = false;
  }
  os << "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& h : histograms()) {
    os << (first ? "" : ",") << "\n    \"" << jsonEscape(h.name)
       << "\": {\"count\": " << h.count << ", \"sum\": " << h.sum
       << ", \"mean\": " << h.mean << ", \"p50\": " << h.p50
       << ", \"p95\": " << h.p95 << ", \"p99\": " << h.p99 << "}";
    first = false;
  }
  os << "\n  }\n}\n";
  return os.str();
}

std::string MetricsRegistry::toCsv() const {
  std::ostringstream os;
  os.precision(9);
  os << "kind,name,field,value\n";
  for (const auto& [name, v] : counters()) {
    os << "counter," << name << ",value," << v << "\n";
  }
  for (const auto& [name, v] : gauges()) {
    os << "gauge," << name << ",value," << v << "\n";
  }
  for (const auto& h : histograms()) {
    os << "histogram," << h.name << ",count," << h.count << "\n";
    os << "histogram," << h.name << ",sum," << h.sum << "\n";
    os << "histogram," << h.name << ",mean," << h.mean << "\n";
    os << "histogram," << h.name << ",p50," << h.p50 << "\n";
    os << "histogram," << h.name << ",p95," << h.p95 << "\n";
    os << "histogram," << h.name << ",p99," << h.p99 << "\n";
  }
  return os.str();
}

void MetricsRegistry::reset() {
  Impl& i = impl();
  LockGuard lock(i.mutex);
  for (auto& [name, c] : i.counters) c->reset();
  for (auto& [name, g] : i.gauges) g->set(0.0);
  for (auto& [name, h] : i.histograms) h->reset();
}

Counter& counter(std::string_view name) {
  return MetricsRegistry::instance().counter(name);
}
Gauge& gauge(std::string_view name) {
  return MetricsRegistry::instance().gauge(name);
}
Histogram& histogram(std::string_view name) {
  return MetricsRegistry::instance().histogram(name);
}

}  // namespace ninf::obs
