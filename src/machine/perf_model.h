// Machine performance models.
//
// The paper expresses compute time as T_comp = T_comp0 + W(n)/P_calc(n)
// (section 3.1) where P_calc(n) is the machine's Linpack rate at problem
// size n.  We model P_calc with the classic pipeline-fill curve
//
//     P(n) = P_inf * n / (n + n_half)
//
// (Hockney's n-1/2 parameterization): vector machines like the J90 have a
// large n_half (long vectors needed to approach peak), cache-based
// workstations a small one (their curves look flat, as the paper observes
// for the SPARC Locals in Figure 3).
#pragma once

namespace ninf::machine {

/// Hockney-style rate curve, flops/second as a function of problem size.
class PerfModel {
 public:
  constexpr PerfModel() = default;
  constexpr PerfModel(double p_inf_flops, double n_half)
      : p_inf_(p_inf_flops), n_half_(n_half) {}

  /// Asymptotic rate (flops/s).
  constexpr double peak() const { return p_inf_; }
  /// Problem size achieving half of peak.
  constexpr double nHalf() const { return n_half_; }

  /// Rate at problem size n (flops/s); n <= 0 returns a vanishing rate.
  constexpr double rateAt(double n) const {
    return n > 0 ? p_inf_ * n / (n + n_half_) : p_inf_ / (1.0 + n_half_);
  }

 private:
  double p_inf_ = 1e6;
  double n_half_ = 1.0;
};

}  // namespace ninf::machine
