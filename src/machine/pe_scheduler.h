// Variable-width PE scheduling for MPP servers (paper, section 5.3).
//
// "As processor numbers increase ... simple FCFS scheduling may not be
//  the most effective scheduling policy, causing many processors to
//  become idle.  To overcome this drawback, we could employ more
//  suitable algorithms such as Fit Processors First Served (FPFS) or
//  Fit Processors Most Processors First Served (FPMPFS)."
//
// A PeScheduler owns P processing elements; jobs request a width (PE
// count) and a duration.  The admission policy decides which queued job
// starts when PEs free up:
//   * Fcfs    — strict order; a wide job at the head blocks everything.
//   * Fpfs    — scan the queue in arrival order, admit every job that
//               fits the currently free PEs (first fit, skips blockers).
//   * Fpmpfs  — among the fitting jobs admit the widest first, packing
//               the machine tighter at the cost of narrow-job latency.
#pragma once

#include <coroutine>
#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "simcore/simulation.h"

namespace ninf::machine {

enum class AdmissionPolicy { Fcfs, Fpfs, Fpmpfs };

const char* admissionPolicyName(AdmissionPolicy p);

class PeScheduler {
 public:
  PeScheduler(simcore::Simulation& sim, std::int64_t pes,
              AdmissionPolicy policy);

  std::int64_t pes() const { return pes_; }
  AdmissionPolicy policy() const { return policy_; }

  /// Awaitable: occupy `width` PEs for `seconds`, queueing per policy.
  auto run(std::int64_t width, double seconds) {
    struct Awaiter {
      PeScheduler& sched;
      std::int64_t width;
      double seconds;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        sched.enqueue(width, seconds, h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, width, seconds};
  }

  std::int64_t busyPes() const { return pes_ - free_; }
  std::size_t queueLength() const { return queue_.size(); }
  std::uint64_t completed() const { return completed_; }

  /// Time-averaged fraction of PEs busy, percent.
  double utilizationPercent();

 private:
  struct Waiting {
    std::int64_t width;
    double seconds;
    std::uint64_t seq;
    std::coroutine_handle<> handle;
  };

  void enqueue(std::int64_t width, double seconds,
               std::coroutine_handle<> h);
  void pump();
  void admit(const Waiting& job);
  void sample();

  simcore::Simulation& sim_;
  std::int64_t pes_;
  std::int64_t free_;
  AdmissionPolicy policy_;
  std::vector<Waiting> queue_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t completed_ = 0;
  ninf::TimeWeightedStats utilization_;
};

}  // namespace ninf::machine
