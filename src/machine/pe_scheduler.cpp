#include "machine/pe_scheduler.h"

#include <algorithm>

#include "common/error.h"

namespace ninf::machine {

const char* admissionPolicyName(AdmissionPolicy p) {
  switch (p) {
    case AdmissionPolicy::Fcfs: return "FCFS";
    case AdmissionPolicy::Fpfs: return "FPFS";
    case AdmissionPolicy::Fpmpfs: return "FPMPFS";
  }
  return "?";
}

PeScheduler::PeScheduler(simcore::Simulation& sim, std::int64_t pes,
                         AdmissionPolicy policy)
    : sim_(sim), pes_(pes), free_(pes), policy_(policy) {
  NINF_REQUIRE(pes > 0, "scheduler needs at least one PE");
}

void PeScheduler::sample() {
  utilization_.update(sim_.now(),
                      static_cast<double>(busyPes()) /
                          static_cast<double>(pes_));
}

void PeScheduler::enqueue(std::int64_t width, double seconds,
                          std::coroutine_handle<> h) {
  NINF_REQUIRE(width >= 1 && width <= pes_, "job width exceeds machine");
  NINF_REQUIRE(seconds >= 0, "negative job duration");
  queue_.push_back({width, seconds, next_seq_++, h});
  pump();
}

void PeScheduler::admit(const Waiting& job) {
  free_ -= job.width;
  sample();
  sim_.schedule(job.seconds, [this, width = job.width, h = job.handle] {
    free_ += width;
    ++completed_;
    sample();
    pump();
    sim_.schedule(0.0, [h] { h.resume(); });
  });
}

void PeScheduler::pump() {
  for (;;) {
    if (queue_.empty() || free_ == 0) break;
    std::size_t pick = queue_.size();
    switch (policy_) {
      case AdmissionPolicy::Fcfs:
        // Strict order: only the head may start.
        if (queue_.front().width <= free_) pick = 0;
        break;
      case AdmissionPolicy::Fpfs:
        // First (oldest) job that fits the free PEs.
        for (std::size_t i = 0; i < queue_.size(); ++i) {
          if (queue_[i].width <= free_) {
            pick = i;
            break;
          }
        }
        break;
      case AdmissionPolicy::Fpmpfs:
        // Widest fitting job; arrival order breaks ties.
        for (std::size_t i = 0; i < queue_.size(); ++i) {
          if (queue_[i].width > free_) continue;
          if (pick == queue_.size() ||
              queue_[i].width > queue_[pick].width) {
            pick = i;
          }
        }
        break;
    }
    if (pick == queue_.size()) break;  // nothing fits
    const Waiting job = queue_[pick];
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(pick));
    admit(job);
  }
}

double PeScheduler::utilizationPercent() {
  return utilization_.average(sim_.now()) * 100.0;
}

}  // namespace ninf::machine
