#include "machine/calibration.h"

namespace ninf::machine::calibration {

MachineSpec j90() {
  MachineSpec spec;
  spec.name = "Cray J90 (ETL)";
  spec.pes = 4;
  spec.per_pe = PerfModel(2.0e8, 130.0);        // ~165 Mflops at n=600
  spec.full_machine = PerfModel(1.0e9, 1130.0); // ~600 Mflops at n=1600
  // Table 8: one task-parallel EP call sustains 0.167 Mops on one PE.
  spec.ep_ops_per_sec = 0.168e6;
  // Vector machines run TCP + XDR on the scalar units: roughly one
  // PE-second per 3 MB moved (solved from the Table 3/4 c=16 rows where
  // the paper reports ~100% CPU with light compute).  Marshalling is
  // pipelined with the wire transfer, so this is a CPU cost, not extra
  // latency, for single clients.
  spec.xdr_bytes_per_sec = 2.5 * kMBps;
  return spec;
}

MachineSpec sparcSmp() {
  MachineSpec spec;
  spec.name = "SuperSPARC SMP";
  spec.pes = 16;
  spec.per_pe = PerfModel(5.0e6, 60.0);  // ~4.7 Mflops in-flight (Table 5)
  spec.full_machine = PerfModel(6.0e7, 400.0);
  spec.ep_ops_per_sec = 0.05e6;
  spec.xdr_bytes_per_sec = 8.0 * kMBps;
  return spec;
}

MachineSpec ultraServer() {
  MachineSpec spec;
  spec.name = "UltraSPARC";
  spec.pes = 1;
  spec.per_pe = PerfModel(3.6e7, 50.0);
  spec.full_machine = spec.per_pe;
  spec.ep_ops_per_sec = 0.10e6;
  spec.xdr_bytes_per_sec = 15.0 * kMBps;
  return spec;
}

MachineSpec alphaServer() {
  MachineSpec spec;
  spec.name = "DEC Alpha";
  spec.pes = 1;
  spec.per_pe = PerfModel(1.5e8, 100.0);
  spec.full_machine = spec.per_pe;
  spec.ep_ops_per_sec = 0.30e6;
  spec.xdr_bytes_per_sec = 25.0 * kMBps;
  return spec;
}

MachineSpec alphaClusterNode() {
  MachineSpec spec = alphaServer();
  spec.name = "Alpha cluster node";
  // Figure 11 EP rate: a single node finishes the 2^24-pair "sample"
  // class in tens of seconds.
  spec.ep_ops_per_sec = 2.0e6;
  return spec;
}

PerfModel superSparcLocal() { return PerfModel(1.05e7, 50.0); }
PerfModel ultraSparcLocal() { return PerfModel(3.6e7, 50.0); }
PerfModel alphaLocalOptimized() { return PerfModel(1.5e8, 100.0); }
PerfModel alphaLocalStandard() { return PerfModel(9.5e7, 60.0); }

}  // namespace ninf::machine::calibration
