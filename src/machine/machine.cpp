#include "machine/machine.h"

#include <algorithm>
#include <limits>

#include "common/error.h"

namespace ninf::machine {

namespace {
constexpr double kEpsilonFlops = 1e-3;
}

SimMachine::SimMachine(simcore::Simulation& sim, MachineSpec spec)
    : sim_(sim), spec_(std::move(spec)) {
  NINF_REQUIRE(spec_.pes >= 1, "machine needs at least one PE");
}

void SimMachine::sampleMetrics() {
  const double now = sim_.now();
  const double p = static_cast<double>(spec_.pes);
  double busy = static_cast<double>(shared_.size()) +
                static_cast<double>(busy_tasks_);
  if (exclusive_running_) busy += p;
  utilization_.update(now, std::min(busy, p) / p);

  load_.update(now, instantaneousLoad());
}

void SimMachine::startShared(double flops, double rate_full, bool in_load,
                             std::coroutine_handle<> h) {
  NINF_REQUIRE(rate_full > 0, "shared job needs a positive rate");
  auto task = std::make_unique<SharedTask>();
  task->remaining = flops;
  task->rate_full = rate_full;
  task->in_load = in_load;
  task->waiter = h;
  shared_.push_back(std::move(task));
  updateShared();
}

void SimMachine::updateShared() {
  const double now = sim_.now();
  const double dt = now - last_advance_;
  if (dt > 0) {
    for (auto& t : shared_) {
      t->remaining -= std::min(t->remaining, t->rate * dt);
    }
  }
  last_advance_ = now;

  std::vector<std::coroutine_handle<>> finished;
  for (auto it = shared_.begin(); it != shared_.end();) {
    if ((*it)->remaining <= kEpsilonFlops) {
      finished.push_back((*it)->waiter);
      it = shared_.erase(it);
      ++completed_;
    } else {
      ++it;
    }
  }
  for (auto h : finished) {
    sim_.schedule(0.0, [h] { h.resume(); });
  }

  // Processor sharing: k jobs over P PEs run at min(1, P/k) of full speed.
  // An exclusive job squeezes shared work out entirely while it runs
  // (it owns every PE), which matches serialized fork&exec behaviour.
  const std::size_t k = shared_.size();
  if (k > 0) {
    double share =
        exclusive_running_
            ? 0.0
            : std::min(1.0, static_cast<double>(spec_.pes) /
                                static_cast<double>(k));
    // Avoid absolute starvation under an exclusive job: the OS still
    // trickles cycles to runnable processes (1% floor).
    share = std::max(share, 0.01);
    for (auto& t : shared_) t->rate = t->rate_full * share;
  }

  sampleMetrics();

  if (shared_.empty()) {
    next_shared_completion_.cancel();
    return;
  }
  double horizon = std::numeric_limits<double>::infinity();
  for (const auto& t : shared_) {
    horizon = std::min(horizon, t->remaining / t->rate);
  }
  next_shared_completion_.cancel();
  next_shared_completion_ = sim_.schedule(horizon, [this] { updateShared(); });
}

void SimMachine::startExclusive(double flops, double rate, bool in_load,
                                std::coroutine_handle<> h) {
  NINF_REQUIRE(rate > 0, "exclusive job needs a positive rate");
  exclusive_queue_.push_back({flops, rate, in_load, h});
  sampleMetrics();
  pumpExclusive();
}

void SimMachine::pumpExclusive() {
  if (exclusive_running_ || exclusive_queue_.empty()) return;
  const ExclusiveJob job = exclusive_queue_.front();
  exclusive_queue_.erase(exclusive_queue_.begin());
  exclusive_running_ = true;
  // A data-parallel job spawns P runnable threads; when it comes from an
  // attached executable one of them is the process already counted.
  exclusive_load_contribution_ =
      static_cast<double>(spec_.pes) - (job.in_load ? 0.0 : 1.0);
  updateShared();  // shared jobs slow down while we own the machine
  const double duration = job.flops / job.rate;
  sim_.schedule(duration, [this, h = job.waiter] {
    exclusive_running_ = false;
    ++completed_;
    updateShared();  // shared jobs speed back up
    pumpExclusive();
    sim_.schedule(0.0, [h] { h.resume(); });
  });
}

void SimMachine::execAttached() {
  ++attached_execs_;
  sampleMetrics();
}

void SimMachine::execDetached() {
  NINF_REQUIRE(attached_execs_ > 0, "detach without attach");
  --attached_execs_;
  sampleMetrics();
}

void SimMachine::startBusy(double seconds, std::coroutine_handle<> h) {
  ++busy_tasks_;
  sampleMetrics();
  sim_.schedule(seconds, [this, h] {
    --busy_tasks_;
    sampleMetrics();
    sim_.schedule(0.0, [h] { h.resume(); });
  });
}

double SimMachine::cpuUtilizationPercent() {
  return utilization_.average(sim_.now()) * 100.0;
}

double SimMachine::loadAverage() { return load_.average(sim_.now()); }

double SimMachine::instantaneousLoad() const {
  double load = static_cast<double>(attached_execs_);
  for (const auto& t : shared_) {
    if (t->in_load) load += 1.0;
  }
  for (const auto& j : exclusive_queue_) {
    if (j.in_load) load += 1.0;
  }
  if (exclusive_running_) load += exclusive_load_contribution_;
  return load;
}

}  // namespace ninf::machine
