// Simulated computational server machine: P processing elements with
// task-parallel (processor-sharing) and data-parallel (whole-machine
// FCFS) execution, plus the utilization / load-average accounting the
// paper reports in every multi-client table.
//
// Execution styles (paper, sections 1 and 4.1):
//  * computeShared    — "distribute the computing resources amongst
//    different client requests in a task parallel manner": each job takes
//    one PE; when more jobs than PEs are runnable the pool degrades
//    gracefully into processor sharing (Unix timesharing of fork&exec'd
//    executables).
//  * computeExclusive — "allocate all the processors to each client task
//    in a data parallel manner in sequence": FIFO, one job at a time,
//    running at the machine's full parallel rate.
//  * busyWork         — auxiliary CPU time (XDR marshalling of arguments)
//    that contributes to utilization but models no PE contention.
#pragma once

#include <coroutine>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.h"
#include "machine/perf_model.h"
#include "simcore/simulation.h"

namespace ninf::machine {

/// Static description of a server or client machine.
struct MachineSpec {
  std::string name;
  std::size_t pes = 1;          // processing elements
  PerfModel per_pe;             // Linpack rate of one PE
  PerfModel full_machine;       // Linpack rate with all PEs (optimized lib)
  double ep_ops_per_sec = 1e6;  // EP kernel rate of one PE
  /// CPU cost of XDR marshalling, bytes/second (0 = free).
  double xdr_bytes_per_sec = 0.0;
};

class SimMachine {
 public:
  SimMachine(simcore::Simulation& sim, MachineSpec spec);

  const MachineSpec& spec() const { return spec_; }

  /// Task-parallel job: `flops` of work at up to `rate_full` flops/s on
  /// one PE; actual rate shrinks to rate_full * P/k when k > P jobs run.
  /// `in_load` is false when the caller is an attached executable (its
  /// residency already counts toward the load average).
  auto computeShared(double flops, double rate_full, bool in_load = true) {
    struct Awaiter {
      SimMachine& m;
      double flops, rate;
      bool in_load;
      bool await_ready() const noexcept { return flops <= 0; }
      void await_suspend(std::coroutine_handle<> h) {
        m.startShared(flops, rate, in_load, h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, flops, rate_full, in_load};
  }

  /// Data-parallel job: whole machine, FIFO, at `rate_full` flops/s.
  auto computeExclusive(double flops, double rate_full,
                        bool in_load = true) {
    struct Awaiter {
      SimMachine& m;
      double flops, rate;
      bool in_load;
      bool await_ready() const noexcept { return flops <= 0; }
      void await_suspend(std::coroutine_handle<> h) {
        m.startExclusive(flops, rate, in_load, h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, flops, rate_full, in_load};
  }

  /// One PE-second per second of auxiliary CPU work (marshalling);
  /// contributes to utilization, does not contend.
  auto busyWork(double seconds) {
    struct Awaiter {
      SimMachine& m;
      double seconds;
      bool await_ready() const noexcept { return seconds <= 0; }
      void await_suspend(std::coroutine_handle<> h) {
        m.startBusy(seconds, h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, seconds};
  }

  /// A Ninf executable process became resident (fork&exec through result
  /// return).  Resident processes count toward the load average — Unix
  /// load includes processes waiting on I/O — but not CPU utilization.
  void execAttached();
  void execDetached();

  /// Marshalling time for `bytes` of argument data (0 when cost not set).
  double xdrSeconds(double bytes) const {
    return spec_.xdr_bytes_per_sec > 0 ? bytes / spec_.xdr_bytes_per_sec
                                       : 0.0;
  }

  // ------------------------------------------------------------ metrics

  /// Time-averaged fraction of PEs busy, in percent (paper's "CPU
  /// Utilization" column).
  double cpuUtilizationPercent();
  /// Time-averaged runnable/resident task count (paper's "Load Average"
  /// column): resident executables count 1 each; an exclusive job adds
  /// P-1 extra while running (its parallel threads); queued exclusive
  /// jobs count 1 each.  Compute tasks not wrapped in an attached
  /// executable (bare computeShared) count 1 each.
  double loadAverage();
  double maxLoad() const { return load_.maxValue(); }
  std::uint64_t jobsCompleted() const { return completed_; }

  /// Instantaneous runnable/resident count (what a NetSolve-style agent
  /// would see when polling right now).
  double instantaneousLoad() const;

 private:
  struct SharedTask {
    double remaining;   // flops
    double rate_full;   // flops/s at full allocation
    double rate = 0.0;  // current allocated rate
    bool in_load = true;
    std::coroutine_handle<> waiter;
  };

  struct ExclusiveJob {
    double flops;
    double rate;
    bool in_load = true;
    std::coroutine_handle<> waiter;
  };

  void startShared(double flops, double rate_full, bool in_load,
                   std::coroutine_handle<> h);
  void startExclusive(double flops, double rate, bool in_load,
                      std::coroutine_handle<> h);
  void startBusy(double seconds, std::coroutine_handle<> h);
  /// Advance fluid shared tasks, settle completions, reschedule.
  void updateShared();
  void pumpExclusive();
  void sampleMetrics();

  simcore::Simulation& sim_;
  MachineSpec spec_;

  std::vector<std::unique_ptr<SharedTask>> shared_;
  double last_advance_ = 0.0;
  simcore::EventHandle next_shared_completion_;

  std::vector<ExclusiveJob> exclusive_queue_;
  bool exclusive_running_ = false;
  double exclusive_load_contribution_ = 0.0;  // P or P-1 while running

  std::size_t busy_tasks_ = 0;
  std::size_t attached_execs_ = 0;
  std::uint64_t completed_ = 0;

  ninf::TimeWeightedStats utilization_;  // busy PEs / P
  ninf::TimeWeightedStats load_;
};

}  // namespace ninf::machine
