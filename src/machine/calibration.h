// Calibration constants for the paper's machines and networks.
//
// Every number here is *derived from the paper itself* (see DESIGN.md
// section 6): P_calc curves are solved from the reported client-observed
// Mflops and throughputs using the section 3.1 cost model
//     T = T_comm0 + bytes/B  +  T_comp0 + W(n)/P_calc(n),
// link bandwidths come from the measured FTP throughputs (Table 2 and
// section 4.1), and EP rates from Table 8.
#pragma once

#include "machine/machine.h"

namespace ninf::machine::calibration {

// ------------------------------------------------------------- networks

inline constexpr double kMBps = 1e6;  // the paper's MB/s (decimal)

// Table 2: client-server FTP throughputs in the LAN.
inline constexpr double kFtpSuperToUltra = 4.0 * kMBps;
inline constexpr double kFtpSuperToAlpha = 4.0 * kMBps;
inline constexpr double kFtpSuperToJ90 = 2.8 * kMBps;
inline constexpr double kFtpUltraToAlpha = 7.4 * kMBps;
inline constexpr double kFtpUltraToJ90 = 2.7 * kMBps;
inline constexpr double kFtpAlphaToJ90 = 2.9 * kMBps;

// Section 4.1: Ocha-U <-> ETL WAN path, "approximately 0.17 MB/s".
inline constexpr double kWanOchaToEtl = 0.17 * kMBps;

// LAN propagation latency (campus Ethernet/FDDI, sub-millisecond) and the
// 60 km WAN path of section 4.1 (milliseconds once routers are counted).
inline constexpr double kLanLatency = 0.5e-3;
inline constexpr double kWanLatency = 15e-3;

// The J90's LAN attachment carries more aggregate traffic than one TCP
// stream achieves: per-flow rates are window-limited (FTP measures
// 2.7-2.9 MB/s/stream) while the medium sustains more.  5 MB/s solved
// from the Table 3 c=16 rows (mean per-call throughput 0.86 MB/s with
// ~5.8 concurrent transfers).
inline constexpr double kJ90LanCapacity = 4.0 * kMBps;
/// SPARC SMP LAN attachment (Table 5's throughputs top out ~1.4 MB/s).
inline constexpr double kSmpLanCapacity = 1.5 * kMBps;

/// Multi-site WAN (Figure 9/10): per-site uplinks toward different
/// backbones and the server side's aggregate attachment at ETL.  The
/// attachment is < the sum of uplinks, producing the observed 9-18%
/// (c=1) / 18-44% (c=4) degradation vs. single-site-solo throughput.
inline constexpr double kSiteUplinkOcha = 0.17 * kMBps;
inline constexpr double kSiteUplinkUTokyo = 0.30 * kMBps;
inline constexpr double kSiteUplinkNITech = 0.22 * kMBps;
inline constexpr double kSiteUplinkTITech = 0.26 * kMBps;
inline constexpr double kEtlWanAttachment = 0.55 * kMBps;

// ----------------------------------------------------------- cost model

/// Per-call fixed communication setup (connection + protocol handshake).
inline constexpr double kTComm0Lan = 0.01;
inline constexpr double kTComm0Wan = 0.06;
/// Per-call fixed computation setup (the server's fork & exec).
inline constexpr double kTComp0 = 0.02;

// ------------------------------------------------------------- machines

/// Cray J90 at ETL, 4 PEs.
/// 1-PE curve solved from Table 3 (c=1 rows): ~165 Mflops at n=600,
/// ~184 at n=1400.  4-PE libsci curve solved from Table 4 plus the
/// section 3.2 statement that local Linpack reaches 600 Mflops at n=1600.
MachineSpec j90();

/// SuperSPARC SMP server, 16 PEs (Table 5); per-PE rate solved from the
/// c=4 row (~4.7 Mflops per in-flight call).
MachineSpec sparcSmp();

/// UltraSPARC workstation server (Figure 3).
MachineSpec ultraServer();

/// DEC Alpha workstation server (Figures 3-4).
MachineSpec alphaServer();

/// One node of the 32-node Alpha cluster used for Figure 11.
MachineSpec alphaClusterNode();

// Client Local Linpack curves (the horizontal baselines of Figures 3-4).
PerfModel superSparcLocal();
PerfModel ultraSparcLocal();
PerfModel alphaLocalOptimized();  // blocked glub4/gslv4
PerfModel alphaLocalStandard();   // unblocked reference routine

/// Metaserver per-Ninf_call scheduling overhead (Figure 11: the Java
/// prototype's dispatch cost, visible at small problem sizes).
inline constexpr double kMetaserverOverheadPerCall = 0.08;

}  // namespace ninf::machine::calibration
