// Joinable coroutine task for the simulator.
//
// Unlike simcore::Process (detached, fire-and-forget), a Task<T> can be
// co_awaited by another coroutine: the awaiter suspends until the task's
// body finishes and receives its return value (or rethrown exception).
// Tasks start eagerly — creating one begins executing immediately up to
// the first suspension point, which is the natural semantics for
// simulation activities ("the transfer starts now").
//
// Lifetime: the coroutine frame is destroyed by ~Task.  A `co_await
// someTask()` full-expression keeps the temporary alive across the
// suspension, so the idiom `T r = co_await obj.activity();` is safe.
#pragma once

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

namespace ninf::simcore {

template <typename T>
class Task;

namespace task_detail {

template <typename Promise>
struct FinalAwaiter {
  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(
      std::coroutine_handle<Promise> h) noexcept {
    auto continuation = h.promise().continuation;
    return continuation ? continuation : std::noop_coroutine();
  }
  void await_resume() const noexcept {}
};

struct PromiseBase {
  std::coroutine_handle<> continuation;
  std::exception_ptr error;

  std::suspend_never initial_suspend() noexcept { return {}; }
  void unhandled_exception() noexcept { error = std::current_exception(); }
};

}  // namespace task_detail

template <typename T = void>
class [[nodiscard]] Task {
 public:
  struct promise_type : task_detail::PromiseBase {
    std::optional<T> value;

    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    task_detail::FinalAwaiter<promise_type> final_suspend() noexcept {
      return {};
    }
    void return_value(T v) { value.emplace(std::move(v)); }
  };

  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  Task(Task&& other) noexcept
      : handle_(std::exchange(other.handle_, nullptr)) {}
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  Task& operator=(Task&&) = delete;
  ~Task() {
    if (handle_) handle_.destroy();
  }

  bool done() const { return handle_.done(); }

  auto operator co_await() {
    struct Awaiter {
      std::coroutine_handle<promise_type> handle;
      bool await_ready() const noexcept { return handle.done(); }
      void await_suspend(std::coroutine_handle<> h) noexcept {
        handle.promise().continuation = h;
      }
      T await_resume() {
        auto& p = handle.promise();
        if (p.error) std::rethrow_exception(p.error);
        return std::move(*p.value);
      }
    };
    return Awaiter{handle_};
  }

 private:
  std::coroutine_handle<promise_type> handle_;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : task_detail::PromiseBase {
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    task_detail::FinalAwaiter<promise_type> final_suspend() noexcept {
      return {};
    }
    void return_void() noexcept {}
  };

  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  Task(Task&& other) noexcept
      : handle_(std::exchange(other.handle_, nullptr)) {}
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  Task& operator=(Task&&) = delete;
  ~Task() {
    if (handle_) handle_.destroy();
  }

  bool done() const { return handle_.done(); }

  auto operator co_await() {
    struct Awaiter {
      std::coroutine_handle<promise_type> handle;
      bool await_ready() const noexcept { return handle.done(); }
      void await_suspend(std::coroutine_handle<> h) noexcept {
        handle.promise().continuation = h;
      }
      void await_resume() {
        auto& p = handle.promise();
        if (p.error) std::rethrow_exception(p.error);
      }
    };
    return Awaiter{handle_};
  }

 private:
  std::coroutine_handle<promise_type> handle_;
};

}  // namespace ninf::simcore
