#include "simcore/simulation.h"

#include <limits>

namespace ninf::simcore {

namespace {
// Exceptions escaping a detached process are parked here (single-threaded
// simulation) and rethrown by the next Simulation::run() step.
thread_local std::exception_ptr g_process_error;
}  // namespace

void Process::promise_type::unhandled_exception() {
  if (!g_process_error) g_process_error = std::current_exception();
}

EventHandle Simulation::schedule(double delay, std::function<void()> fn) {
  NINF_REQUIRE(delay >= 0.0, "cannot schedule into the past");
  return scheduleAt(now_ + delay, std::move(fn));
}

EventHandle Simulation::scheduleAt(double time, std::function<void()> fn) {
  NINF_REQUIRE(time >= now_, "cannot schedule into the past");
  NINF_REQUIRE(fn != nullptr, "null event callback");
  auto ev = std::make_shared<detail::Event>();
  ev->time = time;
  ev->seq = next_seq_++;
  ev->fn = std::move(fn);
  queue_.push(ev);
  return EventHandle(ev);
}

void Simulation::run() {
  runUntil(std::numeric_limits<double>::infinity());
}

void Simulation::runUntil(double t_end) {
  auto rethrowPending = [this] {
    if (g_process_error) {
      error_ = g_process_error;
      g_process_error = nullptr;
    }
    if (error_) {
      auto e = error_;
      error_ = nullptr;
      std::rethrow_exception(e);
    }
  };
  rethrowPending();  // a process may have failed before run()
  while (!queue_.empty()) {
    auto ev = queue_.top();
    if (ev->time > t_end) break;
    queue_.pop();
    if (ev->cancelled) continue;
    now_ = ev->time;
    ++executed_;
    ev->fn();
    rethrowPending();
  }
}

void SimEvent::trigger() {
  if (triggered_) return;
  triggered_ = true;
  auto waiters = std::move(waiters_);
  waiters_.clear();
  for (auto h : waiters) {
    sim_.schedule(0.0, [h] { h.resume(); });
  }
}

void SimResource::release(std::int64_t units) {
  NINF_REQUIRE(units >= 1, "release needs positive units");
  free_ += units;
  NINF_REQUIRE(free_ <= capacity_, "release exceeds capacity");
  pump();
}

void SimResource::pump() {
  // Strict FIFO: only admit from the head; a wide request at the head
  // blocks narrower ones behind it (no starvation of data-parallel jobs).
  while (!waiters_.empty() && free_ >= waiters_.front().units) {
    const Waiter w = waiters_.front();
    waiters_.erase(waiters_.begin());
    free_ -= w.units;
    sim_.schedule(0.0, [h = w.handle] { h.resume(); });
  }
}

}  // namespace ninf::simcore
