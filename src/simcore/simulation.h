// Discrete-event simulation kernel with virtual time.
//
// The paper closes by proposing "a global computing simulator for Ninf, on
// which we could readily test different client network topologies under
// various communication and other parameters" (section 7).  This kernel is
// that simulator's core: a priority queue of timestamped events plus C++20
// coroutine "processes" so that client/server behaviour reads as straight-
// line code (`co_await sim.delay(3.0); co_await net.transfer(...)`).
//
// Single-threaded by design: virtual time makes runs deterministic and
// reproducible, which the paper explicitly could not achieve on the real
// Internet.
#pragma once

#include <coroutine>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/error.h"

namespace ninf::simcore {

class Simulation;

/// Eager, detached coroutine process.  Starting one registers it with the
/// simulation; its frame lives until the body finishes.  Exceptions
/// escaping a process abort the simulation and rethrow from run().
class Process {
 public:
  struct promise_type {
    Simulation* sim = nullptr;

    Process get_return_object() {
      return Process{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception();
  };

  explicit Process(std::coroutine_handle<promise_type> h) : handle_(h) {}

 private:
  std::coroutine_handle<promise_type> handle_;
};

namespace detail {
struct Event {
  double time = 0.0;
  std::uint64_t seq = 0;
  std::function<void()> fn;
  bool cancelled = false;
};

struct EventLater {
  bool operator()(const std::shared_ptr<Event>& a,
                  const std::shared_ptr<Event>& b) const {
    if (a->time != b->time) return a->time > b->time;
    return a->seq > b->seq;  // FIFO among simultaneous events
  }
};
}  // namespace detail

/// Cancellable handle to a scheduled event.
class EventHandle {
 public:
  EventHandle() = default;
  explicit EventHandle(std::shared_ptr<detail::Event> ev)
      : event_(std::move(ev)) {}

  void cancel() {
    if (auto ev = event_.lock()) ev->cancelled = true;
  }
  bool pending() const {
    auto ev = event_.lock();
    return ev && !ev->cancelled;
  }

 private:
  std::weak_ptr<detail::Event> event_;
};

class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current virtual time, seconds.
  double now() const { return now_; }

  /// Schedule a callback `delay` seconds from now (delay >= 0).
  EventHandle schedule(double delay, std::function<void()> fn);
  /// Schedule at an absolute virtual time >= now().
  EventHandle scheduleAt(double time, std::function<void()> fn);

  /// Run until the event queue drains.  Rethrows the first exception that
  /// escaped a process.
  void run();

  /// Run until the queue drains or virtual time would exceed `t_end`
  /// (events after t_end stay queued; now() ends at min(last event, t_end)).
  void runUntil(double t_end);

  /// Events executed so far (determinism checks in tests).
  std::uint64_t eventsExecuted() const { return executed_; }

  // ------------------------------------------------------ coroutine API

  /// Awaitable that resumes the process after `dt` virtual seconds.
  auto delay(double dt) {
    struct Awaiter {
      Simulation& sim;
      double dt;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        sim.schedule(dt, [h] { h.resume(); });
      }
      void await_resume() const noexcept {}
    };
    NINF_REQUIRE(dt >= 0.0, "cannot delay into the past");
    return Awaiter{*this, dt};
  }

  void recordError(std::exception_ptr error) {
    if (!error_) error_ = error;
  }

 private:
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<std::shared_ptr<detail::Event>,
                      std::vector<std::shared_ptr<detail::Event>>,
                      detail::EventLater>
      queue_;
  std::exception_ptr error_;
};

/// One-shot broadcast event: processes await it; trigger() resumes all of
/// them (at the current time, in FIFO order).  Await after trigger
/// completes immediately.
class SimEvent {
 public:
  explicit SimEvent(Simulation& sim) : sim_(sim) {}

  bool triggered() const { return triggered_; }

  void trigger();

  auto wait() {
    struct Awaiter {
      SimEvent& ev;
      bool await_ready() const noexcept { return ev.triggered_; }
      void await_suspend(std::coroutine_handle<> h) {
        ev.waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

 private:
  Simulation& sim_;
  bool triggered_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Counted resource with FIFO admission (PEs of a machine, a server's
/// worker slots).  acquire(k) suspends until k units are free AND every
/// earlier request has been satisfied — strict FIFO, no barging, matching
/// the paper's FCFS server.
class SimResource {
 public:
  SimResource(Simulation& sim, std::int64_t capacity)
      : sim_(sim), free_(capacity), capacity_(capacity) {
    NINF_REQUIRE(capacity > 0, "resource capacity must be positive");
  }

  std::int64_t capacity() const { return capacity_; }
  std::int64_t inUse() const { return capacity_ - free_; }
  std::size_t queueLength() const { return waiters_.size(); }

  auto acquire(std::int64_t units = 1) {
    struct Awaiter {
      SimResource& res;
      std::int64_t units;
      // The grant is accounted exactly once: immediately when the resource
      // is free (await_ready), or inside pump() when a waiter is admitted.
      bool await_ready() noexcept {
        if (res.waiters_.empty() && res.free_ >= units) {
          res.free_ -= units;
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        res.waiters_.push_back({h, units});
      }
      void await_resume() const noexcept {}
    };
    NINF_REQUIRE(units >= 1 && units <= capacity_,
                 "acquire exceeds capacity");
    return Awaiter{*this, units};
  }

  void release(std::int64_t units = 1);

 private:
  struct Waiter {
    std::coroutine_handle<> handle;
    std::int64_t units;
  };

  void pump();

  Simulation& sim_;
  std::int64_t free_;
  std::int64_t capacity_;
  std::vector<Waiter> waiters_;
};

}  // namespace ninf::simcore
