#include "simworld/sim_server.h"

#include <cmath>

#include "common/error.h"
#include "numlib/matrix.h"

namespace ninf::simworld {

const char* execModeName(ExecMode m) {
  switch (m) {
    case ExecMode::TaskParallel: return "task-parallel (1-PE)";
    case ExecMode::DataParallel: return "data-parallel (all-PE)";
  }
  return "?";
}

namespace {

simcore::Task<> transferTask(simnet::Network& net, simnet::NodeId src,
                             simnet::NodeId dst, double bytes, double cap) {
  co_await net.transfer(src, dst, bytes, cap);
}

simcore::Task<> marshalTask(machine::SimMachine& machine, double seconds) {
  co_await machine.busyWork(seconds);
}

}  // namespace

simcore::Task<CallRecord> SimNinfServer::call(simnet::NodeId client,
                                              SimJob job, SplitMix64& rng) {
  CallRecord rec;
  rec.work = job.work;
  rec.bytes_total = job.in_bytes + job.out_bytes;
  rec.submit = sim_.now();

  // Connect: protocol setup plus the occasional SYN retransmission.
  double setup = config_.t_comm0;
  if (rng.nextBool(config_.syn_retry_prob)) setup += config_.syn_retry_delay;
  co_await sim_.delay(setup);
  rec.enqueue = sim_.now();

  // Optional admission gate (section 5.1): hold new calls while
  // max_concurrent_calls are already in service.
  if (admission_) co_await admission_->acquire();

  // fork & exec of the Ninf executable (FCFS acceptance: immediate).
  co_await sim_.delay(config_.t_comp0);
  rec.dequeue = sim_.now();
  machine_.execAttached();

  // The executable receives the arguments.  XDR unmarshalling is
  // pipelined with the network flow (paper, section 3.2: "marshalling
  // ... and communication in-between occur in parallel"), so it consumes
  // server CPU without adding latency unless it is itself the
  // bottleneck.
  double comm_start = sim_.now();
  {
    auto flow =
        transferTask(net_, client, node_, job.in_bytes, config_.flow_cap);
    auto marshal =
        marshalTask(machine_, machine_.xdrSeconds(job.in_bytes));
    co_await flow;
    co_await marshal;
  }
  rec.comm_seconds += sim_.now() - comm_start;

  // Compute.
  if (config_.mode == ExecMode::DataParallel) {
    co_await machine_.computeExclusive(job.work, job.rate_full,
                                       /*in_load=*/false);
  } else {
    co_await machine_.computeShared(job.work, job.rate_full,
                                    /*in_load=*/false);
  }
  rec.complete = sim_.now();

  // Marshal and return the results (same pipelining on the way out).
  comm_start = sim_.now();
  {
    auto flow =
        transferTask(net_, node_, client, job.out_bytes, config_.flow_cap);
    auto marshal =
        marshalTask(machine_, machine_.xdrSeconds(job.out_bytes));
    co_await flow;
    co_await marshal;
  }
  rec.comm_seconds += sim_.now() - comm_start;

  machine_.execDetached();
  if (admission_) admission_->release();
  rec.end = sim_.now();
  co_return rec;
}

SimJob linpackJob(std::size_t n, double rate_full) {
  NINF_REQUIRE(n > 0, "linpack size must be positive");
  SimJob job;
  const double dn = static_cast<double>(n);
  job.work = numlib::linpackFlops(n);
  job.rate_full = rate_full;
  // 8n^2 + 20n total (section 3.1): A (8n^2) + b (8n) + headers inbound,
  // x (8n) plus headers outbound.
  job.in_bytes = 8.0 * dn * dn + 10.0 * dn;
  job.out_bytes = 10.0 * dn;
  return job;
}

SimJob epJob(int log2_pairs, double ops_per_sec) {
  SimJob job;
  job.work = std::ldexp(1.0, log2_pairs + 1);
  job.rate_full = ops_per_sec;
  // O(1) communication: request scalars in, sums and ten annulus tallies out.
  job.in_bytes = 64.0;
  job.out_bytes = 160.0;
  return job;
}

}  // namespace ninf::simworld
