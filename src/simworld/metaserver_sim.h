// Simulated metaserver EP fan-out (Figure 11).
//
// A client wraps p Ninf_calls in a transaction; the metaserver (a Java
// prototype in the paper) dispatches them task-parallel onto p Alpha
// cluster nodes.  Dispatch is serialized and costs `overhead` seconds per
// call, which is why the small "sample" class (2^24 pairs) slows down at
// large p while classes A (2^28) and B (2^30) speed up almost linearly.
#pragma once

#include <cstdint>

namespace ninf::simworld {

struct MetaserverEpConfig {
  std::size_t procs = 1;     // cluster nodes used (1..32)
  int log2_pairs = 24;       // sample = 24, class A = 28, class B = 30
  double overhead = 0.08;    // metaserver per-call dispatch cost, seconds
  std::uint64_t seed = 11;
};

struct MetaserverEpResult {
  double elapsed = 0.0;     // transaction wall time, virtual seconds
  double total_mops = 0.0;  // 2^(n+1) ops / elapsed / 1e6
};

MetaserverEpResult runMetaserverEp(const MetaserverEpConfig& config);

}  // namespace ninf::simworld
