// Metaserver scheduling-policy ablation on the simulator.
//
// The paper's scheduling argument (sections 4.2.2, 5.1, 6): NetSolve-style
// load-average balancing "might partially work for LAN situations, but
// would not scale to WAN settings" — for communication-intensive calls
// the right signal is achievable bandwidth, not server load.
//
// Scenario: clients sit on a campus LAN.  Two servers export linpack:
//   * a local workstation  — slow P_calc, fast path (LAN, 2.9 MB/s);
//   * the remote J90       — fast P_calc, slow path (WAN, 0.17 MB/s).
// A simulated metaserver routes each call by policy; client-observed
// Mflops and the per-server call mix are reported.
#pragma once

#include <array>
#include <cstdint>

#include "simworld/call_record.h"

namespace ninf::simworld {

enum class SimPolicy { RoundRobin, LeastLoad, BandwidthAware };

const char* simPolicyName(SimPolicy p);

struct SchedulerAblationConfig {
  SimPolicy policy = SimPolicy::LeastLoad;
  std::size_t clients = 8;
  std::size_t n = 800;        // Linpack matrix size
  double interval = 3.0;      // section 4.1 workload
  double probability = 0.5;
  double duration = 600.0;
  std::uint64_t seed = 1997;
};

struct SchedulerAblationResult {
  RowStats row;
  /// Calls routed to [local workstation, remote J90].
  std::array<std::size_t, 2> calls_per_server{};
};

SchedulerAblationResult runSchedulerAblation(
    const SchedulerAblationConfig& config);

}  // namespace ninf::simworld
