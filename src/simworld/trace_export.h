// Export simulated CallRecords as tracer spans on obs::kLaneSim, using
// the same phase vocabulary as the real client, so one trace file (and
// tools/ninf_trace_dump) can hold a real run next to its simulated
// counterpart.  Virtual seconds map to trace microseconds 1:1.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/trace.h"
#include "simworld/call_record.h"

namespace ninf::simworld {

/// Build the span decomposition of one simulated call:
///   call        submit  -> end      (root, carries bytes_total)
///   send        submit  -> enqueue  (connect + marshal + argument xfer)
///   queue-wait  enqueue -> dequeue
///   compute     dequeue -> complete
///   recv        complete-> end      (result transfer + unmarshal)
/// `tid` labels the lane row (use the sim client's node id).
std::vector<obs::SpanRecord> callSpans(const CallRecord& rec,
                                       std::uint32_t tid);

/// Emit the decomposition into the global tracer (no-op while the
/// tracer is disabled), for runs captured with --trace.
void recordCallTrace(const CallRecord& rec, std::uint32_t tid);

}  // namespace ninf::simworld
