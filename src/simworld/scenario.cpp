#include "simworld/scenario.h"

#include <memory>

#include "common/error.h"
#include "common/rng.h"
#include "simcore/simulation.h"
#include "simworld/trace_export.h"

namespace ninf::simworld {

namespace cal = machine::calibration;

const char* serverKindName(ServerKind k) {
  switch (k) {
    case ServerKind::J90: return "J90";
    case ServerKind::SparcSmp: return "SPARC SMP";
    case ServerKind::UltraSparc: return "UltraSPARC";
    case ServerKind::Alpha: return "Alpha";
  }
  return "?";
}

const char* clientKindName(ClientKind k) {
  switch (k) {
    case ClientKind::SuperSparc: return "SuperSPARC";
    case ClientKind::UltraSparc: return "UltraSPARC";
    case ClientKind::Alpha: return "Alpha";
  }
  return "?";
}

const char* topologyName(Topology t) {
  switch (t) {
    case Topology::Lan: return "LAN";
    case Topology::SingleSiteWan: return "single-site WAN";
    case Topology::MultiSiteWan: return "multi-site WAN";
  }
  return "?";
}

machine::MachineSpec serverSpec(ServerKind kind) {
  switch (kind) {
    case ServerKind::J90: return cal::j90();
    case ServerKind::SparcSmp: return cal::sparcSmp();
    case ServerKind::UltraSparc: return cal::ultraServer();
    case ServerKind::Alpha: return cal::alphaServer();
  }
  throw Error("bad server kind");
}

double serverLinpackRate(ServerKind kind, ExecMode mode, std::size_t n) {
  const machine::MachineSpec spec = serverSpec(kind);
  const double dn = static_cast<double>(n);
  return mode == ExecMode::DataParallel ? spec.full_machine.rateAt(dn)
                                        : spec.per_pe.rateAt(dn);
}

double clientServerFtp(ClientKind client, ServerKind server) {
  switch (client) {
    case ClientKind::SuperSparc:
      switch (server) {
        case ServerKind::UltraSparc: return cal::kFtpSuperToUltra;
        case ServerKind::Alpha: return cal::kFtpSuperToAlpha;
        case ServerKind::J90: return cal::kFtpSuperToJ90;
        case ServerKind::SparcSmp: return cal::kSmpLanCapacity;
      }
      break;
    case ClientKind::UltraSparc:
      switch (server) {
        case ServerKind::UltraSparc: return 6.0 * cal::kMBps;  // same arch
        case ServerKind::Alpha: return cal::kFtpUltraToAlpha;
        case ServerKind::J90: return cal::kFtpUltraToJ90;
        case ServerKind::SparcSmp: return cal::kSmpLanCapacity;
      }
      break;
    case ClientKind::Alpha:
      switch (server) {
        case ServerKind::UltraSparc: return cal::kFtpUltraToAlpha;
        case ServerKind::Alpha: return 6.2 * cal::kMBps;  // same arch
        case ServerKind::J90: return cal::kFtpAlphaToJ90;
        case ServerKind::SparcSmp: return cal::kSmpLanCapacity;
      }
      break;
  }
  throw Error("bad client/server pair");
}

machine::PerfModel clientLocalModel(ClientKind client, bool optimized) {
  switch (client) {
    case ClientKind::SuperSparc: return cal::superSparcLocal();
    case ClientKind::UltraSparc: return cal::ultraSparcLocal();
    case ClientKind::Alpha:
      return optimized ? cal::alphaLocalOptimized()
                       : cal::alphaLocalStandard();
  }
  throw Error("bad client kind");
}

double localMflops(ClientKind client, bool optimized, std::size_t n) {
  return clientLocalModel(client, optimized).rateAt(static_cast<double>(n)) /
         1e6;
}

// ------------------------------------------------------- single client

namespace {

/// Drive one call to completion and capture its record.
simcore::Process singleCallProcess(SimNinfServer& srv, simnet::NodeId client,
                                   SimJob job, SplitMix64& rng,
                                   CallRecord& out) {
  out = co_await srv.call(client, job, rng);
  recordCallTrace(out, static_cast<std::uint32_t>(client));
}

}  // namespace

SingleCallResult runSingleCall(ClientKind client, ServerKind server,
                               ExecMode mode, std::size_t n,
                               std::uint64_t seed) {
  simcore::Simulation sim;
  simnet::Network net(sim);
  const auto client_node = net.addNode(clientKindName(client));
  const auto server_node = net.addNode(serverKindName(server));
  const double ftp = clientServerFtp(client, server);
  net.addLink(client_node, server_node, ftp, cal::kLanLatency);

  machine::SimMachine mach(sim, serverSpec(server));
  SimServerConfig cfg;
  cfg.mode = mode;
  cfg.t_comm0 = cal::kTComm0Lan;
  cfg.t_comp0 = cal::kTComp0;
  cfg.syn_retry_prob = 0.0;  // deterministic single-shot measurements
  cfg.flow_cap = ftp;
  SimNinfServer srv(sim, net, server_node, mach, cfg);

  SplitMix64 rng(seed);
  CallRecord rec;
  const SimJob job = linpackJob(n, serverLinpackRate(server, mode, n));
  singleCallProcess(srv, client_node, job, rng, rec);
  sim.run();

  SingleCallResult result;
  result.elapsed = rec.elapsed();
  result.mflops = rec.performance() / 1e6;
  result.throughput_mbps = rec.throughput() / 1e6;
  return result;
}

double runThroughputProbe(ClientKind client, ServerKind server,
                          double bytes) {
  simcore::Simulation sim;
  simnet::Network net(sim);
  const auto client_node = net.addNode("client");
  const auto server_node = net.addNode("server");
  const double ftp = clientServerFtp(client, server);
  net.addLink(client_node, server_node, ftp, cal::kLanLatency);

  machine::SimMachine mach(sim, serverSpec(server));
  SimServerConfig cfg;
  cfg.t_comm0 = cal::kTComm0Lan;
  cfg.t_comp0 = cal::kTComp0;
  cfg.syn_retry_prob = 0.0;
  cfg.flow_cap = ftp;
  SimNinfServer srv(sim, net, server_node, mach, cfg);

  SplitMix64 rng(7);
  CallRecord rec;
  SimJob job;
  job.work = 1.0;  // negligible compute: measure marshalling + transfer
  job.rate_full = 1e9;
  job.in_bytes = bytes / 2;
  job.out_bytes = bytes / 2;
  singleCallProcess(srv, client_node, job, rng, rec);
  sim.run();
  // Figure 5 plots whole-call throughput: payload over the complete
  // Ninf_call (setup, marshalling, and transfer all included), which is
  // why small payloads sit far below the wire rate.
  return rec.bytes_total / rec.elapsed() / 1e6;
}

// ------------------------------------------------------- multi client

namespace {

struct ClientSlot {
  simnet::NodeId node = 0;
  std::size_t site = 0;
  SplitMix64 rng{0};
};

/// The section 4.1 client loop: every `interval` seconds flip a coin with
/// probability p; heads issues a blocking Ninf_call.
simcore::Process clientLoop(simcore::Simulation& sim, SimNinfServer& srv,
                            ClientSlot& slot, SimJob job, double interval,
                            double probability, double end_time,
                            RowStats& all, RowStats& site_row) {
  for (;;) {
    co_await sim.delay(interval);
    if (sim.now() >= end_time) break;
    if (!slot.rng.nextBool(probability)) continue;
    CallRecord rec = co_await srv.call(slot.node, job, slot.rng);
    recordCallTrace(rec, static_cast<std::uint32_t>(slot.node));
    all.add(rec);
    site_row.add(rec);
  }
}

}  // namespace

std::vector<std::string> multiSiteNames() {
  return {"Ocha-U", "U-Tokyo", "NITech", "TITech"};
}

MultiClientResult runMultiClient(const MultiClientConfig& config) {
  NINF_REQUIRE(config.clients >= 1, "need at least one client");
  simcore::Simulation sim;
  simnet::Network net(sim, config.sharing);

  const machine::MachineSpec spec = serverSpec(config.server);
  machine::SimMachine mach(sim, spec);
  const auto server_node = net.addNode(spec.name);

  SimServerConfig srv_cfg;
  srv_cfg.mode = config.mode;
  srv_cfg.t_comp0 = cal::kTComp0;
  srv_cfg.max_concurrent_calls = config.max_concurrent_calls;

  std::vector<ClientSlot> slots;
  std::vector<std::string> site_names;
  SplitMix64 master(config.seed);

  switch (config.topology) {
    case Topology::Lan: {
      // Alpha WS cluster clients behind a LAN switch (Figure 2).
      site_names = {"LAN"};
      const auto lan_switch = net.addNode("lan-switch");
      const double attachment = config.server == ServerKind::SparcSmp
                                    ? cal::kSmpLanCapacity
                                    : cal::kJ90LanCapacity;
      net.addLink(lan_switch, server_node, attachment, cal::kLanLatency);
      for (std::size_t i = 0; i < config.clients; ++i) {
        ClientSlot slot;
        slot.node = net.addNode("alpha-" + std::to_string(i));
        slot.site = 0;
        slot.rng = master.split();
        net.addLink(slot.node, lan_switch, 10.0 * cal::kMBps,
                    cal::kLanLatency);
        slots.push_back(slot);
      }
      srv_cfg.t_comm0 = cal::kTComm0Lan;
      srv_cfg.syn_retry_prob = 0.01;
      srv_cfg.flow_cap =
          clientServerFtp(ClientKind::Alpha, config.server);
      break;
    }
    case Topology::SingleSiteWan: {
      // SuperSPARC clients at Ocha-U, 60 km from the ETL J90
      // (section 4.1); they share the site's 0.17 MB/s path.
      site_names = {"Ocha-U"};
      const auto site_router = net.addNode("ochanomizu-router");
      net.addLink(site_router, server_node, cal::kWanOchaToEtl,
                  cal::kWanLatency);
      for (std::size_t i = 0; i < config.clients; ++i) {
        ClientSlot slot;
        slot.node = net.addNode("ocha-" + std::to_string(i));
        slot.site = 0;
        slot.rng = master.split();
        net.addLink(slot.node, site_router, 4.0 * cal::kMBps,
                    cal::kLanLatency);
        slots.push_back(slot);
      }
      srv_cfg.t_comm0 = cal::kTComm0Wan;
      srv_cfg.syn_retry_prob = 0.03;  // lossier path
      break;
    }
    case Topology::MultiSiteWan: {
      // Four university sites on different backbones (Figure 9).
      site_names = multiSiteNames();
      const double uplinks[] = {cal::kSiteUplinkOcha, cal::kSiteUplinkUTokyo,
                                cal::kSiteUplinkNITech,
                                cal::kSiteUplinkTITech};
      const auto etl_router = net.addNode("etl-router");
      net.addLink(etl_router, server_node, cal::kEtlWanAttachment,
                  cal::kLanLatency);
      for (std::size_t s = 0; s < site_names.size(); ++s) {
        const auto site_router = net.addNode(site_names[s] + "-router");
        net.addLink(site_router, etl_router, uplinks[s], cal::kWanLatency);
        for (std::size_t i = 0; i < config.clients; ++i) {
          ClientSlot slot;
          slot.node =
              net.addNode(site_names[s] + "-" + std::to_string(i));
          slot.site = s;
          slot.rng = master.split();
          net.addLink(slot.node, site_router, 4.0 * cal::kMBps,
                      cal::kLanLatency);
          slots.push_back(slot);
        }
      }
      srv_cfg.t_comm0 = cal::kTComm0Wan;
      srv_cfg.syn_retry_prob = 0.03;
      break;
    }
  }

  SimNinfServer srv(sim, net, server_node, mach, srv_cfg);

  SimJob job;
  if (config.ep) {
    job = epJob(config.ep_log2_pairs, spec.ep_ops_per_sec);
  } else {
    job = linpackJob(config.n,
                     serverLinpackRate(config.server, config.mode, config.n));
  }

  MultiClientResult result;
  result.sites.resize(site_names.size());
  for (std::size_t s = 0; s < site_names.size(); ++s) {
    result.sites[s].name = site_names[s];
  }

  for (auto& slot : slots) {
    clientLoop(sim, srv, slot, job, config.interval, config.probability,
               config.duration, result.row, result.sites[slot.site].row);
  }
  sim.run();

  result.duration = sim.now();
  result.cpu_util_percent = mach.cpuUtilizationPercent();
  result.load_average = mach.loadAverage();
  result.max_load = mach.maxLoad();
  const double total_bytes =
      result.row.times() * (job.in_bytes + job.out_bytes);
  result.aggregate_mbps =
      result.duration > 0 ? total_bytes / result.duration / 1e6 : 0.0;
  return result;
}

}  // namespace ninf::simworld
