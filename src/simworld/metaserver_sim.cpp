#include "simworld/metaserver_sim.h"

#include <cmath>
#include <memory>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "machine/calibration.h"
#include "simcore/simulation.h"
#include "simcore/task.h"
#include "simworld/scenario.h"
#include "simworld/sim_server.h"

namespace ninf::simworld {

namespace cal = machine::calibration;

namespace {

/// The transaction body: serialized dispatch of p EP calls, then join.
simcore::Process transactionProcess(
    simcore::Simulation& sim, std::vector<std::unique_ptr<SimNinfServer>>& servers,
    simnet::NodeId client, SimJob per_node_job, double overhead,
    SplitMix64& rng, double& elapsed_out) {
  const double start = sim.now();
  // Ninf_transaction_begin ... end: all calls are independent, so the
  // metaserver schedules them task-parallel (section 4.3), but each
  // dispatch costs `overhead` seconds of serialized metaserver work.
  std::vector<simcore::Task<CallRecord>> calls;
  calls.reserve(servers.size());
  for (auto& srv : servers) {
    co_await sim.delay(overhead);
    calls.push_back(srv->call(client, per_node_job, rng));
  }
  for (auto& c : calls) {
    co_await c;
  }
  elapsed_out = sim.now() - start;
}

}  // namespace

MetaserverEpResult runMetaserverEp(const MetaserverEpConfig& config) {
  NINF_REQUIRE(config.procs >= 1, "need at least one processor");
  simcore::Simulation sim;
  simnet::Network net(sim);

  const auto client_node = net.addNode("client");
  const auto lan_switch = net.addNode("switch");
  net.addLink(client_node, lan_switch, 10.0 * cal::kMBps, cal::kLanLatency);

  const machine::MachineSpec node_spec = cal::alphaClusterNode();
  std::vector<std::unique_ptr<machine::SimMachine>> machines;
  std::vector<std::unique_ptr<SimNinfServer>> servers;
  for (std::size_t i = 0; i < config.procs; ++i) {
    const auto node = net.addNode("alpha-node-" + std::to_string(i));
    net.addLink(node, lan_switch, 10.0 * cal::kMBps, cal::kLanLatency);
    machines.push_back(
        std::make_unique<machine::SimMachine>(sim, node_spec));
    SimServerConfig cfg;
    cfg.mode = ExecMode::TaskParallel;
    cfg.t_comm0 = cal::kTComm0Lan;
    cfg.t_comp0 = cal::kTComp0;
    cfg.syn_retry_prob = 0.0;
    servers.push_back(std::make_unique<SimNinfServer>(
        sim, net, node, *machines.back(), cfg));
  }

  // Each node draws 2^log2_pairs / p pairs of the global EP sequence.
  SimJob job;
  job.work = std::ldexp(1.0, config.log2_pairs + 1) /
             static_cast<double>(config.procs);
  job.rate_full = node_spec.ep_ops_per_sec;
  job.in_bytes = 64.0;
  job.out_bytes = 160.0;

  SplitMix64 rng(config.seed);
  double elapsed = 0.0;
  transactionProcess(sim, servers, client_node, job, config.overhead, rng,
                     elapsed);
  sim.run();

  MetaserverEpResult result;
  result.elapsed = elapsed;
  result.total_mops =
      std::ldexp(1.0, config.log2_pairs + 1) / elapsed / 1e6;
  return result;
}

}  // namespace ninf::simworld
