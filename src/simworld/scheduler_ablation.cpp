#include "simworld/scheduler_ablation.h"

#include <memory>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "machine/calibration.h"
#include "simcore/simulation.h"
#include "simnet/network.h"
#include "simworld/scenario.h"
#include "simworld/sim_server.h"

namespace ninf::simworld {

namespace cal = machine::calibration;

const char* simPolicyName(SimPolicy p) {
  switch (p) {
    case SimPolicy::RoundRobin: return "round-robin";
    case SimPolicy::LeastLoad: return "least-load (NetSolve-style)";
    case SimPolicy::BandwidthAware: return "bandwidth-aware (paper 5.1)";
  }
  return "?";
}

namespace {

struct Candidate {
  SimNinfServer* server = nullptr;
  machine::SimMachine* machine = nullptr;
  double bandwidth_bps = 0.0;  // client-observed path capacity
  SimJob job;                  // per-server rate (P_calc differs)
  std::size_t calls = 0;
};

std::size_t pick(SimPolicy policy, const std::vector<Candidate>& candidates,
                 std::size_t& rr_state) {
  switch (policy) {
    case SimPolicy::RoundRobin:
      return rr_state++ % candidates.size();
    case SimPolicy::LeastLoad: {
      // The NetSolve-style agent: lowest instantaneous load wins,
      // bandwidth ignored.
      std::size_t best = 0;
      double best_load = candidates[0].machine->instantaneousLoad();
      for (std::size_t i = 1; i < candidates.size(); ++i) {
        const double load = candidates[i].machine->instantaneousLoad();
        if (load < best_load) {
          best_load = load;
          best = i;
        }
      }
      return best;
    }
    case SimPolicy::BandwidthAware: {
      // The paper's recommendation: estimate T_comm + T_comp from the
      // IDL-derived byte/flop counts, the achievable bandwidth, and the
      // polled load.
      std::size_t best = 0;
      double best_eta = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < candidates.size(); ++i) {
        const Candidate& c = candidates[i];
        const double comm =
            (c.job.in_bytes + c.job.out_bytes) / c.bandwidth_bps;
        const double queue = c.machine->instantaneousLoad();
        const double comp = c.job.work / c.job.rate_full * (1.0 + queue);
        if (comm + comp < best_eta) {
          best_eta = comm + comp;
          best = i;
        }
      }
      return best;
    }
  }
  return 0;
}

simcore::Process ablationClient(simcore::Simulation& sim,
                                std::vector<Candidate>& candidates,
                                SimPolicy policy, std::size_t& rr_state,
                                simnet::NodeId me, double interval,
                                double probability, double end_time,
                                SplitMix64& rng,
                                SchedulerAblationResult& result) {
  for (;;) {
    co_await sim.delay(interval);
    if (sim.now() >= end_time) break;
    if (!rng.nextBool(probability)) continue;
    const std::size_t idx = pick(policy, candidates, rr_state);
    Candidate& c = candidates[idx];
    ++c.calls;
    CallRecord rec = co_await c.server->call(me, c.job, rng);
    result.row.add(rec);
  }
}

}  // namespace

SchedulerAblationResult runSchedulerAblation(
    const SchedulerAblationConfig& config) {
  NINF_REQUIRE(config.clients >= 1, "need clients");
  simcore::Simulation sim;
  simnet::Network net(sim);

  // Campus LAN with the local Alpha workstation server...
  const auto lan_switch = net.addNode("campus-switch");
  const auto alpha_node = net.addNode("alpha-server");
  net.addLink(lan_switch, alpha_node, cal::kFtpAlphaToJ90, cal::kLanLatency);
  // ...and the remote J90 behind the 0.17 MB/s WAN path.
  const auto wan_router = net.addNode("wan-router");
  const auto j90_node = net.addNode("etl-j90");
  net.addLink(lan_switch, wan_router, 4.0 * cal::kMBps, cal::kLanLatency);
  net.addLink(wan_router, j90_node, cal::kWanOchaToEtl, cal::kWanLatency);

  machine::SimMachine alpha_machine(sim, cal::alphaServer());
  machine::SimMachine j90_machine(sim, cal::j90());

  SimServerConfig lan_cfg;
  lan_cfg.mode = ExecMode::TaskParallel;
  lan_cfg.t_comm0 = cal::kTComm0Lan;
  lan_cfg.t_comp0 = cal::kTComp0;
  lan_cfg.syn_retry_prob = 0.0;
  SimNinfServer alpha_server(sim, net, alpha_node, alpha_machine, lan_cfg);

  SimServerConfig wan_cfg = lan_cfg;
  wan_cfg.mode = ExecMode::DataParallel;
  wan_cfg.t_comm0 = cal::kTComm0Wan;
  SimNinfServer j90_server(sim, net, j90_node, j90_machine, wan_cfg);

  std::vector<Candidate> candidates(2);
  candidates[0] = {&alpha_server, &alpha_machine, cal::kFtpAlphaToJ90,
                   linpackJob(config.n,
                              cal::alphaServer().per_pe.rateAt(
                                  static_cast<double>(config.n))),
                   0};
  candidates[1] = {&j90_server, &j90_machine, cal::kWanOchaToEtl,
                   linpackJob(config.n,
                              cal::j90().full_machine.rateAt(
                                  static_cast<double>(config.n))),
                   0};

  SchedulerAblationResult result;
  SplitMix64 master(config.seed);
  std::vector<SplitMix64> rngs;
  std::vector<simnet::NodeId> nodes;
  for (std::size_t i = 0; i < config.clients; ++i) {
    nodes.push_back(net.addNode("client-" + std::to_string(i)));
    net.addLink(nodes.back(), lan_switch, 10.0 * cal::kMBps,
                cal::kLanLatency);
    rngs.push_back(master.split());
  }
  std::size_t rr_state = 0;
  for (std::size_t i = 0; i < config.clients; ++i) {
    ablationClient(sim, candidates, config.policy, rr_state, nodes[i],
                   config.interval, config.probability, config.duration,
                   rngs[i], result);
  }
  sim.run();

  result.calls_per_server = {candidates[0].calls, candidates[1].calls};
  return result;
}

}  // namespace ninf::simworld
