#include "simworld/trace_export.h"

namespace ninf::simworld {

namespace {

obs::SpanRecord makeSpan(std::uint64_t trace, std::uint64_t parent,
                         const char* name, double begin_s, double end_s,
                         std::uint32_t tid) {
  obs::SpanRecord rec;
  rec.trace_id = trace;
  rec.span_id = obs::Tracer::instance().newSpanId();
  rec.parent_id = parent;
  rec.name = name;
  rec.start_us = begin_s * 1e6;
  rec.dur_us = (end_s - begin_s) * 1e6;
  rec.lane = obs::kLaneSim;
  rec.tid = tid;
  return rec;
}

}  // namespace

std::vector<obs::SpanRecord> callSpans(const CallRecord& rec,
                                       std::uint32_t tid) {
  auto& tracer = obs::Tracer::instance();
  const std::uint64_t trace = tracer.newTraceId();

  std::vector<obs::SpanRecord> spans;
  spans.reserve(5);
  obs::SpanRecord root = makeSpan(trace, 0, obs::phase::kCall, rec.submit,
                                  rec.end, tid);
  root.bytes = static_cast<std::int64_t>(rec.bytes_total);
  const std::uint64_t root_id = root.span_id;
  spans.push_back(std::move(root));
  spans.push_back(makeSpan(trace, root_id, obs::phase::kSend, rec.submit,
                           rec.enqueue, tid));
  spans.push_back(makeSpan(trace, root_id, obs::phase::kQueueWait,
                           rec.enqueue, rec.dequeue, tid));
  spans.push_back(makeSpan(trace, root_id, obs::phase::kCompute, rec.dequeue,
                           rec.complete, tid));
  spans.push_back(makeSpan(trace, root_id, obs::phase::kRecv, rec.complete,
                           rec.end, tid));
  return spans;
}

void recordCallTrace(const CallRecord& rec, std::uint32_t tid) {
  auto& tracer = obs::Tracer::instance();
  if (!tracer.enabled()) return;
  for (auto& span : callSpans(rec, tid)) {
    tracer.record(std::move(span));
  }
}

}  // namespace ninf::simworld
