// Per-call measurements of a simulated Ninf_call, matching the paper's
// instrumentation (section 4.1): T_submit, T_enqueue, T_dequeue,
// T_complete, plus byte counts and the time actually spent communicating.
#pragma once

#include <cstddef>

#include "common/stats.h"

namespace ninf::simworld {

struct CallRecord {
  double submit = 0.0;    // client issues the Ninf_call
  double enqueue = 0.0;   // accepted at the server
  double dequeue = 0.0;   // Ninf executable invoked
  double complete = 0.0;  // computation finished
  double end = 0.0;       // results fully received by the client
  double work = 0.0;      // nominal operation count (flops or EP ops)
  double bytes_total = 0.0;
  double comm_seconds = 0.0;  // argument + result transfer (incl. XDR)

  /// T_response = T_enqueue - T_submit (section 4.1).
  double responseTime() const { return enqueue - submit; }
  /// T_wait = T_dequeue - T_enqueue.
  double waitTime() const { return dequeue - enqueue; }
  /// Whole-call duration T_Ninf_call.
  double elapsed() const { return end - submit; }
  /// Client-observed performance, operations/second.
  double performance() const {
    return elapsed() > 0 ? work / elapsed() : 0.0;
  }
  /// Per-call communication throughput, bytes/second (the paper's
  /// "Throughput" column: data moved over the time spent moving it).
  double throughput() const {
    return comm_seconds > 0 ? bytes_total / comm_seconds : 0.0;
  }
};

/// max/min/mean aggregation of one benchmark row (one (n, c) cell).
struct RowStats {
  RunningStats perf_mflops;
  RunningStats response_s;
  RunningStats wait_s;
  RunningStats throughput_mbps;
  RunningStats transmission_s;  // result-transfer time (EP tables)
  RunningStats service_s;       // in-service time (dequeue to complete)

  void add(const CallRecord& rec) {
    perf_mflops.add(rec.performance() / 1e6);
    response_s.add(rec.responseTime());
    wait_s.add(rec.waitTime());
    throughput_mbps.add(rec.throughput() / 1e6);
    transmission_s.add(rec.end - rec.complete);
    service_s.add(rec.complete - rec.dequeue);
  }

  std::size_t times() const { return perf_mflops.count(); }
};

}  // namespace ninf::simworld
