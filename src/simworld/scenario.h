// Benchmark scenarios: the paper's LAN, single-site-WAN, and multi-site-WAN
// environments assembled from the simulator substrates, plus the workload
// of section 4.1 (every s = 3 seconds each client issues a Ninf_call with
// probability p = 1/2).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "machine/calibration.h"
#include "machine/machine.h"
#include "simnet/network.h"
#include "simworld/call_record.h"
#include "simworld/sim_server.h"

namespace ninf::simworld {

// ------------------------------------------------------ machine catalog

enum class ServerKind { J90, SparcSmp, UltraSparc, Alpha };
enum class ClientKind { SuperSparc, UltraSparc, Alpha };

const char* serverKindName(ServerKind k);
const char* clientKindName(ClientKind k);

machine::MachineSpec serverSpec(ServerKind kind);

/// Linpack rate (flops/s) the server sustains for one call of size n in
/// the given execution mode (P_calc(n) of section 3.1).
double serverLinpackRate(ServerKind kind, ExecMode mode, std::size_t n);

/// Table 2: measured client->server FTP throughput, bytes/second.  Also
/// the per-flow TCP ceiling used in the fluid model.
double clientServerFtp(ClientKind client, ServerKind server);

/// Client Local Linpack curve (Figures 3-4 baselines).
machine::PerfModel clientLocalModel(ClientKind client, bool optimized);

/// Local Linpack performance in Mflops at size n.
double localMflops(ClientKind client, bool optimized, std::size_t n);

// ------------------------------------------- single client (Figs 3-5)

struct SingleCallResult {
  double mflops = 0.0;
  double throughput_mbps = 0.0;
  double elapsed = 0.0;
};

/// One client, one Ninf_call of size n over the LAN (Figures 3-4).
SingleCallResult runSingleCall(ClientKind client, ServerKind server,
                               ExecMode mode, std::size_t n,
                               std::uint64_t seed = 1);

/// Ninf_call communication throughput for a given payload (Figure 5):
/// a call shipping `bytes` with negligible compute.
double runThroughputProbe(ClientKind client, ServerKind server, double bytes);

// ---------------------------------------- multi-client (Tables 3-8)

enum class Topology { Lan, SingleSiteWan, MultiSiteWan };

const char* topologyName(Topology t);

struct MultiClientConfig {
  ServerKind server = ServerKind::J90;
  ExecMode mode = ExecMode::TaskParallel;
  Topology topology = Topology::Lan;
  std::size_t clients = 1;  // per site when topology == MultiSiteWan
  std::size_t n = 600;      // Linpack matrix size
  bool ep = false;          // run the EP workload instead of Linpack
  int ep_log2_pairs = 24;   // 2^24 trial samples per call (section 4.3)
  double interval = 3.0;    // s: client wake-up period
  double probability = 0.5; // p: P(issue a call at a wake-up)
  double duration = 360.0;  // virtual seconds of call issuing
  std::uint64_t seed = 1997;
  simnet::Sharing sharing = simnet::Sharing::MaxMin;
  /// Section 5.1 admission control: max calls in service (0 = unlimited).
  std::size_t max_concurrent_calls = 0;
};

struct SiteStats {
  std::string name;
  RowStats row;
};

struct MultiClientResult {
  RowStats row;                  // aggregated over every client
  std::vector<SiteStats> sites;  // per-site breakdown (multi-site runs)
  double cpu_util_percent = 0.0;
  double load_average = 0.0;
  double max_load = 0.0;
  double aggregate_mbps = 0.0;   // total payload bytes / duration
  double duration = 0.0;
};

MultiClientResult runMultiClient(const MultiClientConfig& config);

/// The four client sites of the multi-site WAN benchmark (Figure 9).
std::vector<std::string> multiSiteNames();

}  // namespace ninf::simworld
