// Simulated Ninf computational server: the virtual-time twin of
// server::NinfServer, driving simnet transfers and a machine::SimMachine
// instead of sockets and threads.
//
// Call anatomy (matching the real server's fork&exec path, section 5.2):
//   submit --(connect, T_comm0, occasional SYN-retransmit spike)--> enqueue
//   enqueue --(fork & exec, T_comp0)--> dequeue
//   dequeue --> receive arguments (network flow + XDR marshalling CPU)
//           --> compute (task-parallel PE share or data-parallel FCFS)
//           --> complete
//   complete --> marshal + send results --> end
//
// The 5-second response-time spikes visible throughout the paper's tables
// (max response "5.0x" in Tables 3-8) are the classic BSD TCP SYN
// retransmission timeout; we reproduce them as a Bernoulli connect retry.
#pragma once

#include <cstdint>

#include <memory>

#include "common/rng.h"
#include "machine/machine.h"
#include "simcore/simulation.h"
#include "simcore/task.h"
#include "simnet/network.h"
#include "simworld/call_record.h"

namespace ninf::simworld {

/// How the server executes Linpack-style jobs (paper, section 4.1).
enum class ExecMode {
  TaskParallel,  // 1-PE version: one PE per Ninf_call, timeshared
  DataParallel,  // 4-PE version: whole machine per call, in sequence
};

const char* execModeName(ExecMode m);

/// Work description of one simulated Ninf_call.
struct SimJob {
  double work = 0.0;       // operation count (flops or EP ops)
  double rate_full = 1.0;  // ops/second at full allocation on this server
  double in_bytes = 0.0;   // client -> server argument payload
  double out_bytes = 0.0;  // server -> client result payload
};

struct SimServerConfig {
  ExecMode mode = ExecMode::TaskParallel;
  double t_comm0 = 0.01;        // connection setup
  double t_comp0 = 0.02;        // fork & exec
  double syn_retry_prob = 0.01; // P(connect needs a retransmit)
  double syn_retry_delay = 5.0; // BSD SYN retransmission timeout
  /// Per-flow TCP window ceiling on this server's paths, bytes/second.
  double flow_cap = simnet::Network::kUncapped;
  /// Admission control (section 5.1: "it is possible to restrict the
  /// number of remote clients"): at most this many calls in service at
  /// once, FIFO beyond; 0 = unlimited (the paper's actual server).
  std::size_t max_concurrent_calls = 0;
};

class SimNinfServer {
 public:
  SimNinfServer(simcore::Simulation& sim, simnet::Network& net,
                simnet::NodeId node, machine::SimMachine& machine,
                SimServerConfig config)
      : sim_(sim),
        net_(net),
        node_(node),
        machine_(machine),
        config_(config) {
    if (config_.max_concurrent_calls > 0) {
      admission_ = std::make_unique<simcore::SimResource>(
          sim_, static_cast<std::int64_t>(config_.max_concurrent_calls));
    }
  }

  simnet::NodeId node() const { return node_; }
  machine::SimMachine& machine() { return machine_; }
  const SimServerConfig& config() const { return config_; }

  /// One complete Ninf_call from `client`; resolves when the client has
  /// the results.  `rng` supplies the SYN-retry coin flip.
  simcore::Task<CallRecord> call(simnet::NodeId client, SimJob job,
                                 SplitMix64& rng);

 private:
  simcore::Simulation& sim_;
  simnet::Network& net_;
  simnet::NodeId node_;
  machine::SimMachine& machine_;
  SimServerConfig config_;
  std::unique_ptr<simcore::SimResource> admission_;  // section 5.1 gate
};

/// Linpack payload sizes: the paper's transfer model is 8n^2 + 20n bytes
/// total (section 3.1); we ship A and b inbound and x outbound.
SimJob linpackJob(std::size_t n, double rate_full);

/// EP job: 2^log2_pairs pairs -> 2^(log2_pairs+1) operations, O(1) bytes.
SimJob epJob(int log2_pairs, double ops_per_sec);

}  // namespace ninf::simworld
