// The Ninf computational server.
//
// "The Ninf computational server is a process which services remote
//  computing requests of remote clients by managing the communication and
//  activation of the services requested via Ninf RPC." (section 2.1)
//
// Threading model: one connection-handler thread per client connection
// (started by start()/serveStream()), plus a fixed pool of `workers`
// execution threads draining the job queue.  workers == 1 is the paper's
// data-parallel configuration (calls run one at a time, each free to use
// every PE internally); workers == P is the task-parallel configuration
// (up to P calls run concurrently, one PE each).
//
// The two-phase protocol of section 5.1 is supported: SubmitRequest
// detaches the job from the connection, SubmitAck returns a job id, and
// the client fetches the result later (possibly over a new connection).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "protocol/call_marshal.h"
#include "protocol/message.h"
#include "server/job_queue.h"
#include "server/metrics.h"
#include "server/registry.h"
#include "transport/transport.h"

namespace ninf::server {

struct ServerOptions {
  /// Execution threads draining the job queue (see header comment).
  std::size_t workers = 1;
  QueuePolicy policy = QueuePolicy::Fcfs;
  /// Label of this server's queue-depth gauge
  /// (`server.queue.depth.<name>`); auto-generated when empty.
  std::string name = {};
};

class NinfServer {
 public:
  NinfServer(Registry& registry, ServerOptions options = {});
  ~NinfServer();

  NinfServer(const NinfServer&) = delete;
  NinfServer& operator=(const NinfServer&) = delete;

  /// Serve connections accepted from `listener` on background threads
  /// until stop() (listener ownership is shared with the caller so tests
  /// can read the bound port).
  void start(std::shared_ptr<transport::Listener> listener);

  /// Handle one already-established connection until the peer disconnects.
  /// Usable directly (e.g. with inprocPair) without start().
  void serveStream(transport::Stream& stream);

  /// Stop accepting, drain workers, join all threads.  Idempotent.
  void stop();

  const ServerMetrics& metrics() const { return metrics_; }

  /// One reply body ready for streamed emission.  `body` may borrow OUT
  /// array memory owned by `keepalive` (the prepared call), so the two
  /// travel together until the send completes.
  struct ReplyPayload {
    xdr::Encoder body;
    std::shared_ptr<void> keepalive;
  };

 private:
  void workerLoop();
  /// Dispatch one frame.  Call bodies (CallRequest/SubmitRequest) are
  /// consumed incrementally off the stream; other message types are small
  /// and read whole.
  void handleFrame(transport::Stream& stream,
                   const protocol::FrameHeader& header);
  void handleMessage(transport::Stream& stream,
                     const protocol::Message& msg);
  /// Parse + enqueue a call read directly from the connection; returns
  /// the reply (blocking mode) or records it in the two-phase job table.
  ReplyPayload executeCall(protocol::BodyReader& body);
  std::uint64_t submitCall(protocol::BodyReader& body);

  struct PendingResult {
    bool ready = false;
    ReplyPayload reply;
  };

  Registry& registry_;
  ServerOptions options_;
  ServerMetrics metrics_;
  JobQueue queue_;
  std::vector<std::thread> workers_;
  std::shared_ptr<transport::Listener> listener_;
  std::thread accept_thread_;
  std::mutex conn_mutex_;
  std::vector<std::thread> conn_threads_;
  std::vector<std::weak_ptr<transport::Stream>> conn_streams_;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> next_job_id_{1};
  std::mutex pending_mutex_;
  std::condition_variable pending_cv_;
  std::map<std::uint64_t, PendingResult> pending_;
};

}  // namespace ninf::server
