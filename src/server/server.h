// The Ninf computational server.
//
// "The Ninf computational server is a process which services remote
//  computing requests of remote clients by managing the communication and
//  activation of the services requested via Ninf RPC." (section 2.1)
//
// Threading model: start() on a pollable listener serves every
// connection from ONE epoll reactor thread (see reactor.h) feeding a
// staged prologue/solo/epilogue pipeline over the fixed pool of
// `workers` execution threads — total thread count is O(workers), not
// O(connections).  Listeners without a native handle (in-process pairs,
// fault-injection wrappers) and direct serveStream() calls use the
// historical thread-per-connection loop below.  workers == 1 is the
// paper's data-parallel configuration (calls run one at a time, each
// free to use every PE internally); workers == P is the task-parallel
// configuration (up to P calls run concurrently, one PE each).
//
// Connections speak protocol v1 (lock-step) by default.  A client that
// opens with Hello is upgraded to v2: the connection loop then only
// decodes and enqueues — it never blocks on a running job — and a
// per-connection writer thread serializes the scatter-gather reply sends,
// so replies go out as jobs finish (possibly out of order, correlated by
// call ID) and one connection carries up to `workers` concurrent calls.
//
// The two-phase protocol of section 5.1 is supported: SubmitRequest
// detaches the job from the connection, SubmitAck returns a job id, and
// the client fetches the result later (possibly over a new connection).
// Results nobody fetches are reaped after pending_ttl_seconds.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "common/sync.h"
#include "protocol/call_marshal.h"
#include "protocol/message.h"
#include "server/job_queue.h"
#include "server/metrics.h"
#include "server/registry.h"
#include "server/result_cache.h"
#include "transport/transport.h"

namespace ninf::server {

class Reactor;

struct ServerOptions {
  /// Execution threads draining the job queue (see header comment).
  std::size_t workers = 1;
  QueuePolicy policy = QueuePolicy::Fcfs;
  /// Label of this server's queue-depth gauge
  /// (`server.queue.depth.<name>`); auto-generated when empty.
  std::string name = {};
  /// Two-phase results that were never fetched are discarded this many
  /// seconds after completing (<= 0 keeps them forever — the historical
  /// leak, retained only for experiments).
  double pending_ttl_seconds = 300.0;
  /// Serve start()ed listeners through the epoll reactor (one thread for
  /// every connection) when the platform and listener support it; false
  /// forces the historical thread-per-connection accept loop.
  bool use_reactor = true;
  /// Reactor admission budget: staged calls in flight (admitted, reply
  /// not yet queued) before the reactor stops reading from connections.
  /// 0 picks max(64, workers * 16).
  std::size_t max_inflight_calls = 0;
  /// Idempotent result cache: total flattened-reply bytes retained for
  /// entries registered with the IDL `Idempotent` clause.  0 disables
  /// retention AND single-flight coalescing entirely.
  std::size_t cache_max_bytes = 64 * 1024 * 1024;
  /// Cached idempotent replies older than this are discarded (<= 0 keeps
  /// them until evicted by cache_max_bytes pressure).
  double cache_ttl_seconds = 300.0;
};

class NinfServer {
 public:
  NinfServer(Registry& registry, ServerOptions options = {});
  ~NinfServer();

  NinfServer(const NinfServer&) = delete;
  NinfServer& operator=(const NinfServer&) = delete;

  /// Serve connections accepted from `listener` on background threads
  /// until stop() (listener ownership is shared with the caller so tests
  /// can read the bound port).
  void start(std::shared_ptr<transport::Listener> listener);

  /// Handle one already-established connection until the peer disconnects.
  /// Usable directly (e.g. with inprocPair) without start().  Returns
  /// only after every reply owed on this connection has been sent (or the
  /// connection died), so the stream may be destroyed afterwards.
  void serveStream(transport::Stream& stream);

  /// Stop accepting, drain workers, join all threads.  Idempotent.
  void stop();

  const ServerMetrics& metrics() const { return metrics_; }

  /// One reply body ready for streamed emission.  `body` may borrow OUT
  /// array memory owned by `keepalive` (the prepared call), so the two
  /// travel together until the send completes.
  struct ReplyPayload {
    xdr::Encoder body;
    std::shared_ptr<void> keepalive;
    /// False when `body` is an error reply (status != 0); error replies
    /// are delivered to in-flight waiters but never retained in the
    /// idempotent result cache.
    bool ok = true;
  };

  /// A typed reply ready to send on whichever framing the connection
  /// negotiated.
  struct ReplyEnvelope {
    protocol::MessageType type{};
    ReplyPayload payload;
  };

 private:
  class ConnWriter;
  friend class Reactor;

  void workerLoop();
  void sweeperLoop();

  /// Reactor staged pipeline, stage 1 of 3 (reactor thread): hand a
  /// complete CallRequest/SubmitRequest frame from `conn_id` to the
  /// worker pool for stateless argument unmarshalling (prologue).
  void reactorStageCall(std::uint64_t conn_id, protocol::WireMode mode,
                        protocol::Frame frame);
  /// Stage 2 runs back on the reactor thread via postSolo (admission:
  /// job-queue entry, pending-result bookkeeping); stage 3 (compute +
  /// reply marshalling, the epilogue) fans out across the workers again.
  /// Both are lambdas inside reactorPrologue.
  void reactorPrologue(std::uint64_t conn_id, protocol::WireMode mode,
                       protocol::Frame frame);

  /// Dispatch one v1 frame.  Call bodies (CallRequest/SubmitRequest) are
  /// consumed incrementally off the stream; other message types are small
  /// and read whole.
  void handleFrame(transport::Stream& stream,
                   const protocol::FrameHeader& header);
  /// Serve the rest of a connection that negotiated protocol v2.
  /// `traced` = the Hello exchange accepted kFeatureTraceContext, so
  /// every frame both ways uses the 40-byte traced header.
  void serveStreamV2(transport::Stream& stream, bool traced);
  /// Compute the reply to a small control message (everything but
  /// CallRequest/SubmitRequest), framing-agnostic.
  ReplyEnvelope controlReply(const protocol::Message& msg);

  /// Parse + enqueue a call read directly from the connection; returns
  /// the reply (v1 blocking mode) or records it in the two-phase table.
  ReplyPayload executeCall(protocol::BodyReader& body);
  /// v2: parse + enqueue, then return immediately; the finished job posts
  /// its CallReply to the connection writer under `call_id`.  `trace_ctx`
  /// is the client's propagated trace context (zeros when absent): the
  /// job adopts it so server spans join the client's trace, and the
  /// reply echoes it.
  void executeCallAsync(protocol::BodyReader& body, std::uint64_t call_id,
                        const protocol::WireTraceContext& trace_ctx,
                        const std::shared_ptr<ConnWriter>& writer);
  std::uint64_t submitCall(protocol::BodyReader& body);

  /// Emit a cached (or owner-aborted) idempotent reply for a
  /// reactor-staged call: wraps the shared payload in this caller's own
  /// frame header and hands it to the reactor thread.  Callable from any
  /// thread (cache-fulfill callbacks run on the owner's worker).
  void sendCachedReply(std::uint64_t conn_id, protocol::WireMode mode,
                       const protocol::FrameHeader& header,
                       ResultCache::Payload payload);

  /// Drop ready-but-unfetched results older than the TTL.
  void sweepPending();
  void updatePendingGauge(std::size_t count);

  struct PendingResult {
    bool ready = false;
    double ready_time = 0.0;  // server-clock seconds when completed
    ReplyPayload reply;
  };

  Registry& registry_;
  ServerOptions options_;
  ServerMetrics metrics_;
  /// Idempotent result cache (null when cache_max_bytes == 0).  Shared by
  /// the reactor pipeline and both legacy connection loops.
  std::unique_ptr<ResultCache> cache_;
  JobQueue queue_;
  std::vector<std::thread> workers_;  // created in ctor, joined in stop()
  std::shared_ptr<transport::Listener> listener_;
  /// Event-driven connection core (start() on a pollable listener).
  /// stop() quiesces it, but the object lives until destruction so job
  /// lambdas still in workers can safely post (their posts are dropped).
  std::unique_ptr<Reactor> reactor_;
  std::thread accept_thread_;
  std::thread sweeper_;
  Mutex conn_mutex_{"server.conn"};
  std::vector<std::thread> conn_threads_ NINF_GUARDED_BY(conn_mutex_);
  std::vector<std::weak_ptr<transport::Stream>> conn_streams_
      NINF_GUARDED_BY(conn_mutex_);
  std::atomic<bool> stopping_{false};
  /// Pairs sweeper_cv_ with the stopping_ flag (no guarded state of its
  /// own): the empty critical section in stop() fences the flag write
  /// against the sweeper's predicate check.
  Mutex sweeper_mutex_{"server.sweeper"};
  CondVar sweeper_cv_;
  std::atomic<std::uint64_t> next_job_id_{1};
  Mutex pending_mutex_{"server.pending"};
  CondVar pending_cv_;
  std::map<std::uint64_t, PendingResult> pending_
      NINF_GUARDED_BY(pending_mutex_);
};

}  // namespace ninf::server
