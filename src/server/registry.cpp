#include "server/registry.h"

#include "common/error.h"
#include "idl/parser.h"
#include "numlib/dos.h"
#include "numlib/ep.h"
#include "numlib/lu.h"
#include "numlib/matrix.h"
#include "numlib/mmul.h"

namespace ninf::server {

using idl::InterfaceInfo;
using idl::Mode;
using idl::ScalarType;

std::int64_t CallContext::intArg(const std::string& name) const {
  const std::size_t i = info_.paramIndex(name);
  const auto& p = info_.params[i];
  NINF_REQUIRE(p.isScalar() && (p.type == ScalarType::Int ||
                                p.type == ScalarType::Long),
               "intArg on non-integer parameter " + name);
  return data_.scalar_ints[i];
}

double CallContext::doubleArg(const std::string& name) const {
  const std::size_t i = info_.paramIndex(name);
  const auto& p = info_.params[i];
  NINF_REQUIRE(p.isScalar() && (p.type == ScalarType::Float ||
                                p.type == ScalarType::Double),
               "doubleArg on non-floating parameter " + name);
  return data_.scalar_doubles[i];
}

std::span<const double> CallContext::arrayIn(const std::string& name) const {
  const std::size_t i = info_.paramIndex(name);
  NINF_REQUIRE(!info_.params[i].isScalar(), "arrayIn on scalar " + name);
  NINF_REQUIRE(info_.params[i].shippedIn(),
               "arrayIn on output-only parameter " + name);
  return data_.arrays[i];
}

std::span<double> CallContext::arrayOut(const std::string& name) {
  const std::size_t i = info_.paramIndex(name);
  NINF_REQUIRE(!info_.params[i].isScalar(), "arrayOut on scalar " + name);
  NINF_REQUIRE(info_.params[i].shippedOut(),
               "arrayOut on input-only parameter " + name);
  return data_.arrays[i];
}

void CallContext::setInt(const std::string& name, std::int64_t v) {
  const std::size_t i = info_.paramIndex(name);
  NINF_REQUIRE(info_.params[i].shippedOut(), "setInt on input " + name);
  data_.scalar_ints[i] = v;
}

void CallContext::setDouble(const std::string& name, double v) {
  const std::size_t i = info_.paramIndex(name);
  NINF_REQUIRE(info_.params[i].shippedOut(), "setDouble on input " + name);
  data_.scalar_doubles[i] = v;
}

const InterfaceInfo& Registry::add(const std::string& idl_text,
                                   Handler handler) {
  return add(idl::parseSingle(idl_text), std::move(handler));
}

const InterfaceInfo& Registry::add(InterfaceInfo info, Handler handler) {
  NINF_REQUIRE(handler != nullptr, "executable needs a handler");
  NINF_REQUIRE(info.validate(), "invalid interface " + info.name);
  // The client API ships double arrays only (paper footnote 1); reject
  // other array element types at registration so failures are immediate.
  for (const auto& p : info.params) {
    if (!p.isScalar() && p.type != ScalarType::Double) {
      throw IdlError("array parameter '" + p.name + "' of " + info.name +
                     "' must be double (client API limitation)");
    }
  }
  auto exec = std::make_shared<NinfExecutable>(
      NinfExecutable{std::move(info), std::move(handler)});
  LockGuard lock(mutex_);
  auto [it, inserted] = map_.emplace(exec->info.name, exec);
  if (!inserted) {
    throw Error("executable '" + exec->info.name + "' already registered");
  }
  return it->second->info;
}

const NinfExecutable& Registry::find(const std::string& name) const {
  LockGuard lock(mutex_);
  auto it = map_.find(name);
  if (it == map_.end()) throw NotFoundError("executable '" + name + "'");
  return *it->second;
}

bool Registry::contains(const std::string& name) const {
  LockGuard lock(mutex_);
  return map_.count(name) != 0;
}

std::vector<std::string> Registry::names() const {
  LockGuard lock(mutex_);
  std::vector<std::string> out;
  out.reserve(map_.size());
  for (const auto& [name, exec] : map_) out.push_back(name);
  return out;
}

std::size_t Registry::size() const {
  LockGuard lock(mutex_);
  return map_.size();
}

bool Registry::isIdempotent(std::string_view name) const {
  LockGuard lock(mutex_);
  auto it = map_.find(name);
  return it != map_.end() && it->second->info.idempotent;
}

void registerStandardExecutables(Registry& registry, std::size_t workers) {
  // dmmul: the paper's running example (section 2.3), including its IDL.
  registry.add(
      R"IDL(Define dmmul(mode_in long n,
                      mode_in double A[n][n],
                      mode_in double B[n][n],
                      mode_out double C[n][n])
         "dmmul is double precision matrix multiply",
         CalcOrder 2*n^3,
         Idempotent,
         Calls "C" mmul(n, A, B, C);)IDL",
      [](CallContext& ctx) {
        const auto n = static_cast<std::size_t>(ctx.intArg("n"));
        numlib::dmmul(n, ctx.arrayIn("A"), ctx.arrayIn("B"),
                      ctx.arrayOut("C"));
      });

  // linpack: LU-decompose A and solve A x = b (dgefa + dgesl), the paper's
  // communication-heavy benchmark.  `opt` selects the library variant:
  // 0 = reference dgefa (standard routine of Figure 4), 1 = blocked
  // (glub4/gslv4-style), 2 = data-parallel (libsci-style).
  registry.add(
      R"IDL(Define linpack(mode_in long n,
                        mode_in long opt,
                        mode_in double A[n][n],
                        mode_in double b[n],
                        mode_out double x[n])
         "LU decomposition (dgefa) and backward substitution (dgesl)",
         Required "libsci.a",
         CalcOrder 2*n^3/3 + 2*n^2,
         Idempotent,
         Calls "C" linpack_solve(n, opt, A, b, x);)IDL",
      [workers](CallContext& ctx) {
        const auto n = static_cast<std::size_t>(ctx.intArg("n"));
        const auto opt = ctx.intArg("opt");
        numlib::Matrix a(n, n);
        const auto a_in = ctx.arrayIn("A");
        std::copy(a_in.begin(), a_in.end(), a.flat().begin());
        const auto b = ctx.arrayIn("b");
        const auto x = ctx.arrayOut("x");
        std::copy(b.begin(), b.end(), x.begin());
        const auto variant = opt == 0   ? numlib::LuVariant::Reference
                             : opt == 1 ? numlib::LuVariant::Blocked
                                        : numlib::LuVariant::Parallel;
        numlib::luSolve(a, x, variant, workers);
      });

  // dos: Density-Of-States estimation, the EP-style computational
  // chemistry application of section 4.3.1.  Diagonalizes GOE samples
  // [first, first+count) of dimension n and returns the eigenvalue
  // histogram over `bins` cells spanning [-2.5, 2.5].
  registry.add(
      R"IDL(Define dos(mode_in long n,
                   mode_in long first,
                   mode_in long count,
                   mode_in long bins,
                   mode_out double hist[bins])
         "Density-Of-States histogram of random Hamiltonians",
         CalcOrder 9*n^3*count,
         Idempotent,
         Calls "C" dos_kernel(n, first, count, bins, hist);)IDL",
      [](CallContext& ctx) {
        const auto result = numlib::runDos(
            static_cast<std::size_t>(ctx.intArg("n")), ctx.intArg("first"),
            ctx.intArg("count"),
            static_cast<std::size_t>(ctx.intArg("bins")));
        auto hist = ctx.arrayOut("hist");
        for (std::size_t i = 0; i < hist.size(); ++i) {
          hist[i] = static_cast<double>(result.counts[i]);
        }
      });

  // ep: NAS EP over pairs [first, first + count) of the global sequence;
  // returns the Gaussian sums and annulus counts.  Communication is O(1).
  registry.add(
      R"IDL(Define ep(mode_in long first,
                   mode_in long count,
                   mode_out double sums[2],
                   mode_out double q[10])
         "NAS Parallel Benchmarks EP kernel (Gaussian pair tallies)",
         CalcOrder 2*count,
         Idempotent,
         Calls "C" ep_kernel(first, count, sums, q);)IDL",
      [](CallContext& ctx) {
        const auto result =
            numlib::runEp(ctx.intArg("first"), ctx.intArg("count"));
        auto sums = ctx.arrayOut("sums");
        sums[0] = result.sx;
        sums[1] = result.sy;
        auto q = ctx.arrayOut("q");
        for (std::size_t i = 0; i < q.size(); ++i) {
          q[i] = static_cast<double>(result.q[i]);
        }
      });
}

}  // namespace ninf::server
