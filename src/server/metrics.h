// Server-side metrics: running/queued counts, completions, and a
// Unix-style exponentially-smoothed load average — the quantities the
// paper reports per benchmark row (CPU utilization, load average) and the
// metaserver polls for scheduling.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>

namespace ninf::server {

class ServerMetrics {
 public:
  ServerMetrics();

  /// Seconds since server start (the server-relative clock carried in
  /// reply timings).
  double now() const;

  void jobQueued();
  void jobStarted();    // queued -> running
  void jobFinished();   // running -> done

  std::uint32_t running() const;
  std::uint32_t queued() const;
  std::uint64_t completed() const;

  /// One-minute-style exponentially decayed average of the runnable task
  /// count (running + queued), re-evaluated lazily on read.
  double loadAverage() const;

  /// Fraction of wall time with at least one job running since start
  /// (an aggregate busy ratio; per-PE utilization lives in the simulator).
  double busyFraction() const;

 private:
  void decayLocked(double t) const;

  std::chrono::steady_clock::time_point start_;
  mutable std::mutex mutex_;
  std::uint32_t running_ = 0;
  std::uint32_t queued_ = 0;
  std::uint64_t completed_ = 0;
  mutable double load_ = 0.0;
  mutable double load_time_ = 0.0;
  double busy_accum_ = 0.0;
  double busy_since_ = 0.0;  // time running_ last became nonzero
};

}  // namespace ninf::server
