// Server-side metrics: running/queued counts, completions, and a
// Unix-style exponentially-smoothed load average — the quantities the
// paper reports per benchmark row (CPU utilization, load average) and the
// metaserver polls for scheduling.
//
// Concurrency contract: every member is safe to call from any thread.
// All state lives under one mutex; const readers are genuinely read-only
// (the decayed load is *computed* at read time, never folded back), so a
// storm of status polls cannot perturb the bookkeeping that the mutating
// job-lifecycle calls maintain.  snapshot() returns every quantity from
// a single critical section, so the (running, queued, load) triple a
// metaserver sees is always internally consistent.
//
// The instantaneous values are also mirrored into the global
// obs::MetricsRegistry ("server.running", "server.queued",
// "server.completed", "server.load_average") on every transition.
#pragma once

#include <chrono>
#include <cstdint>

#include "common/sync.h"

namespace ninf::server {

class ServerMetrics {
 public:
  ServerMetrics();

  /// Seconds since server start (the server-relative clock carried in
  /// reply timings).
  double now() const;

  void jobQueued();
  void jobStarted();    // queued -> running
  void jobFinished();   // running -> done

  std::uint32_t running() const;
  std::uint32_t queued() const;
  std::uint64_t completed() const;

  /// One-minute-style exponentially decayed average of the runnable task
  /// count (running + queued), evaluated lazily at read time.
  double loadAverage() const;

  /// Fraction of wall time with at least one job running since start
  /// (an aggregate busy ratio; per-PE utilization lives in the simulator).
  double busyFraction() const;

  /// Everything above, read atomically in one lock acquisition.
  struct Snapshot {
    std::uint32_t running = 0;
    std::uint32_t queued = 0;
    std::uint64_t completed = 0;
    double load_average = 0.0;
    double busy_fraction = 0.0;
    double uptime = 0.0;
  };
  Snapshot snapshot() const;

 private:
  /// Decayed load at time t; pure function of current state (no fold).
  double decayedLoadLocked(double t) const NINF_REQUIRES(mutex_);
  /// Fold the decay into (load_, load_time_); writers only.
  void foldLoadLocked(double t) NINF_REQUIRES(mutex_);
  double busySecondsLocked(double t) const NINF_REQUIRES(mutex_);

  /// The instantaneous values mirrored to the metrics registry.
  struct Published {
    double running = 0.0;
    double queued = 0.0;
    double completed = 0.0;
    double load = 0.0;
  };
  Published publishedLocked(double t) const NINF_REQUIRES(mutex_);
  /// Mirror a snapshot into the global metrics registry.  Called by
  /// writers *after* mutex_ drops: the registry's own lock must never
  /// nest inside the server-metrics critical section.
  static void publish(const Published& values);

  std::chrono::steady_clock::time_point start_;
  mutable Mutex mutex_{"server.metrics"};
  std::uint32_t running_ NINF_GUARDED_BY(mutex_) = 0;
  std::uint32_t queued_ NINF_GUARDED_BY(mutex_) = 0;
  std::uint64_t completed_ NINF_GUARDED_BY(mutex_) = 0;
  double load_ NINF_GUARDED_BY(mutex_) = 0.0;
  double load_time_ NINF_GUARDED_BY(mutex_) = 0.0;
  double busy_accum_ NINF_GUARDED_BY(mutex_) = 0.0;
  /// Time running_ last became nonzero.
  double busy_since_ NINF_GUARDED_BY(mutex_) = 0.0;
};

}  // namespace ninf::server
