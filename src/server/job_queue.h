// Job queue of a Ninf computational server.
//
// The paper's server "merely fork & execs a Ninf executable in a
// First-Come-First-Served (FCFS) manner" (section 5.2) and proposes
// Shortest-Job-First using the IDL CalcOrder complexity hint; both
// policies are implemented here and compared in the ablation bench.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>

#include "common/sync.h"

namespace ninf::obs {
class Gauge;
}

namespace ninf::server {

enum class QueuePolicy { Fcfs, Sjf };

const char* queuePolicyName(QueuePolicy p);

/// One queued call awaiting a worker.
struct Job {
  std::uint64_t id = 0;
  std::function<void()> run;      // executes the call and publishes results
  double estimated_flops = 0.0;   // CalcOrder hint; 0 when absent
  double enqueue_time = 0.0;      // server-clock seconds
};

/// Thread-safe job queue with pluggable dispatch order.
///
/// Each queue publishes its depth under its own gauge,
/// `server.queue.depth.<name>` — a process-global gauge would be stomped
/// by concurrent servers in one process (the inproc test topology and
/// any multi-server simulation).  When `name` is empty a unique "qN"
/// label is generated.
class JobQueue {
 public:
  explicit JobQueue(QueuePolicy policy = QueuePolicy::Fcfs,
                    std::string name = {});

  QueuePolicy policy() const { return policy_; }
  /// Label of this queue's depth gauge (after "server.queue.depth.").
  const std::string& name() const { return name_; }

  /// Enqueue; wakes one waiting worker.
  void push(Job job);

  /// Block until a job is available or the queue is closed.
  /// Returns nullopt when closed and drained.
  std::optional<Job> pop();

  /// Jobs currently waiting.
  std::size_t depth() const;

  /// Close: pending pops drain remaining jobs, then return nullopt.
  void close();

 private:
  /// Index of the next job to dispatch; queue must be non-empty.
  std::size_t pickIndex() const NINF_REQUIRES(mutex_);

  QueuePolicy policy_;
  std::string name_;
  obs::Gauge& depth_gauge_;  // resolved once in the ctor; set() is atomic
  mutable Mutex mutex_{"jobqueue"};
  CondVar cv_;
  std::deque<Job> jobs_ NINF_GUARDED_BY(mutex_);
  bool closed_ NINF_GUARDED_BY(mutex_) = false;
};

}  // namespace ninf::server
