// Event-driven server core: a single epoll reactor owning every
// connection fd, feeding a staged execution pipeline.
//
//   ┌─────────── reactor thread (solo) ────────────┐
//   │ epoll_wait → accept / read / write readiness │
//   │ frame reassembly → dispatch                  │
//   │ job-queue admission (bounded in-flight)      │
//   │ reply write queues → non-blocking writev     │
//   └──────▲───────────────────────────┬───────────┘
//          │ postSolo (eventfd wakeup) │ queue_.push
//   ┌──────┴───────────────────────────▼───────────┐
//   │ worker pool: prologue (arg unmarshal) and    │
//   │ compute + epilogue (result marshal into      │
//   │ owned wire buffers), both stateless          │
//   └──────────────────────────────────────────────┘
//
// The reactor thread is the only thread that touches connection state
// (fds, reassembly buffers, write queues); workers communicate with it
// exclusively through postSolo().  One thread serves every connection,
// so an idle connection costs one epoll registration — no reader
// thread, no writer thread — and server thread count is O(workers),
// not O(connections).
//
// Backpressure: when the number of staged calls in flight reaches the
// admission budget, the reactor stops reading from connections (their
// EPOLLIN interest is dropped) until completions drain — the kernel
// socket buffers and the peer's congestion window absorb the excess.
//
// v1 clients are served through the same reactor with a per-connection
// serialization fallback: a v1 frame that enters the staged pipeline
// marks the connection busy and no further frames are parsed until its
// reply is queued, preserving lock-step reply order.
//
// Only available on Linux (epoll); Reactor::supported() reports this
// and NinfServer::start() falls back to thread-per-connection when the
// reactor is unavailable or the listener has no pollable handle.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "common/buffer_pool.h"
#include "common/sync.h"
#include "protocol/message.h"
#include "transport/net_tuning.h"
#include "transport/transport.h"

namespace ninf::server {

class NinfServer;

class Reactor {
 public:
  struct Options {
    /// Staged calls in flight (dispatched, reply not yet queued) before
    /// the reactor stops reading from connections.
    std::size_t max_inflight = 256;
    /// Pause on fd exhaustion before accepting again; shared with the
    /// threaded accept loop so both paths shed load at the same rate.
    double accept_backoff_seconds = transport::kAcceptBackoffSeconds;
  };

  /// True when this platform has epoll (Linux).
  static bool supported();

  /// Spawns the reactor thread.  `listener` must expose a native
  /// handle.  The reactor serves connections by calling back into
  /// `server` (frame dispatch, staged pipeline) on the reactor thread.
  Reactor(NinfServer& server, std::shared_ptr<transport::Listener> listener,
          Options options);
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  /// Close every connection, unblock and join the loop thread; further
  /// postSolo() calls are dropped.  Idempotent.
  void stop();

  /// Hand a task to the solo stage: `fn` runs on the reactor thread in
  /// post order.  Thread-safe; the wakeup is coalesced (one eventfd
  /// write per burst).  Dropped silently after stop() — a worker
  /// finishing during shutdown has nowhere to send its reply anyway.
  void postSolo(std::function<void()> fn);

  // ---- reactor-thread-only API (solo tasks, frame handlers) ---------

  /// Append one marshalled frame to `conn_id`'s write queue.  The
  /// actual writev is deferred to the end of the current loop iteration
  /// so every frame queued in one wakeup burst leaves in a single
  /// coalesced sendvNowait (bounded by common::batchLimits()).  Unknown
  /// ids (connection died) are dropped.  Not part of staged-call
  /// bookkeeping.
  void queueReply(std::uint64_t conn_id, common::PooledBuffer frame);

  /// Complete one staged call on `conn_id`: queue `reply` (empty = no
  /// reply, the call was aborted), release its admission slot, lift the
  /// v1 lock-step hold, and resume paused reads if the budget allows.
  void finishStagedCall(std::uint64_t conn_id, common::PooledBuffer reply);

  /// True while `conn_id` can still receive replies (known and not
  /// write-dead).  Lets an admission task skip compute for a vanished
  /// client.
  bool connAlive(std::uint64_t conn_id) const;

 private:
  /// One queued reply frame.  `off` is the flushed prefix: a short
  /// sendvNowait advances it in place, so a retry resumes exactly where
  /// the kernel stopped — a slow reader sees each byte once even when a
  /// flush concatenates many frames.
  struct OutBuf {
    common::PooledBuffer bytes;
    std::size_t off = 0;
  };

  /// Per-connection state; touched only by the reactor thread.
  struct Conn {
    std::uint64_t id = 0;
    std::unique_ptr<transport::Stream> stream;
    int fd = -1;
    protocol::FrameAssembler assembler;
    protocol::WireMode mode = protocol::WireMode::V1;
    std::deque<OutBuf> writeq;
    /// Staged calls dispatched but not yet replied.
    std::size_t staged_inflight = 0;
    /// v1 lock-step serialization: a staged v1 call is in flight, stop
    /// parsing frames until its reply is queued.
    bool v1_busy = false;
    /// EPOLLIN interest dropped for admission backpressure.
    bool paused = false;
    bool want_write = false;  // EPOLLOUT armed
    bool read_open = true;    // peer's send side still delivering
    bool dead = false;        // write side failed: drop everything
    /// Queued replies await the end-of-iteration coalesced flush.
    bool flush_queued = false;
  };

  // The event loop and everything it calls run on the reactor thread;
  // NINF_REACTOR_CONTEXT marks the roots ninf-tidy walks the call
  // graph from (lambdas posted through postSolo are picked up
  // automatically).
  void loop() NINF_REACTOR_CONTEXT;
  void handleAccept() NINF_REACTOR_CONTEXT;
  void handleConnEvent(Conn& conn, std::uint32_t events)
      NINF_REACTOR_CONTEXT;
  void readReadable(Conn& conn);
  void processFrames(Conn& conn);
  void dispatchFrame(Conn& conn, protocol::Frame frame)
      NINF_REACTOR_CONTEXT;
  void handleHello(Conn& conn, const protocol::Frame& frame);
  void flushConn(Conn& conn);
  void markFlush(Conn& conn);
  /// Flush every connection marked by queueReply this iteration (runs
  /// after the final drainSolo, before the next epoll_wait).
  void flushPending() NINF_REACTOR_CONTEXT;
  void updateEpoll(Conn& conn);
  void pauseReading(Conn& conn);
  void resumeReads();
  /// Destroy now or mark for destruction once in-flight work drains.
  void maybeDestroy(std::uint64_t conn_id);
  void destroyConn(std::uint64_t conn_id);
  void killConn(Conn& conn);  // write/read failure: close + drop queues
  void drainSolo() NINF_REACTOR_CONTEXT;
  void updateFdGauge() const;

  NinfServer& server_;
  std::shared_ptr<transport::Listener> listener_;
  const Options options_;

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  bool accept_registered_ = false;
  /// stop() asked the loop to exit (reactor-thread flag, set via a solo
  /// task so it is observed at a frame boundary).
  bool exit_requested_ = false;
  /// Monotonic-clock second when accepting resumes after fd exhaustion
  /// (0 = not backing off).
  double accept_resume_at_ = 0.0;

  std::map<std::uint64_t, Conn> conns_;
  /// Connections with replies queued since the last flushPending().
  std::vector<std::uint64_t> flush_pending_;
  std::uint64_t next_conn_id_ = 2;  // 0 = listener, 1 = wakeup
  /// Total staged calls in flight across live connections (admission).
  std::size_t staged_total_ = 0;
  /// Marshalled reply buffers queued but not fully written (epilogue
  /// backlog, mirrored in server.reactor.stage_depth.epilogue).
  std::size_t epilogue_depth_ = 0;

  /// Hand-off queue from workers to the solo stage.  Leaf lock: nothing
  /// else is ever acquired while holding it.
  mutable Mutex solo_mutex_{"server.reactor.solo"};
  std::deque<std::function<void()>> solo_queue_ NINF_GUARDED_BY(solo_mutex_);
  bool stopped_ NINF_GUARDED_BY(solo_mutex_) = false;

  std::thread thread_;
};

}  // namespace ninf::server
