#include "server/reactor.h"

#include <algorithm>
#include <array>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "common/batch.h"
#include "common/error.h"
#include "common/log.h"
#include "obs/metrics.h"
#include "server/server.h"
#include "xdr/xdr.h"

#ifdef __linux__
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>
#endif

namespace ninf::server {

using protocol::Frame;
using protocol::MessageType;
using protocol::WireMode;

namespace {

double monotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

#ifdef __linux__

bool Reactor::supported() { return true; }

Reactor::Reactor(NinfServer& server,
                 std::shared_ptr<transport::Listener> listener,
                 Options options)
    : server_(server), listener_(std::move(listener)), options_(options) {
  NINF_REQUIRE(listener_ != nullptr, "reactor needs a listener");
  NINF_REQUIRE(listener_->nativeHandle() >= 0,
               "reactor needs a pollable listener");
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) throw TransportError("epoll_create1 failed");
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    ::close(epoll_fd_);
    throw TransportError("eventfd failed");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = 1;  // wakeup
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
  ev.events = EPOLLIN;
  ev.data.u64 = 0;  // listener
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listener_->nativeHandle(), &ev) ==
      0) {
    accept_registered_ = true;
  }
  thread_ = std::thread([this] { loop(); });
}

Reactor::~Reactor() { stop(); }

void Reactor::stop() {
  {
    LockGuard g(solo_mutex_);
    if (stopped_) {
      // A racing second stop() must still not return before the join.
    } else {
      solo_queue_.push_back([this] { exit_requested_ = true; });
      const std::uint64_t one = 1;
      [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
    }
  }
  if (thread_.joinable()) thread_.join();
  {
    LockGuard g(solo_mutex_);
    if (stopped_) return;
    stopped_ = true;
    solo_queue_.clear();
  }
  // No thread can reach the fds any more: the loop exited and postSolo
  // now drops before touching wake_fd_.
  conns_.clear();
  updateFdGauge();
  ::close(wake_fd_);
  ::close(epoll_fd_);
  wake_fd_ = epoll_fd_ = -1;
}

void Reactor::postSolo(std::function<void()> fn) {
  static obs::Counter& wakeups = obs::counter("server.reactor.wakeups");
  bool woke = false;
  {
    LockGuard g(solo_mutex_);
    if (stopped_) return;
    const bool need_wake = solo_queue_.empty();
    solo_queue_.push_back(std::move(fn));
    if (need_wake) {
      // Coalesced: the loop drains the whole queue per wakeup, so only
      // the empty -> non-empty transition needs an eventfd write.
      const std::uint64_t one = 1;
      [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
      woke = true;
    }
  }
  // The counter nests the obs registry lock on first touch; keep that
  // (and the atomic add) off the solo queue's critical section.
  if (woke) wakeups.add();
}

void Reactor::drainSolo() {
  std::deque<std::function<void()>> batch;
  {
    LockGuard g(solo_mutex_);
    batch.swap(solo_queue_);
  }
  obs::gauge("server.reactor.stage_depth.solo")
      .set(static_cast<double>(batch.size()));
  for (auto& fn : batch) fn();
}

void Reactor::loop() {
  std::array<epoll_event, 64> events;
  while (!exit_requested_) {
    int timeout_ms = -1;
    if (accept_resume_at_ > 0.0) {
      const double left = accept_resume_at_ - monotonicSeconds();
      if (left <= 0.0) {
        // Re-arm the listener after fd-exhaustion backoff; level
        // triggering re-reports any connections that queued meanwhile.
        accept_resume_at_ = 0.0;
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.u64 = 0;
        if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listener_->nativeHandle(),
                        &ev) == 0) {
          accept_registered_ = true;
        }
      } else {
        timeout_ms = std::max(1, static_cast<int>(left * 1000.0));
      }
    }
    const int n = ::epoll_wait(epoll_fd_, events.data(),
                               static_cast<int>(events.size()), timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      NINF_LOG(Warn) << "reactor epoll_wait failed: " << std::strerror(errno);
      break;
    }
    for (int i = 0; i < n && !exit_requested_; ++i) {
      const std::uint64_t id = events[i].data.u64;
      if (id == 0) {
        handleAccept();
      } else if (id == 1) {
        std::uint64_t counter = 0;
        [[maybe_unused]] ssize_t r =
            ::read(wake_fd_, &counter, sizeof(counter));
        drainSolo();
      } else {
        auto it = conns_.find(id);
        if (it == conns_.end()) continue;  // destroyed earlier this batch
        handleConnEvent(it->second, events[i].events);
        maybeDestroy(id);
      }
    }
    // Replies posted by workers while this thread was busy dispatching
    // would otherwise wait a full epoll round behind their own wakeup.
    drainSolo();
    // Every reply queued during this iteration — frame dispatch, solo
    // drains, resumed reads — leaves now in one coalesced writev per
    // connection, before the loop blocks again.
    flushPending();
  }
}

void Reactor::handleAccept() {
  for (;;) {
    transport::AcceptStatus status{};
    std::unique_ptr<transport::Stream> stream;
    try {
      stream = listener_->tryAccept(status);
    } catch (const Error& e) {
      NINF_LOG(Warn) << "reactor accept failed: " << e.what();
      return;
    }
    switch (status) {
      case transport::AcceptStatus::Accepted: {
        if (!stream->setNonBlocking(true) || stream->nativeHandle() < 0) {
          NINF_LOG(Warn) << "reactor: dropping connection without a "
                            "non-blocking native handle";
          break;
        }
        const std::uint64_t id = next_conn_id_++;
        Conn conn;
        conn.id = id;
        conn.fd = stream->nativeHandle();
        conn.assembler = protocol::FrameAssembler(stream->peerName());
        conn.stream = std::move(stream);
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.u64 = id;
        if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, conn.fd, &ev) != 0) {
          NINF_LOG(Warn) << "reactor: epoll_ctl ADD failed: "
                         << std::strerror(errno);
          break;
        }
        conns_.emplace(id, std::move(conn));
        updateFdGauge();
        break;
      }
      case transport::AcceptStatus::WouldBlock:
        return;
      case transport::AcceptStatus::Closed:
        // Shutdown path: the listener fd is gone (closing it removed it
        // from the epoll set); keep serving established connections.
        accept_registered_ = false;
        return;
      case transport::AcceptStatus::Exhausted:
        // Out of fds.  Stop watching the listener and retry after a
        // pause; established connections keep their fds and keep going.
        if (accept_registered_) {
          ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listener_->nativeHandle(),
                      nullptr);
          accept_registered_ = false;
        }
        accept_resume_at_ =
            monotonicSeconds() + options_.accept_backoff_seconds;
        return;
    }
  }
}

void Reactor::handleConnEvent(Conn& conn, std::uint32_t events) {
  if (events & EPOLLERR) {
    killConn(conn);
    return;
  }
  if (events & (EPOLLIN | EPOLLHUP)) {
    readReadable(conn);
  }
  if (!conn.dead && (events & EPOLLOUT)) {
    flushConn(conn);
  }
}

void Reactor::readReadable(Conn& conn) {
  std::array<std::uint8_t, 64 * 1024> buf;
  while (!conn.dead && !conn.paused) {
    std::size_t n = 0;
    try {
      n = conn.stream->recvNowait(buf);
    } catch (const Error&) {
      // EOF or read error: the peer is done sending.  Replies still owed
      // flush out before the connection is destroyed.
      conn.read_open = false;
      updateEpoll(conn);  // drop EPOLLIN interest for good
      return;
    }
    if (n == 0) return;  // EAGAIN: kernel buffer drained
    conn.assembler.feed(std::span<const std::uint8_t>(buf.data(), n));
    processFrames(conn);
    if (n < buf.size()) return;  // short read: likely drained
  }
}

void Reactor::processFrames(Conn& conn) {
  while (!conn.dead) {
    // v1 lock-step: one staged call at a time, replies in frame order.
    if (conn.v1_busy) return;
    if (staged_total_ >= options_.max_inflight) {
      pauseReading(conn);
      return;
    }
    std::optional<Frame> frame;
    try {
      frame = conn.assembler.next();
    } catch (const Error& e) {
      NINF_LOG(Warn) << "connection from " << conn.stream->peerName()
                     << " aborted: " << e.what();
      killConn(conn);
      return;
    }
    if (!frame) return;
    dispatchFrame(conn, std::move(*frame));
  }
}

void Reactor::dispatchFrame(Conn& conn, Frame frame) {
  try {
    switch (frame.header.type) {
      case MessageType::Hello:
        handleHello(conn, frame);
        return;
      case MessageType::CallRequest:
      case MessageType::SubmitRequest: {
        protocol::noteWireBuffer(frame.body.size());
        ++conn.staged_inflight;
        ++staged_total_;
        if (conn.mode == WireMode::V1) conn.v1_busy = true;
        static obs::Gauge& prologue =
            obs::gauge("server.reactor.stage_depth.prologue");
        prologue.set(prologue.value() + 1.0);
        server_.reactorStageCall(conn.id, conn.mode, std::move(frame));
        return;
      }
      default: {
        // Small control messages: compute the reply inline on the
        // reactor thread (registry/pending lookups, no compute).
        protocol::Message msg;
        msg.type = frame.header.type;
        msg.payload.assign(frame.body.data(),
                           frame.body.data() + frame.body.size());
        protocol::noteWireBuffer(msg.payload.size());
        NinfServer::ReplyEnvelope env = server_.controlReply(msg);
        queueReply(conn.id,
                   protocol::flattenFramePooled(conn.mode, env.type,
                                                frame.header.call_id,
                                                frame.header.trace,
                                                env.payload.body));
        return;
      }
    }
  } catch (const Error& e) {
    NINF_LOG(Warn) << "connection from " << conn.stream->peerName()
                   << " aborted: " << e.what();
    killConn(conn);
  }
}

void Reactor::handleHello(Conn& conn, const Frame& frame) {
  static obs::Counter& upgrades = obs::counter("server.v2_connections");
  xdr::Decoder dec(frame.body.span());
  const std::uint32_t client_max = dec.getU32();
  const bool client_sent_features = dec.remaining() >= 4;
  const std::uint32_t client_features =
      client_sent_features ? dec.getU32() : 0;
  const std::uint32_t agreed = std::min(client_max, protocol::kMaxVersion);
  // The compute server implements the trace extension only; the sharding
  // control plane lives on metaserver nodes.
  const std::uint32_t features =
      client_features & protocol::kFeatureTraceContext;
  xdr::Encoder ack;
  ack.putU32(agreed);
  if (client_sent_features) ack.putU32(features);
  // The ack itself travels in the pre-upgrade framing; the new mode
  // applies from the next frame in both directions.
  queueReply(conn.id,
             protocol::flattenFramePooled(conn.mode, MessageType::HelloAck,
                                          frame.header.call_id,
                                          frame.header.trace, ack));
  if (agreed >= protocol::kVersion2) {
    upgrades.add();
    conn.mode = (features & protocol::kFeatureTraceContext)
                    ? WireMode::V2Traced
                    : WireMode::V2;
    conn.assembler.setMode(conn.mode);
  }
}

void Reactor::queueReply(std::uint64_t conn_id, common::PooledBuffer frame) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end() || it->second.dead) return;
  it->second.writeq.push_back(OutBuf{std::move(frame), 0});
  ++epilogue_depth_;
  obs::gauge("server.reactor.stage_depth.epilogue")
      .set(static_cast<double>(epilogue_depth_));
  // No immediate flush: frames queued in the same wakeup burst coalesce
  // into one writev at the end of the loop iteration (flushPending).
  markFlush(it->second);
}

void Reactor::finishStagedCall(std::uint64_t conn_id,
                               common::PooledBuffer reply) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) {
    // The connection died mid-call; its staged budget was released by
    // destroyConn.  The reply has nowhere to go.
    return;
  }
  Conn& conn = it->second;
  if (conn.staged_inflight > 0) {
    --conn.staged_inflight;
    --staged_total_;
  }
  conn.v1_busy = false;
  if (!reply.empty() && !conn.dead) {
    queueReply(conn_id, std::move(reply));
  }
  // The freed admission slot (and, for v1, the lifted lock-step hold)
  // may unblock frames already sitting in reassembly buffers.
  if (!conn.dead && !conn.paused) processFrames(conn);
  resumeReads();
  maybeDestroy(conn_id);
}

bool Reactor::connAlive(std::uint64_t conn_id) const {
  auto it = conns_.find(conn_id);
  return it != conns_.end() && !it->second.dead;
}

void Reactor::markFlush(Conn& conn) {
  if (conn.flush_queued) return;
  conn.flush_queued = true;
  flush_pending_.push_back(conn.id);
}

void Reactor::flushPending() {
  // Index loop: flushConn -> maybeDestroy -> resumeReads can queue more
  // replies, which append to flush_pending_ mid-iteration.
  for (std::size_t i = 0; i < flush_pending_.size(); ++i) {
    auto it = conns_.find(flush_pending_[i]);
    if (it == conns_.end()) continue;
    it->second.flush_queued = false;
    flushConn(it->second);
    maybeDestroy(it->first);
  }
  flush_pending_.clear();
}

void Reactor::flushConn(Conn& conn) {
  if (conn.dead) return;
  static obs::Counter& flushes = obs::counter("server.reactor.batch.flushes");
  static obs::Counter& frames = obs::counter("server.reactor.batch.frames");
  static obs::Histogram& per_writev =
      obs::histogram("server.reactor.batch.frames_per_writev");
  const common::BatchLimits limits = common::batchLimits();
  while (!conn.writeq.empty()) {
    // Coalesce up to max_iov queued frames (bounded by the byte budget,
    // always at least one) into a single vectored send.
    std::array<std::span<const std::uint8_t>, 64> iov;
    const std::size_t iov_limit = std::min(iov.size(), limits.max_iov);
    std::size_t count = 0;
    std::size_t bytes = 0;
    for (const OutBuf& buf : conn.writeq) {
      if (count == iov_limit) break;
      if (count > 0 && bytes >= limits.max_bytes) break;
      iov[count++] = std::span<const std::uint8_t>(
          buf.bytes.data() + buf.off, buf.bytes.size() - buf.off);
      bytes += buf.bytes.size() - buf.off;
    }
    std::size_t sent = 0;
    try {
      sent = conn.stream->sendvNowait(
          std::span<const std::span<const std::uint8_t>>(iov.data(), count));
    } catch (const Error& e) {
      NINF_LOG(Debug) << "reply send failed: " << e.what();
      killConn(conn);
      return;
    }
    flushes.add();
    frames.add(count);
    per_writev.observe(static_cast<double>(count));
    if (sent == 0) break;  // kernel buffer full
    while (sent > 0 && !conn.writeq.empty()) {
      OutBuf& front = conn.writeq.front();
      const std::size_t left = front.bytes.size() - front.off;
      if (sent >= left) {
        sent -= left;
        conn.writeq.pop_front();
        --epilogue_depth_;
      } else {
        // Short write: advance the per-buffer offset so the retry
        // resumes mid-frame — never re-sends flushed bytes.
        front.off += sent;
        sent = 0;
      }
    }
  }
  obs::gauge("server.reactor.stage_depth.epilogue")
      .set(static_cast<double>(epilogue_depth_));
  const bool want_write = !conn.writeq.empty();
  if (want_write != conn.want_write) {
    conn.want_write = want_write;
    updateEpoll(conn);
  }
}

void Reactor::updateEpoll(Conn& conn) {
  epoll_event ev{};
  ev.events = (conn.paused || !conn.read_open ? 0u : EPOLLIN) |
              (conn.want_write ? EPOLLOUT : 0u);
  ev.data.u64 = conn.id;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
}

void Reactor::pauseReading(Conn& conn) {
  if (conn.paused) return;
  conn.paused = true;
  updateEpoll(conn);
}

void Reactor::resumeReads() {
  if (staged_total_ >= options_.max_inflight) return;
  // Collect first: processFrames on a resumed connection can stage new
  // work, kill the connection, or re-pause it — all of which mutate the
  // map or the pause set mid-iteration.
  std::vector<std::uint64_t> paused;
  for (auto& [id, conn] : conns_) {
    if (conn.paused) paused.push_back(id);
  }
  for (std::uint64_t id : paused) {
    if (staged_total_ >= options_.max_inflight) return;
    auto it = conns_.find(id);
    if (it == conns_.end()) continue;
    Conn& conn = it->second;
    conn.paused = false;
    updateEpoll(conn);
    // Frames that arrived before the pause may be fully buffered; epoll
    // will not re-report bytes already read off the socket.
    processFrames(conn);
    maybeDestroy(id);
  }
}

void Reactor::killConn(Conn& conn) {
  if (conn.dead) return;
  conn.dead = true;
  conn.read_open = false;
  epilogue_depth_ -= conn.writeq.size();
  conn.writeq.clear();
  // Closing the fd drops it from the epoll set.
  conn.stream->close();
}

void Reactor::maybeDestroy(std::uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  const Conn& conn = it->second;
  if (conn.dead) {
    destroyConn(conn_id);
    return;
  }
  // Graceful close: peer finished sending, every admitted call replied,
  // every reply flushed.  Buffered reassembly bytes only defer this for
  // a PAUSED connection (they may hold complete frames the admission
  // budget will let through); otherwise processFrames already consumed
  // every complete frame, so leftovers are a dead partial frame.
  if (!conn.read_open && conn.writeq.empty() && conn.staged_inflight == 0 &&
      (!conn.paused || conn.assembler.buffered() == 0)) {
    destroyConn(conn_id);
  }
}

void Reactor::destroyConn(std::uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  Conn& conn = it->second;
  // Release budget still held by in-flight staged calls; their eventual
  // finishStagedCall finds no connection and releases nothing.
  staged_total_ -= std::min(staged_total_, conn.staged_inflight);
  epilogue_depth_ -= std::min(epilogue_depth_, conn.writeq.size());
  conns_.erase(it);
  updateFdGauge();
  obs::gauge("server.reactor.stage_depth.epilogue")
      .set(static_cast<double>(epilogue_depth_));
  resumeReads();
}

void Reactor::updateFdGauge() const {
  obs::gauge("server.reactor.fds").set(static_cast<double>(conns_.size()));
}

#else  // !__linux__

bool Reactor::supported() { return false; }

Reactor::Reactor(NinfServer& server,
                 std::shared_ptr<transport::Listener> listener, Options options)
    : server_(server), listener_(std::move(listener)), options_(options) {
  throw TransportError("epoll reactor is not supported on this platform");
}

Reactor::~Reactor() = default;
void Reactor::stop() {}
void Reactor::postSolo(std::function<void()>) {}
void Reactor::queueReply(std::uint64_t, common::PooledBuffer) {}
void Reactor::finishStagedCall(std::uint64_t, common::PooledBuffer) {}
bool Reactor::connAlive(std::uint64_t) const { return false; }

#endif  // __linux__

}  // namespace ninf::server
