// Registry of Ninf executables on a computational server.
//
// "Binaries of computing libraries and applications are registered on the
//  server process as Ninf executables, which can be semi-automatically
//  generated with IDL descriptions using the Ninf stub generator."  (2.1)
//
// Here an executable is a compiled InterfaceInfo plus a C++ handler; the
// handler receives a CallContext with typed access to the decoded
// arguments and writes its results into the OUT arrays in place.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/sync.h"
#include "idl/interface_info.h"
#include "protocol/call_marshal.h"

namespace ninf::server {

/// Typed view over one decoded call, handed to executable handlers.
class CallContext {
 public:
  CallContext(const idl::InterfaceInfo& info,
              protocol::ServerCallData& data)
      : info_(info), data_(data) {}

  const idl::InterfaceInfo& interface() const { return info_; }

  /// Scalar integer argument by parameter name.
  std::int64_t intArg(const std::string& name) const;
  /// Scalar floating argument by parameter name.
  double doubleArg(const std::string& name) const;
  /// Input array by parameter name.
  std::span<const double> arrayIn(const std::string& name) const;
  /// Output (or inout) array by parameter name, writable in place.
  std::span<double> arrayOut(const std::string& name);
  /// Set an output scalar.
  void setInt(const std::string& name, std::int64_t v);
  void setDouble(const std::string& name, double v);

 private:
  const idl::InterfaceInfo& info_;
  protocol::ServerCallData& data_;
};

/// Handler body of an executable; throw ninf::Error (or any std::exception)
/// to report failure to the remote caller.
using Handler = std::function<void(CallContext&)>;

/// One registered executable.
struct NinfExecutable {
  idl::InterfaceInfo info;
  Handler handler;
};

/// Thread-safe name -> executable map.  The plain-text IDL overload runs
/// the stub generator (parser) at registration time, exactly as the Ninf
/// server-side toolchain did.
class Registry {
 public:
  /// Register from IDL text; returns the compiled interface.
  const idl::InterfaceInfo& add(const std::string& idl_text, Handler handler);
  /// Register a pre-compiled interface.
  const idl::InterfaceInfo& add(idl::InterfaceInfo info, Handler handler);

  /// Look up by name; throws ninf::NotFoundError.
  const NinfExecutable& find(const std::string& name) const;
  bool contains(const std::string& name) const;
  std::vector<std::string> names() const;
  std::size_t size() const;

  /// True when `name` is registered with the IDL Idempotent clause.
  /// Takes a string_view (transparent map lookup) so the server's
  /// cache-eligibility peek costs no allocation per call.
  bool isIdempotent(std::string_view name) const;

 private:
  mutable Mutex mutex_{"registry"};
  std::map<std::string, std::shared_ptr<const NinfExecutable>, std::less<>>
      map_ NINF_GUARDED_BY(mutex_);
};

/// Register the benchmark executables the paper uses on its servers:
/// "dmmul", "linpack" (dgefa+dgesl, variant-selectable), and "ep".
/// `workers` is the PE count used by the data-parallel linpack variant.
void registerStandardExecutables(Registry& registry, std::size_t workers = 1);

}  // namespace ninf::server
