#include "server/metrics.h"

#include <cmath>

namespace ninf::server {

namespace {
/// Load-average time constant; classic Unix uses 60s for the 1-minute
/// figure.  We use a shorter constant so benchmark-length runs settle.
constexpr double kLoadTau = 15.0;
}  // namespace

ServerMetrics::ServerMetrics() : start_(std::chrono::steady_clock::now()) {}

double ServerMetrics::now() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

void ServerMetrics::decayLocked(double t) const {
  // Fold the elapsed interval into the exponential moving average toward
  // the instantaneous runnable count.
  const double dt = t - load_time_;
  if (dt <= 0) return;
  const double instant = static_cast<double>(running_ + queued_);
  const double alpha = std::exp(-dt / kLoadTau);
  load_ = load_ * alpha + instant * (1.0 - alpha);
  load_time_ = t;
}

void ServerMetrics::jobQueued() {
  std::lock_guard<std::mutex> lock(mutex_);
  decayLocked(now());
  ++queued_;
}

void ServerMetrics::jobStarted() {
  std::lock_guard<std::mutex> lock(mutex_);
  const double t = now();
  decayLocked(t);
  if (queued_ > 0) --queued_;
  if (running_ == 0) busy_since_ = t;
  ++running_;
}

void ServerMetrics::jobFinished() {
  std::lock_guard<std::mutex> lock(mutex_);
  const double t = now();
  decayLocked(t);
  if (running_ > 0) {
    --running_;
    if (running_ == 0) busy_accum_ += t - busy_since_;
  }
  ++completed_;
}

std::uint32_t ServerMetrics::running() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return running_;
}

std::uint32_t ServerMetrics::queued() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queued_;
}

std::uint64_t ServerMetrics::completed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return completed_;
}

double ServerMetrics::loadAverage() const {
  std::lock_guard<std::mutex> lock(mutex_);
  decayLocked(now());
  return load_;
}

double ServerMetrics::busyFraction() const {
  std::lock_guard<std::mutex> lock(mutex_);
  const double t = now();
  double busy = busy_accum_;
  if (running_ > 0) busy += t - busy_since_;
  return t > 0 ? busy / t : 0.0;
}

}  // namespace ninf::server
