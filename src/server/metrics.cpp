#include "server/metrics.h"

#include <cmath>

#include "obs/metrics.h"

namespace ninf::server {

namespace {
/// Load-average time constant; classic Unix uses 60s for the 1-minute
/// figure.  We use a shorter constant so benchmark-length runs settle.
constexpr double kLoadTau = 15.0;
}  // namespace

ServerMetrics::ServerMetrics() : start_(std::chrono::steady_clock::now()) {}

double ServerMetrics::now() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

double ServerMetrics::decayedLoadLocked(double t) const {
  // Elapsed interval folded into the exponential moving average toward
  // the instantaneous runnable count — computed, not stored, so const
  // readers never mutate the bookkeeping.
  const double dt = t - load_time_;
  if (dt <= 0) return load_;
  const double instant = static_cast<double>(running_ + queued_);
  const double alpha = std::exp(-dt / kLoadTau);
  return load_ * alpha + instant * (1.0 - alpha);
}

void ServerMetrics::foldLoadLocked(double t) {
  // Writers fold *before* changing the runnable count, so the average
  // integrates the old count over the elapsed interval.
  if (t <= load_time_) return;
  load_ = decayedLoadLocked(t);
  load_time_ = t;
}

double ServerMetrics::busySecondsLocked(double t) const {
  double busy = busy_accum_;
  if (running_ > 0) busy += t - busy_since_;
  return busy;
}

ServerMetrics::Published ServerMetrics::publishedLocked(double t) const {
  Published v;
  v.running = running_;
  v.queued = queued_;
  v.completed = static_cast<double>(completed_);
  v.load = decayedLoadLocked(t);
  return v;
}

void ServerMetrics::publish(const Published& values) {
  static obs::Gauge& g_running = obs::gauge("server.running");
  static obs::Gauge& g_queued = obs::gauge("server.queued");
  static obs::Gauge& g_completed = obs::gauge("server.completed");
  static obs::Gauge& g_load = obs::gauge("server.load_average");
  g_running.set(values.running);
  g_queued.set(values.queued);
  g_completed.set(values.completed);
  g_load.set(values.load);
}

void ServerMetrics::jobQueued() {
  Published v;
  {
    LockGuard lock(mutex_);
    const double t = now();
    foldLoadLocked(t);
    ++queued_;
    v = publishedLocked(t);
  }
  publish(v);
}

void ServerMetrics::jobStarted() {
  Published v;
  {
    LockGuard lock(mutex_);
    const double t = now();
    foldLoadLocked(t);
    if (queued_ > 0) --queued_;
    if (running_ == 0) busy_since_ = t;
    ++running_;
    v = publishedLocked(t);
  }
  publish(v);
}

void ServerMetrics::jobFinished() {
  Published v;
  {
    LockGuard lock(mutex_);
    const double t = now();
    foldLoadLocked(t);
    if (running_ > 0) {
      --running_;
      if (running_ == 0) busy_accum_ += t - busy_since_;
    }
    ++completed_;
    v = publishedLocked(t);
  }
  publish(v);
}

std::uint32_t ServerMetrics::running() const {
  LockGuard lock(mutex_);
  return running_;
}

std::uint32_t ServerMetrics::queued() const {
  LockGuard lock(mutex_);
  return queued_;
}

std::uint64_t ServerMetrics::completed() const {
  LockGuard lock(mutex_);
  return completed_;
}

double ServerMetrics::loadAverage() const {
  LockGuard lock(mutex_);
  return decayedLoadLocked(now());
}

double ServerMetrics::busyFraction() const {
  LockGuard lock(mutex_);
  const double t = now();
  return t > 0 ? busySecondsLocked(t) / t : 0.0;
}

ServerMetrics::Snapshot ServerMetrics::snapshot() const {
  LockGuard lock(mutex_);
  const double t = now();
  Snapshot s;
  s.running = running_;
  s.queued = queued_;
  s.completed = completed_;
  s.load_average = decayedLoadLocked(t);
  s.busy_fraction = t > 0 ? busySecondsLocked(t) / t : 0.0;
  s.uptime = t;
  return s;
}

}  // namespace ninf::server
