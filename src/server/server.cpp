#include "server/server.h"

#include <algorithm>
#include <future>

#include "common/error.h"
#include "common/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "xdr/xdr.h"

namespace ninf::server {

using protocol::CallTimings;
using protocol::Message;
using protocol::MessageType;

NinfServer::NinfServer(Registry& registry, ServerOptions options)
    : registry_(registry),
      options_(options),
      queue_(options.policy, options.name) {
  NINF_REQUIRE(options_.workers >= 1, "server needs at least one worker");
  workers_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

NinfServer::~NinfServer() { stop(); }

void NinfServer::start(std::shared_ptr<transport::Listener> listener) {
  NINF_REQUIRE(listener != nullptr, "null listener");
  NINF_REQUIRE(!listener_, "server already started");
  listener_ = std::move(listener);
  accept_thread_ = std::thread([this] {
    while (!stopping_.load()) {
      std::unique_ptr<transport::Stream> stream;
      try {
        stream = listener_->accept();
      } catch (const Error& e) {
        if (!stopping_.load()) {
          NINF_LOG(Warn) << "accept failed: " << e.what();
        }
        break;
      }
      if (!stream) break;  // listener closed
      auto shared = std::shared_ptr<transport::Stream>(std::move(stream));
      std::lock_guard<std::mutex> lock(conn_mutex_);
      conn_streams_.push_back(shared);
      conn_threads_.emplace_back(
          [this, s = std::move(shared)] { serveStream(*s); });
    }
  });
}

void NinfServer::serveStream(transport::Stream& stream) {
  NINF_LOG(Debug) << "serving connection from " << stream.peerName();
  try {
    for (;;) {
      const protocol::FrameHeader header = protocol::recvHeader(stream);
      handleFrame(stream, header);
    }
  } catch (const TransportError&) {
    // Normal disconnect path.
  } catch (const Error& e) {
    NINF_LOG(Warn) << "connection from " << stream.peerName()
                   << " aborted: " << e.what();
  }
}

void NinfServer::stop() {
  if (stopping_.exchange(true)) {
    return;
  }
  if (listener_) listener_->close();
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    // Unblock connection threads parked in recvMessage.
    for (auto& weak : conn_streams_) {
      if (auto s = weak.lock()) s->close();
    }
    for (auto& t : conn_threads_) {
      if (t.joinable()) t.join();
    }
    conn_threads_.clear();
    conn_streams_.clear();
  }
  queue_.close();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void NinfServer::workerLoop() {
  while (auto job = queue_.pop()) {
    job->run();
  }
}

void NinfServer::handleFrame(transport::Stream& stream,
                             const protocol::FrameHeader& header) {
  switch (header.type) {
    case MessageType::CallRequest: {
      protocol::BodyReader body(stream, header.length);
      ReplyPayload reply = executeCall(body);
      protocol::sendMessage(stream, MessageType::CallReply, reply.body);
      return;
    }
    case MessageType::SubmitRequest: {
      protocol::BodyReader body(stream, header.length);
      const std::uint64_t id = submitCall(body);
      xdr::Encoder enc;
      enc.putU64(id);
      protocol::sendMessage(stream, MessageType::SubmitAck, enc.bytes());
      return;
    }
    default: {
      // Control messages are small; materialize and dispatch.
      Message msg;
      msg.type = header.type;
      msg.payload.resize(header.length);
      if (header.length > 0) stream.recvAll(msg.payload);
      protocol::noteWireBuffer(msg.payload.size());
      handleMessage(stream, msg);
      return;
    }
  }
}

void NinfServer::handleMessage(transport::Stream& stream, const Message& msg) {
  switch (msg.type) {
    case MessageType::QueryInterface: {
      xdr::Decoder dec(msg.payload);
      const std::string name = dec.getString();
      xdr::Encoder enc;
      if (registry_.contains(name)) {
        enc.putBool(true);
        registry_.find(name).info.encode(enc);
      } else {
        enc.putBool(false);
      }
      protocol::sendMessage(stream, MessageType::InterfaceReply, enc.bytes());
      return;
    }
    case MessageType::FetchResult: {
      xdr::Decoder dec(msg.payload);
      const std::uint64_t id = dec.getU64();
      std::unique_lock<std::mutex> lock(pending_mutex_);
      auto it = pending_.find(id);
      if (it == pending_.end()) {
        lock.unlock();
        protocol::sendMessage(
            stream, MessageType::CallReply,
            protocol::encodeErrorReply("unknown job id " +
                                       std::to_string(id)));
        return;
      }
      if (!it->second.ready) {
        lock.unlock();
        protocol::sendMessage(stream, MessageType::ResultPending,
                              std::span<const std::uint8_t>{});
        return;
      }
      ReplyPayload reply = std::move(it->second.reply);
      pending_.erase(it);
      lock.unlock();
      protocol::sendMessage(stream, MessageType::CallReply, reply.body);
      return;
    }
    case MessageType::ListExecutables: {
      xdr::Encoder enc;
      const auto names = registry_.names();
      enc.putU32(static_cast<std::uint32_t>(names.size()));
      for (const auto& n : names) enc.putString(n);
      protocol::sendMessage(stream, MessageType::ExecutableList, enc.bytes());
      return;
    }
    case MessageType::ServerStatus: {
      // One consistent snapshot: a poll racing a job transition must not
      // see a (running, queued, load) triple that never existed.
      const ServerMetrics::Snapshot snap = metrics_.snapshot();
      protocol::ServerStatusInfo info;
      info.running = snap.running;
      info.queued = snap.queued;
      info.completed = snap.completed;
      info.load_average = snap.load_average;
      protocol::sendMessage(stream, MessageType::StatusReply, info.toBytes());
      return;
    }
    case MessageType::Ping:
      protocol::sendMessage(stream, MessageType::Pong, msg.payload);
      return;
    default:
      throw ProtocolError("unexpected message type " +
                          std::to_string(static_cast<unsigned>(msg.type)));
  }
}

namespace {

/// Decoded call bound to its executable, ready for queueing.
struct PreparedCall {
  const NinfExecutable* exec = nullptr;
  protocol::ServerCallData data;
  double estimated_flops = 0.0;
};

/// Decode a call straight off the wire: the entry name and scalars come
/// through the body reader's small buffer, array payloads land directly
/// in the ServerCallData storage.
PreparedCall prepare(Registry& registry, xdr::Source& src) {
  const std::string name = src.getString();
  PreparedCall call;
  call.exec = &registry.find(name);
  call.data = protocol::decodeCallArgs(call.exec->info, src);
  call.estimated_flops = static_cast<double>(
      call.exec->info.flopsEstimate(call.data.scalar_ints));
  return call;
}

NinfServer::ReplyPayload errorReply(const std::string& message) {
  xdr::Encoder enc;
  enc.putU32(1);  // status: error
  enc.putString(message);
  return {std::move(enc), nullptr};
}

/// Worker-side execution of a prepared call: the shared body of the
/// blocking and two-phase paths.  Records the server's ground-truth
/// queue-wait and compute phases (span + histogram) alongside the
/// timings shipped back to the client.
NinfServer::ReplyPayload runPreparedCall(ServerMetrics& metrics,
                                         PreparedCall& call,
                                         double enqueue_time) {
  CallTimings timings;
  timings.enqueue = enqueue_time;
  timings.dequeue = metrics.now();
  metrics.jobStarted();

  const double wait_s = std::max(0.0, timings.dequeue - timings.enqueue);
  static obs::Histogram& wait_hist =
      obs::histogram("server.queue_wait_seconds");
  wait_hist.observe(wait_s);
  if (obs::Tracer::instance().enabled()) {
    // The wait already elapsed; anchor the span so it ends now.
    obs::SpanRecord rec;
    rec.name = obs::phase::kServerQueueWait;
    rec.dur_us = wait_s * 1e6;
    rec.start_us = obs::Tracer::nowMicros() - rec.dur_us;
    rec.detail = call.exec->info.name;
    obs::emitSpan(std::move(rec));
  }

  NinfServer::ReplyPayload reply;
  try {
    CallContext ctx(call.exec->info, call.data);
    {
      obs::Span compute(obs::phase::kServerCompute);
      compute.setDetail(call.exec->info.name);
      call.exec->handler(ctx);
    }
    timings.complete = metrics.now();
    static obs::Histogram& compute_hist =
        obs::histogram("server.compute_seconds");
    compute_hist.observe(timings.complete - timings.dequeue);
    // The reply body borrows the OUT arrays still owned by `call`; the
    // caller pairs it with the PreparedCall's shared_ptr as keepalive.
    reply.body = protocol::buildCallReply(call.exec->info, call.data, timings);
  } catch (const std::exception& e) {
    static obs::Counter& failures = obs::counter("server.call_failures");
    failures.add();
    reply = errorReply(e.what());
  }
  metrics.jobFinished();
  return reply;
}

}  // namespace

NinfServer::ReplyPayload NinfServer::executeCall(protocol::BodyReader& body) {
  PreparedCall call;
  try {
    call = prepare(registry_, body);
  } catch (const std::exception& e) {
    // Keep the connection framing aligned: the rest of the body must be
    // consumed before the error reply goes out.
    body.drain();
    return errorReply(e.what());
  }

  auto call_sp = std::make_shared<PreparedCall>(std::move(call));
  std::promise<ReplyPayload> done;
  auto fut = done.get_future();
  metrics_.jobQueued();
  Job job;
  job.id = next_job_id_.fetch_add(1);
  job.estimated_flops = call_sp->estimated_flops;
  job.enqueue_time = metrics_.now();
  job.run = [this, call_sp, enqueue = job.enqueue_time, &done]() mutable {
    done.set_value(runPreparedCall(metrics_, *call_sp, enqueue));
  };
  queue_.push(std::move(job));
  ReplyPayload reply = fut.get();
  reply.keepalive = std::move(call_sp);  // reply body borrows the OUT arrays
  return reply;
}

std::uint64_t NinfServer::submitCall(protocol::BodyReader& body) {
  const std::uint64_t id = next_job_id_.fetch_add(1);
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    pending_.emplace(id, PendingResult{});
  }

  PreparedCall prepared;
  try {
    prepared = prepare(registry_, body);
  } catch (const std::exception& e) {
    body.drain();
    std::lock_guard<std::mutex> lock(pending_mutex_);
    pending_[id] = {true, errorReply(e.what())};
    return id;
  }

  metrics_.jobQueued();
  Job job;
  job.id = id;
  job.estimated_flops = prepared.estimated_flops;
  job.enqueue_time = metrics_.now();
  job.run = [this, id,
             call = std::make_shared<PreparedCall>(std::move(prepared)),
             enqueue = job.enqueue_time]() mutable {
    ReplyPayload reply = runPreparedCall(metrics_, *call, enqueue);
    reply.keepalive = call;
    {
      std::lock_guard<std::mutex> lock(pending_mutex_);
      pending_[id] = {true, std::move(reply)};
    }
    pending_cv_.notify_all();
  };
  queue_.push(std::move(job));
  return id;
}

}  // namespace ninf::server
