#include "server/server.h"

#include <algorithm>
#include <deque>
#include <future>

#include "common/buffer_pool.h"
#include "common/error.h"
#include "common/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/reactor.h"
#include "xdr/xdr.h"

namespace ninf::server {

using protocol::CallTimings;
using protocol::Message;
using protocol::MessageType;

/// Per-connection reply writer for protocol-v2 connections: jobs and the
/// connection thread post typed replies here, one thread serializes the
/// scatter-gather sends.  Replies leave in completion order, not arrival
/// order — the call ID is the correlation.
///
/// Lifetime: the connection thread owns the writer via shared_ptr and
/// each queued job holds another reference, so a job finishing after the
/// peer vanished still has somewhere safe to post (the post is dropped
/// once the writer is dead).  finish() — called by the connection thread
/// when the read side ends — waits until every expected reply has been
/// posted and sent (or the connection died), then joins; after that the
/// stream may be destroyed, because a dead writer never touches it again.
class NinfServer::ConnWriter {
 public:
  /// `traced` selects the 40-byte traced v2 framing for every reply.
  explicit ConnWriter(transport::Stream& stream, bool traced = false)
      : stream_(stream), traced_(traced) {
    thread_ = std::thread([this] { loop(); });
  }

  ~ConnWriter() {
    // finish() joined on every path through serveStreamV2; this is the
    // safety net for exotic unwinds.
    if (thread_.joinable()) {
      {
        LockGuard g(mutex_);
        dead_ = true;
        closed_ = true;
      }
      cv_.notify_all();
      thread_.join();
    }
  }

  /// Count one reply owed later (a call job headed for the queue).
  void expect() {
    LockGuard g(mutex_);
    ++outstanding_;
  }

  /// Queue one reply frame.  `from_job` balances a prior expect().
  /// `trace_ctx` is echoed in the traced header (ignored otherwise).
  /// Posts to a dead writer are counted and dropped.
  void post(std::uint64_t call_id, MessageType type, ReplyPayload payload,
            bool from_job, protocol::WireTraceContext trace_ctx = {}) {
    {
      LockGuard g(mutex_);
      if (from_job) --outstanding_;
      if (!dead_) {
        items_.push_back({call_id, type, std::move(payload), trace_ctx});
      }
    }
    cv_.notify_all();
  }

  bool dead() const {
    LockGuard g(mutex_);
    return dead_;
  }

  /// Graceful shutdown: wait for every owed reply to be posted and sent
  /// (a dead connection stops waiting for sends, but still waits for the
  /// jobs so no lambda outlives its keepalive assumptions), then join.
  void finish() {
    {
      UniqueLock lk(mutex_);
      cv_.wait(lk, [this] {
        return outstanding_ == 0 && (dead_ || (items_.empty() && !sending_));
      });
      closed_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable()) thread_.join();
  }

 private:
  struct Item {
    std::uint64_t call_id = 0;
    MessageType type{};
    ReplyPayload payload;
    protocol::WireTraceContext trace_ctx;
  };

  void loop() {
    for (;;) {
      Item item;
      {
        UniqueLock lk(mutex_);
        cv_.wait(lk,
                 [this] { return dead_ || closed_ || !items_.empty(); });
        if (dead_) {
          items_.clear();
          cv_.wait(lk, [this] { return closed_; });
          return;
        }
        if (items_.empty()) return;  // closed_ and drained
        item = std::move(items_.front());
        items_.pop_front();
        sending_ = true;
      }
      try {
        if (traced_) {
          protocol::sendMessageV2Traced(stream_, item.type, item.call_id,
                                        item.trace_ctx, item.payload.body);
        } else {
          protocol::sendMessageV2(stream_, item.type, item.call_id,
                                  item.payload.body);
        }
        {
          LockGuard g(mutex_);
          sending_ = false;
        }
        cv_.notify_all();
      } catch (const Error& e) {
        NINF_LOG(Debug) << "reply send failed: " << e.what();
        {
          LockGuard g(mutex_);
          dead_ = true;
          sending_ = false;
          items_.clear();
        }
        // Kick the connection thread out of its blocking header read.
        stream_.close();
        cv_.notify_all();
      }
    }
  }

  transport::Stream& stream_;
  const bool traced_;
  std::thread thread_;
  mutable Mutex mutex_{"server.connwriter"};
  CondVar cv_;
  std::deque<Item> items_ NINF_GUARDED_BY(mutex_);
  /// Expected replies not yet posted.
  std::size_t outstanding_ NINF_GUARDED_BY(mutex_) = 0;
  /// A send is in flight outside the lock.
  bool sending_ NINF_GUARDED_BY(mutex_) = false;
  /// finish() called; drain and exit.
  bool closed_ NINF_GUARDED_BY(mutex_) = false;
  /// Connection unusable; drop everything.
  bool dead_ NINF_GUARDED_BY(mutex_) = false;
};

NinfServer::NinfServer(Registry& registry, ServerOptions options)
    : registry_(registry),
      options_(options),
      queue_(options.policy, options.name) {
  NINF_REQUIRE(options_.workers >= 1, "server needs at least one worker");
  if (options_.cache_max_bytes > 0) {
    cache_ = std::make_unique<ResultCache>(ResultCache::Options{
        options_.cache_max_bytes, options_.cache_ttl_seconds});
  }
  workers_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
  if (options_.pending_ttl_seconds > 0) {
    sweeper_ = std::thread([this] { sweeperLoop(); });
  }
}

NinfServer::~NinfServer() { stop(); }

void NinfServer::start(std::shared_ptr<transport::Listener> listener) {
  NINF_REQUIRE(listener != nullptr, "null listener");
  NINF_REQUIRE(!listener_, "server already started");
  listener_ = std::move(listener);
  if (options_.use_reactor && Reactor::supported() &&
      listener_->nativeHandle() >= 0) {
    Reactor::Options ropts;
    ropts.max_inflight =
        options_.max_inflight_calls > 0
            ? options_.max_inflight_calls
            : std::max<std::size_t>(64, options_.workers * 16);
    reactor_ = std::make_unique<Reactor>(*this, listener_, ropts);
    return;
  }
  accept_thread_ = std::thread([this] {
    while (!stopping_.load()) {
      std::unique_ptr<transport::Stream> stream;
      try {
        stream = listener_->accept();
      } catch (const Error& e) {
        if (!stopping_.load()) {
          NINF_LOG(Warn) << "accept failed: " << e.what();
        }
        break;
      }
      if (!stream) break;  // listener closed
      auto shared = std::shared_ptr<transport::Stream>(std::move(stream));
      LockGuard lock(conn_mutex_);
      conn_streams_.push_back(shared);
      conn_threads_.emplace_back(
          [this, s = std::move(shared)] { serveStream(*s); });
    }
  });
}

void NinfServer::serveStream(transport::Stream& stream) {
  NINF_LOG(Debug) << "serving connection from " << stream.peerName();
  try {
    for (;;) {
      const protocol::FrameHeader header = protocol::recvHeader(stream);
      if (header.type == MessageType::Hello) {
        protocol::BodyReader body(stream, header.length);
        const std::uint32_t client_max = body.getU32();
        // Optional extension word: a feature bitmask appended by newer
        // clients.  Its absence (or any unknown bits) costs nothing.
        const bool client_sent_features = body.remaining() >= 4;
        const std::uint32_t client_features =
            client_sent_features ? body.getU32() : 0;
        body.drain();
        const std::uint32_t agreed =
            std::min(client_max, protocol::kMaxVersion);
        const std::uint32_t features =
            client_features & protocol::kFeatureTraceContext;
        xdr::Encoder ack;
        ack.putU32(agreed);
        // Echo the accepted bitmask only to feature-aware peers, so a
        // pre-extension client sees a byte-identical HelloAck.
        if (client_sent_features) ack.putU32(features);
        protocol::sendMessage(stream, MessageType::HelloAck, ack.bytes());
        if (agreed >= protocol::kVersion2) {
          serveStreamV2(stream,
                        (features & protocol::kFeatureTraceContext) != 0);
          return;
        }
        continue;  // negotiated down: keep the lock-step v1 loop
      }
      handleFrame(stream, header);
    }
  } catch (const TransportError&) {
    // Normal disconnect path.
  } catch (const Error& e) {
    NINF_LOG(Warn) << "connection from " << stream.peerName()
                   << " aborted: " << e.what();
  }
}

void NinfServer::serveStreamV2(transport::Stream& stream, bool traced) {
  static obs::Counter& upgrades = obs::counter("server.v2_connections");
  upgrades.add();
  auto writer = std::make_shared<ConnWriter>(stream, traced);
  try {
    for (;;) {
      const protocol::FrameHeader header =
          traced ? protocol::recvHeaderV2Traced(stream)
                 : protocol::recvHeaderV2(stream);
      switch (header.type) {
        case MessageType::CallRequest: {
          protocol::BodyReader body(stream, header.length);
          executeCallAsync(body, header.call_id, header.trace, writer);
          break;
        }
        case MessageType::SubmitRequest: {
          protocol::BodyReader body(stream, header.length);
          const std::uint64_t id = submitCall(body);
          xdr::Encoder enc;
          enc.putU64(id);
          writer->post(header.call_id, MessageType::SubmitAck,
                       ReplyPayload{std::move(enc), nullptr}, false,
                       header.trace);
          break;
        }
        default: {
          Message msg;
          msg.type = header.type;
          msg.payload.resize(header.length);
          if (header.length > 0) stream.recvAll(msg.payload);
          protocol::noteWireBuffer(msg.payload.size());
          ReplyEnvelope env = controlReply(msg);
          writer->post(header.call_id, env.type, std::move(env.payload),
                       false, header.trace);
          break;
        }
      }
    }
  } catch (const TransportError&) {
    // Peer hung up (or the writer closed the stream under us).
  } catch (const Error& e) {
    NINF_LOG(Warn) << "v2 connection from " << stream.peerName()
                   << " aborted: " << e.what();
  }
  writer->finish();
}

void NinfServer::stop() {
  if (stopping_.exchange(true)) {
    return;
  }
  if (listener_) listener_->close();
  if (accept_thread_.joinable()) accept_thread_.join();
  // Quiesce the reactor before closing the job queue: the loop exits,
  // connections drop, and posts from jobs still running in workers turn
  // into no-ops.  The Reactor object itself stays alive until the
  // server is destroyed so those jobs always have a valid target.
  if (reactor_) reactor_->stop();
  // Swap the connection table out under the lock, then close and join
  // outside it: joining while holding conn_mutex_ would deadlock against
  // any connection-side path that ever takes the lock, and stalls every
  // concurrent start()/stop() behind slow disconnects regardless.
  std::vector<std::thread> conns;
  std::vector<std::weak_ptr<transport::Stream>> streams;
  {
    LockGuard lock(conn_mutex_);
    conns.swap(conn_threads_);
    streams.swap(conn_streams_);
  }
  // Unblock connection threads parked in recvMessage.
  for (auto& weak : streams) {
    if (auto s = weak.lock()) s->close();
  }
  for (auto& t : conns) {
    if (t.joinable()) t.join();
  }
  queue_.close();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  {
    LockGuard lk(sweeper_mutex_);
  }
  sweeper_cv_.notify_all();
  if (sweeper_.joinable()) sweeper_.join();
}

void NinfServer::workerLoop() {
  while (auto job = queue_.pop()) {
    job->run();
  }
}

void NinfServer::sweeperLoop() {
  const auto period = std::chrono::duration<double>(
      std::clamp(options_.pending_ttl_seconds / 4.0, 0.01, 1.0));
  UniqueLock lk(sweeper_mutex_);
  while (!stopping_.load()) {
    sweeper_cv_.wait_for(lk, period, [this] { return stopping_.load(); });
    if (stopping_.load()) break;
    lk.unlock();
    sweepPending();
    lk.lock();
  }
}

void NinfServer::sweepPending() {
  // Destroy expired payloads outside the lock — keepalives may hold
  // sizeable OUT arrays.
  std::vector<ReplyPayload> expired;
  std::size_t count = 0;
  const double now = metrics_.now();
  {
    LockGuard lock(pending_mutex_);
    for (auto it = pending_.begin(); it != pending_.end();) {
      if (it->second.ready &&
          now - it->second.ready_time > options_.pending_ttl_seconds) {
        expired.push_back(std::move(it->second.reply));
        it = pending_.erase(it);
      } else {
        ++it;
      }
    }
    count = pending_.size();
  }
  if (!expired.empty()) {
    static obs::Counter& reaped = obs::counter("server.pending_expired");
    reaped.add(expired.size());
    NINF_LOG(Debug) << "reaped " << expired.size()
                    << " unfetched two-phase results";
  }
  updatePendingGauge(count);
  if (cache_) cache_->sweep();
}

void NinfServer::updatePendingGauge(std::size_t count) {
  // Per-server gauge, same naming scheme as server.queue.depth.<name>.
  obs::gauge("server.pending_results." + queue_.name())
      .set(static_cast<double>(count));
}

void NinfServer::handleFrame(transport::Stream& stream,
                             const protocol::FrameHeader& header) {
  switch (header.type) {
    case MessageType::CallRequest: {
      protocol::BodyReader body(stream, header.length);
      ReplyPayload reply = executeCall(body);
      protocol::sendMessage(stream, MessageType::CallReply, reply.body);
      return;
    }
    case MessageType::SubmitRequest: {
      protocol::BodyReader body(stream, header.length);
      const std::uint64_t id = submitCall(body);
      xdr::Encoder enc;
      enc.putU64(id);
      protocol::sendMessage(stream, MessageType::SubmitAck, enc.bytes());
      return;
    }
    default: {
      // Control messages are small; materialize and dispatch.
      Message msg;
      msg.type = header.type;
      msg.payload.resize(header.length);
      if (header.length > 0) stream.recvAll(msg.payload);
      protocol::noteWireBuffer(msg.payload.size());
      ReplyEnvelope env = controlReply(msg);
      protocol::sendMessage(stream, env.type, env.payload.body);
      return;
    }
  }
}

NinfServer::ReplyEnvelope NinfServer::controlReply(const Message& msg) {
  switch (msg.type) {
    case MessageType::QueryInterface: {
      xdr::Decoder dec(msg.payload);
      const std::string name = dec.getString();
      xdr::Encoder enc;
      if (registry_.contains(name)) {
        enc.putBool(true);
        registry_.find(name).info.encode(enc);
      } else {
        enc.putBool(false);
      }
      return {MessageType::InterfaceReply, {std::move(enc), nullptr}};
    }
    case MessageType::FetchResult: {
      xdr::Decoder dec(msg.payload);
      const std::uint64_t id = dec.getU64();
      UniqueLock lock(pending_mutex_);
      auto it = pending_.find(id);
      if (it == pending_.end()) {
        lock.unlock();
        xdr::Encoder err;
        err.putRaw(protocol::encodeErrorReply("unknown job id " +
                                              std::to_string(id)));
        return {MessageType::CallReply, {std::move(err), nullptr}};
      }
      if (!it->second.ready) {
        lock.unlock();
        return {MessageType::ResultPending, {xdr::Encoder{}, nullptr}};
      }
      ReplyPayload reply = std::move(it->second.reply);
      pending_.erase(it);
      const std::size_t count = pending_.size();
      lock.unlock();
      updatePendingGauge(count);
      return {MessageType::CallReply, std::move(reply)};
    }
    case MessageType::ListExecutables: {
      xdr::Encoder enc;
      const auto names = registry_.names();
      enc.putU32(static_cast<std::uint32_t>(names.size()));
      for (const auto& n : names) enc.putString(n);
      return {MessageType::ExecutableList, {std::move(enc), nullptr}};
    }
    case MessageType::ServerStatus: {
      // One consistent snapshot: a poll racing a job transition must not
      // see a (running, queued, load) triple that never existed.
      const ServerMetrics::Snapshot snap = metrics_.snapshot();
      protocol::ServerStatusInfo info;
      info.running = snap.running;
      info.queued = snap.queued;
      info.completed = snap.completed;
      info.load_average = snap.load_average;
      xdr::Encoder enc;
      enc.putRaw(info.toBytes());
      return {MessageType::StatusReply, {std::move(enc), nullptr}};
    }
    case MessageType::Ping: {
      xdr::Encoder enc;
      enc.putRaw(msg.payload);
      return {MessageType::Pong, {std::move(enc), nullptr}};
    }
    default:
      throw ProtocolError("unexpected message type " +
                          std::to_string(static_cast<unsigned>(msg.type)));
  }
}

namespace {

/// Decoded call bound to its executable, ready for queueing.
struct PreparedCall {
  const NinfExecutable* exec = nullptr;
  protocol::ServerCallData data;
  double estimated_flops = 0.0;
};

/// Decode a call straight off the wire: the entry name and scalars come
/// through the body reader's small buffer, array payloads land directly
/// in the ServerCallData storage.
PreparedCall prepare(Registry& registry, xdr::Source& src) {
  const std::string name = src.getString();
  PreparedCall call;
  call.exec = &registry.find(name);
  call.data = protocol::decodeCallArgs(call.exec->info, src);
  call.estimated_flops = static_cast<double>(
      call.exec->info.flopsEstimate(call.data.scalar_ints));
  return call;
}

NinfServer::ReplyPayload errorReply(const std::string& message) {
  xdr::Encoder enc;
  enc.putU32(1);  // status: error
  enc.putString(message);
  return {std::move(enc), nullptr, /*ok=*/false};
}

/// Largest call body the lock-step / thread-per-connection loops will
/// materialize for idempotent-cache eligibility; bigger calls keep the
/// historical streamed decode and bypass the cache.  (The reactor path
/// has the whole body in a frame slab already, so no limit applies.)
constexpr std::size_t kCacheBodyLimit = 8 * 1024 * 1024;

/// Alloc-free peek at the entry name leading a CallRequest body (XDR
/// string: big-endian u32 length, then the bytes).  Empty on malformed
/// input — the streamed decoder produces the real error in that case.
std::string_view peekCallName(std::span<const std::uint8_t> body) {
  if (body.size() < 4) return {};
  const std::uint32_t len = (std::uint32_t{body[0]} << 24) |
                            (std::uint32_t{body[1]} << 16) |
                            (std::uint32_t{body[2]} << 8) |
                            std::uint32_t{body[3]};
  if (len > body.size() - 4) return {};
  return {reinterpret_cast<const char*>(body.data()) + 4, len};
}

/// Materialize a reply body (owned + borrowed OUT segments) into the
/// shared immutable unit the result cache retains and replays.
ResultCache::Payload materializeReply(const NinfServer::ReplyPayload& reply) {
  auto bytes = std::make_shared<std::vector<std::uint8_t>>();
  bytes->reserve(reply.body.size());
  reply.body.appendTo(*bytes);
  return bytes;
}

/// Wrap a cached payload as a fresh ReplyPayload (copies into an owned
/// encoder buffer; the cache keeps its shared copy).
NinfServer::ReplyPayload replayPayload(const ResultCache::Payload& payload) {
  xdr::Encoder enc;
  enc.putRaw({payload->data(), payload->size()});
  return {std::move(enc), nullptr};
}

/// Worker-side execution of a prepared call: the shared body of the
/// blocking and two-phase paths.  Records the server's ground-truth
/// queue-wait and compute phases (span + histogram) alongside the
/// timings shipped back to the client.  When the caller installed a
/// propagated trace context (ScopedTraceContext), the spans join the
/// client's trace; `call_id` (0 = v1, no id) annotates them for
/// cross-referencing with logs and channel counters.
NinfServer::ReplyPayload runPreparedCall(ServerMetrics& metrics,
                                         PreparedCall& call,
                                         double enqueue_time,
                                         std::uint64_t call_id = 0) {
  CallTimings timings;
  timings.enqueue = enqueue_time;
  timings.dequeue = metrics.now();
  metrics.jobStarted();

  const double wait_s = std::max(0.0, timings.dequeue - timings.enqueue);
  static obs::Histogram& wait_hist =
      obs::histogram("server.queue_wait_seconds");
  wait_hist.observe(wait_s);
  if (obs::Tracer::instance().enabled()) {
    // The wait already elapsed; anchor the span so it ends now.
    // emitSpan does not inherit the ambient context, so attach the
    // propagated trace (if any) explicitly.
    const obs::TraceContext ctx = obs::currentContext();
    obs::SpanRecord rec;
    rec.trace_id = ctx.trace_id;
    rec.parent_id = ctx.parent_span;
    rec.name = obs::phase::kServerQueueWait;
    rec.dur_us = wait_s * 1e6;
    rec.start_us = obs::Tracer::nowMicros() - rec.dur_us;
    rec.call_id = call_id;
    rec.detail = call.exec->info.name;
    obs::emitSpan(std::move(rec));
  }

  NinfServer::ReplyPayload reply;
  try {
    CallContext ctx(call.exec->info, call.data);
    {
      obs::Span compute(obs::phase::kServerCompute);
      compute.setDetail(call.exec->info.name);
      compute.setCallId(call_id);
      call.exec->handler(ctx);
    }
    timings.complete = metrics.now();
    static obs::Histogram& compute_hist =
        obs::histogram("server.compute_seconds");
    compute_hist.observe(timings.complete - timings.dequeue);
    // The reply body borrows the OUT arrays still owned by `call`; the
    // caller pairs it with the PreparedCall's shared_ptr as keepalive.
    reply.body = protocol::buildCallReply(call.exec->info, call.data, timings);
  } catch (const std::exception& e) {
    static obs::Counter& failures = obs::counter("server.call_failures");
    failures.add();
    reply = errorReply(e.what());
  }
  metrics.jobFinished();
  return reply;
}

}  // namespace

NinfServer::ReplyPayload NinfServer::executeCall(protocol::BodyReader& body) {
  // Idempotent-cache participation: the lock-step loop streams the body,
  // so eligibility requires materializing it first.  A hit replays the
  // cached payload; a concurrent identical call parks on the owner's
  // completion (safe to block here — stop() joins connection threads
  // before it closes the job queue, so the owner's job always runs).
  common::PooledBuffer buffered;
  ResultCache::Digest digest{};
  bool cache_owner = false;
  if (cache_ && body.remaining() <= kCacheBodyLimit) {
    buffered = common::acquireBuffer(body.remaining());
    buffered.resize(body.remaining());
    body.getRaw(buffered.writableSpan());
    const std::string_view name = peekCallName(buffered.span());
    if (!name.empty() && registry_.isIdempotent(name)) {
      digest = ResultCache::digestOf(buffered.span());
      auto parked = std::make_shared<std::promise<ResultCache::Payload>>();
      const ResultCache::Lookup lookup = cache_->lookupOrJoin(
          digest, [parked](ResultCache::Payload p) {
            parked->set_value(std::move(p));
          });
      if (lookup.role == ResultCache::Role::Hit) {
        return replayPayload(lookup.payload);
      }
      if (lookup.role == ResultCache::Role::Waiter) {
        ResultCache::Payload payload = parked->get_future().get();
        if (payload) return replayPayload(payload);
        return errorReply("idempotent call aborted before completion");
      }
      cache_owner = true;  // compute below and fulfill on every path
    }
  }

  PreparedCall call;
  try {
    if (!buffered.empty()) {
      xdr::Decoder src(buffered.span());
      call = prepare(registry_, src);
    } else {
      call = prepare(registry_, body);
    }
  } catch (const std::exception& e) {
    // Keep the connection framing aligned: the rest of the body must be
    // consumed before the error reply goes out.
    body.drain();
    ReplyPayload err = errorReply(e.what());
    if (cache_owner) cache_->fulfill(digest, materializeReply(err), false);
    return err;
  }

  auto call_sp = std::make_shared<PreparedCall>(std::move(call));
  std::promise<ReplyPayload> done;
  auto fut = done.get_future();
  metrics_.jobQueued();
  Job job;
  job.id = next_job_id_.fetch_add(1);
  job.estimated_flops = call_sp->estimated_flops;
  job.enqueue_time = metrics_.now();
  job.run = [this, call_sp, enqueue = job.enqueue_time, &done]() mutable {
    done.set_value(runPreparedCall(metrics_, *call_sp, enqueue));
  };
  queue_.push(std::move(job));
  ReplyPayload reply = fut.get();
  reply.keepalive = std::move(call_sp);  // reply body borrows the OUT arrays
  if (cache_owner) {
    cache_->fulfill(digest, materializeReply(reply), reply.ok);
  }
  return reply;
}

void NinfServer::executeCallAsync(protocol::BodyReader& body,
                                  std::uint64_t call_id,
                                  const protocol::WireTraceContext& trace_ctx,
                                  const std::shared_ptr<ConnWriter>& writer) {
  // Idempotent-cache participation, mirroring executeCall().  The writer
  // is told to expect a reply up front so finish() waits for a parked
  // waiter's callback exactly as it waits for a job.
  common::PooledBuffer buffered;
  ResultCache::Digest digest{};
  bool cache_owner = false;
  if (cache_ && body.remaining() <= kCacheBodyLimit) {
    buffered = common::acquireBuffer(body.remaining());
    buffered.resize(body.remaining());
    body.getRaw(buffered.writableSpan());
    const std::string_view name = peekCallName(buffered.span());
    if (!name.empty() && registry_.isIdempotent(name)) {
      digest = ResultCache::digestOf(buffered.span());
      writer->expect();
      const ResultCache::Lookup lookup = cache_->lookupOrJoin(
          digest, [call_id, trace_ctx, writer](ResultCache::Payload p) {
            ReplyPayload reply =
                p ? replayPayload(p)
                  : errorReply("idempotent call aborted before completion");
            writer->post(call_id, MessageType::CallReply, std::move(reply),
                         true, trace_ctx);
          });
      if (lookup.role == ResultCache::Role::Hit) {
        writer->post(call_id, MessageType::CallReply,
                     replayPayload(lookup.payload), true, trace_ctx);
        return;
      }
      if (lookup.role == ResultCache::Role::Waiter) {
        return;  // the parked callback posts the reply
      }
      cache_owner = true;  // the expect() above is balanced below
    }
  }

  PreparedCall call;
  try {
    if (!buffered.empty()) {
      xdr::Decoder src(buffered.span());
      call = prepare(registry_, src);
    } else {
      call = prepare(registry_, body);
    }
  } catch (const std::exception& e) {
    body.drain();
    ReplyPayload err = errorReply(e.what());
    if (cache_owner) cache_->fulfill(digest, materializeReply(err), false);
    writer->post(call_id, MessageType::CallReply, std::move(err),
                 /*from_job=*/cache_owner, trace_ctx);
    return;
  }

  auto call_sp = std::make_shared<PreparedCall>(std::move(call));
  metrics_.jobQueued();
  Job job;
  job.id = next_job_id_.fetch_add(1);
  job.estimated_flops = call_sp->estimated_flops;
  job.enqueue_time = metrics_.now();
  if (!cache_owner) writer->expect();
  job.run = [this, call_sp, call_id, trace_ctx, writer, cache_owner, digest,
             enqueue = job.enqueue_time]() mutable {
    // Adopt the client's propagated context for the duration of the job,
    // so queue-wait/compute spans become children of its call span.
    obs::ScopedTraceContext adopt(
        obs::TraceContext{trace_ctx.trace_id, trace_ctx.parent_span});
    ReplyPayload reply =
        runPreparedCall(metrics_, *call_sp, enqueue, call_id);
    reply.keepalive = call_sp;  // reply body borrows the OUT arrays
    if (cache_owner) {
      cache_->fulfill(digest, materializeReply(reply), reply.ok);
    }
    writer->post(call_id, MessageType::CallReply, std::move(reply), true,
                 trace_ctx);
  };
  queue_.push(std::move(job));
}

std::uint64_t NinfServer::submitCall(protocol::BodyReader& body) {
  const std::uint64_t id = next_job_id_.fetch_add(1);
  std::size_t depth = 0;
  {
    LockGuard lock(pending_mutex_);
    pending_.emplace(id, PendingResult{});
    depth = pending_.size();
  }
  updatePendingGauge(depth);

  PreparedCall prepared;
  try {
    prepared = prepare(registry_, body);
  } catch (const std::exception& e) {
    body.drain();
    LockGuard lock(pending_mutex_);
    pending_[id] = {true, metrics_.now(), errorReply(e.what())};
    return id;
  }

  metrics_.jobQueued();
  Job job;
  job.id = id;
  job.estimated_flops = prepared.estimated_flops;
  job.enqueue_time = metrics_.now();
  job.run = [this, id,
             call = std::make_shared<PreparedCall>(std::move(prepared)),
             enqueue = job.enqueue_time]() mutable {
    ReplyPayload reply = runPreparedCall(metrics_, *call, enqueue);
    reply.keepalive = call;
    {
      LockGuard lock(pending_mutex_);
      pending_[id] = {true, metrics_.now(), std::move(reply)};
    }
    pending_cv_.notify_all();
  };
  queue_.push(std::move(job));
  return id;
}

// ----------------------------------------------------------------- reactor
// Staged pipeline behind the epoll reactor (see reactor.h).  A complete
// call frame flows:
//
//   dispatch (reactor)  -> reactorStageCall: queue a prologue job
//   prologue (worker)   -> reactorPrologue: unmarshal args, stateless
//   solo     (reactor)  -> admission: job-queue entry, pending table,
//                          SubmitAck emission — all the shared state
//   compute  (worker)   -> runPreparedCall, then the epilogue marshals
//                          the reply into one self-contained buffer
//   solo     (reactor)  -> finishStagedCall: write queue + flush
//
// The solo hops serialize every touch of connection and admission state
// on the reactor thread, so the stages themselves need no locks beyond
// the ones the legacy path already takes (queue, pending table).

void NinfServer::reactorStageCall(std::uint64_t conn_id,
                                  protocol::WireMode mode,
                                  protocol::Frame frame) {
  Job job;
  job.id = next_job_id_.fetch_add(1);
  // Decode cost is negligible next to compute; zero flops lets SJF run
  // prologues ahead of queued compute so admission stays responsive.
  job.estimated_flops = 0.0;
  job.enqueue_time = metrics_.now();
  // Job::run is a copyable std::function; the frame's slab is move-only,
  // so it rides across in a shared_ptr.
  job.run = [this, conn_id, mode,
             f = std::make_shared<protocol::Frame>(std::move(frame))]() {
    reactorPrologue(conn_id, mode, std::move(*f));
  };
  queue_.push(std::move(job));
}

void NinfServer::reactorPrologue(std::uint64_t conn_id,
                                 protocol::WireMode mode,
                                 protocol::Frame frame) {
  const protocol::FrameHeader header = frame.header;
  const bool is_submit = header.type == MessageType::SubmitRequest;
  // Adopt the client's propagated context so the unmarshal span (and the
  // later queue-wait/compute spans) join its trace.
  obs::ScopedTraceContext adopt(
      obs::TraceContext{header.trace.trace_id, header.trace.parent_span});

  // Idempotent-cache fast path, decided before unmarshalling: a hit or
  // an in-flight join skips the prologue decode, the queue, and the
  // compute entirely — the admission slot is released when the cached
  // reply reaches finishStagedCall (for a waiter, when the owner
  // fulfills; the call genuinely is in flight until then).
  ResultCache::Digest digest{};
  bool cache_owner = false;
  if (!is_submit && cache_) {
    const std::string_view name = peekCallName(frame.body.span());
    if (!name.empty() && registry_.isIdempotent(name)) {
      digest = ResultCache::digestOf(frame.body.span());
      const ResultCache::Lookup lookup = cache_->lookupOrJoin(
          digest, [this, conn_id, mode, header](ResultCache::Payload p) {
            sendCachedReply(conn_id, mode, header, std::move(p));
          });
      if (lookup.role != ResultCache::Role::Owner) {
        // Prologue over for this frame; rebalance the stage gauge on its
        // owning thread.
        reactor_->postSolo([] {
          static obs::Gauge& prologue_depth =
              obs::gauge("server.reactor.stage_depth.prologue");
          prologue_depth.set(std::max(0.0, prologue_depth.value() - 1.0));
        });
        if (lookup.role == ResultCache::Role::Hit) {
          sendCachedReply(conn_id, mode, header, std::move(lookup.payload));
        }
        return;
      }
      cache_owner = true;
    }
  }

  auto call = std::make_shared<PreparedCall>();
  std::string error;
  {
    obs::Span span(obs::phase::kServerUnmarshalArgs,
                   static_cast<std::int64_t>(frame.body.size()));
    span.setCallId(header.call_id);
    xdr::Decoder src(frame.body.span());
    try {
      *call = prepare(registry_, src);
    } catch (const std::exception& e) {
      error = e.what();
    }
  }

  // Solo stage: admission runs on the reactor thread, where connection
  // liveness and the in-flight budget are plain fields.
  reactor_->postSolo([this, conn_id, mode, header, is_submit, call,
                      cache_owner, digest,
                      error = std::move(error)]() mutable {
    static obs::Gauge& prologue_depth =
        obs::gauge("server.reactor.stage_depth.prologue");
    prologue_depth.set(std::max(0.0, prologue_depth.value() - 1.0));

    if (is_submit) {
      // Two-phase: the job detaches from the connection exactly as in
      // submitCall() — it runs (or records its decode error) under a
      // fresh id even if the client is already gone, and the SubmitAck
      // is this staged call's reply.
      const std::uint64_t id = next_job_id_.fetch_add(1);
      std::size_t depth = 0;
      {
        LockGuard lock(pending_mutex_);
        pending_.emplace(id, PendingResult{});
        depth = pending_.size();
      }
      updatePendingGauge(depth);
      if (!error.empty()) {
        LockGuard lock(pending_mutex_);
        pending_[id] = {true, metrics_.now(), errorReply(error)};
      } else {
        metrics_.jobQueued();
        Job job;
        job.id = id;
        job.estimated_flops = call->estimated_flops;
        job.enqueue_time = metrics_.now();
        job.run = [this, id, call, enqueue = job.enqueue_time]() mutable {
          ReplyPayload reply = runPreparedCall(metrics_, *call, enqueue);
          reply.keepalive = call;
          {
            LockGuard lock(pending_mutex_);
            pending_[id] = {true, metrics_.now(), std::move(reply)};
          }
          pending_cv_.notify_all();
        };
        queue_.push(std::move(job));
      }
      xdr::Encoder ack;
      ack.putU64(id);
      reactor_->finishStagedCall(
          conn_id, protocol::flattenFramePooled(mode, MessageType::SubmitAck,
                                                header.call_id, header.trace,
                                                ack));
      return;
    }

    if (!error.empty()) {
      ReplyPayload err = errorReply(error);
      if (cache_owner) cache_->fulfill(digest, materializeReply(err), false);
      reactor_->finishStagedCall(
          conn_id,
          protocol::flattenFramePooled(mode, MessageType::CallReply,
                                       header.call_id, header.trace,
                                       err.body));
      return;
    }
    if (!cache_owner && !reactor_->connAlive(conn_id)) {
      // The client vanished while the frame sat in prologue: skip the
      // compute entirely (finishStagedCall on a dead id is a no-op; the
      // admission slot was released when the connection was destroyed).
      // A cache owner never skips: waiters on other connections may be
      // parked on this digest, and fulfill() must happen exactly once.
      return;
    }
    metrics_.jobQueued();
    Job job;
    job.id = next_job_id_.fetch_add(1);
    job.estimated_flops = call->estimated_flops;
    job.enqueue_time = metrics_.now();
    job.run = [this, conn_id, mode, header, call, cache_owner, digest,
               enqueue = job.enqueue_time]() mutable {
      obs::ScopedTraceContext adopt(
          obs::TraceContext{header.trace.trace_id, header.trace.parent_span});
      ReplyPayload reply =
          runPreparedCall(metrics_, *call, enqueue, header.call_id);
      // Epilogue, still on this worker: marshal the reply into one
      // self-contained wire buffer (borrowed OUT arrays are byteswapped
      // into the copy), so nothing of the prepared call needs to
      // survive the hop back to the reactor.
      common::PooledBuffer wire;
      {
        obs::Span span(obs::phase::kServerMarshalResult);
        span.setCallId(header.call_id);
        if (cache_owner) {
          // Materialize once: the cache retains the shared payload and
          // every waiter (and this caller) frames the same bytes.
          ResultCache::Payload payload = materializeReply(reply);
          cache_->fulfill(digest, payload, reply.ok);
          wire = protocol::frameFromPayload(mode, MessageType::CallReply,
                                            header.call_id, header.trace,
                                            {payload->data(),
                                             payload->size()});
        } else {
          wire = protocol::flattenFramePooled(mode, MessageType::CallReply,
                                              header.call_id, header.trace,
                                              reply.body);
        }
        span.setBytes(static_cast<std::int64_t>(wire.size()));
      }
      // postSolo takes a copyable std::function; hand the move-only
      // slab across via shared_ptr.
      auto w = std::make_shared<common::PooledBuffer>(std::move(wire));
      reactor_->postSolo([this, conn_id, w]() {
        reactor_->finishStagedCall(conn_id, std::move(*w));
      });
    };
    queue_.push(std::move(job));
  });
}

void NinfServer::sendCachedReply(std::uint64_t conn_id,
                                 protocol::WireMode mode,
                                 const protocol::FrameHeader& header,
                                 ResultCache::Payload payload) {
  common::PooledBuffer wire;
  if (payload) {
    wire = protocol::frameFromPayload(mode, MessageType::CallReply,
                                      header.call_id, header.trace,
                                      {payload->data(), payload->size()});
  } else {
    // Owner aborted (server shutdown): fail the call explicitly rather
    // than leaving the client to time out.
    wire = protocol::flattenFramePooled(
        mode, MessageType::CallReply, header.call_id, header.trace,
        errorReply("idempotent call aborted before completion").body);
  }
  auto w = std::make_shared<common::PooledBuffer>(std::move(wire));
  reactor_->postSolo([this, conn_id, w]() {
    reactor_->finishStagedCall(conn_id, std::move(*w));
  });
}

}  // namespace ninf::server
