#include "server/job_queue.h"

#include <atomic>
#include <limits>

#include "common/error.h"
#include "obs/metrics.h"

namespace ninf::server {

namespace {
std::string queueName(std::string name) {
  if (!name.empty()) return name;
  static std::atomic<std::uint64_t> next{0};
  return "q" + std::to_string(next.fetch_add(1));
}
}  // namespace

JobQueue::JobQueue(QueuePolicy policy, std::string name)
    : policy_(policy),
      name_(queueName(std::move(name))),
      depth_gauge_(obs::gauge("server.queue.depth." + name_)) {}

const char* queuePolicyName(QueuePolicy p) {
  switch (p) {
    case QueuePolicy::Fcfs: return "FCFS";
    case QueuePolicy::Sjf: return "SJF";
  }
  return "?";
}

void JobQueue::push(Job job) {
  std::size_t depth = 0;
  {
    LockGuard lock(mutex_);
    NINF_REQUIRE(!closed_, "push to closed job queue");
    jobs_.push_back(std::move(job));
    depth = jobs_.size();
  }
  depth_gauge_.set(static_cast<double>(depth));
  cv_.notify_one();
}

std::size_t JobQueue::pickIndex() const {
  if (policy_ == QueuePolicy::Fcfs) return 0;
  // SJF: smallest CalcOrder estimate first; unknown (0) estimates are
  // treated as longest so hinted short jobs overtake them, with FCFS
  // order as the tie-break (stable because we scan front to back).
  std::size_t best = 0;
  auto keyOf = [](const Job& j) {
    return j.estimated_flops > 0 ? j.estimated_flops
                                 : std::numeric_limits<double>::infinity();
  };
  double best_key = keyOf(jobs_[0]);
  for (std::size_t i = 1; i < jobs_.size(); ++i) {
    const double key = keyOf(jobs_[i]);
    if (key < best_key) {
      best_key = key;
      best = i;
    }
  }
  return best;
}

std::optional<Job> JobQueue::pop() {
  UniqueLock lock(mutex_);
  cv_.wait(lock, [this] { return closed_ || !jobs_.empty(); });
  if (jobs_.empty()) return std::nullopt;
  const std::size_t idx = pickIndex();
  Job job = std::move(jobs_[idx]);
  jobs_.erase(jobs_.begin() + static_cast<std::ptrdiff_t>(idx));
  const std::size_t depth = jobs_.size();
  lock.unlock();
  depth_gauge_.set(static_cast<double>(depth));
  return job;
}

std::size_t JobQueue::depth() const {
  LockGuard lock(mutex_);
  return jobs_.size();
}

void JobQueue::close() {
  {
    LockGuard lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

}  // namespace ninf::server
