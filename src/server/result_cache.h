// Idempotent result cache with single-flight coalescing (PR 8).
//
// Entries registered with the IDL `Idempotent` clause are pure functions of
// their IN arguments, so the server may replay a previously computed reply
// instead of re-running the numerical kernel.  The cache key is a 128-bit
// digest of the raw CallRequest body bytes (entry name + marshalled IN
// data), which makes "identical call" mean "byte-identical request" --
// no IDL-aware canonicalisation, no false positives.
//
// Single-flight: when N identical calls arrive concurrently, exactly one
// (the Owner) computes; the other N-1 (Waiters) park a callback and are
// fulfilled with the very same flattened reply payload the owner produced.
// This is what turns a 256-client thundering herd of `dmmul(n=512, A, B)`
// into one kernel execution and 256 byte-identical replies.
//
// Locking: `server.cache` is a leaf below the channel/reactor locks (see
// declareCanonicalHierarchy).  Payload destruction and waiter callbacks
// always happen OUTSIDE the cache mutex so a multi-megabyte eviction or a
// reply flatten can never stall concurrent lookups.
#pragma once

#include <cstddef>
#include <cstdint>
#include <chrono>
#include <functional>
#include <list>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/sync.h"

namespace ninf::server {

/// Cache of flattened reply payloads keyed by request-body digest.
class ResultCache {
 public:
  struct Options {
    /// Total payload bytes the cache may retain; completed entries beyond
    /// this are evicted LRU-first.  0 disables retention entirely (every
    /// lookup misses), though single-flight coalescing still works.
    std::size_t max_bytes = 0;
    /// Completed entries older than this are dropped by sweep() and by
    /// lookups that touch them.  <= 0 means entries never expire by age.
    double ttl_seconds = 0.0;
  };

  /// 128-bit FNV-1a request digest (two independent 64-bit variants, so a
  /// single-lane collision cannot alias two distinct requests in practice).
  struct Digest {
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    bool operator==(const Digest&) const = default;
  };

  /// The cached unit: the flattened CallReply *payload* (body bytes, no
  /// frame header) -- header fields (call id, trace context) differ per
  /// caller, so each consumer wraps the shared payload in its own frame.
  using Payload = std::shared_ptr<const std::vector<std::uint8_t>>;

  /// Waiter completion.  Invoked outside the cache lock, on the fulfilling
  /// owner's thread.  A null payload means the owner aborted (server
  /// shutdown) and the waiter must fail the call itself.
  using ReadyFn = std::function<void(Payload)>;

  enum class Role {
    Hit,    ///< payload is ready in Lookup::payload
    Owner,  ///< caller computes; MUST call fulfill() exactly once
    Waiter  ///< on_ready was parked; it fires when the owner fulfills
  };

  struct Lookup {
    Role role = Role::Owner;
    Payload payload;  // set when role == Hit
  };

  explicit ResultCache(Options options);
  /// Fails any still-parked waiters with a null payload.
  ~ResultCache();

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  static Digest digestOf(std::span<const std::uint8_t> body);

  /// One call per incoming idempotent request.  `on_ready` must be
  /// non-empty; it is consumed only when the result is Waiter.
  Lookup lookupOrJoin(const Digest& digest, ReadyFn on_ready);

  /// Owner completes its computation.  `cacheable` is false for error
  /// replies: current waiters still receive the payload (byte-identical
  /// failure), but nothing is retained for future hits.
  void fulfill(const Digest& digest, Payload payload, bool cacheable);

  /// Drop completed entries older than ttl_seconds.  Called from the
  /// server's pending-result sweeper thread.
  void sweep();

  /// Retained payload bytes (also exported as the server.cache.bytes gauge).
  std::size_t bytes() const;
  /// Completed (hit-servable) entries currently resident.
  std::size_t entries() const;

 private:
  struct DigestHash {
    std::size_t operator()(const Digest& d) const noexcept {
      return static_cast<std::size_t>(d.a ^ (d.b * 0x9e3779b97f4a7c15ull));
    }
  };

  struct Entry {
    bool inflight = true;
    Payload payload;                                // set once completed
    std::vector<ReadyFn> waiters;                   // only while inflight
    std::chrono::steady_clock::time_point ready_at{};
    std::list<Digest>::iterator lru_it{};           // only once completed
  };

  using Map = std::unordered_map<Digest, Entry, DigestHash>;

  /// Unlink a completed entry; the payload is returned to the caller so its
  /// destruction happens outside the lock.
  Payload eraseCompletedLocked(Map::iterator it) NINF_REQUIRES(mutex_);

  Options options_;
  mutable Mutex mutex_{"server.cache"};
  Map map_ NINF_GUARDED_BY(mutex_);
  std::list<Digest> lru_ NINF_GUARDED_BY(mutex_);  // front = most recent
  std::size_t bytes_ NINF_GUARDED_BY(mutex_) = 0;
};

}  // namespace ninf::server
