#include "server/result_cache.h"

#include <utility>

#include "common/error.h"
#include "obs/metrics.h"

namespace ninf::server {

namespace {

struct Metrics {
  obs::Counter& hits = obs::counter("server.cache.hits");
  obs::Counter& misses = obs::counter("server.cache.misses");
  obs::Counter& merges = obs::counter("server.cache.inflight_merges");
  obs::Gauge& bytes = obs::gauge("server.cache.bytes");
};

Metrics& metrics() {
  static Metrics m;
  return m;
}

}  // namespace

ResultCache::ResultCache(Options options) : options_(options) {}

ResultCache::~ResultCache() {
  // Collect parked waiters under the lock, fail them outside it.
  std::vector<ReadyFn> orphans;
  {
    LockGuard lock(mutex_);
    for (auto& [digest, entry] : map_) {
      for (auto& w : entry.waiters) {
        if (w) orphans.push_back(std::move(w));
      }
      entry.waiters.clear();
    }
    map_.clear();
    lru_.clear();
    bytes_ = 0;
  }
  for (auto& w : orphans) w(nullptr);
}

ResultCache::Digest ResultCache::digestOf(std::span<const std::uint8_t> body) {
  // Two FNV-1a lanes with distinct offset bases; lane b also folds in the
  // byte position so transpositions diverge across lanes.
  std::uint64_t a = 0xcbf29ce484222325ull;
  std::uint64_t b = 0x84222325cbf29ce4ull;
  constexpr std::uint64_t kPrime = 0x100000001b3ull;
  std::uint64_t pos = 0;
  for (std::uint8_t byte : body) {
    a = (a ^ byte) * kPrime;
    b = (b ^ (byte + (++pos & 0xff))) * kPrime;
  }
  // Fold the length in so a request and its zero-padded extension differ.
  a = (a ^ body.size()) * kPrime;
  b = (b ^ (body.size() >> 3)) * kPrime;
  return Digest{a, b};
}

ResultCache::Payload ResultCache::eraseCompletedLocked(Map::iterator it) {
  Payload doomed = std::move(it->second.payload);
  if (doomed) bytes_ -= doomed->size();
  lru_.erase(it->second.lru_it);
  map_.erase(it);
  return doomed;
}

ResultCache::Lookup ResultCache::lookupOrJoin(const Digest& digest,
                                              ReadyFn on_ready) {
  auto& m = metrics();
  const auto now = std::chrono::steady_clock::now();
  Payload expired;  // destroyed outside the lock
  Lookup result;
  bool merged = false;
  {
    LockGuard lock(mutex_);
    auto it = map_.find(digest);
    if (it != map_.end() && !it->second.inflight && options_.ttl_seconds > 0) {
      const std::chrono::duration<double> age = now - it->second.ready_at;
      if (age.count() > options_.ttl_seconds) {
        expired = eraseCompletedLocked(it);
        it = map_.end();
      }
    }
    if (it == map_.end()) {
      Entry entry;
      entry.inflight = true;
      map_.emplace(digest, std::move(entry));
      result.role = Role::Owner;
    } else if (it->second.inflight) {
      NINF_REQUIRE(on_ready != nullptr, "inflight join needs a callback");
      it->second.waiters.push_back(std::move(on_ready));
      result.role = Role::Waiter;
      merged = true;
    } else {
      // Completed entry: refresh LRU position and serve.
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      result.role = Role::Hit;
      result.payload = it->second.payload;
    }
  }
  if (result.role == Role::Hit) {
    m.hits.add();
  } else if (merged) {
    m.merges.add();
  } else {
    m.misses.add();
  }
  return result;
}

void ResultCache::fulfill(const Digest& digest, Payload payload,
                          bool cacheable) {
  std::vector<ReadyFn> waiters;
  std::vector<Payload> evicted;  // destroyed outside the lock
  std::size_t resident = 0;
  {
    LockGuard lock(mutex_);
    auto it = map_.find(digest);
    if (it == map_.end()) return;  // entry raced away (shutdown)
    waiters = std::move(it->second.waiters);
    it->second.waiters.clear();
    const bool retain = cacheable && payload && options_.max_bytes > 0 &&
                        payload->size() <= options_.max_bytes;
    if (!retain) {
      map_.erase(it);
    } else {
      it->second.inflight = false;
      it->second.payload = payload;
      it->second.ready_at = std::chrono::steady_clock::now();
      lru_.push_front(digest);
      it->second.lru_it = lru_.begin();
      bytes_ += payload->size();
      while (bytes_ > options_.max_bytes && !lru_.empty()) {
        auto victim = map_.find(lru_.back());
        if (victim == map_.end()) {  // defensive; lru_ and map_ move together
          lru_.pop_back();
          continue;
        }
        if (victim == it) break;  // never evict the entry just inserted
        evicted.push_back(eraseCompletedLocked(victim));
      }
    }
    resident = bytes_;
  }
  metrics().bytes.set(static_cast<double>(resident));
  for (auto& w : waiters) {
    if (w) w(payload);
  }
}

void ResultCache::sweep() {
  if (options_.ttl_seconds <= 0) return;
  const auto now = std::chrono::steady_clock::now();
  std::vector<Payload> expired;
  std::size_t resident = 0;
  {
    LockGuard lock(mutex_);
    // Oldest completions cluster at the LRU tail only if access order
    // tracks completion order, which it need not -- walk the whole map.
    for (auto it = map_.begin(); it != map_.end();) {
      auto cur = it++;
      if (cur->second.inflight) continue;
      const std::chrono::duration<double> age = now - cur->second.ready_at;
      if (age.count() > options_.ttl_seconds) {
        expired.push_back(eraseCompletedLocked(cur));
      }
    }
    resident = bytes_;
  }
  metrics().bytes.set(static_cast<double>(resident));
}

std::size_t ResultCache::bytes() const {
  LockGuard lock(mutex_);
  return bytes_;
}

std::size_t ResultCache::entries() const {
  LockGuard lock(mutex_);
  return lru_.size();
}

}  // namespace ninf::server
