// Session layer under NinfClient: one Channel owns one connection and
// turns it into a request/reply service that many threads can share.
//
// After an initial Hello/HelloAck negotiation (lazy, performed inside the
// first exchange so it is bounded by that call's deadline) the channel
// runs in one of two modes:
//
//  * v2 (both ends speak protocol::kVersion2): every frame carries a
//    64-bit call ID, requests are pipelined through a send mutex, and a
//    dedicated reader thread demultiplexes replies — which may return in
//    any order — into per-call promises.  One connection sustains as many
//    concurrent in-flight calls as the server has workers.
//  * v1 (the peer never acked, or force_v1): the classic lock-step
//    exchange, one call at a time, serialized on the channel.
//
// Failure envelope: a timeout while a v2 call is still *waiting* for its
// reply abandons just that call (the late reply is drained as an orphan)
// and the channel stays healthy; a call whose reply is already being
// decoded when the deadline passes gets a short grace window
// (setMidReplyGrace), after which the peer is declared stalled mid-frame
// and the channel is broken — the partial frame can never be realigned.
// Any transport error on the shared wire breaks the channel and fails
// every in-flight call with a typed error.  resetIfBroken() tears the
// dead connection down so the next exchange reconnects through the
// factory.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <thread>

#include "common/buffer_pool.h"
#include "common/sync.h"
#include "protocol/message.h"
#include "transport/transport.h"
#include "xdr/xdr.h"

namespace ninf::client {

class Channel {
 public:
  using StreamFactory = std::function<std::unique_ptr<transport::Stream>()>;

  /// Reply header echoed to the caller, plus the channel's own clock
  /// marks bounding the server window (request fully sent, reply body
  /// fully consumed) for phase attribution.
  struct Reply {
    protocol::MessageType type{};
    std::uint32_t length = 0;
    std::uint64_t call_id = 0;  // v2 wire correlation id; 0 on v1
    double sent_us = 0.0;
    double recv_done_us = 0.0;
  };

  /// Invoked once with the reply header and a Source positioned at the
  /// reply body.  Runs on the calling thread in v1 mode and on the
  /// channel's reader thread in v2 mode — the caller is parked on the
  /// reply future either way, so decoding into caller-owned memory is
  /// safe.  May throw: unread body bytes are drained to keep framing
  /// aligned and the exception surfaces from transact() without harming
  /// the connection.
  using Consumer = std::function<void(const Reply&, xdr::Source&)>;

  /// Adopt an established stream.  force_v1 skips negotiation entirely
  /// (a protocol-v1 client; also handy for interop tests).
  explicit Channel(std::unique_ptr<transport::Stream> stream,
                   bool force_v1 = false);
  ~Channel();

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Factory used to replace the connection after a transport failure
  /// (and for the one free v1-fallback reconnect when the peer rejects
  /// Hello or aborts the connection on it).
  void setReconnect(StreamFactory fn);
  bool hasReconnect() const;

  /// Grace window past a call's deadline granted to a reply whose body
  /// is already being decoded (the reader is writing caller-owned
  /// arrays, so the call cannot simply be abandoned).  When it expires
  /// the peer is declared stalled mid-frame and the channel is broken.
  /// Default 0.25 s; tests shrink it.
  void setMidReplyGrace(double seconds);

  /// One request/reply exchange: send `body` as a `type` frame, deliver
  /// the reply to `consumer`, return the reply header.  `deadline`
  /// (absolute, Stream::kNoDeadline = unbounded) bounds the whole
  /// exchange including negotiation; expiry throws TimeoutError.
  Reply transact(protocol::MessageType type, const xdr::Encoder& body,
                 Consumer consumer,
                 std::chrono::steady_clock::time_point deadline =
                     transport::Stream::kNoDeadline) NINF_BLOCKING;

  /// Protocol version in force: 0 before the first exchange, then 1 or 2.
  std::uint32_t negotiatedVersion() const;

  /// True when the connection negotiated the trace-context extension
  /// (40-byte traced v2 frames in both directions).  Only possible when
  /// the tracer was enabled at negotiation time.
  bool tracePropagationNegotiated() const {
    return trace_wire_.load(std::memory_order_acquire);
  }

  /// Advertise extra feature bits (protocol::kFeature*) in the next
  /// Hello, beyond the trace-context bit (which follows the tracer).
  /// Set before the first exchange; bits the peer does not echo are
  /// simply off.
  void requestFeatures(std::uint32_t bits) {
    requested_features_.fetch_or(bits, std::memory_order_relaxed);
  }

  /// Feature bitmask the peer echoed in HelloAck — always a subset of
  /// what we advertised.  0 before the first exchange, on a
  /// pre-extension peer, and on forced-v1 connections.
  std::uint32_t negotiatedFeatures() const {
    return negotiated_features_.load(std::memory_order_acquire);
  }

  /// Diagnostic peer description of the current connection.
  std::string peerName() const;

  /// True when the connection is known dead (every new exchange will
  /// fail until resetIfBroken()).
  bool broken() const { return broken_.load(std::memory_order_acquire); }

  /// Tear down a broken connection (join the reader, drop the stream) so
  /// the next transact() reconnects.  No-op while healthy — a v2 call
  /// that merely timed out must not kill its siblings' connection.
  void resetIfBroken();

  /// Close the connection; in-flight calls fail with TransportError.  A
  /// later transact() may revive the channel through the factory.
  void close();

 private:
  enum class Mode { Undecided, V1, V2 };

  struct PendingCall {
    Consumer consumer;
    std::promise<Reply> promise;
    // Both fields are guarded by the owning channel's pending_mutex_
    // (inexpressible as an annotation from a nested struct).
    double sent_us = 0.0;
    enum State { Waiting, Consuming } state = Waiting;
  };

  /// Reconnect + negotiate as needed.
  void ensureReadyLocked(std::chrono::steady_clock::time_point deadline)
      NINF_REQUIRES(setup_mutex_);
  void negotiateLocked(std::chrono::steady_clock::time_point deadline)
      NINF_REQUIRES(setup_mutex_);
  /// Switch to protocol v1 over one fresh connection.  Only callable
  /// from inside a negotiate catch handler (rethrows the in-flight
  /// exception when no reconnect factory exists).
  void fallbackToV1Locked(const char* why) NINF_REQUIRES(setup_mutex_);
  /// Close + join reader + drop the stream.
  void teardownLocked() NINF_REQUIRES(setup_mutex_);

  Reply transactV1Locked(protocol::MessageType type, const xdr::Encoder& body,
                         const Consumer& consumer,
                         std::chrono::steady_clock::time_point deadline)
      NINF_REQUIRES(setup_mutex_);
  Reply transactV2(protocol::MessageType type, const xdr::Encoder& body,
                   Consumer consumer,
                   std::chrono::steady_clock::time_point deadline);

  void readerLoop(transport::Stream* stream, bool traced);
  /// Mark broken and fail every pending call with `error`.
  void failAllPending(std::exception_ptr error);
  /// Remove one pending entry (if still present) and update the gauge.
  void erasePending(std::uint64_t id);

  /// Group-commit send of one small pre-flattened v2 frame: the frame
  /// joins the batch queue, and the first enqueuer becomes the flusher —
  /// it collects every frame queued by concurrent callers (bounded by
  /// common::batchLimits()) and writes them with ONE sendv while later
  /// arrivals keep queueing, then wakes the owners.  Returns once this
  /// frame is on the wire; throws TransportError (exactly like a direct
  /// send) if its flush failed.
  void sendV2Batched(common::PooledBuffer frame);

  /// Serializes connection setup / negotiation / teardown, and the whole
  /// exchange in v1 mode.  Lock order: setup -> send -> pending.
  mutable Mutex setup_mutex_{"channel.setup"};
  std::unique_ptr<transport::Stream> stream_ NINF_GUARDED_BY(setup_mutex_);
  StreamFactory reconnect_ NINF_GUARDED_BY(setup_mutex_);
  Mode mode_ NINF_GUARDED_BY(setup_mutex_) = Mode::Undecided;
  bool force_v1_ = false;  // immutable after construction
  std::atomic<std::uint32_t> negotiated_version_{0};
  std::atomic<std::uint32_t> requested_features_{0};
  std::atomic<std::uint32_t> negotiated_features_{0};
  std::atomic<bool> trace_wire_{false};
  std::atomic<bool> broken_{false};
  std::atomic<double> mid_reply_grace_s_{0.25};

  /// v2 state: frame sends are atomic under send_mutex_; the pending map
  /// (and each entry's state/sent_us) under pending_mutex_.  wire_
  /// mirrors stream_.get() (both are swapped while holding setup AND
  /// send), so v2 senders reach the wire without the setup lock.
  Mutex send_mutex_ NINF_ACQUIRED_AFTER(setup_mutex_){"channel.send"};
  transport::Stream* wire_ NINF_GUARDED_BY(send_mutex_) = nullptr;

  /// Send-side batching state.  "channel.batch" orders BEFORE
  /// "channel.send" in the canonical hierarchy, but the flusher never
  /// holds both: it collects a wave under batch_mutex_, releases it,
  /// and performs the sendv under send_mutex_ alone — so enqueuers are
  /// never parked behind wire I/O (that is the group commit).
  struct BatchItem {
    common::PooledBuffer frame;
    bool done = false;  // guarded by the owning channel's batch_mutex_
    std::exception_ptr error;
  };
  Mutex batch_mutex_{"channel.batch"};
  CondVar batch_cv_;
  std::deque<std::shared_ptr<BatchItem>> batch_queue_
      NINF_GUARDED_BY(batch_mutex_);
  bool batch_flusher_active_ NINF_GUARDED_BY(batch_mutex_) = false;
  Mutex pending_mutex_ NINF_ACQUIRED_AFTER(send_mutex_){"channel.pending"};
  std::map<std::uint64_t, std::shared_ptr<PendingCall>> pending_
      NINF_GUARDED_BY(pending_mutex_);
  std::atomic<std::uint64_t> next_call_id_{1};
  std::thread reader_ NINF_GUARDED_BY(setup_mutex_);
};

}  // namespace ninf::client
