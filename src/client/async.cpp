#include "client/async.h"

#include "obs/trace.h"

namespace ninf::client {

std::future<CallResult> AsyncCaller::callAsync(
    std::string name, std::vector<protocol::ArgValue> args) {
  auto task = std::make_shared<std::packaged_task<CallResult()>>(
      [this, name = std::move(name), args = std::move(args)] {
        // Root span on the dispatch thread; the dispatcher's own call
        // span (and everything under it) nests inside.
        obs::Span root("async-call");
        root.setDetail(name);
        return dispatcher_.dispatch(name, args);
      });
  std::future<CallResult> result = task->get_future();
  // Track completion (ignoring the value) so waitAll can block on it.
  std::shared_future<void> done =
      std::async(std::launch::async, [task] { (*task)(); }).share();
  {
    LockGuard lock(mutex_);
    inflight_.push_back(done);
  }
  return result;
}

void AsyncCaller::waitAll() {
  std::vector<std::shared_future<void>> pending;
  {
    LockGuard lock(mutex_);
    pending.swap(inflight_);
  }
  for (auto& f : pending) f.wait();
}

}  // namespace ninf::client
