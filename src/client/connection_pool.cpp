#include "client/connection_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>

#include "common/error.h"
#include "common/log.h"
#include "obs/metrics.h"

namespace ninf::client {

namespace {

double nowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Process-wide totals behind the pool gauges (obs::Gauge has no add();
/// several pools may coexist in one process, e.g. the inproc tests).
std::atomic<long> g_idle{0};
std::atomic<long> g_in_use{0};

void bumpIdle(long delta) {
  static obs::Gauge& gauge = obs::gauge("pool.idle");
  gauge.set(static_cast<double>(g_idle.fetch_add(delta) + delta));
}

void bumpInUse(long delta) {
  static obs::Gauge& gauge = obs::gauge("pool.in_use");
  gauge.set(static_cast<double>(g_in_use.fetch_add(delta) + delta));
}

}  // namespace

ConnectionPool::Lease& ConnectionPool::Lease::operator=(
    Lease&& other) noexcept {
  if (this != &other) {
    if (pool_) pool_->release(endpoint_, std::move(client_), generation_);
    pool_ = other.pool_;
    endpoint_ = std::move(other.endpoint_);
    client_ = std::move(other.client_);
    generation_ = other.generation_;
    other.pool_ = nullptr;
    other.client_.reset();
  }
  return *this;
}

ConnectionPool::Lease::~Lease() {
  if (pool_) pool_->release(endpoint_, std::move(client_), generation_);
}

void ConnectionPool::Lease::discard() { client_.reset(); }

ConnectionPool::ConnectionPool(PoolOptions options) : options_(options) {}

ConnectionPool::~ConnectionPool() { clear(); }

ConnectionPool::Lease ConnectionPool::acquire(const std::string& endpoint,
                                              const Factory& factory,
                                              std::uint64_t generation) {
  static obs::Counter& hits = obs::counter("pool.hits");
  static obs::Counter& misses = obs::counter("pool.misses");
  static obs::Counter& ttl_evictions = obs::counter("pool.ttl_evictions");
  static obs::Counter& dead_evictions = obs::counter("pool.dead_evictions");
  static obs::Counter& generation_flushes =
      obs::counter("pool.generation_flushes");

  for (;;) {
    std::unique_ptr<NinfClient> candidate;
    double idle_since = 0.0;
    std::vector<IdleEntry> expired;  // closed outside the lock
    std::size_t flushed = 0;
    const double now = nowSeconds();
    long reclaimed = 0;
    {
      LockGuard lock(mutex_);
      auto it = idle_.find(endpoint);
      if (it != idle_.end()) {
        auto& entries = it->second;
        // Oldest entries sit at the front (returns push_back): shed the
        // ones past the idle TTL first.
        while (!entries.empty() && options_.idle_ttl_seconds > 0 &&
               now - entries.front().idle_since > options_.idle_ttl_seconds) {
          expired.push_back(std::move(entries.front()));
          entries.erase(entries.begin());
        }
        // Entries pooled under a different generation are stale routes
        // (the topology changed under the endpoint): flush them all.
        for (auto entry = entries.begin(); entry != entries.end();) {
          if (entry->generation != generation) {
            expired.push_back(std::move(*entry));
            entry = entries.erase(entry);
            ++flushed;
          } else {
            ++entry;
          }
        }
        if (!entries.empty()) {
          candidate = std::move(entries.back().client);
          idle_since = entries.back().idle_since;
          entries.pop_back();
        }
      }
      reclaimed = static_cast<long>(expired.size() + (candidate ? 1 : 0));
    }
    // Gauge updates lock the obs registry on first touch; keep that out
    // of the pool critical section.
    if (reclaimed > 0) bumpIdle(-reclaimed);
    if (flushed > 0) generation_flushes.add(flushed);
    if (expired.size() > flushed) ttl_evictions.add(expired.size() - flushed);
    expired.clear();

    if (!candidate) break;  // pool dry for this endpoint

    if (now - idle_since > options_.health_check_after_seconds) {
      try {
        // Bounded: acquire() runs inside callers' deadline envelopes
        // (metaserver dispatch), so a stalled-but-open peer must cost at
        // most the health-check timeout, then be evicted.
        candidate->ping(0, std::max(options_.health_check_timeout_seconds,
                                    0.001));
      } catch (const Error& e) {
        NINF_LOG(Debug) << "pooled connection to " << endpoint
                        << " failed health check: " << e.what();
        dead_evictions.add();
        candidate.reset();
        continue;  // try the next idle entry
      }
    }
    hits.add();
    {
      LockGuard lock(mutex_);
      ++in_use_;
    }
    bumpInUse(+1);
    return Lease(this, endpoint, std::move(candidate), generation);
  }

  misses.add();
  std::unique_ptr<NinfClient> fresh = factory();  // network I/O: no lock
  NINF_REQUIRE(fresh != nullptr, "pool factory returned no client");
  {
    LockGuard lock(mutex_);
    ++in_use_;
  }
  bumpInUse(+1);
  return Lease(this, endpoint, std::move(fresh), generation);
}

void ConnectionPool::release(const std::string& endpoint,
                             std::unique_ptr<NinfClient> client,
                             std::uint64_t generation) {
  std::unique_ptr<NinfClient> doomed;  // closed outside the lock
  {
    LockGuard lock(mutex_);
    --in_use_;
  }
  bumpInUse(-1);
  if (client && client->channel().broken()) {
    static obs::Counter& dead = obs::counter("pool.dead_evictions");
    dead.add();
    client.reset();
  }
  if (!client) return;
  bool pooled = false;
  {
    LockGuard lock(mutex_);
    auto& entries = idle_[endpoint];
    entries.push_back({std::move(client), nowSeconds(), generation});
    if (entries.size() > options_.max_idle_per_endpoint) {
      doomed = std::move(entries.front().client);
      entries.erase(entries.begin());
    } else {
      pooled = true;
    }
  }
  if (pooled) bumpIdle(+1);
  if (doomed) {
    static obs::Counter& overflow = obs::counter("pool.overflow_evictions");
    overflow.add();
  }
}

std::size_t ConnectionPool::idleCount() const {
  LockGuard lock(mutex_);
  std::size_t n = 0;
  for (const auto& [endpoint, entries] : idle_) n += entries.size();
  return n;
}

std::size_t ConnectionPool::inUseCount() const {
  LockGuard lock(mutex_);
  return in_use_;
}

void ConnectionPool::clear() {
  std::map<std::string, std::vector<IdleEntry>> doomed;
  {
    LockGuard lock(mutex_);
    doomed.swap(idle_);
  }
  std::size_t n = 0;
  for (const auto& [endpoint, entries] : doomed) n += entries.size();
  if (n > 0) bumpIdle(-static_cast<long>(n));
}

}  // namespace ninf::client
