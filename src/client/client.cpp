#include "client/client.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <thread>

#include "common/error.h"
#include "common/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "transport/tcp_transport.h"
#include "xdr/xdr.h"

namespace ninf::client {

using protocol::ArgValue;
using protocol::Message;
using protocol::MessageType;

namespace {

double nowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::chrono::steady_clock::time_point deadlineIn(double seconds) {
  return seconds > 0
             ? std::chrono::steady_clock::now() +
                   std::chrono::duration_cast<
                       std::chrono::steady_clock::duration>(
                       std::chrono::duration<double>(seconds))
             : transport::Stream::kNoDeadline;
}

void requireType(MessageType got, MessageType expected) {
  if (got != expected) {
    throw ProtocolError("expected message type " +
                        std::to_string(static_cast<unsigned>(expected)) +
                        ", got " +
                        std::to_string(static_cast<unsigned>(got)));
  }
}

}  // namespace

NinfClient::NinfClient(std::unique_ptr<transport::Stream> stream,
                       bool force_v1)
    : channel_(std::make_unique<Channel>(std::move(stream), force_v1)) {}

std::unique_ptr<NinfClient> NinfClient::connectTcp(const std::string& host,
                                                   std::uint16_t port,
                                                   double timeout_seconds) {
  obs::Span span(obs::phase::kConnect);
  span.setDetail(host + ":" + std::to_string(port));
  static obs::Counter& connects = obs::counter("client.connects");
  connects.add();
  try {
    auto client = std::make_unique<NinfClient>(
        transport::tcpConnect(host, port, timeout_seconds));
    client->setReconnect([host, port, timeout_seconds] {
      return transport::tcpConnect(host, port, timeout_seconds);
    });
    return client;
  } catch (const TransportError& e) {
    static obs::Counter& failures = obs::counter("client.connect_failures");
    failures.add();
    throw TransportError("Ninf server " + host + ":" + std::to_string(port) +
                         " unreachable: " + e.what());
  }
}

template <typename Fn>
auto NinfClient::retryLoop(const std::string& what, const CallOptions& opts,
                           Fn&& fn)
    -> decltype(fn(std::chrono::steady_clock::time_point{})) {
  using clock = std::chrono::steady_clock;
  const bool bounded = opts.deadline_seconds > 0;
  const clock::time_point deadline =
      bounded ? clock::now() +
                    std::chrono::duration_cast<clock::duration>(
                        std::chrono::duration<double>(opts.deadline_seconds))
              : transport::Stream::kNoDeadline;
  double backoff = std::max(0.0, opts.backoff_seconds);
  for (std::size_t attempt = 0;; ++attempt) {
    try {
      return fn(deadline);
    } catch (const TransportError&) {
      // Only a dead connection is torn down: a multiplexed call that
      // merely timed out leaves the channel (and its siblings) alone.
      channel_->resetIfBroken();
      if (attempt >= opts.retries || !channel_->hasReconnect()) throw;
      const double remaining =
          bounded ? std::chrono::duration<double>(deadline - clock::now())
                        .count()
                  : std::numeric_limits<double>::infinity();
      // Not enough budget left to back off and try again: surface the
      // transport error we have rather than a guaranteed timeout.
      if (remaining <= backoff) throw;
      static obs::Counter& retries = obs::counter("client.call_retries");
      retries.add();
      NINF_LOG(Debug) << what << ": retrying (attempt " << attempt + 1
                      << " of " << opts.retries << ")";
      if (backoff > 0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
      }
      backoff = backoff > 0 ? backoff * 2 : 0.0;
    }
  }
}

Message NinfClient::roundTrip(MessageType type,
                              std::span<const std::uint8_t> payload,
                              MessageType expected,
                              std::chrono::steady_clock::time_point deadline) {
  xdr::Encoder enc;
  enc.putRaw(payload);
  Message reply;
  channel_->transact(
      type, enc,
      [&reply, expected](const Channel::Reply& r, xdr::Source& body) {
        requireType(r.type, expected);
        reply.type = r.type;
        reply.payload.resize(r.length);
        body.getRaw(reply.payload);
      },
      deadline);
  return reply;
}

const idl::InterfaceInfo& NinfClient::queryInterface(const std::string& name) {
  return queryInterface(name, transport::Stream::kNoDeadline);
}

const idl::InterfaceInfo& NinfClient::queryInterface(const std::string& name,
                                                     double timeout_seconds) {
  return queryInterface(name, deadlineIn(timeout_seconds));
}

const idl::InterfaceInfo& NinfClient::queryInterface(
    const std::string& name, std::chrono::steady_clock::time_point deadline) {
  {
    LockGuard lock(cache_mutex_);
    auto it = interface_cache_.find(name);
    if (it != interface_cache_.end()) return it->second;
  }

  xdr::Encoder enc;
  enc.putString(name);
  std::vector<std::uint8_t> payload;
  channel_->transact(
      MessageType::QueryInterface, enc,
      [&payload](const Channel::Reply& r, xdr::Source& body) {
        requireType(r.type, MessageType::InterfaceReply);
        payload.resize(r.length);
        body.getRaw(payload);
      },
      deadline);
  xdr::Decoder dec(payload);
  if (!dec.getBool()) {
    throw NotFoundError("executable '" + name + "' on " +
                        channel_->peerName());
  }
  auto info = idl::InterfaceInfo::decode(dec);
  LockGuard lock(cache_mutex_);
  return interface_cache_.emplace(name, std::move(info)).first->second;
}

namespace {

/// Reconstruct the server-side phases on the client's clock.  The reply
/// carries the server-relative enqueue/dequeue/complete timestamps, so
/// the window between "request fully sent" and "reply fully received"
/// decomposes into queue-wait, compute, and result transfer (recv) — the
/// columns of the paper's Tables 3 and 6.  Durations come from the
/// server clock (marked in the span detail); placement on the client
/// timeline is sequential within the window, clamped so a skewed server
/// clock can never produce spans that overrun the observed wall time.
void emitServerDerivedPhases(const obs::Span& root, const CallResult& result,
                             double sent_us, double recv_done_us,
                             std::int64_t reply_bytes,
                             std::uint64_t call_id) {
  if (!root.active()) return;
  const double window_us = std::max(0.0, recv_done_us - sent_us);
  double wait_us = std::max(0.0, result.server.waitTime()) * 1e6;
  double comp_us =
      std::max(0.0, result.server.complete - result.server.dequeue) * 1e6;
  if (wait_us + comp_us > window_us && wait_us + comp_us > 0) {
    const double scale = window_us / (wait_us + comp_us);
    wait_us *= scale;
    comp_us *= scale;
  }
  obs::SpanRecord rec;
  rec.trace_id = root.traceId();
  rec.parent_id = root.id();
  rec.call_id = call_id;
  rec.detail = "server-clock";

  rec.name = obs::phase::kQueueWait;
  rec.start_us = sent_us;
  rec.dur_us = wait_us;
  obs::emitSpan(rec);

  rec.span_id = 0;  // fresh id for each emitted span
  rec.name = obs::phase::kCompute;
  rec.start_us = sent_us + wait_us;
  rec.dur_us = comp_us;
  obs::emitSpan(rec);

  rec.span_id = 0;
  rec.name = obs::phase::kRecv;
  rec.start_us = sent_us + wait_us + comp_us;
  rec.dur_us = window_us - wait_us - comp_us;
  rec.detail = "result transfer (window minus server time)";
  rec.bytes = reply_bytes;
  obs::emitSpan(rec);
}

}  // namespace

CallResult NinfClient::call(const std::string& name,
                            std::span<const ArgValue> args,
                            const CallOptions& opts) {
  return retryLoop("call '" + name + "'", opts,
                   [&](std::chrono::steady_clock::time_point deadline) {
                     return callOnce(name, args, deadline);
                   });
}

CallResult NinfClient::callOnce(
    const std::string& name, std::span<const ArgValue> args,
    std::chrono::steady_clock::time_point deadline) {
  const idl::InterfaceInfo& info = queryInterface(name, deadline);

  obs::Span root(obs::phase::kCall);
  root.setDetail(name);

  // Streaming pipeline: the request encoder borrows the caller's IN
  // arrays (no contiguous request buffer), and the reply's OUT arrays are
  // received directly into the caller's spans — on the channel's reader
  // thread when multiplexed, while this thread parks on the reply.
  const xdr::Encoder request = protocol::buildCallRequest(info, args);

  CallResult result;
  result.bytes_sent = static_cast<std::int64_t>(request.size());
  const double start = nowSeconds();
  const Channel::Reply reply = channel_->transact(
      MessageType::CallRequest, request,
      [&info, &args, &result](const Channel::Reply& r, xdr::Source& body) {
        requireType(r.type, MessageType::CallReply);
        result.server = protocol::decodeCallReply(info, body, args);
      },
      deadline);
  result.elapsed = nowSeconds() - start;
  result.bytes_received = static_cast<std::int64_t>(reply.length);

  root.setCallId(reply.call_id);
  emitServerDerivedPhases(root, result, reply.sent_us, reply.recv_done_us,
                          result.bytes_received, reply.call_id);
  static obs::Counter& calls = obs::counter("client.calls");
  static obs::Histogram& call_s = obs::histogram("client.call_seconds");
  static obs::Histogram& wait_s = obs::histogram("client.queue_wait_seconds");
  calls.add();
  call_s.observe(result.elapsed);
  wait_s.observe(std::max(0.0, result.server.waitTime()));
  return result;
}

JobHandle NinfClient::submit(const std::string& name,
                             std::span<const ArgValue> args,
                             const CallOptions& opts) {
  return retryLoop("submit '" + name + "'", opts,
                   [&](std::chrono::steady_clock::time_point deadline) {
                     return submitOnce(name, args, deadline);
                   });
}

JobHandle NinfClient::submitOnce(
    const std::string& name, std::span<const ArgValue> args,
    std::chrono::steady_clock::time_point deadline) {
  const idl::InterfaceInfo& info = queryInterface(name, deadline);
  obs::Span root("submit");
  root.setDetail(name);
  const xdr::Encoder request = protocol::buildCallRequest(info, args);
  JobHandle handle{0, name};
  channel_->transact(
      MessageType::SubmitRequest, request,
      [&handle](const Channel::Reply& r, xdr::Source& body) {
        requireType(r.type, MessageType::SubmitAck);
        handle.id = body.getU64();
      },
      deadline);
  return handle;
}

std::optional<CallResult> NinfClient::fetch(const JobHandle& handle,
                                            std::span<const ArgValue> args,
                                            const CallOptions& opts) {
  return retryLoop("fetch '" + handle.name + "'", opts,
                   [&](std::chrono::steady_clock::time_point deadline) {
                     return fetchOnce(handle, args, deadline);
                   });
}

std::optional<CallResult> NinfClient::fetchOnce(
    const JobHandle& handle, std::span<const ArgValue> args,
    std::chrono::steady_clock::time_point deadline) {
  const idl::InterfaceInfo& info = queryInterface(handle.name, deadline);
  obs::Span root("fetch");
  root.setDetail(handle.name);
  xdr::Encoder enc;
  enc.putU64(handle.id);
  std::optional<CallResult> out;
  const double start = nowSeconds();
  const Channel::Reply reply = channel_->transact(
      MessageType::FetchResult, enc,
      [&info, &args, &out](const Channel::Reply& r, xdr::Source& body) {
        if (r.type == MessageType::ResultPending) return;
        if (r.type != MessageType::CallReply) {
          throw ProtocolError("unexpected reply to FetchResult");
        }
        CallResult result;
        result.server = protocol::decodeCallReply(info, body, args);
        out = result;
      },
      deadline);
  if (out) {
    out->elapsed = nowSeconds() - start;
    out->bytes_received = static_cast<std::int64_t>(reply.length);
  }
  return out;
}

std::vector<std::string> NinfClient::listExecutables() {
  const Message reply =
      roundTrip(MessageType::ListExecutables, {}, MessageType::ExecutableList,
                transport::Stream::kNoDeadline);
  xdr::Decoder dec(reply.payload);
  const std::uint32_t count = dec.getU32();
  std::vector<std::string> names;
  names.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) names.push_back(dec.getString());
  return names;
}

protocol::ServerStatusInfo NinfClient::serverStatus(double timeout_seconds) {
  const Message reply = roundTrip(MessageType::ServerStatus, {},
                                  MessageType::StatusReply,
                                  deadlineIn(timeout_seconds));
  return protocol::ServerStatusInfo::fromBytes(reply.payload);
}

double NinfClient::ping(std::size_t payload_bytes, double timeout_seconds) {
  std::vector<std::uint8_t> payload(payload_bytes, 0xA5);
  const double start = nowSeconds();
  const Message reply = roundTrip(MessageType::Ping, payload,
                                  MessageType::Pong,
                                  deadlineIn(timeout_seconds));
  if (reply.payload != payload) throw ProtocolError("ping echo mismatch");
  return nowSeconds() - start;
}

namespace {

/// One control-plane exchange whose reply may be the expected type or a
/// WrongShard redirect.  Decodes either; a redirect becomes a typed
/// WrongShardError after the body is fully consumed (keeping framing
/// aligned either way).
template <typename Reply>
Reply controlExchange(Channel& channel, MessageType type,
                      const xdr::Encoder& body, MessageType expected,
                      Reply (*decode)(xdr::Source&),
                      std::chrono::steady_clock::time_point deadline) {
  std::optional<Reply> reply;
  std::optional<protocol::RedirectInfo> redirect;
  channel.transact(
      type, body,
      [&](const Channel::Reply& r, xdr::Source& src) {
        if (r.type == MessageType::WrongShard) {
          redirect = protocol::RedirectInfo::decode(src);
          return;
        }
        requireType(r.type, expected);
        reply = decode(src);
      },
      deadline);
  if (redirect) {
    throw WrongShardError(
        "'" + redirect->entry + "' belongs to shard " +
            std::to_string(redirect->owner_shard) + " (ring epoch " +
            std::to_string(redirect->ring_epoch) + ")",
        redirect->owner_shard, redirect->ring_epoch,
        redirect->reason == protocol::RedirectReason::NotPrimary);
  }
  return std::move(*reply);
}

}  // namespace

protocol::RingDescriptor NinfClient::ringInfo(std::uint64_t known_epoch,
                                              double timeout_seconds) {
  xdr::Encoder enc;
  enc.putU64(known_epoch);
  protocol::RingDescriptor ring;
  channel_->transact(
      MessageType::RingQuery, enc,
      [&ring](const Channel::Reply& r, xdr::Source& src) {
        requireType(r.type, MessageType::RingInfo);
        ring = protocol::RingDescriptor::decode(src);
      },
      deadlineIn(timeout_seconds));
  return ring;
}

protocol::ScheduleChoice NinfClient::scheduleQuery(
    const std::string& entry, const std::vector<std::string>& excluded,
    double timeout_seconds) {
  protocol::ScheduleRequest req;
  req.entry = entry;
  req.excluded = excluded;
  xdr::Encoder enc;
  req.encode(enc);
  auto choice = controlExchange(*channel_, MessageType::ScheduleQuery, enc,
                                MessageType::ScheduleReply,
                                &protocol::ScheduleChoice::decode,
                                deadlineIn(timeout_seconds));
  // An empty name is the node saying "no reachable candidate" — the
  // typed not-found its in-process pickAmong would have thrown.
  if (choice.server_name.empty()) {
    throw NotFoundError("no reachable server for '" + entry + "' on " +
                        channel_->peerName());
  }
  return choice;
}

protocol::RegisterResult NinfClient::registerServer(
    const protocol::WireServerDesc& desc, std::uint64_t reg_epoch,
    double timeout_seconds) {
  protocol::RegistryOp op;
  op.kind = protocol::RegistryOp::Kind::Register;
  op.desc = desc;
  op.reg_epoch = reg_epoch;
  xdr::Encoder enc;
  op.encode(enc);
  auto result = controlExchange(*channel_, MessageType::RegisterServer, enc,
                                MessageType::RegisterAck,
                                &protocol::RegisterResult::decode,
                                deadlineIn(timeout_seconds));
  if (result.status == protocol::RegisterResult::Status::Fenced) {
    throw FencedError("registration of " + desc.endpoint + " rejected by " +
                      channel_->peerName());
  }
  return result;
}

protocol::RegisterResult NinfClient::deregisterServer(
    const std::string& endpoint, std::uint64_t reg_epoch,
    double timeout_seconds) {
  protocol::RegistryOp op;
  op.kind = protocol::RegistryOp::Kind::Deregister;
  op.desc.endpoint = endpoint;
  op.reg_epoch = reg_epoch;
  xdr::Encoder enc;
  op.encode(enc);
  auto result = controlExchange(*channel_, MessageType::DeregisterServer, enc,
                                MessageType::RegisterAck,
                                &protocol::RegisterResult::decode,
                                deadlineIn(timeout_seconds));
  if (result.status == protocol::RegisterResult::Status::Fenced) {
    throw FencedError("deregistration of " + endpoint + " rejected by " +
                      channel_->peerName());
  }
  return result;
}

protocol::ReplAckMsg NinfClient::replAppend(const protocol::ReplAppendMsg& msg,
                                            double timeout_seconds) {
  xdr::Encoder enc;
  msg.encode(enc);
  protocol::ReplAckMsg ack;
  channel_->transact(
      MessageType::ReplAppend, enc,
      [&ack](const Channel::Reply& r, xdr::Source& src) {
        requireType(r.type, MessageType::ReplAck);
        ack = protocol::ReplAckMsg::decode(src);
      },
      deadlineIn(timeout_seconds));
  return ack;
}

protocol::ReplAckMsg NinfClient::replHeartbeat(
    const protocol::ReplHeartbeatMsg& msg, double timeout_seconds) {
  xdr::Encoder enc;
  msg.encode(enc);
  protocol::ReplAckMsg ack;
  channel_->transact(
      MessageType::ReplHeartbeat, enc,
      [&ack](const Channel::Reply& r, xdr::Source& src) {
        requireType(r.type, MessageType::ReplAck);
        ack = protocol::ReplAckMsg::decode(src);
      },
      deadlineIn(timeout_seconds));
  return ack;
}

void NinfClient::close() { channel_->close(); }

}  // namespace ninf::client
