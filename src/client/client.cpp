#include "client/client.h"

#include <chrono>

#include "common/error.h"
#include "transport/tcp_transport.h"
#include "xdr/xdr.h"

namespace ninf::client {

using protocol::ArgValue;
using protocol::Message;
using protocol::MessageType;

namespace {
double nowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

NinfClient::NinfClient(std::unique_ptr<transport::Stream> stream)
    : stream_(std::move(stream)) {
  NINF_REQUIRE(stream_ != nullptr, "null stream");
}

std::unique_ptr<NinfClient> NinfClient::connectTcp(const std::string& host,
                                                   std::uint16_t port) {
  return std::make_unique<NinfClient>(transport::tcpConnect(host, port));
}

Message NinfClient::roundTrip(MessageType type,
                              std::span<const std::uint8_t> payload,
                              MessageType expected) {
  protocol::sendMessage(*stream_, type, payload);
  Message reply = protocol::recvMessage(*stream_);
  if (reply.type != expected) {
    throw ProtocolError("expected message type " +
                        std::to_string(static_cast<unsigned>(expected)) +
                        ", got " +
                        std::to_string(static_cast<unsigned>(reply.type)));
  }
  return reply;
}

const idl::InterfaceInfo& NinfClient::queryInterface(const std::string& name) {
  auto it = interface_cache_.find(name);
  if (it != interface_cache_.end()) return it->second;

  xdr::Encoder enc;
  enc.putString(name);
  const Message reply =
      roundTrip(MessageType::QueryInterface, enc.bytes(),
                MessageType::InterfaceReply);
  xdr::Decoder dec(reply.payload);
  if (!dec.getBool()) {
    throw NotFoundError("executable '" + name + "' on " +
                        stream_->peerName());
  }
  auto info = idl::InterfaceInfo::decode(dec);
  return interface_cache_.emplace(name, std::move(info)).first->second;
}

CallResult NinfClient::call(const std::string& name,
                            std::span<const ArgValue> args) {
  const idl::InterfaceInfo& info = queryInterface(name);
  const auto request = protocol::encodeCallRequest(info, args);

  CallResult result;
  result.bytes_sent = static_cast<std::int64_t>(request.size());
  const double start = nowSeconds();
  const Message reply =
      roundTrip(MessageType::CallRequest, request, MessageType::CallReply);
  result.elapsed = nowSeconds() - start;
  result.bytes_received = static_cast<std::int64_t>(reply.payload.size());
  result.server = protocol::decodeCallReply(info, reply.payload, args);
  return result;
}

JobHandle NinfClient::submit(const std::string& name,
                             std::span<const ArgValue> args) {
  const idl::InterfaceInfo& info = queryInterface(name);
  const auto request = protocol::encodeCallRequest(info, args);
  const Message ack =
      roundTrip(MessageType::SubmitRequest, request, MessageType::SubmitAck);
  xdr::Decoder dec(ack.payload);
  return JobHandle{dec.getU64(), name};
}

std::optional<CallResult> NinfClient::fetch(const JobHandle& handle,
                                            std::span<const ArgValue> args) {
  const idl::InterfaceInfo& info = queryInterface(handle.name);
  xdr::Encoder enc;
  enc.putU64(handle.id);
  const double start = nowSeconds();
  protocol::sendMessage(*stream_, MessageType::FetchResult, enc.bytes());
  const Message reply = protocol::recvMessage(*stream_);
  if (reply.type == MessageType::ResultPending) return std::nullopt;
  if (reply.type != MessageType::CallReply) {
    throw ProtocolError("unexpected reply to FetchResult");
  }
  CallResult result;
  result.elapsed = nowSeconds() - start;
  result.bytes_received = static_cast<std::int64_t>(reply.payload.size());
  result.server = protocol::decodeCallReply(info, reply.payload, args);
  return result;
}

std::vector<std::string> NinfClient::listExecutables() {
  const Message reply = roundTrip(MessageType::ListExecutables, {},
                                  MessageType::ExecutableList);
  xdr::Decoder dec(reply.payload);
  const std::uint32_t count = dec.getU32();
  std::vector<std::string> names;
  names.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) names.push_back(dec.getString());
  return names;
}

protocol::ServerStatusInfo NinfClient::serverStatus() {
  const Message reply =
      roundTrip(MessageType::ServerStatus, {}, MessageType::StatusReply);
  return protocol::ServerStatusInfo::fromBytes(reply.payload);
}

double NinfClient::ping(std::size_t payload_bytes) {
  std::vector<std::uint8_t> payload(payload_bytes, 0xA5);
  const double start = nowSeconds();
  const Message reply =
      roundTrip(MessageType::Ping, payload, MessageType::Pong);
  if (reply.payload != payload) throw ProtocolError("ping echo mismatch");
  return nowSeconds() - start;
}

void NinfClient::close() {
  if (stream_) stream_->close();
}

}  // namespace ninf::client
