// Endpoint-keyed pool of NinfClient connections.
//
// The metaserver used to pay a fresh TCP connect (plus interface query)
// for every dispatch.  The pool keeps finished connections warm instead:
// acquire() hands out an idle connection to the endpoint when one exists
// (LIFO, so the hottest connection — with its negotiated v2 channel and
// interface cache — is reused first) and only falls back to the caller's
// factory on a miss.
//
// Hygiene: idle connections are evicted after idle_ttl_seconds; an entry
// that sat idle longer than health_check_after_seconds is pinged (with a
// bounded deadline, so a stalled peer cannot wedge acquire) before reuse
// and silently replaced if the peer is gone or unresponsive; a returned
// connection whose channel is broken is dropped, never pooled.
//
// Generations: acquire() optionally carries a caller-defined generation
// number (the sharded metaserver passes its ring epoch).  An idle entry
// only satisfies an acquire of the same generation; entries from any
// other generation found under the endpoint are flushed on the spot.
// This closes the stale-routing hole of endpoint-only keying: when the
// ring changes (a backup was promoted), connections negotiated against
// the old topology stop being handed out even though the endpoint
// string is unchanged.
//
// Observability: pool.hits / pool.misses / pool.generation_flushes
// counters and pool.idle / pool.in_use gauges (process-wide totals
// across pools).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "client/client.h"
#include "common/sync.h"

namespace ninf::client {

struct PoolOptions {
  /// Idle connections kept per endpoint; extras are closed on return.
  std::size_t max_idle_per_endpoint = 4;
  /// Idle connections older than this are closed on the next acquire
  /// (<= 0 keeps them forever).
  double idle_ttl_seconds = 30.0;
  /// An entry idle longer than this is pinged before being handed out
  /// (<= 0 pings every reuse; set very large to never ping).
  double health_check_after_seconds = 1.0;
  /// Wall-clock bound on that health-check ping; an entry that cannot
  /// answer in time is evicted.  Always enforced (values <= 0 are
  /// clamped to a minimum): an unbounded ping would let one
  /// stalled-but-open peer wedge acquire() — and any dispatch deadline
  /// above it — indefinitely.
  double health_check_timeout_seconds = 1.0;
};

class ConnectionPool {
 public:
  using Factory = std::function<std::unique_ptr<NinfClient>()>;

  /// Exclusive loan of one pooled connection.  Returns the connection to
  /// the pool on destruction — unless discard() was called (connection
  /// suspect) or its channel is broken, in which case it is closed.
  /// The pool must outlive every lease.
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& other) noexcept { *this = std::move(other); }
    Lease& operator=(Lease&& other) noexcept;
    ~Lease();

    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    NinfClient& operator*() const { return *client_; }
    NinfClient* operator->() const { return client_.get(); }
    explicit operator bool() const { return client_ != nullptr; }

    /// Close the connection now instead of returning it to the pool.
    void discard();

   private:
    friend class ConnectionPool;
    Lease(ConnectionPool* pool, std::string endpoint,
          std::unique_ptr<NinfClient> client, std::uint64_t generation)
        : pool_(pool), endpoint_(std::move(endpoint)),
          client_(std::move(client)), generation_(generation) {}

    ConnectionPool* pool_ = nullptr;
    std::string endpoint_;
    std::unique_ptr<NinfClient> client_;
    std::uint64_t generation_ = 0;
  };

  explicit ConnectionPool(PoolOptions options = {});
  ~ConnectionPool();

  ConnectionPool(const ConnectionPool&) = delete;
  ConnectionPool& operator=(const ConnectionPool&) = delete;

  /// Borrow a connection to `endpoint`, reusing an idle one when
  /// possible and creating through `factory` otherwise.  The factory
  /// runs outside the pool lock (it does network I/O).  `generation`
  /// scopes reuse: only idle entries pooled under the same generation
  /// qualify, and mismatched ones under the endpoint are flushed.
  Lease acquire(const std::string& endpoint, const Factory& factory,
                std::uint64_t generation = 0);

  /// Idle connections across all endpoints / leases currently out.
  std::size_t idleCount() const;
  std::size_t inUseCount() const;

  /// Close every idle connection (leases out stay valid).
  void clear();

 private:
  struct IdleEntry {
    std::unique_ptr<NinfClient> client;
    double idle_since = 0.0;  // steady-clock seconds
    std::uint64_t generation = 0;
  };

  void release(const std::string& endpoint,
               std::unique_ptr<NinfClient> client, std::uint64_t generation);

  mutable Mutex mutex_{"pool.mutex"};
  std::map<std::string, std::vector<IdleEntry>> idle_ NINF_GUARDED_BY(mutex_);
  std::size_t in_use_ NINF_GUARDED_BY(mutex_) = 0;
  PoolOptions options_;  // immutable after construction
};

}  // namespace ninf::client
