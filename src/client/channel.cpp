#include "client/channel.h"

#include <algorithm>
#include <array>
#include <utility>
#include <vector>

#include "common/batch.h"
#include "common/error.h"
#include "common/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ninf::client {

using protocol::MessageType;

namespace {

/// Process-wide in-flight total backing the "channel.inflight" gauge
/// (obs::Gauge has no add(), so the running sum lives here).
std::atomic<long> g_inflight{0};

void bumpInflight(long delta) {
  static obs::Gauge& gauge = obs::gauge("channel.inflight");
  gauge.set(static_cast<double>(g_inflight.fetch_add(delta) + delta));
}

/// Frames at or below this flattened size ride the group-commit batch
/// path; larger bodies (bulk array arguments) keep the direct
/// scatter-gather send, which already amortizes its syscall.
constexpr std::size_t kBatchableFrameBytes = 16 * 1024;

}  // namespace

Channel::Channel(std::unique_ptr<transport::Stream> stream, bool force_v1)
    : stream_(std::move(stream)), force_v1_(force_v1) {
  NINF_REQUIRE(stream_ != nullptr, "null stream");
  wire_ = stream_.get();
}

Channel::~Channel() {
  {
    LockGuard setup(setup_mutex_);
    teardownLocked();
  }
}

void Channel::setReconnect(StreamFactory fn) {
  LockGuard setup(setup_mutex_);
  reconnect_ = std::move(fn);
}

bool Channel::hasReconnect() const {
  LockGuard setup(setup_mutex_);
  return static_cast<bool>(reconnect_);
}

void Channel::setMidReplyGrace(double seconds) {
  mid_reply_grace_s_.store(std::max(0.0, seconds), std::memory_order_relaxed);
}

std::uint32_t Channel::negotiatedVersion() const {
  return negotiated_version_.load(std::memory_order_acquire);
}

std::string Channel::peerName() const {
  LockGuard setup(setup_mutex_);
  return stream_ ? stream_->peerName() : "<disconnected>";
}

void Channel::close() {
  LockGuard setup(setup_mutex_);
  {
    LockGuard g(pending_mutex_);
    broken_.store(true, std::memory_order_release);
  }
  if (stream_) stream_->close();
}

void Channel::resetIfBroken() {
  LockGuard setup(setup_mutex_);
  if (!broken_.load(std::memory_order_acquire)) return;
  teardownLocked();
  broken_.store(false, std::memory_order_release);
}

void Channel::teardownLocked() {
  // Wake anything parked in the stream (reader recv, sender backpressure);
  // stream_ itself stays valid until both the reader and any sender are
  // out, so close without send_mutex_ is safe.
  if (stream_) stream_->close();
  if (reader_.joinable()) reader_.join();
  trace_wire_.store(false, std::memory_order_release);
  negotiated_features_.store(0, std::memory_order_release);
  failAllPending(std::make_exception_ptr(
      TransportError("channel torn down with calls in flight")));
  {
    LockGuard g(send_mutex_);
    stream_.reset();
    wire_ = nullptr;
  }
  mode_ = Mode::Undecided;
}

void Channel::ensureReadyLocked(
    std::chrono::steady_clock::time_point deadline) {
  if (broken_.load(std::memory_order_acquire)) {
    teardownLocked();
    broken_.store(false, std::memory_order_release);
  }
  if (!stream_) {
    if (!reconnect_) {
      throw TransportError("connection lost and no reconnect factory");
    }
    static obs::Counter& reconnects = obs::counter("client.reconnects");
    reconnects.add();
    // The factory runs user code and real connect I/O; keep send_mutex_
    // out of scope for it and lock only for the pointer swap, so a v2
    // sender is never parked behind a slow reconnect.
    std::unique_ptr<transport::Stream> fresh = reconnect_();
    if (!fresh) {
      throw TransportError("reconnect factory returned no stream");
    }
    {
      LockGuard g(send_mutex_);
      stream_ = std::move(fresh);
      wire_ = stream_.get();
    }
    mode_ = Mode::Undecided;
  }
  if (mode_ != Mode::Undecided) return;
  if (force_v1_) {
    mode_ = Mode::V1;
    negotiated_version_.store(protocol::kVersion, std::memory_order_release);
    return;
  }
  negotiateLocked(deadline);
}

void Channel::negotiateLocked(std::chrono::steady_clock::time_point deadline) {
  // No reader thread exists yet, so the stream deadline is safe here and
  // bounds the handshake by the first call's budget.
  try {
    stream_->setDeadline(deadline);
    xdr::Encoder hello;
    hello.putU32(protocol::kMaxVersion);
    // Advertise extensions only when one would be used: trace context
    // follows the tracer, extra bits (sharding) follow requestFeatures().
    // A client wanting neither keeps the byte-identical pre-extension
    // Hello, so peers that predate the feature word see no change.
    const bool want_trace = obs::Tracer::instance().enabled();
    std::uint32_t want = requested_features_.load(std::memory_order_relaxed) &
                         protocol::kKnownFeatures;
    if (want_trace) want |= protocol::kFeatureTraceContext;
    if (want != 0) hello.putU32(want);
    protocol::sendMessage(*stream_, MessageType::Hello, hello.bytes());
    protocol::Message ack = protocol::recvMessage(*stream_);
    stream_->clearDeadline();
    if (ack.type != MessageType::HelloAck) {
      throw ProtocolError("expected HelloAck, got " +
                          std::to_string(static_cast<unsigned>(ack.type)));
    }
    xdr::Decoder dec(ack.payload);
    const std::uint32_t agreed = dec.getU32();
    // A feature-aware server echoes its accepted bitmask; a pre-extension
    // server's HelloAck ends after the version word.  A peer can never
    // grant a bit we did not ask for.
    std::uint32_t features = 0;
    if (want != 0 && dec.remaining() >= 4) features = dec.getU32();
    features &= want;
    negotiated_features_.store(features, std::memory_order_release);
    if (agreed >= protocol::kVersion2) {
      mode_ = Mode::V2;
      const bool traced =
          (features & protocol::kFeatureTraceContext) != 0;
      trace_wire_.store(traced, std::memory_order_release);
      negotiated_version_.store(protocol::kVersion2,
                                std::memory_order_release);
      transport::Stream* raw = stream_.get();
      reader_ = std::thread([this, raw, traced] { readerLoop(raw, traced); });
    } else {
      mode_ = Mode::V1;
      negotiated_version_.store(protocol::kVersion, std::memory_order_release);
    }
  } catch (const TimeoutError&) {
    // The peer is stalled, not old: surface the deadline, wire unknown.
    broken_.store(true, std::memory_order_release);
    throw;
  } catch (const TransportError&) {
    // The peer dropped the connection on Hello without answering.  That
    // is exactly what a pre-negotiation server does with the unknown
    // frame type (it aborts from recvHeader without sending any frame),
    // so fall back to v1 over a fresh connection.  A genuinely dead
    // network fails the fallback reconnect — or the v1 exchange that
    // follows — with the same typed error, so real faults still surface.
    fallbackToV1Locked("peer closed the connection on Hello");
  } catch (const ProtocolError&) {
    // The peer answered Hello with something that is not a HelloAck: a
    // v1 peer echoing an error frame.
    fallbackToV1Locked("Hello rejected by peer");
  }
}

void Channel::fallbackToV1Locked(const char* why) {
  if (!reconnect_) {
    broken_.store(true, std::memory_order_release);
    throw;  // rethrows the exception the negotiate handler caught
  }
  // One fallback reconnect in v1 mode, not charged to the caller's
  // retries.
  static obs::Counter& fallbacks = obs::counter("channel.hello_fallbacks");
  fallbacks.add();
  NINF_LOG(Debug) << why << "; falling back to protocol v1";
  stream_->close();
  std::unique_ptr<transport::Stream> fresh;
  try {
    fresh = reconnect_();
  } catch (...) {
    broken_.store(true, std::memory_order_release);
    throw;
  }
  if (!fresh) {
    broken_.store(true, std::memory_order_release);
    throw TransportError("reconnect factory returned no stream");
  }
  {
    LockGuard g(send_mutex_);
    stream_ = std::move(fresh);
    wire_ = stream_.get();
  }
  mode_ = Mode::V1;
  trace_wire_.store(false, std::memory_order_release);
  negotiated_version_.store(protocol::kVersion, std::memory_order_release);
}

Channel::Reply Channel::transact(MessageType type, const xdr::Encoder& body,
                                 Consumer consumer,
                                 std::chrono::steady_clock::time_point
                                     deadline) {
  UniqueLock setup(setup_mutex_);
  NINF_TIDY_SUPPRESS("metrics-under-lock",
                     "reconnect is the cold path and its only metric is "
                     "a pre-resolved counter bump");
  ensureReadyLocked(deadline);
  if (mode_ == Mode::V1) {
    return transactV1Locked(type, body, consumer, deadline);
  }
  setup.unlock();
  return transactV2(type, body, std::move(consumer), deadline);
}

Channel::Reply Channel::transactV1Locked(
    MessageType type, const xdr::Encoder& body, const Consumer& consumer,
    std::chrono::steady_clock::time_point deadline) {
  transport::Stream& s = *stream_;
  try {
    s.setDeadline(deadline);
    {
      obs::Span send(obs::phase::kSend, static_cast<std::int64_t>(body.size()));
      protocol::sendMessage(s, type, body);
    }
    Reply reply;
    reply.sent_us = obs::Tracer::nowMicros();
    const protocol::FrameHeader header = protocol::recvHeader(s);
    reply.type = header.type;
    reply.length = header.length;
    protocol::BodyReader reader(s, header.length);
    try {
      consumer(reply, reader);
      reader.drain();
    } catch (const TransportError&) {
      throw;
    } catch (...) {
      // Typed decode/remote error: realign framing, keep the connection.
      reader.drain();
      s.clearDeadline();
      throw;
    }
    reply.recv_done_us = obs::Tracer::nowMicros();
    s.clearDeadline();
    return reply;
  } catch (const TransportError&) {
    // The wire is mid-protocol in an unknown state; the connection is
    // unusable regardless of what the caller does next.
    broken_.store(true, std::memory_order_release);
    throw;
  }
}

Channel::Reply Channel::transactV2(
    MessageType type, const xdr::Encoder& body, Consumer consumer,
    std::chrono::steady_clock::time_point deadline) {
  auto call = std::make_shared<PendingCall>();
  call->consumer = std::move(consumer);
  std::future<Reply> fut = call->promise.get_future();
  const std::uint64_t id = next_call_id_.fetch_add(1);
  {
    LockGuard g(pending_mutex_);
    if (broken_.load(std::memory_order_acquire)) {
      throw TransportError("channel broken");
    }
    pending_.emplace(id, call);
  }
  bumpInflight(+1);
  // Capture the caller's ambient context before opening the transient
  // send span, so propagated server spans nest under the caller's call
  // span rather than under "send".
  const obs::TraceContext trace_ctx = obs::currentContext();
  try {
    obs::Span send(obs::phase::kSend, static_cast<std::int64_t>(body.size()));
    {
      // Provisional send-start stamp.  The reply cannot arrive before the
      // request frame is written, so the reader always observes a nonzero
      // sent_us even when it wins the post-send re-lock below.
      LockGuard p(pending_mutex_);
      call->sent_us = obs::Tracer::nowMicros();
    }
    const bool traced = trace_wire_.load(std::memory_order_acquire);
    const protocol::WireTraceContext wctx{trace_ctx.trace_id,
                                          trace_ctx.parent_span};
    const protocol::WireMode wire_mode =
        traced ? protocol::WireMode::V2Traced : protocol::WireMode::V2;
    if (protocol::headerBytes(wire_mode) + body.size() <=
        kBatchableFrameBytes) {
      // Small call: flatten once and group-commit with its concurrent
      // siblings — under high in-flight counts many frames share one
      // writev instead of contending for send_mutex_ one syscall each.
      sendV2Batched(
          protocol::flattenFramePooled(wire_mode, type, id, wctx, body));
    } else {
      LockGuard g(send_mutex_);
      if (broken_.load(std::memory_order_acquire) || wire_ == nullptr) {
        throw TransportError("channel broken");
      }
      if (traced) {
        protocol::sendMessageV2Traced(*wire_, type, id, wctx, body);
      } else {
        protocol::sendMessageV2(*wire_, type, id, body);
      }
    }
    {
      LockGuard p(pending_mutex_);
      auto it = pending_.find(id);
      if (it != pending_.end()) it->second->sent_us = obs::Tracer::nowMicros();
    }
  } catch (const TransportError&) {
    erasePending(id);
    // A partial frame poisons every call sharing the wire.
    {
      LockGuard p(pending_mutex_);
      broken_.store(true, std::memory_order_release);
    }
    {
      LockGuard setup(setup_mutex_);
      if (stream_) stream_->close();
    }
    throw;
  }

  if (deadline == transport::Stream::kNoDeadline) return fut.get();
  if (fut.wait_until(deadline) == std::future_status::ready) return fut.get();
  bool abandoned = false;
  {
    LockGuard g(pending_mutex_);
    auto it = pending_.find(id);
    if (it != pending_.end() && it->second->state == PendingCall::Waiting) {
      // Reply never started arriving: abandon just this call (the reader
      // drains the late reply as an orphan) and leave the channel alone.
      pending_.erase(it);
      abandoned = true;
    }
  }
  if (abandoned) {
    bumpInflight(-1);
    static obs::Counter& timeouts = obs::counter("channel.call_timeouts");
    timeouts.add();
    throw TimeoutError("no reply within deadline (call " +
                       std::to_string(id) + ")");
  }
  // The reader is already decoding into the caller's buffers (or just
  // finished): see the reply through rather than abandon live memory —
  // but only for a bounded grace window.  A peer stalled mid-body would
  // otherwise wedge the reader in recv and this caller in get() forever.
  const auto grace =
      deadline +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(
              mid_reply_grace_s_.load(std::memory_order_relaxed)));
  if (fut.wait_until(grace) == std::future_status::ready) return fut.get();
  // Stalled mid-frame: part of this reply's body is missing, so the wire
  // can never be realigned — the connection is poisoned for every call.
  // Break it and close the stream; the wedged reader wakes with a
  // transport error and fails the remaining in-flight calls.
  {
    LockGuard g(pending_mutex_);
    if (pending_.find(id) == pending_.end()) return fut.get();  // just done
    broken_.store(true, std::memory_order_release);
  }
  static obs::Counter& stalls = obs::counter("channel.mid_reply_stalls");
  stalls.add();
  {
    LockGuard setup(setup_mutex_);
    if (stream_) stream_->close();
  }
  try {
    return fut.get();
  } catch (const TransportError&) {
    throw TimeoutError("reply stalled mid-body past deadline (call " +
                       std::to_string(id) + ")");
  }
}

void Channel::sendV2Batched(common::PooledBuffer frame) {
  static obs::Counter& flushes = obs::counter("channel.batch.flushes");
  static obs::Counter& batched = obs::counter("channel.batch.frames");
  static obs::Histogram& per_writev =
      obs::histogram("channel.batch.frames_per_writev");

  auto item = std::make_shared<BatchItem>();
  item->frame = std::move(frame);
  UniqueLock b(batch_mutex_);
  if (broken_.load(std::memory_order_acquire)) {
    throw TransportError("channel broken");
  }
  batch_queue_.push_back(item);
  if (batch_flusher_active_) {
    // A flusher is on the wire; it owns this frame now.  It marks the
    // item done (success or error) before it retires, so this wait
    // cannot be missed.
    batch_cv_.wait(b, [&] { return item->done; });
    if (item->error) std::rethrow_exception(item->error);
    return;
  }

  batch_flusher_active_ = true;
  while (!batch_queue_.empty()) {
    // Collect one writev's worth under the lock...
    const common::BatchLimits limits = common::batchLimits();
    std::vector<std::shared_ptr<BatchItem>> wave;
    std::size_t wave_bytes = 0;
    while (!batch_queue_.empty() && wave.size() < limits.max_iov &&
           (wave.empty() || wave_bytes < limits.max_bytes)) {
      wave_bytes += batch_queue_.front()->frame.size();
      wave.push_back(std::move(batch_queue_.front()));
      batch_queue_.pop_front();
    }
    b.unlock();
    // ...then send it outside, so late arrivals queue behind us instead
    // of blocking — they are the next wave.
    std::exception_ptr err;
    std::size_t sent = 0;
    try {
      LockGuard g(send_mutex_);
      if (broken_.load(std::memory_order_acquire) || wire_ == nullptr) {
        throw TransportError("channel broken");
      }
      std::array<std::span<const std::uint8_t>, 64> iov;
      const std::size_t count = std::min(wave.size(), iov.size());
      for (std::size_t i = 0; i < count; ++i) iov[i] = wave[i]->frame.span();
      NINF_TIDY_SUPPRESS(
          "metrics-under-lock",
          "the wire write IS the send_mutex_ critical section; the "
          "transport's byte counters are cached function-local statics "
          "bumped with one relaxed atomic add, so the obs registry lock "
          "is only touched on the very first send");
      wire_->sendv({iov.data(), count});
      sent = count;
    } catch (...) {
      err = std::current_exception();
    }
    // Batch accounting runs after send_mutex_ drops: the obs registry
    // lock must never nest inside the wire lock other senders spin on.
    if (sent > 0) {
      flushes.add();
      batched.add(sent);
      per_writev.observe(static_cast<double>(sent));
    }
    b.lock();
    for (auto& w : wave) {
      w->done = true;
      w->error = err;
    }
    if (err) {
      // A partial writev poisons the wire for everything queued behind
      // it too — the callers re-surface this via their own cleanup.
      for (auto& q : batch_queue_) {
        q->done = true;
        q->error = err;
      }
      batch_queue_.clear();
    }
    batch_cv_.notify_all();
    if (err) break;
  }
  batch_flusher_active_ = false;
  b.unlock();
  if (item->error) std::rethrow_exception(item->error);
}

void Channel::erasePending(std::uint64_t id) {
  bool erased = false;
  {
    LockGuard g(pending_mutex_);
    erased = pending_.erase(id) > 0;
  }
  if (erased) bumpInflight(-1);
}

void Channel::failAllPending(std::exception_ptr error) {
  std::map<std::uint64_t, std::shared_ptr<PendingCall>> doomed;
  {
    LockGuard g(pending_mutex_);
    broken_.store(true, std::memory_order_release);
    doomed.swap(pending_);
  }
  if (doomed.empty()) return;
  bumpInflight(-static_cast<long>(doomed.size()));
  for (auto& [id, call] : doomed) {
    call->promise.set_exception(error);
  }
}

void Channel::readerLoop(transport::Stream* stream, bool traced) {
  try {
    for (;;) {
      const protocol::FrameHeader header =
          traced ? protocol::recvHeaderV2Traced(*stream)
                 : protocol::recvHeaderV2(*stream);
      std::shared_ptr<PendingCall> call;
      Reply reply;
      reply.type = header.type;
      reply.length = header.length;
      reply.call_id = header.call_id;
      {
        LockGuard g(pending_mutex_);
        auto it = pending_.find(header.call_id);
        if (it != pending_.end()) {
          call = it->second;
          call->state = PendingCall::Consuming;
          reply.sent_us = call->sent_us;
        }
      }
      protocol::BodyReader body(*stream, header.length);
      if (!call) {
        // Reply to a call whose caller already timed out and walked away.
        static obs::Counter& orphans = obs::counter("channel.orphan_replies");
        orphans.add();
        body.drain();
        continue;
      }
      try {
        call->consumer(reply, body);
        body.drain();
        reply.recv_done_us = obs::Tracer::nowMicros();
        erasePending(header.call_id);
        call->promise.set_value(reply);
      } catch (const TransportError&) {
        // Body cut short: the shared wire is gone for everyone.
        erasePending(header.call_id);
        call->promise.set_exception(std::current_exception());
        throw;
      } catch (...) {
        // Typed decode/remote error for this call only: realign framing
        // and keep serving the other calls.  If the drain itself dies,
        // the entry is still pending and failAllPending covers it.
        body.drain();
        erasePending(header.call_id);
        call->promise.set_exception(std::current_exception());
      }
    }
  } catch (const std::exception&) {
    failAllPending(std::current_exception());
  }
}

}  // namespace ninf::client
