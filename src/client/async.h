// Ninf_call_async (paper, section 2.2): fire a call and collect the
// result later through a std::future.  Each in-flight call occupies its
// own connection, mirroring the TCP-based Ninf RPC where a connection is
// busy for a call's duration (section 5.1).
#pragma once

#include <future>
#include <string>
#include <vector>

#include "client/dispatcher.h"
#include "common/sync.h"

namespace ninf::client {

class AsyncCaller {
 public:
  /// The dispatcher must outlive the AsyncCaller and all futures.
  explicit AsyncCaller(CallDispatcher& dispatcher)
      : dispatcher_(dispatcher) {}

  ~AsyncCaller() { waitAll(); }

  /// Launch a call; the caller must keep all argument memory (including
  /// output arrays) alive until the future resolves.
  std::future<CallResult> callAsync(std::string name,
                                    std::vector<protocol::ArgValue> args);

  /// Block until every call launched so far has finished (Ninf_wait_all).
  void waitAll();

 private:
  CallDispatcher& dispatcher_;
  Mutex mutex_{"async.inflight"};
  std::vector<std::shared_future<void>> inflight_ NINF_GUARDED_BY(mutex_);
};

}  // namespace ninf::client
