// Ninf client API (paper, section 2.2).
//
// One NinfClient owns one connection to a computational server.  The
// first call to any entry performs the two-stage RPC: the compiled
// interface information is fetched and cached, then arguments are
// marshalled from it — no client-side stubs, header files, or linking.
//
//   auto client = NinfClient::connectTcp("127.0.0.1", port);
//   ninfCall(*client, "dmmul", n, A, B, C);       // like Ninf_call(...)
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "idl/interface_info.h"
#include "protocol/call_marshal.h"
#include "protocol/message.h"
#include "transport/transport.h"

namespace ninf::client {

/// Outcome of one Ninf_call.
struct CallResult {
  /// Client-observed wall time of the whole call, seconds.
  double elapsed = 0.0;
  /// Server-relative timings (enqueue/dequeue/complete).
  protocol::CallTimings server;
  /// Argument bytes shipped client->server and server->client.
  std::int64_t bytes_sent = 0;
  std::int64_t bytes_received = 0;

  /// T_wait = T_dequeue - T_enqueue (paper, section 4.1).
  double waitTime() const { return server.waitTime(); }
  /// Client-observed throughput over payload bytes, MB/s.
  double throughputMBps() const {
    return elapsed > 0
               ? static_cast<double>(bytes_sent + bytes_received) / elapsed /
                     1e6
               : 0.0;
  }
};

/// Handle of a two-phase (submit/fetch) call, section 5.1.
struct JobHandle {
  std::uint64_t id = 0;
  std::string name;  // entry name, needed to decode the eventual reply
};

class NinfClient {
 public:
  /// Adopt an established stream (TCP or inproc).
  explicit NinfClient(std::unique_ptr<transport::Stream> stream);

  /// Connect over TCP.  timeout_seconds > 0 bounds connection
  /// establishment; failures throw TransportError with the server's
  /// host:port in the message (never a bare errno).
  static std::unique_ptr<NinfClient> connectTcp(const std::string& host,
                                                std::uint16_t port,
                                                double timeout_seconds = 0.0);

  /// Stage one of the two-stage RPC; cached per entry name.
  /// Throws NotFoundError if the server does not export `name`.
  const idl::InterfaceInfo& queryInterface(const std::string& name);

  /// Synchronous Ninf_call with explicit argument values.
  CallResult call(const std::string& name,
                  std::span<const protocol::ArgValue> args);

  /// Two-phase: ship arguments now, compute detached from the connection.
  JobHandle submit(const std::string& name,
                   std::span<const protocol::ArgValue> args);

  /// Two-phase: try to collect a result; nullopt while still computing.
  /// On success the OUT arguments of `args` are filled.
  std::optional<CallResult> fetch(const JobHandle& handle,
                                  std::span<const protocol::ArgValue> args);

  /// Names of the executables registered on the server.
  std::vector<std::string> listExecutables();

  /// Server status snapshot (metaserver food).
  protocol::ServerStatusInfo serverStatus();

  /// Round-trip an opaque payload; returns elapsed seconds.
  double ping(std::size_t payload_bytes = 0);

  void close();

 private:
  protocol::Message roundTrip(protocol::MessageType type,
                              std::span<const std::uint8_t> payload,
                              protocol::MessageType expected);

  std::unique_ptr<transport::Stream> stream_;
  std::map<std::string, idl::InterfaceInfo> interface_cache_;
};

}  // namespace ninf::client
