// Ninf client API (paper, section 2.2).
//
// One NinfClient owns one connection to a computational server, managed
// by a session-layer Channel (client/channel.h).  The first call to any
// entry performs the two-stage RPC: the compiled interface information is
// fetched and cached, then arguments are marshalled from it — no
// client-side stubs, header files, or linking.
//
//   auto client = NinfClient::connectTcp("127.0.0.1", port);
//   ninfCall(*client, "dmmul", n, A, B, C);       // like Ninf_call(...)
//
// Against a protocol-v2 server the channel multiplexes calls by ID, so
// one NinfClient may be shared by many threads: concurrent calls fly on
// the same connection and replies are demultiplexed as they return.  On
// a v1 connection concurrent calls still work but serialize.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "client/channel.h"
#include "common/sync.h"
#include "idl/interface_info.h"
#include "protocol/call_marshal.h"
#include "protocol/message.h"
#include "protocol/meta_wire.h"
#include "transport/transport.h"

namespace ninf::client {

/// Outcome of one Ninf_call.
struct CallResult {
  /// Client-observed wall time of the whole call, seconds.
  double elapsed = 0.0;
  /// Server-relative timings (enqueue/dequeue/complete).
  protocol::CallTimings server;
  /// Argument bytes shipped client->server and server->client.
  std::int64_t bytes_sent = 0;
  std::int64_t bytes_received = 0;

  /// T_wait = T_dequeue - T_enqueue (paper, section 4.1).
  double waitTime() const { return server.waitTime(); }
  /// Client-observed throughput over payload bytes, MB/s.
  double throughputMBps() const {
    return elapsed > 0
               ? static_cast<double>(bytes_sent + bytes_received) / elapsed /
                     1e6
               : 0.0;
  }
};

/// Handle of a two-phase (submit/fetch) call, section 5.1.
struct JobHandle {
  std::uint64_t id = 0;
  std::string name;  // entry name, needed to decode the eventual reply
};

/// Reliability envelope of one logical call: a wall-clock budget covering
/// every attempt, transport-failure retries, and exponential backoff
/// between them.  The default (no deadline, no retries) reproduces the
/// historical single-attempt behavior exactly.
///
/// The deadline is end-to-end: it bounds every attempt (via the stream
/// deadline on v1 connections; on multiplexed v2 ones via the per-call
/// reply future, plus a short grace window for a reply already being
/// decoded, after which a mid-body stall breaks the connection) and the
/// backoff sleeps, so a call with a deadline either completes or throws
/// a typed error — it cannot hang on a stalled peer.
/// Retries fire only on TransportError (the connection is presumed dead
/// and is re-established through the reconnect factory); RemoteError/
/// ProtocolError surface immediately.  On a multiplexed connection a
/// timeout while other calls are in flight abandons only the timed-out
/// call; the connection survives.
struct CallOptions {
  double deadline_seconds = 0.0;  ///< whole-call budget; 0 = unbounded
  std::size_t retries = 0;        ///< extra attempts after TransportError
  double backoff_seconds = 0.02;  ///< first retry delay; doubles per retry
};

class NinfClient {
 public:
  /// Adopt an established stream (TCP or inproc).  force_v1 skips the
  /// Hello negotiation and speaks classic lock-step protocol v1.
  explicit NinfClient(std::unique_ptr<transport::Stream> stream,
                      bool force_v1 = false);

  /// Connect over TCP.  timeout_seconds > 0 bounds connection
  /// establishment; failures throw TransportError with the server's
  /// host:port in the message (never a bare errno).
  static std::unique_ptr<NinfClient> connectTcp(const std::string& host,
                                                std::uint16_t port,
                                                double timeout_seconds = 0.0);

  /// Install a factory used to replace the connection when a retrying
  /// call hits a TransportError (and to lazily reconnect after a failed
  /// attempt dropped the stream).  connectTcp installs one automatically;
  /// adopters of raw streams (inproc tests) may install their own.
  void setReconnect(std::function<std::unique_ptr<transport::Stream>()> fn) {
    channel_->setReconnect(std::move(fn));
  }

  /// Stage one of the two-stage RPC; cached per entry name.
  /// Throws NotFoundError if the server does not export `name`.
  const idl::InterfaceInfo& queryInterface(const std::string& name);

  /// As above with a wall-clock bound on the round-trip: timeout_seconds
  /// > 0 throws TimeoutError on expiry (<= 0 is unbounded).  Cache hits
  /// never touch the wire.
  const idl::InterfaceInfo& queryInterface(const std::string& name,
                                           double timeout_seconds);

  /// Synchronous Ninf_call with explicit argument values.  With a
  /// non-default `opts`, the call is bounded by opts.deadline_seconds
  /// (TimeoutError on expiry) and transport failures are retried up to
  /// opts.retries times with exponential backoff.  A failed call may
  /// leave OUT arrays partially written; a successful one never does.
  CallResult call(const std::string& name,
                  std::span<const protocol::ArgValue> args,
                  const CallOptions& opts = {}) NINF_BLOCKING;

  /// Two-phase: ship arguments now, compute detached from the connection.
  /// Retrying a submit whose ack was lost may enqueue the job twice; the
  /// caller holds only the last handle.
  JobHandle submit(const std::string& name,
                   std::span<const protocol::ArgValue> args,
                   const CallOptions& opts = {});

  /// Two-phase: try to collect a result; nullopt while still computing.
  /// On success the OUT arguments of `args` are filled.
  std::optional<CallResult> fetch(const JobHandle& handle,
                                  std::span<const protocol::ArgValue> args,
                                  const CallOptions& opts = {});

  /// Names of the executables registered on the server.
  std::vector<std::string> listExecutables();

  /// Server status snapshot (metaserver food).  timeout_seconds > 0
  /// bounds the round-trip (TimeoutError on expiry) — the metaserver's
  /// scheduling polls rely on this so one stalled server cannot wedge
  /// dispatch decisions.
  protocol::ServerStatusInfo serverStatus(double timeout_seconds = 0.0)
      NINF_BLOCKING;

  /// Round-trip an opaque payload; returns elapsed seconds.
  /// timeout_seconds > 0 bounds the round-trip (TimeoutError on expiry)
  /// — the connection pool's pre-reuse health check relies on this so a
  /// stalled-but-open pooled peer cannot wedge acquire().
  double ping(std::size_t payload_bytes = 0, double timeout_seconds = 0.0)
      NINF_BLOCKING;

  // ---- sharded-metaserver control plane (node peers only) ----
  // These speak the kFeatureSharding message types; call them against a
  // metaserver node (the peer answers anything else with a dropped
  // connection).  Every method takes an optional round-trip bound.

  /// Fetch the node's current ring view.  `known_epoch` is the ring
  /// epoch the caller already holds (0 for none).
  protocol::RingDescriptor ringInfo(std::uint64_t known_epoch = 0,
                                    double timeout_seconds = 0.0);

  /// Ask the owning shard primary to pick a computing server for
  /// `entry`; `excluded` names servers that already failed this call.
  /// Throws WrongShardError when the node does not own the entry or is
  /// not the shard's primary, NotFoundError when no candidate remains.
  protocol::ScheduleChoice scheduleQuery(
      const std::string& entry, const std::vector<std::string>& excluded = {},
      double timeout_seconds = 0.0);

  /// Ship one registry op to the shard owning it.  Registration is
  /// idempotent on (desc.endpoint, reg_epoch): a retried op answers
  /// Duplicate.  Throws WrongShardError on a misrouted op and
  /// FencedError when the receiving node lost its primaryship.
  protocol::RegisterResult registerServer(const protocol::WireServerDesc& desc,
                                          std::uint64_t reg_epoch,
                                          double timeout_seconds = 0.0);
  protocol::RegisterResult deregisterServer(const std::string& endpoint,
                                            std::uint64_t reg_epoch,
                                            double timeout_seconds = 0.0);

  /// Replication link (node-to-node; exposed here so the primary's log
  /// shipper reuses the ordinary client machinery).
  protocol::ReplAckMsg replAppend(const protocol::ReplAppendMsg& msg,
                                  double timeout_seconds = 0.0);
  protocol::ReplAckMsg replHeartbeat(const protocol::ReplHeartbeatMsg& msg,
                                     double timeout_seconds = 0.0);

  void close();

  /// The session layer under this client (protocol version, etc.).
  Channel& channel() { return *channel_; }

 private:
  protocol::Message roundTrip(protocol::MessageType type,
                              std::span<const std::uint8_t> payload,
                              protocol::MessageType expected,
                              std::chrono::steady_clock::time_point deadline);

  const idl::InterfaceInfo& queryInterface(
      const std::string& name,
      std::chrono::steady_clock::time_point deadline);

  /// Deadline + retry + backoff skeleton shared by call/submit/fetch:
  /// runs `fn` (one protocol attempt, handed the absolute deadline),
  /// resetting a broken channel and retrying on TransportError.
  template <typename Fn>
  auto retryLoop(const std::string& what, const CallOptions& opts, Fn&& fn)
      -> decltype(fn(std::chrono::steady_clock::time_point{}));

  CallResult callOnce(const std::string& name,
                      std::span<const protocol::ArgValue> args,
                      std::chrono::steady_clock::time_point deadline);
  JobHandle submitOnce(const std::string& name,
                       std::span<const protocol::ArgValue> args,
                       std::chrono::steady_clock::time_point deadline);
  std::optional<CallResult> fetchOnce(
      const JobHandle& handle, std::span<const protocol::ArgValue> args,
      std::chrono::steady_clock::time_point deadline);

  std::unique_ptr<Channel> channel_;
  Mutex cache_mutex_{"client.cache"};
  /// Node-based map: references handed out stay valid across inserts,
  /// and entries are never erased, so callers may keep them past unlock.
  std::map<std::string, idl::InterfaceInfo> interface_cache_
      NINF_GUARDED_BY(cache_mutex_);
};

}  // namespace ninf::client
