// Ninf transactions (paper, sections 2.2 and 2.4).
//
// "The block of code surrounded by Ninf_transaction_begin and
//  Ninf_transaction_end are not executed immediately; rather, a
//  data-dependency graph of the Ninf_call arguments is dynamically
//  created, and at the end of the code block the metaserver schedules the
//  computation to multiple computational servers accordingly."
//
// Dependencies are inferred from argument memory: a call that reads an
// array another call writes must run after it (RAW); writers also order
// against earlier readers (WAR) and writers (WAW) of overlapping memory.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "client/dispatcher.h"

namespace ninf::client {

class Transaction {
 public:
  /// Queue a call (the Ninf_call inside a transaction block).  Argument
  /// memory must stay alive until run() returns.
  void add(std::string name, std::vector<protocol::ArgValue> args);

  std::size_t size() const { return calls_.size(); }

  /// Dependency edges (from-index -> to-index) of the current graph;
  /// exposed for tests and for the metaserver's scheduler.
  std::vector<std::pair<std::size_t, std::size_t>> dependencyEdges() const;

  /// Ninf_transaction_end: run everything with maximum parallelism
  /// consistent with the dependency graph, dispatching each call through
  /// `dispatcher` (at most max_parallel concurrent calls; 0 = unlimited).
  /// Returns per-call results in add() order.  If any call throws, the
  /// first exception is rethrown after in-flight calls drain.
  std::vector<CallResult> run(CallDispatcher& dispatcher,
                              std::size_t max_parallel = 0);

 private:
  struct QueuedCall {
    std::string name;
    std::vector<protocol::ArgValue> args;
  };

  /// [begin, end) byte intervals a call reads / writes.
  struct Footprint {
    std::vector<std::pair<const void*, const void*>> reads;
    std::vector<std::pair<const void*, const void*>> writes;
  };

  static Footprint footprintOf(const QueuedCall& call);

  std::vector<QueuedCall> calls_;
};

}  // namespace ninf::client
