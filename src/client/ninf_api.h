// Ninf_call-style variadic sugar over NinfClient.
//
// Mirrors the paper's client binding:
//
//     double A[n][n], B[n][n], C[n][n];
//     Ninf_call("dmmul", n, A, B, C);
//
// becomes
//
//     ninfCall(client, "dmmul", n, A, B, C);
//
// Direction is decided by the *server's* IDL (fetched via the two-stage
// RPC), not by the C++ type: a mutable span binds as OutArray, InOutArray
// or InArray according to the declared parameter mode — just as a plain
// C array does in the original API.
#pragma once

#include <span>
#include <type_traits>
#include <vector>

#include "client/client.h"
#include "common/error.h"

namespace ninf::client {

namespace api_detail {

/// Bind one C++ argument to an ArgValue given its formal parameter.
inline protocol::ArgValue bindArray(const idl::Param& p,
                                    std::span<double> data) {
  using protocol::ArgValue;
  switch (p.mode) {
    case idl::Mode::In: return ArgValue::inArray(data);
    case idl::Mode::Out: return ArgValue::outArray(data);
    case idl::Mode::InOut: return ArgValue::inoutArray(data);
  }
  throw ProtocolError("bad mode");
}

template <typename T>
protocol::ArgValue bind(const idl::Param& p, T&& value) {
  using protocol::ArgValue;
  using Decayed = std::remove_cvref_t<T>;
  // A scalar can receive an output only when bound to a mutable lvalue of
  // the exact sink type.
  constexpr bool kMutableLvalue =
      std::is_lvalue_reference_v<T> &&
      !std::is_const_v<std::remove_reference_t<T>>;
  if constexpr (std::is_integral_v<Decayed>) {
    if (p.mode == idl::Mode::Out) {
      if constexpr (kMutableLvalue && std::is_same_v<Decayed, std::int64_t>) {
        return ArgValue::outInt(&value);
      }
      throw ProtocolError("output integer parameter '" + p.name +
                          "' requires a non-const int64_t lvalue");
    }
    return ArgValue::inInt(static_cast<std::int64_t>(value));
  } else if constexpr (std::is_floating_point_v<Decayed>) {
    if (p.mode == idl::Mode::Out) {
      if constexpr (kMutableLvalue && std::is_same_v<Decayed, double>) {
        return ArgValue::outDouble(&value);
      }
      throw ProtocolError("output floating parameter '" + p.name +
                          "' requires a non-const double lvalue");
    }
    return ArgValue::inDouble(static_cast<double>(value));
  } else if constexpr (std::is_same_v<Decayed, std::vector<double>>) {
    if constexpr (kMutableLvalue) {
      return bindArray(p, std::span<double>(value));
    } else {
      return ArgValue::inArray(std::span<const double>(value));
    }
  } else if constexpr (std::is_convertible_v<Decayed, std::span<double>>) {
    return bindArray(p, std::span<double>(value));
  } else if constexpr (std::is_convertible_v<Decayed,
                                             std::span<const double>>) {
    return ArgValue::inArray(std::span<const double>(value));
  } else {
    static_assert(!sizeof(T*), "unsupported ninfCall argument type");
  }
}

}  // namespace api_detail

/// The Ninf_call analogue.  Fetches the interface (stage one, cached),
/// binds the arguments by declared mode, performs the call (stage two),
/// and fills output arrays/scalars in place.
template <typename... Args>
CallResult ninfCall(NinfClient& cl, const std::string& name, Args&&... args) {
  const idl::InterfaceInfo& info = cl.queryInterface(name);
  if (sizeof...(Args) != info.params.size()) {
    throw ProtocolError(name + " expects " +
                        std::to_string(info.params.size()) +
                        " arguments, got " + std::to_string(sizeof...(Args)));
  }
  std::vector<protocol::ArgValue> values;
  values.reserve(sizeof...(Args));
  std::size_t i = 0;
  (values.push_back(
       api_detail::bind(info.params[i++], std::forward<Args>(args))),
   ...);
  return cl.call(name, values);
}

}  // namespace ninf::client
