// Dispatch abstraction: where does a Ninf_call actually go?
//
// DirectDispatcher sends every call to one server; the metaserver module
// provides a load-balancing implementation of the same interface
// (section 2.4).  Transactions and async calls are written against the
// interface so they work identically in both worlds.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string>

#include "client/client.h"

namespace ninf::client {

/// Creates a fresh connection to some server.  Must be thread-safe: async
/// calls and transaction branches connect concurrently.
using ConnectionFactory = std::function<std::unique_ptr<NinfClient>()>;

class CallDispatcher {
 public:
  virtual ~CallDispatcher() = default;

  /// Perform one synchronous call somewhere.  Thread-safe.
  virtual CallResult dispatch(const std::string& name,
                              std::span<const protocol::ArgValue> args) = 0;

  /// Same, bounded by a deadline/retry envelope.  The default forwards
  /// and ignores the options; dispatchers that own connections (direct,
  /// metaserver) honor them.
  virtual CallResult dispatch(const std::string& name,
                              std::span<const protocol::ArgValue> args,
                              const CallOptions& opts) {
    (void)opts;
    return dispatch(name, args);
  }
};

/// Sends every call to the single server produced by the factory, one
/// fresh connection per call (a TCP RPC connection is occupied for the
/// duration of a call, so concurrent calls need their own).
class DirectDispatcher : public CallDispatcher {
 public:
  explicit DirectDispatcher(ConnectionFactory factory)
      : factory_(std::move(factory)) {}

  CallResult dispatch(const std::string& name,
                      std::span<const protocol::ArgValue> args) override {
    auto client = factory_();
    return client->call(name, args);
  }

  CallResult dispatch(const std::string& name,
                      std::span<const protocol::ArgValue> args,
                      const CallOptions& opts) override {
    auto client = factory_();
    return client->call(name, args, opts);
  }

 private:
  ConnectionFactory factory_;
};

}  // namespace ninf::client
