#include "client/transaction.h"

#include <future>

#include "common/error.h"

namespace ninf::client {

using protocol::ArgValue;

void Transaction::add(std::string name, std::vector<ArgValue> args) {
  calls_.push_back({std::move(name), std::move(args)});
}

Transaction::Footprint Transaction::footprintOf(const QueuedCall& call) {
  Footprint fp;
  for (const auto& a : call.args) {
    switch (a.kind()) {
      case ArgValue::Kind::InArray: {
        const auto s = a.constSpan();
        fp.reads.emplace_back(s.data(), s.data() + s.size());
        break;
      }
      case ArgValue::Kind::OutArray: {
        const auto s = a.mutSpan();
        fp.writes.emplace_back(s.data(), s.data() + s.size());
        break;
      }
      case ArgValue::Kind::InOutArray: {
        const auto s = a.mutSpan();
        fp.reads.emplace_back(s.data(), s.data() + s.size());
        fp.writes.emplace_back(s.data(), s.data() + s.size());
        break;
      }
      case ArgValue::Kind::OutInt:
        fp.writes.emplace_back(a.intSink(), a.intSink() + 1);
        break;
      case ArgValue::Kind::OutDouble:
        fp.writes.emplace_back(a.doubleSink(), a.doubleSink() + 1);
        break;
      default:
        break;  // by-value scalars carry no dependencies
    }
  }
  return fp;
}

namespace {
bool overlaps(const std::pair<const void*, const void*>& a,
              const std::pair<const void*, const void*>& b) {
  return a.first < b.second && b.first < a.second;
}

bool anyOverlap(
    const std::vector<std::pair<const void*, const void*>>& xs,
    const std::vector<std::pair<const void*, const void*>>& ys) {
  for (const auto& x : xs) {
    for (const auto& y : ys) {
      if (overlaps(x, y)) return true;
    }
  }
  return false;
}
}  // namespace

std::vector<std::pair<std::size_t, std::size_t>>
Transaction::dependencyEdges() const {
  std::vector<Footprint> fps;
  fps.reserve(calls_.size());
  for (const auto& c : calls_) fps.push_back(footprintOf(c));

  std::vector<std::pair<std::size_t, std::size_t>> edges;
  for (std::size_t j = 0; j < calls_.size(); ++j) {
    for (std::size_t i = 0; i < j; ++i) {
      const bool raw = anyOverlap(fps[i].writes, fps[j].reads);
      const bool war = anyOverlap(fps[i].reads, fps[j].writes);
      const bool waw = anyOverlap(fps[i].writes, fps[j].writes);
      if (raw || war || waw) edges.emplace_back(i, j);
    }
  }
  return edges;
}

std::vector<CallResult> Transaction::run(CallDispatcher& dispatcher,
                                         std::size_t max_parallel) {
  const std::size_t n = calls_.size();
  std::vector<CallResult> results(n);
  if (n == 0) return results;

  const auto edges = dependencyEdges();
  std::vector<std::vector<std::size_t>> successors(n);
  std::vector<std::size_t> pending_deps(n, 0);
  for (const auto& [from, to] : edges) {
    successors[from].push_back(to);
    ++pending_deps[to];
  }

  // Wave-parallel execution: run every currently-ready call concurrently,
  // then release their successors.  Within a wave, honour max_parallel.
  std::vector<std::size_t> ready;
  for (std::size_t i = 0; i < n; ++i) {
    if (pending_deps[i] == 0) ready.push_back(i);
  }
  std::exception_ptr first_error;
  std::size_t completed = 0;
  while (!ready.empty()) {
    std::vector<std::size_t> wave;
    wave.swap(ready);
    std::size_t offset = 0;
    while (offset < wave.size()) {
      const std::size_t batch =
          max_parallel == 0 ? wave.size() - offset
                            : std::min(max_parallel, wave.size() - offset);
      std::vector<std::future<void>> futures;
      futures.reserve(batch);
      for (std::size_t k = 0; k < batch; ++k) {
        const std::size_t idx = wave[offset + k];
        futures.push_back(std::async(std::launch::async, [&, idx] {
          results[idx] = dispatcher.dispatch(calls_[idx].name,
                                             calls_[idx].args);
        }));
      }
      for (auto& f : futures) {
        try {
          f.get();
        } catch (...) {
          if (!first_error) first_error = std::current_exception();
        }
      }
      offset += batch;
    }
    completed += wave.size();
    if (first_error) break;
    for (const std::size_t idx : wave) {
      for (const std::size_t succ : successors[idx]) {
        if (--pending_deps[succ] == 0) ready.push_back(succ);
      }
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  NINF_REQUIRE(completed == n, "transaction dependency graph has a cycle");
  calls_.clear();
  return results;
}

}  // namespace ninf::client
