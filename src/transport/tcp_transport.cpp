#include "transport/tcp_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>

#include "common/error.h"
#include "common/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ninf::transport {

namespace {

[[noreturn]] void throwErrno(const std::string& what) {
  throw TransportError(what + ": " + std::strerror(errno));
}

class TcpStream : public Stream {
 public:
  TcpStream(int fd, std::string peer) : fd_(fd), peer_(std::move(peer)) {
    int one = 1;
    // Ninf RPC does its own buffering; disable Nagle so small control
    // messages (interface queries) do not serialize behind data.
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }

  ~TcpStream() override { closeFd(/*shutdown_first=*/false); }

  void sendAll(std::span<const std::uint8_t> data) override {
    const int fd = fd_.load();
    if (fd < 0) throw TransportError("send on closed stream");
    obs::Span span("tcp.send", static_cast<std::int64_t>(data.size()));
    static obs::Counter& tx = obs::counter("transport.tcp.bytes_sent");
    tx.add(data.size());
    std::size_t sent = 0;
    while (sent < data.size()) {
      const ssize_t n =
          ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        throwErrno("send to " + peer_);
      }
      sent += static_cast<std::size_t>(n);
    }
  }

  void sendv(
      std::span<const std::span<const std::uint8_t>> buffers) override {
    const int fd = fd_.load();
    if (fd < 0) throw TransportError("send on closed stream");
    std::size_t total = 0;
    for (const auto& b : buffers) total += b.size();
    if (total == 0) return;
    obs::Span span("tcp.send", static_cast<std::int64_t>(total));
    static obs::Counter& tx = obs::counter("transport.tcp.bytes_sent");
    tx.add(total);
    // sendmsg (not writev) so MSG_NOSIGNAL applies, as in sendAll.
    constexpr std::size_t kMaxIov = 64;
    struct iovec iov[kMaxIov];
    std::size_t idx = 0;  // current buffer
    std::size_t off = 0;  // bytes of buffers[idx] already sent
    while (idx < buffers.size()) {
      std::size_t n_iov = 0;
      for (std::size_t b = idx, o = off;
           b < buffers.size() && n_iov < kMaxIov; ++b, o = 0) {
        if (buffers[b].size() > o) {
          iov[n_iov].iov_base =
              const_cast<std::uint8_t*>(buffers[b].data() + o);
          iov[n_iov].iov_len = buffers[b].size() - o;
          ++n_iov;
        }
      }
      if (n_iov == 0) break;  // only empty buffers remain
      msghdr msg{};
      msg.msg_iov = iov;
      msg.msg_iovlen = n_iov;
      const ssize_t sent = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
      if (sent < 0) {
        if (errno == EINTR) continue;
        throwErrno("send to " + peer_);
      }
      // Advance (idx, off) past the bytes the kernel accepted.
      std::size_t left = static_cast<std::size_t>(sent);
      while (left > 0) {
        const std::size_t avail = buffers[idx].size() - off;
        if (left < avail) {
          off += left;
          left = 0;
        } else {
          left -= avail;
          ++idx;
          off = 0;
        }
      }
    }
  }

  void recvAll(std::span<std::uint8_t> buffer) override {
    const int fd = fd_.load();
    if (fd < 0) throw TransportError("recv on closed stream");
    obs::Span span("tcp.recv", static_cast<std::int64_t>(buffer.size()));
    static obs::Counter& rx = obs::counter("transport.tcp.bytes_received");
    rx.add(buffer.size());
    std::size_t got = 0;
    while (got < buffer.size()) {
      const ssize_t n = ::recv(fd, buffer.data() + got,
                               buffer.size() - got, 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        throwErrno("recv from " + peer_);
      }
      if (n == 0) {
        throw TransportError("connection closed by " + peer_ + " (" +
                             std::to_string(got) + "/" +
                             std::to_string(buffer.size()) + " bytes)");
      }
      got += static_cast<std::size_t>(n);
    }
  }

  std::size_t recvSome(std::span<std::uint8_t> buffer) override {
    const int fd = fd_.load();
    if (fd < 0) throw TransportError("recv on closed stream");
    if (buffer.empty()) return 0;
    for (;;) {
      const ssize_t n = ::recv(fd, buffer.data(), buffer.size(), 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        throwErrno("recv from " + peer_);
      }
      if (n == 0) {
        throw TransportError("connection closed by " + peer_);
      }
      static obs::Counter& rx = obs::counter("transport.tcp.bytes_received");
      rx.add(static_cast<std::uint64_t>(n));
      return static_cast<std::size_t>(n);
    }
  }

  void shutdownSend() override {
    const int fd = fd_.load();
    if (fd >= 0) ::shutdown(fd, SHUT_WR);
  }

  /// May be called from a different thread than a blocked recvAll: the
  /// shutdown() wakes that thread (close() alone would not), and only the
  /// shutdown is performed here — the fd itself is released by the
  /// destructor, so the blocked thread never races a reused descriptor.
  void close() override { closeFd(/*shutdown_first=*/true); }

  std::string peerName() const override { return peer_; }

 private:
  void closeFd(bool shutdown_first) {
    if (shutdown_first) {
      const int fd = fd_.load();
      if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
      return;  // leave the fd open for in-flight syscalls
    }
    const int fd = fd_.exchange(-1);
    if (fd >= 0) ::close(fd);
  }

  std::atomic<int> fd_;
  std::string peer_;
};

std::string describe(const sockaddr_in& addr) {
  char buf[INET_ADDRSTRLEN] = {};
  ::inet_ntop(AF_INET, &addr.sin_addr, buf, sizeof(buf));
  return std::string(buf) + ":" + std::to_string(ntohs(addr.sin_port));
}

}  // namespace

std::unique_ptr<Stream> tcpConnect(const std::string& host,
                                   std::uint16_t port,
                                   double timeout_seconds) {
  const std::string where = host + ":" + std::to_string(port);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throwErrno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw TransportError("bad IPv4 address '" + host + "' (connecting to " +
                         where + ")");
  }
  if (timeout_seconds <= 0) {
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) < 0) {
      const int saved = errno;
      ::close(fd);
      errno = saved;
      throwErrno("connect to " + where);
    }
    return std::make_unique<TcpStream>(fd, describe(addr));
  }
  // Timed connect: non-blocking connect, poll for writability, then read
  // the final status from SO_ERROR and restore blocking mode.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throwErrno("fcntl for connect to " + where);
  }
  const auto fail = [&](const std::string& what) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throwErrno(what);
  };
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    if (errno != EINPROGRESS) fail("connect to " + where);
    pollfd pfd{fd, POLLOUT, 0};
    const int timeout_ms =
        static_cast<int>(std::max(1.0, timeout_seconds * 1000.0));
    int rc;
    do {
      rc = ::poll(&pfd, 1, timeout_ms);
    } while (rc < 0 && errno == EINTR);
    if (rc < 0) fail("poll for connect to " + where);
    if (rc == 0) {
      ::close(fd);
      throw TransportError("connect to " + where + " timed out after " +
                           std::to_string(timeout_ms) + " ms");
    }
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) < 0) {
      fail("getsockopt for connect to " + where);
    }
    if (so_error != 0) {
      errno = so_error;
      fail("connect to " + where);
    }
  }
  if (::fcntl(fd, F_SETFL, flags) < 0) {
    fail("fcntl for connect to " + where);
  }
  return std::make_unique<TcpStream>(fd, describe(addr));
}

TcpListener::TcpListener(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throwErrno("socket");
  fd_.store(fd);
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    throwErrno("bind port " + std::to_string(port));
  }
  if (::listen(fd, 64) < 0) throwErrno("listen");
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    throwErrno("getsockname");
  }
  port_ = ntohs(bound.sin_port);
  NINF_LOG(Debug) << "listening on 127.0.0.1:" << port_;
}

TcpListener::~TcpListener() { close(); }

std::unique_ptr<Stream> TcpListener::accept() {
  sockaddr_in peer{};
  socklen_t len = sizeof(peer);
  const int listen_fd = fd_.load();
  if (listen_fd < 0) return nullptr;  // closed
  const int fd = ::accept(listen_fd, reinterpret_cast<sockaddr*>(&peer), &len);
  if (fd < 0) {
    if (errno == EBADF || errno == EINVAL) return nullptr;  // closed
    if (errno == EINTR) return accept();
    throwErrno("accept");
  }
  return std::make_unique<TcpStream>(fd, describe(peer));
}

void TcpListener::close() {
  // exchange: another thread may close concurrently with the destructor.
  const int fd = fd_.exchange(-1);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

}  // namespace ninf::transport
