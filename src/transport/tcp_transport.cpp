#include "transport/tcp_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <limits>
#include <thread>

#include "common/error.h"
#include "common/log.h"
#include "transport/net_tuning.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ninf::transport {

// Base-class defaults for the readiness API: transports that do not
// override nativeHandle() advertise -1 and a reactor never calls these.
std::size_t Stream::recvNowait(std::span<std::uint8_t> buffer) {
  (void)buffer;
  throw TransportError("transport does not support non-blocking receive");
}

std::size_t Stream::sendvNowait(
    std::span<const std::span<const std::uint8_t>> buffers) {
  (void)buffers;
  throw TransportError("transport does not support non-blocking send");
}

std::unique_ptr<Stream> Listener::tryAccept(AcceptStatus& status) {
  status = AcceptStatus::Closed;
  throw TransportError("listener does not support non-blocking accept");
}

namespace {

[[noreturn]] void throwErrno(const std::string& what) {
  throw TransportError(what + ": " + std::strerror(errno));
}

/// Deadlines travel as microseconds on the steady clock; this sentinel
/// (the atomic's initial value) means "none".
constexpr std::int64_t kNoDeadlineUs = std::numeric_limits<std::int64_t>::max();

std::int64_t steadyNowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

class TcpStream : public Stream {
 public:
  TcpStream(int fd, std::string peer) : fd_(fd), peer_(std::move(peer)) {
    int one = 1;
    // Ninf RPC does its own buffering; disable Nagle so small control
    // messages (interface queries) do not serialize behind data.
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }

  ~TcpStream() override { closeFd(/*shutdown_first=*/false); }

  void sendAll(std::span<const std::uint8_t> data) override {
    const int fd = fd_.load();
    if (fd < 0) throw TransportError("send on closed stream");
    obs::Span span("tcp.send", static_cast<std::int64_t>(data.size()));
    // Counted per chunk actually accepted by the kernel, so the counter
    // stays truthful when a deadline or reset aborts mid-message.
    static obs::Counter& tx = obs::counter("transport.tcp.bytes_sent");
    const std::int64_t deadline = deadline_us_.load(std::memory_order_relaxed);
    const bool timed = deadline != kNoDeadlineUs;
    std::size_t sent = 0;
    while (sent < data.size()) {
      if (timed) awaitReady(POLLOUT, deadline, "send to ");
      const ssize_t n =
          ::send(fd, data.data() + sent, data.size() - sent,
                 MSG_NOSIGNAL | (timed ? MSG_DONTWAIT : 0));
      if (n < 0) {
        if (errno == EINTR) continue;
        if (timed && (errno == EAGAIN || errno == EWOULDBLOCK)) continue;
        throwErrno("send to " + peer_);
      }
      sent += static_cast<std::size_t>(n);
      tx.add(static_cast<std::uint64_t>(n));
    }
  }

  void sendv(
      std::span<const std::span<const std::uint8_t>> buffers) override {
    const int fd = fd_.load();
    if (fd < 0) throw TransportError("send on closed stream");
    std::size_t total = 0;
    for (const auto& b : buffers) total += b.size();
    if (total == 0) return;
    obs::Span span("tcp.send", static_cast<std::int64_t>(total));
    static obs::Counter& tx = obs::counter("transport.tcp.bytes_sent");
    const std::int64_t deadline = deadline_us_.load(std::memory_order_relaxed);
    const bool timed = deadline != kNoDeadlineUs;
    // sendmsg (not writev) so MSG_NOSIGNAL applies, as in sendAll.
    constexpr std::size_t kMaxIov = 64;
    struct iovec iov[kMaxIov];
    std::size_t idx = 0;  // current buffer
    std::size_t off = 0;  // bytes of buffers[idx] already sent
    while (idx < buffers.size()) {
      std::size_t n_iov = 0;
      for (std::size_t b = idx, o = off;
           b < buffers.size() && n_iov < kMaxIov; ++b, o = 0) {
        if (buffers[b].size() > o) {
          iov[n_iov].iov_base =
              const_cast<std::uint8_t*>(buffers[b].data() + o);
          iov[n_iov].iov_len = buffers[b].size() - o;
          ++n_iov;
        }
      }
      if (n_iov == 0) break;  // only empty buffers remain
      msghdr msg{};
      msg.msg_iov = iov;
      msg.msg_iovlen = n_iov;
      if (timed) awaitReady(POLLOUT, deadline, "send to ");
      const ssize_t sent =
          ::sendmsg(fd, &msg, MSG_NOSIGNAL | (timed ? MSG_DONTWAIT : 0));
      if (sent < 0) {
        if (errno == EINTR) continue;
        if (timed && (errno == EAGAIN || errno == EWOULDBLOCK)) continue;
        throwErrno("send to " + peer_);
      }
      tx.add(static_cast<std::uint64_t>(sent));
      // Advance (idx, off) past the bytes the kernel accepted.
      std::size_t left = static_cast<std::size_t>(sent);
      while (left > 0) {
        const std::size_t avail = buffers[idx].size() - off;
        if (left < avail) {
          off += left;
          left = 0;
        } else {
          left -= avail;
          ++idx;
          off = 0;
        }
      }
    }
  }

  void recvAll(std::span<std::uint8_t> buffer) override {
    const int fd = fd_.load();
    if (fd < 0) throw TransportError("recv on closed stream");
    obs::Span span("tcp.recv", static_cast<std::int64_t>(buffer.size()));
    // Counted per chunk delivered, never up front: a connection that dies
    // mid-message must not inflate the received-bytes counter.
    static obs::Counter& rx = obs::counter("transport.tcp.bytes_received");
    const std::int64_t deadline = deadline_us_.load(std::memory_order_relaxed);
    const bool timed = deadline != kNoDeadlineUs;
    std::size_t got = 0;
    while (got < buffer.size()) {
      if (timed) awaitReady(POLLIN, deadline, "recv from ");
      const ssize_t n = ::recv(fd, buffer.data() + got, buffer.size() - got,
                               timed ? MSG_DONTWAIT : 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (timed && (errno == EAGAIN || errno == EWOULDBLOCK)) continue;
        throwErrno("recv from " + peer_);
      }
      if (n == 0) {
        throw TransportError("connection closed by " + peer_ + " (" +
                             std::to_string(got) + "/" +
                             std::to_string(buffer.size()) + " bytes)");
      }
      got += static_cast<std::size_t>(n);
      rx.add(static_cast<std::uint64_t>(n));
    }
  }

  std::size_t recvSome(std::span<std::uint8_t> buffer) override {
    const int fd = fd_.load();
    if (fd < 0) throw TransportError("recv on closed stream");
    if (buffer.empty()) return 0;
    const std::int64_t deadline = deadline_us_.load(std::memory_order_relaxed);
    const bool timed = deadline != kNoDeadlineUs;
    for (;;) {
      if (timed) awaitReady(POLLIN, deadline, "recv from ");
      const ssize_t n =
          ::recv(fd, buffer.data(), buffer.size(), timed ? MSG_DONTWAIT : 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (timed && (errno == EAGAIN || errno == EWOULDBLOCK)) continue;
        throwErrno("recv from " + peer_);
      }
      if (n == 0) {
        throw TransportError("connection closed by " + peer_);
      }
      static obs::Counter& rx = obs::counter("transport.tcp.bytes_received");
      rx.add(static_cast<std::uint64_t>(n));
      return static_cast<std::size_t>(n);
    }
  }

  int nativeHandle() const override { return fd_.load(); }

  bool setNonBlocking(bool on) override {
    const int fd = fd_.load();
    if (fd < 0) return false;
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0) return false;
    const int want = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
    return flags == want || ::fcntl(fd, F_SETFL, want) >= 0;
  }

  std::size_t recvNowait(std::span<std::uint8_t> buffer) override {
    const int fd = fd_.load();
    if (fd < 0) throw TransportError("recv on closed stream");
    if (buffer.empty()) return 0;
    for (;;) {
      const ssize_t n =
          ::recv(fd, buffer.data(), buffer.size(), MSG_DONTWAIT);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return 0;
        throwErrno("recv from " + peer_);
      }
      if (n == 0) {
        throw TransportError("connection closed by " + peer_);
      }
      static obs::Counter& rx = obs::counter("transport.tcp.bytes_received");
      rx.add(static_cast<std::uint64_t>(n));
      return static_cast<std::size_t>(n);
    }
  }

  std::size_t sendvNowait(
      std::span<const std::span<const std::uint8_t>> buffers) override {
    const int fd = fd_.load();
    if (fd < 0) throw TransportError("send on closed stream");
    constexpr std::size_t kMaxIov = 64;
    struct iovec iov[kMaxIov];
    std::size_t n_iov = 0;
    for (const auto& b : buffers) {
      if (b.empty()) continue;
      if (n_iov == kMaxIov) break;
      iov[n_iov].iov_base = const_cast<std::uint8_t*>(b.data());
      iov[n_iov].iov_len = b.size();
      ++n_iov;
    }
    if (n_iov == 0) return 0;
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = n_iov;
    for (;;) {
      const ssize_t sent = ::sendmsg(fd, &msg, MSG_NOSIGNAL | MSG_DONTWAIT);
      if (sent < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return 0;
        throwErrno("send to " + peer_);
      }
      static obs::Counter& tx = obs::counter("transport.tcp.bytes_sent");
      tx.add(static_cast<std::uint64_t>(sent));
      return static_cast<std::size_t>(sent);
    }
  }

  void setDeadline(std::chrono::steady_clock::time_point deadline) override {
    deadline_us_.store(
        deadline == kNoDeadline
            ? kNoDeadlineUs
            : std::chrono::duration_cast<std::chrono::microseconds>(
                  deadline.time_since_epoch())
                  .count(),
        std::memory_order_relaxed);
  }

  void shutdownSend() override {
    const int fd = fd_.load();
    if (fd >= 0) ::shutdown(fd, SHUT_WR);
  }

  /// May be called from a different thread than a blocked recvAll: the
  /// shutdown() wakes that thread (close() alone would not), and only the
  /// shutdown is performed here — the fd itself is released by the
  /// destructor, so the blocked thread never races a reused descriptor.
  void close() override { closeFd(/*shutdown_first=*/true); }

  std::string peerName() const override { return peer_; }

 private:
  /// Block until the socket is ready for `events` or the deadline passes
  /// (TimeoutError).  `what` is the error-message prefix ("recv from ").
  void awaitReady(short events, std::int64_t deadline_us, const char* what) {
    for (;;) {
      const std::int64_t now = steadyNowUs();
      if (now >= deadline_us) {
        static obs::Counter& timeouts =
            obs::counter("transport.deadline_timeouts");
        timeouts.add();
        throw TimeoutError(std::string(what) + peer_ + ": deadline exceeded");
      }
      const std::int64_t wait_ms = (deadline_us - now + 999) / 1000;
      pollfd pfd{fd_.load(), events, 0};
      const int rc = ::poll(
          &pfd, 1,
          static_cast<int>(std::min<std::int64_t>(wait_ms, 60'000)));
      if (rc > 0) return;
      if (rc < 0 && errno != EINTR) throwErrno(std::string(what) + peer_);
      // rc == 0: poll timed out; re-check the deadline and go again.
    }
  }

  void closeFd(bool shutdown_first) {
    if (shutdown_first) {
      const int fd = fd_.load();
      if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
      return;  // leave the fd open for in-flight syscalls
    }
    const int fd = fd_.exchange(-1);
    if (fd >= 0) ::close(fd);
  }

  std::atomic<int> fd_;
  std::string peer_;
  // Microseconds on the steady clock; kNoDeadlineUs disables.  Atomic so
  // a deadline set by the calling thread is visible to a peer thread
  // blocked in the other direction.
  std::atomic<std::int64_t> deadline_us_{kNoDeadlineUs};
};

std::string describe(const sockaddr_in& addr) {
  char buf[INET_ADDRSTRLEN] = {};
  ::inet_ntop(AF_INET, &addr.sin_addr, buf, sizeof(buf));
  return std::string(buf) + ":" + std::to_string(ntohs(addr.sin_port));
}

}  // namespace

std::unique_ptr<Stream> tcpConnect(const std::string& host,
                                   std::uint16_t port,
                                   double timeout_seconds) {
  const std::string where = host + ":" + std::to_string(port);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throwErrno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw TransportError("bad IPv4 address '" + host + "' (connecting to " +
                         where + ")");
  }
  if (timeout_seconds <= 0) {
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) < 0) {
      const int saved = errno;
      ::close(fd);
      errno = saved;
      throwErrno("connect to " + where);
    }
    return std::make_unique<TcpStream>(fd, describe(addr));
  }
  // Timed connect: non-blocking connect, poll for writability, then read
  // the final status from SO_ERROR and restore blocking mode.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throwErrno("fcntl for connect to " + where);
  }
  const auto fail = [&](const std::string& what) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throwErrno(what);
  };
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    if (errno != EINPROGRESS) fail("connect to " + where);
    pollfd pfd{fd, POLLOUT, 0};
    const int timeout_ms =
        static_cast<int>(std::max(1.0, timeout_seconds * 1000.0));
    int rc;
    do {
      rc = ::poll(&pfd, 1, timeout_ms);
    } while (rc < 0 && errno == EINTR);
    if (rc < 0) fail("poll for connect to " + where);
    if (rc == 0) {
      ::close(fd);
      throw TransportError("connect to " + where + " timed out after " +
                           std::to_string(timeout_ms) + " ms");
    }
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) < 0) {
      fail("getsockopt for connect to " + where);
    }
    if (so_error != 0) {
      errno = so_error;
      fail("connect to " + where);
    }
  }
  if (::fcntl(fd, F_SETFL, flags) < 0) {
    fail("fcntl for connect to " + where);
  }
  return std::make_unique<TcpStream>(fd, describe(addr));
}

TcpListener::TcpListener(std::uint16_t port, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throwErrno("socket");
  fd_.store(fd);
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    throwErrno("bind port " + std::to_string(port));
  }
  if (::listen(fd, backlog > 0 ? backlog : kListenBacklogDefault) < 0) {
    throwErrno("listen");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    throwErrno("getsockname");
  }
  port_ = ntohs(bound.sin_port);
  NINF_LOG(Debug) << "listening on 127.0.0.1:" << port_;
}

TcpListener::~TcpListener() { close(); }

namespace {

/// Count one refused accept and say why (rate-limited).
void noteAcceptError(const char* what) {
  static obs::Counter& errors = obs::counter("server.accept_errors");
  errors.add();
  NINF_LOG_EVERY_N(Warn, 100)
      << "accept failed (" << what << "); backing off";
}

}  // namespace

std::unique_ptr<Stream> TcpListener::accept() {
  // Loop (not recurse) on EINTR: a signal storm must not grow the stack.
  for (;;) {
    sockaddr_in peer{};
    socklen_t len = sizeof(peer);
    const int listen_fd = fd_.load();
    if (listen_fd < 0) return nullptr;  // closed
    const int fd =
        ::accept(listen_fd, reinterpret_cast<sockaddr*>(&peer), &len);
    if (fd < 0) {
      if (errno == EBADF || errno == EINVAL) return nullptr;  // closed
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // The socket was switched to non-blocking by a tryAccept()
        // caller; park on readiness and retry.
        pollfd pfd{listen_fd, POLLIN, 0};
        ::poll(&pfd, 1, kAcceptPollMs);
        continue;
      }
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
          errno == ENOMEM) {
        // Out of descriptors/buffers: dropping the accept loop here
        // would kill the server for good.  Count it, let the pressure
        // drain, retry — the pending connection stays in the backlog.
        noteAcceptError(std::strerror(errno));
        std::this_thread::sleep_for(
            std::chrono::duration<double>(kAcceptBackoffSeconds));
        continue;
      }
      throwErrno("accept");
    }
    return std::make_unique<TcpStream>(fd, describe(peer));
  }
}

int TcpListener::nativeHandle() const { return fd_.load(); }

std::unique_ptr<Stream> TcpListener::tryAccept(AcceptStatus& status) {
  const int listen_fd = fd_.load();
  if (listen_fd < 0) {
    status = AcceptStatus::Closed;
    return nullptr;
  }
  // First use switches the listening socket to non-blocking; harmless
  // for a subsequent blocking accept() (it handles EAGAIN via poll-free
  // retry only in the reactor, which never mixes the two).
  if (!nonblocking_.exchange(true)) {
    const int flags = ::fcntl(listen_fd, F_GETFL, 0);
    if (flags >= 0) ::fcntl(listen_fd, F_SETFL, flags | O_NONBLOCK);
  }
  for (;;) {
    sockaddr_in peer{};
    socklen_t len = sizeof(peer);
    const int fd =
        ::accept(listen_fd, reinterpret_cast<sockaddr*>(&peer), &len);
    if (fd >= 0) {
      status = AcceptStatus::Accepted;
      return std::make_unique<TcpStream>(fd, describe(peer));
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      status = AcceptStatus::WouldBlock;
      return nullptr;
    }
    if (errno == EBADF || errno == EINVAL) {
      status = AcceptStatus::Closed;
      return nullptr;
    }
    if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
        errno == ENOMEM) {
      noteAcceptError(std::strerror(errno));
      status = AcceptStatus::Exhausted;
      return nullptr;
    }
    throwErrno("accept");
  }
}

void TcpListener::close() {
  // exchange: another thread may close concurrently with the destructor.
  const int fd = fd_.exchange(-1);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

}  // namespace ninf::transport
