#include "transport/fault_injection.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "obs/metrics.h"

namespace ninf::transport {

namespace {

constexpr std::int64_t kNoDeadlineUs = std::numeric_limits<std::int64_t>::max();

std::int64_t steadyNowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

bool FaultPlan::onConnect() {
  bool refuse = false;
  {
    LockGuard lock(mutex_);
    if (refusals_left_ > 0) {
      --refusals_left_;
      refuse = true;
    } else if (spec_.connect_refusal > 0 &&
               rng_.nextBool(spec_.connect_refusal)) {
      refuse = true;
    }
  }
  // Counter bumps stay outside the plan lock: FaultyStream wraps hot
  // send/recv paths, and the obs registry must not nest under it.
  if (refuse) {
    static obs::Counter& refused =
        obs::counter("transport.fault.connect_refusals");
    refused.add();
    injected_.fetch_add(1, std::memory_order_relaxed);
  }
  return refuse;
}

FaultPlan::OpFault FaultPlan::onSend(std::size_t bytes) {
  OpFault f;
  {
    LockGuard lock(mutex_);
    if (resets_left_ > 0) {
      --resets_left_;
      f.reset = true;
    } else if (spec_.reset > 0 && rng_.nextBool(spec_.reset)) {
      f.reset = true;
    } else if (spec_.truncate > 0 && bytes > 0 &&
               rng_.nextBool(spec_.truncate)) {
      f.truncate_at = static_cast<std::size_t>(rng_.nextBelow(bytes));
    }
    if (spec_.delay > 0 && rng_.nextBool(spec_.delay)) {
      f.delay_ms =
          spec_.delay_min_ms +
          (spec_.delay_max_ms - spec_.delay_min_ms) * rng_.nextDouble();
    }
  }
  // Accounting happens on the decided fault after the lock drops.
  if (f.reset) {
    static obs::Counter& resets = obs::counter("transport.fault.resets");
    resets.add();
    injected_.fetch_add(1, std::memory_order_relaxed);
  }
  if (f.truncate_at != kNoTruncate) {
    static obs::Counter& truncated =
        obs::counter("transport.fault.truncated_sends");
    truncated.add();
    injected_.fetch_add(1, std::memory_order_relaxed);
  }
  if (f.delay_ms > 0) {
    static obs::Counter& delays = obs::counter("transport.fault.delays");
    delays.add();
    injected_.fetch_add(1, std::memory_order_relaxed);
  }
  return f;
}

FaultPlan::OpFault FaultPlan::onRecv(std::size_t bytes) {
  OpFault f;
  {
    LockGuard lock(mutex_);
    if (spec_.reset > 0 && rng_.nextBool(spec_.reset)) {
      f.reset = true;
    } else if (spec_.stutter > 0 && bytes > 1 &&
               rng_.nextBool(spec_.stutter)) {
      f.chunk = 1 + static_cast<std::size_t>(
                        rng_.nextBelow(std::max<std::size_t>(
                            1, spec_.stutter_bytes)));
    }
    if (spec_.delay > 0 && rng_.nextBool(spec_.delay)) {
      f.delay_ms =
          spec_.delay_min_ms +
          (spec_.delay_max_ms - spec_.delay_min_ms) * rng_.nextDouble();
    }
  }
  // Accounting happens on the decided fault after the lock drops.
  if (f.reset) {
    static obs::Counter& resets = obs::counter("transport.fault.resets");
    resets.add();
    injected_.fetch_add(1, std::memory_order_relaxed);
  }
  if (f.chunk > 0) {
    static obs::Counter& stuttered =
        obs::counter("transport.fault.stuttered_recvs");
    stuttered.add();
    injected_.fetch_add(1, std::memory_order_relaxed);
  }
  if (f.delay_ms > 0) {
    static obs::Counter& delays = obs::counter("transport.fault.delays");
    delays.add();
    injected_.fetch_add(1, std::memory_order_relaxed);
  }
  return f;
}

namespace {

class FaultyStream : public Stream {
 public:
  FaultyStream(std::unique_ptr<Stream> inner, std::shared_ptr<FaultPlan> plan)
      : inner_(std::move(inner)), plan_(std::move(plan)) {}

  void sendAll(std::span<const std::uint8_t> data) override {
    if (plan_->enabled()) {
      const FaultPlan::OpFault f = plan_->onSend(data.size());
      applyDelay(f.delay_ms);
      if (f.reset) abortConnection("connection reset before send");
      if (f.truncate_at != FaultPlan::kNoTruncate &&
          f.truncate_at < data.size()) {
        if (f.truncate_at > 0) inner_->sendAll(data.first(f.truncate_at));
        abortConnection("send truncated after " +
                        std::to_string(f.truncate_at) + "/" +
                        std::to_string(data.size()) + " bytes");
      }
    }
    inner_->sendAll(data);
  }

  void sendv(
      std::span<const std::span<const std::uint8_t>> buffers) override {
    if (plan_->enabled()) {
      std::size_t total = 0;
      for (const auto& b : buffers) total += b.size();
      const FaultPlan::OpFault f = plan_->onSend(total);
      applyDelay(f.delay_ms);
      if (f.reset) abortConnection("connection reset before send");
      if (f.truncate_at != FaultPlan::kNoTruncate && f.truncate_at < total) {
        // Forward the prefix buffer by buffer, then cut the line.
        std::size_t remaining = f.truncate_at;
        for (const auto& b : buffers) {
          if (remaining == 0) break;
          const std::size_t take = std::min(remaining, b.size());
          if (take > 0) inner_->sendAll(b.first(take));
          remaining -= take;
        }
        abortConnection("send truncated after " +
                        std::to_string(f.truncate_at) + "/" +
                        std::to_string(total) + " bytes");
      }
    }
    inner_->sendv(buffers);
  }

  void recvAll(std::span<std::uint8_t> buffer) override {
    if (plan_->enabled()) {
      const FaultPlan::OpFault f = plan_->onRecv(buffer.size());
      applyDelay(f.delay_ms);
      if (f.reset) abortConnection("connection reset before recv");
      if (f.chunk > 0) {
        // Short-read stutter: satisfy the same contract, but drag the
        // bytes through many bounded partial reads.
        std::size_t got = 0;
        while (got < buffer.size()) {
          got += inner_->recvSome(
              buffer.subspan(got, std::min(f.chunk, buffer.size() - got)));
        }
        return;
      }
    }
    inner_->recvAll(buffer);
  }

  std::size_t recvSome(std::span<std::uint8_t> buffer) override {
    if (plan_->enabled() && !buffer.empty()) {
      const FaultPlan::OpFault f = plan_->onRecv(buffer.size());
      applyDelay(f.delay_ms);
      if (f.reset) abortConnection("connection reset before recv");
      if (f.chunk > 0) {
        return inner_->recvSome(
            buffer.first(std::min(f.chunk, buffer.size())));
      }
    }
    return inner_->recvSome(buffer);
  }

  void setDeadline(std::chrono::steady_clock::time_point deadline) override {
    deadline_us_.store(
        deadline == kNoDeadline
            ? kNoDeadlineUs
            : std::chrono::duration_cast<std::chrono::microseconds>(
                  deadline.time_since_epoch())
                  .count(),
        std::memory_order_relaxed);
    inner_->setDeadline(deadline);
  }

  void shutdownSend() override { inner_->shutdownSend(); }
  void close() override { inner_->close(); }
  std::string peerName() const override { return inner_->peerName(); }

 private:
  /// Injected stall, bounded by the stream's deadline: a delay that would
  /// overrun it sleeps only to the deadline and then fires the timeout —
  /// exactly what a real stalled peer does to a deadlined reader.
  void applyDelay(double delay_ms) {
    if (delay_ms <= 0) return;
    const std::int64_t deadline = deadline_us_.load(std::memory_order_relaxed);
    const std::int64_t want_us = static_cast<std::int64_t>(delay_ms * 1000.0);
    if (deadline != kNoDeadlineUs) {
      const std::int64_t now = steadyNowUs();
      if (now + want_us >= deadline) {
        if (deadline > now) {
          std::this_thread::sleep_for(
              std::chrono::microseconds(deadline - now));
        }
        static obs::Counter& timeouts =
            obs::counter("transport.deadline_timeouts");
        timeouts.add();
        throw TimeoutError("injected stall on " + inner_->peerName() +
                           " outlived the deadline");
      }
    }
    std::this_thread::sleep_for(std::chrono::microseconds(want_us));
  }

  [[noreturn]] void abortConnection(const std::string& why) {
    const std::string peer = inner_->peerName();
    inner_->close();
    throw TransportError("injected fault on " + peer + ": " + why);
  }

  std::unique_ptr<Stream> inner_;
  std::shared_ptr<FaultPlan> plan_;
  std::atomic<std::int64_t> deadline_us_{kNoDeadlineUs};
};

class FaultyListener : public Listener {
 public:
  FaultyListener(std::unique_ptr<Listener> inner,
                 std::shared_ptr<FaultPlan> plan)
      : inner_(std::move(inner)), plan_(std::move(plan)) {}

  std::unique_ptr<Stream> accept() override {
    for (;;) {
      auto stream = inner_->accept();
      if (!stream) return nullptr;
      if (plan_->enabled() && plan_->onConnect()) {
        stream->close();  // injected refusal: peer sees an immediate reset
        continue;
      }
      return wrapFaulty(std::move(stream), plan_);
    }
  }

  void close() override { inner_->close(); }

 private:
  std::unique_ptr<Listener> inner_;
  std::shared_ptr<FaultPlan> plan_;
};

}  // namespace

std::unique_ptr<Stream> wrapFaulty(std::unique_ptr<Stream> inner,
                                   std::shared_ptr<FaultPlan> plan) {
  if (!plan) return inner;
  return std::make_unique<FaultyStream>(std::move(inner), std::move(plan));
}

std::unique_ptr<Listener> wrapFaulty(std::unique_ptr<Listener> inner,
                                     std::shared_ptr<FaultPlan> plan) {
  if (!plan) return inner;
  return std::make_unique<FaultyListener>(std::move(inner), std::move(plan));
}

void checkConnectFault(FaultPlan& plan, const std::string& where) {
  if (plan.enabled() && plan.onConnect()) {
    throw TransportError("injected connect refusal to " + where);
  }
}

}  // namespace ninf::transport
