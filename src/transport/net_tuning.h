// Shared listener tuning knobs.
//
// These constants used to live as magic numbers in two places — the
// TcpListener accept loop (a hardcoded 50 ms fd-exhaustion sleep) and
// the reactor's Options default (an unrelated 0.05) — which drifted
// apart would silently give the threaded and event-driven accept paths
// different recovery behavior.  One definition here keeps them honest.
#pragma once

#include <sys/socket.h>

namespace ninf::transport {

/// Kernel pending-connection queue requested by listeners when the
/// caller does not pick one (TcpListener's `backlog <= 0`).  A flash
/// crowd fills a short backlog long before the server is the
/// bottleneck, and the kernel then drops SYNs; default to the system
/// maximum rather than the historical 64.
inline constexpr int kListenBacklogDefault = SOMAXCONN;

/// Pause after descriptor/buffer exhaustion (EMFILE/ENFILE/ENOBUFS/
/// ENOMEM) before trying to accept again, seconds.  Used by both the
/// blocking accept loop and the reactor's re-arm timer so the two
/// accept paths shed load at the same rate; the pending connection
/// stays in the kernel backlog meanwhile.
inline constexpr double kAcceptBackoffSeconds = 0.05;

/// Poll timeout of the blocking accept() path when the socket has been
/// switched to non-blocking by a concurrent tryAccept() caller,
/// milliseconds: park on readiness, then re-check for close().
inline constexpr int kAcceptPollMs = 1000;

}  // namespace ninf::transport
