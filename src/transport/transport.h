// Byte-stream transport abstraction under Ninf RPC.
//
// Two implementations: real TCP sockets (the paper's deployment) and an
// in-process pipe (tests and single-process demos).  Both deliver reliable,
// ordered byte streams; message framing lives one layer up in protocol/.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>

namespace ninf::transport {

/// Reliable bidirectional byte stream.  Thread-compatible: one thread may
/// send while another receives, but concurrent sends (or concurrent
/// receives) require external synchronization.
class Stream {
 public:
  virtual ~Stream() = default;

  /// Send every byte; throws ninf::TransportError on failure.
  virtual void sendAll(std::span<const std::uint8_t> data) = 0;

  /// Receive exactly buffer.size() bytes; throws ninf::TransportError on
  /// EOF or failure.
  virtual void recvAll(std::span<std::uint8_t> buffer) = 0;

  /// Half-close for sending; the peer sees EOF after draining.
  virtual void shutdownSend() = 0;

  /// Close both directions.
  virtual void close() = 0;

  /// Diagnostic peer description ("127.0.0.1:4096", "inproc").
  virtual std::string peerName() const = 0;
};

/// Accepts inbound connections.
class Listener {
 public:
  virtual ~Listener() = default;

  /// Block until a connection arrives; returns nullptr once closed.
  virtual std::unique_ptr<Stream> accept() = 0;

  /// Unblock pending and future accept() calls.
  virtual void close() = 0;
};

}  // namespace ninf::transport
