// Byte-stream transport abstraction under Ninf RPC.
//
// Two implementations: real TCP sockets (the paper's deployment) and an
// in-process pipe (tests and single-process demos).  Both deliver reliable,
// ordered byte streams; message framing lives one layer up in protocol/.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "common/sync.h"

namespace ninf::transport {

/// Reliable bidirectional byte stream.  Thread-compatible: one thread may
/// send while another receives, but concurrent sends (or concurrent
/// receives) require external synchronization.
class Stream {
 public:
  virtual ~Stream() = default;

  /// Send every byte; throws ninf::TransportError on failure.
  virtual void sendAll(std::span<const std::uint8_t> data) NINF_BLOCKING = 0;

  /// Scatter-gather send: every byte of every buffer, in order, as if by
  /// one sendAll over the concatenation.  The TCP implementation uses
  /// writev/sendmsg so a frame header, scalar section, and array chunk go
  /// out in a single syscall; the default falls back to per-buffer
  /// sendAll.
  virtual void sendv(std::span<const std::span<const std::uint8_t>> buffers)
      NINF_BLOCKING {
    for (const auto& b : buffers) {
      if (!b.empty()) sendAll(b);
    }
  }

  /// Receive exactly buffer.size() bytes; throws ninf::TransportError on
  /// EOF or failure.
  virtual void recvAll(std::span<std::uint8_t> buffer) NINF_BLOCKING = 0;

  /// Bounded partial read: block until at least one byte is available,
  /// then return up to buffer.size() bytes (the count actually read).
  /// Throws ninf::TransportError on EOF or failure.  The default simply
  /// fills the whole buffer, which is correct only when the caller knows
  /// that many bytes are in flight (as the framed body reader does).
  virtual std::size_t recvSome(std::span<std::uint8_t> buffer)
      NINF_BLOCKING {
    recvAll(buffer);
    return buffer.size();
  }

  /// Sentinel meaning "no deadline" (the initial state of every stream).
  static constexpr std::chrono::steady_clock::time_point kNoDeadline =
      std::chrono::steady_clock::time_point::max();

  /// Absolute bound for subsequent send/recv operations: an operation
  /// still incomplete when the deadline passes throws ninf::TimeoutError.
  /// The TCP path polls before each syscall; the inproc path uses timed
  /// condition waits.  Pass kNoDeadline to disable again.  Like send and
  /// recv themselves, thread-compatible rather than fully thread-safe.
  virtual void setDeadline(std::chrono::steady_clock::time_point deadline) = 0;

  /// Convenience: deadline `seconds` from now; <= 0 disables.
  void setDeadlineIn(double seconds) {
    if (seconds <= 0) {
      clearDeadline();
      return;
    }
    setDeadline(std::chrono::steady_clock::now() +
                std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(seconds)));
  }

  void clearDeadline() { setDeadline(kNoDeadline); }

  /// Half-close for sending; the peer sees EOF after draining.
  virtual void shutdownSend() = 0;

  /// Close both directions.
  virtual void close() = 0;

  /// Diagnostic peer description ("127.0.0.1:4096", "inproc").
  virtual std::string peerName() const = 0;

  // ---- readiness integration (event-driven servers) -----------------
  //
  // A reactor owning many streams needs (a) a pollable fd to register
  // with epoll and (b) operations that never block the event loop.
  // Transports that cannot provide them (in-process pipes, fault
  // decorators) return -1 / false and servers fall back to a
  // thread-per-connection path for those connections.

  /// Pollable OS handle, or -1 when this transport has none.
  virtual int nativeHandle() const { return -1; }

  /// Switch the stream to non-blocking mode (recvNowait/sendvNowait
  /// become usable).  Returns false when unsupported.
  virtual bool setNonBlocking(bool on) {
    (void)on;
    return false;
  }

  /// Non-blocking read: up to buffer.size() bytes, returning the count
  /// actually read, or 0 when the operation would block.  Throws
  /// ninf::TransportError on EOF or failure.  Valid only after
  /// setNonBlocking(true) succeeded.
  virtual std::size_t recvNowait(std::span<std::uint8_t> buffer);

  /// Non-blocking scatter-gather write: accepts as many bytes as the
  /// transport can take right now (possibly spanning several buffers),
  /// returning the count, or 0 when the operation would block.  Throws
  /// ninf::TransportError on failure.  Valid only after
  /// setNonBlocking(true) succeeded.
  virtual std::size_t sendvNowait(
      std::span<const std::span<const std::uint8_t>> buffers);
};

/// Outcome of a non-blocking accept attempt (Listener::tryAccept).
enum class AcceptStatus {
  Accepted,    // a new stream was returned
  WouldBlock,  // no pending connection right now
  Closed,      // the listener was closed
  Exhausted,   // fd exhaustion (EMFILE/ENFILE): back off and retry
};

/// Accepts inbound connections.
class Listener {
 public:
  virtual ~Listener() = default;

  /// Block until a connection arrives; returns nullptr once closed.
  virtual std::unique_ptr<Stream> accept() NINF_BLOCKING = 0;

  /// Unblock pending and future accept() calls.
  virtual void close() = 0;

  /// Pollable OS handle for readiness-driven accepting, or -1 when this
  /// listener cannot expose one (in-process, fault decorators).  A
  /// server only calls tryAccept() on listeners with a real handle.
  virtual int nativeHandle() const { return -1; }

  /// Non-blocking accept: returns the new stream (status Accepted) or
  /// nullptr with `status` explaining why.  Unlike accept(), never
  /// throws on fd exhaustion — that is reported as Exhausted so the
  /// caller can back off without tearing down the accept path.
  virtual std::unique_ptr<Stream> tryAccept(AcceptStatus& status);
};

}  // namespace ninf::transport
