// Deterministic fault injection at the transport boundary.
//
// The paper's WAN experiments (section 6) are dominated by transport
// misbehavior — lossy links, stalled transfers, servers that vanish
// mid-call — none of which a loopback test exercises.  This decorator
// makes those failures reproducible: FaultyStream/FaultyListener wrap
// any Stream/Listener and consult a seeded FaultPlan before every
// operation, so a chaos schedule is a (seed, FaultSpec) pair that
// replays identically.  The chaos suite (tests/test_chaos.cpp) asserts
// the robustness invariant under hundreds of such schedules: every call
// either returns a correct result or throws a typed error within its
// deadline — never hangs, never corrupts.
//
// A null plan is never wrapped (wrapFaulty returns the stream unchanged)
// and a no-fault plan short-circuits before drawing any randomness, so
// the decorator costs nothing when disabled.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "common/rng.h"
#include "common/sync.h"
#include "transport/transport.h"

namespace ninf::transport {

/// What can go wrong, and how often.  Probabilities are in [0, 1] and
/// evaluated independently per operation; the scripted counters fire
/// deterministically before any probabilistic draw, which is how tests
/// arrange "exactly one mid-stream reset, then a clean recovery".
struct FaultSpec {
  // Probabilistic faults.
  double connect_refusal = 0.0;  ///< connection attempt refused outright
  double reset = 0.0;            ///< send/recv aborts: connection reset
  double truncate = 0.0;         ///< send delivers a prefix, then resets
  double delay = 0.0;            ///< op stalls delay_min..delay_max first
  double stutter = 0.0;          ///< recv trickles in tiny chunks
  double delay_min_ms = 0.2;
  double delay_max_ms = 3.0;
  std::size_t stutter_bytes = 3;  ///< max chunk size of a stuttered recv

  // Scripted faults (consumed in operation order, then exhausted).
  std::uint32_t refuse_first_connects = 0;  ///< refuse the first N connects
  std::uint32_t reset_first_sends = 0;      ///< reset the first N sends

  bool anyFaults() const {
    return connect_refusal > 0 || reset > 0 || truncate > 0 || delay > 0 ||
           stutter > 0 || refuse_first_connects > 0 || reset_first_sends > 0;
  }
};

/// Seeded decision source shared by every stream of one scenario (the
/// client connection, its reconnects, and any server-side wraps).  All
/// draws happen under one mutex, so a single-threaded schedule replays
/// bit-identically for a given seed.  Every injected fault bumps an
/// `obs` counter (transport.fault.*) and the plan's own tally.
class FaultPlan {
 public:
  /// No faults; enabled() is false and every operation passes through.
  FaultPlan() = default;
  FaultPlan(std::uint64_t seed, FaultSpec spec)
      : spec_(spec), rng_(seed), refusals_left_(spec.refuse_first_connects),
        resets_left_(spec.reset_first_sends) {}

  const FaultSpec& spec() const { return spec_; }
  bool enabled() const { return spec_.anyFaults(); }

  static constexpr std::size_t kNoTruncate = static_cast<std::size_t>(-1);

  /// Verdict for one stream operation.
  struct OpFault {
    double delay_ms = 0.0;          ///< stall this long first
    bool reset = false;             ///< then abort the connection
    std::size_t truncate_at = kNoTruncate;  ///< send only this prefix
    std::size_t chunk = 0;          ///< > 0: deliver recv in <= chunk bytes
  };

  /// True = refuse this connection attempt.
  bool onConnect();
  OpFault onSend(std::size_t bytes);
  OpFault onRecv(std::size_t bytes);

  /// Faults injected so far (tests assert a schedule actually fired).
  std::uint64_t injectedCount() const {
    return injected_.load(std::memory_order_relaxed);
  }

 private:
  FaultSpec spec_{};  // immutable after construction
  Mutex mutex_{"faultplan"};
  SplitMix64 rng_ NINF_GUARDED_BY(mutex_){0};
  std::uint32_t refusals_left_ NINF_GUARDED_BY(mutex_) = 0;
  std::uint32_t resets_left_ NINF_GUARDED_BY(mutex_) = 0;
  std::atomic<std::uint64_t> injected_{0};
};

/// Wrap a stream so every operation consults `plan`.  A null plan elides
/// the wrapper entirely (zero overhead when fault injection is off); a
/// non-null no-fault plan wraps but forwards untouched, byte-identical.
std::unique_ptr<Stream> wrapFaulty(std::unique_ptr<Stream> inner,
                                   std::shared_ptr<FaultPlan> plan);

/// Wrap a listener: injected connect refusals drop the inbound connection
/// on the floor (the peer sees an immediate reset) and every accepted
/// stream is wrapped with the same plan.
std::unique_ptr<Listener> wrapFaulty(std::unique_ptr<Listener> inner,
                                     std::shared_ptr<FaultPlan> plan);

/// Client-side connect refusal, for use at the top of connection
/// factories: throws TransportError when the plan refuses this attempt.
void checkConnectFault(FaultPlan& plan, const std::string& where);

}  // namespace ninf::transport
