#include "transport/inproc_transport.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <deque>
#include <limits>
#include <vector>

#include "common/error.h"
#include "common/sync.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ninf::transport {

namespace {

constexpr std::int64_t kNoDeadlineUs = std::numeric_limits<std::int64_t>::max();

std::chrono::steady_clock::time_point timePointFromUs(std::int64_t us) {
  return std::chrono::steady_clock::time_point(
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::microseconds(us)));
}

[[noreturn]] void throwDeadline(const char* what) {
  static obs::Counter& timeouts = obs::counter("transport.deadline_timeouts");
  timeouts.add();
  throw TimeoutError(std::string(what) + " on inproc pipe: deadline exceeded");
}

/// One direction of the pipe: a FIFO of byte chunks with EOF state.
/// Chunk granularity matches the sender's writes, so an 8 MB array body
/// moves as a few dozen memcpys instead of per-byte deque churn.
class ByteQueue {
 public:
  void push(std::span<const std::uint8_t> data) {
    pushv({&data, 1});
  }

  /// Append every buffer under one lock (scatter-gather send).
  void pushv(std::span<const std::span<const std::uint8_t>> buffers) {
    LockGuard lock(mutex_);
    if (closed_) throw TransportError("send on closed inproc pipe");
    for (const auto& b : buffers) {
      if (!b.empty()) chunks_.emplace_back(b.begin(), b.end());
    }
    cv_.notify_all();
  }

  void popExact(std::span<std::uint8_t> out, std::int64_t deadline_us) {
    UniqueLock lock(mutex_);
    std::size_t got = 0;
    while (got < out.size()) {
      waitForData(lock, deadline_us);
      if (chunks_.empty() && closed_) {
        throw TransportError("inproc pipe closed (" + std::to_string(got) +
                             "/" + std::to_string(out.size()) + " bytes)");
      }
      got += drainLocked(out.subspan(got));
    }
  }

  /// Block until at least one byte is buffered, then take up to
  /// out.size() bytes.  Throws once the pipe is closed and drained.
  std::size_t popSome(std::span<std::uint8_t> out, std::int64_t deadline_us) {
    if (out.empty()) return 0;
    UniqueLock lock(mutex_);
    waitForData(lock, deadline_us);
    if (chunks_.empty() && closed_) {
      throw TransportError("inproc pipe closed (0/" +
                           std::to_string(out.size()) + " bytes)");
    }
    return drainLocked(out);
  }

  void close() {
    LockGuard lock(mutex_);
    closed_ = true;
    cv_.notify_all();
  }

 private:
  /// Wait until data is buffered or the pipe closes; TimeoutError once
  /// the deadline passes.  Caller holds the lock.
  void waitForData(UniqueLock& lock, std::int64_t deadline_us)
      NINF_REQUIRES(mutex_) {
    const auto ready = [&] { return !chunks_.empty() || closed_; };
    if (deadline_us == kNoDeadlineUs) {
      cv_.wait(lock, ready);
    } else if (!cv_.wait_until(lock, timePointFromUs(deadline_us), ready)) {
      throwDeadline("recv");
    }
  }

  /// Copy buffered bytes into `out`; returns the count copied (>= 1 when
  /// any chunk is buffered).  Caller holds the lock.
  std::size_t drainLocked(std::span<std::uint8_t> out)
      NINF_REQUIRES(mutex_) {
    std::size_t got = 0;
    while (got < out.size() && !chunks_.empty()) {
      std::vector<std::uint8_t>& front = chunks_.front();
      const std::size_t avail = front.size() - head_;
      const std::size_t take = std::min(avail, out.size() - got);
      std::memcpy(out.data() + got, front.data() + head_, take);
      got += take;
      head_ += take;
      if (head_ == front.size()) {
        chunks_.pop_front();
        head_ = 0;
      }
    }
    return got;
  }

  Mutex mutex_{"inproc.pipe"};
  CondVar cv_;
  std::deque<std::vector<std::uint8_t>> chunks_ NINF_GUARDED_BY(mutex_);
  std::size_t head_ NINF_GUARDED_BY(mutex_) = 0;  // consumed prefix of front
  bool closed_ NINF_GUARDED_BY(mutex_) = false;
};

class InprocStream : public Stream {
 public:
  InprocStream(std::shared_ptr<ByteQueue> out, std::shared_ptr<ByteQueue> in)
      : out_(std::move(out)), in_(std::move(in)) {}

  ~InprocStream() override { close(); }

  void sendAll(std::span<const std::uint8_t> data) override {
    obs::Span span("inproc.send", static_cast<std::int64_t>(data.size()));
    static obs::Counter& tx = obs::counter("transport.inproc.bytes_sent");
    tx.add(data.size());
    out_->push(data);
  }

  void sendv(
      std::span<const std::span<const std::uint8_t>> buffers) override {
    std::size_t total = 0;
    for (const auto& b : buffers) total += b.size();
    obs::Span span("inproc.send", static_cast<std::int64_t>(total));
    static obs::Counter& tx = obs::counter("transport.inproc.bytes_sent");
    tx.add(total);
    out_->pushv(buffers);
  }

  void recvAll(std::span<std::uint8_t> buffer) override {
    obs::Span span("inproc.recv", static_cast<std::int64_t>(buffer.size()));
    in_->popExact(buffer, deadline_us_.load(std::memory_order_relaxed));
    static obs::Counter& rx =
        obs::counter("transport.inproc.bytes_received");
    rx.add(buffer.size());
  }

  std::size_t recvSome(std::span<std::uint8_t> buffer) override {
    const std::size_t got =
        in_->popSome(buffer, deadline_us_.load(std::memory_order_relaxed));
    static obs::Counter& rx =
        obs::counter("transport.inproc.bytes_received");
    rx.add(got);
    return got;
  }

  void setDeadline(std::chrono::steady_clock::time_point deadline) override {
    deadline_us_.store(
        deadline == kNoDeadline
            ? kNoDeadlineUs
            : std::chrono::duration_cast<std::chrono::microseconds>(
                  deadline.time_since_epoch())
                  .count(),
        std::memory_order_relaxed);
  }

  void shutdownSend() override { out_->close(); }

  void close() override {
    out_->close();
    in_->close();
  }

  std::string peerName() const override { return "inproc"; }

 private:
  std::shared_ptr<ByteQueue> out_;
  std::shared_ptr<ByteQueue> in_;
  std::atomic<std::int64_t> deadline_us_{kNoDeadlineUs};
};

}  // namespace

std::pair<std::unique_ptr<Stream>, std::unique_ptr<Stream>> inprocPair() {
  auto a_to_b = std::make_shared<ByteQueue>();
  auto b_to_a = std::make_shared<ByteQueue>();
  return {std::make_unique<InprocStream>(a_to_b, b_to_a),
          std::make_unique<InprocStream>(b_to_a, a_to_b)};
}

}  // namespace ninf::transport
