#include "transport/inproc_transport.h"

#include <condition_variable>
#include <deque>
#include <mutex>

#include "common/error.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ninf::transport {

namespace {

/// One direction of the pipe: a byte FIFO with EOF state.
class ByteQueue {
 public:
  void push(std::span<const std::uint8_t> data) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) throw TransportError("send on closed inproc pipe");
    bytes_.insert(bytes_.end(), data.begin(), data.end());
    cv_.notify_all();
  }

  void popExact(std::span<std::uint8_t> out) {
    std::unique_lock<std::mutex> lock(mutex_);
    std::size_t got = 0;
    while (got < out.size()) {
      cv_.wait(lock, [&] { return !bytes_.empty() || closed_; });
      if (bytes_.empty() && closed_) {
        throw TransportError("inproc pipe closed (" + std::to_string(got) +
                             "/" + std::to_string(out.size()) + " bytes)");
      }
      while (got < out.size() && !bytes_.empty()) {
        out[got++] = bytes_.front();
        bytes_.pop_front();
      }
    }
  }

  void close() {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::uint8_t> bytes_;
  bool closed_ = false;
};

class InprocStream : public Stream {
 public:
  InprocStream(std::shared_ptr<ByteQueue> out, std::shared_ptr<ByteQueue> in)
      : out_(std::move(out)), in_(std::move(in)) {}

  ~InprocStream() override { close(); }

  void sendAll(std::span<const std::uint8_t> data) override {
    obs::Span span("inproc.send", static_cast<std::int64_t>(data.size()));
    static obs::Counter& tx = obs::counter("transport.inproc.bytes_sent");
    tx.add(data.size());
    out_->push(data);
  }

  void recvAll(std::span<std::uint8_t> buffer) override {
    obs::Span span("inproc.recv", static_cast<std::int64_t>(buffer.size()));
    static obs::Counter& rx =
        obs::counter("transport.inproc.bytes_received");
    rx.add(buffer.size());
    in_->popExact(buffer);
  }

  void shutdownSend() override { out_->close(); }

  void close() override {
    out_->close();
    in_->close();
  }

  std::string peerName() const override { return "inproc"; }

 private:
  std::shared_ptr<ByteQueue> out_;
  std::shared_ptr<ByteQueue> in_;
};

}  // namespace

std::pair<std::unique_ptr<Stream>, std::unique_ptr<Stream>> inprocPair() {
  auto a_to_b = std::make_shared<ByteQueue>();
  auto b_to_a = std::make_shared<ByteQueue>();
  return {std::make_unique<InprocStream>(a_to_b, b_to_a),
          std::make_unique<InprocStream>(b_to_a, a_to_b)};
}

}  // namespace ninf::transport
